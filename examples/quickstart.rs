//! Quickstart: join a small collection of uncertain strings.
//!
//! Run with `cargo run --example quickstart`.

use uncertain_join::join::{JoinConfig, SimilarityJoin};
use uncertain_join::model::{Alphabet, UncertainString};

fn main() {
    // DNA reads with sequencing uncertainty: position distributions use
    // the paper's syntax, e.g. {(A,0.6),(T,0.4)}.
    let dna = Alphabet::dna();
    let reads = [
        "ACGT{(A,0.6),(T,0.4)}CCA",
        "ACG{(T,0.9),(G,0.1)}ACCA",
        "ACGTACCA",
        "TTTTGGGG",
        "ACGT{(A,0.5),(C,0.5)}CC",
    ];
    let strings: Vec<UncertainString> = reads
        .iter()
        .map(|t| UncertainString::parse(t, &dna).expect("valid uncertain string"))
        .collect();

    // Report pairs with Pr(ed ≤ 2) > 0.3. Disable early termination so
    // the reported probabilities are exact.
    let config = JoinConfig::new(2, 0.3).with_early_stop(false);
    let join = SimilarityJoin::new(config, dna.size());
    let result = join.self_join(&strings);

    println!("similar pairs (k = 2, tau = 0.3):");
    for pair in &result.pairs {
        println!(
            "  #{} ~ #{}  Pr(ed <= 2) = {:.4}",
            pair.left, pair.right, pair.prob
        );
        println!("      {}", strings[pair.left as usize].display(&dna));
        println!("      {}", strings[pair.right as usize].display(&dna));
    }
    println!("\nstats: {}", result.stats.summary());
}
