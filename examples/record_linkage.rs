//! Cross-collection record linkage: matching two independent uncertain
//! name collections (e.g. two noisy data sources covering overlapping
//! populations).
//!
//! Uses the cross-collection join `SimilarityJoin::join(left, right)` —
//! the generalisation of the paper's self-join (its `R × S` definition).
//!
//! Run with `cargo run --release --example record_linkage`.

use uncertain_join::datagen::{DatasetKind, DatasetSpec};
use uncertain_join::join::{JoinConfig, SimilarityJoin};
use uncertain_join::model::UncertainString;

fn main() {
    // Two sources: the second re-digitises a subset of the first with
    // fresh noise (modelled by regenerating with a different seed and
    // re-uncertainty-injecting the shared bases).
    let source_a = DatasetSpec::new(DatasetKind::Dblp, 400, 100).generate();

    // Source B: noisy copies of half of A's records plus fresh ones.
    let mut b_strings: Vec<UncertainString> = Vec::new();
    for s in source_a.strings.iter().take(200) {
        // Take the most probable reading and flip every 9th character into
        // a two-way uncertainty — a different noise process than A's.
        let world = s.most_probable_world();
        let mut text = String::new();
        for (i, &sym) in world.instance.iter().enumerate() {
            let c = source_a.alphabet.char_of(sym);
            if i % 9 == 4 {
                let alt = source_a
                    .alphabet
                    .char_of((sym + 1) % source_a.alphabet.size() as u8);
                text.push_str(&format!("{{({c},0.8),({alt},0.2)}}"));
            } else {
                text.push(c);
            }
        }
        b_strings.push(UncertainString::parse(&text, &source_a.alphabet).unwrap());
    }
    let fresh = DatasetSpec::new(DatasetKind::Dblp, 200, 999).generate();
    b_strings.extend(fresh.strings);

    let config = JoinConfig::new(2, 0.1);
    let join = SimilarityJoin::new(config, source_a.alphabet.size());
    let result = join.join(&source_a.strings, &b_strings);

    println!(
        "linked {} record pairs between source A ({}) and source B ({})",
        result.pairs.len(),
        source_a.strings.len(),
        b_strings.len()
    );
    // The first 200 B records are planted links: measure recall on them.
    let recalled = (0..200u32)
        .filter(|&i| result.pairs.iter().any(|p| p.left == i && p.right == i))
        .count();
    println!("planted links recovered: {recalled}/200");
    for pair in result.pairs.iter().take(5) {
        println!(
            "  A#{} ~ B#{}  Pr >= {:.3}\n    {}\n    {}",
            pair.left,
            pair.right,
            pair.prob,
            source_a.strings[pair.left as usize].display(&source_a.alphabet),
            b_strings[pair.right as usize].display(&source_a.alphabet),
        );
    }
    println!("\nstats: {}", result.stats.summary());
}
