//! Bioinformatics scenario: similarity *search* over uncertain protein
//! fragments.
//!
//! Builds an [`IndexedCollection`] once, then probes it with uncertain
//! query fragments — the standing-collection workflow (the join is
//! repeated search over a growing prefix; this is the direct API).
//!
//! Run with `cargo run --release --example protein_search`.

use uncertain_join::datagen::{DatasetKind, DatasetSpec};
use uncertain_join::join::{IndexedCollection, JoinConfig};
use uncertain_join::model::UncertainString;

fn main() {
    let ds = DatasetSpec::new(DatasetKind::Protein, 800, 21).generate();
    let config = JoinConfig::new(4, 0.01); // paper defaults for protein
    let sigma = ds.alphabet.size();
    let alphabet = ds.alphabet.clone();
    let collection = IndexedCollection::build(config, sigma, ds.strings);
    println!(
        "indexed {} fragments ({} KiB of postings)",
        collection.len(),
        collection.index_bytes() / 1024
    );

    // Probe with noisy copies of indexed fragments: take a fragment's
    // most probable world and re-inject fresh uncertainty.
    for &source in &[3usize, 100, 555] {
        let world = collection.strings()[source].most_probable_world();
        let mut probe_text = String::new();
        for (i, &sym) in world.instance.iter().enumerate() {
            if i % 7 == 3 {
                // every 7th-ish position becomes uncertain
                let alt = alphabet.char_of((sym + 1) % sigma as u8);
                probe_text.push_str(&format!(
                    "{{({},0.7),({},0.3)}}",
                    alphabet.char_of(sym),
                    alt
                ));
            } else {
                probe_text.push(alphabet.char_of(sym));
            }
        }
        let probe = UncertainString::parse(&probe_text, &alphabet).unwrap();
        let (hits, stats) = collection.search_with_stats(&probe);
        println!(
            "\nprobe derived from fragment #{source} (len {}): {} hits",
            probe.len(),
            hits.len()
        );
        for hit in hits.iter().take(5) {
            println!("  #{:<4} Pr >= {:.3}", hit.id, hit.prob);
        }
        assert!(
            hits.iter().any(|h| h.id == source as u32),
            "the source fragment itself must be found"
        );
        println!(
            "  (scope {}, q-gram kept {}, verified {})",
            stats.pairs_in_scope,
            stats.qgram_survivors,
            stats.verified_pairs()
        );
    }
}
