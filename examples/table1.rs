//! Reproduces the paper's Table 1 / §3 walkthrough of q-gram filtering
//! with probabilistic pruning (m = 3, q = 2, k = 1, τ = 0.25).
//!
//! Run with `cargo run --example table1`.

use uncertain_join::model::{Alphabet, UncertainString};
use uncertain_join::qgram::{QGramFilter, SelectionPolicy};

fn main() {
    let dna = Alphabet::dna();
    let r = UncertainString::parse("GGATCC", &dna).unwrap();

    // The four collection strings of the walkthrough (S3/S4 as the text
    // labels them; the first two are rejected by the count condition).
    let collection = [
        ("S1", "A{(C,0.5),(G,0.5)}A{(C,0.5),(G,0.5)}AC"),
        ("S2", "AA{(G,0.9),(T,0.1)}G{(C,0.3),(G,0.2),(T,0.5)}C"),
        ("S3", "G{(A,0.8),(G,0.2)}CT{(A,0.8),(C,0.1),(T,0.1)}C"),
        ("S4", "{(G,0.8),(T,0.2)}GA{(C,0.3),(G,0.2),(T,0.5)}CT"),
    ];

    // Table 1 uses the position-based window range [p−k, p+k].
    let filter = QGramFilter::new(1, 0.25, 2).with_policy(SelectionPolicy::PositionBased);

    println!("Table 1 walkthrough: r = GGATCC, m = 3, q = 2, k = 1, tau = 0.25\n");
    for (name, text) in collection {
        let s = UncertainString::parse(text, &dna).unwrap();
        let out = filter.evaluate(&r, &s);
        let alphas: Vec<String> = out.alphas.iter().map(|a| format!("{a:.2}")).collect();
        println!("{name}: {text}");
        println!(
            "    alpha = [{}]  matched = {}/{} (need {})  upper bound = {:.2}  -> {:?}",
            alphas.join(", "),
            out.matched_segments,
            out.num_segments,
            out.required_segments,
            out.upper_bound,
            out.verdict,
        );
    }
    println!(
        "\nAs in the paper: S1/S2 fail the count condition (Lemma 5), S3 is pruned\n\
         by the probabilistic bound (0.2 < 0.25, Theorem 2), S4 survives (0.4 > 0.25)."
    );
}
