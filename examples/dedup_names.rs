//! Data-cleaning scenario: deduplicating uncertain author names.
//!
//! The paper's motivating application — a dblp-like collection where OCR
//! or integration noise left character-level uncertainty — joined against
//! itself to surface probable duplicates.
//!
//! Run with `cargo run --release --example dedup_names [n]`.

use uncertain_join::datagen::{DatasetKind, DatasetSpec};
use uncertain_join::join::{JoinConfig, SimilarityJoin};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(500);

    // dblp-like names, 20% uncertain positions, with the generator's
    // planted near-duplicates playing the role of real-world dirt.
    let ds = DatasetSpec::new(DatasetKind::Dblp, n, 7).generate();
    println!(
        "collection: {} names, avg length {:.1}, avg theta {:.2}",
        ds.strings.len(),
        ds.avg_len(),
        ds.avg_theta()
    );

    let config = JoinConfig::new(2, 0.1); // paper defaults for dblp
    let join = SimilarityJoin::new(config, ds.alphabet.size());
    let result = join.self_join(&ds.strings);

    println!(
        "\nfound {} probable duplicate pairs; first ten:",
        result.pairs.len()
    );
    for pair in result.pairs.iter().take(10) {
        println!(
            "  Pr >= {:.3}  {}\n             {}",
            pair.prob,
            ds.strings[pair.left as usize].display(&ds.alphabet),
            ds.strings[pair.right as usize].display(&ds.alphabet),
        );
    }

    // Union-find over the pairs gives duplicate clusters.
    let mut parent: Vec<u32> = (0..ds.strings.len() as u32).collect();
    fn find(parent: &mut Vec<u32>, x: u32) -> u32 {
        if parent[x as usize] != x {
            let root = find(parent, parent[x as usize]);
            parent[x as usize] = root;
        }
        parent[x as usize]
    }
    for pair in &result.pairs {
        let (a, b) = (find(&mut parent, pair.left), find(&mut parent, pair.right));
        if a != b {
            parent[a as usize] = b;
        }
    }
    let mut cluster_sizes = std::collections::HashMap::new();
    for i in 0..ds.strings.len() as u32 {
        *cluster_sizes.entry(find(&mut parent, i)).or_insert(0usize) += 1;
    }
    let nontrivial = cluster_sizes.values().filter(|&&s| s > 1).count();
    let largest = cluster_sizes.values().max().copied().unwrap_or(1);
    println!("\nduplicate clusters: {nontrivial} (largest has {largest} members)");
    println!("stats: {}", result.stats.summary());
}
