//! Microbenchmarks of the CDF-bound DP (Theorem 4): cost grows with
//! string length and k (band width × bound-vector width).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use usj_bench::dataset;
use usj_cdf::cdf_bounds;
use usj_datagen::DatasetKind;

fn bench_cdf(c: &mut Criterion) {
    let ds = dataset(DatasetKind::Protein, 60, 0.1);
    // Pick a length-compatible pair of medium length.
    let (mut r, mut s) = (None, None);
    for x in &ds.strings {
        if x.len() == 32 && r.is_none() {
            r = Some(x.clone());
        } else if x.len() >= 30 && x.len() <= 34 && r.is_some() && s.is_none() {
            s = Some(x.clone());
        }
    }
    let r = r.unwrap_or_else(|| ds.strings[0].clone());
    let s = s.unwrap_or_else(|| ds.strings[1].clone());

    let mut group = c.benchmark_group("cdf_bounds");
    for k in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("k", k), &k, |b, &k| {
            b.iter(|| cdf_bounds(black_box(&r), black_box(&s), k))
        });
    }
    group.finish();

    // Length scaling at fixed k (the Fig 9 cost driver).
    let mut group = c.benchmark_group("cdf_length");
    for appends in [0usize, 1, 3] {
        let mut rr = r.clone();
        let mut ss = s.clone();
        for _ in 0..appends {
            rr = rr.concat(&r);
            ss = ss.concat(&s);
        }
        group.bench_with_input(BenchmarkId::new("appends", appends), &appends, |b, _| {
            b.iter(|| cdf_bounds(black_box(&rr), black_box(&ss), 4))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cdf);
criterion_main!(benches);
