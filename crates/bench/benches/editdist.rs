//! Microbenchmarks of the deterministic edit-distance substrate.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use usj_editdist::{edit_distance, edit_distance_bounded, PrefixDp};

fn random_string(rng: &mut StdRng, len: usize, sigma: u8) -> Vec<u8> {
    (0..len).map(|_| rng.gen_range(0..sigma)).collect()
}

fn bench_editdist(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = random_string(&mut rng, 32, 22);
    let mut b = a.clone();
    // Perturb b by a few edits so the banded DP has realistic work.
    for _ in 0..3 {
        let pos = rng.gen_range(0..b.len());
        b[pos] = rng.gen_range(0..22);
    }
    let far = random_string(&mut rng, 32, 22);

    let mut group = c.benchmark_group("editdist");
    group.bench_function("full_dp_len32", |bench| {
        bench.iter(|| edit_distance(black_box(&a), black_box(&b)))
    });
    group.bench_function("bounded_k4_similar", |bench| {
        bench.iter(|| edit_distance_bounded(black_box(&a), black_box(&b), 4))
    });
    group.bench_function("bounded_k4_dissimilar", |bench| {
        bench.iter(|| edit_distance_bounded(black_box(&a), black_box(&far), 4))
    });
    group.bench_function("prefix_dp_run_k4", |bench| {
        bench.iter(|| PrefixDp::run(black_box(&a), black_box(&b), 4))
    });
    group.bench_function("myers_len32", |bench| {
        bench.iter(|| usj_editdist::myers_distance(black_box(&a), black_box(&b)))
    });
    let long_a: Vec<u8> = (0..128).map(|i| (i % 22) as u8).collect();
    let mut long_b = long_a.clone();
    long_b[40] = 21;
    group.bench_function("myers_len128_two_blocks", |bench| {
        bench.iter(|| usj_editdist::myers_distance(black_box(&long_a), black_box(&long_b)))
    });
    group.bench_function("full_dp_len128", |bench| {
        bench.iter(|| edit_distance(black_box(&long_a), black_box(&long_b)))
    });
    group.finish();
}

criterion_group!(benches, bench_editdist);
criterion_main!(benches);
