//! Verification ablations: lazy trie vs eager trie vs naive enumeration,
//! and early termination on vs off (DESIGN.md §6).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use usj_bench::dataset;
use usj_datagen::DatasetKind;
use usj_verify::{naive_verify, LazyTrieVerifier, TrieVerifier};

fn pick_pairs(theta: f64) -> Vec<(usj_model::UncertainString, usj_model::UncertainString)> {
    let ds = dataset(DatasetKind::Dblp, 120, theta);
    let mut pairs = Vec::new();
    for i in 0..ds.strings.len() {
        for j in (i + 1)..ds.strings.len() {
            let (r, s) = (&ds.strings[i], &ds.strings[j]);
            if r.len().abs_diff(s.len()) <= 2
                && r.num_worlds() * s.num_worlds() <= 1e6
                && usj_editdist::within_k(
                    &r.most_probable_world().instance,
                    &s.most_probable_world().instance,
                    4,
                )
            {
                pairs.push((r.clone(), s.clone()));
                if pairs.len() >= 12 {
                    return pairs;
                }
            }
        }
    }
    pairs
}

fn bench_verifiers(c: &mut Criterion) {
    let pairs = pick_pairs(0.2);
    assert!(!pairs.is_empty(), "dataset produced no candidate pairs");
    let (k, tau) = (2usize, 0.1f64);

    let mut group = c.benchmark_group("verify");
    group.sample_size(15);
    group.bench_function("lazy_trie", |b| {
        b.iter(|| {
            for (r, s) in &pairs {
                let mut v = LazyTrieVerifier::new(r, k, tau);
                black_box(v.verify(s).similar);
            }
        })
    });
    group.bench_function("eager_trie", |b| {
        b.iter(|| {
            for (r, s) in &pairs {
                let v = TrieVerifier::new(r, k, tau, 1 << 22).unwrap();
                black_box(v.verify(s).similar);
            }
        })
    });
    group.bench_function("naive", |b| {
        b.iter(|| {
            for (r, s) in &pairs {
                black_box(naive_verify(r, s, k, tau, true).similar);
            }
        })
    });
    group.bench_function("lazy_trie_no_early_stop", |b| {
        b.iter(|| {
            for (r, s) in &pairs {
                let mut v = LazyTrieVerifier::new(r, k, tau).without_early_stop();
                black_box(v.verify(s).prob);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_verifiers);
criterion_main!(benches);
