//! Microbenchmarks and ablations of q-gram filtering.
//!
//! Ablations promised by DESIGN.md §6:
//! * Poisson-binomial tail: `O(m²)` full DP vs `O(m(m−k))` truncated;
//! * α computation: grouped (paper) vs naive vs exact.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use usj_bench::dataset;
use usj_datagen::DatasetKind;
use usj_qgram::{at_least, poisson_binomial, AlphaMode, QGramFilter};

fn bench_tail(c: &mut Criterion) {
    let alphas: Vec<f64> = (0..16).map(|i| (i as f64 + 1.0) / 20.0).collect();
    let mut group = c.benchmark_group("qgram_tail");
    group.bench_function("truncated_m16_k2", |b| {
        b.iter(|| at_least(black_box(&alphas), 14))
    });
    group.bench_function("full_m16", |b| {
        b.iter(|| {
            let dist = poisson_binomial(black_box(&alphas));
            dist.iter().skip(14).sum::<f64>()
        })
    });
    group.finish();
}

fn bench_alpha_modes(c: &mut Criterion) {
    let ds = dataset(DatasetKind::Dblp, 40, 0.2);
    let pairs: Vec<(usize, usize)> = (0..ds.strings.len())
        .flat_map(|i| ((i + 1)..ds.strings.len()).map(move |j| (i, j)))
        .filter(|&(i, j)| ds.strings[i].len().abs_diff(ds.strings[j].len()) <= 2)
        .take(60)
        .collect();
    let mut group = c.benchmark_group("qgram_alpha");
    group.sample_size(20);
    for mode in [AlphaMode::Grouped, AlphaMode::Naive, AlphaMode::Exact] {
        let filter = QGramFilter::new(2, 0.1, 3).with_alpha_mode(mode);
        group.bench_function(format!("{mode:?}").to_lowercase(), |b| {
            b.iter(|| {
                let mut survivors = 0usize;
                for &(i, j) in &pairs {
                    let out = filter.evaluate(&ds.strings[j], &ds.strings[i]);
                    if out.verdict == usj_qgram::FilterVerdict::Candidate {
                        survivors += 1;
                    }
                }
                black_box(survivors)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tail, bench_alpha_modes);
criterion_main!(benches);
