//! End-to-end join benchmarks: pipeline variants and q sweep.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use usj_bench::{dataset, default_config};
use usj_core::{Pipeline, SimilarityJoin};
use usj_datagen::DatasetKind;

fn bench_pipelines(c: &mut Criterion) {
    let ds = dataset(DatasetKind::Dblp, 300, 0.2);
    let mut group = c.benchmark_group("join_pipeline");
    group.sample_size(10);
    for pipeline in Pipeline::all() {
        let config = default_config(DatasetKind::Dblp).with_pipeline(pipeline);
        group.bench_function(pipeline.acronym(), |b| {
            b.iter(|| {
                let join = SimilarityJoin::new(config.clone(), ds.alphabet.size());
                black_box(join.self_join(&ds.strings).pairs.len())
            })
        });
    }
    group.finish();
}

fn bench_q_sweep(c: &mut Criterion) {
    let ds = dataset(DatasetKind::Dblp, 300, 0.2);
    let mut group = c.benchmark_group("join_q");
    group.sample_size(10);
    for q in [2usize, 3, 4, 6] {
        let config = default_config(DatasetKind::Dblp).with_q(q);
        group.bench_with_input(BenchmarkId::new("q", q), &q, |b, _| {
            b.iter(|| {
                let join = SimilarityJoin::new(config.clone(), ds.alphabet.size());
                black_box(join.self_join(&ds.strings).pairs.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipelines, bench_q_sweep);
criterion_main!(benches);
