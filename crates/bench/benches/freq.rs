//! Microbenchmarks of frequency-distance filtering, including the paper's
//! `O(min(f^u_R, f^u_S))` fast expectation vs the naive double sum.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use usj_bench::dataset;
use usj_datagen::DatasetKind;
use usj_freq::{expected_nd_char, expected_nd_naive, CharProfile, FreqFilter};

fn bench_expectation(c: &mut Criterion) {
    // Two characters with many uncertain positions each.
    let probs_a: Vec<f64> = (0..24).map(|i| 0.1 + 0.03 * i as f64).collect();
    let probs_b: Vec<f64> = (0..20).map(|i| 0.9 - 0.04 * i as f64).collect();
    let a = CharProfile::new(3, &probs_a);
    let b = CharProfile::new(1, &probs_b);
    let mut group = c.benchmark_group("freq_expectation");
    group.bench_function("fast_min_side", |bench| {
        bench.iter(|| expected_nd_char(black_box(&a), black_box(&b)))
    });
    group.bench_function("naive_double_sum", |bench| {
        bench.iter(|| expected_nd_naive(black_box(&a), black_box(&b)))
    });
    group.finish();
}

fn bench_filter_pass(c: &mut Criterion) {
    let ds = dataset(DatasetKind::Protein, 120, 0.1);
    let filter = FreqFilter::new(4, 0.01, ds.alphabet.size());
    let profiles: Vec<_> = ds.strings.iter().map(|s| filter.profile(s)).collect();
    let pairs: Vec<(usize, usize)> = (0..profiles.len())
        .flat_map(|i| ((i + 1)..profiles.len()).map(move |j| (i, j)))
        .filter(|&(i, j)| ds.strings[i].len().abs_diff(ds.strings[j].len()) <= 4)
        .collect();
    let mut group = c.benchmark_group("freq_filter");
    group.sample_size(20);
    group.bench_function("profile_build", |b| {
        b.iter(|| {
            for s in &ds.strings {
                black_box(filter.profile(s));
            }
        })
    });
    group.bench_function("evaluate_pairs", |b| {
        b.iter(|| {
            let mut survivors = 0usize;
            for &(i, j) in &pairs {
                if filter.evaluate(&profiles[j], &profiles[i]).candidate {
                    survivors += 1;
                }
            }
            black_box(survivors)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_expectation, bench_filter_pass);
criterion_main!(benches);
