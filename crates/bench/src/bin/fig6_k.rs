//! Figure 6 — Effect of the edit-distance threshold k.
//!
//! Sweeps k (dblp 1–4, protein 2–8, as in §7.5) and reports QFCT vs FCT
//! join time. Paper shape: both grow with k (looser q-gram requirement
//! `m−k`, looser bounds, more verification); QFCT's advantage narrows but
//! it still saves a sizeable fraction of FCT's cost at the largest k.

use usj_bench::{dataset, ms, paper_defaults, run_join, write_result, Args, Table};
use usj_core::{JoinConfig, Pipeline};
use usj_datagen::DatasetKind;

fn main() {
    let args = Args::parse(
        "fig6_k — join time vs edit threshold (Fig 6)\n\
         flags: --n <strings, default 2000>",
    );
    let n = args.get_usize("n", 2000);

    let mut table = Table::new(&[
        "dataset",
        "k",
        "algorithm",
        "filter_ms",
        "total_ms",
        "output",
    ]);
    let mut records = Vec::new();

    let sweeps = [
        (DatasetKind::Dblp, vec![1usize, 2, 3, 4]),
        (DatasetKind::Protein, vec![2usize, 4, 6, 8]),
    ];
    for (kind, ks) in sweeps {
        let defaults = paper_defaults(kind);
        let ds = dataset(kind, n, defaults.theta);
        for &k in &ks {
            for pipeline in [Pipeline::Qfct, Pipeline::Fct] {
                let config = JoinConfig::new(k, defaults.tau)
                    .with_q(defaults.q)
                    .with_pipeline(pipeline);
                let (result, total) = run_join(config, &ds);
                table.row(vec![
                    format!("{kind:?}").to_lowercase(),
                    k.to_string(),
                    pipeline.acronym().into(),
                    ms(result.stats.timings.filtering()),
                    ms(total),
                    result.stats.output_pairs.to_string(),
                ]);
                records.push(serde_json::json!({
                    "dataset": format!("{kind:?}").to_lowercase(),
                    "k": k,
                    "algorithm": pipeline.acronym(),
                    "filter_ms": result.stats.timings.filtering().as_secs_f64() * 1e3,
                    "total_ms": total.as_secs_f64() * 1e3,
                    "output_pairs": result.stats.output_pairs,
                    "verified": result.stats.verified_pairs(),
                }));
            }
        }
    }

    println!("Figure 6: effect of k (n={n})\n");
    table.print();
    write_result("fig6_k", &serde_json::Value::Array(records));
}
