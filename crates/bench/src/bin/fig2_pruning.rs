//! Figure 2 — Effectiveness vs. efficiency of the three filters.
//!
//! For both datasets (θ = 0.2, k = 2, τ = 0.1, as in §7.1), applies each
//! filtering scheme *in isolation* to every length-compatible pair and
//! reports the surviving candidate count and the wall time of the pass.
//! Paper shape: CDF tightest but slowest; q-gram nearly as tight on
//! protein and an order of magnitude faster; frequency cheapest per pair
//! but loosest.

use std::time::Instant;

use usj_bench::{dataset, ms, run_join_recorded, write_obs_snapshot, write_result, Args, Table};
use usj_cdf::{CdfDecision, CdfFilter};
use usj_core::JoinConfig;
use usj_datagen::DatasetKind;
use usj_freq::FreqFilter;
use usj_qgram::QGramFilter;

fn main() {
    let args = Args::parse(
        "fig2_pruning — candidates surviving each filter (Fig 2)\n\
         flags: --n <strings, default 800>",
    );
    let n = args.get_usize("n", 800);
    let (k, tau, theta, q) = (2usize, 0.1f64, 0.2f64, 3usize);

    let mut table = Table::new(&["dataset", "filter", "pairs", "candidates", "time_ms"]);
    let mut json = serde_json::Map::new();

    for kind in [DatasetKind::Dblp, DatasetKind::Protein] {
        let ds = dataset(kind, n, theta);
        let sigma = ds.alphabet.size();
        let pairs: Vec<(usize, usize)> = (0..ds.strings.len())
            .flat_map(|i| ((i + 1)..ds.strings.len()).map(move |j| (i, j)))
            .filter(|&(i, j)| ds.strings[i].len().abs_diff(ds.strings[j].len()) <= k)
            .collect();

        // q-gram filtering (Theorem 2), applied probe-centrically as the
        // join does: the equivalent sets q(r, x) are built once per
        // (probe, partner length) and reused across partners.
        let qgram = QGramFilter::new(k, tau, q);
        let start = Instant::now();
        let mut by_probe: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for &(i, j) in &pairs {
            by_probe.entry(j).or_default().push(i);
        }
        let mut q_survivors = 0usize;
        for (&probe_id, partners) in &by_probe {
            let probe = &ds.strings[probe_id];
            let mut sets_by_len: std::collections::BTreeMap<usize, _> = Default::default();
            for &i in partners {
                let other = &ds.strings[i];
                let (sets, bounder) = sets_by_len.entry(other.len()).or_insert_with(|| {
                    let sets = qgram.probe_sets(probe, other.len());
                    let regions: Vec<Option<usj_qgram::Region>> = qgram
                        .segments(other.len())
                        .iter()
                        .map(|seg| {
                            usj_qgram::window_range(
                                usj_qgram::SelectionPolicy::default(),
                                probe.len(),
                                other.len(),
                                k,
                                seg,
                            )
                            .map(|r| usj_qgram::window_region(r, seg.len))
                        })
                        .collect();
                    let bounder = usj_qgram::TailBounder::new(&regions, probe);
                    (sets, bounder)
                });
                let segments = qgram.segments(other.len());
                let m = segments.len();
                let required = m.saturating_sub(k);
                let alphas: Vec<f64> = segments
                    .iter()
                    .zip(sets.iter())
                    .map(|(seg, set)| match set {
                        Some(set) => usj_qgram::alpha_for_segment(set, other, seg),
                        None => 0.0,
                    })
                    .collect();
                let matched = alphas.iter().filter(|&&a| a > 0.0).count();
                if matched >= required && (required == 0 || bounder.bound(&alphas, required) > tau)
                {
                    q_survivors += 1;
                }
            }
        }
        let q_time = start.elapsed();

        // Frequency-distance filtering (Lemma 6 + Theorem 3), profiles
        // precomputed as the join would.
        let freq = FreqFilter::new(k, tau, sigma);
        let profiles: Vec<_> = ds.strings.iter().map(|s| freq.profile(s)).collect();
        let start = Instant::now();
        let f_survivors = pairs
            .iter()
            .filter(|&&(i, j)| freq.evaluate(&profiles[j], &profiles[i]).candidate)
            .count();
        let f_time = start.elapsed();

        // CDF bounds (Theorem 4); survivors are the non-rejected pairs.
        let cdf = CdfFilter::new(k, tau);
        let start = Instant::now();
        let c_survivors = pairs
            .iter()
            .filter(|&&(i, j)| {
                cdf.evaluate(&ds.strings[j], &ds.strings[i]).decision != CdfDecision::Reject
            })
            .count();
        let c_time = start.elapsed();

        let name = format!("{kind:?}").to_lowercase();
        for (filter, survivors, time) in [
            ("q-gram", q_survivors, q_time),
            ("frequency", f_survivors, f_time),
            ("cdf", c_survivors, c_time),
        ] {
            table.row(vec![
                name.clone(),
                filter.into(),
                pairs.len().to_string(),
                survivors.to_string(),
                ms(time),
            ]);
            json.insert(
                format!("{name}_{filter}"),
                serde_json::json!({
                    "pairs": pairs.len(),
                    "candidates": survivors,
                    "time_ms": time.as_secs_f64() * 1e3,
                }),
            );
        }

        // The full QFCT pipeline over the same dataset, instrumented:
        // its prune-attribution counters are the join-level counterpart
        // of the isolated passes above, so the figure and `usj join
        // --stats-json` report survivors from one instrumentation source.
        let (_, _, rec) = run_join_recorded(JoinConfig::new(k, tau).with_q(q), &ds);
        write_obs_snapshot(&format!("fig2_pruning_{name}"), &rec);
    }

    println!("Figure 2: effectiveness vs efficiency (n={n}, k={k}, tau={tau}, theta={theta})\n");
    table.print();
    write_result("fig2_pruning", &serde_json::Value::Object(json));
}
