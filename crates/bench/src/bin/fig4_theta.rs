//! Figure 4 — Effect of the uncertainty fraction θ.
//!
//! Sweeps θ on both datasets (dblp 0.1–0.4, protein 0.05–0.2, as in
//! §7.3) and reports QFCT vs FCT join time. Paper shape: both degrade
//! with θ (every phase touches more possible worlds; verification worst),
//! QFCT stays well ahead on dblp, while FCT closes some of the gap on
//! protein where frequency filtering is cheap.

use usj_bench::{dataset, default_config, ms, run_join, write_result, Args, Table};
use usj_core::Pipeline;
use usj_datagen::DatasetKind;

fn main() {
    let args = Args::parse(
        "fig4_theta — join time vs uncertainty fraction (Fig 4)\n\
         flags: --n <strings, default 600>",
    );
    let n = args.get_usize("n", 600);

    let mut table = Table::new(&[
        "dataset",
        "theta",
        "algorithm",
        "filter_ms",
        "total_ms",
        "output",
    ]);
    let mut records = Vec::new();

    let sweeps = [
        (DatasetKind::Dblp, vec![0.1, 0.2, 0.3, 0.4]),
        (DatasetKind::Protein, vec![0.05, 0.1, 0.15, 0.2]),
    ];
    for (kind, thetas) in sweeps {
        for &theta in &thetas {
            let ds = dataset(kind, n, theta);
            for pipeline in [Pipeline::Qfct, Pipeline::Fct] {
                let config = default_config(kind).with_pipeline(pipeline);
                let (result, total) = run_join(config, &ds);
                table.row(vec![
                    format!("{kind:?}").to_lowercase(),
                    format!("{theta:.2}"),
                    pipeline.acronym().into(),
                    ms(result.stats.timings.filtering()),
                    ms(total),
                    result.stats.output_pairs.to_string(),
                ]);
                records.push(serde_json::json!({
                    "dataset": format!("{kind:?}").to_lowercase(),
                    "theta": theta,
                    "algorithm": pipeline.acronym(),
                    "filter_ms": result.stats.timings.filtering().as_secs_f64() * 1e3,
                    "verify_ms": result.stats.timings.verify.as_secs_f64() * 1e3,
                    "total_ms": total.as_secs_f64() * 1e3,
                    "output_pairs": result.stats.output_pairs,
                }));
            }
        }
    }

    println!("Figure 4: effect of theta (n={n})\n");
    table.print();
    write_result("fig4_theta", &serde_json::Value::Array(records));
}
