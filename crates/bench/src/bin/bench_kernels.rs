//! `bench_kernels` — the benchmark-trajectory harness behind
//! `scripts/bench-compare.sh` and the CI `bench` job.
//!
//! Two modes:
//!
//! ```text
//! bench_kernels run [--label L] [--n N] [--seed S] [--iters I] [--warmup W] [--out FILE]
//! bench_kernels compare <baseline.json> <new.json> [--threshold PCT]
//! bench_kernels level
//! ```
//!
//! `run` executes the fixed-seed kernel suite ([`usj_core::bench`]) and
//! writes the schema-stable `BENCH_<label>.json` report; `compare` exits
//! nonzero when any bench's median regressed beyond the threshold
//! (default 15%). Unlike the criterion benches next door, this binary is
//! std-only (usj-core + usj-obs), so it builds in the offline subset.

use std::process::ExitCode;

use usj_core::bench::kernel_suite;
use usj_core::obs::bench::{compare_reports, BenchReport, BenchSpec};

const USAGE: &str = "bench_kernels — fixed-seed kernel benchmarks

USAGE:
  bench_kernels run [--label L] [--n N] [--seed S] [--iters I] [--warmup W] [--out FILE]
  bench_kernels compare <baseline.json> <new.json> [--threshold PCT]
  bench_kernels level   # print the SIMD dispatch level this host selects
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.split_first() {
        Some((mode, rest)) if mode == "run" => cmd_run(rest),
        Some((mode, rest)) if mode == "compare" => cmd_compare(rest),
        Some((mode, _)) if mode == "level" => {
            Ok(format!("{:?}\n", usj_core::simd::simd_level()))
        }
        _ => Err(USAGE.to_string()),
    };
    match result {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}

/// `--flag value` scraper: returns the value after `--name`, if present.
fn flag_value<'a>(args: &'a [String], name: &str) -> Result<Option<&'a str>, String> {
    let flag = format!("--{name}");
    match args.iter().position(|a| *a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .map(|v| Some(v.as_str()))
            .ok_or_else(|| format!("{flag} needs a value")),
    }
}

fn parse_or<T: std::str::FromStr>(
    args: &[String],
    name: &str,
    default: T,
) -> Result<T, String> {
    match flag_value(args, name)? {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value for --{name}: {v:?}")),
    }
}

fn cmd_run(args: &[String]) -> Result<String, String> {
    let label = flag_value(args, "label")?.unwrap_or("local").to_string();
    let n: usize = parse_or(args, "n", 2000)?;
    if n < 8 {
        return Err("--n must be at least 8".to_string());
    }
    let seed: u64 = parse_or(args, "seed", 0x5347_4D4F_4421_0006)?;
    let iters: u32 = parse_or(args, "iters", 32)?;
    let warmup: u32 = parse_or(args, "warmup", 3)?;
    let report = kernel_suite(&label, n, seed, BenchSpec { warmup, iters });
    let default_out = format!("BENCH_{label}.json");
    let out_path = flag_value(args, "out")?.unwrap_or(default_out.as_str());
    std::fs::write(out_path, report.to_json())
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    let mut out = String::new();
    for b in &report.benches {
        out.push_str(&format!(
            "{}: median={}ns mean={}ns (iters={})\n",
            b.name, b.median_ns, b.mean_ns, b.iters
        ));
    }
    out.push_str(&format!("# wrote {out_path} (n={n}, seed={seed:#018x})\n"));
    Ok(out)
}

fn cmd_compare(args: &[String]) -> Result<String, String> {
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a.starts_with("--") {
            it.next(); // skip the flag's value
        } else {
            positional.push(a);
        }
    }
    let threshold_pct: f64 = parse_or(args, "threshold", 15.0)?;
    let [base_path, new_path] = positional.as_slice() else {
        return Err(format!("compare needs exactly two report paths\n\n{USAGE}"));
    };
    let load = |path: &str| -> Result<BenchReport, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        BenchReport::parse(&text).map_err(|e| format!("{path} is not a bench report: {e}"))
    };
    let base = load(base_path)?;
    let new = load(new_path)?;
    let mut out = String::new();
    let mut regressed = false;
    for line in compare_reports(&base, &new, threshold_pct / 100.0) {
        regressed |= line.regressed;
        out.push_str(&line.rendered);
        out.push('\n');
    }
    if regressed {
        return Err(format!(
            "median regression beyond {threshold_pct}% vs {base_path}:\n{out}"
        ));
    }
    out.push_str(&format!("# no regressions beyond {threshold_pct}%\n"));
    Ok(out)
}
