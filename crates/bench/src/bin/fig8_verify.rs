//! Figure 8 — Trie-based vs naive verification.
//!
//! Sweeps θ on both datasets (§7.7) and times the three verifiers on the
//! *same* workload: the candidate pairs that survive frequency + CDF
//! filtering undecided (exactly the pairs the join sends to
//! verification). Paper shape: verification cost grows exponentially with
//! θ for every method, but the trie's shared prefixes and pruned subtrees
//! widen its advantage as worlds multiply; naive enumeration becomes
//! infeasible first (pairs whose joint world count exceeds the budget are
//! skipped and reported — at the highest θ naive simply cannot run, which
//! is the paper's point).

use std::time::{Duration, Instant};

use usj_bench::{dataset, ms, paper_defaults, write_obs_snapshot, write_result, Args, Table};
use usj_cdf::{CdfDecision, CdfFilter};
use usj_core::obs::{CollectingRecorder, Counter, Phase, Recorder};
use usj_datagen::DatasetKind;
use usj_freq::FreqFilter;
use usj_model::UncertainString;
use usj_verify::{naive_verify, LazyTrieVerifier, TrieVerifier};

/// Joint-world budget for the naive verifier; pairs above it are skipped.
const NAIVE_WORLD_BUDGET: f64 = 2e6;
/// Node cap for the eager trie; probes above it are skipped.
const EAGER_NODE_CAP: usize = 1 << 22;

fn undecided_pairs(
    strings: &[UncertainString],
    sigma: usize,
    k: usize,
    tau: f64,
) -> Vec<(usize, usize)> {
    let freq = FreqFilter::new(k, tau, sigma);
    let cdf = CdfFilter::new(k, tau);
    let profiles: Vec<_> = strings.iter().map(|s| freq.profile(s)).collect();
    let mut out = Vec::new();
    for i in 0..strings.len() {
        for j in (i + 1)..strings.len() {
            if strings[i].len().abs_diff(strings[j].len()) > k {
                continue;
            }
            if !freq.evaluate(&profiles[i], &profiles[j]).candidate {
                continue;
            }
            if cdf.evaluate(&strings[j], &strings[i]).decision == CdfDecision::Undecided {
                out.push((i, j));
            }
        }
    }
    out
}

fn main() {
    let args = Args::parse(
        "fig8_verify — verification time, lazy trie vs eager trie vs naive (Fig 8)\n\
         flags: --n <strings, default 300>",
    );
    let n = args.get_usize("n", 300);

    let mut table = Table::new(&[
        "dataset",
        "theta",
        "pairs",
        "verifier",
        "verify_ms",
        "skipped",
    ]);
    let mut records = Vec::new();

    let sweeps = [
        (DatasetKind::Dblp, vec![0.1, 0.2, 0.3, 0.4]),
        (DatasetKind::Protein, vec![0.05, 0.1, 0.15, 0.2]),
    ];
    for (kind, thetas) in sweeps {
        let defaults = paper_defaults(kind);
        for &theta in &thetas {
            let ds = dataset(kind, n, theta);
            let pairs = undecided_pairs(&ds.strings, ds.alphabet.size(), defaults.k, defaults.tau);
            // Group by probe (j) so trie verifiers amortise T_R.
            let mut by_probe: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
            for &(i, j) in &pairs {
                by_probe.entry(j).or_default().push(i);
            }

            let mut measurements: Vec<(&str, Duration, usize)> = Vec::new();

            // Lazy trie (this implementation's default), fed through the
            // same recorder the join pipeline uses, so this figure's
            // verify cost and `usj join --stats-json` come from one
            // instrumentation source (per-probe p50/p90/p99 in the
            // snapshot complement the aggregate column below).
            let mut rec = CollectingRecorder::new();
            let start = Instant::now();
            for (&j, partners) in &by_probe {
                rec.probe_start(j as u32);
                let mut v = LazyTrieVerifier::new(&ds.strings[j], defaults.k, defaults.tau);
                for &i in partners {
                    rec.enter_phase(Phase::Verify);
                    let candidate = Instant::now();
                    let similar = v.verify(&ds.strings[i]).similar;
                    rec.exit_phase(Phase::Verify, candidate.elapsed());
                    rec.counter(
                        if similar {
                            Counter::VerifiedSimilar
                        } else {
                            Counter::VerifiedDissimilar
                        },
                        1,
                    );
                    std::hint::black_box(similar);
                }
                rec.probe_end(j as u32);
            }
            measurements.push(("lazy", start.elapsed(), 0));
            let ds_name = format!("{kind:?}").to_lowercase();
            write_obs_snapshot(&format!("fig8_verify_{ds_name}_theta{theta:.2}"), &rec);

            // Eager trie (the paper's §6.2).
            let mut skipped = 0usize;
            let start = Instant::now();
            for (&j, partners) in &by_probe {
                match TrieVerifier::new(&ds.strings[j], defaults.k, defaults.tau, EAGER_NODE_CAP) {
                    Some(v) => {
                        for &i in partners {
                            std::hint::black_box(v.verify(&ds.strings[i]).similar);
                        }
                    }
                    None => skipped += partners.len(),
                }
            }
            measurements.push(("eager", start.elapsed(), skipped));

            // Naive all-pairs enumeration.
            let mut skipped = 0usize;
            let start = Instant::now();
            for &(i, j) in &pairs {
                let joint = ds.strings[i].num_worlds() * ds.strings[j].num_worlds();
                if joint > NAIVE_WORLD_BUDGET {
                    skipped += 1;
                    continue;
                }
                std::hint::black_box(
                    naive_verify(
                        &ds.strings[j],
                        &ds.strings[i],
                        defaults.k,
                        defaults.tau,
                        true,
                    )
                    .similar,
                );
            }
            measurements.push(("naive", start.elapsed(), skipped));

            for (name, time, skipped) in measurements {
                table.row(vec![
                    format!("{kind:?}").to_lowercase(),
                    format!("{theta:.2}"),
                    pairs.len().to_string(),
                    name.into(),
                    ms(time),
                    skipped.to_string(),
                ]);
                records.push(serde_json::json!({
                    "dataset": format!("{kind:?}").to_lowercase(),
                    "theta": theta,
                    "pairs": pairs.len(),
                    "verifier": name,
                    "verify_ms": time.as_secs_f64() * 1e3,
                    "skipped": skipped,
                }));
            }
        }
    }

    println!(
        "Figure 8: verification cost on the join's undecided pairs (n={n});\n\
         'skipped' counts pairs a method could not attempt within its budget\n\
         (naive: {NAIVE_WORLD_BUDGET:.0e} joint worlds; eager trie: {EAGER_NODE_CAP} nodes)\n"
    );
    table.print();
    write_result("fig8_verify", &serde_json::Value::Array(records));
}
