//! Figure 9 — Effect of string length.
//!
//! Following §7.8, appends every string to itself 0–3 times (capping the
//! number of uncertain positions at 8 so verification stays feasible) and
//! reports QFCT vs FCT join time. Paper shape: costs rise with length for
//! both (longer DP tables, slower world enumeration); frequency filtering
//! is length-independent, letting FCT narrow the gap; output pair counts
//! *fall* with length at fixed k.

use usj_bench::{dataset, default_config, ms, paper_defaults, run_join, write_result, Args, Table};
use usj_core::Pipeline;
use usj_datagen::DatasetKind;

fn main() {
    let args = Args::parse(
        "fig9_length — join time vs string length (Fig 9)\n\
         flags: --n <strings, default 800>",
    );
    let n = args.get_usize("n", 800);
    const MAX_UNCERTAIN: usize = 8;

    let mut table = Table::new(&[
        "dataset",
        "appends",
        "avg_len",
        "algorithm",
        "filter_ms",
        "total_ms",
        "output",
    ]);
    let mut records = Vec::new();

    for kind in [DatasetKind::Dblp, DatasetKind::Protein] {
        let defaults = paper_defaults(kind);
        let base = dataset(kind, n, defaults.theta);
        for appends in 0usize..=3 {
            let ds = base.self_appended(appends, MAX_UNCERTAIN);
            for pipeline in [Pipeline::Qfct, Pipeline::Fct] {
                let config = default_config(kind).with_pipeline(pipeline);
                let (result, total) = run_join(config, &ds);
                table.row(vec![
                    format!("{kind:?}").to_lowercase(),
                    appends.to_string(),
                    format!("{:.0}", ds.avg_len()),
                    pipeline.acronym().into(),
                    ms(result.stats.timings.filtering()),
                    ms(total),
                    result.stats.output_pairs.to_string(),
                ]);
                records.push(serde_json::json!({
                    "dataset": format!("{kind:?}").to_lowercase(),
                    "appends": appends,
                    "avg_len": ds.avg_len(),
                    "algorithm": pipeline.acronym(),
                    "filter_ms": result.stats.timings.filtering().as_secs_f64() * 1e3,
                    "verify_ms": result.stats.timings.verify.as_secs_f64() * 1e3,
                    "total_ms": total.as_secs_f64() * 1e3,
                    "output_pairs": result.stats.output_pairs,
                }));
            }
        }
    }

    println!("Figure 9: effect of string length (n={n}, uncertain positions capped at {MAX_UNCERTAIN})\n");
    table.print();
    write_result("fig9_length", &serde_json::Value::Array(records));
}
