//! Figure 5 — Effect of the probability threshold τ.
//!
//! Sweeps τ from 0.001 to 0.4 on both datasets (§7.4) and reports QFCT
//! vs FCT join time plus the candidate accounting the paper plots: pairs
//! rejected by q-gram filtering, pairs accepted outright by the CDF lower
//! bound, and pairs rejected by the CDF upper bound. Paper shape: larger
//! τ makes the q-gram/CDF *upper* bounds more selective while the CDF
//! lower bound accepts fewer pairs; times stay flat over a wide range and
//! improve for large τ.

use usj_bench::{dataset, default_config, ms, paper_defaults, run_join, write_result, Args, Table};
use usj_core::Pipeline;
use usj_datagen::DatasetKind;

fn main() {
    let args = Args::parse(
        "fig5_tau — join behaviour vs probability threshold (Fig 5)\n\
         flags: --n <strings, default 2000>",
    );
    let n = args.get_usize("n", 2000);
    let taus = [0.001, 0.01, 0.05, 0.1, 0.2, 0.4];

    let mut table = Table::new(&[
        "dataset",
        "tau",
        "algorithm",
        "total_ms",
        "qgram_rej",
        "cdf_acc",
        "cdf_rej",
        "output",
    ]);
    let mut records = Vec::new();

    for kind in [DatasetKind::Dblp, DatasetKind::Protein] {
        let defaults = paper_defaults(kind);
        let ds = dataset(kind, n, defaults.theta);
        for &tau in &taus {
            for pipeline in [Pipeline::Qfct, Pipeline::Fct] {
                let mut config = default_config(kind).with_pipeline(pipeline);
                config.tau = tau;
                let (result, total) = run_join(config, &ds);
                let s = &result.stats;
                let qgram_rejected = s.qgram_pruned_count + s.qgram_pruned_bound;
                table.row(vec![
                    format!("{kind:?}").to_lowercase(),
                    format!("{tau}"),
                    pipeline.acronym().into(),
                    ms(total),
                    qgram_rejected.to_string(),
                    s.cdf_accepted.to_string(),
                    s.cdf_rejected.to_string(),
                    s.output_pairs.to_string(),
                ]);
                records.push(serde_json::json!({
                    "dataset": format!("{kind:?}").to_lowercase(),
                    "tau": tau,
                    "algorithm": pipeline.acronym(),
                    "total_ms": total.as_secs_f64() * 1e3,
                    "qgram_rejected": qgram_rejected,
                    "qgram_rejected_by_bound": s.qgram_pruned_bound,
                    "cdf_accepted": s.cdf_accepted,
                    "cdf_rejected": s.cdf_rejected,
                    "verified": s.verified_pairs(),
                    "output_pairs": s.output_pairs,
                }));
            }
        }
    }

    println!("Figure 5: effect of tau (n={n})\n");
    table.print();
    write_result("fig5_tau", &serde_json::Value::Array(records));
}
