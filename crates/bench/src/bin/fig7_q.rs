//! Figure 7 — Effect of the q-gram length q.
//!
//! Sweeps q from 2 to 6 on both datasets (§7.6) and reports the QFCT
//! join's peak index memory, filtering time, q-gram survivor count
//! (effectiveness), and total time. Paper shape: memory grows with q
//! (each segment has more instances) and faster on dblp (higher θ, larger
//! Σ); filtering time improves with q but with exponentially diminishing
//! returns; pruning effectiveness *decays* for larger q on uncertain
//! strings; total time is uni-valley with the sweet spot at q = 3–4.

use usj_bench::{dataset, default_config, ms, paper_defaults, run_join, write_result, Args, Table};
use usj_datagen::DatasetKind;

fn main() {
    let args = Args::parse(
        "fig7_q — memory/time/effectiveness vs q-gram length (Fig 7)\n\
         flags: --n <strings, default 1200>",
    );
    let n = args.get_usize("n", 1200);

    let mut table = Table::new(&[
        "dataset",
        "q",
        "peak_index_KiB",
        "filter_ms",
        "qgram_survivors",
        "total_ms",
    ]);
    let mut records = Vec::new();

    for kind in [DatasetKind::Dblp, DatasetKind::Protein] {
        let defaults = paper_defaults(kind);
        let ds = dataset(kind, n, defaults.theta);
        for q in 2usize..=6 {
            let config = default_config(kind).with_q(q);
            let (result, total) = run_join(config, &ds);
            let s = &result.stats;
            table.row(vec![
                format!("{kind:?}").to_lowercase(),
                q.to_string(),
                (s.peak_index_bytes / 1024).to_string(),
                ms(s.timings.filtering()),
                s.qgram_survivors.to_string(),
                ms(total),
            ]);
            records.push(serde_json::json!({
                "dataset": format!("{kind:?}").to_lowercase(),
                "q": q,
                "peak_index_bytes": s.peak_index_bytes,
                "filter_ms": s.timings.filtering().as_secs_f64() * 1e3,
                "qgram_survivors": s.qgram_survivors,
                "pairs_in_scope": s.pairs_in_scope,
                "total_ms": total.as_secs_f64() * 1e3,
            }));
        }
    }

    println!("Figure 7: effect of q (n={n})\n");
    table.print();
    write_result("fig7_q", &serde_json::Value::Array(records));
}
