//! §7.9 — Comparison with the expected-edit-distance (EED) join.
//!
//! Quantifies the paper's three qualitative claims against Jestes et
//! al.'s eed approach:
//!
//! 1. **index size** — overlapping q-gram postings (eed-style) vs the
//!    disjoint-segment index (paper reports ≈5× vs ≈2× the data size);
//! 2. **join cost** — the (k,τ) QFCT join vs the eed join, which must
//!    evaluate every length-compatible pair by world enumeration;
//! 3. **verification** — trie-based verification vs the naive
//!    full-enumeration verification eed requires.

use std::time::Instant;

use usj_bench::{dataset, default_config, ms, paper_defaults, run_join, write_result, Args, Table};
use usj_core::{SegmentIndex, VerifierKind};
use usj_datagen::DatasetKind;
use usj_eed::{EedJoin, OverlappingQGramIndex};

fn main() {
    let args = Args::parse(
        "exp_eed — comparison with the EED join of Jestes et al. (§7.9)\n\
         flags: --n <strings, default 250>  --d <eed threshold, default k>\n\
                --worlds <per-pair joint world budget, default 65536>",
    );
    let n = args.get_usize("n", 250);
    let kind = DatasetKind::Dblp;
    let defaults = paper_defaults(kind);
    let d = args.get_f64("d", defaults.k as f64);
    // Exact eed needs *all* joint worlds of a pair; without a budget a
    // single high-uncertainty similar pair takes hours (there is no early
    // accept for eed — which is the paper's §7.9 point 3). Pairs above
    // the budget are skipped and reported.
    let world_budget = args.get_usize("worlds", 1 << 16) as u64;

    let ds = dataset(kind, n, defaults.theta);
    let config = default_config(kind);

    // 1. Index sizes.
    let mut disjoint = SegmentIndex::new();
    for (i, s) in ds.strings.iter().enumerate() {
        disjoint.insert(i as u32, s, &config);
    }
    let mut overlapping = OverlappingQGramIndex::new(defaults.q);
    for (i, s) in ds.strings.iter().enumerate() {
        overlapping.insert(i as u32, s, 1 << 14);
    }
    // Rough data size: one byte per (symbol, prob) alternative.
    let data_bytes: usize = ds
        .strings
        .iter()
        .map(|s| {
            s.positions()
                .iter()
                .map(|p| p.num_alternatives() * 9 + 1)
                .sum::<usize>()
        })
        .sum();

    // 2. Join times.
    let (qfct_result, qfct_time) = run_join(config.clone(), &ds);
    let eed_start = Instant::now();
    let mut eed_join = EedJoin::new(d);
    eed_join.max_worlds = world_budget;
    let (eed_pairs, eed_stats) = eed_join.self_join(&ds.strings);
    let eed_time = eed_start.elapsed();

    // 3. Verification comparison inside the (k,τ) join.
    let (naive_result, naive_time) = run_join(config.with_verifier(VerifierKind::Naive), &ds);

    let mut table = Table::new(&["metric", "(k,tau) join", "eed join"]);
    table.row(vec![
        "index bytes / data bytes".into(),
        format!(
            "{:.2}",
            disjoint.estimated_bytes() as f64 / data_bytes as f64
        ),
        format!(
            "{:.2}",
            overlapping.estimated_bytes() as f64 / data_bytes as f64
        ),
    ]);
    table.row(vec!["join time (ms)".into(), ms(qfct_time), ms(eed_time)]);
    table.row(vec![
        "pairs fully evaluated".into(),
        qfct_result.stats.verified_pairs().to_string(),
        eed_stats.pairs_evaluated.to_string(),
    ]);
    table.row(vec![
        "pairs skipped (over world budget)".into(),
        "0".into(),
        eed_stats.skipped_over_cap.to_string(),
    ]);
    table.row(vec![
        "output pairs".into(),
        qfct_result.stats.output_pairs.to_string(),
        eed_pairs.len().to_string(),
    ]);
    table.row(vec![
        "verification time (ms)".into(),
        ms(qfct_result.stats.timings.verify),
        format!(
            "{} (naive inside (k,tau): {})",
            "—",
            ms(naive_result.stats.timings.verify)
        ),
    ]);

    println!(
        "§7.9: (k={}, tau={}) join vs eed join (d={d}) on dblp, n={n}\n",
        defaults.k, defaults.tau
    );
    table.print();
    let _ = naive_time;
    write_result(
        "exp_eed",
        &serde_json::json!({
            "n": n,
            "data_bytes": data_bytes,
            "disjoint_index_bytes": disjoint.estimated_bytes(),
            "overlapping_index_bytes": overlapping.estimated_bytes(),
            "qfct_join_ms": qfct_time.as_secs_f64() * 1e3,
            "eed_join_ms": eed_time.as_secs_f64() * 1e3,
            "qfct_verified_pairs": qfct_result.stats.verified_pairs(),
            "eed_pairs_evaluated": eed_stats.pairs_evaluated,
            "eed_skipped_over_cap": eed_stats.skipped_over_cap,
            "qfct_output": qfct_result.stats.output_pairs,
            "eed_output": eed_pairs.len(),
            "trie_verify_ms": qfct_result.stats.timings.verify.as_secs_f64() * 1e3,
            "naive_verify_ms": naive_result.stats.timings.verify.as_secs_f64() * 1e3,
        }),
    );
}
