//! Ablation: the paper's Theorem 2 bound vs this implementation's sound
//! bound (DESIGN.md §3.3a finding 1).
//!
//! For every length-compatible pair of a dblp-like dataset, computes both
//! q-gram pruning bounds and reports:
//!
//! * how often the two bounds disagree on the pruning decision;
//! * *risky prunes*: pairs the paper-faithful filter prunes but the sound
//!   filter keeps — each one is a potential false negative;
//! * for risky prunes with tractable world counts, the exact
//!   `Pr(ed ≤ k)`, separating confirmed false negatives (exact > τ) from
//!   lucky prunes (exact ≤ τ);
//! * the pruning-power price of soundness (candidates kept by each).

use usj_bench::{dataset, write_result, Args, Table};
use usj_datagen::DatasetKind;
use usj_qgram::{AlphaMode, FilterVerdict, QGramFilter};
use usj_verify::exact_similarity_prob_capped;

fn main() {
    let args = Args::parse(
        "exp_soundness — paper Theorem 2 bound vs sound bound\n\
         flags: --n <strings, default 600>",
    );
    let n = args.get_usize("n", 600);
    let (k, tau, q) = (2usize, 0.1f64, 3usize);

    let mut table = Table::new(&[
        "theta",
        "pairs",
        "paper_kept",
        "sound_kept",
        "risky_prunes",
        "confirmed_false_neg",
        "unverifiable",
    ]);
    let mut records = Vec::new();

    for theta in [0.1, 0.2, 0.3, 0.4] {
        let ds = dataset(DatasetKind::Dblp, n, theta);
        let paper = QGramFilter::new(k, tau, q)
            .with_alpha_mode(AlphaMode::Grouped)
            .with_paper_bound(true);
        let sound = QGramFilter::new(k, tau, q);

        let (mut pairs, mut paper_kept, mut sound_kept) = (0u64, 0u64, 0u64);
        let mut risky = 0u64;
        let mut confirmed = 0u64;
        let mut unverifiable = 0u64;
        for i in 0..ds.strings.len() {
            for j in (i + 1)..ds.strings.len() {
                let (r, s) = (&ds.strings[j], &ds.strings[i]);
                if r.len().abs_diff(s.len()) > k {
                    continue;
                }
                pairs += 1;
                let p = paper.evaluate(r, s).verdict;
                let g = sound.evaluate(r, s).verdict;
                if p == FilterVerdict::Candidate {
                    paper_kept += 1;
                }
                if g == FilterVerdict::Candidate {
                    sound_kept += 1;
                }
                if p == FilterVerdict::Pruned && g == FilterVerdict::Candidate {
                    risky += 1;
                    match exact_similarity_prob_capped(r, s, k, 1 << 22) {
                        Some(exact) if exact > tau => confirmed += 1,
                        Some(_) => {}
                        None => unverifiable += 1,
                    }
                }
            }
        }
        table.row(vec![
            format!("{theta:.1}"),
            pairs.to_string(),
            paper_kept.to_string(),
            sound_kept.to_string(),
            risky.to_string(),
            confirmed.to_string(),
            unverifiable.to_string(),
        ]);
        records.push(serde_json::json!({
            "theta": theta,
            "pairs": pairs,
            "paper_kept": paper_kept,
            "sound_kept": sound_kept,
            "risky_prunes": risky,
            "confirmed_false_negatives": confirmed,
            "unverifiable": unverifiable,
        }));
    }

    println!(
        "Soundness ablation on dblp (n={n}, k={k}, tau={tau}, q={q}):\n\
         'risky_prunes' = pairs pruned by the paper-faithful Theorem 2 filter\n\
         but kept by the sound filter; 'confirmed_false_neg' = risky prunes whose\n\
         exact Pr(ed<=k) provably exceeds tau (i.e. results the paper's filter loses).\n"
    );
    table.print();
    write_result("exp_soundness", &serde_json::Value::Array(records));
}
