//! Figure 3 — Effect of dataset size |S| on the dblp dataset.
//!
//! Sweeps the collection size and reports, for each algorithm variant
//! (QFCT, QFT, QCT, FCT), the filtering time and the total join time.
//! Paper shape: the q-gram-based variants' filtering time grows gently;
//! FCT's grows ~quadratically (it evaluates every length-compatible
//! pair); QFT deteriorates in *total* time for lack of CDF bounds; QFCT
//! (and QCT) scale best, with QFCT ahead by combining cheap q-grams with
//! tight CDF bounds.

use usj_bench::{
    dataset, default_config, ms, run_join_recorded, run_par_join_recorded, write_obs_snapshot,
    write_result, Args, Table,
};
use usj_core::obs::Gauge;
use usj_core::{IndexedCollection, Pipeline};
use usj_datagen::DatasetKind;

fn main() {
    let args = Args::parse(
        "fig3_scalability — join time vs dataset size (Fig 3)\n\
         flags: --base <smallest n, default 500>  --steps <default 4>  --threads <default 4>",
    );
    let base = args.get_usize("base", 500);
    let steps = args.get_usize("steps", 4);
    let threads = args.get_usize("threads", 4);
    let sizes: Vec<usize> = (0..steps).map(|i| base << i).collect();

    let mut table = Table::new(&["n", "algorithm", "filter_ms", "total_ms", "output"]);
    let mut records = Vec::new();

    for &n in &sizes {
        let ds = dataset(DatasetKind::Dblp, n, 0.2);
        for pipeline in Pipeline::all() {
            let config = default_config(DatasetKind::Dblp).with_pipeline(pipeline);
            let (result, total, rec) = run_join_recorded(config, &ds);
            let filtering = result.stats.timings.filtering();
            // Per-phase latency histograms for the largest size, one
            // snapshot per variant — the per-probe view behind this
            // figure's aggregate filter/total columns.
            if Some(&n) == sizes.last() {
                let variant = pipeline.acronym().to_lowercase();
                write_obs_snapshot(&format!("fig3_scalability_{variant}"), &rec);
            }
            table.row(vec![
                n.to_string(),
                pipeline.acronym().into(),
                ms(filtering),
                ms(total),
                result.stats.output_pairs.to_string(),
            ]);
            records.push(serde_json::json!({
                "n": n,
                "algorithm": pipeline.acronym(),
                "filter_ms": filtering.as_secs_f64() * 1e3,
                "total_ms": total.as_secs_f64() * 1e3,
                "output_pairs": result.stats.output_pairs,
                "verified": result.stats.verified_pairs(),
            }));
        }
    }

    println!("Figure 3: scalability on dblp (k=2, tau=0.1, theta=0.2)\n");
    table.print();
    write_result("fig3_scalability", &serde_json::Value::Array(records));

    // Index-memory before/after the length-banded sharded driver: the
    // pre-sharding parallel join kept the full index resident for the
    // whole run (peak == the built index), while the banded driver only
    // holds the shards a wave can reach. `peak_resident_bytes` comes from
    // the new residency gauge in the merged worker snapshot.
    let mut mem_table = Table::new(&[
        "n",
        "full_index_kb",
        "peak_resident_kb",
        "resident/full",
        "par_total_ms",
    ]);
    let mut mem_records = Vec::new();
    for &n in &sizes {
        let ds = dataset(DatasetKind::Dblp, n, 0.2);
        let config = default_config(DatasetKind::Dblp);
        let full = IndexedCollection::build(config.clone(), ds.alphabet.size(), ds.strings.clone())
            .index_bytes() as u64;
        let (result, total, rec) = run_par_join_recorded(config, &ds, threads);
        let peak = rec.gauge_max(Gauge::PeakResidentBytes);
        if Some(&n) == sizes.last() {
            // The parallel snapshot carries the residency gauges that
            // prove the memory bound (resident_shards, peak_resident_bytes).
            write_obs_snapshot("fig3_scalability_parallel", &rec);
        }
        mem_table.row(vec![
            n.to_string(),
            format!("{:.1}", full as f64 / 1024.0),
            format!("{:.1}", peak as f64 / 1024.0),
            format!("{:.3}", peak as f64 / full as f64),
            ms(total),
        ]);
        mem_records.push(serde_json::json!({
            "n": n,
            "threads": threads,
            "full_index_bytes": full,
            "peak_resident_bytes": peak,
            "output_pairs": result.stats.output_pairs,
            "par_total_ms": total.as_secs_f64() * 1e3,
        }));
    }
    println!("\nIndex memory: full index vs sharded-driver peak resident ({threads} threads)\n");
    mem_table.print();
    write_result("fig3_memory", &serde_json::Value::Array(mem_records));
}
