//! Randomised stress test: thousands of random collections through every
//! pipeline, validated against the possible-world oracle.
//!
//! Expensive; run explicitly with
//! `cargo test -p usj-core --test stress --release -- --ignored`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use usj_core::{oracle_self_join, JoinConfig, Pipeline, SimilarityJoin};
use usj_model::{Position, UncertainString};

fn random_string(rng: &mut StdRng, sigma: u8, max_len: usize) -> UncertainString {
    let len = rng.gen_range(2..=max_len);
    let positions = (0..len)
        .map(|i| {
            if rng.gen_bool(0.35) {
                let a = rng.gen_range(0..sigma);
                let mut b = rng.gen_range(0..sigma);
                while b == a {
                    b = rng.gen_range(0..sigma);
                }
                let p = rng.gen_range(0.05..0.95);
                Position::uncertain(i, vec![(a, p), (b, 1.0 - p)]).unwrap()
            } else {
                Position::certain(rng.gen_range(0..sigma))
            }
        })
        .collect();
    UncertainString::new(positions)
}

#[test]
#[ignore = "slow stress test; run with --ignored"]
fn join_matches_oracle_across_thousands_of_cases() {
    let mut failures = Vec::new();
    for seed in 0u64..1500 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(2..8);
        let strings: Vec<UncertainString> = (0..n).map(|_| random_string(&mut rng, 3, 9)).collect();
        let k = rng.gen_range(1..=2usize);
        let tau = rng.gen_range(0.02..0.8) + 1e-6;
        let q = rng.gen_range(2..=4usize);
        let expected: Vec<(u32, u32)> = oracle_self_join(&strings, k, tau)
            .iter()
            .map(|p| (p.left, p.right))
            .collect();
        for pipeline in Pipeline::all() {
            let config = JoinConfig::new(k, tau)
                .with_q(q)
                .with_pipeline(pipeline)
                .with_early_stop(false);
            let result = SimilarityJoin::new(config, 3).self_join(&strings);
            let got: Vec<(u32, u32)> = result.pairs.iter().map(|p| (p.left, p.right)).collect();
            if got != expected {
                failures.push(format!(
                    "seed {seed} pipeline {pipeline:?} k={k} tau={tau} q={q}: got {got:?} want {expected:?}"
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "{} failures:\n{}",
        failures.len(),
        failures.join("\n")
    );
}
