//! Differential tests: the length-banded sharded parallel driver against
//! the sequential driver against the brute-force oracle.
//!
//! The in-src tests in `parallel.rs` cover the same contract on small
//! deterministic inputs (they also run under the offline gate, which
//! strips dev-dependencies); this suite drives the generated datasets at
//! larger scale with auto wave sizing and several thread counts.

use usj_core::obs::{CollectingRecorder, Counter, Gauge};
use usj_core::{
    oracle_self_join, par_self_join, par_self_join_recorded, IndexedCollection, JoinConfig,
    JoinResult, Pipeline, SimilarityJoin,
};
use usj_datagen::{DatasetKind, DatasetSpec};

fn pair_key(r: &JoinResult) -> Vec<(u32, u32, u64)> {
    r.pairs
        .iter()
        .map(|p| (p.left, p.right, p.prob.to_bits()))
        .collect()
}

fn funnel(r: &JoinResult) -> [u64; 13] {
    let s = &r.stats;
    [
        s.pairs_in_scope,
        s.qgram_survivors,
        s.qgram_pruned_count,
        s.qgram_pruned_bound,
        s.freq_survivors,
        s.freq_pruned_lower,
        s.freq_pruned_chebyshev,
        s.cdf_accepted,
        s.cdf_rejected,
        s.cdf_undecided,
        s.verified_similar,
        s.verified_dissimilar,
        s.output_pairs,
    ]
}

#[test]
fn generated_datasets_all_pipelines_and_thread_counts() {
    for (kind, k, tau) in [
        (DatasetKind::Dblp, 2usize, 0.1),
        (DatasetKind::Protein, 4, 0.01),
    ] {
        let ds = DatasetSpec::new(kind, 250, 0xD1FF).generate();
        let sigma = ds.alphabet.size();
        for pipeline in Pipeline::all() {
            let config = JoinConfig::new(k, tau).with_pipeline(pipeline);
            let seq = SimilarityJoin::new(config.clone(), sigma).self_join(&ds.strings);
            for threads in [2, 3, 4] {
                let par = par_self_join(config.clone(), sigma, &ds.strings, threads);
                assert_eq!(
                    pair_key(&par),
                    pair_key(&seq),
                    "{kind:?} {pipeline:?} threads={threads}"
                );
                assert_eq!(funnel(&par), funnel(&seq));
            }
        }
    }
}

/// A tiny `max_segment_instances` overflows segment equivalent sets on
/// uncertain probes, taking the incomplete (conservative surfacing) path;
/// output must still agree everywhere — driver vs driver vs oracle.
#[test]
fn over_cap_path_agrees_with_oracle() {
    let ds = DatasetSpec::new(DatasetKind::Dblp, 120, 0xCA11).generate();
    let sigma = ds.alphabet.size();
    let (k, tau) = (2usize, 0.1);
    let oracle = oracle_self_join(&ds.strings, k, tau);
    let opairs: Vec<(u32, u32)> = oracle.iter().map(|p| (p.left, p.right)).collect();
    for pipeline in Pipeline::all() {
        for max_instances in [1usize, 2, 1 << 14] {
            let mut config = JoinConfig::new(k, tau)
                .with_pipeline(pipeline)
                .with_early_stop(false);
            config.max_segment_instances = max_instances;
            let seq = SimilarityJoin::new(config.clone(), sigma).self_join(&ds.strings);
            let spairs: Vec<(u32, u32)> = seq.pairs.iter().map(|p| (p.left, p.right)).collect();
            assert_eq!(spairs, opairs, "{pipeline:?} cap={max_instances}");
            for (s, o) in seq.pairs.iter().zip(&oracle) {
                assert!((s.prob - o.prob).abs() < 1e-9);
            }
            for threads in [2, 4] {
                let par = par_self_join(config.clone(), sigma, &ds.strings, threads);
                assert_eq!(pair_key(&par), pair_key(&seq));
                assert_eq!(funnel(&par), funnel(&seq));
            }
        }
    }
}

/// The residency gauges in the merged parallel snapshot prove the memory
/// bound on a realistic length distribution: peak resident bytes stay
/// strictly below the full index the pre-sharding driver held.
#[test]
fn resident_memory_stays_below_full_index_on_generated_data() {
    let ds = DatasetSpec::new(DatasetKind::Dblp, 400, 0x3A9).generate();
    let sigma = ds.alphabet.size();
    let config = JoinConfig::new(2, 0.1).with_shard_band(1);
    let full =
        IndexedCollection::build(config.clone(), sigma, ds.strings.clone()).index_bytes() as u64;
    let (par, rec) = par_self_join_recorded(
        config.clone(),
        sigma,
        &ds.strings,
        3,
        CollectingRecorder::new,
    );
    let peak = rec.gauge_max(Gauge::PeakResidentBytes);
    assert!(peak > 0);
    assert!(peak < full, "peak resident {peak} vs full index {full}");
    assert!(rec.counter_total(Counter::StealBatches) > 0);
    assert_eq!(rec.probes(), 400);
    assert_eq!(
        rec.counter_total(Counter::OutputPairs),
        par.stats.output_pairs
    );

    // shard_band = 1 reproduces the sequential eviction points exactly.
    let seq = SimilarityJoin::new(config, sigma).self_join(&ds.strings);
    assert_eq!(par.stats.peak_index_bytes, seq.stats.peak_index_bytes);
}
