//! Loom-free concurrency smoke test for the shared-index read path: N
//! threads issuing `query_cached_recorded` (and full collection
//! searches) against one shared index must produce results bit-identical
//! to the same probes run sequentially. The index is `&self` all the way
//! down — per-probe state (equivalent-set caches, recorders) lives with
//! the caller — so concurrent readers must never observe each other.

use std::collections::BTreeMap;

use usj_core::obs::CollectingRecorder;
use usj_core::{EquivCache, IndexedCollection, JoinConfig, ProbeBudget, SegmentIndex};
use usj_model::{Alphabet, UncertainString};

const THREADS: usize = 8;

fn config() -> JoinConfig {
    JoinConfig::new(1, 0.3)
}

/// Certain and uncertain DNA strings across a few lengths.
fn strings() -> Vec<UncertainString> {
    let alpha = Alphabet::dna();
    [
        "ACGT",
        "ACGA",
        "AC{(G,0.7),(A,0.3)}T",
        "ACGTAC",
        "ACGTAT",
        "ACG{(T,0.9),(G,0.1)}AC",
        "TTTTTT",
        "ACGTACGT",
        "ACGTACGA",
    ]
    .iter()
    .map(|t| UncertainString::parse(t, &alpha).unwrap())
    .collect()
}

fn probes() -> Vec<UncertainString> {
    let alpha = Alphabet::dna();
    ["ACGT", "ACGTAC", "A{(C,0.5),(G,0.5)}GTAC", "ACGTACGT"]
        .iter()
        .map(|t| UncertainString::parse(t, &alpha).unwrap())
        .collect()
}

/// Normalises one `query_cached_recorded` answer into an ordered,
/// bit-comparable form.
type QueryKey = Option<(BTreeMap<u32, Vec<u64>>, Vec<bool>)>;

fn query_key(
    index: &SegmentIndex,
    probe: &UncertainString,
    indexed_len: usize,
    config: &JoinConfig,
) -> QueryKey {
    let mut cache = EquivCache::default();
    let mut rec = CollectingRecorder::new();
    index
        .query_cached_recorded(probe, indexed_len, config, &mut cache, &mut rec)
        .map(|(alphas, over_cap)| {
            let alphas: BTreeMap<u32, Vec<u64>> = alphas
                .iter()
                .map(|(id, v)| (id, v.iter().map(|p| p.to_bits()).collect()))
                .collect();
            (alphas, over_cap)
        })
}

#[test]
fn concurrent_index_queries_are_bit_identical_to_sequential() {
    let cfg = config();
    let strings = strings();
    let mut index = SegmentIndex::new();
    // The join driver inserts sorted by (length, id); mirror that.
    let mut order: Vec<usize> = (0..strings.len()).collect();
    order.sort_by_key(|&i| (strings[i].len(), i));
    for i in order {
        index.insert(i as u32, &strings[i], &cfg);
    }
    let lengths: Vec<usize> = {
        let mut ls: Vec<usize> = strings.iter().map(UncertainString::len).collect();
        ls.sort_unstable();
        ls.dedup();
        ls
    };
    // Sequential baseline: every (probe, indexed length) combination.
    let probes = probes();
    let baseline: Vec<QueryKey> = probes
        .iter()
        .flat_map(|p| lengths.iter().map(|&len| query_key(&index, p, len, &cfg)))
        .collect();

    let per_thread: Vec<Vec<QueryKey>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let (index, probes, lengths, cfg) = (&index, &probes, &lengths, &cfg);
                scope.spawn(move || {
                    probes
                        .iter()
                        .flat_map(|p| lengths.iter().map(|&len| query_key(index, p, len, cfg)))
                        .collect::<Vec<QueryKey>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert!(
        baseline
            .iter()
            .any(|k| k.as_ref().is_some_and(|(a, _)| !a.is_empty())),
        "baseline surfaced no candidates; the smoke test would be vacuous"
    );
    for (t, results) in per_thread.iter().enumerate() {
        assert_eq!(results, &baseline, "thread {t} diverged from sequential");
    }
}

#[test]
fn concurrent_interner_resolves_while_probing() {
    // The global segment interner is frozen after build; concurrent
    // readers resolving ids while other threads run full index probes
    // must agree with a sequential resolve pass (sanitize.sh runs this
    // under TSan as the interner data-race check).
    let cfg = config();
    let strings = strings();
    let mut index = SegmentIndex::new();
    for (i, s) in strings.iter().enumerate() {
        index.insert(i as u32, s, &cfg);
    }
    let worlds: Vec<Vec<u8>> = strings
        .iter()
        .map(|s| s.most_probable_world().instance)
        .collect();
    // Sequential baseline: resolve the leading 2- and 3-byte segments of
    // every most-probable world (some hit, some miss — both must be
    // stable under concurrency).
    let baseline: Vec<Option<u32>> = worlds
        .iter()
        .flat_map(|w| [index.interner().resolve(&w[..2]), index.interner().resolve(&w[..3])])
        .collect();
    assert!(
        baseline.iter().any(Option::is_some),
        "no segment resolved; the interner smoke test would be vacuous"
    );
    let probes = probes();
    let per_thread: Vec<Vec<Option<u32>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let (index, worlds, probes, cfg) = (&index, &worlds, &probes, &cfg);
                scope.spawn(move || {
                    // Interleave probes (which read the interner through
                    // the resolved-set path) with direct resolves.
                    for p in probes {
                        let _ = query_key(index, p, p.len(), cfg);
                    }
                    worlds
                        .iter()
                        .flat_map(|w| {
                            [
                                index.interner().resolve(&w[..2]),
                                index.interner().resolve(&w[..3]),
                            ]
                        })
                        .collect::<Vec<Option<u32>>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (t, results) in per_thread.iter().enumerate() {
        assert_eq!(results, &baseline, "thread {t} diverged from sequential");
    }
}

#[test]
fn concurrent_collection_searches_match_sequential() {
    let coll = IndexedCollection::build(config(), Alphabet::dna().size(), strings());
    let probes = probes();
    let baseline: Vec<Vec<(u32, u64)>> = probes
        .iter()
        .map(|p| {
            coll.search(p)
                .into_iter()
                .map(|h| (h.id, h.prob.to_bits()))
                .collect()
        })
        .collect();
    assert!(
        baseline.iter().any(|hits| !hits.is_empty()),
        "baseline found no hits; the smoke test would be vacuous"
    );
    let per_thread: Vec<Vec<Vec<(u32, u64)>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let (coll, probes) = (&coll, &probes);
                scope.spawn(move || {
                    probes
                        .iter()
                        .enumerate()
                        .map(|(i, p)| {
                            // Exercise the recorded, budgeted entry point
                            // concurrently too — it is what the server uses.
                            let mut rec = CollectingRecorder::new();
                            let (hits, _stats) = coll
                                .search_budgeted_recorded(
                                    (t * probes.len() + i) as u32,
                                    p,
                                    |_| true,
                                    ProbeBudget::default(),
                                    &mut rec,
                                )
                                .expect("unlimited budget never aborts");
                            hits.into_iter().map(|h| (h.id, h.prob.to_bits())).collect()
                        })
                        .collect::<Vec<Vec<(u32, u64)>>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (t, results) in per_thread.iter().enumerate() {
        assert_eq!(results, &baseline, "thread {t} diverged from sequential");
    }
}
