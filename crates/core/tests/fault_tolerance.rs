//! Fault-injection differential suite for the fault-tolerant parallel
//! driver: every registered failpoint is killed deterministically, and
//! the join must either complete bit-identically (recovered) or fail
//! cleanly with a checkpoint from which `resume` reproduces the
//! uninterrupted run — pairs *and* funnel counters.
//!
//! All tests serialise on a file-local mutex: `usj-fault` plans are
//! process-global, so a concurrently running test would consume another
//! plan's scheduled hits.

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use usj_core::obs::NoopRecorder;
use usj_core::{
    par_self_join, par_self_join_ft, Checkpoint, CheckpointError, FaultReport, FtOptions,
    JoinConfig, JoinError, JoinResult,
};
use usj_fault::{shield, FaultAction, FaultPlan};
use usj_model::{Alphabet, UncertainString};

fn lock() -> MutexGuard<'static, ()> {
    static TEST_LOCK: Mutex<()> = Mutex::new(());
    shield::install();
    // A poisoned lock only means an earlier test failed; the guard
    // protects no data.
    TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// 15 strings over 5 length groups (4..=8), so `shard_band = 1` yields a
/// 5-wave plan with matches inside and across adjacent waves.
fn collection() -> Vec<UncertainString> {
    let alpha = Alphabet::dna();
    let base = "ACGTACGTACGT";
    let mut out = Vec::new();
    for len in 4usize..=8 {
        let prefix = &base[..len];
        out.push(UncertainString::parse(prefix, &alpha).unwrap());
        // One substitution away from the prefix.
        let mut t: Vec<char> = prefix.chars().collect();
        t[len - 2] = 'T';
        let sub: String = t.iter().collect();
        out.push(UncertainString::parse(&sub, &alpha).unwrap());
        // An uncertain variant of the prefix.
        let uncertain = format!("{}{{(A,0.6),(C,0.4)}}{}", &prefix[..1], &prefix[2..]);
        out.push(UncertainString::parse(&uncertain, &alpha).unwrap());
    }
    out
}

fn config() -> JoinConfig {
    JoinConfig::new(1, 0.3).with_shard_band(1).with_batch_range(1, 2)
}

fn run_ft(
    config: &JoinConfig,
    strings: &[UncertainString],
    opts: &FtOptions,
) -> Result<(JoinResult, FaultReport, NoopRecorder), JoinError> {
    par_self_join_ft(config.clone(), 4, strings, 3, opts, || NoopRecorder)
}

fn pairs_key(r: &JoinResult) -> Vec<(u32, u32, u64)> {
    r.pairs
        .iter()
        .map(|p| (p.left, p.right, p.prob.to_bits()))
        .collect()
}

/// The funnel counters that must be invariant under faults the run
/// survived or resumed across.
fn funnel(r: &JoinResult) -> [u64; 13] {
    let s = &r.stats;
    [
        s.pairs_in_scope,
        s.qgram_survivors,
        s.qgram_pruned_count,
        s.qgram_pruned_bound,
        s.freq_survivors,
        s.freq_pruned_lower,
        s.freq_pruned_chebyshev,
        s.cdf_accepted,
        s.cdf_rejected,
        s.cdf_undecided,
        s.verified_similar,
        s.verified_dissimilar,
        s.output_pairs,
    ]
}

fn ckdir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    // ordering: Relaxed — only uniqueness matters.
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("usj-ft-test-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn error_checkpoint(e: &JoinError) -> Option<PathBuf> {
    match e {
        JoinError::Deadline { checkpoint, .. } | JoinError::Faulted { checkpoint, .. } => {
            checkpoint.clone()
        }
        JoinError::Checkpoint(_) => None,
    }
}

#[test]
fn ft_without_faults_matches_classic_driver_and_commits_checkpoints() {
    let _g = lock();
    let strings = collection();
    let baseline = par_self_join(config(), 4, &strings, 3);
    assert!(!baseline.pairs.is_empty(), "test collection must produce pairs");

    let dir = ckdir("clean");
    let opts = FtOptions {
        checkpoint_dir: Some(dir.clone()),
        resume: false,
    };
    let (result, report, _rec) = run_ft(&config(), &strings, &opts).unwrap();
    assert_eq!(pairs_key(&result), pairs_key(&baseline));
    assert_eq!(funnel(&result), funnel(&baseline));
    assert_eq!(report.quarantined, Vec::<u32>::new());
    assert_eq!(report.batches_retried, 0);
    assert_eq!(report.faults_injected, 0);
    assert_eq!(report.waves_resumed, 0);

    // The final checkpoint covers the whole run.
    let ck = Checkpoint::load(&dir).unwrap();
    assert_eq!(report.checkpoint, Some(Checkpoint::path_in(&dir)));
    assert_eq!(ck.pairs.len(), result.pairs.len());

    // Resuming a *finished* run replays nothing and probes nothing new.
    let resumed = run_ft(
        &config(),
        &strings,
        &FtOptions {
            checkpoint_dir: Some(dir.clone()),
            resume: true,
        },
    );
    let (res2, rep2, _) = resumed.unwrap();
    assert_eq!(pairs_key(&res2), pairs_key(&baseline));
    assert_eq!(funnel(&res2), funnel(&baseline));
    assert!(rep2.waves_resumed > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deadlines_fail_cleanly_at_batch_granularity() {
    let _g = lock();
    let strings = collection();

    // An already-expired deadline dies before wave 0 with no partial junk.
    let cfg = config().with_deadline(Some(Duration::ZERO));
    let err = run_ft(&cfg, &strings, &FtOptions::default()).unwrap_err();
    match &err {
        JoinError::Deadline {
            completed_waves,
            checkpoint,
            ..
        } => {
            assert_eq!(*completed_waves, 0);
            assert_eq!(*checkpoint, None);
        }
        other => panic!("expected Deadline, got {other}"),
    }
    assert!(err.to_string().contains("deadline exceeded"));

    // A delay fault longer than the deadline trips the in-wave check.
    let cfg = config().with_deadline(Some(Duration::from_millis(10)));
    let _armed = FaultPlan::new()
        .fail_at("parallel.batch", 0, FaultAction::Delay(Duration::from_millis(100)))
        .arm();
    let err = run_ft(&cfg, &strings, &FtOptions::default()).unwrap_err();
    assert!(matches!(err, JoinError::Deadline { completed_waves: 0, .. }), "{err}");
}

#[test]
fn tight_deadline_aborts_sequential_and_parallel_drivers_identically() {
    let _g = lock();
    let strings = collection();
    let cfg = config().with_deadline(Some(Duration::ZERO));

    // Same deadline, both drivers: the sequential `try_self_join` and the
    // fault-tolerant parallel driver must refuse with the same error
    // shape — a Deadline with zero committed waves and no checkpoint —
    // and the same leading error text.
    let seq_err = usj_core::SimilarityJoin::new(cfg.clone(), 4)
        .try_self_join(&strings)
        .unwrap_err();
    let par_err = run_ft(&cfg, &strings, &FtOptions::default()).unwrap_err();
    for err in [&seq_err, &par_err] {
        match err {
            JoinError::Deadline {
                completed_waves,
                checkpoint,
                ..
            } => {
                assert_eq!(*completed_waves, 0);
                assert_eq!(*checkpoint, None);
            }
            other => panic!("expected Deadline, got {other}"),
        }
        assert!(err.to_string().contains("deadline exceeded"), "{err}");
        assert!(err.to_string().contains("0 wave(s) completed"), "{err}");
    }
}

#[test]
fn recovered_batch_panic_is_bit_identical() {
    let _g = lock();
    let strings = collection();
    let baseline = par_self_join(config(), 4, &strings, 3);

    let armed = FaultPlan::one_shot_panic("parallel.batch").arm();
    let (result, report, _rec) = run_ft(&config(), &strings, &FtOptions::default()).unwrap();
    drop(armed);

    assert_eq!(pairs_key(&result), pairs_key(&baseline));
    assert_eq!(funnel(&result), funnel(&baseline));
    assert_eq!(report.batches_retried, 1);
    assert_eq!(report.faults_injected, 1);
    assert!(report.quarantined.is_empty());
    assert_eq!(result.stats.batches_retried, 1);
    assert_eq!(result.stats.probes_quarantined, 0);
}

#[test]
fn persistent_probe_panic_is_quarantined_not_fatal() {
    let _g = lock();
    let strings = collection();
    let baseline = par_self_join(config(), 4, &strings, 3);

    // Fire on the batch run *and* on the isolation retry: the probe under
    // that failpoint consult is poison.
    let armed = FaultPlan::new()
        .fail_at("parallel.verify", 0, FaultAction::Panic)
        .fail_at("parallel.verify", 1, FaultAction::Panic)
        .arm();
    let (result, report, _rec) = run_ft(&config(), &strings, &FtOptions::default()).unwrap();
    drop(armed);

    assert_eq!(report.quarantined.len(), 1);
    assert_eq!(result.stats.probes_quarantined, 1);
    assert!(report.batches_retried >= 1);
    assert_eq!(report.faults_injected, 2);
    let q = report.quarantined[0];

    // The output is exactly the baseline minus pairs the quarantined
    // probe was responsible for deciding.
    let got = pairs_key(&result);
    let want = pairs_key(&baseline);
    assert!(got.iter().all(|p| want.contains(p)));
    let missing: Vec<_> = want.iter().filter(|p| !got.contains(p)).collect();
    assert!(
        missing.iter().all(|p| p.0 == q || p.1 == q),
        "missing pairs {missing:?} must all involve quarantined probe {q}"
    );
}

#[test]
fn delay_faults_are_survived_and_counted() {
    let _g = lock();
    let strings = collection();
    let baseline = par_self_join(config(), 4, &strings, 3);

    let tick = Duration::from_millis(1);
    let armed = FaultPlan::new()
        .fail_at("parallel.verify", 0, FaultAction::Delay(tick))
        .fail_at("parallel.evict", 0, FaultAction::Delay(tick))
        // index.build delays are deliberately uncounted (see the failpoint
        // comment in index.rs): the total below must stay 2.
        .fail_at("index.build", 0, FaultAction::Delay(tick))
        .arm();
    let (result, report, _rec) = run_ft(&config(), &strings, &FtOptions::default()).unwrap();
    drop(armed);

    assert_eq!(pairs_key(&result), pairs_key(&baseline));
    assert_eq!(funnel(&result), funnel(&baseline));
    assert_eq!(report.faults_injected, 2);
    assert_eq!(report.batches_retried, 0);
    assert!(report.quarantined.is_empty());
}

#[test]
fn kill_at_every_failpoint_completes_or_resumes_bit_identically() {
    let _g = lock();
    let strings = collection();
    let baseline = par_self_join(config(), 4, &strings, 3);

    let points = [
        "parallel.evict",
        "parallel.batch",
        "parallel.verify",
        "index.build",
        "checkpoint.write",
    ];
    for point in points {
        for nth in [0u64, 1, 2] {
            let dir = ckdir("sweep");
            let opts = FtOptions {
                checkpoint_dir: Some(dir.clone()),
                resume: false,
            };
            let armed = FaultPlan::new().fail_at(point, nth, FaultAction::Panic).arm();
            let outcome = run_ft(&config(), &strings, &opts);
            drop(armed);

            let final_result = match outcome {
                // Recovered in-run (batch retry absorbed the panic).
                Ok((result, _report, _rec)) => result,
                Err(e) => {
                    // Fatal: must be a structured error, and resume (or a
                    // fresh run, if the fault struck before any wave
                    // committed) must reproduce the uninterrupted output.
                    let resume_from = error_checkpoint(&e);
                    match &e {
                        JoinError::Faulted { message, .. } => {
                            assert!(
                                message.contains(point),
                                "{point}#{nth}: fault message {message:?} should name the failpoint"
                            );
                        }
                        JoinError::Checkpoint(CheckpointError::Io(_)) => {
                            assert_eq!(point, "checkpoint.write");
                        }
                        other => panic!("{point}#{nth}: unexpected error {other}"),
                    }
                    let opts = FtOptions {
                        checkpoint_dir: Some(dir.clone()),
                        resume: resume_from.is_some(),
                    };
                    let (result, report, _rec) = run_ft(&config(), &strings, &opts)
                        .unwrap_or_else(|e| panic!("{point}#{nth}: resume failed: {e}"));
                    if resume_from.is_some() {
                        assert!(report.waves_resumed > 0, "{point}#{nth}");
                    }
                    result
                }
            };
            assert_eq!(
                pairs_key(&final_result),
                pairs_key(&baseline),
                "{point}#{nth}: pairs must match the uninterrupted run"
            );
            assert_eq!(
                funnel(&final_result),
                funnel(&baseline),
                "{point}#{nth}: funnel counters must match the uninterrupted run"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn resume_after_fatal_mid_join_fault_reproduces_everything() {
    let _g = lock();
    let strings = collection();
    let baseline = par_self_join(config(), 4, &strings, 3);
    let dir = ckdir("resume");
    let opts = FtOptions {
        checkpoint_dir: Some(dir.clone()),
        resume: false,
    };

    // Kill the build of wave 2: waves 0 and 1 are committed.
    let armed = FaultPlan::new()
        .fail_at("parallel.evict", 2, FaultAction::Panic)
        .arm();
    let err = run_ft(&config(), &strings, &opts).unwrap_err();
    drop(armed);
    let ck_path = match &err {
        JoinError::Faulted {
            wave,
            completed_waves,
            checkpoint,
            ..
        } => {
            assert_eq!(*wave, 2);
            assert_eq!(*completed_waves, 2);
            checkpoint.clone().expect("two waves committed a checkpoint")
        }
        other => panic!("expected Faulted, got {other}"),
    };
    assert!(ck_path.exists());

    let (result, report, _rec) = run_ft(
        &config(),
        &strings,
        &FtOptions {
            checkpoint_dir: Some(dir.clone()),
            resume: true,
        },
    )
    .unwrap();
    assert_eq!(report.waves_resumed, 2);
    assert_eq!(result.stats.waves_resumed, 2);
    assert_eq!(pairs_key(&result), pairs_key(&baseline));
    assert_eq!(funnel(&result), funnel(&baseline));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_defects_are_rejected_cleanly() {
    let _g = lock();
    let strings = collection();
    let dir = ckdir("defects");
    let opts = FtOptions {
        checkpoint_dir: Some(dir.clone()),
        resume: false,
    };

    // Manufacture a valid one-wave checkpoint via a fatal wave-1 fault.
    let armed = FaultPlan::new()
        .fail_at("parallel.evict", 1, FaultAction::Panic)
        .arm();
    let err = run_ft(&config(), &strings, &opts).unwrap_err();
    drop(armed);
    let ck_path = error_checkpoint(&err).expect("wave 0 committed a checkpoint");
    let resume = FtOptions {
        checkpoint_dir: Some(dir.clone()),
        resume: true,
    };

    // A different config (tau) is a fingerprint mismatch.
    let other_cfg = JoinConfig::new(1, 0.5).with_shard_band(1).with_batch_range(1, 2);
    let err = run_ft(&other_cfg, &strings, &resume).unwrap_err();
    assert!(
        matches!(
            err,
            JoinError::Checkpoint(CheckpointError::FingerprintMismatch { .. })
        ),
        "{err}"
    );
    // ... and so is a different input collection.
    let mut fewer = strings.clone();
    fewer.pop();
    let err = run_ft(&config(), &fewer, &resume).unwrap_err();
    assert!(
        matches!(
            err,
            JoinError::Checkpoint(CheckpointError::FingerprintMismatch { .. })
        ),
        "{err}"
    );

    // Truncation and corruption are rejected, not resumed.
    let intact = std::fs::read_to_string(&ck_path).unwrap();
    std::fs::write(&ck_path, &intact[..intact.len() / 2]).unwrap();
    let err = run_ft(&config(), &strings, &resume).unwrap_err();
    assert!(
        matches!(err, JoinError::Checkpoint(CheckpointError::Corrupt(_))),
        "{err}"
    );
    let mut flipped = intact.clone().into_bytes();
    flipped[intact.len() / 3] ^= 0x20;
    std::fs::write(&ck_path, flipped).unwrap();
    let err = run_ft(&config(), &strings, &resume).unwrap_err();
    assert!(
        matches!(err, JoinError::Checkpoint(CheckpointError::Corrupt(_))),
        "{err}"
    );

    // A missing file and a missing directory are distinct, clean errors.
    std::fs::remove_file(&ck_path).unwrap();
    let err = run_ft(&config(), &strings, &resume).unwrap_err();
    assert!(
        matches!(err, JoinError::Checkpoint(CheckpointError::Missing(_))),
        "{err}"
    );
    let err = run_ft(
        &config(),
        &strings,
        &FtOptions {
            checkpoint_dir: None,
            resume: true,
        },
    )
    .unwrap_err();
    assert!(
        matches!(err, JoinError::Checkpoint(CheckpointError::Io(_))),
        "{err}"
    );

    // An injected *error* (not panic) on the checkpoint write surfaces as
    // a checkpoint I/O error naming the injected message.
    let armed = FaultPlan::new()
        .fail_at("checkpoint.write", 0, FaultAction::Error("disk full".to_string()))
        .arm();
    let err = run_ft(&config(), &strings, &opts).unwrap_err();
    drop(armed);
    match &err {
        JoinError::Checkpoint(CheckpointError::Io(msg)) => {
            assert!(msg.contains("disk full"), "{msg}");
        }
        other => panic!("expected Checkpoint(Io), got {other}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
