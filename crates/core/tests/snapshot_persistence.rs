//! Crash-safety sweep for the snapshot I/O path: a fault injected at
//! *any* of the five `snapshot.*` failpoints — panic (process death) or
//! error (ENOSPC, EIO) — must leave a state from which the next start
//! either loads a verified snapshot or falls down the recovery ladder
//! to a correct rebuild. The post-restart index is proven bit-identical
//! to a never-crashed build via [`snapshot::collection_digest`] and
//! probe-level answer comparison.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, PoisonError};

use usj_core::snapshot::{self, LoadRung, SalvageMode};
use usj_core::{IndexedCollection, JoinConfig};
use usj_fault::{shield, FaultAction, FaultPlan};
use usj_model::{Alphabet, UncertainString};

/// Serialise with the rest of the fault suite: `usj-fault` plans are
/// process-global.
fn lock() -> MutexGuard<'static, ()> {
    static TEST_LOCK: Mutex<()> = Mutex::new(());
    shield::install();
    TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn dna(text: &str) -> UncertainString {
    UncertainString::parse(text, &Alphabet::dna()).unwrap()
}

/// A small collection spanning several length bands, with certain and
/// uncertain strings in each.
fn strings() -> Vec<UncertainString> {
    let mut v = Vec::new();
    for len in 4..=8usize {
        let base: String = "ACGT".chars().cycle().take(len).collect();
        v.push(dna(&base));
        let mut subst = base.clone();
        subst.replace_range(1..2, "G");
        v.push(dna(&subst));
        let uncertain = format!("{}{}", &base[..len - 1], "{(A,0.6),(T,0.4)}");
        v.push(dna(&uncertain));
    }
    v
}

fn config() -> JoinConfig {
    JoinConfig::new(1, 0.3)
}

fn scratch(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static N: AtomicUsize = AtomicUsize::new(0);
    // ordering: Relaxed — the counter only needs uniqueness.
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("usj-snap-ft-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One "process lifetime": write a snapshot of a freshly built index,
/// then restart from it. Panics injected anywhere inside are the
/// simulated crash.
fn write_then_load(path: &Path) {
    let cold = IndexedCollection::build(config(), 4, strings());
    let _ = snapshot::write(path, &cold);
    let _ = snapshot::load(path, &config(), 4, strings(), SalvageMode::Strict);
}

/// Every injected fault at every `snapshot.*` point, as both a panic
/// (process death mid-syscall) and an error (ENOSPC/EIO surfaced by the
/// OS): the follow-up start must recover an index bit-identical to a
/// never-crashed build, and its answers must match probe-for-probe.
#[test]
fn kill_at_every_snapshot_failpoint_recovers_bit_identically() {
    let _g = lock();
    let cold = IndexedCollection::build(config(), 4, strings());
    let want = snapshot::collection_digest(&cold);
    let probes = ["ACGTAC", "ACGTACGT", "GGGG{(A,0.5),(C,0.5)}G"];
    let points = [
        "snapshot.write",
        "snapshot.fsync",
        "snapshot.rename",
        "snapshot.read",
        "snapshot.salvage",
    ];
    for point in points {
        for action in [
            FaultAction::Panic,
            FaultAction::Error("no space left on device".to_string()),
        ] {
            let dir = scratch("sweep");
            let path = dir.join("index.snap");
            // First process: crash (or hit an I/O error) at the armed
            // point somewhere inside write-then-load.
            {
                let _guard = FaultPlan::new().fail_at(point, 0, action.clone()).arm();
                let _ = catch_unwind(AssertUnwindSafe(|| write_then_load(&path)));
            }
            // Restart with no faults: whatever the crash left behind —
            // old snapshot, new snapshot, tmp residue, or nothing — the
            // ladder must land on a bit-identical index.
            let loaded = snapshot::load(&path, &config(), 4, strings(), SalvageMode::Strict)
                .unwrap_or_else(|e| panic!("{point}/{action:?}: restart refused: {e}"));
            assert_eq!(
                snapshot::collection_digest(&loaded.collection),
                want,
                "{point}/{action:?}: post-restart index diverged (rung {:?}, reason {:?})",
                loaded.report.rung,
                loaded.report.reason
            );
            for probe in probes {
                let probe = dna(probe);
                assert_eq!(
                    loaded.collection.search(&probe),
                    cold.search(&probe),
                    "{point}/{action:?}: answers diverged"
                );
            }
            // No temp-file residue may survive the write path's cleanup
            // on the error leg (a panic legitimately strands the temp
            // file; the next durable write simply overwrites it).
            if matches!(action, FaultAction::Error(_)) {
                let tmp = dir.join("index.snap.tmp");
                assert!(!tmp.exists(), "{point}: temp residue after error fault");
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// ENOSPC mid-write (an `error:` plan, as an operator would arm it via
/// `USJ_FAULT_PLAN`) must leave a previously committed snapshot intact
/// and loadable — the atomic-rename window never exposes a torn file.
#[test]
fn write_error_preserves_the_previous_snapshot() {
    let _g = lock();
    let dir = scratch("enospc");
    let path = dir.join("index.snap");
    let cold = IndexedCollection::build(config(), 4, strings());
    snapshot::write(&path, &cold).expect("first write commits");
    let committed = std::fs::read(&path).unwrap();
    {
        let _guard = FaultPlan::parse("snapshot.write#0=error:no space left on device")
            .expect("plan parses")
            .arm();
        let err = snapshot::write(&path, &cold).expect_err("injected ENOSPC must surface");
        assert!(err.to_string().contains("no space"), "{err}");
    }
    assert_eq!(
        std::fs::read(&path).unwrap(),
        committed,
        "failed write must not touch the committed snapshot"
    );
    let loaded = snapshot::load(&path, &config(), 4, strings(), SalvageMode::Strict).unwrap();
    assert_eq!(loaded.report.rung, LoadRung::Verified);
    assert_eq!(
        snapshot::collection_digest(&loaded.collection),
        snapshot::collection_digest(&cold)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A band that fails salvage under [`SalvageMode::Degraded`] is left
/// out and reported — the caller (the server) keeps answering for it in
/// superset mode — while [`SalvageMode::Strict`] rebuilds it inline and
/// stays bit-identical.
#[test]
fn failed_salvage_degrades_or_rebuilds_by_mode() {
    let _g = lock();
    let dir = scratch("salvage");
    let path = dir.join("index.snap");
    let cold = IndexedCollection::build(config(), 4, strings());
    snapshot::write(&path, &cold).unwrap();

    // Strict: the failed band is rebuilt from source, bit-identically.
    {
        let _guard = FaultPlan::new()
            .fail_at("snapshot.salvage", 1, FaultAction::Error("salvage refused".into()))
            .arm();
        let loaded = snapshot::load(&path, &config(), 4, strings(), SalvageMode::Strict).unwrap();
        assert_eq!(loaded.report.rung, LoadRung::Salvaged);
        assert_eq!(loaded.report.bands_rebuilt, 1);
        assert!(loaded.report.degraded_bands.is_empty());
        assert_eq!(
            snapshot::collection_digest(&loaded.collection),
            snapshot::collection_digest(&cold)
        );
    }

    // Degraded: the failed band is reported, not silently repaired.
    {
        let _guard = FaultPlan::new()
            .fail_at("snapshot.salvage", 1, FaultAction::Error("salvage refused".into()))
            .arm();
        let loaded =
            snapshot::load(&path, &config(), 4, strings(), SalvageMode::Degraded).unwrap();
        assert_eq!(loaded.report.rung, LoadRung::Salvaged);
        assert_eq!(loaded.report.degraded_bands.len(), 1);
        assert_eq!(loaded.report.bands_rebuilt, 0);
        // The degraded band answers nothing through the q-gram index;
        // every other band still answers bit-identically.
        let degraded = loaded.report.degraded_bands[0];
        for probe in strings() {
            if probe.len().abs_diff(degraded) > config().k {
                assert_eq!(
                    loaded.collection.search(&probe),
                    cold.search(&probe),
                    "band {degraded} degradation leaked into unrelated lengths"
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// An injected read fault (short read / EIO) drops to the rebuild rung
/// — never a partial decode.
#[test]
fn read_fault_falls_to_full_rebuild() {
    let _g = lock();
    let dir = scratch("read");
    let path = dir.join("index.snap");
    let cold = IndexedCollection::build(config(), 4, strings());
    snapshot::write(&path, &cold).unwrap();
    let _guard = FaultPlan::new()
        .fail_at("snapshot.read", 0, FaultAction::Error("injected short read".into()))
        .arm();
    let loaded = snapshot::load(&path, &config(), 4, strings(), SalvageMode::Strict).unwrap();
    assert_eq!(loaded.report.rung, LoadRung::Rebuilt);
    assert!(!loaded.report.warm);
    assert!(loaded.report.reason.contains("injected"), "{}", loaded.report.reason);
    assert_eq!(
        snapshot::collection_digest(&loaded.collection),
        snapshot::collection_digest(&cold)
    );
    let _ = std::fs::remove_dir_all(&dir);
}
