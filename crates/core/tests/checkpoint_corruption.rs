//! Shared corruption corpus for both persistence codecs.
//!
//! Checkpoint loader: every byte-level defect — truncated lines,
//! bit-flipped FNV digests, garbage records — must be rejected with a
//! *positioned* [`CheckpointError::Corrupt`] (the message names the
//! offending 1-based line), and a resume over a damaged file must fail
//! loudly instead of silently replaying a partial prefix.
//!
//! Snapshot loader: the same defect classes — bit flips at every
//! section boundary, a truncation sweep over byte quantiles, garbage
//! headers and footers — must every one be *detected*
//! (`corruptions_detected ≥ 1`, never a [`LoadRung::Verified`] load)
//! and *recovered from*: the post-ladder index is bit-identical to a
//! cold rebuild ([`snapshot::collection_digest`]).

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, PoisonError};

use usj_core::obs::NoopRecorder;
use usj_core::snapshot::{self, LoadRung, SalvageMode};
use usj_core::{
    par_self_join_ft, Checkpoint, CheckpointError, FtOptions, IndexedCollection, JoinConfig,
    JoinStats, SimilarPair,
};
use usj_fault::shield;
use usj_model::{Alphabet, UncertainString};

/// Serialise with the rest of the fault suite: `usj-fault` plans are
/// process-global, and resume runs below go through the same driver.
fn lock() -> MutexGuard<'static, ()> {
    static TEST_LOCK: Mutex<()> = Mutex::new(());
    shield::install();
    TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A well-formed checkpoint with every record kind present.
fn sample() -> Checkpoint {
    let funnel = JoinStats {
        pairs_in_scope: 9,
        qgram_survivors: 5,
        freq_survivors: 3,
        cdf_accepted: 1,
        verified_similar: 1,
        output_pairs: 2,
        ..Default::default()
    };
    Checkpoint {
        fingerprint: 0x00c0ffee_u64,
        completed_waves: 3,
        funnel,
        pairs: vec![
            SimilarPair {
                left: 0,
                right: 4,
                prob: 0.75,
            },
            SimilarPair {
                left: 2,
                right: 7,
                prob: 0.5000000001,
            },
        ],
    }
}

fn decode_err(text: &str) -> String {
    match Checkpoint::decode(text) {
        Err(CheckpointError::Corrupt(msg)) => msg,
        Err(other) => panic!("expected Corrupt, got {other}"),
        Ok(_) => panic!("corrupted checkpoint decoded successfully"),
    }
}

#[test]
fn roundtrip_is_exact() {
    let ck = sample();
    let decoded = Checkpoint::decode(&ck.encode()).expect("clean roundtrip");
    assert_eq!(decoded.fingerprint, ck.fingerprint);
    assert_eq!(decoded.completed_waves, ck.completed_waves);
    assert_eq!(decoded.pairs.len(), ck.pairs.len());
    for (a, b) in decoded.pairs.iter().zip(&ck.pairs) {
        assert_eq!((a.left, a.right), (b.left, b.right));
        assert_eq!(a.prob.to_bits(), b.prob.to_bits(), "bit-exact probability");
    }
}

#[test]
fn truncated_final_line_is_positioned() {
    let text = sample().encode();
    // Drop the trailing newline: the digest line lost its last byte.
    let cut = &text[..text.len() - 1];
    let msg = decode_err(cut);
    let lines = cut.lines().count();
    assert!(
        msg.contains(&format!("line {lines}")),
        "no position in {msg:?}"
    );
    assert!(msg.contains("truncated"), "{msg:?}");
}

#[test]
fn truncation_losing_the_digest_is_positioned() {
    let text = sample().encode();
    // Cut the whole digest line off (keep the preceding newline).
    let digest_at = text.rfind("digest ").expect("encoded digest");
    let cut = &text[..digest_at];
    let msg = decode_err(cut);
    assert!(msg.contains("missing digest"), "{msg:?}");
    assert!(
        msg.contains(&format!("line {}", cut.lines().count())),
        "no position in {msg:?}"
    );
}

#[test]
fn every_single_bit_flip_in_the_digest_is_caught() {
    let text = sample().encode();
    let digest_at = text.rfind("digest ").expect("encoded digest");
    let hex_start = digest_at + "digest ".len();
    // Flip each hex digit of the digest to a different valid hex digit;
    // the file must be rejected with the digest line's position.
    let digest_line_no = text[..digest_at].matches('\n').count() + 1;
    for i in 0..16 {
        let mut bytes = text.clone().into_bytes();
        let pos = hex_start + i;
        bytes[pos] = if bytes[pos] == b'0' { b'1' } else { b'0' };
        let flipped = String::from_utf8(bytes).expect("still utf-8");
        if flipped == text {
            continue;
        }
        let msg = decode_err(&flipped);
        assert!(msg.contains("digest mismatch"), "flip {i}: {msg:?}");
        assert!(
            msg.contains(&format!("line {digest_line_no}")),
            "flip {i}: no position in {msg:?}"
        );
    }
}

#[test]
fn body_byte_flip_breaks_the_digest() {
    let text = sample().encode();
    // Flip one digit inside a pair record; the FNV digest must notice.
    let pair_at = text.find("pair 0 4").expect("first pair record");
    let mut bytes = text.clone().into_bytes();
    bytes[pair_at + 5] = b'9'; // pair 0 -> pair 9
    let msg = decode_err(&String::from_utf8(bytes).expect("still utf-8"));
    assert!(msg.contains("digest mismatch"), "{msg:?}");
}

/// Re-encodes `body` lines with a fresh valid digest, so defects survive
/// the digest check and exercise the record parsers.
fn with_valid_digest(body: &str) -> String {
    // Mirror the file layout: body then `digest <fnv1a(body)>`.
    let mut text = String::from(body);
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    text.push_str(&format!("digest {hash:016x}\n"));
    text
}

#[test]
fn garbage_records_are_positioned() {
    // Each (body, expected-position, expected-fragment) triple plants one
    // defect on a known line of an otherwise plausible file.
    let cases = [
        (
            "usj-checkpoint v1\nfingerprint 00c0ffee\nwaves three\n",
            "line 3",
            "is not a number",
        ),
        (
            "usj-checkpoint v1\nfingerprint xyz\nwaves 1\n",
            "line 2",
            "is not hex",
        ),
        (
            "usj-checkpoint v1\nfingerprint 00c0ffee\nwaves 1\ngrble 1 2\n",
            "line 4",
            "unknown record",
        ),
        (
            "usj-checkpoint v1\nfingerprint 00c0ffee\nwaves 1\npair 0\n",
            "line 4",
            "short pair line",
        ),
        (
            "usj-checkpoint v1\nfingerprint 00c0ffee\nwaves 1\ncounter bogus_total 4\n",
            "line 4",
            "unknown counter",
        ),
        (
            "usj-checkpoint v1\nfingerprint 00c0ffee\nwaves 1\npair 0 1 zz\n",
            "line 4",
            "bad probability bits",
        ),
    ];
    for (body, position, fragment) in cases {
        let msg = decode_err(&with_valid_digest(body));
        assert!(msg.contains(position), "{body:?}: no {position} in {msg:?}");
        assert!(msg.contains(fragment), "{body:?}: {msg:?}");
    }
    // Bad magic is always line 1.
    let msg = decode_err(&with_valid_digest("usj-checkpoint v9\nwaves 1\n"));
    assert!(msg.contains("line 1"), "{msg:?}");
    assert!(msg.contains("bad magic"), "{msg:?}");
}

#[test]
fn corrupted_file_on_disk_fails_resume_loudly() {
    let _g = lock();
    // A real driver run commits a checkpoint; damaging the file must turn
    // resume into a positioned error, never a silent partial resume.
    let alpha = Alphabet::dna();
    let strings: Vec<UncertainString> = ["ACGT", "ACGG", "ACGTA", "ACGTC", "ACGTAC", "ACGTAG"]
        .iter()
        .map(|s| UncertainString::parse(s, &alpha).unwrap())
        .collect();
    let config = JoinConfig::new(1, 0.3)
        .with_shard_band(1)
        .with_batch_range(1, 2);
    let dir = std::env::temp_dir().join(format!("usj-ckpt-corrupt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = FtOptions {
        checkpoint_dir: Some(dir.clone()),
        resume: false,
    };
    par_self_join_ft(config.clone(), 4, &strings, 2, &opts, || NoopRecorder)
        .expect("clean run commits");
    let path = Checkpoint::path_in(&dir);
    let text = std::fs::read_to_string(&path).expect("checkpoint written");

    // Truncate mid-line on disk.
    std::fs::write(&path, &text[..text.len() - 3]).expect("rewrite");
    let err = Checkpoint::load(&dir).expect_err("truncated file must not load");
    assert!(
        matches!(&err, CheckpointError::Corrupt(msg) if msg.contains("line ")),
        "{err}"
    );

    // Bit-flip the digest on disk and resume through the driver.
    let digest_at = text.rfind("digest ").expect("digest line");
    let mut bytes = text.clone().into_bytes();
    let pos = digest_at + "digest ".len();
    bytes[pos] = if bytes[pos] == b'0' { b'1' } else { b'0' };
    std::fs::write(&path, &bytes).expect("rewrite");
    let resume = FtOptions {
        checkpoint_dir: Some(dir.clone()),
        resume: true,
    };
    let err = par_self_join_ft(config, 4, &strings, 2, &resume, || NoopRecorder)
        .expect_err("resume over a corrupt checkpoint must fail");
    let msg = err.to_string();
    assert!(msg.contains("digest mismatch"), "{msg}");
    assert!(msg.contains("line "), "no position in {msg}");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- snapshot loader: the same corpus, byte-for-byte recovery ----

fn snap_strings() -> Vec<UncertainString> {
    let alpha = Alphabet::dna();
    let mut v = Vec::new();
    for len in 4..=7usize {
        let base: String = "ACGT".chars().cycle().take(len).collect();
        v.push(UncertainString::parse(&base, &alpha).unwrap());
        let tail = format!("{}{}", &base[..len - 1], "{(A,0.7),(G,0.3)}");
        v.push(UncertainString::parse(&tail, &alpha).unwrap());
    }
    v
}

fn snap_config() -> JoinConfig {
    JoinConfig::new(1, 0.3)
}

fn snap_scratch(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static N: AtomicUsize = AtomicUsize::new(0);
    // ordering: Relaxed — the counter only needs uniqueness.
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("usj-snap-corpus-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Load a damaged image: the ladder must (a) *detect* the damage —
/// never a [`LoadRung::Verified`] load with zero corruptions — and
/// (b) recover an index bit-identical to a cold rebuild.
fn assert_detected_and_recovered(dir: &PathBuf, want: u64, what: &str) {
    let path = dir.join("index.snap");
    let loaded = snapshot::load(&path, &snap_config(), 4, snap_strings(), SalvageMode::Strict)
        .unwrap_or_else(|e| panic!("{what}: load refused: {e}"));
    assert!(
        loaded.report.corruptions_detected >= 1,
        "{what}: corruption not detected (rung {:?}, reason {:?})",
        loaded.report.rung,
        loaded.report.reason
    );
    assert_ne!(
        loaded.report.rung,
        LoadRung::Verified,
        "{what}: damaged image loaded as verified"
    );
    assert_eq!(
        snapshot::collection_digest(&loaded.collection),
        want,
        "{what}: recovery is not bit-identical to a cold rebuild (rung {:?})",
        loaded.report.rung
    );
}

/// Bit-flip the first and last byte of every section (header and footer
/// included): each flip lands in exactly one checksummed region, and the
/// loader must detect it and recover bit-identically — salvaging intact
/// bands where the interner survives, rebuilding from source where it
/// does not.
#[test]
fn snapshot_bit_flip_at_every_section_boundary_is_caught() {
    let _g = lock();
    let cold = IndexedCollection::build(snap_config(), 4, snap_strings());
    let want = snapshot::collection_digest(&cold);
    let dir = snap_scratch("flip");
    let path = dir.join("index.snap");
    snapshot::write(&path, &cold).expect("snapshot commits");
    let pristine = std::fs::read(&path).unwrap();
    let sections = snapshot::section_directory(&pristine).expect("directory parses");
    assert!(sections.len() >= 2, "interner plus at least one band");

    // Byte offsets to attack: each section's first and last byte, the
    // first byte of the file (header), and the first footer byte.
    let mut targets: Vec<(usize, String)> = vec![(0, "header[0]".into())];
    for s in &sections {
        targets.push((s.offset, format!("{}[0]", s.name)));
        targets.push((s.offset + s.len - 1, format!("{}[-1]", s.name)));
    }
    let body_end = sections.iter().map(|s| s.offset + s.len).max().unwrap();
    targets.push((body_end, "footer[0]".into()));

    for (pos, what) in targets {
        let mut bytes = pristine.clone();
        bytes[pos] ^= 0x01; // stays ASCII: every snapshot byte is < 0x80
        std::fs::write(&path, &bytes).unwrap();
        assert_detected_and_recovered(&dir, want, &format!("bit flip at {what} (byte {pos})"));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Truncate the image at every eighth of its length (a crash that cut
/// the file mid-write, had the rename not been atomic): every quantile
/// must be detected and recovered from, down to the empty file.
#[test]
fn snapshot_truncation_sweep_is_caught_at_every_quantile() {
    let _g = lock();
    let cold = IndexedCollection::build(snap_config(), 4, snap_strings());
    let want = snapshot::collection_digest(&cold);
    let dir = snap_scratch("trunc");
    let path = dir.join("index.snap");
    snapshot::write(&path, &cold).expect("snapshot commits");
    let pristine = std::fs::read(&path).unwrap();
    for q in 0..8 {
        let cut = pristine.len() * q / 8;
        std::fs::write(&path, &pristine[..cut]).unwrap();
        assert_detected_and_recovered(&dir, want, &format!("truncation to {cut}B (q={q}/8)"));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Garbage where the header or footer should be: the ladder must fall
/// to a full rebuild (no section directory to salvage from) and still
/// produce a bit-identical index.
#[test]
fn snapshot_garbage_header_and_footer_fall_to_rebuild() {
    let _g = lock();
    let cold = IndexedCollection::build(snap_config(), 4, snap_strings());
    let want = snapshot::collection_digest(&cold);
    let dir = snap_scratch("garbage");
    let path = dir.join("index.snap");
    snapshot::write(&path, &cold).expect("snapshot commits");
    let pristine = std::fs::read(&path).unwrap();

    // Whole file replaced with noise.
    std::fs::write(&path, b"not a snapshot at all\n").unwrap();
    assert_detected_and_recovered(&dir, want, "garbage file");

    // Valid body, garbage header: wrong magic on line 1.
    let mut bytes = b"usj-snapshot v9".to_vec();
    bytes.extend_from_slice(&pristine[snapshot::SNAPSHOT_MAGIC.len()..]);
    std::fs::write(&path, &bytes).unwrap();
    assert_detected_and_recovered(&dir, want, "garbage header");

    // Valid header and body, garbage footer.
    let sections = snapshot::section_directory(&pristine).expect("directory parses");
    let body_end = sections.iter().map(|s| s.offset + s.len).max().unwrap();
    let mut bytes = pristine[..body_end].to_vec();
    bytes.extend_from_slice(b"footer what\ndigest 0000000000000000\n");
    std::fs::write(&path, &bytes).unwrap();
    assert_detected_and_recovered(&dir, want, "garbage footer");
    let _ = std::fs::remove_dir_all(&dir);
}
