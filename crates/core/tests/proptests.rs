//! Property tests: the indexed join equals the brute-force oracle join on
//! random collections, for every pipeline variant.

use proptest::prelude::*;
use usj_core::{oracle_self_join, IndexedCollection, JoinConfig, Pipeline, SimilarityJoin};
use usj_model::{Position, UncertainString};
use usj_verify::exact_similarity_prob;

fn arb_position(sigma: u8, max_alts: usize) -> impl Strategy<Value = Position> {
    prop::collection::vec((0..sigma, 1u32..=100), 1..=max_alts).prop_map(|raw| {
        let mut seen = std::collections::BTreeMap::new();
        for (s, w) in raw {
            *seen.entry(s).or_insert(0u32) += w;
        }
        let total: u32 = seen.values().sum();
        let alts: Vec<(u8, f64)> = seen
            .into_iter()
            .map(|(s, w)| (s, w as f64 / total as f64))
            .collect();
        Position::uncertain(0, alts).unwrap()
    })
}

fn arb_string(sigma: u8, len: std::ops::Range<usize>) -> impl Strategy<Value = UncertainString> {
    prop::collection::vec(arb_position(sigma, 2), len).prop_map(UncertainString::new)
}

fn arb_collection(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<UncertainString>> {
    prop::collection::vec(arb_string(3, 3..9), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The full driver, in exact mode, equals the oracle join — for every
    /// pipeline, q, and selection policy combination tested.
    #[test]
    fn join_equals_oracle(
        strings in arb_collection(2..9),
        k in 1usize..3,
        tau_pct in 5u32..80,
        q in 2usize..4,
    ) {
        let tau = tau_pct as f64 / 100.0 + 1e-4;
        let expected: Vec<(u32, u32)> = oracle_self_join(&strings, k, tau)
            .iter()
            .map(|p| (p.left, p.right))
            .collect();
        for pipeline in Pipeline::all() {
            let config = JoinConfig::new(k, tau)
                .with_q(q)
                .with_pipeline(pipeline)
                .with_early_stop(false);
            let result = SimilarityJoin::new(config, 3).self_join(&strings);
            let got: Vec<(u32, u32)> = result.pairs.iter().map(|p| (p.left, p.right)).collect();
            prop_assert_eq!(&got, &expected, "pipeline {:?} q={} k={} tau={}", pipeline, q, k, tau);
        }
    }

    /// Early-stop mode reports exactly the same pair set (probabilities
    /// may be lower bounds).
    #[test]
    fn early_stop_same_pairs(
        strings in arb_collection(2..8),
        k in 1usize..3,
        tau_pct in 5u32..80,
    ) {
        let tau = tau_pct as f64 / 100.0 + 1e-4;
        let exact = SimilarityJoin::new(JoinConfig::new(k, tau).with_early_stop(false), 3)
            .self_join(&strings);
        let fast = SimilarityJoin::new(JoinConfig::new(k, tau), 3).self_join(&strings);
        let a: Vec<_> = exact.pairs.iter().map(|p| (p.left, p.right)).collect();
        let b: Vec<_> = fast.pairs.iter().map(|p| (p.left, p.right)).collect();
        prop_assert_eq!(a, b);
        for p in &fast.pairs {
            prop_assert!(p.prob > tau, "reported prob must exceed tau");
        }
    }

    /// Search over an indexed collection agrees with per-string oracle
    /// probabilities.
    #[test]
    fn search_equals_oracle(
        strings in arb_collection(1..8),
        probe in arb_string(3, 3..9),
        k in 1usize..3,
        tau_pct in 5u32..80,
    ) {
        let tau = tau_pct as f64 / 100.0 + 1e-4;
        let coll = IndexedCollection::build(
            JoinConfig::new(k, tau).with_early_stop(false),
            3,
            strings.clone(),
        );
        let got: Vec<u32> = coll.search(&probe).iter().map(|h| h.id).collect();
        let expected: Vec<u32> = strings
            .iter()
            .enumerate()
            .filter(|(_, s)| exact_similarity_prob(&probe, s, k) > tau)
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(got, expected);
    }

    /// The parallel join emits exactly the sequential join's pairs.
    #[test]
    fn parallel_equals_sequential(
        strings in arb_collection(2..9),
        k in 1usize..3,
        tau_pct in 5u32..80,
        threads in 1usize..4,
    ) {
        let tau = tau_pct as f64 / 100.0 + 1e-4;
        let config = JoinConfig::new(k, tau);
        let sequential = SimilarityJoin::new(config.clone(), 3).self_join(&strings);
        let parallel = usj_core::par_self_join(config, 3, &strings, threads);
        let a: Vec<_> = sequential.pairs.iter().map(|p| (p.left, p.right)).collect();
        let b: Vec<_> = parallel.pairs.iter().map(|p| (p.left, p.right)).collect();
        prop_assert_eq!(a, b);
    }

    /// Top-k search returns exactly the oracle's k best (ids and exact
    /// probabilities).
    #[test]
    fn top_k_equals_oracle(
        strings in arb_collection(1..8),
        probe in arb_string(3, 3..9),
        k in 1usize..3,
        limit in 1usize..5,
    ) {
        let tau = 0.0101;
        let coll = IndexedCollection::build(JoinConfig::new(k, tau), 3, strings.clone());
        let got: Vec<(u32, f64)> = coll
            .search_top_k(&probe, limit)
            .into_iter()
            .map(|h| (h.id, h.prob))
            .collect();
        let mut want: Vec<(u32, f64)> = strings
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, exact_similarity_prob(&probe, s, k)))
            .filter(|&(_, p)| p > tau)
            .collect();
        want.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        want.truncate(limit);
        prop_assert_eq!(got.len(), want.len());
        for ((gi, gp), (wi, wp)) in got.iter().zip(&want) {
            // Ranks can tie to machine precision; ids must agree unless
            // the probabilities are equal.
            if gi != wi {
                prop_assert!((gp - wp).abs() < 1e-9, "{} vs {}", gp, wp);
            } else {
                prop_assert!((gp - wp).abs() < 1e-9);
            }
        }
    }

    /// The string-level join equals its oracle on random string-level
    /// collections (alternatives of mixed lengths included).
    #[test]
    fn string_level_join_equals_oracle(
        raw in prop::collection::vec(
            prop::collection::vec((prop::collection::vec(0u8..3, 2..7), 1u32..50), 1..4),
            2..7,
        ),
        k in 1usize..3,
        tau_pct in 5u32..80,
        q in 2usize..4,
    ) {
        use usj_core::{string_level_oracle, StringLevelJoin};
        use usj_model::StringLevelUncertain;
        let strings: Vec<StringLevelUncertain> = raw
            .into_iter()
            .map(|alts| {
                let total: u32 = alts.iter().map(|&(_, w)| w).sum();
                StringLevelUncertain::new(
                    alts.into_iter()
                        .map(|(inst, w)| (inst, w as f64 / total as f64))
                        .collect(),
                )
                .unwrap()
            })
            .collect();
        let tau = tau_pct as f64 / 100.0 + 1e-4;
        let (pairs, _) = StringLevelJoin::new(k, tau, q).self_join(&strings);
        let got: Vec<_> = pairs.iter().map(|p| (p.left, p.right)).collect();
        let want: Vec<_> = string_level_oracle(&strings, k, tau)
            .iter()
            .map(|p| (p.left, p.right))
            .collect();
        prop_assert_eq!(got, want);
    }

    /// A tiny instance cap must not cost correctness (conservative
    /// fallbacks engage).
    #[test]
    fn instance_cap_is_sound(
        strings in arb_collection(2..7),
        k in 1usize..3,
    ) {
        let tau = 0.1001;
        let mut config = JoinConfig::new(k, tau).with_early_stop(false);
        config.max_segment_instances = 2; // absurdly small: forces fallbacks
        let result = SimilarityJoin::new(config, 3).self_join(&strings);
        let got: Vec<_> = result.pairs.iter().map(|p| (p.left, p.right)).collect();
        let expected: Vec<_> = oracle_self_join(&strings, k, tau)
            .iter()
            .map(|p| (p.left, p.right))
            .collect();
        prop_assert_eq!(got, expected);
    }
}
