//! Length-band partitioning of a collection across shard processes.
//!
//! The scale-out topology (DESIGN.md §17) splits one collection over N
//! shard servers, each indexing a contiguous *length band*. The layout
//! follows the paper's filter structure: every signature is per-(length,
//! segment), so a shard whose strings span `[min_len, max_len]` has a
//! fully self-contained [`crate::index::SegmentIndex`] — no probe ever
//! needs postings from two shards to evaluate one candidate.
//!
//! The coordinator prunes its scatter fan-out with the paper's length
//! filter: a probe `R` with threshold `k` can only match strings `s`
//! with `|len(R) − len(s)| ≤ k`, so only shards whose band intersects
//! `[len(R) − k, len(R) + k]` are contacted ([`Partition::relevant_shards`]).
//!
//! Two invariants make the scatter-gather *correct* rather than merely
//! fast, and both are proven by the unit tests below plus the N-shard
//! vs single-node differential suite in `crates/serve`:
//!
//! * **exhaustive** — every string id is assigned to exactly one shard
//!   (no silent data loss at rest);
//! * **disjoint** — no id is assigned twice (no duplicate hits to
//!   dedup, so merged shard answers can stay bit-identical to the
//!   single-node server).
//!
//! Boundary lengths may straddle two shards (the split is by sorted
//! *position*, not by length value, to keep shards balanced under
//! skewed length histograms). That is sound: both shards' bands then
//! contain the boundary length, so both are relevant to any probe that
//! could match it.

/// One shard's slice of the collection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSlice {
    /// Global string ids owned by this shard, ascending.
    pub ids: Vec<u32>,
    /// Shortest string on the shard (unspecified when `ids` is empty).
    pub min_len: usize,
    /// Longest string on the shard (unspecified when `ids` is empty).
    pub max_len: usize,
}

impl ShardSlice {
    /// Does this shard hold any string a probe of length `probe_len`
    /// could match under threshold `k`? Empty shards match nothing.
    pub fn relevant(&self, probe_len: usize, k: usize) -> bool {
        !self.ids.is_empty()
            && self.min_len <= probe_len.saturating_add(k)
            && self.max_len.saturating_add(k) >= probe_len
    }
}

/// A length-band partition of string ids `0..lens.len()` into `n`
/// shards. Built deterministically from the length vector alone, so the
/// coordinator and an offline `usj shard` invocation compute identical
/// layouts from the same input file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// The shards, in ascending length-band order. Always exactly the
    /// `n` requested (trailing shards may be empty when `n` exceeds the
    /// collection size).
    pub shards: Vec<ShardSlice>,
}

impl Partition {
    /// Partitions ids `0..lens.len()` into `n` shards by sorting on
    /// `(length, id)` and cutting the sorted order into `n` contiguous
    /// chunks whose sizes differ by at most one.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` — a zero-shard topology cannot hold data, and
    /// every caller takes `n` from a validated config.
    pub fn by_length(lens: &[usize], n: usize) -> Partition {
        assert!(n > 0, "partition requires at least one shard");
        let mut order: Vec<u32> = (0..lens.len() as u32).collect();
        order.sort_unstable_by_key(|&id| (lens[id as usize], id));

        let base = order.len() / n;
        let extra = order.len() % n; // first `extra` shards take one more
        let mut shards = Vec::with_capacity(n);
        let mut start = 0usize;
        for s in 0..n {
            let take = base + usize::from(s < extra);
            let mut ids: Vec<u32> = order[start..start + take].to_vec();
            start += take;
            let min_len = ids.iter().map(|&id| lens[id as usize]).min().unwrap_or(0);
            let max_len = ids.iter().map(|&id| lens[id as usize]).max().unwrap_or(0);
            // Ascending global ids: shard servers answer hits in id
            // order, so the coordinator's merge stays a sorted merge.
            ids.sort_unstable();
            shards.push(ShardSlice { ids, min_len, max_len });
        }
        Partition { shards }
    }

    /// Indices of the shards whose length band intersects
    /// `[probe_len − k, probe_len + k]` — the only shards that can hold
    /// a match for the probe, by the paper's length filter.
    pub fn relevant_shards(&self, probe_len: usize, k: usize) -> Vec<usize> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.relevant(probe_len, k))
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of shards (including empty ones).
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True when the partition has no shards (never produced by
    /// [`Partition::by_length`], which requires `n > 0`).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random length vector (xorshift64, same
    /// generator family as the differential suites).
    fn lens(n: usize, seed: u64) -> Vec<usize> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 40) as usize
            })
            .collect()
    }

    #[test]
    fn every_id_lands_on_exactly_one_shard() {
        for n in [1, 2, 3, 7, 100, 257] {
            let lens = lens(200, 0xdecaf);
            let p = Partition::by_length(&lens, n);
            assert_eq!(p.len(), n);
            let mut seen = vec![0u32; lens.len()];
            for shard in &p.shards {
                for &id in &shard.ids {
                    seen[id as usize] += 1;
                }
            }
            // Exhaustive (no 0) and disjoint (no 2+) in one sweep.
            assert!(seen.iter().all(|&c| c == 1), "n={n}: {seen:?}");
        }
    }

    #[test]
    fn shard_sizes_differ_by_at_most_one_and_bands_are_ordered() {
        let lens = lens(101, 7);
        let p = Partition::by_length(&lens, 4);
        let sizes: Vec<usize> = p.shards.iter().map(|s| s.ids.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 101);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
        // Contiguous cuts of the (len, id) order: band ranges ascend,
        // adjacent bands meeting at most at a shared boundary length.
        for w in p.shards.windows(2) {
            assert!(w[0].min_len <= w[0].max_len);
            assert!(w[0].max_len <= w[1].min_len);
        }
    }

    #[test]
    fn ids_within_a_shard_are_ascending() {
        let lens = lens(64, 99);
        let p = Partition::by_length(&lens, 3);
        for shard in &p.shards {
            assert!(shard.ids.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn relevance_is_sound_every_length_compatible_string_is_reachable() {
        let lens = lens(150, 0xbeef);
        let p = Partition::by_length(&lens, 5);
        for probe_len in 0..45 {
            for k in 0..4 {
                let relevant = p.relevant_shards(probe_len, k);
                for (shard_idx, shard) in p.shards.iter().enumerate() {
                    for &id in &shard.ids {
                        let l = lens[id as usize];
                        let compatible = l.abs_diff(probe_len) <= k;
                        if compatible {
                            assert!(
                                relevant.contains(&shard_idx),
                                "probe_len={probe_len} k={k}: id {id} (len {l}) on \
                                 shard {shard_idx} unreachable"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn irrelevant_bands_are_pruned() {
        // Lengths 0..10 and 30..40 in two clusters; a mid-range probe
        // with small k must not touch the far cluster's shards.
        let lens: Vec<usize> = (0..10).chain(30..40).collect();
        let p = Partition::by_length(&lens, 4);
        let relevant = p.relevant_shards(5, 2);
        for (i, shard) in p.shards.iter().enumerate() {
            if relevant.contains(&i) {
                continue;
            }
            for &id in &shard.ids {
                assert!(lens[id as usize].abs_diff(5) > 2);
            }
        }
        assert!(relevant.len() < p.len(), "pruning must drop the far cluster");
    }

    #[test]
    fn more_shards_than_strings_leaves_trailing_shards_empty_and_irrelevant() {
        let lens = vec![3, 3, 5];
        let p = Partition::by_length(&lens, 8);
        assert_eq!(p.len(), 8);
        let total: usize = p.shards.iter().map(|s| s.ids.len()).sum();
        assert_eq!(total, 3);
        for shard in p.shards.iter().filter(|s| s.ids.is_empty()) {
            assert!(!shard.relevant(3, 10), "empty shards are never relevant");
        }
    }

    #[test]
    fn empty_collection_partitions_into_empty_shards() {
        let p = Partition::by_length(&[], 3);
        assert_eq!(p.len(), 3);
        assert!(p.shards.iter().all(|s| s.ids.is_empty()));
        assert!(p.relevant_shards(10, 2).is_empty());
    }

    #[test]
    fn single_shard_owns_everything_and_is_always_relevant() {
        let lens = lens(40, 1);
        let p = Partition::by_length(&lens, 1);
        assert_eq!(p.shards[0].ids.len(), 40);
        assert_eq!(p.relevant_shards(0, 0).len(), usize::from(lens.contains(&0)));
        assert_eq!(p.relevant_shards(0, 64), vec![0]);
    }

    #[test]
    fn layout_is_deterministic() {
        let lens = lens(80, 5);
        assert_eq!(Partition::by_length(&lens, 3), Partition::by_length(&lens, 3));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        let _ = Partition::by_length(&[1, 2], 0);
    }
}
