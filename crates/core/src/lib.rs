//! Similarity-join driver for uncertain strings (paper §4 and §7).
//!
//! This crate assembles the filters from `usj-qgram`, `usj-freq`, and
//! `usj-cdf` and the verifiers from `usj-verify` into the paper's join
//! algorithm:
//!
//! 1. Strings are visited in ascending length order. A probe `R` queries
//!    the **segment inverted indices** ([`index::SegmentIndex`]) of every
//!    compatible length `l ∈ [|R|−k, |R|]`, producing per-candidate
//!    segment match probabilities `α_x` by merging posting lists — without
//!    comparing `R` to each collection string individually.
//! 2. Candidates surviving the count condition (Lemma 5) and the
//!    Poisson-binomial upper bound (Theorem 2) flow through
//!    frequency-distance filtering (§5) and CDF-bound filtering (§6.1).
//! 3. Pairs the CDF bounds cannot decide are verified exactly with the
//!    trie verifier (§6.2), whose probe trie is built once per `R`.
//! 4. `R`'s own segments are then inserted into the indices and the scan
//!    moves on — each unordered pair is therefore examined exactly once.
//!
//! Four pipeline variants ([`config::Pipeline`]) reproduce the paper's
//! algorithms **QFCT**, **QCT**, **QFT**, and **FCT** (each letter names a
//! stage: Q = q-gram, F = frequency, C = CDF, T = trie verification).
//!
//! [`collection::IndexedCollection`] exposes the same machinery as a
//! similarity *search* (one probe against a pre-indexed collection).

#![warn(missing_docs)]

pub mod bench;
pub mod checkpoint;
pub mod collection;
pub mod config;
pub mod index;
pub mod join;
pub mod oracle;
pub mod parallel;
pub mod partition;
pub mod record;
pub mod snapshot;
pub mod stats;
pub mod string_level;
pub mod topk;
pub mod verifier;

/// The observability substrate (re-exported so downstream crates can name
/// recorders without depending on `usj-obs` directly).
pub use usj_obs as obs;
pub use usj_simd as simd;

pub use checkpoint::{durable_atomic_write, Checkpoint, CheckpointError};
pub use collection::{IndexedCollection, ProbeBudget, SearchAbort, SearchHit};
pub use config::{JoinConfig, Pipeline, VerifierKind};
pub use index::{EquivCache, SegmentIndex};
pub use join::{JoinResult, SimilarPair, SimilarityJoin};
pub use oracle::oracle_self_join;
pub use parallel::{
    par_self_join, par_self_join_ft, par_self_join_recorded, FaultReport, FtOptions, JoinError,
};
pub use partition::{Partition, ShardSlice};
pub use record::{PhaseSpan, Recording};
pub use snapshot::{
    LoadRung, LoadedSnapshot, SalvageMode, SnapshotError, SnapshotReport, SnapshotWriteReport,
};
pub use stats::{JoinStats, PhaseTimings};
pub use string_level::{string_level_oracle, StringLevelJoin, StringLevelStats};
pub use verifier::ProbeVerifier;
