//! Segment inverted indices `L^x_l` (paper §4).
//!
//! For every string length `l` present in the (visited part of the)
//! collection and every segment index `x` of the length-`l` partition, an
//! inverted index maps each deterministic segment instance `w` to the
//! posting list `L^x_l(w) = [(i, Pr(w = S_i^x)), …]` sorted by string id.
//! A string id appears at most once per list and in as many lists of
//! `L^x_l` as its segment has instances.
//!
//! A probe `R` queries one `LengthIndex` by building its equivalent sets
//! `q(r, x)` and merging the matching posting lists, accumulating
//! `α_x(i) = Σ_w p_r(w) · Pr(w = S_i^x)` per candidate id — all candidate
//! generation work is proportional to the postings touched, never to the
//! collection size.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use usj_model::hash::FastBuildHasher;
use usj_model::{Prob, Symbol, UncertainString};
use usj_obs::{Counter, NoopRecorder, Recorder};
use usj_qgram::{
    pack_instance, partition, segment_instances, window_range, window_region, EquivalentSet,
    Region, Segment, TailBounder,
};

use crate::config::JoinConfig;
use crate::record::Recording;

/// Per-probe cache of equivalent sets, keyed by
/// `(window start, window end, segment length)`.
///
/// A probe queries every indexed length in `[|R|−k, |R|+k]`, and the
/// partitions of nearby lengths share many `(window, segment length)`
/// combinations, so `q(r, x)` construction — the expensive part of a
/// query — is reused across lengths (and, in the sharded parallel driver,
/// across the shards a probe touches). Over-cap results (`None`) are
/// cached too: re-deriving "too many instances" is as wasteful as
/// re-deriving the set.
#[derive(Debug, Default)]
pub struct EquivCache {
    map: HashMap<(usize, usize, usize), Option<EquivalentSet>, FastBuildHasher>,
    /// Equivalent sets resolved against a specific index's interner,
    /// keyed by `(interner salt, window start, window end, seg len)`.
    /// The salt keeps resolutions from different indices (the sharded
    /// driver probes several, each with its own interner) apart.
    resolved: HashMap<(u64, usize, usize, usize), ResolvedSet, FastBuildHasher>,
}

impl EquivCache {
    /// An empty cache; scope it to one probe (entries are probe-specific).
    pub fn new() -> Self {
        EquivCache::default()
    }

    /// Cached equivalent sets (including negative over-cap entries).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Global intern table for instantiated q-gram segments: segment bytes →
/// dense `u32` ids, assigned first-seen at index-build time and shared by
/// every [`LengthIndex`] of one [`SegmentIndex`]. Posting lookups then
/// compare ids instead of hashing byte strings, and a probe's equivalent
/// set intersects a segment's key list as two sorted `u32` slices.
///
/// The table survives [`SegmentIndex::evict_below`] — ids must stay
/// stable for the lifetime of the index (a slight memory pessimism the
/// byte estimate reports honestly).
#[derive(Debug, Clone, Default)]
pub struct SegmentInterner {
    map: HashMap<Vec<Symbol>, u32, FastBuildHasher>,
    /// Secondary lookup for short instances (≤ 8 symbols): their
    /// [`pack_instance`] key plus length → the same id as `map`. Probe
    /// resolution hits this lane with the keys an [`EquivalentSet`]
    /// already carries, skipping the symbol-slice hashing entirely.
    packed: HashMap<(u64, u8), u32, FastBuildHasher>,
    bytes: usize,
}

impl SegmentInterner {
    fn intern_owned(&mut self, w: Vec<Symbol>) -> u32 {
        if let Some(&id) = self.map.get(&w) {
            return id;
        }
        let id = self.map.len() as u32;
        debug_assert!(self.map.len() < u32::MAX as usize, "interner id overflow");
        self.bytes += w.len() + 52; // key bytes + map entry estimate
        if w.len() <= 8 {
            self.packed.insert((pack_instance(&w), w.len() as u8), id);
            self.bytes += 24; // packed entry estimate
        }
        self.map.insert(w, id);
        id
    }

    /// The id of `w`, if any string's segment instance produced it.
    pub fn resolve(&self, w: &[Symbol]) -> Option<u32> {
        self.map.get(w).copied()
    }

    /// [`SegmentInterner::resolve`] by [`pack_instance`] key for short
    /// instances (`len ≤ 8`); the length disambiguates packed keys that
    /// collide across instance lengths.
    pub fn resolve_packed(&self, key: u64, len: usize) -> Option<u32> {
        debug_assert!(len <= 8);
        self.packed.get(&(key, len as u8)).copied()
    }

    /// Number of distinct interned segment instances.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Entries in dense id order (`entry[i]` holds the symbols of id
    /// `i`): ids are assigned first-seen, so replaying the returned
    /// sequence through [`SegmentInterner::restore`] reproduces the
    /// table — packed lane and byte estimate included — exactly.
    pub(crate) fn dump(&self) -> Vec<Vec<Symbol>> {
        let mut entries = vec![Vec::new(); self.map.len()];
        for (w, &id) in &self.map {
            entries[id as usize] = w.clone();
        }
        entries
    }

    /// Rebuilds an interner from a [`SegmentInterner::dump`] sequence by
    /// re-interning every entry in order, which reassigns the same dense
    /// first-seen ids.
    pub(crate) fn restore(entries: Vec<Vec<Symbol>>) -> SegmentInterner {
        let mut interner = SegmentInterner::default();
        for w in entries {
            interner.intern_owned(w);
        }
        interner
    }

    /// `true` when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn estimated_bytes(&self) -> usize {
        self.bytes
    }
}

/// An equivalent set resolved against one index's interner: entries with
/// `p_r > 0` that have an interned id (anything else can match no posting
/// of that index), sorted by id so posting lookups are a sorted-id
/// intersection.
#[derive(Debug, Clone)]
struct ResolvedSet {
    keys: Vec<u32>,
    probs: Vec<Prob>,
}

impl ResolvedSet {
    fn build(set: &EquivalentSet, interner: &SegmentInterner) -> ResolvedSet {
        let mut pairs: Vec<(u32, Prob)> = Vec::with_capacity(set.len());
        match set.packed_keys() {
            Some(keys) => {
                for (&key, &p_r) in keys.iter().zip(set.probs()) {
                    if p_r > 0.0 {
                        if let Some(id) = interner.resolve_packed(key, set.window_len()) {
                            pairs.push((id, p_r));
                        }
                    }
                }
            }
            None => {
                for (w, p_r) in set.iter() {
                    if p_r > 0.0 {
                        if let Some(id) = interner.resolve(w) {
                            pairs.push((id, p_r));
                        }
                    }
                }
            }
        }
        pairs.sort_unstable_by_key(|&(id, _)| id);
        debug_assert!(
            pairs.windows(2).all(|w| w[0].0 < w[1].0),
            "equivalent-set instances must be distinct"
        );
        ResolvedSet {
            keys: pairs.iter().map(|&(id, _)| id).collect(),
            probs: pairs.iter().map(|&(_, p)| p).collect(),
        }
    }
}

/// Posting list: `(string id, Pr(w = S_i^x))` sorted by id.
pub type PostingList = Vec<(u32, Prob)>;

/// Per-candidate segment match probabilities, one `α_x` per segment.
///
/// Rows live in a single arena (`data`, stride = number of segments)
/// instead of one heap `Vec` per candidate — the merge surfaces
/// thousands of candidates per probe and the per-row boxes dominated it.
#[derive(Debug, Clone)]
pub struct AlphaVectors {
    m: usize,
    /// Candidate id → row index into `data`.
    slots: HashMap<u32, u32, FastBuildHasher>,
    data: Vec<Prob>,
}

impl AlphaVectors {
    fn new(m: usize) -> AlphaVectors {
        AlphaVectors {
            m,
            slots: HashMap::default(),
            data: Vec::new(),
        }
    }

    /// The α row for `id`, inserting a zero row on first touch.
    fn row_mut(&mut self, id: u32) -> &mut [Prob] {
        let m = self.m;
        let data = &mut self.data;
        let slot = *self.slots.entry(id).or_insert_with(|| {
            let slot = (data.len() / m.max(1)) as u32;
            data.resize(data.len() + m, 0.0);
            slot
        });
        &mut self.data[slot as usize * m..slot as usize * m + m]
    }

    /// The α row of candidate `id`, if it surfaced.
    pub fn get(&self, id: u32) -> Option<&[Prob]> {
        let slot = *self.slots.get(&id)?;
        Some(&self.data[slot as usize * self.m..slot as usize * self.m + self.m])
    }

    /// Number of surfaced candidates.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when no candidate surfaced.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Iterates `(candidate id, α row)` in arbitrary (but, for one build
    /// sequence, deterministic) order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &[Prob])> + '_ {
        self.slots
            .iter()
            .map(move |(&id, &slot)| (id, &self.data[slot as usize * self.m..][..self.m]))
    }
}

/// Postings of one segment position, keyed by interned segment id:
/// `keys` is strictly ascending and `lists[i]` belongs to `keys[i]`, so a
/// probe's resolved equivalent set selects lists via a sorted-`u32`
/// intersection instead of per-instance hash lookups.
#[derive(Debug, Clone, Default)]
struct SegmentPostings {
    keys: Vec<u32>,
    lists: Vec<PostingList>,
}

impl SegmentPostings {
    fn push(&mut self, key: u32, id: u32, p: Prob, bytes: &mut usize) {
        match self.keys.binary_search(&key) {
            Ok(pos) => {
                let list = &mut self.lists[pos];
                debug_assert!(
                    list.last().is_none_or(|&(last, _)| last < id),
                    "ids must ascend"
                );
                list.push((id, p));
            }
            Err(pos) => {
                self.keys.insert(pos, key);
                self.lists.insert(pos, vec![(id, p)]);
                *bytes += std::mem::size_of::<u32>() + 48; // key + list overhead
            }
        }
        *bytes += std::mem::size_of::<(u32, Prob)>();
    }
}

/// Inverted index for one string length.
#[derive(Debug, Clone, Default)]
pub struct LengthIndex {
    segments: Vec<Segment>,
    /// One sorted posting table per segment index.
    inverted: Vec<SegmentPostings>,
    /// All string ids inserted, ascending.
    ids: Vec<u32>,
    /// Segments for which at least one inserted string exceeded the
    /// instance cap (its postings are incomplete; the query path must
    /// treat the segment as conservatively matching).
    incomplete: Vec<bool>,
    /// Estimated heap bytes (maintained incrementally).
    bytes: usize,
}

impl LengthIndex {
    fn new(len: usize, config: &JoinConfig) -> Self {
        let segments = partition(len, config.q, config.k);
        let inverted = vec![SegmentPostings::default(); segments.len()];
        let incomplete = vec![false; segments.len()];
        LengthIndex {
            segments,
            inverted,
            ids: Vec::new(),
            incomplete,
            bytes: 0,
        }
    }

    /// The partition this index was built with.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of strings inserted.
    pub fn num_strings(&self) -> usize {
        self.ids.len()
    }

    /// All inserted string ids, ascending.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    fn insert(
        &mut self,
        id: u32,
        s: &UncertainString,
        max_instances: usize,
        interner: &mut SegmentInterner,
    ) {
        debug_assert_eq!(s.len(), self.segments.iter().map(|g| g.len).sum::<usize>());
        for (x, seg) in self.segments.iter().enumerate() {
            let Some(instances) = segment_instances(s, seg, max_instances) else {
                // Over-cap segment: postings for it are incomplete from
                // now on; the query path treats it as a conservative
                // match for every candidate.
                self.incomplete[x] = true;
                continue;
            };
            for (w, p) in instances {
                let key = interner.intern_owned(w);
                self.inverted[x].push(key, id, p, &mut self.bytes);
            }
        }
        self.ids.push(id);
    }

    /// Merges the posting lists for a probe's equivalent sets: returns
    /// per-candidate `α_x` vectors (length = number of segments) plus a
    /// flag marking candidates that touched an over-cap segment.
    ///
    /// `probe_sets[x] = None` means no window of the probe can align with
    /// segment x (α_x = 0 for every candidate).
    ///
    /// Also returns the number of postings touched during the merge (the
    /// quantity candidate-generation cost is proportional to).
    fn query(&self, probe_sets: &[Option<&ResolvedSet>]) -> (AlphaVectors, u64) {
        let m = self.segments.len();
        debug_assert_eq!(probe_sets.len(), m);
        let mut alphas = AlphaVectors::new(m);
        let mut postings = 0u64;
        let mut hits: Vec<(u32, u32)> = Vec::new();
        for (x, set) in probe_sets.iter().enumerate() {
            let Some(set) = set else { continue };
            let table = &self.inverted[x];
            hits.clear();
            usj_simd::intersect_sorted_ids(&set.keys, &table.keys, &mut hits);
            for &(ia, ib) in &hits {
                let p_r = set.probs[ia as usize];
                let list = &table.lists[ib as usize];
                postings += list.len() as u64;
                for &(id, p_s) in list {
                    alphas.row_mut(id)[x] += p_r * p_s;
                }
            }
        }
        for a in alphas.data.iter_mut() {
            *a = a.clamp(0.0, 1.0);
        }
        (alphas, postings)
    }

    fn estimated_bytes(&self) -> usize {
        self.bytes
    }

    /// Serializes everything `insert` accumulated. The partition itself
    /// is excluded — [`LengthIndex::restore`] recomputes it from the
    /// config, which the snapshot fingerprint pins.
    pub(crate) fn dump(&self, len: usize) -> BandDump {
        BandDump {
            len,
            ids: self.ids.clone(),
            incomplete: self.incomplete.clone(),
            postings: self
                .inverted
                .iter()
                .map(|t| (t.keys.clone(), t.lists.clone()))
                .collect(),
            bytes: self.bytes,
        }
    }

    /// Reassembles a length index from a [`BandDump`]. Fails when the
    /// dump's segment count disagrees with the partition the config
    /// produces — a snapshot written under a different config would do
    /// that, and must be rejected rather than silently misindexed.
    pub(crate) fn restore(dump: BandDump, config: &JoinConfig) -> Result<LengthIndex, String> {
        let mut li = LengthIndex::new(dump.len, config);
        let m = li.segments.len();
        if dump.incomplete.len() != m || dump.postings.len() != m {
            return Err(format!(
                "band {}: dump has {} posting tables / {} flags for a {}-segment partition",
                dump.len,
                dump.postings.len(),
                dump.incomplete.len(),
                m
            ));
        }
        li.ids = dump.ids;
        li.incomplete = dump.incomplete;
        li.inverted = dump
            .postings
            .into_iter()
            .map(|(keys, lists)| SegmentPostings { keys, lists })
            .collect();
        li.bytes = dump.bytes;
        Ok(li)
    }
}

/// Serialized form of one [`LengthIndex`] as carried by a snapshot band
/// section (see `crate::snapshot`).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct BandDump {
    /// String length this band indexes.
    pub len: usize,
    /// All inserted string ids, ascending.
    pub ids: Vec<u32>,
    /// Per-segment over-cap flags.
    pub incomplete: Vec<bool>,
    /// Per segment position: `(sorted interned keys, posting list per
    /// key)`.
    pub postings: Vec<(Vec<u32>, Vec<PostingList>)>,
    /// The incrementally-maintained byte estimate at dump time.
    pub bytes: usize,
}

/// Source of per-index interner salts: resolved-set cache entries are
/// keyed by salt, so two indices must never share one.
static NEXT_INTERNER_SALT: AtomicU64 = AtomicU64::new(0);

/// All per-length indices of the visited part of a collection.
#[derive(Debug)]
pub struct SegmentIndex {
    by_length: HashMap<usize, LengthIndex, FastBuildHasher>,
    /// Shared intern table for every length's segment instances.
    interner: SegmentInterner,
    /// Unique per index (fresh on clone): scopes [`EquivCache`] resolved
    /// sets to the interner that produced their ids.
    interner_salt: u64,
    peak_bytes: usize,
}

impl Default for SegmentIndex {
    fn default() -> Self {
        SegmentIndex {
            by_length: HashMap::default(),
            interner: SegmentInterner::default(),
            // ordering: relaxed — the salt only needs to be unique, no
            // memory is published through it.
            interner_salt: NEXT_INTERNER_SALT.fetch_add(1, Ordering::Relaxed),
            peak_bytes: 0,
        }
    }
}

impl Clone for SegmentIndex {
    fn clone(&self) -> Self {
        SegmentIndex {
            by_length: self.by_length.clone(),
            interner: self.interner.clone(),
            // A clone may diverge from the original, so it gets a fresh
            // salt — cached resolved sets must never cross interners.
            // ordering: relaxed — uniqueness only, as above.
            interner_salt: NEXT_INTERNER_SALT.fetch_add(1, Ordering::Relaxed),
            peak_bytes: self.peak_bytes,
        }
    }
}

impl SegmentIndex {
    /// An empty index.
    pub fn new() -> Self {
        SegmentIndex::default()
    }

    /// The shared segment-instance intern table.
    pub fn interner(&self) -> &SegmentInterner {
        &self.interner
    }

    /// Inserts string `id`, partitioning it per `config`.
    ///
    /// Ids must be inserted in ascending order per length (the join driver
    /// visits strings sorted by `(length, id)`, which guarantees this).
    pub fn insert(&mut self, id: u32, s: &UncertainString, config: &JoinConfig) {
        self.insert_recorded(id, s, config, &mut NoopRecorder);
    }

    /// [`SegmentIndex::insert`] plus an [`Counter::IndexInsertions`] event
    /// on `rec` for each string indexed.
    ///
    /// Length-0 strings are indexed too (as a segment-less
    /// [`LengthIndex`]): their partition has no segments, so Lemma 5 can
    /// never prune at that length and every length-0 id surfaces as a
    /// candidate — which is exactly right, since two empty strings match
    /// with probability 1 and must not be silently dropped by the q-gram
    /// pipelines.
    pub fn insert_recorded<R: Recorder>(
        &mut self,
        id: u32,
        s: &UncertainString,
        config: &JoinConfig,
        rec: &mut R,
    ) {
        // Failpoint: a crash while building a shard. A delay action here
        // is an uncounted sleep (this entry point only sees the recorder
        // half of a `Recording`, and counting on one side would let stats
        // and recorder views diverge); panic/error actions abort the build
        // and surface through the driver's `Faulted` path.
        usj_fault::fail_point!("index.build");
        let interner = &mut self.interner;
        self.by_length
            .entry(s.len())
            .or_insert_with(|| LengthIndex::new(s.len(), config))
            .insert(id, s, config.max_segment_instances, interner);
        let bytes = self.estimated_bytes();
        self.peak_bytes = self.peak_bytes.max(bytes);
        rec.counter(Counter::IndexInsertions, 1);
    }

    /// Queries candidates of length `indexed_len` for `probe`: builds the
    /// equivalent sets `q(r, x)` against that length's partition and
    /// merges posting lists.
    ///
    /// Returns `(per-candidate α vectors, per-segment over-cap flags)`;
    /// flagged segments could not be evaluated on the probe side and must
    /// be treated as conservatively matching.
    pub fn query(
        &self,
        probe: &UncertainString,
        indexed_len: usize,
        config: &JoinConfig,
    ) -> Option<(AlphaVectors, Vec<bool>)> {
        self.query_recorded(probe, indexed_len, config, &mut NoopRecorder)
    }

    /// [`SegmentIndex::query`] plus [`Counter::IndexPostingsScanned`] and
    /// [`Counter::IndexCandidatesSurfaced`] events on `rec` (how much
    /// posting-list work the merge did and how many α-vectors it
    /// produced, including conservative over-cap fallbacks).
    pub fn query_recorded<R: Recorder>(
        &self,
        probe: &UncertainString,
        indexed_len: usize,
        config: &JoinConfig,
        rec: &mut R,
    ) -> Option<(AlphaVectors, Vec<bool>)> {
        self.query_cached_recorded(probe, indexed_len, config, &mut EquivCache::new(), rec)
    }

    /// [`SegmentIndex::query_recorded`] with the probe's equivalent sets
    /// memoised in `cache`, so repeated queries by one probe (against many
    /// lengths, or many shards) build each `q(r, x)` once.
    pub fn query_cached_recorded<R: Recorder>(
        &self,
        probe: &UncertainString,
        indexed_len: usize,
        config: &JoinConfig,
        cache: &mut EquivCache,
        rec: &mut R,
    ) -> Option<(AlphaVectors, Vec<bool>)> {
        let index = self.by_length.get(&indexed_len)?;
        let mut over_cap = index.incomplete.clone();
        let salt = self.interner_salt;
        // Populate the caches first (one mutable pass — the warm path
        // touches only `resolved`), then collect shared references for
        // the merge (immutable pass).
        let rkeys: Vec<Option<(u64, usize, usize, usize)>> = index
            .segments
            .iter()
            .enumerate()
            .map(|(x, seg)| {
                let range =
                    window_range(config.policy, probe.len(), indexed_len, config.k, seg)?;
                let rkey = (salt, range.0, range.1, seg.len);
                if !cache.resolved.contains_key(&rkey) {
                    let set = cache
                        .map
                        .entry((range.0, range.1, seg.len))
                        .or_insert_with(|| {
                            EquivalentSet::build(
                                probe,
                                range,
                                seg.len,
                                config.alpha_mode,
                                config.max_segment_instances,
                            )
                        });
                    match set {
                        Some(set) => {
                            let rs = ResolvedSet::build(set, &self.interner);
                            cache.resolved.insert(rkey, rs);
                        }
                        None => {
                            over_cap[x] = true;
                            return None;
                        }
                    }
                }
                Some(rkey)
            })
            .collect();
        let probe_sets: Vec<Option<&ResolvedSet>> = rkeys
            .iter()
            .map(|rkey| rkey.as_ref().map(|rkey| &cache.resolved[rkey]))
            .collect();
        let (mut alphas, postings) = index.query(&probe_sets);
        if over_cap.iter().any(|&b| b) {
            // Conservative fallback: an over-cap segment may hide matches,
            // so every indexed id of this length must surface as a
            // candidate (with zero α where no posting was found).
            for &id in &index.ids {
                alphas.row_mut(id);
            }
        }
        rec.counter(Counter::IndexPostingsScanned, postings);
        rec.counter(Counter::IndexCandidatesSurfaced, alphas.len() as u64);
        Some((alphas, over_cap))
    }

    /// The q-gram candidate stage for one indexed length, shared by the
    /// sequential, search, and sharded parallel drivers: query the length
    /// index (through `cache`), apply the Lemma 5 count condition and the
    /// sound Theorem 2 bound, and push survivors onto `candidates`.
    ///
    /// `admit_below = Some(limit)` restricts scope to ids `< limit` — the
    /// sharded parallel driver probes against a fully-built same-length
    /// shard and must consider only visit-order-earlier ids to stay
    /// byte-identical with the sequential driver. `None` admits every
    /// indexed id (the sequential index only ever contains earlier ids).
    ///
    /// Returns the number of admitted pairs in scope at this length;
    /// prune-attribution counters ([`Counter::QgramPrunedCount`] /
    /// [`Counter::QgramPrunedBound`]) are emitted on `rec`, survivor
    /// counting is left to the caller.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn collect_candidates_recorded<R: Recorder>(
        &self,
        probe: &UncertainString,
        indexed_len: usize,
        config: &JoinConfig,
        admit_below: Option<u32>,
        cache: &mut EquivCache,
        candidates: &mut Vec<u32>,
        rec: &mut Recording<'_, R>,
    ) -> u64 {
        let Some(li) = self.by_length.get(&indexed_len) else {
            return 0;
        };
        let admit = |id: u32| admit_below.is_none_or(|limit| id < limit);
        let in_scope = match admit_below {
            None => li.ids.len() as u64,
            Some(limit) => li.ids.partition_point(|&id| id < limit) as u64,
        };
        if in_scope == 0 {
            return 0;
        }
        let m = li.segments.len();
        let required = m.saturating_sub(config.k);
        if required == 0 {
            // m ≤ k: Lemma 5 cannot prune anything at this length — every
            // admitted indexed string is a candidate.
            candidates.extend(li.ids.iter().copied().filter(|&id| admit(id)));
            return in_scope;
        }
        let Some((alphas, over_cap)) =
            self.query_cached_recorded(probe, indexed_len, config, cache, rec.recorder())
        else {
            return in_scope;
        };
        let capped = over_cap.iter().any(|&b| b);
        // Independence structure of this (probe, length): shared once
        // across all candidates (see usj_qgram::soundness for why the
        // plain Theorem 2 tail would be unsound here).
        let regions: Vec<Option<Region>> = li
            .segments
            .iter()
            .map(|seg| {
                window_range(config.policy, probe.len(), indexed_len, config.k, seg)
                    .map(|r| window_region(r, seg.len))
            })
            .collect();
        let bounder = TailBounder::new(&regions, probe);
        let mut surfaced = 0u64;
        let mut alpha = vec![0.0; m];
        for (id, row) in alphas.iter() {
            if !admit(id) {
                continue;
            }
            surfaced += 1;
            alpha.copy_from_slice(row);
            // Over-cap segments count as matched with α = 1.
            for (a, &oc) in alpha.iter_mut().zip(&over_cap) {
                if oc {
                    *a = 1.0;
                }
            }
            let matched = alpha.iter().filter(|&&a| a > 0.0).count();
            if matched < required {
                rec.count(Counter::QgramPrunedCount, 1);
                continue;
            }
            let bound = if capped {
                1.0
            } else {
                bounder.bound(&alpha, required)
            };
            if bound <= config.tau {
                rec.count(Counter::QgramPrunedBound, 1);
                continue;
            }
            candidates.push(id);
        }
        // Ids that never surfaced have zero matching segments and were
        // pruned by the count condition implicitly.
        rec.count(Counter::QgramPrunedCount, in_scope - surfaced);
        in_scope
    }

    /// Lengths currently indexed, ascending.
    pub fn lengths(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.by_length.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// The index for one length, if present.
    pub fn length_index(&self, len: usize) -> Option<&LengthIndex> {
        self.by_length.get(&len)
    }

    /// Drops indices for lengths `< min_len` — once the (length-sorted)
    /// scan has advanced past `min_len + k`, those can never be queried
    /// again. This is how the paper keeps *peak* memory below the data
    /// size (§7.6).
    pub fn evict_below(&mut self, min_len: usize) {
        self.by_length.retain(|&len, _| len >= min_len);
    }

    /// Estimated heap footprint of all posting lists plus the shared
    /// intern table, in bytes.
    pub fn estimated_bytes(&self) -> usize {
        self.interner.estimated_bytes()
            + self
                .by_length
                .values()
                .map(LengthIndex::estimated_bytes)
                .sum::<usize>()
    }

    /// Largest estimated footprint observed since construction.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Total number of indexed strings across lengths.
    pub fn num_strings(&self) -> usize {
        self.by_length.values().map(LengthIndex::num_strings).sum()
    }

    /// The interner's entries in dense id order (snapshot writer).
    pub(crate) fn dump_interner(&self) -> Vec<Vec<Symbol>> {
        self.interner.dump()
    }

    /// The dump of one length band, if indexed (snapshot writer).
    pub(crate) fn dump_band(&self, len: usize) -> Option<BandDump> {
        self.by_length.get(&len).map(|li| li.dump(len))
    }

    /// Reassembles an index from snapshot parts. The restored index
    /// carries a fresh interner salt (it is a distinct index as far as
    /// resolved-set caches are concerned) and a peak-bytes watermark
    /// equal to its current footprint — a cold build without eviction
    /// peaks at full size too, so warm and cold stats agree.
    pub(crate) fn from_parts(
        interner_entries: Vec<Vec<Symbol>>,
        bands: Vec<BandDump>,
        config: &JoinConfig,
    ) -> Result<SegmentIndex, String> {
        let mut index = SegmentIndex::new();
        index.interner = SegmentInterner::restore(interner_entries);
        for band in bands {
            let len = band.len;
            let restored = LengthIndex::restore(band, config)?;
            if index.by_length.insert(len, restored).is_some() {
                return Err(format!("band {len} appears twice"));
            }
        }
        index.peak_bytes = index.estimated_bytes();
        Ok(index)
    }

    /// Rebuilds the posting tables of one length band from the source
    /// strings, resolving segment instances through the shared interner.
    /// When the interner is intact (it holds every instance the original
    /// build interned), re-insertion replays the cold build's per-band
    /// sequence and the result is bit-identical to it.
    pub(crate) fn rebuild_band(
        &mut self,
        len: usize,
        strings: &[UncertainString],
        config: &JoinConfig,
    ) {
        let mut li = LengthIndex::new(len, config);
        for (id, s) in strings.iter().enumerate() {
            if s.len() == len {
                li.insert(id as u32, s, config.max_segment_instances, &mut self.interner);
            }
        }
        self.by_length.insert(len, li);
        self.peak_bytes = self.peak_bytes.max(self.estimated_bytes());
    }

    /// Deterministic digest over everything the query path reads:
    /// interner entries in id order, then each band ascending — ids,
    /// over-cap flags, posting keys and lists with probability bits.
    /// Two indices with equal digests answer every probe identically.
    pub(crate) fn content_digest(&self) -> u64 {
        use crate::checkpoint::{fnv1a_fold, FNV_SEED};
        let fold = |h: u64, v: u64| fnv1a_fold(h, &v.to_le_bytes());
        let mut h = FNV_SEED;
        let entries = self.interner.dump();
        h = fold(h, entries.len() as u64);
        for w in &entries {
            h = fold(h, w.len() as u64);
            h = fnv1a_fold(h, w);
        }
        for len in self.lengths() {
            let li = &self.by_length[&len];
            h = fold(h, len as u64);
            h = fold(h, li.ids.len() as u64);
            for &id in &li.ids {
                h = fold(h, id as u64);
            }
            for &b in &li.incomplete {
                h = fold(h, b as u64);
            }
            for t in &li.inverted {
                h = fold(h, t.keys.len() as u64);
                for (key, list) in t.keys.iter().zip(&t.lists) {
                    h = fold(h, *key as u64);
                    h = fold(h, list.len() as u64);
                    for &(id, p) in list {
                        h = fold(h, id as u64);
                        h = fold(h, p.to_bits());
                    }
                }
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_model::Alphabet;
    use usj_qgram::{alpha_for_segment, QGramFilter};

    fn dna(text: &str) -> UncertainString {
        UncertainString::parse(text, &Alphabet::dna()).unwrap()
    }

    fn config() -> JoinConfig {
        JoinConfig::new(1, 0.1).with_q(2)
    }

    #[test]
    fn insert_and_query_roundtrip() {
        let config = config();
        let mut index = SegmentIndex::new();
        let strings = [dna("ACGTAC"), dna("AC{(G,0.6),(T,0.4)}TAC"), dna("TTTTTT")];
        for (i, s) in strings.iter().enumerate() {
            index.insert(i as u32, s, &config);
        }
        let probe = dna("ACGTAC");
        let (alphas, over_cap) = index.query(&probe, 6, &config).unwrap();
        assert!(over_cap.iter().all(|&b| !b));
        // String 0 matches all three segments with α = 1.
        assert_eq!(alphas.get(0).unwrap(), &[1.0, 1.0, 1.0]);
        // String 1 matches segment 2 with probability 0.6 (GT vs {G,T}T).
        let a1 = alphas.get(1).unwrap();
        assert!((a1[0] - 1.0).abs() < 1e-9);
        assert!((a1[1] - 0.6).abs() < 1e-9);
        assert!((a1[2] - 1.0).abs() < 1e-9);
        // String 2 shares no segment instance.
        assert!(alphas.get(2).is_none());
    }

    /// α values produced through the index equal the direct
    /// filter-computed values for every candidate.
    #[test]
    fn index_alphas_equal_direct_computation() {
        let config = config();
        let mut index = SegmentIndex::new();
        let strings = [
            dna("G{(A,0.8),(G,0.2)}CT{(A,0.8),(C,0.1),(T,0.1)}C"),
            dna("{(G,0.8),(T,0.2)}GA{(C,0.3),(G,0.2),(T,0.5)}CT"),
            dna("AA{(G,0.9),(T,0.1)}G{(C,0.3),(G,0.2),(T,0.5)}C"),
        ];
        for (i, s) in strings.iter().enumerate() {
            index.insert(i as u32, s, &config);
        }
        let probe = dna("GGAT{(C,0.7),(G,0.3)}C");
        let (alphas, _) = index.query(&probe, 6, &config).unwrap();
        let filter = QGramFilter::new(config.k, config.tau, config.q);
        for (i, s) in strings.iter().enumerate() {
            let direct = filter.evaluate(&probe, s);
            let via_index = alphas
                .get(i as u32)
                .map(|v| v.to_vec())
                .unwrap_or_else(|| vec![0.0; direct.alphas.len()]);
            for (x, (a, b)) in via_index.iter().zip(&direct.alphas).enumerate() {
                assert!(
                    (a - b).abs() < 1e-9,
                    "string {i} segment {x}: index={a} direct={b}"
                );
            }
        }
        // Cross-check one α against the standalone helper too.
        let segs = partition(6, config.q, config.k);
        let range = window_range(config.policy, 6, 6, config.k, &segs[0]).unwrap();
        let set =
            EquivalentSet::build(&probe, range, segs[0].len, config.alpha_mode, 1 << 14).unwrap();
        let direct0 = alpha_for_segment(&set, &strings[0], &segs[0]);
        let got0 = alphas.get(0).map(|v| v[0]).unwrap_or(0.0);
        assert!((got0 - direct0).abs() < 1e-9);
    }

    #[test]
    fn query_missing_length_is_none() {
        let index = SegmentIndex::new();
        assert!(index.query(&dna("ACGT"), 4, &config()).is_none());
    }

    #[test]
    fn eviction_frees_memory_and_tracks_peak() {
        let config = config();
        let mut index = SegmentIndex::new();
        index.insert(0, &dna("ACGTAC"), &config);
        index.insert(1, &dna("ACGTACG"), &config);
        let full = index.estimated_bytes();
        assert!(full > 0);
        index.evict_below(7);
        assert!(index.estimated_bytes() < full);
        assert_eq!(index.lengths(), vec![7]);
        assert!(index.peak_bytes() >= full);
    }

    #[test]
    fn postings_sorted_by_id() {
        let config = config();
        let mut index = SegmentIndex::new();
        for i in 0..20u32 {
            index.insert(i, &dna("AC{(G,0.5),(T,0.5)}TAC"), &config);
        }
        let li = index.length_index(6).unwrap();
        for table in &li.inverted {
            assert!(table.keys.windows(2).all(|w| w[0] < w[1]));
            assert_eq!(table.keys.len(), table.lists.len());
            for list in &table.lists {
                assert!(list.windows(2).all(|w| w[0].0 < w[1].0));
            }
        }
        assert_eq!(li.num_strings(), 20);
    }

    #[test]
    fn interner_shares_ids_across_lengths() {
        let config = config();
        let mut index = SegmentIndex::new();
        // Both lengths start with the segment instance "AC" (in alphabet
        // encoding); the interner must hand out one id for it, not one
        // per length.
        let six = dna("ACGTAC");
        index.insert(0, &six, &config);
        index.insert(1, &dna("ACGTACG"), &config);
        let interner = index.interner();
        assert!(!interner.is_empty());
        let seg0 = &six.most_probable_world().instance[..2];
        let ac = interner.resolve(seg0);
        assert!(ac.is_some(), "shared segment instance must be interned");
        // Dense first-seen ids: every id is below the table size.
        assert!(ac.unwrap() < interner.len() as u32);
        assert_eq!(interner.resolve(&[u8::MAX, u8::MAX]), None);
        // A clone resolves identically but carries a fresh salt, so
        // cached resolved sets cannot leak across the pair.
        let clone = index.clone();
        assert_eq!(clone.interner().resolve(seg0), ac);
        assert_ne!(clone.interner_salt, index.interner_salt);
    }

    #[test]
    fn over_cap_surfaces_every_id() {
        // With a tiny instance cap, the index cannot enumerate uncertain
        // segments — every id of the length must surface as a candidate
        // so no match can be missed.
        let mut config = config();
        config.max_segment_instances = 2;
        let mut index = SegmentIndex::new();
        let strings = [
            dna("ACGTAC"),
            dna("{(A,0.5),(C,0.5)}{(A,0.5),(G,0.5)}GTAC"), // 4 instances in segment 1
            dna("TTTTTT"),
        ];
        for (i, s) in strings.iter().enumerate() {
            index.insert(i as u32, s, &config);
        }
        let (alphas, over_cap) = index.query(&dna("ACGTAC"), 6, &config).unwrap();
        assert!(over_cap.iter().any(|&b| b), "cap must have been hit");
        // Every id surfaces, even TTTTTT with zero posting hits.
        for id in 0..3u32 {
            assert!(alphas.get(id).is_some(), "id {id} missing: {alphas:?}");
        }
    }

    #[test]
    fn probe_over_cap_also_falls_back() {
        // The cap can also be hit on the probe side (q(R,x) too large).
        let mut config = config();
        config.max_segment_instances = 2;
        let mut index = SegmentIndex::new();
        index.insert(0, &dna("ACGTAC"), &config);
        let probe = dna("{(A,0.5),(C,0.5)}{(A,0.5),(G,0.5)}GTAC");
        let (alphas, over_cap) = index.query(&probe, 6, &config).unwrap();
        assert!(over_cap.iter().any(|&b| b));
        assert!(alphas.get(0).is_some());
    }

    #[test]
    fn empty_string_indexed_as_segmentless_length() {
        // Length-0 strings used to be silently skipped, which made the
        // q-gram pipelines miss (empty, empty) pairs the oracle reports.
        // They are now indexed under a segment-less partition.
        let config = config();
        let mut index = SegmentIndex::new();
        index.insert(0, &UncertainString::empty(), &config);
        index.insert(1, &UncertainString::empty(), &config);
        assert_eq!(index.num_strings(), 2);
        let li = index.length_index(0).unwrap();
        assert!(li.segments().is_empty());
        assert_eq!(li.ids(), &[0, 1]);
        // No segments means Lemma 5 requires zero matches — the candidate
        // stage surfaces every length-0 id rather than querying postings.
        let mut stats = crate::stats::JoinStats::default();
        let mut noop = NoopRecorder;
        let mut rec = Recording::new(&mut stats, &mut noop);
        let mut candidates = Vec::new();
        let scope = index.collect_candidates_recorded(
            &UncertainString::empty(),
            0,
            &config,
            None,
            &mut EquivCache::new(),
            &mut candidates,
            &mut rec,
        );
        assert_eq!(scope, 2);
        assert_eq!(candidates, vec![0, 1]);
    }

    #[test]
    fn cached_query_matches_uncached() {
        let config = config();
        let mut index = SegmentIndex::new();
        for (i, s) in [
            dna("ACGTAC"),
            dna("AC{(G,0.6),(T,0.4)}TAC"),
            dna("ACGTACG"),
            dna("TTTTTTT"),
        ]
        .iter()
        .enumerate()
        {
            index.insert(i as u32, s, &config);
        }
        let probe = dna("ACGTACG");
        // One cache shared across both lengths the probe reaches.
        let mut cache = EquivCache::new();
        for len in [6usize, 7] {
            let plain = index.query(&probe, len, &config).unwrap();
            let cached = index
                .query_cached_recorded(&probe, len, &config, &mut cache, &mut NoopRecorder)
                .unwrap();
            assert_eq!(plain.1, cached.1, "over-cap flags len={len}");
            assert_eq!(plain.0.len(), cached.0.len(), "candidates len={len}");
            for (id, alpha) in plain.0.iter() {
                let got = cached.0.get(id).unwrap();
                for (a, b) in alpha.iter().zip(got) {
                    assert!((a - b).abs() < 1e-12, "len={len} id={id}");
                }
            }
        }
        assert!(!cache.is_empty());
        // The cache held entries across lengths: fewer distinct keys than
        // total (length × segment) combinations means reuse happened.
        let total_segments: usize = [6usize, 7]
            .iter()
            .map(|&l| index.length_index(l).unwrap().segments().len())
            .sum();
        assert!(cache.len() <= total_segments);
    }

    #[test]
    fn admit_below_limits_scope_and_candidates() {
        let config = config();
        let mut index = SegmentIndex::new();
        for i in 0..6u32 {
            index.insert(i, &dna("ACGTAC"), &config);
        }
        let probe = dna("ACGTAC");
        let mut stats = crate::stats::JoinStats::default();
        let mut noop = NoopRecorder;
        let mut rec = Recording::new(&mut stats, &mut noop);
        let mut candidates = Vec::new();
        let scope = index.collect_candidates_recorded(
            &probe,
            6,
            &config,
            Some(4),
            &mut EquivCache::new(),
            &mut candidates,
            &mut rec,
        );
        assert_eq!(scope, 4);
        candidates.sort_unstable();
        assert_eq!(candidates, vec![0, 1, 2, 3]);
        // First id of its length: nothing admitted, nothing counted.
        let mut none = Vec::new();
        let scope = index.collect_candidates_recorded(
            &probe,
            6,
            &config,
            Some(0),
            &mut EquivCache::new(),
            &mut none,
            &mut rec,
        );
        assert_eq!(scope, 0);
        assert!(none.is_empty());
    }
}
