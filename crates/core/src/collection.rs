//! Similarity *search*: one probe against a pre-indexed collection.
//!
//! The paper frames the join as repeated search over the visited prefix of
//! the collection; [`IndexedCollection`] exposes the same machinery for
//! standing collections — build once, probe many times. Unlike the join
//! driver, a search probe may be shorter *or* longer than indexed strings,
//! so all lengths in `[|R|−k, |R|+k]` are queried.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use crate::config::JoinConfig;
use crate::index::{EquivCache, SegmentIndex};
use crate::record::Recording;
use crate::stats::JoinStats;
use crate::verifier::{decide_candidate, ProbeVerifier};
use usj_cdf::CdfFilter;
use usj_freq::{FreqFilter, FreqProfile};
use usj_model::{Prob, UncertainString};
use usj_obs::{Counter, Gauge, NoopRecorder, Phase, PhaseGuard, Recorder};

/// One search hit.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// Index of the matching collection string.
    pub id: u32,
    /// Best known lower bound on `Pr(ed ≤ k)` (exact when early stop is
    /// disabled); always `> τ`.
    pub prob: Prob,
}

/// Why a budgeted search was abandoned before producing a result.
///
/// Partial results are refused on principle: a probe that runs out of
/// budget mid-funnel returns this error and *no* hits, because a
/// truncated hit list is indistinguishable from a complete one to the
/// caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchAbort {
    /// The wall-clock deadline expired mid-probe.
    Deadline {
        /// Time spent on the probe before it was abandoned.
        elapsed: Duration,
    },
    /// The cooperative cancel flag was raised by another thread.
    Cancelled,
}

impl std::fmt::Display for SearchAbort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchAbort::Deadline { elapsed } => {
                write!(f, "probe deadline exceeded after {elapsed:.2?}")
            }
            SearchAbort::Cancelled => write!(f, "probe cancelled"),
        }
    }
}

impl std::error::Error for SearchAbort {}

/// Cooperative execution budget for one probe: an optional absolute
/// wall-clock deadline plus an optional cancel flag another thread may
/// raise. The default budget is unlimited, under which a budgeted
/// search can never abort.
#[derive(Debug, Default, Clone, Copy)]
pub struct ProbeBudget<'a> {
    /// Absolute instant after which the probe must abort.
    pub deadline: Option<Instant>,
    /// Flag another thread raises to abandon the probe early.
    pub cancel: Option<&'a AtomicBool>,
}

impl<'a> ProbeBudget<'a> {
    /// Budget with only a deadline, `duration` from now.
    pub fn with_deadline(duration: Duration) -> Self {
        ProbeBudget {
            deadline: Instant::now().checked_add(duration),
            cancel: None,
        }
    }

    /// Returns the abort reason if the budget is exhausted.
    fn check(&self, started: Instant) -> Result<(), SearchAbort> {
        if let Some(cancel) = self.cancel {
            // ordering: Relaxed — the cancel flag is advisory; the only
            // requirement is eventual visibility, not ordering against
            // any other memory operation.
            if cancel.load(Ordering::Relaxed) {
                return Err(SearchAbort::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(SearchAbort::Deadline {
                    elapsed: started.elapsed(),
                });
            }
        }
        Ok(())
    }
}

/// A collection indexed for repeated similarity searches.
#[derive(Debug, Clone)]
pub struct IndexedCollection {
    config: JoinConfig,
    sigma: usize,
    strings: Vec<UncertainString>,
    index: SegmentIndex,
    profiles: Vec<FreqProfile>,
}

impl IndexedCollection {
    /// Indexes `strings` (segment inverted indices + frequency profiles).
    pub fn build(config: JoinConfig, sigma: usize, strings: Vec<UncertainString>) -> Self {
        IndexedCollection::build_recorded(config, sigma, strings, &mut NoopRecorder)
    }

    /// [`IndexedCollection::build`] with the construction instrumented on
    /// `rec`: one [`Phase::Index`] span for the whole build, an insertion
    /// counter per string, and the resulting index-memory gauges.
    pub fn build_recorded<R: Recorder>(
        config: JoinConfig,
        sigma: usize,
        strings: Vec<UncertainString>,
        rec: &mut R,
    ) -> Self {
        assert!(sigma >= 1, "alphabet must be non-empty");
        let mut index = SegmentIndex::new();
        let freq = FreqFilter::new(config.k, config.tau, sigma);
        let mut profiles = Vec::with_capacity(strings.len());
        {
            // RAII span: exits Phase::Index on every path out of the block.
            let mut span = PhaseGuard::enter(rec, Phase::Index);
            for (i, s) in strings.iter().enumerate() {
                index.insert_recorded(i as u32, s, &config, span.rec());
                profiles.push(freq.profile(s));
            }
        }
        rec.gauge(Gauge::IndexBytes, index.estimated_bytes() as u64);
        rec.gauge(Gauge::PeakIndexBytes, index.peak_bytes() as u64);
        IndexedCollection {
            config,
            sigma,
            strings,
            index,
            profiles,
        }
    }

    /// Assembles a collection around an index restored from a snapshot
    /// (`crate::snapshot`). Frequency profiles are deterministic and
    /// cheap relative to the inverted index, so they are recomputed here
    /// instead of being persisted.
    pub(crate) fn from_restored(
        config: JoinConfig,
        sigma: usize,
        strings: Vec<UncertainString>,
        index: SegmentIndex,
    ) -> Self {
        assert!(sigma >= 1, "alphabet must be non-empty");
        let freq = FreqFilter::new(config.k, config.tau, sigma);
        let profiles = strings.iter().map(|s| freq.profile(s)).collect();
        IndexedCollection {
            config,
            sigma,
            strings,
            index,
            profiles,
        }
    }

    /// The segment index (snapshot writer / digest plumbing).
    pub(crate) fn index(&self) -> &SegmentIndex {
        &self.index
    }

    /// Alphabet size the collection was indexed with.
    pub fn sigma(&self) -> usize {
        self.sigma
    }

    /// Number of indexed strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// `true` when no strings are indexed.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// The indexed strings.
    pub fn strings(&self) -> &[UncertainString] {
        &self.strings
    }

    /// Estimated index footprint in bytes.
    pub fn index_bytes(&self) -> usize {
        self.index.estimated_bytes()
    }

    /// The configuration the collection was indexed with.
    pub fn config(&self) -> &JoinConfig {
        &self.config
    }

    /// Finds all indexed strings `S` with `Pr(ed(probe, S) ≤ k) > τ`.
    pub fn search(&self, probe: &UncertainString) -> Vec<SearchHit> {
        self.search_with_stats(probe).0
    }

    /// Runs only the filtering stages (q-gram index + frequency
    /// distance), returning the surviving candidate ids sorted ascending.
    /// Used by [`IndexedCollection::search_top_k`] and exposed for
    /// callers that want custom post-processing.
    pub fn filter_candidates(&self, probe: &UncertainString) -> Vec<u32> {
        let mut stats = JoinStats::default();
        let mut noop = NoopRecorder;
        let mut rec = Recording::new(&mut stats, &mut noop);
        self.candidate_stage(probe, &mut rec)
    }

    /// Shared candidate-generation stage: q-gram index lookups, Lemma 5
    /// count condition, sound Theorem 2 bound, frequency filtering.
    fn candidate_stage<R: Recorder>(
        &self,
        probe: &UncertainString,
        rec: &mut Recording<'_, R>,
    ) -> Vec<u32> {
        let config = &self.config;
        let freq_filter = FreqFilter::new(config.k, config.tau, self.sigma);
        let min_len = probe.len().saturating_sub(config.k);
        let max_len = probe.len() + config.k;

        let qgram_span = rec.begin(Phase::Qgram);
        let mut candidates: Vec<u32> = Vec::new();
        if config.pipeline.uses_qgram() {
            // One equivalent-set cache per probe, shared across lengths.
            let mut cache = EquivCache::new();
            let mut scope = 0u64;
            for len in min_len..=max_len {
                scope += self.index.collect_candidates_recorded(
                    probe,
                    len,
                    config,
                    None,
                    &mut cache,
                    &mut candidates,
                    rec,
                );
            }
            rec.count(Counter::PairsInScope, scope);
        } else {
            let mut scope = 0u64;
            for (id, s) in self.strings.iter().enumerate() {
                if s.len() >= min_len && s.len() <= max_len {
                    scope += 1;
                    candidates.push(id as u32);
                }
            }
            rec.count(Counter::PairsInScope, scope);
        }
        rec.count(Counter::QgramSurvivors, candidates.len() as u64);
        rec.end(qgram_span);
        candidates.sort_unstable();

        if config.pipeline.uses_freq() && !candidates.is_empty() {
            let freq_span = rec.begin(Phase::Freq);
            let rp = freq_filter.profile(probe);
            candidates.retain(|&id| {
                let out = freq_filter.evaluate(&rp, &self.profiles[id as usize]);
                if !out.candidate {
                    if out.fd_lower as usize > config.k {
                        rec.count(Counter::FreqPrunedLower, 1);
                    } else {
                        rec.count(Counter::FreqPrunedChebyshev, 1);
                    }
                }
                out.candidate
            });
            rec.end(freq_span);
        }
        rec.count(Counter::FreqSurvivors, candidates.len() as u64);
        candidates
    }

    /// [`IndexedCollection::search`] plus the per-phase statistics.
    pub fn search_with_stats(&self, probe: &UncertainString) -> (Vec<SearchHit>, JoinStats) {
        self.search_filtered(probe, |_| true)
    }

    /// Like [`IndexedCollection::search_with_stats`] but restricted to
    /// candidate ids accepted by `admit`, applied *before* the expensive
    /// CDF/verification stages. The parallel self-join uses this with
    /// `id < probe_id` so each unordered pair is verified exactly once
    /// (and a probe never verifies against itself).
    pub fn search_filtered(
        &self,
        probe: &UncertainString,
        admit: impl Fn(u32) -> bool,
    ) -> (Vec<SearchHit>, JoinStats) {
        self.search_filtered_recorded(0, probe, admit, &mut NoopRecorder)
    }

    /// [`IndexedCollection::search_filtered`] with the whole search
    /// bracketed as probe `probe_id` on `recorder` (phase spans, prune
    /// counters, and a per-probe [`Phase::Total`] sample). `probe_id` is
    /// only a label for the event stream; it does not affect the search.
    pub fn search_filtered_recorded<R: Recorder>(
        &self,
        probe_id: u32,
        probe: &UncertainString,
        admit: impl Fn(u32) -> bool,
        recorder: &mut R,
    ) -> (Vec<SearchHit>, JoinStats) {
        match self.search_budgeted_recorded(probe_id, probe, admit, ProbeBudget::default(), recorder)
        {
            Ok(out) => out,
            // An unlimited budget has nothing to exhaust.
            Err(abort) => unreachable!("unlimited budget aborted: {abort}"),
        }
    }

    /// [`IndexedCollection::search_filtered_recorded`] under a cooperative
    /// [`ProbeBudget`]: the deadline / cancel flag is checked before
    /// candidate generation, after the filter stages, and between
    /// candidate verifications (the expensive CDF + DP loop). On abort
    /// the partial hit list is *discarded* — the caller gets `Err`, never
    /// a silently truncated answer — but the probe's recorded events up
    /// to that point, including the [`Phase::Total`] sample, are kept so
    /// latency histograms still see abandoned probes.
    pub fn search_budgeted_recorded<R: Recorder>(
        &self,
        probe_id: u32,
        probe: &UncertainString,
        admit: impl Fn(u32) -> bool,
        budget: ProbeBudget<'_>,
        recorder: &mut R,
    ) -> Result<(Vec<SearchHit>, JoinStats), SearchAbort> {
        let config = &self.config;
        let total_start = Instant::now();
        let mut stats = JoinStats {
            num_strings: self.strings.len(),
            ..Default::default()
        };
        let mut hits = Vec::new();
        let mut abort;
        {
            let mut rec = Recording::new(&mut stats, recorder);
            rec.probe_start(probe_id);
            abort = budget.check(total_start).err();

            // ---- Candidate generation + frequency filtering ----------
            if abort.is_none() {
                let cdf_filter = CdfFilter::new(config.k, config.tau);
                let mut candidates = self.candidate_stage(probe, &mut rec);
                candidates.retain(|&id| admit(id));
                abort = budget.check(total_start).err();

                // ---- CDF + verification ------------------------------
                let mut verifier: Option<ProbeVerifier> = None;
                for id in candidates {
                    if abort.is_some() {
                        break;
                    }
                    let other = &self.strings[id as usize];
                    if let Some((similar, prob)) = decide_candidate(
                        probe,
                        other,
                        &cdf_filter,
                        &mut verifier,
                        config,
                        &mut rec,
                    ) {
                        if similar {
                            hits.push(SearchHit { id, prob });
                        }
                    }
                    abort = budget.check(total_start).err();
                }
            }
            if abort.is_none() {
                rec.count(Counter::OutputPairs, hits.len() as u64);
            }
        }
        // Gauges are set on the stats view directly: the index is static
        // during a search, so per-probe gauge events would only repeat the
        // same value into the trace.
        stats.index_bytes = self.index.estimated_bytes();
        stats.peak_index_bytes = self.index.peak_bytes();
        let elapsed = total_start.elapsed();
        stats.timings.total = elapsed;
        recorder.enter_phase(Phase::Total);
        recorder.exit_phase(Phase::Total, elapsed);
        recorder.probe_end(probe_id);
        match abort {
            Some(abort) => Err(abort),
            None => Ok((hits, stats)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Pipeline;
    use usj_model::Alphabet;
    use usj_verify::exact_similarity_prob;

    fn dna(text: &str) -> UncertainString {
        UncertainString::parse(text, &Alphabet::dna()).unwrap()
    }

    fn collection() -> Vec<UncertainString> {
        vec![
            dna("ACGTACGT"),
            dna("ACG{(T,0.9),(G,0.1)}ACGT"),
            dna("TTTTTTTT"),
            dna("ACGTACG"),
            dna("ACGTACGTAC"),
        ]
    }

    #[test]
    fn search_matches_oracle() {
        let strings = collection();
        for pipeline in Pipeline::all() {
            let config = JoinConfig::new(2, 0.3)
                .with_pipeline(pipeline)
                .with_early_stop(false);
            let coll = IndexedCollection::build(config, 4, strings.clone());
            for probe_text in ["ACGTACGT", "ACGT{(A,0.5),(C,0.5)}CGT", "GGGGGGGG"] {
                let probe = dna(probe_text);
                let hits = coll.search(&probe);
                let expected: Vec<u32> = strings
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| exact_similarity_prob(&probe, s, 2) > 0.3)
                    .map(|(i, _)| i as u32)
                    .collect();
                let got: Vec<u32> = hits.iter().map(|h| h.id).collect();
                assert_eq!(got, expected, "{pipeline:?} probe={probe_text}");
            }
        }
    }

    #[test]
    fn probe_shorter_than_collection_strings() {
        let coll = IndexedCollection::build(JoinConfig::new(2, 0.4), 4, collection());
        // Probe of length 6 can match length-8 strings at k = 2.
        let hits = coll.search(&dna("ACGTAC"));
        assert!(hits.iter().any(|h| h.id == 0), "{hits:?}");
        assert!(hits.iter().any(|h| h.id == 3), "{hits:?}");
    }

    #[test]
    fn empty_collection() {
        let coll = IndexedCollection::build(JoinConfig::new(1, 0.1), 4, Vec::new());
        assert!(coll.is_empty());
        assert!(coll.search(&dna("ACGT")).is_empty());
    }

    #[test]
    fn probe_longer_than_all_indexed_strings() {
        let coll = IndexedCollection::build(JoinConfig::new(2, 0.4), 4, collection());
        // Probe of length 12 can only match the length-10 string.
        let hits = coll.search(&dna("ACGTACGTACGT"));
        assert!(hits.iter().all(|h| h.id == 4), "{hits:?}");
        // Far longer probe matches nothing.
        assert!(coll.search(&dna("ACGTACGTACGTACGTACGT")).is_empty());
    }

    #[test]
    fn search_respects_tau_strictly() {
        // Pr(ed ≤ 0) between ACGT and AC{G:0.5}T-style strings is 0.5;
        // τ = 0.5 must exclude (strict inequality), τ = 0.49 include.
        let strings = vec![dna("AC{(G,0.5),(T,0.5)}T")];
        for (tau, expect) in [(0.5, false), (0.49, true)] {
            let coll = IndexedCollection::build(
                JoinConfig::new(0, tau).with_early_stop(false),
                4,
                strings.clone(),
            );
            let hits = coll.search(&dna("ACGT"));
            assert_eq!(!hits.is_empty(), expect, "tau={tau}");
        }
    }

    #[test]
    fn expired_deadline_refuses_partial_results() {
        let coll = IndexedCollection::build(JoinConfig::new(2, 0.3), 4, collection());
        let budget = ProbeBudget {
            deadline: Some(Instant::now()),
            cancel: None,
        };
        let err = coll
            .search_budgeted_recorded(0, &dna("ACGTACGT"), |_| true, budget, &mut NoopRecorder)
            .unwrap_err();
        assert!(matches!(err, SearchAbort::Deadline { .. }), "{err:?}");
    }

    #[test]
    fn raised_cancel_flag_aborts() {
        let coll = IndexedCollection::build(JoinConfig::new(2, 0.3), 4, collection());
        let cancel = AtomicBool::new(true);
        let budget = ProbeBudget {
            deadline: None,
            cancel: Some(&cancel),
        };
        let err = coll
            .search_budgeted_recorded(0, &dna("ACGTACGT"), |_| true, budget, &mut NoopRecorder)
            .unwrap_err();
        assert_eq!(err, SearchAbort::Cancelled);
    }

    #[test]
    fn unlimited_budget_matches_unbudgeted_search() {
        let coll = IndexedCollection::build(JoinConfig::new(2, 0.3), 4, collection());
        let probe = dna("ACGT{(A,0.5),(C,0.5)}CGT");
        let plain = coll.search(&probe);
        let (budgeted, _) = coll
            .search_budgeted_recorded(0, &probe, |_| true, ProbeBudget::default(), &mut NoopRecorder)
            .expect("unlimited budget cannot abort");
        assert_eq!(plain, budgeted);
    }

    #[test]
    fn degraded_candidates_are_superset_of_exact_hits() {
        let coll = IndexedCollection::build(JoinConfig::new(2, 0.3), 4, collection());
        for probe_text in ["ACGTACGT", "ACGT{(A,0.5),(C,0.5)}CGT", "GGGGGGGG"] {
            let probe = dna(probe_text);
            let candidates = coll.filter_candidates(&probe);
            for hit in coll.search(&probe) {
                assert!(
                    candidates.contains(&hit.id),
                    "degraded answer dropped exact hit {} for {probe_text}",
                    hit.id
                );
            }
        }
    }

    #[test]
    fn stats_plumbed_through() {
        let coll = IndexedCollection::build(JoinConfig::new(2, 0.3), 4, collection());
        let (hits, stats) = coll.search_with_stats(&dna("ACGTACGT"));
        assert_eq!(stats.output_pairs, hits.len() as u64);
        assert!(stats.pairs_in_scope >= stats.qgram_survivors);
        assert!(stats.index_bytes > 0);
    }
}
