//! Parallel self-join.
//!
//! The sequential driver ([`crate::SimilarityJoin::self_join`]) is
//! inherently ordered: each probe queries the index of previously-visited
//! strings, then inserts itself. The parallel variant trades that
//! incrementality for independence: the **whole** collection is indexed
//! once ([`crate::IndexedCollection`]), every string probes it
//! concurrently, and a hit `(probe, id)` is emitted only when
//! `id < probe` so each unordered pair surfaces exactly once.
//!
//! Compared to the sequential join this does roughly twice the filtering
//! work (probes see candidates on both sides) and holds the full index in
//! memory (no length eviction), in exchange for near-linear scaling with
//! cores. Output is identical — asserted by tests against the sequential
//! driver and the oracle.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use usj_model::UncertainString;
use usj_obs::{Gauge, MergeRecorder, NoopRecorder};

use crate::collection::IndexedCollection;
use crate::config::JoinConfig;
use crate::join::{JoinResult, SimilarPair};
use crate::record::Recording;
use crate::stats::JoinStats;

/// Runs the self-join with `threads` worker threads (0 = one per
/// available core). Returns exactly the pairs of the sequential driver.
pub fn par_self_join(
    config: JoinConfig,
    sigma: usize,
    strings: &[UncertainString],
    threads: usize,
) -> JoinResult {
    par_self_join_recorded(config, sigma, strings, threads, || NoopRecorder).0
}

/// [`par_self_join`] with per-worker instrumentation. `make_recorder`
/// builds one recorder per worker (plus one for the index build), so the
/// hot probe loop stays lock-free — no shared sink, no atomics. After the
/// worker scope joins, all recorders are folded into one via
/// [`MergeRecorder::absorb`] and returned next to the result; the
/// driver-level events (output count, memory gauges, wall-clock total)
/// land on the merged recorder.
pub fn par_self_join_recorded<R, F>(
    config: JoinConfig,
    sigma: usize,
    strings: &[UncertainString],
    threads: usize,
    make_recorder: F,
) -> (JoinResult, R)
where
    R: MergeRecorder + Send,
    F: Fn() -> R + Sync,
{
    let total_start = std::time::Instant::now();
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    let mut merged = make_recorder();
    let collection =
        IndexedCollection::build_recorded(config, sigma, strings.to_vec(), &mut merged);
    let next = AtomicUsize::new(0);
    let results: Mutex<(Vec<SimilarPair>, JoinStats)> =
        Mutex::new((Vec::new(), JoinStats::default()));
    let recorders: Mutex<Vec<R>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local_pairs = Vec::new();
                let mut local_stats = JoinStats::default();
                let mut local_rec = make_recorder();
                loop {
                    // Dynamic work stealing in small batches keeps load
                    // balanced (probe costs vary wildly with uncertainty).
                    let start = next.fetch_add(8, Ordering::Relaxed);
                    if start >= strings.len() {
                        break;
                    }
                    let end = (start + 8).min(strings.len());
                    for probe_id in start..end {
                        // Admit only smaller ids: each unordered pair is
                        // verified exactly once and never against itself.
                        let (hits, stats) = collection.search_filtered_recorded(
                            probe_id as u32,
                            &strings[probe_id],
                            |id| (id as usize) < probe_id,
                            &mut local_rec,
                        );
                        local_stats.absorb(&stats);
                        for hit in hits {
                            local_pairs.push(SimilarPair {
                                left: hit.id,
                                right: probe_id as u32,
                                prob: hit.prob,
                            });
                        }
                    }
                }
                let mut guard = results.lock().unwrap();
                guard.0.append(&mut local_pairs);
                guard.1.absorb(&local_stats);
                drop(guard);
                recorders.lock().unwrap().push(local_rec);
            });
        }
    });

    for worker_rec in recorders.into_inner().unwrap() {
        merged.absorb(worker_rec);
    }
    let (mut pairs, mut stats) = results.into_inner().unwrap();
    pairs.sort_unstable_by_key(|p| (p.left, p.right));
    stats.num_strings = strings.len();
    // The merged recorder already saw one OutputPairs event per probe and
    // each unordered pair surfaced exactly once, so their sum is exactly
    // this count; only the stats view needs the authoritative value.
    stats.output_pairs = pairs.len() as u64;
    let mut rec = Recording::new(&mut stats, &mut merged);
    rec.gauge(Gauge::IndexBytes, collection.index_bytes() as u64);
    rec.gauge(Gauge::PeakIndexBytes, collection.index_bytes() as u64);
    rec.gauge(Gauge::NumStrings, strings.len() as u64);
    rec.set_total(total_start.elapsed());
    drop(rec);
    (JoinResult { pairs, stats }, merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::SimilarityJoin;
    use usj_model::Alphabet;

    fn dna(text: &str) -> UncertainString {
        UncertainString::parse(text, &Alphabet::dna()).unwrap()
    }

    fn collection() -> Vec<UncertainString> {
        vec![
            dna("ACGTACGT"),
            dna("ACG{(T,0.9),(G,0.1)}ACGT"),
            dna("TTTTTTTT"),
            dna("ACGTACG"),
            dna("{(A,0.6),(C,0.4)}CGTACGT"),
            dna("GGGGGGGG"),
            dna("ACGTACGA"),
        ]
    }

    #[test]
    fn parallel_matches_sequential() {
        let strings = collection();
        let config = JoinConfig::new(2, 0.3);
        let sequential = SimilarityJoin::new(config.clone(), 4).self_join(&strings);
        for threads in [1, 2, 4] {
            let parallel = par_self_join(config.clone(), 4, &strings, threads);
            let a: Vec<_> = sequential.pairs.iter().map(|p| (p.left, p.right)).collect();
            let b: Vec<_> = parallel.pairs.iter().map(|p| (p.left, p.right)).collect();
            assert_eq!(a, b, "threads={threads}");
        }
    }

    #[test]
    fn parallel_exact_probabilities() {
        let strings = collection();
        let config = JoinConfig::new(2, 0.3).with_early_stop(false);
        let result = par_self_join(config, 4, &strings, 3);
        for p in &result.pairs {
            let exact = usj_verify::exact_similarity_prob(
                &strings[p.left as usize],
                &strings[p.right as usize],
                2,
            );
            assert!((p.prob - exact).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_and_single() {
        let config = JoinConfig::new(1, 0.1);
        assert!(par_self_join(config.clone(), 4, &[], 2).pairs.is_empty());
        assert!(par_self_join(config, 4, &[dna("ACGT")], 2).pairs.is_empty());
    }

    #[test]
    fn stats_accumulate() {
        let strings = collection();
        let result = par_self_join(JoinConfig::new(2, 0.3), 4, &strings, 2);
        assert_eq!(result.stats.num_strings, strings.len());
        assert_eq!(result.stats.output_pairs, result.pairs.len() as u64);
        assert!(result.stats.pairs_in_scope > 0);
    }

    /// The pruning funnel stays monotone after merging worker stats. The
    /// inequalities are strict-`>=` rather than the sequential driver's
    /// equalities because the `id < probe_id` admission filter runs after
    /// the frequency-survivor count.
    #[test]
    fn merged_stats_invariants_hold() {
        let strings = collection();
        for threads in [1, 3] {
            let s = par_self_join(JoinConfig::new(2, 0.3), 4, &strings, threads).stats;
            assert!(s.pairs_in_scope >= s.qgram_survivors, "threads={threads}");
            assert!(s.qgram_survivors >= s.freq_survivors, "threads={threads}");
            assert!(
                s.freq_survivors >= s.cdf_accepted + s.cdf_rejected + s.cdf_undecided,
                "threads={threads}"
            );
            assert_eq!(
                s.cdf_undecided,
                s.verified_similar + s.verified_dissimilar,
                "threads={threads}"
            );
            assert!(s.peak_index_bytes >= s.index_bytes);
        }
    }

    /// Per-worker recorders merge into one snapshot whose totals mirror
    /// the merged `JoinStats`, and recording must not perturb the output.
    #[test]
    fn recorded_parallel_merges_workers() {
        use usj_obs::{CollectingRecorder, Counter, Gauge};
        let strings = collection();
        let config = JoinConfig::new(2, 0.3);
        let plain = par_self_join(config.clone(), 4, &strings, 3);
        let (recorded, sink) =
            par_self_join_recorded(config, 4, &strings, 3, CollectingRecorder::new);
        let a: Vec<_> = plain.pairs.iter().map(|p| (p.left, p.right)).collect();
        let b: Vec<_> = recorded.pairs.iter().map(|p| (p.left, p.right)).collect();
        assert_eq!(a, b);
        let s = &recorded.stats;
        assert_eq!(sink.probes(), strings.len() as u64);
        assert_eq!(sink.counter_total(Counter::PairsInScope), s.pairs_in_scope);
        assert_eq!(sink.counter_total(Counter::FreqSurvivors), s.freq_survivors);
        assert_eq!(sink.counter_total(Counter::CdfUndecided), s.cdf_undecided);
        assert_eq!(
            sink.counter_total(Counter::VerifiedSimilar)
                + sink.counter_total(Counter::VerifiedDissimilar),
            s.cdf_undecided
        );
        // Every string inserted once at build; each unordered pair
        // surfaced as exactly one per-probe OutputPairs event.
        assert_eq!(
            sink.counter_total(Counter::IndexInsertions),
            strings.len() as u64
        );
        assert_eq!(sink.counter_total(Counter::OutputPairs), s.output_pairs);
        assert_eq!(sink.gauge_max(Gauge::IndexBytes), s.index_bytes as u64);
    }
}
