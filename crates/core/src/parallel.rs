//! Parallel self-join: the length-banded sharded driver.
//!
//! The sequential driver ([`crate::SimilarityJoin::self_join`]) visits
//! strings in ascending `(length, id)` order, probing the index of
//! previously-visited strings and evicting lengths the sweep has moved
//! past — its peak index memory is bounded by the `[l − k, l]` window, not
//! the collection. This driver keeps that bound **across worker threads**:
//!
//! * Strings are grouped by length into *shards*; consecutive length
//!   groups form a *wave* ([`JoinConfig::shard_band`] lengths per wave,
//!   `0` = sized automatically so a wave feeds every worker).
//! * Waves run in ascending length order. Before a wave for lengths
//!   `[lo, hi]`, shards below `lo − k` are evicted (no remaining probe can
//!   reach them — the sweep-line mirror of the sequential driver's
//!   `evict_below`), then the wave's own shards are built. Only lengths in
//!   `[lo − k, hi]` are ever resident, reported via
//!   [`Gauge::ResidentShards`] and [`Gauge::PeakResidentBytes`].
//! * Within a wave, workers claim probes in adaptive work-stealing
//!   batches ([`JoinConfig::batch_min`]`..=`[`JoinConfig::batch_max`],
//!   shrinking near the tail where self-join probes are most expensive),
//!   counted by [`Counter::StealBatches`]. Each probe admits only
//!   visit-order-earlier candidates (smaller length, or equal length and
//!   smaller id), reusing its equivalent sets across every shard it
//!   touches ([`crate::index::EquivCache`]).
//!
//! Because every pair is filtered and verified in the same probe→candidate
//! direction as the sequential driver, output is **byte-identical** to it
//! — pairs *and* probabilities — asserted by the differential tests below.
//!
//! # Fault tolerance
//!
//! [`par_self_join_ft`] wraps the same wave machinery in a recovery
//! layer. Each work-stealing batch runs against **fresh scratch** (pairs,
//! stats, recorder) inside `catch_unwind`: a panicking batch discards its
//! scratch wholesale — no half-counted funnel counters — and is retried
//! probe-by-probe; a probe that panics even in isolation is
//! **quarantined** ([`Counter::ProbesQuarantined`]) and the run continues
//! without its pairs. A wall-clock [`JoinConfig::deadline`] is checked at
//! batch granularity through a cooperative cancel flag, ending a stuck
//! run with a clean [`JoinError::Deadline`]. With a checkpoint directory
//! ([`FtOptions::checkpoint_dir`]), every completed wave atomically
//! commits a [`Checkpoint`] (pairs, funnel counters, config/input
//! fingerprint), and [`FtOptions::resume`] replays index construction for
//! committed waves while skipping their probes — the resumed output is
//! bit-identical to an uninterrupted run. Failpoints (`parallel.evict`,
//! `parallel.batch`, `parallel.verify`, `index.build`,
//! `checkpoint.write`) let tests inject each failure deterministically
//! (see `usj-fault`).

use std::any::Any;
use std::collections::BTreeMap;
use std::fmt;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use usj_cdf::CdfFilter;
use usj_fault::{shield, InjectedFault};
use usj_freq::{FreqFilter, FreqProfile};
use usj_model::UncertainString;
use usj_obs::{Counter, Gauge, MergeRecorder, NoopRecorder, Phase, Recorder};

use crate::checkpoint::{fnv1a_fold, Checkpoint, CheckpointError, FNV_SEED};
use crate::config::JoinConfig;
use crate::index::{EquivCache, SegmentIndex};
use crate::join::{JoinResult, SimilarPair, SimilarityJoin};
use crate::record::Recording;
use crate::stats::JoinStats;
use crate::verifier::{decide_candidate, ProbeVerifier};

/// Fault-tolerance options for [`par_self_join_ft`].
#[derive(Debug, Clone, Default)]
pub struct FtOptions {
    /// Directory to commit a checkpoint into after every completed wave
    /// (created if absent). `None` disables checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume from the checkpoint in `checkpoint_dir`: committed waves
    /// replay index construction but skip probing. Requires a matching
    /// config/input fingerprint and a valid checkpoint file.
    pub resume: bool,
}

/// What the fault-tolerance layer observed during a successful run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultReport {
    /// Probes whose pairs are missing from the output because they
    /// panicked even when retried in isolation (ascending ids).
    pub quarantined: Vec<u32>,
    /// Waves skipped because a checkpoint already covered them.
    pub waves_resumed: u64,
    /// Batches that panicked and were re-run probe-by-probe.
    pub batches_retried: u64,
    /// Injected faults the run survived (delays + recovered panics).
    pub faults_injected: u64,
    /// The last committed checkpoint, if checkpointing was on.
    pub checkpoint: Option<PathBuf>,
}

/// Why a fault-tolerant join ended without a complete result.
#[derive(Debug)]
pub enum JoinError {
    /// The wall-clock deadline expired. Committed waves (and their
    /// checkpoint, when enabled) survive; resume to finish the rest.
    Deadline {
        /// Wall-clock time elapsed when the run gave up.
        elapsed: Duration,
        /// Waves fully processed before the deadline hit.
        completed_waves: usize,
        /// The last committed checkpoint, if checkpointing was on.
        checkpoint: Option<PathBuf>,
    },
    /// A panic outside the per-batch recovery perimeter (index build,
    /// shard eviction, or checkpoint serialisation) aborted the run.
    Faulted {
        /// The panic message.
        message: String,
        /// The wave being processed when the panic struck.
        wave: usize,
        /// Waves fully committed before the fault.
        completed_waves: usize,
        /// The last committed checkpoint, if checkpointing was on.
        checkpoint: Option<PathBuf>,
    },
    /// Checkpointing or resuming failed (missing/corrupt file, fingerprint
    /// mismatch, or an I/O error writing the checkpoint).
    Checkpoint(CheckpointError),
}

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinError::Deadline {
                elapsed,
                completed_waves,
                checkpoint,
            } => {
                write!(
                    f,
                    "deadline exceeded after {elapsed:.2?}; {completed_waves} wave(s) completed"
                )?;
                if let Some(path) = checkpoint {
                    write!(f, "; checkpoint at {}", path.display())?;
                }
                Ok(())
            }
            JoinError::Faulted {
                message,
                wave,
                completed_waves,
                checkpoint,
            } => {
                write!(
                    f,
                    "join faulted in wave {wave} ({completed_waves} committed): {message}"
                )?;
                if let Some(path) = checkpoint {
                    write!(f, "; checkpoint at {}", path.display())?;
                }
                Ok(())
            }
            JoinError::Checkpoint(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for JoinError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JoinError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

/// Runs the self-join with `threads` worker threads (0 = one per
/// available core). Returns exactly the pairs of the sequential driver.
pub fn par_self_join(
    config: JoinConfig,
    sigma: usize,
    strings: &[UncertainString],
    threads: usize,
) -> JoinResult {
    par_self_join_recorded(config, sigma, strings, threads, || NoopRecorder).0
}

/// [`par_self_join`] with per-worker instrumentation. `make_recorder`
/// builds one recorder per worker per wave (plus one per batch of
/// scratch), so the hot probe loop stays lock-free — no shared sink, no
/// atomics. After each wave's scope joins, the worker recorders are
/// folded into one via [`MergeRecorder::absorb`] and returned next to the
/// result; driver-level events (shard builds, residency gauges,
/// wall-clock total) land on the merged recorder.
///
/// This classic API has no error channel: it never checkpoints, ignores
/// any configured deadline, and benefits from batch-level panic recovery
/// — the only error the fault-tolerant core can still surface is an
/// unrecovered driver-level panic, which is re-raised as the panic it
/// was.
pub fn par_self_join_recorded<R, F>(
    config: JoinConfig,
    sigma: usize,
    strings: &[UncertainString],
    threads: usize,
    make_recorder: F,
) -> (JoinResult, R)
where
    R: MergeRecorder + Send,
    F: Fn() -> R + Sync,
{
    let mut config = config;
    config.deadline = None;
    match par_self_join_ft(
        config,
        sigma,
        strings,
        threads,
        &FtOptions::default(),
        make_recorder,
    ) {
        Ok((result, _report, recorder)) => (result, recorder),
        Err(e) => panic!("{e}"),
    }
}

/// Shared read-only state a wave's probes run against.
struct WaveCtx<'a> {
    strings: &'a [UncertainString],
    config: &'a JoinConfig,
    index: &'a SegmentIndex,
    visited: &'a BTreeMap<usize, Vec<u32>>,
    profiles: &'a [Option<FreqProfile>],
    freq_filter: &'a FreqFilter,
    cdf_filter: &'a CdfFilter,
}

/// The fault-tolerant self-join (see the module docs' *Fault tolerance*
/// section). On success returns the result (bit-identical to the plain
/// driver whenever nothing was quarantined), the [`FaultReport`], and the
/// merged recorder; on deadline/fault/checkpoint failure returns a
/// structured [`JoinError`] that names what survives.
pub fn par_self_join_ft<R, F>(
    config: JoinConfig,
    sigma: usize,
    strings: &[UncertainString],
    threads: usize,
    opts: &FtOptions,
    make_recorder: F,
) -> Result<(JoinResult, FaultReport, R), JoinError>
where
    R: MergeRecorder + Send,
    F: Fn() -> R + Sync,
{
    assert!(sigma >= 1, "alphabet must be non-empty");
    let total_start = Instant::now();
    let threads = resolve_threads(threads, strings.len());
    let mut merged = make_recorder();

    // Fast path: an empty or single-string collection has no pairs to
    // find, and one worker is just the sequential driver with extra
    // steps — run it directly, spawning no threads and building no waves.
    // Only when no fault-tolerance feature is engaged: deadlines and
    // checkpoints always take the wave machinery.
    let plain = opts.checkpoint_dir.is_none() && !opts.resume && config.deadline.is_none();
    if plain && (strings.len() <= 1 || threads <= 1) {
        let result = SimilarityJoin::new(config, sigma).self_join_recorded(strings, &mut merged);
        return Ok((result, FaultReport::default(), merged));
    }
    if opts.resume && opts.checkpoint_dir.is_none() {
        return Err(JoinError::Checkpoint(CheckpointError::Io(
            "resume requires a checkpoint directory".to_string(),
        )));
    }

    let batch_min = config.batch_min.max(1);
    let batch_max = config.batch_max.max(batch_min);

    // Visit order: ascending (length, id) — identical to the sequential
    // driver, so admission below reproduces its probe→candidate direction.
    let mut order: Vec<u32> = (0..strings.len() as u32).collect();
    order.sort_by_key(|&i| (strings[i as usize].len(), i));

    // Length groups (shards-to-be): runs of equal length within `order`.
    // A group is never split across waves, so a probe's same-length shard
    // is always fully resident when the probe runs.
    let mut groups: Vec<(usize, Range<usize>)> = Vec::new();
    let mut start = 0usize;
    for i in 1..=order.len() {
        if i == order.len()
            || strings[order[i] as usize].len() != strings[order[start] as usize].len()
        {
            groups.push((strings[order[start] as usize].len(), start..i));
            start = i;
        }
    }

    // Wave plan: `shard_band` length groups per wave; 0 = grow each wave
    // until it holds enough probes to hand every worker a full batch.
    let auto_target = threads * batch_max;
    let mut waves: Vec<Range<usize>> = Vec::new();
    let mut g = 0usize;
    while g < groups.len() {
        let mut end = g + 1;
        if config.shard_band == 0 {
            let mut probes = groups[g].1.len();
            while end < groups.len() && probes < auto_target {
                probes += groups[end].1.len();
                end += 1;
            }
        } else {
            end = (g + config.shard_band).min(groups.len());
        }
        waves.push(g..end);
        g = end;
    }

    let run_fp = run_fingerprint(&config, sigma, strings, &order, &groups, &waves);

    let freq_filter = FreqFilter::new(config.k, config.tau, sigma);
    let cdf_filter = CdfFilter::new(config.k, config.tau);

    let mut stats = JoinStats {
        num_strings: strings.len(),
        ..Default::default()
    };
    let mut pairs: Vec<SimilarPair> = Vec::new();
    let mut quarantined: Vec<u32> = Vec::new();
    // Resident shard state, rebuilt band by band.
    let mut index = SegmentIndex::new();
    let mut visited: BTreeMap<usize, Vec<u32>> = BTreeMap::new();
    let mut profiles: Vec<Option<FreqProfile>> = vec![None; strings.len()];

    // ---- Resume: adopt the committed prefix ---------------------------
    let mut resumed_waves = 0usize;
    let mut last_checkpoint: Option<PathBuf> = None;
    if opts.resume {
        if let Some(dir) = &opts.checkpoint_dir {
            let ck = Checkpoint::load(dir).map_err(JoinError::Checkpoint)?;
            if ck.fingerprint != run_fp {
                return Err(JoinError::Checkpoint(CheckpointError::FingerprintMismatch {
                    checkpoint: ck.fingerprint,
                    run: run_fp,
                }));
            }
            if ck.completed_waves > waves.len() {
                return Err(JoinError::Checkpoint(CheckpointError::Corrupt(format!(
                    "checkpoint claims {} completed wave(s) but the plan has {}",
                    ck.completed_waves,
                    waves.len()
                ))));
            }
            resumed_waves = ck.completed_waves;
            stats.absorb(&ck.funnel);
            pairs = ck.pairs;
            last_checkpoint = Some(Checkpoint::path_in(dir));
            let mut rec = Recording::new(&mut stats, &mut merged);
            rec.count(Counter::WavesResumed, resumed_waves as u64);
        }
    }

    let mut completed_waves = resumed_waves;
    for (wave_idx, wave) in waves.iter().enumerate() {
        let wave_groups = &groups[wave.clone()];
        let wave_lo = wave_groups[0].0;
        let reach_lo = wave_lo.saturating_sub(config.k);
        let probe_range = wave_groups[0].1.start..wave_groups[wave_groups.len() - 1].1.end;

        // Deadline check between waves (workers re-check per batch below).
        if let Some(deadline) = config.deadline {
            if total_start.elapsed() > deadline {
                return Err(JoinError::Deadline {
                    elapsed: total_start.elapsed(),
                    completed_waves,
                    checkpoint: last_checkpoint,
                });
            }
        }

        // ---- Evict shards no remaining probe can reach, then build ----
        // Runs for resumed waves too: later probes need their index,
        // profiles, and visited sets resident. A panic in here (including
        // the `parallel.evict` / `index.build` failpoints) cannot be
        // isolated to one probe, so it aborts the run as a clean
        // `Faulted` error pointing at the last committed checkpoint.
        let build = catching(|| {
            let mut rec = Recording::new(&mut stats, &mut merged);
            let index_span = rec.begin(Phase::Index);
            // Failpoint: a crash in shard eviction; a delay that fires is
            // a survived fault.
            if usj_fault::fail_point!("parallel.evict") {
                rec.count(Counter::FaultsInjected, 1);
            }
            if config.pipeline.uses_qgram() {
                index.evict_below(reach_lo);
            }
            while let Some(entry) = visited.first_entry() {
                if *entry.key() >= reach_lo {
                    break;
                }
                for id in entry.remove() {
                    profiles[id as usize] = None;
                }
            }
            for (len, range) in wave_groups {
                for idx in range.clone() {
                    let id = order[idx];
                    let s = &strings[id as usize];
                    if config.pipeline.uses_qgram() {
                        index.insert_recorded(id, s, &config, rec.recorder());
                    }
                    if config.pipeline.uses_freq() {
                        profiles[id as usize] = Some(freq_filter.profile(s));
                    }
                    visited.entry(*len).or_default().push(id);
                }
            }
            rec.end(index_span);
            rec.gauge(Gauge::ResidentShards, index.lengths().len() as u64);
            rec.gauge(Gauge::IndexBytes, index.estimated_bytes() as u64);
            rec.gauge(Gauge::PeakIndexBytes, index.peak_bytes() as u64);
            rec.gauge(Gauge::PeakResidentBytes, index.peak_bytes() as u64);
        });
        if let Err(message) = build {
            return Err(JoinError::Faulted {
                message,
                wave: wave_idx,
                completed_waves,
                checkpoint: last_checkpoint,
            });
        }

        // A committed wave's probes are already in `pairs` — only its
        // index state (rebuilt above) was needed.
        if wave_idx < resumed_waves {
            continue;
        }

        // ---- Probe the wave with adaptive work-stealing batches -------
        let wave_order = &order[probe_range];
        let wave_len = wave_order.len();
        let wave_workers = threads.min(wave_len).max(1);
        let next = AtomicUsize::new(0);
        let cancel = AtomicBool::new(false);
        let ctx = WaveCtx {
            strings,
            config: &config,
            index: &index,
            visited: &visited,
            profiles: &profiles,
            freq_filter: &freq_filter,
            cdf_filter: &cdf_filter,
        };
        let results: Mutex<(Vec<SimilarPair>, JoinStats, Vec<u32>)> =
            Mutex::new((Vec::new(), JoinStats::default(), Vec::new()));
        let recorders: Mutex<Vec<R>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..wave_workers {
                scope.spawn(|| {
                    let mut local_pairs = Vec::new();
                    let mut local_stats = JoinStats::default();
                    let mut local_rec = make_recorder();
                    let mut local_quarantine: Vec<u32> = Vec::new();
                    loop {
                        // ordering: Relaxed — the cancel flag is advisory
                        // (a worker that misses it merely finishes one more
                        // batch); result publication synchronises through
                        // the mutexes and the scope join, not this flag.
                        if cancel.load(Ordering::Relaxed) {
                            break;
                        }
                        if let Some(deadline) = ctx.config.deadline {
                            if total_start.elapsed() > deadline {
                                // ordering: Relaxed — same advisory-flag
                                // argument as the load above.
                                cancel.store(true, Ordering::Relaxed);
                                break;
                            }
                        }
                        let Some(batch) =
                            grab_batch(&next, wave_len, wave_workers, batch_min, batch_max)
                        else {
                            break;
                        };
                        local_rec.counter(Counter::StealBatches, 1);
                        let ids = &wave_order[batch];
                        match run_batch_caught(ids, &ctx, &make_recorder) {
                            Ok((mut bp, bs, br)) => {
                                local_pairs.append(&mut bp);
                                local_stats.absorb(&bs);
                                local_rec.absorb(br);
                            }
                            Err(payload) => {
                                {
                                    let mut rec =
                                        Recording::new(&mut local_stats, &mut local_rec);
                                    rec.count(Counter::BatchesRetried, 1);
                                    if payload.downcast_ref::<InjectedFault>().is_some() {
                                        rec.count(Counter::FaultsInjected, 1);
                                    }
                                }
                                // The batch's scratch is gone; replay it
                                // probe-by-probe so one poisonous probe
                                // cannot take its batchmates down with it.
                                for &id in ids {
                                    match run_batch_caught(&[id], &ctx, &make_recorder) {
                                        Ok((mut pp, ps, pr)) => {
                                            local_pairs.append(&mut pp);
                                            local_stats.absorb(&ps);
                                            local_rec.absorb(pr);
                                        }
                                        Err(p2) => {
                                            let mut rec = Recording::new(
                                                &mut local_stats,
                                                &mut local_rec,
                                            );
                                            rec.count(Counter::ProbesQuarantined, 1);
                                            if p2.downcast_ref::<InjectedFault>().is_some() {
                                                rec.count(Counter::FaultsInjected, 1);
                                            }
                                            local_quarantine.push(id);
                                        }
                                    }
                                }
                            }
                        }
                    }
                    // A poisoned lock only means another worker panicked
                    // mid-push; the data under it is a plain Vec append,
                    // always consistent — so recover instead of
                    // double-panicking here.
                    let mut guard = results.lock().unwrap_or_else(PoisonError::into_inner);
                    guard.0.append(&mut local_pairs);
                    guard.1.absorb(&local_stats);
                    guard.2.append(&mut local_quarantine);
                    drop(guard);
                    recorders
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push(local_rec);
                });
            }
        });
        // Workers can no longer hold the locks (the scope joined them), so
        // poison recovery is sound: the protected values were fully
        // written or never touched.
        for worker_rec in recorders
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
        {
            merged.absorb(worker_rec);
        }
        let (mut wave_pairs, wave_stats, mut wave_quar) =
            results.into_inner().unwrap_or_else(PoisonError::into_inner);
        // ordering: Relaxed — workers finished; this is a plain read of
        // whether anyone tripped the deadline.
        if cancel.load(Ordering::Relaxed) {
            // The wave is incomplete; its partial results are discarded —
            // a resume re-runs the whole wave from the last checkpoint.
            return Err(JoinError::Deadline {
                elapsed: total_start.elapsed(),
                completed_waves,
                checkpoint: last_checkpoint,
            });
        }
        pairs.append(&mut wave_pairs);
        stats.absorb(&wave_stats);
        quarantined.append(&mut wave_quar);
        completed_waves = wave_idx + 1;

        // ---- Commit the completed prefix ------------------------------
        if let Some(dir) = &opts.checkpoint_dir {
            // Canonical order makes checkpoint bytes independent of
            // worker scheduling (the digest is reproducible).
            pairs.sort_unstable_by_key(|p| (p.left, p.right));
            let ck = Checkpoint {
                fingerprint: run_fp,
                completed_waves,
                funnel: stats.clone(),
                pairs: pairs.clone(),
            };
            match catching(|| ck.save(dir)) {
                Ok(Ok(path)) => last_checkpoint = Some(path),
                Ok(Err(e)) => return Err(JoinError::Checkpoint(e)),
                Err(message) => {
                    // The wave ran but its checkpoint never committed:
                    // report the previous wave count so a resume replays
                    // this wave from the surviving checkpoint.
                    return Err(JoinError::Faulted {
                        message,
                        wave: wave_idx,
                        completed_waves: completed_waves - 1,
                        checkpoint: last_checkpoint,
                    });
                }
            }
        }
    }

    pairs.sort_unstable_by_key(|p| (p.left, p.right));
    quarantined.sort_unstable();
    stats.num_strings = strings.len();
    // The merged recorder already saw one OutputPairs event per probe and
    // each unordered pair surfaced exactly once, so their sum is exactly
    // this count; only the stats view needs the authoritative value.
    stats.output_pairs = pairs.len() as u64;
    {
        let mut rec = Recording::new(&mut stats, &mut merged);
        rec.gauge(Gauge::IndexBytes, index.estimated_bytes() as u64);
        rec.gauge(Gauge::PeakIndexBytes, index.peak_bytes() as u64);
        rec.gauge(Gauge::PeakResidentBytes, index.peak_bytes() as u64);
        rec.gauge(Gauge::NumStrings, strings.len() as u64);
        rec.set_total(total_start.elapsed());
    }
    let report = FaultReport {
        quarantined,
        waves_resumed: stats.waves_resumed,
        batches_retried: stats.batches_retried,
        faults_injected: stats.faults_injected,
        checkpoint: last_checkpoint,
    };
    Ok((JoinResult { pairs, stats }, report, merged))
}

/// Runs `f` with panics caught (hook-silenced via the fault shield) and
/// converted to their message — the driver-level recovery primitive for
/// sections that cannot be isolated per probe.
fn catching<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    // AssertUnwindSafe: every caller aborts the run (or discards the
    // scratch wholesale) on Err, so no broken invariant is ever reused.
    shield::shielded(|| catch_unwind(AssertUnwindSafe(f))).map_err(|p| panic_message(&*p))
}

/// Best-effort extraction of a panic payload's human-readable message.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(fault) = payload.downcast_ref::<InjectedFault>() {
        fault.to_string()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Runs one batch of probes against **fresh scratch** (pairs, stats,
/// recorder), returning the scratch on success. On a panic anywhere in
/// the batch the scratch is discarded wholesale — no half-counted funnel
/// counters, no partial pairs — and the payload is returned for the
/// caller to triage (retry, quarantine, count injected faults).
fn run_batch_caught<R, F>(
    ids: &[u32],
    ctx: &WaveCtx<'_>,
    make_recorder: &F,
) -> Result<(Vec<SimilarPair>, JoinStats, R), Box<dyn Any + Send>>
where
    R: MergeRecorder + Send,
    F: Fn() -> R + Sync,
{
    // AssertUnwindSafe: the closure only reads the shared wave state and
    // writes the scratch it returns; a panic drops the scratch entirely.
    shield::shielded(|| {
        catch_unwind(AssertUnwindSafe(|| {
            let mut pairs = Vec::new();
            let mut stats = JoinStats::default();
            let mut recorder = make_recorder();
            {
                let mut rec = Recording::new(&mut stats, &mut recorder);
                // Failpoint: a crash taking down a whole batch; a delay
                // that fires is a survived fault.
                if usj_fault::fail_point!("parallel.batch") {
                    rec.count(Counter::FaultsInjected, 1);
                }
            }
            for &id in ids {
                probe_one(id, ctx, &mut pairs, &mut stats, &mut recorder);
            }
            (pairs, stats, recorder)
        }))
    })
}

/// Fingerprint of everything that determines the join's output and its
/// wave decomposition: the output-affecting configuration, the alphabet
/// size, the input collection (in visit order), and the wave boundaries.
/// Scheduling knobs (thread count, batch sizes, deadline) are excluded —
/// except insofar as they shaped the wave plan, which is hashed directly,
/// so a resume with an incompatible plan is refused.
fn run_fingerprint(
    config: &JoinConfig,
    sigma: usize,
    strings: &[UncertainString],
    order: &[u32],
    groups: &[(usize, Range<usize>)],
    waves: &[Range<usize>],
) -> u64 {
    fn fold(h: u64, v: u64) -> u64 {
        fnv1a_fold(h, &v.to_le_bytes())
    }
    let mut h = FNV_SEED;
    h = fold(h, config.k as u64);
    h = fold(h, config.tau.to_bits());
    h = fold(h, config.q as u64);
    h = fnv1a_fold(
        h,
        format!(
            "{:?}/{:?}/{:?}/{:?}",
            config.policy, config.alpha_mode, config.pipeline, config.verifier
        )
        .as_bytes(),
    );
    h = fold(h, config.early_stop as u64);
    h = fold(h, config.max_segment_instances as u64);
    h = fold(h, config.max_trie_nodes as u64);
    h = fold(h, sigma as u64);
    h = fold(h, strings.len() as u64);
    for &id in order {
        let s = &strings[id as usize];
        h = fold(h, id as u64);
        h = fold(h, s.len() as u64);
        for pos in s.positions() {
            h = fold(h, pos.num_alternatives() as u64);
            for (sym, prob) in pos.alternatives() {
                h = fold(h, sym as u64);
                h = fold(h, prob.to_bits());
            }
        }
    }
    h = fold(h, waves.len() as u64);
    for w in waves {
        h = fold(h, groups[w.start].1.start as u64);
        h = fold(h, groups[w.end - 1].1.end as u64);
    }
    h
}

fn resolve_threads(threads: usize, num_strings: usize) -> usize {
    let t = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    // Never spawn more workers than there are probes.
    t.min(num_strings.max(1))
}

/// The batch a worker claims when `remaining` probes are left: a quarter
/// of an even per-worker share, clamped to the configured range. Sizes
/// shrink toward `batch_min` near the tail, where self-join probes are the
/// most expensive (later probes admit strictly more candidates), so no
/// worker is left dragging a large final batch alone.
fn batch_size(remaining: usize, workers: usize, batch_min: usize, batch_max: usize) -> usize {
    (remaining / (workers * 4))
        .clamp(batch_min, batch_max)
        .min(remaining)
}

/// Claims the next batch `[start, end)` off the shared cursor. Batch
/// boundaries depend only on the cursor value — never on which worker
/// claims — so a wave's partition into batches is deterministic and
/// [`Counter::StealBatches`] totals are reproducible across runs.
fn grab_batch(
    next: &AtomicUsize,
    total: usize,
    workers: usize,
    batch_min: usize,
    batch_max: usize,
) -> Option<Range<usize>> {
    // ordering: Relaxed is enough for the cursor — workers communicate
    // only through the claimed ranges themselves (disjoint by CAS), and
    // all result publication happens-before the scope join via the
    // Mutex/spawn edges, not through this atomic.
    let mut cur = next.load(Ordering::Relaxed);
    loop {
        if cur >= total {
            return None;
        }
        let size = batch_size(total - cur, workers, batch_min, batch_max);
        // ordering: same argument as the load above; the CAS only needs
        // atomicity of the claim, not ordering of other memory.
        match next.compare_exchange_weak(cur, cur + size, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return Some(cur..cur + size),
            Err(observed) => cur = observed,
        }
    }
}

/// One probe against the resident shards: the same qgram → freq → CDF →
/// verify pipeline as the sequential driver, restricted to visit-order-
/// earlier candidates (all of a smaller length, ids `< probe_id` at equal
/// length) so each unordered pair is decided exactly once and in the same
/// probe→candidate direction as the sequential driver.
fn probe_one<R: Recorder>(
    probe_id: u32,
    ctx: &WaveCtx<'_>,
    pairs: &mut Vec<SimilarPair>,
    stats: &mut JoinStats,
    recorder: &mut R,
) {
    let config = ctx.config;
    let probe = &ctx.strings[probe_id as usize];
    let min_len = probe.len().saturating_sub(config.k);
    let mut rec = Recording::new(stats, recorder);
    rec.probe_start(probe_id);

    // ---- Candidate generation ---------------------------------------
    let qgram_span = rec.begin(Phase::Qgram);
    let mut candidates: Vec<u32> = Vec::new();
    let mut scope = 0u64;
    if config.pipeline.uses_qgram() {
        // One equivalent-set cache per probe, reused across every shard
        // (indexed length) the probe touches.
        let mut cache = EquivCache::new();
        for len in min_len..=probe.len() {
            let admit_below = (len == probe.len()).then_some(probe_id);
            scope += ctx.index.collect_candidates_recorded(
                probe,
                len,
                config,
                admit_below,
                &mut cache,
                &mut candidates,
                &mut rec,
            );
        }
    } else {
        for (&len, ids) in ctx.visited.range(min_len..=probe.len()) {
            if len == probe.len() {
                let admitted = ids.partition_point(|&id| id < probe_id);
                scope += admitted as u64;
                candidates.extend_from_slice(&ids[..admitted]);
            } else {
                scope += ids.len() as u64;
                candidates.extend_from_slice(ids);
            }
        }
    }
    rec.count(Counter::PairsInScope, scope);
    rec.count(Counter::QgramSurvivors, candidates.len() as u64);
    rec.end(qgram_span);
    // Deterministic candidate order keeps runs reproducible.
    candidates.sort_unstable();

    // ---- Frequency-distance filtering -------------------------------
    if config.pipeline.uses_freq() && !candidates.is_empty() {
        rec.time(Phase::Freq, |rec| {
            // The probe's own profile was computed when its wave was built.
            let rp = ctx.profiles[probe_id as usize]
                .as_ref()
                .expect("wave strings have profiles");
            candidates.retain(|&id| {
                let sp = ctx.profiles[id as usize]
                    .as_ref()
                    .expect("resident strings have profiles");
                let out = ctx.freq_filter.evaluate(rp, sp);
                if !out.candidate {
                    if out.fd_lower as usize > config.k {
                        rec.count(Counter::FreqPrunedLower, 1);
                    } else {
                        rec.count(Counter::FreqPrunedChebyshev, 1);
                    }
                }
                out.candidate
            });
        });
    }
    rec.count(Counter::FreqSurvivors, candidates.len() as u64);

    // ---- CDF bounds + verification ----------------------------------
    // Failpoint: a stuck or crashing verification (the heaviest per-probe
    // phase); a delay that fires is a survived fault.
    if usj_fault::fail_point!("parallel.verify") {
        rec.count(Counter::FaultsInjected, 1);
    }
    let mut verifier: Option<ProbeVerifier> = None; // lazily built
    let mut found = 0u64;
    for id in candidates {
        let other = &ctx.strings[id as usize];
        let Some((similar, prob)) =
            decide_candidate(probe, other, ctx.cdf_filter, &mut verifier, config, &mut rec)
        else {
            continue;
        };
        if similar {
            found += 1;
            pairs.push(SimilarPair {
                left: probe_id.min(id),
                right: probe_id.max(id),
                prob,
            });
        }
    }
    rec.count(Counter::OutputPairs, found);
    rec.probe_end(probe_id);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::IndexedCollection;
    use crate::config::Pipeline;
    use crate::oracle::oracle_self_join;
    use usj_model::{Alphabet, Position};
    use usj_obs::CollectingRecorder;

    fn dna(text: &str) -> UncertainString {
        UncertainString::parse(text, &Alphabet::dna()).unwrap()
    }

    fn collection() -> Vec<UncertainString> {
        vec![
            dna("ACGTACGT"),
            dna("ACG{(T,0.9),(G,0.1)}ACGT"),
            dna("TTTTTTTT"),
            dna("ACGTACG"),
            dna("{(A,0.6),(C,0.4)}CGTACGT"),
            dna("GGGGGGGG"),
            dna("ACGT"),
            dna("ACGTA"),
        ]
    }

    /// Pairs *and* probabilities must agree to the last bit — the sharded
    /// driver's output contract with the sequential driver.
    fn assert_bit_identical(a: &JoinResult, b: &JoinResult) {
        let key = |r: &JoinResult| {
            r.pairs
                .iter()
                .map(|p| (p.left, p.right, p.prob.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(a), key(b));
    }

    /// The funnel counters — everything in `JoinStats` that must be
    /// invariant under thread count and wave plan.
    fn counters(s: &JoinStats) -> [u64; 13] {
        [
            s.pairs_in_scope,
            s.qgram_survivors,
            s.qgram_pruned_count,
            s.qgram_pruned_bound,
            s.freq_survivors,
            s.freq_pruned_lower,
            s.freq_pruned_chebyshev,
            s.cdf_accepted,
            s.cdf_rejected,
            s.cdf_undecided,
            s.verified_similar,
            s.verified_dissimilar,
            s.output_pairs,
        ]
    }

    #[test]
    fn parallel_matches_sequential_bit_for_bit() {
        let strings = collection();
        for pipeline in Pipeline::all() {
            for early_stop in [false, true] {
                let config = JoinConfig::new(2, 0.5)
                    .with_pipeline(pipeline)
                    .with_early_stop(early_stop)
                    .with_batch_range(1, 2);
                let seq = SimilarityJoin::new(config.clone(), 4).self_join(&strings);
                for threads in [2, 3, 8] {
                    let par = par_self_join(config.clone(), 4, &strings, threads);
                    assert_bit_identical(&par, &seq);
                    assert_eq!(
                        counters(&par.stats),
                        counters(&seq.stats),
                        "{pipeline:?} early_stop={early_stop} threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn fast_paths_empty_single_and_one_thread() {
        let config = JoinConfig::new(1, 0.4);
        let (res, _rec) =
            par_self_join_recorded(config.clone(), 4, &[], 4, CollectingRecorder::new);
        assert!(res.pairs.is_empty());
        assert_eq!(res.stats.num_strings, 0);

        let single = vec![dna("ACGT")];
        let res = par_self_join(config.clone(), 4, &single, 4);
        assert!(res.pairs.is_empty());
        assert_eq!(res.stats.num_strings, 1);

        // One worker takes the sequential driver verbatim: identical
        // output *and* identical counters.
        let strings = collection();
        let seq = SimilarityJoin::new(config.clone(), 4).self_join(&strings);
        let par = par_self_join(config.clone(), 4, &strings, 1);
        assert_bit_identical(&par, &seq);
        assert_eq!(counters(&par.stats), counters(&seq.stats));

        // threads = 0 resolves to the machine's parallelism.
        let par = par_self_join(config, 4, &strings, 0);
        assert_bit_identical(&par, &seq);
    }

    #[test]
    fn more_threads_than_strings() {
        let strings = vec![dna("ACGT"), dna("ACGA"), dna("ACG")];
        let config = JoinConfig::new(1, 0.4);
        let seq = SimilarityJoin::new(config.clone(), 4).self_join(&strings);
        let par = par_self_join(config, 4, &strings, 16);
        assert_bit_identical(&par, &seq);
    }

    #[test]
    fn batch_partition_is_deterministic_and_adaptive() {
        // Drain a 100-probe wave single-threadedly: the partition the CAS
        // loop produces depends only on the cursor, so this simulation is
        // exactly what any worker interleaving produces.
        let next = AtomicUsize::new(0);
        let mut covered = Vec::new();
        let mut sizes = Vec::new();
        while let Some(batch) = grab_batch(&next, 100, 4, 1, 8) {
            sizes.push(batch.len());
            covered.extend(batch);
        }
        // Disjoint, complete, in order.
        assert_eq!(covered, (0..100).collect::<Vec<_>>());
        assert!(sizes.iter().all(|&s| (1..=8).contains(&s)), "{sizes:?}");
        // Adaptive: large batches up front, batch_min at the tail.
        assert!(sizes[0] > *sizes.last().unwrap(), "{sizes:?}");
        assert_eq!(*sizes.last().unwrap(), 1);

        // batch_size respects its bounds and never overshoots the end.
        assert_eq!(batch_size(100, 2, 1, 8), 8);
        assert_eq!(batch_size(3, 4, 1, 8), 1);
        assert_eq!(batch_size(5, 100, 4, 8), 4);
        assert_eq!(batch_size(2, 1, 4, 8), 2);
    }

    /// Per-worker recorder used by the load-balance regression test: the
    /// driver absorbs one of these per batch of scratch and per worker,
    /// so only the *totals* are meaningful — which is exactly what the
    /// test pins.
    #[derive(Default)]
    struct WorkerLog {
        probes: u64,
        batches: u64,
    }

    impl Recorder for WorkerLog {
        fn probe_start(&mut self, _probe_id: u32) {
            self.probes += 1;
        }
        fn counter(&mut self, counter: Counter, delta: u64) {
            if counter == Counter::StealBatches {
                self.batches += delta;
            }
        }
    }

    impl MergeRecorder for WorkerLog {
        fn absorb(&mut self, other: Self) {
            self.probes += other.probes;
            self.batches += other.batches;
        }
    }

    #[test]
    fn work_stealing_covers_every_probe_with_expected_batches() {
        // 24 strings of one length: a single group, hence a single wave,
        // so the batch partition is the one simulated below.
        let syms = ['A', 'C', 'G', 'T'];
        let strings: Vec<UncertainString> = (0..24)
            .map(|i| {
                let text: String = (0..6).map(|j| syms[(i + j) % 4]).collect();
                dna(&text)
            })
            .collect();
        let threads = 3;
        let config = JoinConfig::new(1, 0.5)
            .with_batch_range(1, 2)
            .with_shard_band(1);
        let seq = SimilarityJoin::new(config.clone(), 4).self_join(&strings);
        let (par, log) = par_self_join_recorded(config, 4, &strings, threads, WorkerLog::default);
        assert_bit_identical(&par, &seq);

        // Every probe ran exactly once, across all workers combined.
        assert_eq!(log.probes, 24);

        // The batch count is deterministic: replay the cursor arithmetic.
        let next = AtomicUsize::new(0);
        let mut expected = 0u64;
        while grab_batch(&next, 24, threads, 1, 2).is_some() {
            expected += 1;
        }
        assert_eq!(log.batches, expected);
        assert!(
            expected >= threads as u64,
            "enough batches to feed every worker: {expected}"
        );
    }

    #[test]
    fn banded_waves_bound_resident_index_memory() {
        // Strings spread over lengths 4..=16 so the full index dwarfs the
        // [l-k, l] band a wave keeps resident.
        let syms = ['A', 'C', 'G', 'T'];
        let mut strings = Vec::new();
        for len in 4usize..=16 {
            for copy in 0..3 {
                let text: String = (0..len).map(|i| syms[(i + copy) % 4]).collect();
                strings.push(dna(&text));
            }
        }
        let config = JoinConfig::new(1, 0.3).with_shard_band(1);
        let full = IndexedCollection::build(config.clone(), 4, strings.clone()).index_bytes();
        let (par, sink) =
            par_self_join_recorded(config.clone(), 4, &strings, 2, CollectingRecorder::new);
        let peak = sink.gauge_max(Gauge::PeakResidentBytes) as usize;
        assert!(peak > 0);
        assert!(
            peak < full,
            "peak resident bytes ({peak}) must undercut the full index ({full})"
        );
        // A band of one length plus its k-reach keeps at most 2 shards.
        assert!(sink.gauge_max(Gauge::ResidentShards) <= 2);

        // With shard_band = 1 the eviction points coincide with the
        // sequential driver's, so the peaks agree exactly.
        let seq = SimilarityJoin::new(config, 4).self_join(&strings);
        assert_bit_identical(&par, &seq);
        assert_eq!(par.stats.peak_index_bytes, seq.stats.peak_index_bytes);
        assert_eq!(peak, par.stats.peak_index_bytes);

        // The merged recorder and the stats view tell one story.
        assert_eq!(sink.probes(), 39);
        assert_eq!(
            sink.counter_total(Counter::OutputPairs),
            par.stats.output_pairs
        );
    }

    #[test]
    fn empty_strings_surface_in_every_pipeline_and_driver() {
        let strings = vec![
            UncertainString::empty(),
            dna("A"),
            UncertainString::empty(),
            dna("AC"),
            dna("ACG"),
        ];
        for k in [0usize, 1] {
            let oracle = oracle_self_join(&strings, k, 0.3);
            let opairs: Vec<(u32, u32)> = oracle.iter().map(|p| (p.left, p.right)).collect();
            assert!(opairs.contains(&(0, 2)), "k={k}: empty/empty pair expected");
            for pipeline in Pipeline::all() {
                let config = JoinConfig::new(k, 0.3).with_pipeline(pipeline);
                let seq = SimilarityJoin::new(config.clone(), 4).self_join(&strings);
                let spairs: Vec<(u32, u32)> = seq.pairs.iter().map(|p| (p.left, p.right)).collect();
                assert_eq!(spairs, opairs, "{pipeline:?} k={k}");
                let par = par_self_join(config, 4, &strings, 2);
                assert_bit_identical(&par, &seq);
            }
        }
    }

    #[test]
    fn fingerprint_separates_config_input_and_plan() {
        let strings = collection();
        let fp = |config: &JoinConfig, strings: &[UncertainString], threads: usize| {
            let mut order: Vec<u32> = (0..strings.len() as u32).collect();
            order.sort_by_key(|&i| (strings[i as usize].len(), i));
            let mut groups: Vec<(usize, Range<usize>)> = Vec::new();
            let mut start = 0usize;
            for i in 1..=order.len() {
                if i == order.len()
                    || strings[order[i] as usize].len() != strings[order[start] as usize].len()
                {
                    groups.push((strings[order[start] as usize].len(), start..i));
                    start = i;
                }
            }
            let band = config.shard_band.max(1);
            let mut waves = Vec::new();
            let mut g = 0usize;
            while g < groups.len() {
                let end = (g + band).min(groups.len());
                waves.push(g..end);
                g = end;
            }
            let _ = threads;
            run_fingerprint(config, 4, strings, &order, &groups, &waves)
        };
        let base = JoinConfig::new(2, 0.5).with_shard_band(1);
        let a = fp(&base, &strings, 2);
        // Deterministic.
        assert_eq!(a, fp(&base, &strings, 2));
        // Output-affecting knobs move it.
        assert_ne!(a, fp(&JoinConfig::new(1, 0.5).with_shard_band(1), &strings, 2));
        assert_ne!(a, fp(&base.clone().with_early_stop(false), &strings, 2));
        // The input moves it.
        let mut fewer = strings.clone();
        fewer.pop();
        assert_ne!(a, fp(&base, &fewer, 2));
        // The wave plan moves it.
        assert_ne!(a, fp(&base.clone().with_shard_band(2), &strings, 2));
        // Pure scheduling knobs do not.
        assert_eq!(
            a,
            fp(&base.clone().with_batch_range(4, 64), &strings, 2)
        );
        assert_eq!(
            a,
            fp(
                &base
                    .clone()
                    .with_deadline(Some(Duration::from_secs(5))),
                &strings,
                2
            )
        );
    }

    /// Tiny xorshift PRNG — the differential test must not depend on
    /// external crates (see scripts/offline-check.sh).
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    fn random_strings(seed: u64, n: usize, max_len: usize) -> Vec<UncertainString> {
        // Symbols are alphabet indices in 0..sigma (sigma = 4 below).
        let mut rng = XorShift(seed);
        (0..n)
            .map(|_| {
                let len = rng.below(max_len as u64 + 1) as usize;
                let positions = (0..len)
                    .map(|i| {
                        let a = rng.below(4) as u8;
                        if rng.below(4) == 0 {
                            let b = (a + 1 + rng.below(3) as u8) % 4;
                            let p = 0.3 + 0.4 * (rng.below(100) as f64) / 100.0;
                            Position::uncertain(i, vec![(a, p), (b, 1.0 - p)]).unwrap()
                        } else {
                            Position::certain(a)
                        }
                    })
                    .collect();
                UncertainString::new(positions)
            })
            .collect()
    }

    #[test]
    fn randomized_differential_with_segment_over_cap() {
        for seed in [7u64, 99] {
            let strings = random_strings(seed, 32, 8);
            let oracle = oracle_self_join(&strings, 2, 0.3);
            let opairs: Vec<(u32, u32)> = oracle.iter().map(|p| (p.left, p.right)).collect();
            for pipeline in Pipeline::all() {
                for early_stop in [false, true] {
                    let mut config = JoinConfig::new(2, 0.3)
                        .with_pipeline(pipeline)
                        .with_early_stop(early_stop)
                        .with_batch_range(1, 2);
                    // Tiny cap: probes with uncertain positions overflow
                    // their segment equivalent sets, exercising the
                    // incomplete (conservative surfacing) path.
                    config.max_segment_instances = 2;
                    let seq = SimilarityJoin::new(config.clone(), 4).self_join(&strings);
                    let spairs: Vec<(u32, u32)> =
                        seq.pairs.iter().map(|p| (p.left, p.right)).collect();
                    assert_eq!(spairs, opairs, "seed={seed} {pipeline:?}");
                    if !early_stop {
                        // Exact mode reports exact probabilities.
                        for (s, o) in seq.pairs.iter().zip(&oracle) {
                            assert!((s.prob - o.prob).abs() < 1e-9);
                        }
                    }
                    let mut seen = Vec::new();
                    for threads in [2, 3] {
                        let par = par_self_join(config.clone(), 4, &strings, threads);
                        assert_bit_identical(&par, &seq);
                        seen.push(counters(&par.stats));
                    }
                    // Funnel counters are thread-count invariant and match
                    // the sequential driver's.
                    assert_eq!(seen[0], seen[1]);
                    assert_eq!(seen[0], counters(&seq.stats));
                }
            }
        }
    }
}
