//! Parallel self-join.
//!
//! The sequential driver ([`crate::SimilarityJoin::self_join`]) is
//! inherently ordered: each probe queries the index of previously-visited
//! strings, then inserts itself. The parallel variant trades that
//! incrementality for independence: the **whole** collection is indexed
//! once ([`crate::IndexedCollection`]), every string probes it
//! concurrently, and a hit `(probe, id)` is emitted only when
//! `id < probe` so each unordered pair surfaces exactly once.
//!
//! Compared to the sequential join this does roughly twice the filtering
//! work (probes see candidates on both sides) and holds the full index in
//! memory (no length eviction), in exchange for near-linear scaling with
//! cores. Output is identical — asserted by tests against the sequential
//! driver and the oracle.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;
use usj_model::UncertainString;

use crate::collection::IndexedCollection;
use crate::config::JoinConfig;
use crate::join::{JoinResult, SimilarPair};
use crate::stats::JoinStats;

/// Runs the self-join with `threads` worker threads (0 = one per
/// available core). Returns exactly the pairs of the sequential driver.
pub fn par_self_join(
    config: JoinConfig,
    sigma: usize,
    strings: &[UncertainString],
    threads: usize,
) -> JoinResult {
    let total_start = std::time::Instant::now();
    let threads = if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    };
    let collection = IndexedCollection::build(config, sigma, strings.to_vec());
    let next = AtomicUsize::new(0);
    let results: Mutex<(Vec<SimilarPair>, JoinStats)> =
        Mutex::new((Vec::new(), JoinStats::default()));

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local_pairs = Vec::new();
                let mut local_stats = JoinStats::default();
                loop {
                    // Dynamic work stealing in small batches keeps load
                    // balanced (probe costs vary wildly with uncertainty).
                    let start = next.fetch_add(8, Ordering::Relaxed);
                    if start >= strings.len() {
                        break;
                    }
                    let end = (start + 8).min(strings.len());
                    for probe_id in start..end {
                        // Admit only smaller ids: each unordered pair is
                        // verified exactly once and never against itself.
                        let (hits, stats) = collection
                            .search_filtered(&strings[probe_id], |id| (id as usize) < probe_id);
                        local_stats.absorb(&stats);
                        for hit in hits {
                            local_pairs.push(SimilarPair {
                                left: hit.id,
                                right: probe_id as u32,
                                prob: hit.prob,
                            });
                        }
                    }
                }
                let mut guard = results.lock();
                guard.0.append(&mut local_pairs);
                guard.1.absorb(&local_stats);
            });
        }
    });

    let (mut pairs, mut stats) = results.into_inner();
    pairs.sort_unstable_by_key(|p| (p.left, p.right));
    stats.num_strings = strings.len();
    stats.output_pairs = pairs.len() as u64;
    stats.index_bytes = collection.index_bytes();
    stats.peak_index_bytes = collection.index_bytes();
    stats.timings.total = total_start.elapsed();
    JoinResult { pairs, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::SimilarityJoin;
    use usj_model::Alphabet;

    fn dna(text: &str) -> UncertainString {
        UncertainString::parse(text, &Alphabet::dna()).unwrap()
    }

    fn collection() -> Vec<UncertainString> {
        vec![
            dna("ACGTACGT"),
            dna("ACG{(T,0.9),(G,0.1)}ACGT"),
            dna("TTTTTTTT"),
            dna("ACGTACG"),
            dna("{(A,0.6),(C,0.4)}CGTACGT"),
            dna("GGGGGGGG"),
            dna("ACGTACGA"),
        ]
    }

    #[test]
    fn parallel_matches_sequential() {
        let strings = collection();
        let config = JoinConfig::new(2, 0.3);
        let sequential = SimilarityJoin::new(config.clone(), 4).self_join(&strings);
        for threads in [1, 2, 4] {
            let parallel = par_self_join(config.clone(), 4, &strings, threads);
            let a: Vec<_> = sequential.pairs.iter().map(|p| (p.left, p.right)).collect();
            let b: Vec<_> = parallel.pairs.iter().map(|p| (p.left, p.right)).collect();
            assert_eq!(a, b, "threads={threads}");
        }
    }

    #[test]
    fn parallel_exact_probabilities() {
        let strings = collection();
        let config = JoinConfig::new(2, 0.3).with_early_stop(false);
        let result = par_self_join(config, 4, &strings, 3);
        for p in &result.pairs {
            let exact = usj_verify::exact_similarity_prob(
                &strings[p.left as usize],
                &strings[p.right as usize],
                2,
            );
            assert!((p.prob - exact).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_and_single() {
        let config = JoinConfig::new(1, 0.1);
        assert!(par_self_join(config.clone(), 4, &[], 2).pairs.is_empty());
        assert!(par_self_join(config, 4, &[dna("ACGT")], 2).pairs.is_empty());
    }

    #[test]
    fn stats_accumulate() {
        let strings = collection();
        let result = par_self_join(JoinConfig::new(2, 0.3), 4, &strings, 2);
        assert_eq!(result.stats.num_strings, strings.len());
        assert_eq!(result.stats.output_pairs, result.pairs.len() as u64);
        assert!(result.stats.pairs_in_scope > 0);
    }
}
