//! Fixed-seed micro/meso benchmarks over the pipeline's hot kernels.
//!
//! This is the suite behind `usj bench` and the `bench_kernels` binary:
//! ten benches spanning the cost hierarchy of the paper's join —
//!
//! | bench                        | kernel                                   |
//! |------------------------------|------------------------------------------|
//! | `edit_distance_banded`       | banded Levenshtein DP (`usj-editdist`)   |
//! | `poisson_binomial_segment_dp`| Theorem 2 tail DP (`usj-qgram`)          |
//! | `cdf_bound_recurrence`       | Theorem 4 CDF-bound DP (`usj-cdf`)       |
//! | `posting_list_merge`         | segment-index probe funnel (`filter_candidates`) |
//! | `join_end_to_end`            | full `SimilarityJoin::self_join`         |
//! | `simd_pb_row_update`         | dispatched PB row kernel (`usj-simd`)    |
//! | `simd_cdf_row_update`        | dispatched CDF row kernel (`usj-simd`)   |
//! | `simd_prefix_strip`          | dispatched affix scans (`usj-simd`)      |
//! | `simd_intersect_u32`         | dispatched sorted-id intersect (`usj-simd`) |
//! | `snapshot_load_vs_rebuild`   | warm-restart decode (`snapshot::load`, rung Verified) |
//!
//! Inputs are generated from a caller-supplied xorshift seed, so two runs
//! with the same seed and `n` measure identical work — the timing
//! harness, report schema, and >15% median regression gate live in
//! [`usj_obs::bench`]. The end-to-end bench runs fewer iterations than
//! the micro benches (it is seconds, not microseconds); the report
//! records the per-bench iteration counts, so the regression comparison
//! stays apples-to-apples.

use std::hint::black_box;

use usj_cdf::cdf_bounds;
use usj_editdist::edit_distance_bounded;
use usj_model::{Position, UncertainString};
use usj_obs::bench::{run, BenchReport, BenchSpec};
use usj_qgram::poisson_binomial;

use crate::config::JoinConfig;
use crate::join::SimilarityJoin;
use crate::snapshot::{self, SalvageMode};
use crate::IndexedCollection;

/// Alphabet size of the generated collections (DNA-like).
pub const BENCH_SIGMA: usize = 4;

/// Stable bench names, in run order (pinned by tests and the committed
/// `BENCH_baseline.json`).
pub const BENCH_NAMES: [&str; 10] = [
    "edit_distance_banded",
    "poisson_binomial_segment_dp",
    "cdf_bound_recurrence",
    "posting_list_merge",
    "join_end_to_end",
    "simd_pb_row_update",
    "simd_cdf_row_update",
    "simd_prefix_strip",
    "simd_intersect_u32",
    "snapshot_load_vs_rebuild",
];

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// A random uncertain string: length 16–47, ~20% uncertain positions
/// with two alternatives.
fn gen_string(state: &mut u64) -> UncertainString {
    let len = 16 + (xorshift(state) % 32) as usize;
    let mut positions = Vec::with_capacity(len);
    for i in 0..len {
        let a = (xorshift(state) % BENCH_SIGMA as u64) as u8;
        if xorshift(state) % 5 == 0 {
            let b = (a + 1 + (xorshift(state) % (BENCH_SIGMA as u64 - 1)) as u8)
                % BENCH_SIGMA as u8;
            let alts = vec![(a, 0.7), (b, 0.3)];
            positions.push(
                Position::uncertain(i, alts).expect("bench alternatives are well-formed"),
            );
        } else {
            positions.push(Position::certain(a));
        }
    }
    UncertainString::new(positions)
}

fn gen_collection(state: &mut u64, n: usize) -> Vec<UncertainString> {
    (0..n).map(|_| gen_string(state)).collect()
}

fn gen_bytes(state: &mut u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|_| (xorshift(state) % BENCH_SIGMA as u64) as u8)
        .collect()
}

/// The paper-default join configuration the meso benches run under.
fn bench_config() -> JoinConfig {
    JoinConfig::new(2, 0.1).with_q(3)
}

/// Runs the ten-kernel suite: `n` strings generated from `seed`, every
/// bench timed under `spec` (the end-to-end join at `spec.iters / 8`,
/// minimum 1). Returns the report ready for `BENCH_<label>.json`.
pub fn kernel_suite(label: &str, n: usize, seed: u64, spec: BenchSpec) -> BenchReport {
    assert!(n >= 8, "bench collections need at least 8 strings");
    let mut report = BenchReport::new(label, seed);
    // The xorshift state must never be zero.
    let mut state = seed | 1;

    // Micro: banded edit-distance DP over 256 deterministic pairs.
    let byte_pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..256)
        .map(|_| {
            let len = 16 + (xorshift(&mut state) % 48) as usize;
            let a = gen_bytes(&mut state, len);
            let mut b = a.clone();
            // Mutate a few positions so distances straddle the k=4 band.
            for _ in 0..(xorshift(&mut state) % 8) {
                let i = (xorshift(&mut state) as usize) % b.len();
                b[i] = (xorshift(&mut state) % BENCH_SIGMA as u64) as u8;
            }
            (a, b)
        })
        .collect();
    report.benches.push(run(BENCH_NAMES[0], spec, || {
        for (a, b) in &byte_pairs {
            black_box(edit_distance_bounded(a, b, 4));
        }
    }));

    // Micro: Poisson-binomial segment DP over 256 α-vectors.
    let alpha_sets: Vec<Vec<f64>> = (0..256)
        .map(|_| {
            (0..12)
                .map(|_| (xorshift(&mut state) % 1000) as f64 / 1000.0)
                .collect()
        })
        .collect();
    report.benches.push(run(BENCH_NAMES[1], spec, || {
        for alphas in &alpha_sets {
            black_box(poisson_binomial(alphas));
        }
    }));

    // Micro: CDF-bound recurrence over 64 uncertain pairs.
    let cdf_pairs: Vec<(UncertainString, UncertainString)> = (0..64)
        .map(|_| (gen_string(&mut state), gen_string(&mut state)))
        .collect();
    report.benches.push(run(BENCH_NAMES[2], spec, || {
        for (r, s) in &cdf_pairs {
            black_box(cdf_bounds(r, s, 2));
        }
    }));

    // Meso: posting-list merge + filter funnel against a standing index.
    let strings = gen_collection(&mut state, n);
    let collection = IndexedCollection::build(bench_config(), BENCH_SIGMA, strings.clone());
    let probes: Vec<UncertainString> = (0..32).map(|_| gen_string(&mut state)).collect();
    report.benches.push(run(BENCH_NAMES[3], spec, || {
        for p in &probes {
            black_box(collection.filter_candidates(p));
        }
    }));

    // Meso: the full self-join. Far slower per iteration, so it runs
    // spec.iters / 8 (min 1) — recorded in the report's `iters` field.
    let join_spec = BenchSpec {
        warmup: spec.warmup.min(1),
        iters: (spec.iters / 8).max(1),
    };
    report.benches.push(run(BENCH_NAMES[4], join_spec, || {
        let result = SimilarityJoin::new(bench_config(), BENCH_SIGMA).self_join(&strings);
        black_box(result.pairs.len());
    }));

    // Micro: the dispatched usj-simd kernels in isolation (whatever
    // level the host selected — `USJ_NO_SIMD=1` times the scalar
    // fallbacks). Inputs are generated after the suite above so the
    // earlier benches see the exact same seeded streams as before.
    let pb_rows: Vec<Vec<f64>> = (0..256)
        .map(|_| {
            (0..64)
                .map(|_| (xorshift(&mut state) % 1000) as f64 / 1000.0)
                .collect()
        })
        .collect();
    let mut pb_out = vec![0.0f64; 64];
    report.benches.push(run(BENCH_NAMES[5], spec, || {
        for prev in &pb_rows {
            usj_simd::pb_row_update(prev, &mut pb_out, 0.625, 0.375);
            black_box(pb_out[63]);
        }
    }));

    let cdf_rows: Vec<Vec<f64>> = (0..256)
        .map(|_| {
            (0..5 * 64)
                .map(|_| (xorshift(&mut state) % 1000) as f64 / 1000.0)
                .collect()
        })
        .collect();
    let mut cdf_l = vec![0.0f64; 64];
    let mut cdf_u = vec![0.0f64; 64];
    report.benches.push(run(BENCH_NAMES[6], spec, || {
        for row in &cdf_rows {
            let (d1, rest) = row.split_at(64);
            let (best, rest) = rest.split_at(64);
            let (u1, rest) = rest.split_at(64);
            let (u2, u3) = rest.split_at(64);
            usj_simd::cdf_row_update(0.75, 0.25, d1, best, u1, u2, u3, &mut cdf_l, &mut cdf_u);
            black_box((cdf_l[63], cdf_u[63]));
        }
    }));

    let affix_pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..256)
        .map(|_| {
            let a = gen_bytes(&mut state, 256);
            let mut b = a.clone();
            // One mismatch somewhere in the middle half keeps both the
            // prefix and the suffix scan honest.
            let i = 64 + (xorshift(&mut state) as usize) % 128;
            b[i] = b[i].wrapping_add(1);
            (a, b)
        })
        .collect();
    report.benches.push(run(BENCH_NAMES[7], spec, || {
        for (a, b) in &affix_pairs {
            black_box(usj_simd::common_prefix_len(a, b));
            black_box(usj_simd::common_suffix_len(a, b));
        }
    }));

    let id_lists: Vec<(Vec<u32>, Vec<u32>)> = (0..32)
        .map(|_| {
            let gen_list = |state: &mut u64| {
                let mut cur = 0u64;
                (0..4096)
                    .map(|_| {
                        cur += 1 + xorshift(state) % 4;
                        cur as u32
                    })
                    .collect::<Vec<u32>>()
            };
            (gen_list(&mut state), gen_list(&mut state))
        })
        .collect();
    let mut hits: Vec<(u32, u32)> = Vec::new();
    report.benches.push(run(BENCH_NAMES[8], spec, || {
        for (a, b) in &id_lists {
            hits.clear();
            usj_simd::intersect_sorted_ids(a, b, &mut hits);
            black_box(hits.len());
        }
    }));

    // Meso: the warm-restart decode path — a committed snapshot of the
    // same n-string collection, loaded back through the recovery ladder
    // with every checksum verified (rung Verified). Its median against
    // a cold `IndexedCollection::build` (what `join_end_to_end` pays
    // before probing) is the warm-restart win the serve layer banks on.
    let snap_dir =
        std::env::temp_dir().join(format!("usj-bench-snapshot-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&snap_dir);
    let snap_path = snap_dir.join(format!("{label}.snap"));
    snapshot::write(&snap_path, &collection).expect("bench snapshot commits");
    let snap_config = bench_config();
    report.benches.push(run(BENCH_NAMES[9], spec, || {
        let loaded = snapshot::load(
            &snap_path,
            &snap_config,
            BENCH_SIGMA,
            strings.clone(),
            SalvageMode::Strict,
        )
        .expect("bench snapshot loads");
        black_box(loaded.report.rung);
    }));
    let _ = std::fs::remove_dir_all(&snap_dir);

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_obs::bench::compare_reports;

    fn tiny_suite() -> BenchReport {
        kernel_suite(
            "test",
            16,
            0x5347_4D4F_4421_0006,
            BenchSpec {
                warmup: 0,
                iters: 1,
            },
        )
    }

    #[test]
    fn suite_covers_all_kernels_in_order() {
        let report = tiny_suite();
        let names: Vec<&str> = report.benches.iter().map(|b| b.name.as_str()).collect();
        assert_eq!(names, BENCH_NAMES);
        assert!(report.benches.iter().all(|b| b.median_ns > 0));
    }

    #[test]
    fn report_roundtrips_and_self_compares_clean() {
        let report = tiny_suite();
        let json = report.to_json();
        let back = BenchReport::parse(&json).expect("own JSON parses");
        assert_eq!(back, report);
        let lines = compare_reports(&report, &report, 0.15);
        assert_eq!(lines.len(), BENCH_NAMES.len());
        assert!(lines.iter().all(|l| !l.regressed));
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let mut s1 = 0x1234u64 | 1;
        let mut s2 = 0x1234u64 | 1;
        let a = gen_collection(&mut s1, 10);
        let b = gen_collection(&mut s2, 10);
        assert_eq!(a, b);
    }
}
