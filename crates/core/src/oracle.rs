//! Brute-force reference join, used to validate the real driver in tests
//! and as the honest "no filtering, no indexing" baseline.

use usj_model::UncertainString;
use usj_verify::exact_similarity_prob;

use crate::join::SimilarPair;

/// All pairs `(i, j)`, `i < j`, with `Pr(ed ≤ k) > τ`, computed by joint
/// possible-world enumeration. Exponential in uncertain positions — test
/// and calibration use only.
pub fn oracle_self_join(strings: &[UncertainString], k: usize, tau: f64) -> Vec<SimilarPair> {
    let mut pairs = Vec::new();
    for i in 0..strings.len() {
        for j in i + 1..strings.len() {
            let prob = exact_similarity_prob(&strings[i], &strings[j], k);
            if prob > tau {
                pairs.push(SimilarPair {
                    left: i as u32,
                    right: j as u32,
                    prob,
                });
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_model::Alphabet;

    #[test]
    fn oracle_basics() {
        let dna = Alphabet::dna();
        let strings: Vec<UncertainString> = ["ACGT", "ACGA", "TTTT"]
            .iter()
            .map(|t| UncertainString::parse(t, &dna).unwrap())
            .collect();
        let pairs = oracle_self_join(&strings, 1, 0.5);
        assert_eq!(pairs.len(), 1);
        assert_eq!((pairs[0].left, pairs[0].right), (0, 1));
        assert_eq!(pairs[0].prob, 1.0);
    }
}
