//! Glue between [`JoinStats`] (the flat per-run view) and a
//! [`usj_obs::Recorder`] (the event sink).
//!
//! The drivers never touch `JoinStats` fields directly: every counter,
//! gauge, and phase span goes through a [`Recording`], which applies the
//! event to the stats struct **and** forwards it to the recorder. That
//! makes `JoinStats` a view over the recorded event stream — one source of
//! truth, no way for the sequential and parallel drivers to drift — while
//! a [`usj_obs::NoopRecorder`] monomorphises the forwarding away entirely.

use std::time::{Duration, Instant};

use usj_obs::{Counter, Gauge, Phase, Recorder};

use crate::stats::JoinStats;

/// An open phase span; produced by [`Recording::begin`] and consumed by
/// [`Recording::end`]. Carrying the start instant in a value (instead of
/// recorder state) keeps spans re-entrant: a driver may hold a `Qgram`
/// span while emitting counters, or open many short `Cdf` spans per probe.
#[must_use = "a span only measures time when passed back to Recording::end"]
#[derive(Debug)]
pub struct PhaseSpan {
    phase: Phase,
    start: Instant,
}

/// Applies pipeline events to a [`JoinStats`] and forwards them to a
/// [`Recorder`].
#[derive(Debug)]
pub struct Recording<'a, R: Recorder> {
    stats: &'a mut JoinStats,
    recorder: &'a mut R,
}

impl<'a, R: Recorder> Recording<'a, R> {
    /// Ties `stats` to `recorder` for the duration of a driver run.
    pub fn new(stats: &'a mut JoinStats, recorder: &'a mut R) -> Self {
        Recording { stats, recorder }
    }

    /// Marks the start of one probe's work.
    pub fn probe_start(&mut self, probe_id: u32) {
        self.recorder.probe_start(probe_id);
    }

    /// Marks the end of one probe's work.
    pub fn probe_end(&mut self, probe_id: u32) {
        self.recorder.probe_end(probe_id);
    }

    /// Opens a phase span.
    pub fn begin(&mut self, phase: Phase) -> PhaseSpan {
        self.recorder.enter_phase(phase);
        PhaseSpan {
            phase,
            start: Instant::now(),
        }
    }

    /// Closes a span: adds its elapsed time to the stats' phase slot and
    /// emits `exit_phase`.
    pub fn end(&mut self, span: PhaseSpan) {
        let elapsed = span.start.elapsed();
        self.stats.timings.add(span.phase, elapsed);
        self.recorder.exit_phase(span.phase, elapsed);
    }

    /// Records the run's wall-clock total. Unlike [`Recording::end`] this
    /// *overwrites* `timings.total` — merged stats carry aggregate work
    /// time there ([`JoinStats::absorb`]) which the driver replaces with
    /// the true wall-clock as its final event.
    pub fn set_total(&mut self, elapsed: Duration) {
        self.stats.timings.total = elapsed;
        self.recorder.enter_phase(Phase::Total);
        self.recorder.exit_phase(Phase::Total, elapsed);
    }

    /// Runs `f` inside a `phase` span — [`Recording::begin`]/
    /// [`Recording::end`] without the caller threading the
    /// [`PhaseSpan`] value through its control flow.
    pub fn time<T>(&mut self, phase: Phase, f: impl FnOnce(&mut Self) -> T) -> T {
        let span = self.begin(phase);
        let out = f(self);
        self.end(span);
        out
    }

    /// Increments a counter (a zero `delta` still marks it observed).
    pub fn count(&mut self, counter: Counter, delta: u64) {
        self.stats.apply_counter(counter, delta);
        self.recorder.counter(counter, delta);
    }

    /// Records a gauge measurement.
    pub fn gauge(&mut self, gauge: Gauge, value: u64) {
        self.stats.apply_gauge(gauge, value);
        self.recorder.gauge(gauge, value);
    }

    /// The underlying recorder, for helpers that emit events without
    /// touching `JoinStats` (index internals, verifier builds).
    pub fn recorder(&mut self) -> &mut R {
        self.recorder
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_obs::CollectingRecorder;

    #[test]
    fn events_update_stats_and_recorder_in_lockstep() {
        let mut stats = JoinStats::default();
        let mut sink = CollectingRecorder::new();
        let mut rec = Recording::new(&mut stats, &mut sink);
        rec.probe_start(0);
        let span = rec.begin(Phase::Qgram);
        rec.count(Counter::PairsInScope, 4);
        rec.count(Counter::QgramSurvivors, 2);
        rec.end(span);
        rec.probe_end(0);
        rec.gauge(Gauge::PeakIndexBytes, 512);
        rec.set_total(Duration::from_micros(3));
        assert_eq!(stats.pairs_in_scope, 4);
        assert_eq!(stats.qgram_survivors, 2);
        assert_eq!(stats.peak_index_bytes, 512);
        assert!(stats.timings.qgram > Duration::ZERO);
        assert_eq!(stats.timings.total, Duration::from_micros(3));
        assert_eq!(sink.probes(), 1);
        assert_eq!(sink.counter_total(Counter::PairsInScope), 4);
        assert_eq!(sink.gauge_max(Gauge::PeakIndexBytes), 512);
    }

    #[test]
    fn time_brackets_closure_in_span() {
        let mut stats = JoinStats::default();
        let mut sink = CollectingRecorder::new();
        let mut rec = Recording::new(&mut stats, &mut sink);
        let out = rec.time(Phase::Freq, |rec| {
            rec.count(Counter::FreqSurvivors, 3);
            42
        });
        assert_eq!(out, 42);
        assert_eq!(stats.freq_survivors, 3);
        assert!(stats.timings.freq > Duration::ZERO);
        assert_eq!(sink.phase_histogram(Phase::Freq).count(), 1);
    }

    #[test]
    fn set_total_overwrites_merged_totals() {
        let mut stats = JoinStats::default();
        stats.timings.total = Duration::from_secs(99); // aggregate work time
        let mut sink = usj_obs::NoopRecorder;
        let mut rec = Recording::new(&mut stats, &mut sink);
        rec.set_total(Duration::from_millis(5));
        assert_eq!(stats.timings.total, Duration::from_millis(5));
    }
}
