//! The self-join driver (paper §4's query algorithm).

use std::collections::BTreeMap;
use std::time::Instant;

use crate::config::JoinConfig;
use crate::index::{EquivCache, SegmentIndex};
use crate::parallel::JoinError;
use crate::record::Recording;
use crate::stats::JoinStats;
use crate::verifier::{decide_candidate, ProbeVerifier};
use usj_cdf::CdfFilter;
use usj_freq::{FreqFilter, FreqProfile};
use usj_model::{Prob, UncertainString};
use usj_obs::{Counter, Gauge, NoopRecorder, Phase, Recorder};

/// One reported pair: `Pr(ed(strings[left], strings[right]) ≤ k) > τ`.
///
/// `left < right` always (indices into the input slice).
#[derive(Debug, Clone, PartialEq)]
pub struct SimilarPair {
    /// Smaller index of the pair.
    pub left: u32,
    /// Larger index of the pair.
    pub right: u32,
    /// Best known lower bound on the pair's similarity probability; the
    /// exact probability when the configuration disables early
    /// termination ([`JoinConfig::with_early_stop`]`(false)`). Always
    /// `> τ`.
    pub prob: Prob,
}

/// Join output: the similar pairs plus per-phase statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinResult {
    /// All similar pairs, sorted by `(left, right)`.
    pub pairs: Vec<SimilarPair>,
    /// Counters and timings.
    pub stats: JoinStats,
}

/// Similarity self-join over a collection of uncertain strings.
///
/// See the crate docs for the algorithm; construction is cheap, all work
/// happens in [`SimilarityJoin::self_join`].
#[derive(Debug, Clone)]
pub struct SimilarityJoin {
    config: JoinConfig,
    sigma: usize,
}

impl SimilarityJoin {
    /// Creates a join runner for an alphabet of `sigma` symbols.
    pub fn new(config: JoinConfig, sigma: usize) -> Self {
        assert!(sigma >= 1, "alphabet must be non-empty");
        SimilarityJoin { config, sigma }
    }

    /// The configuration in use.
    pub fn config(&self) -> &JoinConfig {
        &self.config
    }

    /// Cross-collection join: all pairs `(i, j)` with
    /// `Pr(ed(left[i], right[j]) ≤ k) > τ`.
    ///
    /// The paper defines the join over `R × S` but evaluates only the
    /// self-join; this is the natural generalisation — the right
    /// collection is indexed once and every left string probes it.
    /// `SimilarPair::left` indexes into `left`, `SimilarPair::right` into
    /// `right`.
    pub fn join(&self, left: &[UncertainString], right: &[UncertainString]) -> JoinResult {
        self.join_recorded(left, right, &mut NoopRecorder)
    }

    /// [`SimilarityJoin::join`] with every pipeline event forwarded to
    /// `recorder` (probe boundaries per left string, phase spans,
    /// counters, gauges).
    pub fn join_recorded<R: Recorder>(
        &self,
        left: &[UncertainString],
        right: &[UncertainString],
        recorder: &mut R,
    ) -> JoinResult {
        let total_start = Instant::now();
        let collection = crate::collection::IndexedCollection::build_recorded(
            self.config.clone(),
            self.sigma,
            right.to_vec(),
            &mut *recorder,
        );
        let mut pairs = Vec::new();
        let mut stats = JoinStats {
            num_strings: left.len() + right.len(),
            ..Default::default()
        };
        for (i, probe) in left.iter().enumerate() {
            let (hits, probe_stats) =
                collection.search_filtered_recorded(i as u32, probe, |_| true, &mut *recorder);
            for hit in hits {
                pairs.push(SimilarPair {
                    left: i as u32,
                    right: hit.id,
                    prob: hit.prob,
                });
            }
            stats.absorb(&probe_stats);
        }
        pairs.sort_unstable_by_key(|p| (p.left, p.right));
        // The recorder already saw one OutputPairs event per probe (their
        // sum is exactly this count); only the stats view needs the
        // authoritative value.
        stats.output_pairs = pairs.len() as u64;
        let mut rec = Recording::new(&mut stats, recorder);
        rec.gauge(Gauge::IndexBytes, collection.index_bytes() as u64);
        rec.gauge(Gauge::PeakIndexBytes, collection.index_bytes() as u64);
        rec.gauge(Gauge::NumStrings, (left.len() + right.len()) as u64);
        rec.set_total(total_start.elapsed());
        JoinResult { pairs, stats }
    }

    /// Finds all pairs `(i, j)`, `i < j`, with
    /// `Pr(ed(strings[i], strings[j]) ≤ k) > τ`.
    pub fn self_join(&self, strings: &[UncertainString]) -> JoinResult {
        self.self_join_recorded(strings, &mut NoopRecorder)
    }

    /// [`SimilarityJoin::self_join`] with every pipeline event forwarded
    /// to `recorder`: one probe bracket per string (in visit order), phase
    /// spans for q-gram/frequency/CDF/verify/index work, prune-attribution
    /// counters, and index-memory gauges. The returned
    /// [`JoinResult::stats`] is a view over the same event stream.
    ///
    /// This classic API has no error channel, so it ignores any
    /// configured [`JoinConfig::deadline`] (mirroring
    /// [`crate::parallel::par_self_join`]); use
    /// [`SimilarityJoin::try_self_join_recorded`] to have the deadline
    /// enforced.
    pub fn self_join_recorded<R: Recorder>(
        &self,
        strings: &[UncertainString],
        recorder: &mut R,
    ) -> JoinResult {
        match self.self_join_impl(strings, recorder, false) {
            Ok(result) => result,
            // With deadline enforcement off the impl cannot fail.
            Err(e) => unreachable!("undeadlined sequential join failed: {e}"),
        }
    }

    /// [`SimilarityJoin::self_join`] with [`JoinConfig::deadline`]
    /// enforced: the wall clock is checked between probes and the run
    /// aborts with [`JoinError::Deadline`] once it expires. The
    /// sequential driver has no waves or checkpoints, so the error
    /// reports `completed_waves: 0` and no checkpoint path — the same
    /// shape [`crate::parallel::par_self_join_ft`] produces when the
    /// deadline hits before any wave commits.
    pub fn try_self_join(&self, strings: &[UncertainString]) -> Result<JoinResult, JoinError> {
        self.try_self_join_recorded(strings, &mut NoopRecorder)
    }

    /// [`SimilarityJoin::try_self_join`] with recorded events, combining
    /// deadline enforcement with the instrumentation of
    /// [`SimilarityJoin::self_join_recorded`].
    pub fn try_self_join_recorded<R: Recorder>(
        &self,
        strings: &[UncertainString],
        recorder: &mut R,
    ) -> Result<JoinResult, JoinError> {
        self.self_join_impl(strings, recorder, true)
    }

    fn self_join_impl<R: Recorder>(
        &self,
        strings: &[UncertainString],
        recorder: &mut R,
        enforce_deadline: bool,
    ) -> Result<JoinResult, JoinError> {
        let config = &self.config;
        let total_start = Instant::now();
        let mut stats = JoinStats {
            num_strings: strings.len(),
            ..Default::default()
        };
        let mut rec = Recording::new(&mut stats, recorder);

        // Visit order: ascending length, ties by id — guarantees that all
        // visited strings are no longer than the probe and that posting
        // ids ascend.
        let mut order: Vec<u32> = (0..strings.len() as u32).collect();
        order.sort_by_key(|&i| (strings[i as usize].len(), i));

        let freq_filter = FreqFilter::new(config.k, config.tau, self.sigma);
        let cdf_filter = CdfFilter::new(config.k, config.tau);

        let mut index = SegmentIndex::new();
        // Visited ids grouped by length (candidate pool for FCT and the
        // scope counter).
        let mut visited: BTreeMap<usize, Vec<u32>> = BTreeMap::new();
        // Frequency profiles, computed once per string at insert time.
        let mut profiles: Vec<Option<FreqProfile>> = vec![None; strings.len()];

        let mut pairs: Vec<SimilarPair> = Vec::new();
        let deadline = if enforce_deadline {
            config.deadline
        } else {
            None
        };

        for &probe_id in &order {
            // Cooperative deadline: checked between probes, so one probe
            // is the abort granularity (as one batch is for the
            // fault-tolerant parallel driver). No partial result leaks:
            // the whole join errors out.
            if let Some(limit) = deadline {
                let elapsed = total_start.elapsed();
                if elapsed >= limit {
                    return Err(JoinError::Deadline {
                        elapsed,
                        completed_waves: 0,
                        checkpoint: None,
                    });
                }
            }
            let probe = &strings[probe_id as usize];
            let min_len = probe.len().saturating_sub(config.k);
            rec.probe_start(probe_id);

            // Expire index state for lengths the scan has moved past.
            if config.pipeline.uses_qgram() {
                index.evict_below(min_len);
            }
            while let Some((&len, _)) = visited.first_key_value() {
                if len < min_len {
                    visited.pop_first();
                } else {
                    break;
                }
            }

            // ---- Candidate generation -------------------------------
            let qgram_span = rec.begin(Phase::Qgram);
            let mut candidates: Vec<u32> = Vec::new();
            let mut scope = 0u64;
            if config.pipeline.uses_qgram() {
                // One equivalent-set cache per probe: lengths with shared
                // (window, segment length) combinations reuse `q(r, x)`.
                let mut cache = EquivCache::new();
                for len in min_len..=probe.len() {
                    scope += index.collect_candidates_recorded(
                        probe,
                        len,
                        config,
                        None,
                        &mut cache,
                        &mut candidates,
                        &mut rec,
                    );
                }
            } else {
                for (_, ids) in visited.range(min_len..=probe.len()) {
                    scope += ids.len() as u64;
                    candidates.extend(ids.iter().copied());
                }
            }
            rec.count(Counter::PairsInScope, scope);
            rec.count(Counter::QgramSurvivors, candidates.len() as u64);
            rec.end(qgram_span);
            // Deterministic candidate order keeps runs reproducible.
            candidates.sort_unstable();

            // ---- Frequency-distance filtering -----------------------
            let mut probe_profile: Option<FreqProfile> = None;
            if config.pipeline.uses_freq() && !candidates.is_empty() {
                let freq_span = rec.begin(Phase::Freq);
                let rp = probe_profile.get_or_insert_with(|| freq_filter.profile(probe));
                candidates.retain(|&id| {
                    let sp = profiles[id as usize]
                        .as_ref()
                        .expect("visited strings have profiles");
                    let out = freq_filter.evaluate(rp, sp);
                    if !out.candidate {
                        if out.fd_lower as usize > config.k {
                            rec.count(Counter::FreqPrunedLower, 1);
                        } else {
                            rec.count(Counter::FreqPrunedChebyshev, 1);
                        }
                    }
                    out.candidate
                });
                rec.end(freq_span);
            }
            rec.count(Counter::FreqSurvivors, candidates.len() as u64);

            // ---- CDF bounds + verification --------------------------
            let mut verifier: Option<ProbeVerifier> = None; // lazily built
            for id in candidates {
                let other = &strings[id as usize];
                let Some((similar, prob)) =
                    decide_candidate(probe, other, &cdf_filter, &mut verifier, config, &mut rec)
                else {
                    continue;
                };
                if similar {
                    pairs.push(SimilarPair {
                        left: probe_id.min(id),
                        right: probe_id.max(id),
                        prob,
                    });
                }
            }

            // ---- Insert the probe for later probes ------------------
            let index_span = rec.begin(Phase::Index);
            if config.pipeline.uses_qgram() {
                index.insert_recorded(probe_id, probe, config, rec.recorder());
            }
            if config.pipeline.uses_freq() {
                profiles[probe_id as usize] =
                    Some(probe_profile.unwrap_or_else(|| freq_filter.profile(probe)));
            }
            visited.entry(probe.len()).or_default().push(probe_id);
            rec.end(index_span);
            rec.probe_end(probe_id);
        }

        pairs.sort_unstable_by_key(|p| (p.left, p.right));
        rec.count(Counter::OutputPairs, pairs.len() as u64);
        rec.gauge(Gauge::IndexBytes, index.estimated_bytes() as u64);
        rec.gauge(Gauge::PeakIndexBytes, index.peak_bytes() as u64);
        rec.gauge(Gauge::NumStrings, strings.len() as u64);
        rec.set_total(total_start.elapsed());
        Ok(JoinResult { pairs, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Pipeline;
    use usj_model::Alphabet;

    fn dna(text: &str) -> UncertainString {
        UncertainString::parse(text, &Alphabet::dna()).unwrap()
    }

    fn collection() -> Vec<UncertainString> {
        vec![
            dna("ACGTACGT"),
            dna("ACG{(T,0.9),(G,0.1)}ACGT"),
            dna("TTTTTTTT"),
            dna("ACGTACG"),
            dna("{(A,0.6),(C,0.4)}CGTACGT"),
            dna("GGGGGGGG"),
        ]
    }

    fn pair_set(result: &JoinResult) -> Vec<(u32, u32)> {
        result.pairs.iter().map(|p| (p.left, p.right)).collect()
    }

    #[test]
    fn self_join_finds_expected_pairs() {
        let join = SimilarityJoin::new(JoinConfig::new(2, 0.5), 4);
        let result = join.self_join(&collection());
        let pairs = pair_set(&result);
        assert!(pairs.contains(&(0, 1)), "{pairs:?}");
        assert!(pairs.contains(&(0, 3)), "{pairs:?}");
        assert!(pairs.contains(&(0, 4)), "{pairs:?}");
        assert!(!pairs
            .iter()
            .any(|&(a, b)| a == 2 || b == 2 || a == 5 && b == 5));
        // Every pair is ordered and above threshold.
        for p in &result.pairs {
            assert!(p.left < p.right);
            assert!(p.prob > 0.5);
        }
    }

    #[test]
    fn all_pipelines_agree() {
        let strings = collection();
        let mut results = Vec::new();
        for pipeline in Pipeline::all() {
            let config = JoinConfig::new(2, 0.3).with_pipeline(pipeline);
            let result = SimilarityJoin::new(config, 4).self_join(&strings);
            results.push((pipeline, pair_set(&result)));
        }
        for window in results.windows(2) {
            assert_eq!(
                window[0].1, window[1].1,
                "{:?} vs {:?}",
                window[0].0, window[1].0
            );
        }
    }

    #[test]
    fn matches_oracle_exactly() {
        let strings = collection();
        let expected = crate::oracle::oracle_self_join(&strings, 2, 0.3);
        for pipeline in Pipeline::all() {
            let config = JoinConfig::new(2, 0.3)
                .with_pipeline(pipeline)
                .with_early_stop(false);
            let result = SimilarityJoin::new(config, 4).self_join(&strings);
            let got = pair_set(&result);
            let want: Vec<(u32, u32)> = expected.iter().map(|p| (p.left, p.right)).collect();
            assert_eq!(got, want, "{pipeline:?}");
            // Exact-probability mode: probabilities match the oracle.
            for (g, w) in result.pairs.iter().zip(&expected) {
                assert!(
                    (g.prob - w.prob).abs() < 1e-9,
                    "{pipeline:?}: {g:?} vs {w:?}"
                );
            }
        }
    }

    #[test]
    fn all_verifiers_agree() {
        use crate::config::VerifierKind;
        let strings = collection();
        let reference = SimilarityJoin::new(JoinConfig::new(2, 0.3), 4).self_join(&strings);
        for kind in [
            VerifierKind::LazyTrie,
            VerifierKind::Trie,
            VerifierKind::Naive,
        ] {
            let result = SimilarityJoin::new(JoinConfig::new(2, 0.3).with_verifier(kind), 4)
                .self_join(&strings);
            assert_eq!(pair_set(&reference), pair_set(&result), "{kind:?}");
        }
    }

    #[test]
    fn empty_and_tiny_collections() {
        let join = SimilarityJoin::new(JoinConfig::new(1, 0.1), 4);
        assert!(join.self_join(&[]).pairs.is_empty());
        assert!(join.self_join(&[dna("ACGT")]).pairs.is_empty());
        let two = join.self_join(&[dna("ACGT"), dna("ACGT")]);
        assert_eq!(pair_set(&two), vec![(0, 1)]);
    }

    #[test]
    fn stats_are_consistent() {
        let strings = collection();
        let result = SimilarityJoin::new(JoinConfig::new(2, 0.3), 4).self_join(&strings);
        let s = &result.stats;
        assert_eq!(s.num_strings, 6);
        assert_eq!(s.output_pairs, result.pairs.len() as u64);
        assert!(s.qgram_survivors <= s.pairs_in_scope);
        assert!(s.freq_survivors <= s.qgram_survivors);
        assert_eq!(
            s.freq_survivors,
            s.cdf_accepted + s.cdf_rejected + s.cdf_undecided
        );
        assert_eq!(s.verified_pairs(), s.cdf_undecided);
        assert!(s.peak_index_bytes >= s.index_bytes || s.index_bytes == 0);
    }

    /// The recorded driver must leave the output untouched (NoopRecorder
    /// and CollectingRecorder runs are interchangeable) and the collected
    /// event stream must mirror every `JoinStats` counter exactly —
    /// `JoinStats` is a view over the events, so any divergence here is a
    /// double-count or a dropped event.
    #[test]
    fn recorded_self_join_mirrors_stats() {
        use usj_obs::{CollectingRecorder, Counter, Gauge, Phase};
        let strings = collection();
        // Exact-probability mode so CDF-accepted pairs reach the verifier
        // (guarantees VerifierBuilds fires on this small collection).
        let join = SimilarityJoin::new(JoinConfig::new(2, 0.3).with_early_stop(false), 4);
        let plain = join.self_join(&strings);
        let mut sink = CollectingRecorder::new();
        let recorded = join.self_join_recorded(&strings, &mut sink);
        assert_eq!(pair_set(&plain), pair_set(&recorded));
        let s = &recorded.stats;
        for (counter, field) in [
            (Counter::PairsInScope, s.pairs_in_scope),
            (Counter::QgramSurvivors, s.qgram_survivors),
            (Counter::QgramPrunedCount, s.qgram_pruned_count),
            (Counter::QgramPrunedBound, s.qgram_pruned_bound),
            (Counter::FreqSurvivors, s.freq_survivors),
            (Counter::FreqPrunedLower, s.freq_pruned_lower),
            (Counter::FreqPrunedChebyshev, s.freq_pruned_chebyshev),
            (Counter::CdfAccepted, s.cdf_accepted),
            (Counter::CdfRejected, s.cdf_rejected),
            (Counter::CdfUndecided, s.cdf_undecided),
            (Counter::VerifiedSimilar, s.verified_similar),
            (Counter::VerifiedDissimilar, s.verified_dissimilar),
            (Counter::OutputPairs, s.output_pairs),
        ] {
            assert_eq!(sink.counter_total(counter), field, "{counter:?}");
        }
        assert_eq!(sink.probes(), strings.len() as u64);
        assert_eq!(sink.gauge_max(Gauge::NumStrings), strings.len() as u64);
        assert_eq!(
            sink.gauge_max(Gauge::PeakIndexBytes),
            s.peak_index_bytes as u64
        );
        // One insertion event per (non-empty) string, every probe sampled
        // a qgram phase, and at least one probe built a verifier.
        assert_eq!(
            sink.counter_total(Counter::IndexInsertions),
            strings.len() as u64
        );
        assert_eq!(
            sink.phase_histogram(Phase::Qgram).count(),
            strings.len() as u64
        );
        assert!(sink.counter_total(Counter::VerifierBuilds) >= 1);
        assert!(sink.counter_total(Counter::IndexPostingsScanned) > 0);
    }

    /// The paper's pruning funnel is monotone: each stage only ever
    /// narrows the candidate pool, and everything the CDF bounds leave
    /// undecided is verified exactly once.
    #[test]
    fn stats_invariants_hold_across_configs() {
        let strings = collection();
        for pipeline in Pipeline::all() {
            for early_stop in [true, false] {
                let config = JoinConfig::new(2, 0.3)
                    .with_pipeline(pipeline)
                    .with_early_stop(early_stop);
                let s = SimilarityJoin::new(config, 4).self_join(&strings).stats;
                assert!(s.pairs_in_scope >= s.qgram_survivors, "{pipeline:?}");
                assert!(s.qgram_survivors >= s.freq_survivors, "{pipeline:?}");
                assert!(
                    s.freq_survivors >= s.cdf_accepted + s.cdf_rejected + s.cdf_undecided,
                    "{pipeline:?}"
                );
                // With early stop, exactly the undecided pairs are
                // verified; exact-probability mode verifies CDF-accepted
                // pairs as well.
                let expect_verified = if early_stop {
                    s.cdf_undecided
                } else {
                    s.cdf_undecided + s.cdf_accepted
                };
                assert_eq!(
                    expect_verified,
                    s.verified_similar + s.verified_dissimilar,
                    "{pipeline:?} early_stop={early_stop}"
                );
                assert_eq!(
                    s.pairs_in_scope,
                    s.qgram_survivors + s.qgram_pruned_count + s.qgram_pruned_bound,
                    "{pipeline:?}"
                );
                assert_eq!(
                    s.qgram_survivors,
                    s.freq_survivors + s.freq_pruned_lower + s.freq_pruned_chebyshev,
                    "{pipeline:?}"
                );
            }
        }
    }

    #[test]
    fn cross_join_matches_oracle() {
        let left = vec![
            dna("ACGTACGT"),
            dna("TTTTTTTT"),
            dna("ACG{(T,0.7),(A,0.3)}ACGT"),
        ];
        let right = collection();
        let join = SimilarityJoin::new(JoinConfig::new(2, 0.3).with_early_stop(false), 4);
        let result = join.join(&left, &right);
        // Oracle: exhaustive pairwise check.
        let mut expected = Vec::new();
        for (i, l) in left.iter().enumerate() {
            for (j, r) in right.iter().enumerate() {
                let p = usj_verify::exact_similarity_prob(l, r, 2);
                if p > 0.3 {
                    expected.push((i as u32, j as u32));
                }
            }
        }
        let got: Vec<(u32, u32)> = result.pairs.iter().map(|p| (p.left, p.right)).collect();
        assert_eq!(got, expected);
        // Cross-join pairs are positions, not ordered ids: (l, r) indexes
        // the two inputs independently.
        assert!(result.pairs.iter().any(|p| p.left == 0 && p.right == 0));
        assert_eq!(result.stats.output_pairs, result.pairs.len() as u64);
    }

    #[test]
    fn cross_join_empty_sides() {
        let join = SimilarityJoin::new(JoinConfig::new(1, 0.1), 4);
        assert!(join.join(&[], &collection()).pairs.is_empty());
        assert!(join.join(&collection(), &[]).pairs.is_empty());
    }

    #[test]
    fn duplicate_strings_all_pair_up() {
        let strings = vec![dna("ACGTAC"); 4];
        let result = SimilarityJoin::new(JoinConfig::new(1, 0.5), 4).self_join(&strings);
        // C(4,2) = 6 pairs.
        assert_eq!(result.pairs.len(), 6);
    }

    #[test]
    fn try_self_join_enforces_deadline_between_probes() {
        let config = JoinConfig::new(2, 0.3).with_deadline(Some(std::time::Duration::ZERO));
        let join = SimilarityJoin::new(config, 4);
        match join.try_self_join(&collection()) {
            Err(JoinError::Deadline {
                completed_waves,
                checkpoint,
                ..
            }) => {
                assert_eq!(completed_waves, 0);
                assert!(checkpoint.is_none());
            }
            other => panic!("expected Deadline error, got {other:?}"),
        }
    }

    #[test]
    fn try_self_join_without_deadline_matches_classic_driver() {
        let strings = collection();
        let join = SimilarityJoin::new(JoinConfig::new(2, 0.3), 4);
        let classic = join.self_join(&strings);
        let tried = join.try_self_join(&strings).expect("no deadline configured");
        assert_eq!(classic.pairs, tried.pairs);
    }

    #[test]
    fn classic_driver_ignores_deadline() {
        // The panicking API has no error channel; a configured deadline
        // must not change its output.
        let config = JoinConfig::new(2, 0.3).with_deadline(Some(std::time::Duration::ZERO));
        let strings = collection();
        let with_deadline = SimilarityJoin::new(config, 4).self_join(&strings);
        let without = SimilarityJoin::new(JoinConfig::new(2, 0.3), 4).self_join(&strings);
        assert_eq!(with_deadline.pairs, without.pairs);
    }
}
