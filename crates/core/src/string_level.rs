//! Similarity self-join for the **string-level** uncertainty model.
//!
//! In the string-level model (paper §1) every possible instance is listed
//! explicitly, so a pair's exact similarity probability is a finite sum —
//! no possible-world explosion. What remains expensive is the *quadratic
//! candidate space*, which the same Pass-Join machinery prunes: each
//! alternative of every collection string is partitioned into
//! `m = max(k+1, ⌊len/q⌋)` segments whose instances feed an inverted
//! index; a probe alternative only matches a candidate if it contains a
//! window equal to one of the candidate's segment instances at a
//! position-aware offset (Lemma 1 applied per alternative pair — sound
//! because a similar pair must have *some* alternative pair within `k`).
//!
//! Surviving pairs are verified exactly with early accept/reject on the
//! accumulated probability mass.

use std::collections::{HashMap, HashSet};

use usj_editdist::edit_distance_bounded;
use usj_model::{Prob, StringLevelUncertain, Symbol};
use usj_qgram::{partition, window_range, SelectionPolicy};

use crate::join::SimilarPair;

/// Configuration for the string-level join.
#[derive(Debug, Clone)]
pub struct StringLevelJoin {
    /// Edit-distance threshold.
    pub k: usize,
    /// Probability threshold: report pairs with `Pr(ed ≤ k) > τ`.
    pub tau: f64,
    /// q-gram length for the candidate index.
    pub q: usize,
    /// Window-selection policy.
    pub policy: SelectionPolicy,
}

/// Statistics of one string-level join run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StringLevelStats {
    /// Length-compatible pairs considered.
    pub pairs_in_scope: u64,
    /// Pairs surfaced by the segment index (candidates).
    pub candidates: u64,
    /// Candidates verified similar.
    pub similar: u64,
}

impl StringLevelJoin {
    /// Creates the join with the given thresholds (`q = 3` default-ish is
    /// up to the caller).
    pub fn new(k: usize, tau: f64, q: usize) -> StringLevelJoin {
        assert!((0.0..=1.0).contains(&tau), "tau must lie in [0, 1]");
        assert!(q >= 1, "q must be at least 1");
        StringLevelJoin {
            k,
            tau,
            q,
            policy: SelectionPolicy::default(),
        }
    }

    /// All pairs `(i, j)`, `i < j`, with `Pr(ed ≤ k) > τ`.
    pub fn self_join(
        &self,
        strings: &[StringLevelUncertain],
    ) -> (Vec<SimilarPair>, StringLevelStats) {
        let mut stats = StringLevelStats::default();
        // Inverted index over (alt_len, segment_idx, instance) → string ids
        // of *visited* strings, deduplicated.
        let mut index: HashMap<(usize, usize, Vec<Symbol>), Vec<u32>> = HashMap::new();
        // Lengths present among visited alternatives (for scope counting).
        let mut visited_lens: HashMap<usize, HashSet<u32>> = HashMap::new();
        let mut pairs = Vec::new();

        for (probe_id, probe) in strings.iter().enumerate() {
            // ---- candidate generation over all probe alternatives ----
            let mut candidates: HashSet<u32> = HashSet::new();
            let mut scope: HashSet<u32> = HashSet::new();
            for (r, _) in probe.alternatives() {
                for len in r.len().saturating_sub(self.k)..=r.len() + self.k {
                    if let Some(ids) = visited_lens.get(&len) {
                        scope.extend(ids.iter().copied());
                    }
                    let segments = partition(len, self.q, self.k);
                    // Lemma 1 needs m−k matches; with m ≤ k no pruning is
                    // possible, so every visited id of this length is a
                    // candidate.
                    if segments.len() <= self.k {
                        if let Some(ids) = visited_lens.get(&len) {
                            candidates.extend(ids.iter().copied());
                        }
                        continue;
                    }
                    for (x, seg) in segments.iter().enumerate() {
                        let Some((lo, hi)) = window_range(self.policy, r.len(), len, self.k, seg)
                        else {
                            continue;
                        };
                        for start in lo..=hi {
                            if let Some(ids) =
                                index.get(&(len, x, r[start..start + seg.len].to_vec()))
                            {
                                candidates.extend(ids.iter().copied());
                            }
                        }
                    }
                }
            }
            stats.pairs_in_scope += scope.len() as u64;
            stats.candidates += candidates.len() as u64;

            // ---- exact verification ------------------------------------
            let mut sorted: Vec<u32> = candidates.into_iter().collect();
            sorted.sort_unstable();
            for id in sorted {
                let other = &strings[id as usize];
                if let Some(prob) = self.verify(probe, other) {
                    stats.similar += 1;
                    pairs.push(SimilarPair {
                        left: id.min(probe_id as u32),
                        right: id.max(probe_id as u32),
                        prob,
                    });
                }
            }

            // ---- insert probe ------------------------------------------
            for (r, _) in probe.alternatives() {
                visited_lens
                    .entry(r.len())
                    .or_default()
                    .insert(probe_id as u32);
                for (x, seg) in partition(r.len(), self.q, self.k).iter().enumerate() {
                    let key = (r.len(), x, r[seg.start..seg.end()].to_vec());
                    let ids = index.entry(key).or_default();
                    if ids.last() != Some(&(probe_id as u32)) {
                        ids.push(probe_id as u32);
                    }
                }
            }
        }
        pairs.sort_unstable_by_key(|p| (p.left, p.right));
        (pairs, stats)
    }

    /// Exact verification with early accept/reject; returns the
    /// accumulated probability when similar.
    fn verify(&self, r: &StringLevelUncertain, s: &StringLevelUncertain) -> Option<Prob> {
        let mut acc = 0.0;
        let mut processed = 0.0;
        for (ri, p) in r.alternatives() {
            for (sj, q) in s.alternatives() {
                let joint = p * q;
                processed += joint;
                if ri.len().abs_diff(sj.len()) <= self.k
                    && edit_distance_bounded(ri, sj, self.k).is_some()
                {
                    acc += joint;
                    if acc > self.tau {
                        return Some(acc);
                    }
                }
                if acc + (1.0 - processed).max(0.0) <= self.tau {
                    return None;
                }
            }
        }
        (acc > self.tau).then_some(acc)
    }
}

/// Brute-force oracle for tests.
pub fn string_level_oracle(
    strings: &[StringLevelUncertain],
    k: usize,
    tau: f64,
) -> Vec<SimilarPair> {
    let mut pairs = Vec::new();
    for i in 0..strings.len() {
        for j in (i + 1)..strings.len() {
            let prob = strings[i].similarity_prob(&strings[j], k);
            if prob > tau {
                pairs.push(SimilarPair {
                    left: i as u32,
                    right: j as u32,
                    prob,
                });
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_model::Alphabet;

    fn enc(t: &str) -> Vec<Symbol> {
        Alphabet::dna().encode(t).unwrap()
    }

    fn sl(alts: &[(&str, f64)]) -> StringLevelUncertain {
        StringLevelUncertain::new(alts.iter().map(|&(t, p)| (enc(t), p)).collect()).unwrap()
    }

    fn collection() -> Vec<StringLevelUncertain> {
        vec![
            sl(&[("ACGTACGT", 1.0)]),
            sl(&[("ACGTACGA", 0.7), ("ACGTACG", 0.3)]),
            sl(&[("TTTTTTTT", 0.9), ("GGGGGGGG", 0.1)]),
            sl(&[("ACGAACGT", 0.5), ("ACGTAGGT", 0.5)]),
            sl(&[("CCCCCCCC", 1.0)]),
        ]
    }

    #[test]
    fn join_matches_oracle() {
        let strings = collection();
        for k in 1..=2usize {
            for tau in [0.05, 0.2, 0.45, 0.8] {
                let join = StringLevelJoin::new(k, tau, 3);
                let (pairs, stats) = join.self_join(&strings);
                let expected = string_level_oracle(&strings, k, tau);
                let got: Vec<_> = pairs.iter().map(|p| (p.left, p.right)).collect();
                let want: Vec<_> = expected.iter().map(|p| (p.left, p.right)).collect();
                assert_eq!(got, want, "k={k} tau={tau}");
                assert!(stats.candidates <= stats.pairs_in_scope + strings.len() as u64);
            }
        }
    }

    #[test]
    fn mixed_length_alternatives_join() {
        // Alternatives of different lengths within one string.
        let strings = vec![
            sl(&[("ACGT", 0.5), ("ACGTA", 0.5)]),
            sl(&[("ACGTAA", 1.0)]),
            sl(&[("TT", 1.0)]),
        ];
        let join = StringLevelJoin::new(2, 0.4, 2);
        let (pairs, _) = join.self_join(&strings);
        let got: Vec<_> = pairs.iter().map(|p| (p.left, p.right)).collect();
        let want: Vec<_> = string_level_oracle(&strings, 2, 0.4)
            .iter()
            .map(|p| (p.left, p.right))
            .collect();
        assert_eq!(got, want);
        assert!(got.contains(&(0, 1)));
    }

    #[test]
    fn empty_and_single() {
        let join = StringLevelJoin::new(1, 0.1, 3);
        assert!(join.self_join(&[]).0.is_empty());
        assert!(join.self_join(&[sl(&[("ACGT", 1.0)])]).0.is_empty());
    }

    #[test]
    fn reported_probability_exceeds_tau() {
        let strings = collection();
        let (pairs, _) = StringLevelJoin::new(2, 0.25, 3).self_join(&strings);
        for p in &pairs {
            assert!(p.prob > 0.25);
        }
    }
}
