//! Per-phase statistics collected while answering a join query.
//!
//! The paper's figures plot exactly these quantities: candidates surviving
//! each filter (Fig 2, Fig 5), per-phase filtering time vs total time
//! (Fig 2, Fig 3), verification time (Fig 8), and peak index memory
//! (Fig 7).

use std::time::Duration;

/// Wall-clock time spent in each phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Building/querying the segment inverted indices + Theorem 2 bound.
    pub qgram: Duration,
    /// Frequency-distance filtering (profiles + Lemma 6 + Theorem 3).
    pub freq: Duration,
    /// CDF-bound DP.
    pub cdf: Duration,
    /// Exact verification.
    pub verify: Duration,
    /// Inserting probes into the index (part of filtering overhead).
    pub index: Duration,
    /// Whole join.
    pub total: Duration,
}

impl PhaseTimings {
    /// Total filtering time (everything except verification).
    pub fn filtering(&self) -> Duration {
        self.qgram + self.freq + self.cdf + self.index
    }
}

/// Counters and timings for one join (or search) run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JoinStats {
    /// Strings in the collection.
    pub num_strings: usize,
    /// Length-compatible pairs the join had to consider at all
    /// (`Σ_R |{S visited : ||R|−|S|| ≤ k}|`); the FCT candidate pool.
    pub pairs_in_scope: u64,
    /// Pairs surviving q-gram filtering (Lemma 5 count condition and
    /// Theorem 2 bound); equals `pairs_in_scope` when q-grams are off.
    pub qgram_survivors: u64,
    /// Pairs pruned by the Lemma 5 count condition (insufficient matching
    /// segments / never surfaced by the index).
    pub qgram_pruned_count: u64,
    /// Pairs pruned by the Theorem 2 probabilistic upper bound.
    pub qgram_pruned_bound: u64,
    /// Pairs surviving frequency-distance filtering.
    pub freq_survivors: u64,
    /// Pairs pruned by Lemma 6 (fd lower bound > k).
    pub freq_pruned_lower: u64,
    /// Pairs pruned by Theorem 3 (Chebyshev bound ≤ τ).
    pub freq_pruned_chebyshev: u64,
    /// Pairs accepted outright by the CDF lower bound (no verification).
    pub cdf_accepted: u64,
    /// Pairs rejected by the CDF upper bound.
    pub cdf_rejected: u64,
    /// Pairs left undecided by the CDF bounds (sent to verification).
    pub cdf_undecided: u64,
    /// Verified pairs found similar.
    pub verified_similar: u64,
    /// Verified pairs found dissimilar (the verification false-positive
    /// count the paper tracks in §7.2).
    pub verified_dissimilar: u64,
    /// Total output pairs.
    pub output_pairs: u64,
    /// Estimated current index size in bytes at the end of the run.
    pub index_bytes: usize,
    /// Peak estimated index size (the paper's Fig 7 memory metric; expired
    /// lengths are dropped as the scan advances).
    pub peak_index_bytes: usize,
    /// Wall-clock breakdown.
    pub timings: PhaseTimings,
}

impl JoinStats {
    /// Candidates that reached exact verification.
    pub fn verified_pairs(&self) -> u64 {
        self.verified_similar + self.verified_dissimilar
    }

    /// Accumulates another run's counters and timings into this one
    /// (used by the cross-collection join, which is a sequence of
    /// searches). `num_strings`, output and index fields are left to the
    /// caller.
    pub fn absorb(&mut self, other: &JoinStats) {
        self.pairs_in_scope += other.pairs_in_scope;
        self.qgram_survivors += other.qgram_survivors;
        self.qgram_pruned_count += other.qgram_pruned_count;
        self.qgram_pruned_bound += other.qgram_pruned_bound;
        self.freq_survivors += other.freq_survivors;
        self.freq_pruned_lower += other.freq_pruned_lower;
        self.freq_pruned_chebyshev += other.freq_pruned_chebyshev;
        self.cdf_accepted += other.cdf_accepted;
        self.cdf_rejected += other.cdf_rejected;
        self.cdf_undecided += other.cdf_undecided;
        self.verified_similar += other.verified_similar;
        self.verified_dissimilar += other.verified_dissimilar;
        self.timings.qgram += other.timings.qgram;
        self.timings.freq += other.timings.freq;
        self.timings.cdf += other.timings.cdf;
        self.timings.verify += other.timings.verify;
        self.timings.index += other.timings.index;
    }

    /// One-line human-readable summary (used by the experiment harness).
    pub fn summary(&self) -> String {
        format!(
            "n={} scope={} qgram→{} freq→{} cdf(acc={}, rej={}, und={}) verify(sim={}, dis={}) out={} [filter {:.1?}, verify {:.1?}, total {:.1?}]",
            self.num_strings,
            self.pairs_in_scope,
            self.qgram_survivors,
            self.freq_survivors,
            self.cdf_accepted,
            self.cdf_rejected,
            self.cdf_undecided,
            self.verified_similar,
            self.verified_dissimilar,
            self.output_pairs,
            self.timings.filtering(),
            self.timings.verify,
            self.timings.total,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filtering_time_is_sum_of_phases() {
        let t = PhaseTimings {
            qgram: Duration::from_millis(5),
            freq: Duration::from_millis(3),
            cdf: Duration::from_millis(2),
            verify: Duration::from_millis(100),
            index: Duration::from_millis(1),
            total: Duration::from_millis(111),
        };
        assert_eq!(t.filtering(), Duration::from_millis(11));
    }

    #[test]
    fn summary_mentions_counts() {
        let stats = JoinStats { num_strings: 7, output_pairs: 3, ..Default::default() };
        let s = stats.summary();
        assert!(s.contains("n=7"));
        assert!(s.contains("out=3"));
    }
}
