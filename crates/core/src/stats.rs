//! Per-phase statistics collected while answering a join query.
//!
//! The paper's figures plot exactly these quantities: candidates surviving
//! each filter (Fig 2, Fig 5), per-phase filtering time vs total time
//! (Fig 2, Fig 3), verification time (Fig 8), and peak index memory
//! (Fig 7).
//!
//! Since the observability refactor, `JoinStats` is a **view over
//! recorded events**: the drivers emit every counter, gauge, and phase
//! span through [`crate::record::Recording`], which applies each event to
//! this struct ([`JoinStats::apply_counter`], [`JoinStats::apply_gauge`],
//! [`PhaseTimings::add`]) and forwards it to the attached
//! [`usj_obs::Recorder`]. Nothing updates these fields directly anymore,
//! so the sequential and parallel drivers cannot drift apart in their
//! bookkeeping.

use std::time::Duration;

use usj_obs::{Counter, Gauge, Phase};

/// Wall-clock time spent in each phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Building/querying the segment inverted indices + Theorem 2 bound.
    pub qgram: Duration,
    /// Frequency-distance filtering (profiles + Lemma 6 + Theorem 3).
    pub freq: Duration,
    /// CDF-bound DP.
    pub cdf: Duration,
    /// Exact verification.
    pub verify: Duration,
    /// Inserting probes into the index (part of filtering overhead).
    pub index: Duration,
    /// Whole join. For a single driver run this is wall-clock; when stats
    /// are merged ([`JoinStats::absorb`]) it is the *sum* of the parts'
    /// totals (aggregate work time), and the driver overwrites it with
    /// the true wall-clock before returning.
    pub total: Duration,
}

impl PhaseTimings {
    /// Total filtering time (everything except verification).
    pub fn filtering(&self) -> Duration {
        self.qgram + self.freq + self.cdf + self.index
    }

    /// Adds `elapsed` to the slot for `phase` (the event-application hook
    /// used by [`crate::record::Recording`]).
    pub fn add(&mut self, phase: Phase, elapsed: Duration) {
        match phase {
            Phase::Qgram => self.qgram += elapsed,
            Phase::Freq => self.freq += elapsed,
            Phase::Cdf => self.cdf += elapsed,
            Phase::Verify => self.verify += elapsed,
            Phase::Index => self.index += elapsed,
            Phase::Total => self.total += elapsed,
        }
    }

    /// The slot for `phase`.
    pub fn get(&self, phase: Phase) -> Duration {
        match phase {
            Phase::Qgram => self.qgram,
            Phase::Freq => self.freq,
            Phase::Cdf => self.cdf,
            Phase::Verify => self.verify,
            Phase::Index => self.index,
            Phase::Total => self.total,
        }
    }
}

/// Counters and timings for one join (or search) run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JoinStats {
    /// Strings in the collection.
    pub num_strings: usize,
    /// Length-compatible pairs the join had to consider at all
    /// (`Σ_R |{S visited : ||R|−|S|| ≤ k}|`); the FCT candidate pool.
    pub pairs_in_scope: u64,
    /// Pairs surviving q-gram filtering (Lemma 5 count condition and
    /// Theorem 2 bound); equals `pairs_in_scope` when q-grams are off.
    pub qgram_survivors: u64,
    /// Pairs pruned by the Lemma 5 count condition (insufficient matching
    /// segments / never surfaced by the index).
    pub qgram_pruned_count: u64,
    /// Pairs pruned by the Theorem 2 probabilistic upper bound.
    pub qgram_pruned_bound: u64,
    /// Pairs surviving frequency-distance filtering.
    pub freq_survivors: u64,
    /// Pairs pruned by Lemma 6 (fd lower bound > k).
    pub freq_pruned_lower: u64,
    /// Pairs pruned by Theorem 3 (Chebyshev bound ≤ τ).
    pub freq_pruned_chebyshev: u64,
    /// Pairs accepted outright by the CDF lower bound (no verification).
    pub cdf_accepted: u64,
    /// Pairs rejected by the CDF upper bound.
    pub cdf_rejected: u64,
    /// Pairs left undecided by the CDF bounds (sent to verification).
    pub cdf_undecided: u64,
    /// Verified pairs found similar.
    pub verified_similar: u64,
    /// Verified pairs found dissimilar (the verification false-positive
    /// count the paper tracks in §7.2).
    pub verified_dissimilar: u64,
    /// Total output pairs.
    pub output_pairs: u64,
    /// Injected faults the run survived (delays absorbed + panics
    /// recovered by batch isolation); faults that abort the run surface
    /// through the error path instead.
    pub faults_injected: u64,
    /// Work-stealing batches that panicked and were re-run probe-by-probe
    /// by the fault-tolerant driver.
    pub batches_retried: u64,
    /// Probes quarantined after panicking even in isolated retry (their
    /// pairs are absent from the output).
    pub probes_quarantined: u64,
    /// Length-band waves skipped on resume because a checkpoint already
    /// covered them.
    pub waves_resumed: u64,
    /// Estimated current index size in bytes at the end of the run.
    pub index_bytes: usize,
    /// Peak estimated index size (the paper's Fig 7 memory metric; expired
    /// lengths are dropped as the scan advances).
    pub peak_index_bytes: usize,
    /// Wall-clock breakdown.
    pub timings: PhaseTimings,
}

impl JoinStats {
    /// Candidates that reached exact verification.
    pub fn verified_pairs(&self) -> u64 {
        self.verified_similar + self.verified_dissimilar
    }

    /// Applies one counter event (the [`crate::record::Recording`] hook).
    /// Counters outside the `JoinStats` vocabulary (index/verifier
    /// internals tracked only by richer recorders) are ignored.
    pub fn apply_counter(&mut self, counter: Counter, delta: u64) {
        match counter {
            Counter::PairsInScope => self.pairs_in_scope += delta,
            Counter::QgramSurvivors => self.qgram_survivors += delta,
            Counter::QgramPrunedCount => self.qgram_pruned_count += delta,
            Counter::QgramPrunedBound => self.qgram_pruned_bound += delta,
            Counter::FreqSurvivors => self.freq_survivors += delta,
            Counter::FreqPrunedLower => self.freq_pruned_lower += delta,
            Counter::FreqPrunedChebyshev => self.freq_pruned_chebyshev += delta,
            Counter::CdfAccepted => self.cdf_accepted += delta,
            Counter::CdfRejected => self.cdf_rejected += delta,
            Counter::CdfUndecided => self.cdf_undecided += delta,
            Counter::VerifiedSimilar => self.verified_similar += delta,
            Counter::VerifiedDissimilar => self.verified_dissimilar += delta,
            Counter::OutputPairs => self.output_pairs += delta,
            Counter::FaultsInjected => self.faults_injected += delta,
            Counter::BatchesRetried => self.batches_retried += delta,
            Counter::ProbesQuarantined => self.probes_quarantined += delta,
            Counter::WavesResumed => self.waves_resumed += delta,
            Counter::IndexInsertions
            | Counter::IndexPostingsScanned
            | Counter::IndexCandidatesSurfaced
            | Counter::VerifierBuilds
            | Counter::StealBatches
            | Counter::ServeAccepted
            | Counter::ServeFull
            | Counter::ServeDegraded
            | Counter::ServeShed
            | Counter::ServeDeadline
            | Counter::ServePanics
            | Counter::HedgesSent
            | Counter::HedgesWon
            | Counter::ShardsQuarantined
            | Counter::PartialResponses
            | Counter::SnapshotBandsSalvaged
            | Counter::SnapshotBandsRebuilt
            | Counter::SnapshotCorruptionsDetected
            | Counter::WarmRestarts => {}
        }
    }

    /// Applies one gauge event (the [`crate::record::Recording`] hook).
    pub fn apply_gauge(&mut self, gauge: Gauge, value: u64) {
        match gauge {
            Gauge::IndexBytes => self.index_bytes = value as usize,
            Gauge::PeakIndexBytes => {
                self.peak_index_bytes = self.peak_index_bytes.max(value as usize)
            }
            Gauge::NumStrings => self.num_strings = value as usize,
            // Sharded-driver residency and server queue gauges live only
            // in richer recorders; the flat view keeps the classic
            // memory fields.
            Gauge::ResidentShards
            | Gauge::PeakResidentBytes
            | Gauge::ServeQueueDepth
            | Gauge::ShardHealthy
            | Gauge::SnapshotAgeSeconds => {}
        }
    }

    /// Accumulates another run's counters and timings into this one, used
    /// when a join is a sequence of searches (the cross-collection join)
    /// or a merge of per-worker partial runs (the parallel join).
    ///
    /// Merge rules:
    /// * counters and per-phase timings **sum** (they measure work done);
    /// * `timings.total` also **sums** — the merged value is aggregate
    ///   work time, which the driver overwrites with wall-clock before
    ///   returning (so a caller-visible `total` is always wall-clock);
    /// * the memory gauges `index_bytes`/`peak_index_bytes` take the
    ///   **max** (parallel workers observe the same shared index; a
    ///   sequence of searches reports its high-water mark);
    /// * `output_pairs` sums (each search reports its own hits); drivers
    ///   overwrite it with the final deduplicated count;
    /// * `num_strings` is left to the caller, which knows the collection.
    pub fn absorb(&mut self, other: &JoinStats) {
        self.output_pairs += other.output_pairs;
        self.pairs_in_scope += other.pairs_in_scope;
        self.qgram_survivors += other.qgram_survivors;
        self.qgram_pruned_count += other.qgram_pruned_count;
        self.qgram_pruned_bound += other.qgram_pruned_bound;
        self.freq_survivors += other.freq_survivors;
        self.freq_pruned_lower += other.freq_pruned_lower;
        self.freq_pruned_chebyshev += other.freq_pruned_chebyshev;
        self.cdf_accepted += other.cdf_accepted;
        self.cdf_rejected += other.cdf_rejected;
        self.cdf_undecided += other.cdf_undecided;
        self.verified_similar += other.verified_similar;
        self.verified_dissimilar += other.verified_dissimilar;
        self.faults_injected += other.faults_injected;
        self.batches_retried += other.batches_retried;
        self.probes_quarantined += other.probes_quarantined;
        self.waves_resumed += other.waves_resumed;
        self.index_bytes = self.index_bytes.max(other.index_bytes);
        self.peak_index_bytes = self.peak_index_bytes.max(other.peak_index_bytes);
        self.timings.qgram += other.timings.qgram;
        self.timings.freq += other.timings.freq;
        self.timings.cdf += other.timings.cdf;
        self.timings.verify += other.timings.verify;
        self.timings.index += other.timings.index;
        self.timings.total += other.timings.total;
    }

    /// One-line human-readable summary (used by the experiment harness).
    pub fn summary(&self) -> String {
        format!(
            "n={} scope={} qgram→{} freq→{} cdf(acc={}, rej={}, und={}) verify(sim={}, dis={}) out={} [filter {:.1?}, verify {:.1?}, total {:.1?}]",
            self.num_strings,
            self.pairs_in_scope,
            self.qgram_survivors,
            self.freq_survivors,
            self.cdf_accepted,
            self.cdf_rejected,
            self.cdf_undecided,
            self.verified_similar,
            self.verified_dissimilar,
            self.output_pairs,
            self.timings.filtering(),
            self.timings.verify,
            self.timings.total,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filtering_time_is_sum_of_phases() {
        let t = PhaseTimings {
            qgram: Duration::from_millis(5),
            freq: Duration::from_millis(3),
            cdf: Duration::from_millis(2),
            verify: Duration::from_millis(100),
            index: Duration::from_millis(1),
            total: Duration::from_millis(111),
        };
        assert_eq!(t.filtering(), Duration::from_millis(11));
    }

    #[test]
    fn summary_mentions_counts() {
        let stats = JoinStats {
            num_strings: 7,
            output_pairs: 3,
            ..Default::default()
        };
        let s = stats.summary();
        assert!(s.contains("n=7"));
        assert!(s.contains("out=3"));
    }

    #[test]
    fn phase_add_and_get_round_trip() {
        let mut t = PhaseTimings::default();
        for (i, p) in Phase::ALL.iter().enumerate() {
            t.add(*p, Duration::from_millis(1 + i as u64));
            t.add(*p, Duration::from_millis(1));
            assert_eq!(t.get(*p), Duration::from_millis(2 + i as u64));
        }
    }

    #[test]
    fn counter_events_update_matching_fields() {
        let mut s = JoinStats::default();
        s.apply_counter(Counter::PairsInScope, 10);
        s.apply_counter(Counter::PairsInScope, 5);
        s.apply_counter(Counter::CdfRejected, 2);
        s.apply_counter(Counter::OutputPairs, 1);
        // Obs-only counters leave JoinStats untouched.
        s.apply_counter(Counter::IndexPostingsScanned, 99);
        s.apply_counter(Counter::VerifierBuilds, 99);
        assert_eq!(s.pairs_in_scope, 15);
        assert_eq!(s.cdf_rejected, 2);
        assert_eq!(s.output_pairs, 1);
        assert_eq!(
            s,
            JoinStats {
                pairs_in_scope: 15,
                cdf_rejected: 2,
                output_pairs: 1,
                ..Default::default()
            }
        );
    }

    #[test]
    fn gauge_events_set_and_peak() {
        let mut s = JoinStats::default();
        s.apply_gauge(Gauge::IndexBytes, 100);
        s.apply_gauge(Gauge::PeakIndexBytes, 120);
        s.apply_gauge(Gauge::IndexBytes, 40);
        s.apply_gauge(Gauge::PeakIndexBytes, 90); // peak never regresses
        s.apply_gauge(Gauge::NumStrings, 7);
        assert_eq!(s.index_bytes, 40);
        assert_eq!(s.peak_index_bytes, 120);
        assert_eq!(s.num_strings, 7);
    }

    #[test]
    fn absorb_sums_work_and_maxes_memory() {
        let mut a = JoinStats {
            pairs_in_scope: 10,
            cdf_undecided: 2,
            index_bytes: 100,
            peak_index_bytes: 150,
            timings: PhaseTimings {
                qgram: Duration::from_millis(3),
                total: Duration::from_millis(10),
                ..Default::default()
            },
            ..Default::default()
        };
        let b = JoinStats {
            pairs_in_scope: 5,
            cdf_undecided: 1,
            index_bytes: 120,
            peak_index_bytes: 130,
            timings: PhaseTimings {
                qgram: Duration::from_millis(2),
                total: Duration::from_millis(4),
                ..Default::default()
            },
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.pairs_in_scope, 15);
        assert_eq!(a.cdf_undecided, 3);
        // Memory gauges take the max, not the sum (workers share one index).
        assert_eq!(a.index_bytes, 120);
        assert_eq!(a.peak_index_bytes, 150);
        // Work timings sum, including total (aggregate work time).
        assert_eq!(a.timings.qgram, Duration::from_millis(5));
        assert_eq!(a.timings.total, Duration::from_millis(14));
    }
}
