//! Wave-granular checkpointing for the fault-tolerant parallel self-join.
//!
//! The sharded parallel driver processes length-band **waves** in a fixed,
//! deterministic order, and a wave's output depends only on the
//! configuration and the input collection — never on scheduling. That
//! makes the wave boundary a natural unit of recovery: after each
//! completed wave the driver persists (wave count, emitted pairs, funnel
//! counters, config/input fingerprint), and a resumed run replays index
//! construction for the completed waves while skipping their probes,
//! producing output bit-identical to an uninterrupted run.
//!
//! The on-disk format is deliberately dumb: a line-based text file with a
//! magic header and a trailing FNV-1a digest over everything above it.
//! Truncation loses the digest line, corruption breaks it — both are
//! detected on load and rejected with [`CheckpointError::Corrupt`] rather
//! than silently resumed. Writes go through [`durable_atomic_write`]
//! (write-temp, fsync, atomic rename, directory fsync), so a crash
//! mid-write can never tear the checkpoint that an earlier wave already
//! committed — and a crash right after a commit cannot lose it either.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::join::SimilarPair;
use crate::stats::JoinStats;

/// File name of the checkpoint inside its `--checkpoint` directory.
pub const CHECKPOINT_FILE: &str = "join.ckpt";

const MAGIC: &str = "usj-checkpoint v1";

/// FNV-1a, the same dependency-free hash the tracing layer uses; here it
/// detects corruption/truncation, not adversaries.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hashes one value into a running FNV-1a fingerprint (little-endian
/// bytes). Used by the driver to fingerprint config + input.
pub(crate) fn fnv1a_fold(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Seed for incremental fingerprinting via [`fnv1a_fold`].
pub(crate) const FNV_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// Writes `text` to `path` durably and atomically: a sibling temp file is
/// written, **fsynced**, renamed over the target, and the parent
/// directory is fsynced — so readers observe either the old contents or
/// the new (never a torn prefix), and a crash immediately after return
/// cannot lose the rename or the data behind it. The named failpoint
/// fires between the temp write and the fsync (the widest window a crash
/// would exploit): an `Error` action removes the temp file and surfaces
/// as an `io::Error`; a `Panic` action unwinds with the temp file in
/// place and the target untouched.
pub fn durable_atomic_write(path: &Path, text: &str, failpoint: &str) -> io::Result<()> {
    durable_atomic_write_full(path, text, failpoint, None, None)
}

/// The full-fidelity durable write: one failpoint per crash window, in
/// firing order — after the temp bytes land (`fp_write`), after the temp
/// file's fsync (`fp_fsync`), and immediately before the rename
/// (`fp_rename`). [`durable_atomic_write`] threads a single shared point
/// through the first window; the snapshot writer threads all three
/// (`snapshot.write` / `snapshot.fsync` / `snapshot.rename`) so the
/// persistence suite can kill every window independently.
pub(crate) fn durable_atomic_write_full(
    path: &Path,
    text: &str,
    fp_write: &str,
    fp_fsync: Option<&str>,
    fp_rename: Option<&str>,
) -> io::Result<()> {
    use std::io::Write as _;
    let tmp = {
        let mut name = path
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_default();
        name.push(".tmp");
        path.with_file_name(name)
    };
    // Any failure past this point removes the temp file so an aborted
    // write never leaves droppings next to the (intact) target.
    let bail = |e: io::Error, tmp: &Path| {
        let _ = fs::remove_file(tmp);
        Err(e)
    };
    let injected = |msg: String| io::Error::other(format!("injected fault: {msg}"));
    let mut file = fs::File::create(&tmp)?;
    if let Err(e) = file.write_all(text.as_bytes()) {
        return bail(e, &tmp);
    }
    if let Some(msg) = usj_fault::fire_err(fp_write) {
        return bail(injected(msg), &tmp);
    }
    // fsync the data before the rename: without it the rename can become
    // durable while the bytes behind it are not, and a crash would leave
    // the *new* name holding a torn file.
    if let Err(e) = file.sync_all() {
        return bail(e, &tmp);
    }
    if let Some(fp) = fp_fsync {
        if let Some(msg) = usj_fault::fire_err(fp) {
            return bail(injected(msg), &tmp);
        }
    }
    drop(file);
    if let Some(fp) = fp_rename {
        if let Some(msg) = usj_fault::fire_err(fp) {
            return bail(injected(msg), &tmp);
        }
    }
    fs::rename(&tmp, path)?;
    // fsync the parent directory so the rename itself survives a crash;
    // an empty parent means a bare relative file name, i.e. cwd.
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d,
        _ => Path::new("."),
    };
    fs::File::open(dir)?.sync_all()
}

/// Why a checkpoint could not be saved or resumed from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// `--resume` was asked for but no checkpoint file exists yet.
    Missing(PathBuf),
    /// The underlying filesystem operation failed.
    Io(String),
    /// The file exists but fails validation (bad magic, truncation, digest
    /// mismatch, malformed line) — resuming from it would be unsound.
    Corrupt(String),
    /// The checkpoint was written by a run with a different configuration
    /// or input collection; resuming would splice incompatible outputs.
    FingerprintMismatch {
        /// Fingerprint recorded in the checkpoint file.
        checkpoint: u64,
        /// Fingerprint of the run attempting to resume.
        run: u64,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Missing(path) => {
                write!(f, "no checkpoint at {} to resume from", path.display())
            }
            CheckpointError::Io(msg) => write!(f, "checkpoint io error: {msg}"),
            CheckpointError::Corrupt(msg) => write!(f, "checkpoint rejected: {msg}"),
            CheckpointError::FingerprintMismatch { checkpoint, run } => write!(
                f,
                "checkpoint fingerprint {checkpoint:016x} does not match this run \
                 ({run:016x}); it was written with a different config or input"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// The funnel counters a checkpoint persists, in file order. Fault/obs
/// bookkeeping (`faults_injected`, `batches_retried`, …) is deliberately
/// absent: a resumed run must reproduce the *uninterrupted* run's funnel,
/// and the uninterrupted run saw no faults.
fn funnel(stats: &JoinStats) -> [(&'static str, u64); 12] {
    [
        ("pairs_in_scope", stats.pairs_in_scope),
        ("qgram_survivors", stats.qgram_survivors),
        ("qgram_pruned_count", stats.qgram_pruned_count),
        ("qgram_pruned_bound", stats.qgram_pruned_bound),
        ("freq_survivors", stats.freq_survivors),
        ("freq_pruned_lower", stats.freq_pruned_lower),
        ("freq_pruned_chebyshev", stats.freq_pruned_chebyshev),
        ("cdf_accepted", stats.cdf_accepted),
        ("cdf_rejected", stats.cdf_rejected),
        ("cdf_undecided", stats.cdf_undecided),
        ("verified_similar", stats.verified_similar),
        ("verified_dissimilar", stats.verified_dissimilar),
    ]
}

fn set_funnel(stats: &mut JoinStats, name: &str, value: u64) -> bool {
    match name {
        "pairs_in_scope" => stats.pairs_in_scope = value,
        "qgram_survivors" => stats.qgram_survivors = value,
        "qgram_pruned_count" => stats.qgram_pruned_count = value,
        "qgram_pruned_bound" => stats.qgram_pruned_bound = value,
        "freq_survivors" => stats.freq_survivors = value,
        "freq_pruned_lower" => stats.freq_pruned_lower = value,
        "freq_pruned_chebyshev" => stats.freq_pruned_chebyshev = value,
        "cdf_accepted" => stats.cdf_accepted = value,
        "cdf_rejected" => stats.cdf_rejected = value,
        "cdf_undecided" => stats.cdf_undecided = value,
        "verified_similar" => stats.verified_similar = value,
        "verified_dissimilar" => stats.verified_dissimilar = value,
        _ => return false,
    }
    true
}

/// A committed prefix of a self-join: everything produced by the first
/// `completed_waves` length-band waves.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// FNV-1a fingerprint of the output-affecting configuration, the input
    /// collection, and the wave plan; resume refuses on mismatch.
    pub fingerprint: u64,
    /// Waves fully processed (probes run *and* checkpoint committed).
    pub completed_waves: usize,
    /// Funnel counters accumulated over the completed waves (only the
    /// filter-funnel fields are populated).
    pub funnel: JoinStats,
    /// Pairs emitted by the completed waves.
    pub pairs: Vec<SimilarPair>,
}

impl Checkpoint {
    /// The checkpoint file path inside `dir`.
    pub fn path_in(dir: &Path) -> PathBuf {
        dir.join(CHECKPOINT_FILE)
    }

    /// Serialises to the line-based text format (magic, fingerprint,
    /// waves, counters, pairs, trailing digest).
    pub fn encode(&self) -> String {
        let mut body = String::new();
        body.push_str(MAGIC);
        body.push('\n');
        body.push_str(&format!("fingerprint {:016x}\n", self.fingerprint));
        body.push_str(&format!("waves {}\n", self.completed_waves));
        for (name, value) in funnel(&self.funnel) {
            body.push_str(&format!("counter {name} {value}\n"));
        }
        for p in &self.pairs {
            // Probabilities round-trip through their bit pattern: the
            // resumed run must replay *exactly* the floats the completed
            // waves emitted, not a decimal approximation of them.
            body.push_str(&format!("pair {} {} {:016x}\n", p.left, p.right, p.prob.to_bits()));
        }
        let digest = fnv1a(body.as_bytes());
        body.push_str(&format!("digest {digest:016x}\n"));
        body
    }

    /// Parses and validates the text format. Any defect — bad magic,
    /// missing or wrong digest, malformed line — is
    /// [`CheckpointError::Corrupt`], with the offending 1-based line
    /// position in the message so a damaged file can be inspected, and
    /// never a silent partial resume.
    pub fn decode(text: &str) -> Result<Checkpoint, CheckpointError> {
        let corrupt = |msg: String| CheckpointError::Corrupt(msg);
        let total_lines = text.lines().count();
        // Every record — the digest included — is newline-terminated, so a
        // file that does not end in '\n' lost at least its last byte.
        if !text.ends_with('\n') {
            return Err(corrupt(format!(
                "line {total_lines}: file does not end in a newline (truncated?)"
            )));
        }
        let digest_at = text.trim_end_matches('\n').rfind("digest ").ok_or_else(|| {
            corrupt(format!(
                "line {total_lines}: missing digest line (truncated?)"
            ))
        })?;
        // The digest line must start a line, and the digest must cover
        // exactly the bytes before it.
        let digest_line_no = text[..digest_at].matches('\n').count() + 1;
        if digest_at > 0 && text.as_bytes()[digest_at - 1] != b'\n' {
            return Err(corrupt(format!(
                "line {digest_line_no}: digest marker not at start of line"
            )));
        }
        let (body, digest_line) = text.split_at(digest_at);
        let digest_hex = digest_line
            .trim_end()
            .strip_prefix("digest ")
            .ok_or_else(|| corrupt(format!("line {digest_line_no}: malformed digest line")))?;
        let digest = u64::from_str_radix(digest_hex, 16).map_err(|_| {
            corrupt(format!(
                "line {digest_line_no}: digest {digest_hex:?} is not hex"
            ))
        })?;
        let actual = fnv1a(body.as_bytes());
        if digest != actual {
            return Err(corrupt(format!(
                "line {digest_line_no}: digest mismatch \
                 (file says {digest:016x}, contents hash to {actual:016x})"
            )));
        }

        let mut lines = body.lines();
        if lines.next() != Some(MAGIC) {
            return Err(corrupt(format!("line 1: bad magic (expected {MAGIC:?})")));
        }
        let mut fingerprint = None;
        let mut completed_waves = None;
        let mut stats = JoinStats::default();
        let mut pairs = Vec::new();
        // The magic is body line 1; records start on line 2.
        for (idx, line) in lines.enumerate() {
            let ln = idx + 2;
            let mut parts = line.split_ascii_whitespace();
            match parts.next() {
                Some("fingerprint") => {
                    let hex = parts
                        .next()
                        .ok_or_else(|| corrupt(format!("line {ln}: bare fingerprint line {line:?}")))?;
                    fingerprint = Some(u64::from_str_radix(hex, 16).map_err(|_| {
                        corrupt(format!("line {ln}: fingerprint {hex:?} is not hex"))
                    })?);
                }
                Some("waves") => {
                    let n = parts
                        .next()
                        .ok_or_else(|| corrupt(format!("line {ln}: bare waves line {line:?}")))?;
                    completed_waves = Some(n.parse::<usize>().map_err(|_| {
                        corrupt(format!("line {ln}: wave count {n:?} is not a number"))
                    })?);
                }
                Some("counter") => {
                    let name = parts
                        .next()
                        .ok_or_else(|| corrupt(format!("line {ln}: bare counter line {line:?}")))?;
                    let v = parts.next().ok_or_else(|| {
                        corrupt(format!("line {ln}: counter {name:?} has no value"))
                    })?;
                    let v: u64 = v.parse().map_err(|_| {
                        corrupt(format!(
                            "line {ln}: counter {name:?} value {v:?} is not a number"
                        ))
                    })?;
                    if !set_funnel(&mut stats, name, v) {
                        return Err(corrupt(format!("line {ln}: unknown counter {name:?}")));
                    }
                }
                Some("pair") => {
                    let mut field = || {
                        parts
                            .next()
                            .ok_or_else(|| corrupt(format!("line {ln}: short pair line {line:?}")))
                    };
                    let left: u32 = field()?
                        .parse()
                        .map_err(|_| corrupt(format!("line {ln}: bad pair id in {line:?}")))?;
                    let right: u32 = field()?
                        .parse()
                        .map_err(|_| corrupt(format!("line {ln}: bad pair id in {line:?}")))?;
                    let bits = u64::from_str_radix(field()?, 16).map_err(|_| {
                        corrupt(format!("line {ln}: bad probability bits in {line:?}"))
                    })?;
                    pairs.push(SimilarPair {
                        left,
                        right,
                        prob: f64::from_bits(bits),
                    });
                }
                Some(other) => {
                    return Err(corrupt(format!("line {ln}: unknown record {other:?}")))
                }
                None => {}
            }
        }
        Ok(Checkpoint {
            fingerprint: fingerprint
                .ok_or_else(|| corrupt("missing fingerprint record".to_string()))?,
            completed_waves: completed_waves
                .ok_or_else(|| corrupt("missing waves record".to_string()))?,
            funnel: stats,
            pairs,
        })
    }

    /// Atomically persists the checkpoint into `dir` (created if absent),
    /// passing through the `checkpoint.write` failpoint. Returns the file
    /// path written.
    pub fn save(&self, dir: &Path) -> Result<PathBuf, CheckpointError> {
        fs::create_dir_all(dir)
            .map_err(|e| CheckpointError::Io(format!("cannot create {}: {e}", dir.display())))?;
        let path = Checkpoint::path_in(dir);
        durable_atomic_write(&path, &self.encode(), "checkpoint.write")
            .map_err(|e| CheckpointError::Io(format!("cannot write {}: {e}", path.display())))?;
        Ok(path)
    }

    /// Loads and validates the checkpoint in `dir`.
    pub fn load(dir: &Path) -> Result<Checkpoint, CheckpointError> {
        let path = Checkpoint::path_in(dir);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Err(CheckpointError::Missing(path));
            }
            Err(e) => {
                return Err(CheckpointError::Io(format!(
                    "cannot read {}: {e}",
                    path.display()
                )))
            }
        };
        Checkpoint::decode(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use usj_fault::{FaultAction, FaultPlan};

    fn scratch_dir(tag: &str) -> PathBuf {
        // ordering: Relaxed — only uniqueness matters, not ordering.
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "usj-ckpt-test-{}-{tag}-{n}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample() -> Checkpoint {
        let funnel = JoinStats {
            pairs_in_scope: 40,
            qgram_survivors: 12,
            cdf_accepted: 2,
            verified_similar: 3,
            ..Default::default()
        };
        Checkpoint {
            fingerprint: 0xdead_beef_cafe_f00d,
            completed_waves: 2,
            funnel,
            pairs: vec![
                SimilarPair { left: 0, right: 5, prob: 0.75 },
                SimilarPair { left: 3, right: 4, prob: 0.265625 },
            ],
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let ck = sample();
        let text = ck.encode();
        assert!(text.starts_with(MAGIC));
        assert!(text.trim_end().lines().last().unwrap().starts_with("digest "));
        assert_eq!(Checkpoint::decode(&text).unwrap(), ck);
    }

    #[test]
    fn save_load_round_trips_and_missing_is_distinct() {
        let dir = scratch_dir("roundtrip");
        assert!(matches!(
            Checkpoint::load(&dir),
            Err(CheckpointError::Missing(_))
        ));
        let ck = sample();
        let path = ck.save(&dir).unwrap();
        assert!(path.ends_with(CHECKPOINT_FILE));
        assert_eq!(Checkpoint::load(&dir).unwrap(), ck);
        // No temp file left behind.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(leftovers, vec![std::ffi::OsString::from(CHECKPOINT_FILE)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_and_corruption_are_rejected() {
        let text = sample().encode();
        // Truncating anywhere — even cleanly at a line boundary — loses or
        // breaks the digest.
        for cut in [text.len() - 1, text.len() / 2, 1] {
            let truncated = &text[..cut];
            assert!(
                matches!(Checkpoint::decode(truncated), Err(CheckpointError::Corrupt(_))),
                "cut at {cut} must be rejected"
            );
        }
        // Flipping one byte in the body breaks the digest.
        let mut bytes = text.clone().into_bytes();
        bytes[MAGIC.len() + 15] ^= 0x01;
        let tampered = String::from_utf8(bytes).unwrap();
        assert!(matches!(
            Checkpoint::decode(&tampered),
            Err(CheckpointError::Corrupt(_))
        ));
        // A well-formed digest over garbage content is also rejected.
        assert!(matches!(
            Checkpoint::decode("gibberish\ndigest 0000000000000000\n"),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn prob_bits_round_trip_exactly() {
        let mut ck = sample();
        // A probability with no short decimal representation (one ULP off
        // 0.1, built by bit arithmetic to stay within the MSRV).
        ck.pairs[0].prob = f64::from_bits(0.1f64.to_bits() + 1);
        let back = Checkpoint::decode(&ck.encode()).unwrap();
        assert_eq!(back.pairs[0].prob.to_bits(), ck.pairs[0].prob.to_bits());
    }

    #[test]
    fn durable_write_error_fault_leaves_target_untouched() {
        let dir = scratch_dir("atomic");
        fs::create_dir_all(&dir).unwrap();
        let target = dir.join("out.txt");
        durable_atomic_write(&target, "first\n", "test.atomic").unwrap();

        let _armed = FaultPlan::new()
            .fail_at("test.atomic", 0, FaultAction::Error("disk full".to_string()))
            .arm();
        let err = durable_atomic_write(&target, "second\n", "test.atomic").unwrap_err();
        assert!(err.to_string().contains("disk full"));
        // Old contents intact, no temp residue.
        assert_eq!(fs::read_to_string(&target).unwrap(), "first\n");
        let names: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(names, vec![std::ffi::OsString::from("out.txt")]);
        // Disarmed again (plan dropped) the write goes through.
        drop(_armed);
        durable_atomic_write(&target, "third\n", "test.atomic").unwrap();
        assert_eq!(fs::read_to_string(&target).unwrap(), "third\n");
        let _ = fs::remove_dir_all(&dir);
    }

    /// Every window of the three-failpoint write aborts cleanly: error
    /// actions surface as io::Errors, the target keeps its previous
    /// contents, and no temp file survives the abort.
    #[test]
    fn full_write_failpoints_abort_each_window_cleanly() {
        let dir = scratch_dir("windows");
        fs::create_dir_all(&dir).unwrap();
        let target = dir.join("out.txt");
        let write = |fp: &str| {
            durable_atomic_write_full(
                &target,
                "next\n",
                "test.win_write",
                Some("test.win_fsync"),
                Some("test.win_rename"),
            )
            .map_err(|e| format!("{fp}: {e}"))
        };
        write("seed").unwrap();
        fs::write(&target, "old\n").unwrap();
        for fp in ["test.win_write", "test.win_fsync", "test.win_rename"] {
            let _armed = FaultPlan::new()
                .fail_at(fp, 0, FaultAction::Error("no space".to_string()))
                .arm();
            let err = write(fp).unwrap_err();
            assert!(err.contains("no space"), "{err}");
            assert_eq!(fs::read_to_string(&target).unwrap(), "old\n", "{fp}");
            let names: Vec<_> = fs::read_dir(&dir)
                .unwrap()
                .map(|e| e.unwrap().file_name())
                .collect();
            assert_eq!(names, vec![std::ffi::OsString::from("out.txt")], "{fp}");
        }
        write("clean").unwrap();
        assert_eq!(fs::read_to_string(&target).unwrap(), "next\n");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_failpoint_preserves_previous_checkpoint() {
        let dir = scratch_dir("failpoint");
        let mut ck = sample();
        ck.save(&dir).unwrap();

        let _armed = FaultPlan::new()
            .fail_at("checkpoint.write", 0, FaultAction::Error("yanked".to_string()))
            .arm();
        ck.completed_waves = 3;
        assert!(matches!(ck.save(&dir), Err(CheckpointError::Io(_))));
        // The wave-2 checkpoint is still the one on disk, readable.
        assert_eq!(Checkpoint::load(&dir).unwrap().completed_waves, 2);
        let _ = fs::remove_dir_all(&dir);
    }
}
