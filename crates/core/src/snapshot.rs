//! Crash-safe persistent index snapshots.
//!
//! A snapshot is a sectioned text image of an [`IndexedCollection`]'s
//! segment inverted index, written durably (write-temp, fsync, atomic
//! rename, directory fsync — see [`crate::checkpoint`]) so the fleet's
//! shards can restart warm instead of paying a full rebuild.
//!
//! # On-disk layout
//!
//! ```text
//! usj-snapshot v1
//! fingerprint <16 hex>                 config + input fingerprint
//! body <bytes> sections <n>            section bytes and count
//! header <16 hex>                      FNV-1a of the three lines above
//! <section 0> … <section n-1>          concatenated section texts
//! footer <n>
//! section <name> <offset> <len> <16 hex>   one directory row per section
//! digest <16 hex>                      FNV-1a of the footer rows above
//! ```
//!
//! Sections are `interner` (the shared segment-instance table, in dense
//! id order) followed by one `band.<len>` per indexed string length.
//! Every section carries its own length and FNV checksum in the footer
//! directory, so damage is localised to the section it hit.
//!
//! # Recovery ladder
//!
//! [`load`] degrades gracefully, one rung at a time — a damaged snapshot
//! costs load time, never correctness:
//!
//! 1. **Verify-all** — every section checksums clean: decode everything,
//!    warm start ([`LoadRung::Verified`]).
//! 2. **Salvage** — header, footer, and the interner are intact but some
//!    band is corrupt or a band fails salvage (`snapshot.salvage`):
//!    intact bands are admitted as-is and only the damaged ones are
//!    rebuilt from the source records ([`LoadRung::Salvaged`]). Because
//!    the intact interner holds every instance the original build
//!    interned, re-inserting a band replays the cold build exactly.
//!    Under [`SalvageMode::Degraded`], a band that fails salvage is left
//!    out and reported instead — the server answers for it in `DEGRADED`
//!    superset mode while a background rebuild readmits it.
//! 3. **Refuse** — the header decodes cleanly but its fingerprint does
//!    not match the running config/input: the snapshot belongs to a
//!    different run, and silently rebuilding would mask the operator
//!    error ([`SnapshotError::FingerprintMismatch`]).
//! 4. **Full rebuild** — the file is missing, unreadable, or its
//!    header/footer/interner is damaged: cold build from the source
//!    records ([`LoadRung::Rebuilt`]).
//!
//! Fault injection covers the whole I/O path: `snapshot.write`,
//! `snapshot.fsync`, and `snapshot.rename` fire inside the durable
//! write, `snapshot.read` after the image is read back, and
//! `snapshot.salvage` once per band admitted from disk.

use std::fmt;
use std::fs;
use std::path::Path;
use std::time::SystemTime;

use usj_model::{Symbol, UncertainString};

use crate::checkpoint::{durable_atomic_write_full, fnv1a_fold, FNV_SEED};
use crate::collection::IndexedCollection;
use crate::config::JoinConfig;
use crate::index::{BandDump, SegmentIndex};

/// First line of every snapshot image.
pub const SNAPSHOT_MAGIC: &str = "usj-snapshot v1";

/// Why a snapshot could not be written or must not be loaded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Rung 3: the snapshot decodes cleanly but was written for a
    /// different configuration or input collection. Loading it would be
    /// wrong and rebuilding silently would mask the operator error.
    FingerprintMismatch {
        /// Fingerprint recorded in the snapshot header.
        snapshot: u64,
        /// Fingerprint of the running config and input.
        run: u64,
    },
    /// An I/O failure outside the recovery ladder's reach (the durable
    /// write failed, or `verify` could not read the file at all).
    Io(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::FingerprintMismatch { snapshot, run } => write!(
                f,
                "snapshot refused: fingerprint mismatch (snapshot {snapshot:016x}, run \
                 {run:016x}) — it was written for a different config or input collection; \
                 delete the snapshot or load it with the inputs it was written for"
            ),
            SnapshotError::Io(msg) => write!(f, "snapshot io: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// How [`load`] treats a band that fails salvage (`snapshot.salvage`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SalvageMode {
    /// Rebuild the band from source records inline — the returned
    /// collection is always complete.
    Strict,
    /// Leave the band out and report it in
    /// [`SnapshotReport::degraded_bands`] — the server answers for such
    /// bands in `DEGRADED` superset mode while a background rebuild
    /// readmits them.
    Degraded,
}

/// Which rung of the recovery ladder a load landed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadRung {
    /// Every section verified; the whole index came from disk.
    Verified,
    /// Some bands were damaged or failed salvage; intact bands came from
    /// disk, the rest were rebuilt (or degraded).
    Salvaged,
    /// The snapshot was missing or structurally damaged; the index was
    /// rebuilt cold from source records.
    Rebuilt,
}

/// What a [`load`] did, for operator diagnosis and metrics seeding.
#[derive(Debug, Clone)]
pub struct SnapshotReport {
    /// The recovery-ladder rung the load landed on.
    pub rung: LoadRung,
    /// `true` when at least part of the index came from disk.
    pub warm: bool,
    /// Number of length bands the collection needs.
    pub bands_total: usize,
    /// Bands admitted from disk on the salvage rung (0 when verified).
    pub bands_salvaged: usize,
    /// Bands rebuilt from source records.
    pub bands_rebuilt: usize,
    /// Checksum or structural corruptions detected while loading.
    pub corruptions_detected: u64,
    /// Bands left out under [`SalvageMode::Degraded`]; the index answers
    /// for them only via superset (`DEGRADED`) fallbacks until a rebuild
    /// readmits them.
    pub degraded_bands: Vec<usize>,
    /// Snapshot age (now − file mtime) in seconds, when a file was read.
    pub age_seconds: Option<u64>,
    /// Human-readable diagnosis of the path taken.
    pub reason: String,
}

/// A loaded collection plus the report of how it was recovered.
#[derive(Debug)]
pub struct LoadedSnapshot {
    /// The collection, ready to serve.
    pub collection: IndexedCollection,
    /// What the recovery ladder did to produce it.
    pub report: SnapshotReport,
}

/// What [`write`] produced.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotWriteReport {
    /// Total image size in bytes.
    pub bytes: usize,
    /// Number of sections written (interner + one per length band).
    pub sections: usize,
    /// The config/input fingerprint recorded in the header.
    pub fingerprint: u64,
}

/// One row of the footer's section directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionEntry {
    /// Section name (`interner` or `band.<len>`).
    pub name: String,
    /// Absolute byte offset of the section in the image.
    pub offset: usize,
    /// Section length in bytes.
    pub len: usize,
    /// FNV-1a checksum of the section bytes.
    pub check: u64,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_fold(FNV_SEED, bytes)
}

fn fold_u64(h: u64, v: u64) -> u64 {
    fnv1a_fold(h, &v.to_le_bytes())
}

/// Fingerprint of everything that determines the index a snapshot
/// stores: the output-affecting configuration, the alphabet size, and
/// the input collection in id order. Mirrors the join driver's
/// checkpoint fingerprint minus the wave plan (a snapshot has no waves).
pub fn fingerprint(config: &JoinConfig, sigma: usize, strings: &[UncertainString]) -> u64 {
    let mut h = FNV_SEED;
    h = fold_u64(h, config.k as u64);
    h = fold_u64(h, config.tau.to_bits());
    h = fold_u64(h, config.q as u64);
    h = fnv1a_fold(
        h,
        format!(
            "{:?}/{:?}/{:?}/{:?}",
            config.policy, config.alpha_mode, config.pipeline, config.verifier
        )
        .as_bytes(),
    );
    h = fold_u64(h, config.early_stop as u64);
    h = fold_u64(h, config.max_segment_instances as u64);
    h = fold_u64(h, config.max_trie_nodes as u64);
    h = fold_u64(h, sigma as u64);
    h = fold_u64(h, strings.len() as u64);
    for (id, s) in strings.iter().enumerate() {
        h = fold_u64(h, id as u64);
        h = fold_u64(h, s.len() as u64);
        for pos in s.positions() {
            h = fold_u64(h, pos.num_alternatives() as u64);
            for (sym, prob) in pos.alternatives() {
                h = fold_u64(h, sym as u64);
                h = fold_u64(h, prob.to_bits());
            }
        }
    }
    h
}

/// Deterministic digest of a collection's index content — two
/// collections with equal digests answer every probe identically. Used
/// by `usj snapshot fsck` and the corruption corpus to prove recovery
/// output is bit-identical to a cold rebuild.
pub fn collection_digest(coll: &IndexedCollection) -> u64 {
    let fp = fingerprint(coll.config(), coll.sigma(), coll.strings());
    fold_u64(fp, coll.index().content_digest())
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn encode_interner(entries: &[Vec<Symbol>]) -> String {
    let mut out = format!("interner {}\n", entries.len());
    for w in entries {
        out.push('w');
        for &sym in w {
            out.push(' ');
            out.push_str(&sym.to_string());
        }
        out.push('\n');
    }
    out
}

fn encode_band(dump: &BandDump) -> String {
    let mut out = format!("band {} segments {}\n", dump.len, dump.postings.len());
    out.push_str(&format!("ids {}", dump.ids.len()));
    for &id in &dump.ids {
        out.push_str(&format!(" {id}"));
    }
    out.push('\n');
    out.push_str("incomplete");
    for &b in &dump.incomplete {
        out.push_str(if b { " 1" } else { " 0" });
    }
    out.push('\n');
    out.push_str(&format!("bytes {}\n", dump.bytes));
    for (x, (keys, lists)) in dump.postings.iter().enumerate() {
        out.push_str(&format!("seg {x} {}\n", keys.len()));
        for (key, list) in keys.iter().zip(lists) {
            out.push_str(&format!("k {key} {}", list.len()));
            for &(id, p) in list {
                out.push_str(&format!(" {id}:{:016x}", p.to_bits()));
            }
            out.push('\n');
        }
    }
    out
}

/// Encodes `coll`'s index as a complete snapshot image.
pub fn encode(coll: &IndexedCollection) -> String {
    let index = coll.index();
    let fp = fingerprint(coll.config(), coll.sigma(), coll.strings());
    let mut sections: Vec<(String, String)> = Vec::new();
    sections.push(("interner".to_string(), encode_interner(&index.dump_interner())));
    for len in index.lengths() {
        let dump = index.dump_band(len).expect("listed length must be indexed");
        sections.push((format!("band.{len}"), encode_band(&dump)));
    }
    let body_len: usize = sections.iter().map(|(_, text)| text.len()).sum();
    let mut header = format!(
        "{SNAPSHOT_MAGIC}\nfingerprint {fp:016x}\nbody {body_len} sections {}\n",
        sections.len()
    );
    let hdigest = fnv1a(header.as_bytes());
    header.push_str(&format!("header {hdigest:016x}\n"));

    let mut footer = format!("footer {}\n", sections.len());
    let mut offset = header.len();
    for (name, text) in &sections {
        footer.push_str(&format!(
            "section {name} {offset} {} {:016x}\n",
            text.len(),
            fnv1a(text.as_bytes())
        ));
        offset += text.len();
    }
    footer.push_str(&format!("digest {:016x}\n", fnv1a(footer.as_bytes())));

    let mut out = header;
    for (_, text) in &sections {
        out.push_str(text);
    }
    out.push_str(&footer);
    out
}

/// Writes `coll`'s index snapshot to `path` durably: write-temp, fsync,
/// atomic rename, directory fsync, with the `snapshot.write`,
/// `snapshot.fsync`, and `snapshot.rename` failpoints armed along the
/// way. A crash at any point leaves either the old snapshot or the new
/// one — never a torn mix.
pub fn write(path: &Path, coll: &IndexedCollection) -> Result<SnapshotWriteReport, SnapshotError> {
    let text = encode(coll);
    let sections = 1 + coll.index().lengths().len();
    let fp = fingerprint(coll.config(), coll.sigma(), coll.strings());
    durable_atomic_write_full(
        path,
        &text,
        "snapshot.write",
        Some("snapshot.fsync"),
        Some("snapshot.rename"),
    )
    .map_err(|e| SnapshotError::Io(e.to_string()))?;
    Ok(SnapshotWriteReport {
        bytes: text.len(),
        sections,
        fingerprint: fp,
    })
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

struct Header {
    fingerprint: u64,
    body: usize,
    sections: usize,
    len: usize,
}

fn parse_hex(s: &str) -> Result<u64, String> {
    if s.len() != 16 {
        return Err(format!("expected 16 hex digits, got {:?}", s));
    }
    u64::from_str_radix(s, 16).map_err(|e| format!("bad hex {s:?}: {e}"))
}

fn parse_header(bytes: &[u8]) -> Result<Header, String> {
    let mut pos = 0usize;
    let mut lines: Vec<(usize, usize)> = Vec::with_capacity(4);
    for i in 0..4 {
        let nl = bytes[pos..]
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| format!("truncated header (line {i})"))?;
        lines.push((pos, pos + nl));
        pos = pos + nl + 1;
    }
    let text = |range: (usize, usize)| -> Result<&str, String> {
        std::str::from_utf8(&bytes[range.0..range.1]).map_err(|_| "non-utf8 header".to_string())
    };
    if text(lines[0])? != SNAPSHOT_MAGIC {
        return Err(format!("bad magic {:?}", text(lines[0])?));
    }
    let fp = text(lines[1])?
        .strip_prefix("fingerprint ")
        .ok_or("missing fingerprint line")?;
    let fingerprint = parse_hex(fp)?;
    let mut it = text(lines[2])?.split_whitespace();
    let (body, sections) = match (it.next(), it.next(), it.next(), it.next(), it.next()) {
        (Some("body"), Some(b), Some("sections"), Some(s), None) => (
            b.parse::<usize>().map_err(|e| format!("bad body length: {e}"))?,
            s.parse::<usize>().map_err(|e| format!("bad section count: {e}"))?,
        ),
        _ => return Err("malformed body line".to_string()),
    };
    let digest = text(lines[3])?
        .strip_prefix("header ")
        .ok_or("missing header digest line")?;
    let expect = parse_hex(digest)?;
    let got = fnv1a(&bytes[..lines[3].0]);
    if got != expect {
        return Err(format!("header digest mismatch (got {got:016x}, recorded {expect:016x})"));
    }
    Ok(Header {
        fingerprint,
        body,
        sections,
        len: pos,
    })
}

fn parse_footer(bytes: &[u8], offset: usize, sections: usize) -> Result<Vec<SectionEntry>, String> {
    if offset > bytes.len() {
        return Err("footer offset past end of file".to_string());
    }
    let tail =
        std::str::from_utf8(&bytes[offset..]).map_err(|_| "non-utf8 footer".to_string())?;
    if !tail.ends_with('\n') {
        return Err("footer not newline-terminated".to_string());
    }
    let lines: Vec<&str> = tail.lines().collect();
    if lines.len() != sections + 2 {
        return Err(format!(
            "footer has {} lines, expected {}",
            lines.len(),
            sections + 2
        ));
    }
    let count = lines[0]
        .strip_prefix("footer ")
        .ok_or("missing footer line")?
        .parse::<usize>()
        .map_err(|e| format!("bad footer count: {e}"))?;
    if count != sections {
        return Err(format!("footer lists {count} sections, header says {sections}"));
    }
    let digest_line = lines[lines.len() - 1];
    let expect = parse_hex(
        digest_line
            .strip_prefix("digest ")
            .ok_or("missing footer digest line")?,
    )?;
    let covered = tail.len() - (digest_line.len() + 1);
    let got = fnv1a(&tail.as_bytes()[..covered]);
    if got != expect {
        return Err(format!("footer digest mismatch (got {got:016x}, recorded {expect:016x})"));
    }
    let mut entries = Vec::with_capacity(sections);
    for line in &lines[1..lines.len() - 1] {
        let mut it = line.split_whitespace();
        match (it.next(), it.next(), it.next(), it.next(), it.next(), it.next()) {
            (Some("section"), Some(name), Some(off), Some(len), Some(check), None) => {
                entries.push(SectionEntry {
                    name: name.to_string(),
                    offset: off.parse().map_err(|e| format!("bad offset: {e}"))?,
                    len: len.parse().map_err(|e| format!("bad length: {e}"))?,
                    check: parse_hex(check)?,
                });
            }
            _ => return Err(format!("malformed directory row {line:?}")),
        }
    }
    Ok(entries)
}

/// Parses the section directory of a snapshot image — the corruption
/// harness uses this to aim injected damage at exact section
/// boundaries.
pub fn section_directory(bytes: &[u8]) -> Result<Vec<SectionEntry>, String> {
    let header = parse_header(bytes)?;
    parse_footer(bytes, header.len + header.body, header.sections)
}

fn decode_interner(text: &str) -> Result<Vec<Vec<Symbol>>, String> {
    let mut lines = text.lines();
    let head = lines.next().ok_or("empty interner section")?;
    let n: usize = head
        .strip_prefix("interner ")
        .ok_or("missing interner line")?
        .parse()
        .map_err(|e| format!("bad interner count: {e}"))?;
    let mut entries = Vec::with_capacity(n);
    for i in 0..n {
        let line = lines.next().ok_or_else(|| format!("interner entry {i} missing"))?;
        let rest = line
            .strip_prefix("w")
            .ok_or_else(|| format!("interner entry {i}: malformed {line:?}"))?;
        let syms: Result<Vec<Symbol>, _> = rest
            .split_whitespace()
            .map(|t| t.parse::<Symbol>())
            .collect();
        entries.push(syms.map_err(|e| format!("interner entry {i}: {e}"))?);
    }
    if lines.next().is_some() {
        return Err("trailing data after interner entries".to_string());
    }
    Ok(entries)
}

fn decode_band(text: &str, expected_len: usize) -> Result<BandDump, String> {
    let ctx = |msg: String| format!("band {expected_len}: {msg}");
    let mut lines = text.lines();
    let head = lines.next().ok_or_else(|| ctx("empty section".into()))?;
    let mut it = head.split_whitespace();
    let (len, m) = match (it.next(), it.next(), it.next(), it.next(), it.next()) {
        (Some("band"), Some(l), Some("segments"), Some(m), None) => (
            l.parse::<usize>().map_err(|e| ctx(format!("bad length: {e}")))?,
            m.parse::<usize>().map_err(|e| ctx(format!("bad segment count: {e}")))?,
        ),
        _ => return Err(ctx(format!("malformed band line {head:?}"))),
    };
    if len != expected_len {
        return Err(ctx(format!("section names length {len}")));
    }
    let ids_line = lines.next().ok_or_else(|| ctx("missing ids line".into()))?;
    let mut it = ids_line.split_whitespace();
    if it.next() != Some("ids") {
        return Err(ctx(format!("malformed ids line {ids_line:?}")));
    }
    let count: usize = it
        .next()
        .ok_or_else(|| ctx("missing id count".into()))?
        .parse()
        .map_err(|e| ctx(format!("bad id count: {e}")))?;
    let ids: Result<Vec<u32>, _> = it.map(|t| t.parse::<u32>()).collect();
    let ids = ids.map_err(|e| ctx(format!("bad id: {e}")))?;
    if ids.len() != count {
        return Err(ctx(format!("ids line lists {} ids, declared {count}", ids.len())));
    }
    let inc_line = lines.next().ok_or_else(|| ctx("missing incomplete line".into()))?;
    let rest = inc_line
        .strip_prefix("incomplete")
        .ok_or_else(|| ctx(format!("malformed incomplete line {inc_line:?}")))?;
    let incomplete: Result<Vec<bool>, String> = rest
        .split_whitespace()
        .map(|t| match t {
            "0" => Ok(false),
            "1" => Ok(true),
            other => Err(ctx(format!("bad flag {other:?}"))),
        })
        .collect();
    let incomplete = incomplete?;
    if incomplete.len() != m {
        return Err(ctx(format!("{} flags for {m} segments", incomplete.len())));
    }
    let bytes_line = lines.next().ok_or_else(|| ctx("missing bytes line".into()))?;
    let bytes: usize = bytes_line
        .strip_prefix("bytes ")
        .ok_or_else(|| ctx(format!("malformed bytes line {bytes_line:?}")))?
        .parse()
        .map_err(|e| ctx(format!("bad byte estimate: {e}")))?;
    let mut postings = Vec::with_capacity(m);
    for x in 0..m {
        let seg_line = lines.next().ok_or_else(|| ctx(format!("missing seg {x}")))?;
        let mut it = seg_line.split_whitespace();
        let nkeys = match (it.next(), it.next(), it.next(), it.next()) {
            (Some("seg"), Some(sx), Some(n), None) if sx == x.to_string() => n
                .parse::<usize>()
                .map_err(|e| ctx(format!("seg {x}: bad key count: {e}")))?,
            _ => return Err(ctx(format!("malformed seg line {seg_line:?}"))),
        };
        let mut keys = Vec::with_capacity(nkeys);
        let mut lists = Vec::with_capacity(nkeys);
        for _ in 0..nkeys {
            let line = lines.next().ok_or_else(|| ctx(format!("seg {x}: missing key row")))?;
            let mut it = line.split_whitespace();
            if it.next() != Some("k") {
                return Err(ctx(format!("seg {x}: malformed key row {line:?}")));
            }
            let key: u32 = it
                .next()
                .ok_or_else(|| ctx(format!("seg {x}: missing key")))?
                .parse()
                .map_err(|e| ctx(format!("seg {x}: bad key: {e}")))?;
            let np: usize = it
                .next()
                .ok_or_else(|| ctx(format!("seg {x}: missing posting count")))?
                .parse()
                .map_err(|e| ctx(format!("seg {x}: bad posting count: {e}")))?;
            let mut list = Vec::with_capacity(np);
            for tok in it {
                let (id, p) = tok
                    .split_once(':')
                    .ok_or_else(|| ctx(format!("seg {x}: malformed posting {tok:?}")))?;
                let id: u32 = id.parse().map_err(|e| ctx(format!("seg {x}: bad id: {e}")))?;
                let bits = parse_hex(p).map_err(|e| ctx(format!("seg {x}: {e}")))?;
                list.push((id, f64::from_bits(bits)));
            }
            if list.len() != np {
                return Err(ctx(format!(
                    "seg {x}: key {key} lists {} postings, declared {np}",
                    list.len()
                )));
            }
            keys.push(key);
            lists.push(list);
        }
        postings.push((keys, lists));
    }
    if lines.next().is_some() {
        return Err(ctx("trailing data after posting tables".into()));
    }
    Ok(BandDump {
        len,
        ids,
        incomplete,
        postings,
        bytes,
    })
}

// ---------------------------------------------------------------------
// Verify (checksum walk only)
// ---------------------------------------------------------------------

/// Checksum status of one section, as reported by [`verify`].
#[derive(Debug, Clone)]
pub struct SectionStatus {
    /// Section name.
    pub name: String,
    /// Section length in bytes.
    pub bytes: usize,
    /// `true` when the section's checksum matches its content.
    pub ok: bool,
}

/// What a checksum walk over a snapshot image found.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// The fingerprint recorded in the header (0 if unreadable).
    pub fingerprint: u64,
    /// Per-section checksum status (empty if the directory is damaged).
    pub sections: Vec<SectionStatus>,
    /// `true` when the header, footer, and every section verify.
    pub ok: bool,
    /// Human-readable diagnosis when `ok` is `false`.
    pub diagnosis: String,
}

/// Walks a snapshot image's checksums without decoding or rebuilding
/// anything: header digest, footer digest, then every section against
/// its directory row. Missing files are I/O errors — `verify` has no
/// rebuild rung to fall to.
pub fn verify(path: &Path) -> Result<VerifyReport, SnapshotError> {
    let bytes = fs::read(path).map_err(|e| SnapshotError::Io(format!("{}: {e}", path.display())))?;
    if let Some(msg) = usj_fault::fire_err("snapshot.read") {
        return Err(SnapshotError::Io(format!("injected fault: {msg}")));
    }
    let header = match parse_header(&bytes) {
        Ok(h) => h,
        Err(e) => {
            return Ok(VerifyReport {
                fingerprint: 0,
                sections: Vec::new(),
                ok: false,
                diagnosis: format!("corrupt header: {e}"),
            })
        }
    };
    let entries = match parse_footer(&bytes, header.len + header.body, header.sections) {
        Ok(entries) => entries,
        Err(e) => {
            return Ok(VerifyReport {
                fingerprint: header.fingerprint,
                sections: Vec::new(),
                ok: false,
                diagnosis: format!("corrupt footer: {e}"),
            })
        }
    };
    let mut sections = Vec::with_capacity(entries.len());
    let mut bad = Vec::new();
    for entry in &entries {
        let ok = section_bytes(&bytes, entry)
            .map(|slice| fnv1a(slice) == entry.check)
            .unwrap_or(false);
        if !ok {
            bad.push(entry.name.clone());
        }
        sections.push(SectionStatus {
            name: entry.name.clone(),
            bytes: entry.len,
            ok,
        });
    }
    let ok = bad.is_empty();
    Ok(VerifyReport {
        fingerprint: header.fingerprint,
        sections,
        ok,
        diagnosis: if ok {
            String::new()
        } else {
            format!("corrupt sections: {}", bad.join(", "))
        },
    })
}

fn section_bytes<'a>(bytes: &'a [u8], entry: &SectionEntry) -> Option<&'a [u8]> {
    let end = entry.offset.checked_add(entry.len)?;
    bytes.get(entry.offset..end)
}

// ---------------------------------------------------------------------
// Load (the recovery ladder)
// ---------------------------------------------------------------------

enum Attempt {
    /// Rungs 1–2: use the snapshot (possibly with band repairs).
    Warm {
        interner: Vec<Vec<Symbol>>,
        admitted: Vec<BandDump>,
        repair: Vec<usize>,
        degraded: Vec<usize>,
        corruptions: u64,
        salvage_failures: usize,
        reason: String,
    },
    /// Rung 3: refuse — the snapshot belongs to a different run.
    Refuse { snapshot: u64 },
    /// Rung 4: cold rebuild.
    Cold { reason: String, corruptions: u64 },
}

fn attempt(
    path: &Path,
    run_fp: u64,
    expected_lens: &[usize],
    mode: SalvageMode,
) -> Attempt {
    let bytes = match fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Attempt::Cold {
                reason: "snapshot missing".to_string(),
                corruptions: 0,
            }
        }
        Err(e) => {
            return Attempt::Cold {
                reason: format!("snapshot unreadable: {e}"),
                corruptions: 0,
            }
        }
    };
    if let Some(msg) = usj_fault::fire_err("snapshot.read") {
        return Attempt::Cold {
            reason: format!("injected read fault: {msg}"),
            corruptions: 0,
        };
    }
    let header = match parse_header(&bytes) {
        Ok(h) => h,
        Err(e) => {
            return Attempt::Cold {
                reason: format!("corrupt header: {e}"),
                corruptions: 1,
            }
        }
    };
    if header.fingerprint != run_fp {
        return Attempt::Refuse {
            snapshot: header.fingerprint,
        };
    }
    let entries = match parse_footer(&bytes, header.len + header.body, header.sections) {
        Ok(entries) => entries,
        Err(e) => {
            return Attempt::Cold {
                reason: format!("corrupt footer: {e}"),
                corruptions: 1,
            }
        }
    };
    let mut corruptions = 0u64;
    let mut reasons: Vec<String> = Vec::new();
    let verified_text = |name: &str| -> Result<&str, String> {
        let entry = entries
            .iter()
            .find(|e| e.name == name)
            .ok_or_else(|| format!("{name} section missing from directory"))?;
        let slice =
            section_bytes(&bytes, entry).ok_or_else(|| format!("{name} section out of bounds"))?;
        if fnv1a(slice) != entry.check {
            return Err(format!("{name} section checksum mismatch"));
        }
        std::str::from_utf8(slice).map_err(|_| format!("{name} section is not utf-8"))
    };
    let interner = match verified_text("interner").and_then(decode_interner) {
        Ok(entries) => entries,
        Err(e) => {
            // Without the interner no posting key in any band means
            // anything — the whole snapshot is unusable.
            return Attempt::Cold {
                reason: format!("interner unusable: {e}"),
                corruptions: corruptions + 1,
            };
        }
    };
    let mut intact: Vec<BandDump> = Vec::new();
    let mut repair: Vec<usize> = Vec::new();
    for &len in expected_lens {
        match verified_text(&format!("band.{len}")).and_then(|text| decode_band(text, len)) {
            Ok(dump) => intact.push(dump),
            Err(e) => {
                corruptions += 1;
                reasons.push(e);
                repair.push(len);
            }
        }
    }
    let mut admitted = Vec::with_capacity(intact.len());
    let mut degraded = Vec::new();
    let mut salvage_failures = 0usize;
    for dump in intact {
        if let Some(msg) = usj_fault::fire_err("snapshot.salvage") {
            salvage_failures += 1;
            reasons.push(format!("band {} failed salvage: {msg}", dump.len));
            match mode {
                SalvageMode::Strict => repair.push(dump.len),
                SalvageMode::Degraded => degraded.push(dump.len),
            }
            continue;
        }
        admitted.push(dump);
    }
    repair.sort_unstable();
    degraded.sort_unstable();
    Attempt::Warm {
        interner,
        admitted,
        repair,
        degraded,
        corruptions,
        salvage_failures,
        reason: if reasons.is_empty() {
            "verified".to_string()
        } else {
            reasons.join("; ")
        },
    }
}

fn snapshot_age(path: &Path) -> Option<u64> {
    let modified = fs::metadata(path).and_then(|m| m.modified()).ok()?;
    SystemTime::now()
        .duration_since(modified)
        .ok()
        .map(|d| d.as_secs())
}

/// Loads a collection from `path`, falling down the recovery ladder as
/// far as the damage requires (see the module docs). `strings` are the
/// source records the collection indexes — they are what corrupt bands
/// (or the whole index, on rung 4) are rebuilt from, so a damaged
/// snapshot can cost load time but never correctness.
///
/// Rung 3 — a cleanly-decoded header whose fingerprint does not match
/// `config`/`sigma`/`strings` — returns
/// [`SnapshotError::FingerprintMismatch`] instead of silently
/// rebuilding: the operator pointed the process at the wrong snapshot.
pub fn load(
    path: &Path,
    config: &JoinConfig,
    sigma: usize,
    strings: Vec<UncertainString>,
    mode: SalvageMode,
) -> Result<LoadedSnapshot, SnapshotError> {
    let run_fp = fingerprint(config, sigma, &strings);
    let mut lens: Vec<usize> = strings.iter().map(|s| s.len()).collect();
    lens.sort_unstable();
    lens.dedup();
    let age = snapshot_age(path);
    let cold = |reason: String, corruptions: u64, strings: Vec<UncertainString>| LoadedSnapshot {
        collection: IndexedCollection::build(config.clone(), sigma, strings),
        report: SnapshotReport {
            rung: LoadRung::Rebuilt,
            warm: false,
            bands_total: lens.len(),
            bands_salvaged: 0,
            bands_rebuilt: lens.len(),
            corruptions_detected: corruptions,
            degraded_bands: Vec::new(),
            age_seconds: None,
            reason,
        },
    };
    match attempt(path, run_fp, &lens, mode) {
        Attempt::Refuse { snapshot } => Err(SnapshotError::FingerprintMismatch {
            snapshot,
            run: run_fp,
        }),
        Attempt::Cold {
            reason,
            corruptions,
        } => Ok(cold(reason, corruptions, strings)),
        Attempt::Warm {
            interner,
            admitted,
            repair,
            degraded,
            corruptions,
            salvage_failures,
            reason,
        } => {
            let salvaged = admitted.len();
            let index = match SegmentIndex::from_parts(interner, admitted, config) {
                Ok(index) => index,
                Err(e) => {
                    // Defensive: a dump that checksummed clean but cannot
                    // reassemble (config/partition drift the fingerprint
                    // failed to catch) falls to the bottom rung.
                    return Ok(cold(
                        format!("snapshot unassemblable: {e}"),
                        corruptions + 1,
                        strings,
                    ));
                }
            };
            let mut index = index;
            let mut rebuilt = 0usize;
            for &len in &repair {
                index.rebuild_band(len, &strings, config);
                rebuilt += 1;
            }
            let clean = corruptions == 0 && salvage_failures == 0 && repair.is_empty();
            let collection =
                IndexedCollection::from_restored(config.clone(), sigma, strings, index);
            Ok(LoadedSnapshot {
                collection,
                report: SnapshotReport {
                    rung: if clean {
                        LoadRung::Verified
                    } else {
                        LoadRung::Salvaged
                    },
                    warm: true,
                    bands_total: lens.len(),
                    bands_salvaged: if clean { 0 } else { salvaged },
                    bands_rebuilt: rebuilt,
                    corruptions_detected: corruptions,
                    degraded_bands: degraded,
                    age_seconds: age,
                    reason,
                },
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_model::Alphabet;

    fn dna(text: &str) -> UncertainString {
        UncertainString::parse(text, &Alphabet::dna()).unwrap()
    }

    fn strings() -> Vec<UncertainString> {
        vec![
            dna("ACGTACGT"),
            dna("ACG{(T,0.9),(G,0.1)}ACGT"),
            dna("TTTTTTTT"),
            dna("ACGTACG"),
            dna("ACGTACGTAC"),
            dna("AC{(G,0.6),(T,0.4)}TAC"),
        ]
    }

    fn config() -> JoinConfig {
        JoinConfig::new(2, 0.3)
    }

    fn scratch(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static N: AtomicUsize = AtomicUsize::new(0);
        // ordering: Relaxed — the counter only needs uniqueness.
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "usj-snapshot-{tag}-{}-{n}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip_is_bit_identical_to_cold_build() {
        let dir = scratch("roundtrip");
        let path = dir.join("index.snap");
        let cold = IndexedCollection::build(config(), 4, strings());
        write(&path, &cold).unwrap();
        let loaded = load(&path, &config(), 4, strings(), SalvageMode::Strict).unwrap();
        assert_eq!(loaded.report.rung, LoadRung::Verified);
        assert!(loaded.report.warm);
        assert_eq!(loaded.report.bands_salvaged, 0);
        assert_eq!(loaded.report.bands_rebuilt, 0);
        assert_eq!(loaded.report.corruptions_detected, 0);
        assert_eq!(collection_digest(&loaded.collection), collection_digest(&cold));
        // The loaded index answers probes identically.
        for probe in ["ACGTACGT", "ACGT{(A,0.5),(C,0.5)}CGT", "GGGGGGGG"] {
            let probe = dna(probe);
            assert_eq!(loaded.collection.search(&probe), cold.search(&probe));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn encode_is_deterministic_and_directory_parses() {
        let coll = IndexedCollection::build(config(), 4, strings());
        let a = encode(&coll);
        let b = encode(&coll);
        assert_eq!(a, b, "snapshot encoding must be deterministic");
        let dir = section_directory(a.as_bytes()).unwrap();
        assert_eq!(dir[0].name, "interner");
        // One band per distinct string length plus the interner.
        let mut lens: Vec<usize> = strings().iter().map(|s| s.len()).collect();
        lens.sort_unstable();
        lens.dedup();
        assert_eq!(dir.len(), lens.len() + 1);
        // Sections tile the body exactly.
        for pair in dir.windows(2) {
            assert_eq!(pair[0].offset + pair[0].len, pair[1].offset);
        }
    }

    #[test]
    fn missing_snapshot_falls_to_full_rebuild() {
        let dir = scratch("missing");
        let loaded = load(
            &dir.join("absent.snap"),
            &config(),
            4,
            strings(),
            SalvageMode::Strict,
        )
        .unwrap();
        assert_eq!(loaded.report.rung, LoadRung::Rebuilt);
        assert!(!loaded.report.warm);
        assert_eq!(loaded.report.corruptions_detected, 0);
        let cold = IndexedCollection::build(config(), 4, strings());
        assert_eq!(collection_digest(&loaded.collection), collection_digest(&cold));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_band_is_detected_and_rebuilt_bit_identically() {
        let dir = scratch("band");
        let path = dir.join("index.snap");
        let cold = IndexedCollection::build(config(), 4, strings());
        write(&path, &cold).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let entries = section_directory(&bytes).unwrap();
        let band = entries.iter().find(|e| e.name.starts_with("band.")).unwrap();
        // Flip one bit in the middle of the band section.
        let mid = band.offset + band.len / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let loaded = load(&path, &config(), 4, strings(), SalvageMode::Strict).unwrap();
        assert_eq!(loaded.report.rung, LoadRung::Salvaged);
        assert!(loaded.report.warm);
        assert_eq!(loaded.report.corruptions_detected, 1);
        assert_eq!(loaded.report.bands_rebuilt, 1);
        assert!(loaded.report.bands_salvaged >= 1);
        assert_eq!(collection_digest(&loaded.collection), collection_digest(&cold));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_interner_falls_to_full_rebuild() {
        let dir = scratch("interner");
        let path = dir.join("index.snap");
        let cold = IndexedCollection::build(config(), 4, strings());
        write(&path, &cold).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let entries = section_directory(&bytes).unwrap();
        let interner = entries.iter().find(|e| e.name == "interner").unwrap();
        bytes[interner.offset + 1] ^= 0x04;
        std::fs::write(&path, &bytes).unwrap();
        let loaded = load(&path, &config(), 4, strings(), SalvageMode::Strict).unwrap();
        assert_eq!(loaded.report.rung, LoadRung::Rebuilt);
        assert!(loaded.report.corruptions_detected >= 1);
        assert_eq!(collection_digest(&loaded.collection), collection_digest(&cold));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_mismatch_refuses_with_diagnosis() {
        let dir = scratch("fp");
        let path = dir.join("index.snap");
        let cold = IndexedCollection::build(config(), 4, strings());
        write(&path, &cold).unwrap();
        // Same strings, different tau: the snapshot must be refused, not
        // silently rebuilt.
        let other = JoinConfig::new(2, 0.5);
        let err = load(&path, &other, 4, strings(), SalvageMode::Strict).unwrap_err();
        match err {
            SnapshotError::FingerprintMismatch { snapshot, run } => {
                assert_ne!(snapshot, run);
                let msg = err.to_string();
                assert!(msg.contains("fingerprint mismatch"), "{msg}");
            }
            other => panic!("expected fingerprint mismatch, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_fingerprint_line_breaks_header_digest_not_refusal() {
        // A bit flip inside the fingerprint hex must land on the rebuild
        // rung (corrupt header), not masquerade as an operator error.
        let dir = scratch("fpline");
        let path = dir.join("index.snap");
        let cold = IndexedCollection::build(config(), 4, strings());
        write(&path, &cold).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = SNAPSHOT_MAGIC.len() + 1 + "fingerprint ".len();
        bytes[pos] = if bytes[pos] == b'0' { b'1' } else { b'0' };
        std::fs::write(&path, &bytes).unwrap();
        let loaded = load(&path, &config(), 4, strings(), SalvageMode::Strict).unwrap();
        assert_eq!(loaded.report.rung, LoadRung::Rebuilt);
        assert_eq!(loaded.report.corruptions_detected, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_walks_checksums() {
        let dir = scratch("verify");
        let path = dir.join("index.snap");
        let cold = IndexedCollection::build(config(), 4, strings());
        write(&path, &cold).unwrap();
        let report = verify(&path).unwrap();
        assert!(report.ok, "{report:?}");
        assert!(report.sections.iter().all(|s| s.ok));
        let mut bytes = std::fs::read(&path).unwrap();
        let entries = section_directory(&bytes).unwrap();
        let band = entries.iter().find(|e| e.name.starts_with("band.")).unwrap();
        let name = band.name.clone();
        bytes[band.offset + band.len - 2] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let report = verify(&path).unwrap();
        assert!(!report.ok);
        assert!(report.diagnosis.contains(&name), "{report:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncation_at_every_quarter_is_detected() {
        let dir = scratch("trunc");
        let path = dir.join("index.snap");
        let cold = IndexedCollection::build(config(), 4, strings());
        write(&path, &cold).unwrap();
        let full = std::fs::read(&path).unwrap();
        for q in [1usize, 2, 3] {
            let cut = full.len() * q / 4;
            std::fs::write(&path, &full[..cut]).unwrap();
            let loaded = load(&path, &config(), 4, strings(), SalvageMode::Strict).unwrap();
            assert!(
                loaded.report.corruptions_detected >= 1,
                "truncation at {cut}/{} went undetected",
                full.len()
            );
            assert_eq!(
                collection_digest(&loaded.collection),
                collection_digest(&cold),
                "recovery after truncation at {cut} diverged"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_strings_roundtrip_through_a_segmentless_band() {
        let dir = scratch("empty");
        let path = dir.join("index.snap");
        let mut input = strings();
        input.push(UncertainString::empty());
        input.push(UncertainString::empty());
        let cold = IndexedCollection::build(config(), 4, input.clone());
        write(&path, &cold).unwrap();
        let loaded = load(&path, &config(), 4, input, SalvageMode::Strict).unwrap();
        assert_eq!(loaded.report.rung, LoadRung::Verified);
        assert_eq!(collection_digest(&loaded.collection), collection_digest(&cold));
        std::fs::remove_dir_all(&dir).ok();
    }
}
