//! Per-probe verifier dispatch shared by the join and search drivers.

use usj_model::{Prob, UncertainString};
use usj_verify::{naive_verify, LazyTrieVerifier, TrieVerifier};

use crate::config::{JoinConfig, VerifierKind};

/// A verifier instantiated once per probe and reused for all its
/// candidates.
#[derive(Debug)]
pub enum ProbeVerifier {
    /// Lazily materialised probe trie (default; our §6.2 extension).
    Lazy(LazyTrieVerifier),
    /// The paper's eager probe trie.
    Eager(TrieVerifier),
    /// All-pairs enumeration baseline (also the fallback when the eager
    /// trie would exceed its node cap).
    Naive,
}

impl ProbeVerifier {
    /// Builds the verifier `config` asks for.
    pub fn build(probe: &UncertainString, config: &JoinConfig) -> ProbeVerifier {
        match config.verifier {
            VerifierKind::LazyTrie => {
                let v = LazyTrieVerifier::new(probe, config.k, config.tau);
                ProbeVerifier::Lazy(if config.early_stop { v } else { v.without_early_stop() })
            }
            VerifierKind::Trie => {
                match TrieVerifier::new(probe, config.k, config.tau, config.max_trie_nodes) {
                    Some(v) => {
                        ProbeVerifier::Eager(if config.early_stop {
                            v
                        } else {
                            v.without_early_stop()
                        })
                    }
                    None => ProbeVerifier::Naive,
                }
            }
            VerifierKind::Naive => ProbeVerifier::Naive,
        }
    }

    /// Decides `Pr(ed(probe, other) ≤ k) > τ`, returning the decision and
    /// the accumulated probability (a lower bound under early
    /// termination, exact otherwise).
    pub fn verify(
        &mut self,
        probe: &UncertainString,
        other: &UncertainString,
        config: &JoinConfig,
    ) -> (bool, Prob) {
        match self {
            ProbeVerifier::Lazy(v) => {
                let out = v.verify(other);
                (out.similar, out.prob)
            }
            ProbeVerifier::Eager(v) => {
                let out = v.verify(other);
                (out.similar, out.prob)
            }
            ProbeVerifier::Naive => {
                let out = naive_verify(probe, other, config.k, config.tau, config.early_stop);
                (out.similar, out.prob)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_model::Alphabet;

    fn dna(text: &str) -> UncertainString {
        UncertainString::parse(text, &Alphabet::dna()).unwrap()
    }

    #[test]
    fn all_kinds_agree() {
        let r = dna("AC{(G,0.5),(T,0.5)}TAC");
        let s = dna("ACGTAC");
        for kind in [VerifierKind::LazyTrie, VerifierKind::Trie, VerifierKind::Naive] {
            let config = JoinConfig::new(1, 0.3).with_verifier(kind);
            let mut v = ProbeVerifier::build(&r, &config);
            let (similar, prob) = v.verify(&r, &s, &config);
            assert!(similar, "{kind:?}");
            assert!(prob > 0.3);
        }
    }

    #[test]
    fn eager_over_cap_falls_back_to_naive() {
        let r = dna("{(A,0.5),(C,0.5)}{(A,0.5),(C,0.5)}{(A,0.5),(C,0.5)}");
        let mut config = JoinConfig::new(1, 0.3).with_verifier(VerifierKind::Trie);
        config.max_trie_nodes = 2;
        let v = ProbeVerifier::build(&r, &config);
        assert!(matches!(v, ProbeVerifier::Naive));
    }
}
