//! Per-probe verifier dispatch shared by the join and search drivers,
//! plus the shared (instrumented) CDF-then-verify candidate decision.

use usj_cdf::{CdfDecision, CdfFilter};
use usj_editdist::within_k_auto;
use usj_model::{Prob, Symbol, UncertainString};
use usj_obs::{Counter, NoopRecorder, Phase, Recorder};
use usj_verify::{naive_verify, LazyTrieVerifier, TrieVerifier};

use crate::config::{JoinConfig, VerifierKind};
use crate::record::Recording;

/// A verifier instantiated once per probe and reused for all its
/// candidates.
#[derive(Debug)]
pub enum ProbeVerifier {
    /// Lazily materialised probe trie (default; our §6.2 extension).
    Lazy(LazyTrieVerifier),
    /// The paper's eager probe trie.
    Eager(TrieVerifier),
    /// All-pairs enumeration baseline (also the fallback when the eager
    /// trie would exceed its node cap).
    Naive,
    /// Deterministic-probe fast path: against a deterministic candidate
    /// the match probability is 0 or 1, decided by one bit-parallel
    /// bounded edit-distance check (Myers 1999); uncertain candidates
    /// delegate to the wrapped verifier.
    Deterministic {
        /// The probe's single world.
        instance: Vec<Symbol>,
        /// Fallback for uncertain candidates.
        inner: Box<ProbeVerifier>,
    },
}

impl ProbeVerifier {
    /// Builds the verifier `config` asks for.
    pub fn build(probe: &UncertainString, config: &JoinConfig) -> ProbeVerifier {
        ProbeVerifier::build_recorded(probe, config, &mut NoopRecorder)
    }

    /// [`ProbeVerifier::build`] plus a [`Counter::VerifierBuilds`] event
    /// on `rec` (the lazy per-probe construction count — probes whose
    /// candidates are all filtered out never build one).
    pub fn build_recorded<R: Recorder>(
        probe: &UncertainString,
        config: &JoinConfig,
        rec: &mut R,
    ) -> ProbeVerifier {
        rec.counter(Counter::VerifierBuilds, 1);
        let base = match config.verifier {
            VerifierKind::LazyTrie => {
                let v = LazyTrieVerifier::new(probe, config.k, config.tau);
                ProbeVerifier::Lazy(if config.early_stop {
                    v
                } else {
                    v.without_early_stop()
                })
            }
            VerifierKind::Trie => {
                match TrieVerifier::new(probe, config.k, config.tau, config.max_trie_nodes) {
                    Some(v) => ProbeVerifier::Eager(if config.early_stop {
                        v
                    } else {
                        v.without_early_stop()
                    }),
                    None => ProbeVerifier::Naive,
                }
            }
            VerifierKind::Naive => ProbeVerifier::Naive,
        };
        if probe.is_deterministic() {
            ProbeVerifier::Deterministic {
                instance: probe.most_probable_world().instance,
                inner: Box::new(base),
            }
        } else {
            base
        }
    }

    /// Decides `Pr(ed(probe, other) ≤ k) > τ`, returning the decision and
    /// the accumulated probability (a lower bound under early
    /// termination, exact otherwise).
    pub fn verify(
        &mut self,
        probe: &UncertainString,
        other: &UncertainString,
        config: &JoinConfig,
    ) -> (bool, Prob) {
        match self {
            ProbeVerifier::Lazy(v) => {
                let out = v.verify(other);
                (out.similar, out.prob)
            }
            ProbeVerifier::Eager(v) => {
                let out = v.verify(other);
                (out.similar, out.prob)
            }
            ProbeVerifier::Naive => {
                let out = naive_verify(probe, other, config.k, config.tau, config.early_stop);
                (out.similar, out.prob)
            }
            ProbeVerifier::Deterministic { instance, inner } => {
                if other.is_deterministic() {
                    let world = other.most_probable_world().instance;
                    let prob = if within_k_auto(instance, &world, config.k) {
                        1.0
                    } else {
                        0.0
                    };
                    (prob > config.tau, prob)
                } else {
                    inner.verify(probe, other, config)
                }
            }
        }
    }
}

/// The shared decision tail applied to one surviving candidate: CDF
/// bounds first, exact verification only when they are inconclusive (or
/// when exact-probability mode verifies accepts too). Returns `None` when
/// the CDF bound rejects the pair, otherwise `Some((similar, prob))`.
///
/// Both drivers ([`crate::SimilarityJoin::self_join`] and
/// [`crate::IndexedCollection::search_filtered`]) route candidates through
/// this one function, so the CDF/verify counters and phase spans cannot
/// diverge between them.
pub(crate) fn decide_candidate<R: Recorder>(
    probe: &UncertainString,
    other: &UncertainString,
    cdf_filter: &CdfFilter,
    verifier: &mut Option<ProbeVerifier>,
    config: &JoinConfig,
    rec: &mut Recording<'_, R>,
) -> Option<(bool, Prob)> {
    let mut decided: Option<(bool, Prob)> = None;
    if config.pipeline.uses_cdf() {
        let span = rec.begin(Phase::Cdf);
        let out = cdf_filter.evaluate(probe, other);
        rec.end(span);
        match out.decision {
            CdfDecision::Reject => {
                rec.count(Counter::CdfRejected, 1);
                return None;
            }
            CdfDecision::Accept if config.early_stop => {
                rec.count(Counter::CdfAccepted, 1);
                decided = Some((true, out.bounds.at_k().0));
            }
            CdfDecision::Accept => {
                // Exact-probability mode verifies accepted pairs too (the
                // count still reflects the filter's power).
                rec.count(Counter::CdfAccepted, 1);
            }
            CdfDecision::Undecided => {
                rec.count(Counter::CdfUndecided, 1);
            }
        }
    } else {
        rec.count(Counter::CdfUndecided, 1);
    }
    let (similar, prob) = match decided {
        Some(d) => d,
        None => {
            let span = rec.begin(Phase::Verify);
            let v = verifier.get_or_insert_with(|| {
                ProbeVerifier::build_recorded(probe, config, rec.recorder())
            });
            let (similar, prob) = v.verify(probe, other, config);
            rec.end(span);
            rec.count(
                if similar {
                    Counter::VerifiedSimilar
                } else {
                    Counter::VerifiedDissimilar
                },
                1,
            );
            (similar, prob)
        }
    };
    Some((similar, prob))
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_model::Alphabet;

    fn dna(text: &str) -> UncertainString {
        UncertainString::parse(text, &Alphabet::dna()).unwrap()
    }

    #[test]
    fn all_kinds_agree() {
        let r = dna("AC{(G,0.5),(T,0.5)}TAC");
        let s = dna("ACGTAC");
        for kind in [
            VerifierKind::LazyTrie,
            VerifierKind::Trie,
            VerifierKind::Naive,
        ] {
            let config = JoinConfig::new(1, 0.3).with_verifier(kind);
            let mut v = ProbeVerifier::build(&r, &config);
            let (similar, prob) = v.verify(&r, &s, &config);
            assert!(similar, "{kind:?}");
            assert!(prob > 0.3);
        }
    }

    #[test]
    fn deterministic_probe_takes_fast_path_and_agrees() {
        let r = dna("ACGTAC");
        let mut config = JoinConfig::new(1, 0.3);
        config.early_stop = false;
        let mut v = ProbeVerifier::build(&r, &config);
        assert!(matches!(v, ProbeVerifier::Deterministic { .. }));
        // Deterministic candidates: one Myers check; uncertain ones
        // delegate to the wrapped verifier. Both must agree with naive.
        for text in ["ACGTAC", "ACGTTC", "TTTTTT", "AC{(G,0.5),(T,0.5)}TAC"] {
            let s = dna(text);
            let (similar, prob) = v.verify(&r, &s, &config);
            let naive = naive_verify(&r, &s, config.k, config.tau, false);
            assert_eq!(similar, naive.similar, "{text}");
            assert!((prob - naive.prob).abs() < 1e-12, "{text}");
        }
    }

    #[test]
    fn eager_over_cap_falls_back_to_naive() {
        let r = dna("{(A,0.5),(C,0.5)}{(A,0.5),(C,0.5)}{(A,0.5),(C,0.5)}");
        let mut config = JoinConfig::new(1, 0.3).with_verifier(VerifierKind::Trie);
        config.max_trie_nodes = 2;
        let v = ProbeVerifier::build(&r, &config);
        assert!(matches!(v, ProbeVerifier::Naive));
    }
}
