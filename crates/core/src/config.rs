//! Join configuration.

use usj_qgram::{AlphaMode, SelectionPolicy};

/// Which filter stages run before verification (paper §7's algorithm
/// variants). Every variant ends with trie-based verification (T).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Pipeline {
    /// q-gram + frequency + CDF + trie verification (all filters — the
    /// paper's best performer).
    #[default]
    Qfct,
    /// q-gram + CDF + trie verification (skips frequency distance).
    Qct,
    /// q-gram + frequency + trie verification (skips CDF bounds).
    Qft,
    /// frequency + CDF + trie verification (skips q-gram indexing; every
    /// length-compatible visited string is a candidate).
    Fct,
}

impl Pipeline {
    /// `true` when q-gram filtering (and the segment index) is used.
    pub fn uses_qgram(self) -> bool {
        !matches!(self, Pipeline::Fct)
    }

    /// `true` when frequency-distance filtering runs.
    pub fn uses_freq(self) -> bool {
        !matches!(self, Pipeline::Qct)
    }

    /// `true` when CDF-bound filtering runs.
    pub fn uses_cdf(self) -> bool {
        !matches!(self, Pipeline::Qft)
    }

    /// The paper's acronym for the variant.
    pub fn acronym(self) -> &'static str {
        match self {
            Pipeline::Qfct => "QFCT",
            Pipeline::Qct => "QCT",
            Pipeline::Qft => "QFT",
            Pipeline::Fct => "FCT",
        }
    }

    /// All four variants, for sweeps.
    pub fn all() -> [Pipeline; 4] {
        [Pipeline::Qfct, Pipeline::Qct, Pipeline::Qft, Pipeline::Fct]
    }
}

/// Which exact verifier decides undecided pairs (paper §7.7 compares
/// trie vs naive; `LazyTrie` is this implementation's extension and the
/// default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifierKind {
    /// Trie verification with a **lazily materialised** probe trie — the
    /// paper's §6.2 algorithm with its "build `T_R` completely" cost
    /// removed (listed there as future work). Strictly dominates `Trie`.
    #[default]
    LazyTrie,
    /// The paper's verifier: eager (complete) probe trie with on-demand
    /// `T_S` expansion (§6.2). Falls back to `Naive` when the probe trie
    /// would exceed [`JoinConfig::max_trie_nodes`].
    Trie,
    /// All-pairs enumeration with banded DP (the baseline).
    Naive,
}

/// Configuration for [`crate::SimilarityJoin`] /
/// [`crate::IndexedCollection`].
#[derive(Debug, Clone)]
pub struct JoinConfig {
    /// Edit-distance threshold `k`.
    pub k: usize,
    /// Probability threshold `τ`: report pairs with `Pr(ed ≤ k) > τ`.
    pub tau: f64,
    /// q-gram length (the paper finds `q = 3` or `4` best; default 3).
    pub q: usize,
    /// Window-start selection policy for `q(r, x)`.
    pub policy: SelectionPolicy,
    /// How segment-match probabilities combine duplicate window instances.
    pub alpha_mode: AlphaMode,
    /// Which filter stages run.
    pub pipeline: Pipeline,
    /// Which exact verifier runs last.
    pub verifier: VerifierKind,
    /// Early accept/reject inside verification (keeps outputs correct;
    /// reported probabilities become lower bounds). Disable to obtain the
    /// exact probability for every reported pair.
    pub early_stop: bool,
    /// Cap on enumerated instances per segment/window; segments exceeding
    /// it are treated conservatively (never pruned by that segment).
    pub max_segment_instances: usize,
    /// Cap on probe trie nodes; probes exceeding it fall back to the
    /// naive verifier.
    pub max_trie_nodes: usize,
    /// Smallest work-stealing batch the parallel driver hands a worker
    /// (reached near the tail, where per-probe cost is highest).
    pub batch_min: usize,
    /// Largest work-stealing batch (used while plenty of probes remain;
    /// also the per-worker sizing target for automatic wave planning).
    pub batch_max: usize,
    /// Distinct string lengths per parallel wave. `0` (the default) sizes
    /// waves automatically so each holds enough probes to feed every
    /// worker; explicit values trade scheduling overhead (small bands)
    /// against peak resident index memory (large bands).
    pub shard_band: usize,
    /// Wall-clock budget for the joining drivers with an error channel:
    /// the fault-tolerant parallel driver checks it at batch granularity,
    /// the sequential `try_self_join` drivers between probes. `None`
    /// (the default) never times out; when exceeded, the run ends with a
    /// clean partial-result error (and a checkpoint, if checkpointing is
    /// on) instead of hanging on a pathological probe. The classic
    /// panicking APIs (`self_join`, `par_self_join`) ignore it.
    pub deadline: Option<std::time::Duration>,
}

impl JoinConfig {
    /// Creates a configuration with the paper's defaults (`q = 3`, all
    /// filters, trie verification, early termination on).
    pub fn new(k: usize, tau: f64) -> Self {
        assert!((0.0..=1.0).contains(&tau), "tau must lie in [0, 1]");
        JoinConfig {
            k,
            tau,
            q: 3,
            policy: SelectionPolicy::default(),
            alpha_mode: AlphaMode::default(),
            pipeline: Pipeline::default(),
            verifier: VerifierKind::default(),
            early_stop: true,
            max_segment_instances: 1 << 14,
            max_trie_nodes: 1 << 22,
            batch_min: 1,
            batch_max: 32,
            shard_band: 0,
            deadline: None,
        }
    }

    /// Sets the q-gram length.
    pub fn with_q(mut self, q: usize) -> Self {
        assert!(q >= 1, "q must be at least 1");
        self.q = q;
        self
    }

    /// Sets the pipeline variant.
    pub fn with_pipeline(mut self, pipeline: Pipeline) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Sets the verifier kind.
    pub fn with_verifier(mut self, verifier: VerifierKind) -> Self {
        self.verifier = verifier;
        self
    }

    /// Sets the selection policy.
    pub fn with_policy(mut self, policy: SelectionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the α computation mode.
    pub fn with_alpha_mode(mut self, mode: AlphaMode) -> Self {
        self.alpha_mode = mode;
        self
    }

    /// Enables/disables early termination in verification.
    pub fn with_early_stop(mut self, on: bool) -> Self {
        self.early_stop = on;
        self
    }

    /// Sets the parallel driver's work-stealing batch-size range.
    pub fn with_batch_range(mut self, min: usize, max: usize) -> Self {
        assert!(min >= 1, "batch_min must be at least 1");
        assert!(max >= min, "batch_max must be at least batch_min");
        self.batch_min = min;
        self.batch_max = max;
        self
    }

    /// Sets the number of distinct lengths per parallel wave (0 = auto).
    pub fn with_shard_band(mut self, band: usize) -> Self {
        self.shard_band = band;
        self
    }

    /// Sets the wall-clock deadline for the fault-tolerant parallel
    /// driver and the sequential `try_self_join` drivers
    /// (`None` = no limit).
    pub fn with_deadline(mut self, deadline: Option<std::time::Duration>) -> Self {
        self.deadline = deadline;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_stage_flags() {
        assert!(
            Pipeline::Qfct.uses_qgram() && Pipeline::Qfct.uses_freq() && Pipeline::Qfct.uses_cdf()
        );
        assert!(!Pipeline::Qct.uses_freq());
        assert!(!Pipeline::Qft.uses_cdf());
        assert!(!Pipeline::Fct.uses_qgram());
        assert_eq!(Pipeline::Fct.acronym(), "FCT");
        assert_eq!(Pipeline::all().len(), 4);
    }

    #[test]
    fn defaults_match_paper() {
        let c = JoinConfig::new(2, 0.1);
        assert_eq!(c.q, 3);
        assert_eq!(c.pipeline, Pipeline::Qfct);
        assert_eq!(c.verifier, VerifierKind::LazyTrie);
        assert!(c.early_stop);
    }

    #[test]
    #[should_panic(expected = "tau must lie in [0, 1]")]
    fn bad_tau_panics() {
        JoinConfig::new(1, 2.0);
    }

    #[test]
    fn scheduler_knob_defaults_and_builders() {
        let c = JoinConfig::new(2, 0.1);
        assert_eq!(c.batch_min, 1);
        assert_eq!(c.batch_max, 32);
        assert_eq!(c.shard_band, 0);
        let c = c.with_batch_range(2, 16).with_shard_band(3);
        assert_eq!((c.batch_min, c.batch_max, c.shard_band), (2, 16, 3));
    }

    #[test]
    #[should_panic(expected = "batch_max must be at least batch_min")]
    fn inverted_batch_range_panics() {
        JoinConfig::new(1, 0.1).with_batch_range(8, 4);
    }
}
