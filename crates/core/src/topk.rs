//! Top-k similarity search.
//!
//! Returns the `k_results` collection strings with the highest exact
//! `Pr(ed ≤ k)` (above the configuration's τ floor), without computing
//! the exact probability for every candidate. The strategy is
//! threshold-algorithm-shaped:
//!
//! 1. generate candidates through the segment index as usual;
//! 2. compute each candidate's CDF **upper bound** (cheap) and sort
//!    descending;
//! 3. verify candidates exactly, in that order, until the current k-th
//!    best exact probability is at least the next candidate's upper
//!    bound — no unverified candidate can displace the current top k.
//!
//! Verification runs without early termination (exact probabilities are
//! needed for ranking), so top-k is most useful with selective `k`/`τ`.

use usj_cdf::cdf_bounds;
use usj_model::{Prob, UncertainString};

use crate::collection::{IndexedCollection, SearchHit};
use crate::verifier::ProbeVerifier;

impl IndexedCollection {
    /// The `limit` most similar strings to `probe` by exact
    /// `Pr(ed ≤ k)`, all strictly above the configuration's τ. Sorted by
    /// probability descending, ties by id ascending.
    pub fn search_top_k(&self, probe: &UncertainString, limit: usize) -> Vec<SearchHit> {
        if limit == 0 || self.is_empty() {
            return Vec::new();
        }
        let mut config = self.config().clone();
        // Exact probabilities are required for ranking.
        config.early_stop = false;

        // Stage 1: candidate ids (the plain search machinery up to and
        // including the frequency filter).
        let candidates = self.filter_candidates(probe);

        // Stage 2: order by CDF upper bound.
        let mut scored: Vec<(u32, Prob)> = candidates
            .into_iter()
            .filter_map(|id| {
                let bounds = cdf_bounds(probe, &self.strings()[id as usize], config.k);
                let (_, upper) = bounds.at_k();
                (upper > config.tau).then_some((id, upper))
            })
            .collect();
        scored.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));

        // Stage 3: verify in bound order with the threshold-algorithm
        // stopping rule.
        let mut verifier = ProbeVerifier::build(probe, &config);
        let mut top: Vec<SearchHit> = Vec::new();
        for (id, upper) in scored {
            if top.len() >= limit {
                let kth = top.last().map(|h| h.prob).unwrap_or(0.0);
                // Strict inequality: a candidate whose exact probability
                // *equals* the current k-th best can still displace it via
                // the id tie-break, so ties must be verified.
                if kth > upper {
                    break; // no remaining candidate can enter the top k
                }
            }
            let (similar, prob) = verifier.verify(probe, &self.strings()[id as usize], &config);
            if similar && prob > config.tau {
                top.push(SearchHit { id, prob });
                top.sort_unstable_by(|a, b| {
                    b.prob.partial_cmp(&a.prob).unwrap().then(a.id.cmp(&b.id))
                });
                top.truncate(limit);
            }
        }
        top
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::JoinConfig;
    use usj_model::Alphabet;
    use usj_verify::exact_similarity_prob;

    fn dna(text: &str) -> UncertainString {
        UncertainString::parse(text, &Alphabet::dna()).unwrap()
    }

    fn collection() -> Vec<UncertainString> {
        vec![
            dna("ACGTACGT"),
            dna("ACG{(T,0.9),(G,0.1)}ACGT"),
            dna("ACG{(T,0.5),(G,0.5)}ACGT"),
            dna("ACGTACGA"),
            dna("TTTTTTTT"),
            dna("ACGTAGGA"),
        ]
    }

    fn oracle_top_k(
        strings: &[UncertainString],
        probe: &UncertainString,
        k: usize,
        tau: f64,
        limit: usize,
    ) -> Vec<(u32, f64)> {
        let mut all: Vec<(u32, f64)> = strings
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, exact_similarity_prob(probe, s, k)))
            .filter(|&(_, p)| p > tau)
            .collect();
        all.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        all.truncate(limit);
        all
    }

    #[test]
    fn top_k_matches_oracle() {
        let strings = collection();
        let coll = IndexedCollection::build(JoinConfig::new(2, 0.05), 4, strings.clone());
        let probe = dna("ACGTACGT");
        for limit in [1usize, 2, 3, 10] {
            let got: Vec<(u32, f64)> = coll
                .search_top_k(&probe, limit)
                .into_iter()
                .map(|h| (h.id, h.prob))
                .collect();
            let want = oracle_top_k(&strings, &probe, 2, 0.05, limit);
            assert_eq!(got.len(), want.len(), "limit={limit}");
            for ((gi, gp), (wi, wp)) in got.iter().zip(&want) {
                assert_eq!(gi, wi, "limit={limit}");
                assert!((gp - wp).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn limit_zero_and_empty() {
        let coll = IndexedCollection::build(JoinConfig::new(2, 0.05), 4, collection());
        assert!(coll.search_top_k(&dna("ACGTACGT"), 0).is_empty());
        let empty = IndexedCollection::build(JoinConfig::new(2, 0.05), 4, Vec::new());
        assert!(empty.search_top_k(&dna("ACGT"), 3).is_empty());
    }

    #[test]
    fn respects_tau_floor() {
        let coll = IndexedCollection::build(JoinConfig::new(0, 0.6), 4, collection());
        // At k = 0 only near-identical strings qualify; τ = 0.6 excludes
        // the 50/50 variant.
        let hits = coll.search_top_k(&dna("ACGTACGT"), 10);
        assert!(hits.iter().all(|h| h.prob > 0.6));
        assert!(hits.iter().any(|h| h.id == 0));
        assert!(!hits.iter().any(|h| h.id == 2), "{hits:?}");
    }

    #[test]
    fn exact_probability_ties_break_by_id() {
        // Two identical strings tie at probability 1; limit 1 must return
        // the smaller id even though the larger one may be verified first.
        let strings = vec![dna("TTTT"), dna("ACGTACGT"), dna("ACGTACGT")];
        let coll = IndexedCollection::build(JoinConfig::new(1, 0.1), 4, strings);
        let hits = coll.search_top_k(&dna("ACGTACGT"), 1);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 1, "{hits:?}");
        assert!((hits[0].prob - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ordering_is_by_probability() {
        let coll = IndexedCollection::build(JoinConfig::new(1, 0.01), 4, collection());
        let hits = coll.search_top_k(&dna("ACGTACGT"), 10);
        assert!(hits.windows(2).all(|w| w[0].prob >= w[1].prob - 1e-12));
    }
}
