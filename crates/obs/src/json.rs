//! A tiny hand-rolled JSON emitter (no serde — this crate must build with
//! zero crates.io dependencies).
//!
//! Only what snapshots need: objects, string/integer/float values, and
//! 2-space pretty-printing with insertion-ordered keys so the output is
//! schema-stable and diffable.

use std::fmt::Write as _;

/// Builds a JSON document into a `String`. Keys appear in insertion
/// order; the caller is responsible for not repeating keys.
#[derive(Debug)]
pub struct JsonWriter {
    out: String,
    /// Per-open-scope flag: has this scope already emitted an entry?
    stack: Vec<bool>,
}

impl Default for JsonWriter {
    fn default() -> Self {
        JsonWriter::new()
    }
}

impl JsonWriter {
    /// Starts a document with one open root object.
    pub fn new() -> Self {
        JsonWriter {
            out: String::from("{"),
            stack: vec![false],
        }
    }

    fn indent(&mut self) {
        for _ in 0..self.stack.len() {
            self.out.push_str("  ");
        }
    }

    fn key(&mut self, name: &str) {
        let first = self.stack.last_mut().expect("scope open");
        if *first {
            self.out.push(',');
        }
        *first = true;
        self.out.push('\n');
        self.indent();
        self.out.push('"');
        escape_into(&mut self.out, name);
        self.out.push_str("\": ");
    }

    /// `"name": <unsigned integer>`.
    pub fn field_u64(&mut self, name: &str, value: u64) -> &mut Self {
        self.key(name);
        let _ = write!(self.out, "{value}");
        self
    }

    /// `"name": <string>` (escaped).
    pub fn field_str(&mut self, name: &str, value: &str) -> &mut Self {
        self.key(name);
        self.out.push('"');
        escape_into(&mut self.out, value);
        self.out.push('"');
        self
    }

    /// `"name": <float>`, printed with enough digits to round-trip; NaN
    /// and infinities (not valid JSON) are emitted as `null`.
    pub fn field_f64(&mut self, name: &str, value: f64) -> &mut Self {
        self.key(name);
        if value.is_finite() {
            let mut tok = String::new();
            let _ = write!(tok, "{value}");
            // `{}` on f64 omits the decimal point for integral values;
            // keep the token a float so readers infer a stable type.
            if !tok.contains(['.', 'e', 'E']) {
                tok.push_str(".0");
            }
            self.out.push_str(&tok);
        } else {
            self.out.push_str("null");
        }
        self
    }

    /// Opens `"name": { … }`; close with [`JsonWriter::end_object`].
    pub fn begin_object(&mut self, name: &str) -> &mut Self {
        self.key(name);
        self.out.push('{');
        self.stack.push(false);
        self
    }

    /// Closes the innermost object opened by [`JsonWriter::begin_object`].
    pub fn end_object(&mut self) -> &mut Self {
        let had_entries = self.stack.pop().expect("scope open");
        assert!(
            !self.stack.is_empty(),
            "cannot close the root object; use finish()"
        );
        if had_entries {
            self.out.push('\n');
            self.indent();
        }
        self.out.push('}');
        self
    }

    /// Closes the root object and returns the document.
    pub fn finish(mut self) -> String {
        assert_eq!(self.stack.len(), 1, "unclosed nested object");
        if self.stack[0] {
            self.out.push('\n');
        }
        self.out.push_str("}\n");
        self.out
    }
}

/// Escapes `s` into `out` per RFC 8259 (quotes, backslashes, control
/// characters).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_object() {
        let mut w = JsonWriter::new();
        w.field_u64("a", 1).field_str("b", "x\"y\\z\n");
        let s = w.finish();
        assert_eq!(s, "{\n  \"a\": 1,\n  \"b\": \"x\\\"y\\\\z\\n\"\n}\n");
    }

    #[test]
    fn nested_objects_and_empty() {
        let mut w = JsonWriter::new();
        w.begin_object("outer");
        w.field_u64("n", 2);
        w.begin_object("empty");
        w.end_object();
        w.end_object();
        let s = w.finish();
        assert_eq!(
            s,
            "{\n  \"outer\": {\n    \"n\": 2,\n    \"empty\": {}\n  }\n}\n"
        );
    }

    #[test]
    fn empty_document() {
        assert_eq!(JsonWriter::new().finish(), "{}\n");
    }

    #[test]
    fn floats_round_trip_and_stay_floats() {
        let mut w = JsonWriter::new();
        w.field_f64("half", 0.5)
            .field_f64("whole", 3.0)
            .field_f64("bad", f64::NAN);
        let s = w.finish();
        assert!(s.contains("\"half\": 0.5"), "{s}");
        assert!(s.contains("\"whole\": 3.0"), "{s}");
        assert!(s.contains("\"bad\": null"), "{s}");
    }

    #[test]
    fn control_characters_escaped() {
        let mut w = JsonWriter::new();
        w.field_str("c", "\u{1}");
        assert!(w.finish().contains("\\u0001"));
    }
}
