//! Fixed-seed micro-benchmark harness with a schema-stable JSON report.
//!
//! The ROADMAP's benchmark trajectory wants one `BENCH_<label>.json`
//! per PR at the repo root, diffable across commits: same benches, same
//! keys, only the numbers move. This module is the std-only substrate —
//! the timing loop ([`run`]), the report ([`BenchReport::to_json`] /
//! [`BenchReport::parse`]), and the regression gate ([`compare_reports`])
//! used by `scripts/bench-compare.sh`. The kernel suites themselves live
//! next to the kernels (`usj_core::bench`); the `usj bench` subcommand
//! and `bench_kernels` binary drive them.
//!
//! # Report schema (`schema_version` 1)
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "label": "baseline",
//!   "seed": 1397508931,
//!   "benches": [
//!     {"name": "edit_distance_banded", "warmup": 3, "iters": 30,
//!      "mean_ns": 812, "median_ns": 799, "min_ns": 790, "max_ns": 1204}
//!   ]
//! }
//! ```
//!
//! Every bench entry is rendered on one line so the report stays
//! greppable and the parser line-oriented; entries appear in run order.

use std::time::Instant;

/// Warmup/measurement iteration counts for one bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchSpec {
    /// Untimed warmup calls before measurement (cache/branch warm).
    pub warmup: u32,
    /// Timed iterations; the report stores their mean/median/min/max.
    pub iters: u32,
}

/// One bench's timing summary, in nanoseconds per iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchResult {
    /// Stable bench name (snake_case; the compare key).
    pub name: String,
    /// Warmup iterations that ran before measurement.
    pub warmup: u32,
    /// Timed iterations summarised below.
    pub iters: u32,
    /// Mean wall-clock per iteration.
    pub mean_ns: u64,
    /// Median wall-clock per iteration — the regression-gated statistic.
    pub median_ns: u64,
    /// Fastest iteration.
    pub min_ns: u64,
    /// Slowest iteration.
    pub max_ns: u64,
}

/// Times `f` under `spec` and summarises the per-iteration wall-clock.
/// Wrap computed values in `std::hint::black_box` inside `f` so the
/// optimiser cannot delete the work.
pub fn run<F: FnMut()>(name: &str, spec: BenchSpec, mut f: F) -> BenchResult {
    let iters = spec.iters.max(1);
    for _ in 0..spec.warmup {
        f();
    }
    let mut samples: Vec<u64> = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let start = Instant::now();
        f();
        samples.push(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
    }
    summarise(name, spec.warmup, iters, samples)
}

/// Sorts the raw samples and produces the report entry. Split from
/// [`run`] so the statistics are testable on hand-built samples.
fn summarise(name: &str, warmup: u32, iters: u32, mut samples: Vec<u64>) -> BenchResult {
    samples.sort_unstable();
    // u128 accumulation: the sum of u64 samples cannot overflow, so the
    // mean is exact (the old saturating u64 fold silently flattened it).
    let sum: u128 = samples.iter().map(|&s| u128::from(s)).sum();
    let len = samples.len();
    // Even sample counts take the midpoint of the two middle samples —
    // `samples[len / 2]` alone is biased half a rank high.
    let median_ns = if len % 2 == 0 {
        ((u128::from(samples[len / 2 - 1]) + u128::from(samples[len / 2])) / 2) as u64
    } else {
        samples[len / 2]
    };
    BenchResult {
        name: name.to_string(),
        warmup,
        iters,
        mean_ns: (sum / u128::from(iters)) as u64,
        median_ns,
        min_ns: samples[0],
        max_ns: samples[len - 1],
    }
}

/// Version stamp of the report layout; bump on any key change.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// A labelled collection of bench results, serialisable as the
/// schema-stable `BENCH_<label>.json` document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchReport {
    /// Report label (the `<label>` in `BENCH_<label>.json`).
    pub label: String,
    /// The fixed RNG seed the suite ran with.
    pub seed: u64,
    /// Results in run order.
    pub benches: Vec<BenchResult>,
}

impl BenchReport {
    /// An empty report.
    pub fn new(label: &str, seed: u64) -> Self {
        BenchReport {
            label: label.to_string(),
            seed,
            benches: Vec::new(),
        }
    }

    /// Renders the schema-stable JSON document (see module docs).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"schema_version\": {BENCH_SCHEMA_VERSION},\n"
        ));
        out.push_str(&format!("  \"label\": \"{}\",\n", escape(&self.label)));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str("  \"benches\": [\n");
        for (i, b) in self.benches.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"warmup\": {}, \"iters\": {}, \"mean_ns\": {}, \
                 \"median_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}{}\n",
                escape(&b.name),
                b.warmup,
                b.iters,
                b.mean_ns,
                b.median_ns,
                b.min_ns,
                b.max_ns,
                if i + 1 == self.benches.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a document produced by [`BenchReport::to_json`]. The parser
    /// is deliberately line-oriented (one bench entry per line) rather
    /// than a general JSON reader — this crate is std-only.
    pub fn parse(text: &str) -> Result<BenchReport, String> {
        let version = u64_field(text, "schema_version")
            .ok_or_else(|| "missing schema_version".to_string())?;
        if version != BENCH_SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {version} (expected {BENCH_SCHEMA_VERSION})"
            ));
        }
        let label = str_field(text, "label").ok_or_else(|| "missing label".to_string())?;
        let seed = u64_field(text, "seed").ok_or_else(|| "missing seed".to_string())?;
        let mut benches = Vec::new();
        for line in text.lines() {
            let Some(name) = str_field(line, "name") else {
                continue;
            };
            let want = |key: &str| {
                u64_field(line, key).ok_or_else(|| format!("bench {name:?}: missing {key}"))
            };
            benches.push(BenchResult {
                warmup: want("warmup")? as u32,
                iters: want("iters")? as u32,
                mean_ns: want("mean_ns")?,
                median_ns: want("median_ns")?,
                min_ns: want("min_ns")?,
                max_ns: want("max_ns")?,
                name,
            });
        }
        Ok(BenchReport {
            label,
            seed,
            benches,
        })
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .filter(|c| *c != '"' && *c != '\\' && !c.is_control())
        .collect()
}

/// Extracts the number following `"key": ` in `text` (first occurrence).
fn u64_field(text: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\": ");
    let rest = &text[text.find(&pat)? + pat.len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the string following `"key": "` in `text` (first occurrence).
fn str_field(text: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let rest = &text[text.find(&pat)? + pat.len()..];
    Some(rest[..rest.find('"')?].to_string())
}

/// One bench's baseline-vs-new verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareLine {
    /// Bench name (compare key).
    pub name: String,
    /// Human-readable `name: base=… new=… (+x.y%)` line.
    pub rendered: String,
    /// `true` when the median regressed past the threshold.
    pub regressed: bool,
}

/// Compares two reports bench-by-bench on **median** nanoseconds; a bench
/// regresses when `new > base * (1 + threshold)` (`threshold` 0.15 =
/// the 15% gate `scripts/bench-compare.sh` enforces). Benches present in
/// the baseline but missing from the new report also count as
/// regressions — a deleted bench must be removed from the baseline
/// deliberately, not silently. The converse is not an error: benches in
/// the new report with no baseline entry (a freshly added kernel) get an
/// informational line with `regressed = false`, since a stale baseline
/// must not block the suite from growing.
pub fn compare_reports(base: &BenchReport, new: &BenchReport, threshold: f64) -> Vec<CompareLine> {
    let mut lines = Vec::new();
    for b in &base.benches {
        let Some(n) = new.benches.iter().find(|n| n.name == b.name) else {
            lines.push(CompareLine {
                name: b.name.clone(),
                rendered: format!("{}: missing from new report", b.name),
                regressed: true,
            });
            continue;
        };
        let delta_pct = if b.median_ns == 0 {
            0.0
        } else {
            (n.median_ns as f64 - b.median_ns as f64) / b.median_ns as f64 * 100.0
        };
        let regressed = b.median_ns > 0 && delta_pct > threshold * 100.0;
        lines.push(CompareLine {
            name: b.name.clone(),
            rendered: format!(
                "{}: base={}ns new={}ns ({}{:.1}%){}",
                b.name,
                b.median_ns,
                n.median_ns,
                if delta_pct >= 0.0 { "+" } else { "" },
                delta_pct,
                if regressed { " REGRESSION" } else { "" }
            ),
            regressed,
        });
    }
    for n in &new.benches {
        if !base.benches.iter().any(|b| b.name == n.name) {
            lines.push(CompareLine {
                name: n.name.clone(),
                rendered: format!(
                    "{}: new bench (median={}ns), not in baseline",
                    n.name, n.median_ns
                ),
                regressed: false,
            });
        }
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> BenchReport {
        let mut r = BenchReport::new("baseline", 42);
        r.benches.push(BenchResult {
            name: "edit_distance_banded".into(),
            warmup: 3,
            iters: 30,
            mean_ns: 812,
            median_ns: 799,
            min_ns: 790,
            max_ns: 1204,
        });
        r.benches.push(BenchResult {
            name: "cdf_bounds".into(),
            warmup: 3,
            iters: 30,
            mean_ns: 100,
            median_ns: 90,
            min_ns: 80,
            max_ns: 200,
        });
        r
    }

    #[test]
    fn timing_harness_runs_and_summarises() {
        let mut calls = 0u32;
        let res = run(
            "spin",
            BenchSpec {
                warmup: 2,
                iters: 5,
            },
            || {
                calls += 1;
                std::hint::black_box((0..100u64).sum::<u64>());
            },
        );
        assert_eq!(calls, 7); // 2 warmup + 5 timed
        assert_eq!(res.name, "spin");
        assert_eq!(res.iters, 5);
        assert!(res.min_ns <= res.median_ns);
        assert!(res.median_ns <= res.max_ns);
    }

    #[test]
    fn json_roundtrips() {
        let r = report();
        let json = r.to_json();
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.ends_with("}\n"));
        let back = BenchReport::parse(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn parse_rejects_wrong_schema_version() {
        let json = report().to_json().replace(
            "\"schema_version\": 1",
            "\"schema_version\": 999",
        );
        assert!(BenchReport::parse(&json).is_err());
    }

    #[test]
    fn self_compare_has_zero_regressions() {
        let r = report();
        let lines = compare_reports(&r, &r, 0.15);
        assert_eq!(lines.len(), 2);
        assert!(lines.iter().all(|l| !l.regressed));
        assert!(lines[0].rendered.contains("base=799ns new=799ns (+0.0%)"));
    }

    #[test]
    fn median_regression_past_threshold_is_flagged() {
        let base = report();
        let mut new = report();
        new.benches[1].median_ns = 104; // +15.6% over 90
        let lines = compare_reports(&base, &new, 0.15);
        assert!(!lines[0].regressed);
        assert!(lines[1].regressed);
        assert!(lines[1].rendered.ends_with("REGRESSION"));
        // Just inside the gate is fine.
        new.benches[1].median_ns = 103; // +14.4%
        let lines = compare_reports(&base, &new, 0.15);
        assert!(!lines[1].regressed);
    }

    #[test]
    fn missing_bench_counts_as_regression() {
        let base = report();
        let mut new = report();
        new.benches.remove(1);
        let lines = compare_reports(&base, &new, 0.15);
        assert!(lines[1].regressed);
        assert!(lines[1].rendered.contains("missing"));
    }

    #[test]
    fn new_bench_is_informational_not_regression() {
        // Asymmetric reports: the new report carries a bench the baseline
        // has never seen. That is growth, not a regression.
        let base = report();
        let mut new = report();
        new.benches.push(BenchResult {
            name: "simd_pb_row_update".into(),
            warmup: 3,
            iters: 30,
            mean_ns: 50,
            median_ns: 45,
            min_ns: 40,
            max_ns: 90,
        });
        let lines = compare_reports(&base, &new, 0.15);
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().all(|l| !l.regressed));
        let added = &lines[2];
        assert_eq!(added.name, "simd_pb_row_update");
        assert!(added.rendered.contains("new bench"));
        // And the reverse asymmetry still gates (deleted bench).
        let lines = compare_reports(&new, &base, 0.15);
        assert!(lines.iter().any(|l| l.regressed && l.rendered.contains("missing")));
    }

    #[test]
    fn even_count_median_averages_middle_pair() {
        // Even count: median is the midpoint of the two middle samples,
        // not the upper one (the old half-rank-high bias).
        let res = summarise("m", 0, 4, vec![100, 10, 40, 200]);
        assert_eq!(res.median_ns, 70); // (40 + 100) / 2
        assert_eq!(res.min_ns, 10);
        assert_eq!(res.max_ns, 200);
        assert_eq!(res.mean_ns, 87); // 350 / 4
        // Odd count: unchanged middle sample.
        let res = summarise("m", 0, 5, vec![5, 1, 3, 9, 7]);
        assert_eq!(res.median_ns, 5);
        // Midpoint of a same-valued pair is that value.
        let res = summarise("m", 0, 2, vec![8, 8]);
        assert_eq!(res.median_ns, 8);
    }

    #[test]
    fn mean_is_exact_near_u64_saturation() {
        // Two huge samples used to saturate the u64 fold and report a
        // mean of u64::MAX / iters; u128 accumulation keeps it exact.
        let big = u64::MAX / 2;
        let res = summarise("m", 0, 2, vec![big, big + 10]);
        assert_eq!(res.mean_ns, big + 5);
        assert_eq!(res.median_ns, big + 5);
    }
}
