//! `usj-obs` — dependency-free tracing & metrics for the join pipeline.
//!
//! Every figure of the paper is a plot of *internal* pipeline quantities
//! (per-phase survivors, per-phase wall-clock, verification cost, peak
//! index memory). This crate is the single instrumentation substrate those
//! numbers flow through:
//!
//! * [`Recorder`] — the event sink trait. Drivers emit **spans**
//!   ([`Recorder::enter_phase`] / [`Recorder::exit_phase`]), **counters**
//!   ([`Recorder::counter`]) and **gauges** ([`Recorder::gauge`]), bracketed
//!   per probe by [`Recorder::probe_start`] / [`Recorder::probe_end`].
//!   Dispatch is static: generic drivers monomorphise per recorder type, so
//!   the default [`NoopRecorder`] compiles to nothing on the hot path.
//! * [`CollectingRecorder`] — aggregates events into log₂-bucketed
//!   per-probe latency and candidate-count histograms (p50/p90/p99/max per
//!   phase) plus per-phase prune-attribution counters, and serialises the
//!   snapshot as schema-stable JSON ([`CollectingRecorder::to_json`]) with
//!   no serde.
//! * [`TraceRecorder`] — one event line per probe to any `io::Write`
//!   (the CLI's `--trace` wires it to stderr).
//! * [`ChromeTraceRecorder`] — the same event stream rendered as Chrome
//!   trace-event JSON ([`SpanId`]/parent-id causal tree, loadable in
//!   Perfetto or `chrome://tracing`).
//! * [`MetricsRegistry`] — a shared atomic counter/gauge/histogram
//!   registry for long-running processes (`usj-serve`), rendered in
//!   Prometheus text exposition format.
//! * [`bench`] — a fixed-seed micro-benchmark harness with a
//!   schema-stable `BENCH_<label>.json` report and a median-regression
//!   comparator.
//!
//! Recorders compose: a 2-tuple of recorders is itself a recorder, so
//! `(CollectingRecorder, TraceRecorder)` collects and traces in one pass.
//! [`MergeRecorder`] supports the lock-free parallel join: one recorder per
//! worker, absorbed into a single snapshot at the end.
//!
//! # Trace ids and span nesting
//!
//! An end-to-end **trace id** (a nonzero `u64`, minted by the serve
//! client and carried over the wire as 16 lowercase hex digits) names one
//! request across process boundaries. [`Recorder::set_trace_id`] stamps
//! it on a sink; sinks that render causal output ([`TraceRecorder`],
//! [`ChromeTraceRecorder`]) attach it to every line/span they emit.
//! Within a trace, spans form a tree of [`SpanId`]s: each probe span is
//! the parent of the phase spans opened while it is active, so a slow
//! PROBE can be followed from the client call down to the exact CDF-bound
//! DP that ate the deadline.
//!
//! This crate is **std-only by design** — the build environment cannot
//! reach crates.io, and nothing here needs more than the standard library.

#![warn(missing_docs)]

pub mod bench;
mod chrome;
mod collect;
mod histogram;
mod json;
mod registry;
mod trace;

pub use chrome::ChromeTraceRecorder;
pub use collect::CollectingRecorder;
pub use histogram::Log2Histogram;
pub use json::JsonWriter;
pub use registry::{band_label, band_of, MetricsRegistry, FUNNEL_BANDS, FUNNEL_STAGES};
pub use trace::TraceRecorder;

use std::time::{Duration, Instant};

/// Identifies one span within a trace. Span ids are allocated per sink
/// (high bits: sink/thread lane, low bits: a monotonic counter) so spans
/// from parallel workers never collide after a [`MergeRecorder::absorb`].
/// [`SpanId::ROOT`] (zero) is the parent of top-level spans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The implicit parent of top-level spans; never allocated to a span.
    pub const ROOT: SpanId = SpanId(0);
}

/// Pipeline phases, mirroring `PhaseTimings` in `usj-core`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Segment inverted-index querying + Lemma 5 / Theorem 2 pruning.
    Qgram,
    /// Frequency-distance filtering (Lemma 6 + Theorem 3).
    Freq,
    /// CDF-bound DP (Theorem 4).
    Cdf,
    /// Exact verification (trie / naive).
    Verify,
    /// Inserting probes into the segment index.
    Index,
    /// The whole driver run (join, or one search when probing a standing
    /// collection).
    Total,
}

impl Phase {
    /// Every phase, in serialisation order.
    pub const ALL: [Phase; 6] = [
        Phase::Qgram,
        Phase::Freq,
        Phase::Cdf,
        Phase::Verify,
        Phase::Index,
        Phase::Total,
    ];

    /// Dense index into per-phase arrays.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name used in JSON snapshots and trace lines.
    pub const fn name(self) -> &'static str {
        match self {
            Phase::Qgram => "qgram",
            Phase::Freq => "freq",
            Phase::Cdf => "cdf",
            Phase::Verify => "verify",
            Phase::Index => "index",
            Phase::Total => "total",
        }
    }
}

/// Monotone event counters. The first block mirrors the `JoinStats`
/// counters (prune attribution per phase); the rest are obs-only extras
/// the flat stats struct never tracked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Length-compatible pairs considered at all (the FCT pool).
    PairsInScope,
    /// Pairs surviving q-gram filtering.
    QgramSurvivors,
    /// Pairs pruned by the Lemma 5 count condition.
    QgramPrunedCount,
    /// Pairs pruned by the Theorem 2 probabilistic upper bound.
    QgramPrunedBound,
    /// Pairs surviving frequency-distance filtering.
    FreqSurvivors,
    /// Pairs pruned by the Lemma 6 lower bound.
    FreqPrunedLower,
    /// Pairs pruned by the Theorem 3 Chebyshev bound.
    FreqPrunedChebyshev,
    /// Pairs accepted outright by the CDF lower bound.
    CdfAccepted,
    /// Pairs rejected by the CDF upper bound.
    CdfRejected,
    /// Pairs the CDF bounds left undecided (sent to verification).
    CdfUndecided,
    /// Verified pairs found similar.
    VerifiedSimilar,
    /// Verified pairs found dissimilar.
    VerifiedDissimilar,
    /// Output pairs reported.
    OutputPairs,
    /// Strings inserted into the segment inverted indices.
    IndexInsertions,
    /// Postings `(id, Pr)` touched while merging posting lists.
    IndexPostingsScanned,
    /// Candidate α-vectors surfaced by posting-list merges.
    IndexCandidatesSurfaced,
    /// Per-probe verifier constructions.
    VerifierBuilds,
    /// Work-stealing batches grabbed by parallel workers (one per
    /// successful cursor advance, so totals reflect scheduler granularity).
    StealBatches,
    /// Injected faults the run survived (delays absorbed plus panics
    /// recovered by batch isolation); faults that abort the run are
    /// reported through the error path, not counted here.
    FaultsInjected,
    /// Work-stealing batches that panicked and were re-run probe-by-probe.
    BatchesRetried,
    /// Probes quarantined after panicking even in isolated retry.
    ProbesQuarantined,
    /// Length-band waves skipped on `--resume` because a checkpoint
    /// already covered them.
    WavesResumed,
    /// Connections admitted into the query server's bounded queue.
    ServeAccepted,
    /// Probe requests answered through the full exact pipeline.
    ServeFull,
    /// Probe requests answered in degraded (filter-only) mode: the
    /// q-gram + frequency-distance funnel without CDF/verification, a
    /// sound superset of the exact answer flagged `DEGRADED` on the wire.
    ServeDegraded,
    /// Requests shed with `BUSY` (admission queue full or ladder level 2).
    ServeShed,
    /// Probe requests refused because their per-request deadline expired
    /// mid-pipeline (partial results are discarded, never served).
    ServeDeadline,
    /// Worker panics isolated by the server's `catch_unwind` perimeter;
    /// the poisoned request gets `ERR`, the listener survives.
    ServePanics,
    /// Hedged second requests the coordinator dispatched after a shard
    /// stayed silent past the p99-based hedge delay.
    HedgesSent,
    /// Hedged requests that answered before the primary (first answer
    /// wins; the loser's connection is dropped).
    HedgesWon,
    /// Shard quarantine transitions (consecutive-failure threshold hit);
    /// readmissions after half-open recovery do not decrement.
    ShardsQuarantined,
    /// Scatter-gather responses served from a subset of the relevant
    /// shards (degraded mode only; strict mode refuses instead).
    PartialResponses,
    /// Length bands admitted straight from an on-disk snapshot during a
    /// salvage load (rung 2 of the recovery ladder); a fully verified
    /// load counts zero.
    SnapshotBandsSalvaged,
    /// Length bands rebuilt from source records because their snapshot
    /// section was corrupt, missing, or failed salvage (rungs 2 and 4).
    SnapshotBandsRebuilt,
    /// Checksum/structure defects detected while loading a snapshot
    /// (bit flips, truncations, garbage sections).
    SnapshotCorruptionsDetected,
    /// Server starts that answered from a snapshot (verified or
    /// salvaged) instead of a cold rebuild.
    WarmRestarts,
}

impl Counter {
    /// Every counter, in serialisation order.
    pub const ALL: [Counter; 36] = [
        Counter::PairsInScope,
        Counter::QgramSurvivors,
        Counter::QgramPrunedCount,
        Counter::QgramPrunedBound,
        Counter::FreqSurvivors,
        Counter::FreqPrunedLower,
        Counter::FreqPrunedChebyshev,
        Counter::CdfAccepted,
        Counter::CdfRejected,
        Counter::CdfUndecided,
        Counter::VerifiedSimilar,
        Counter::VerifiedDissimilar,
        Counter::OutputPairs,
        Counter::IndexInsertions,
        Counter::IndexPostingsScanned,
        Counter::IndexCandidatesSurfaced,
        Counter::VerifierBuilds,
        Counter::StealBatches,
        Counter::FaultsInjected,
        Counter::BatchesRetried,
        Counter::ProbesQuarantined,
        Counter::WavesResumed,
        Counter::ServeAccepted,
        Counter::ServeFull,
        Counter::ServeDegraded,
        Counter::ServeShed,
        Counter::ServeDeadline,
        Counter::ServePanics,
        Counter::HedgesSent,
        Counter::HedgesWon,
        Counter::ShardsQuarantined,
        Counter::PartialResponses,
        Counter::SnapshotBandsSalvaged,
        Counter::SnapshotBandsRebuilt,
        Counter::SnapshotCorruptionsDetected,
        Counter::WarmRestarts,
    ];

    /// Dense index into per-counter arrays.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name used in JSON snapshots and trace lines.
    pub const fn name(self) -> &'static str {
        match self {
            Counter::PairsInScope => "pairs_in_scope",
            Counter::QgramSurvivors => "qgram_survivors",
            Counter::QgramPrunedCount => "qgram_pruned_count",
            Counter::QgramPrunedBound => "qgram_pruned_bound",
            Counter::FreqSurvivors => "freq_survivors",
            Counter::FreqPrunedLower => "freq_pruned_lower",
            Counter::FreqPrunedChebyshev => "freq_pruned_chebyshev",
            Counter::CdfAccepted => "cdf_accepted",
            Counter::CdfRejected => "cdf_rejected",
            Counter::CdfUndecided => "cdf_undecided",
            Counter::VerifiedSimilar => "verified_similar",
            Counter::VerifiedDissimilar => "verified_dissimilar",
            Counter::OutputPairs => "output_pairs",
            Counter::IndexInsertions => "index_insertions",
            Counter::IndexPostingsScanned => "index_postings_scanned",
            Counter::IndexCandidatesSurfaced => "index_candidates_surfaced",
            Counter::VerifierBuilds => "verifier_builds",
            Counter::StealBatches => "steal_batches",
            Counter::FaultsInjected => "faults_injected",
            Counter::BatchesRetried => "batches_retried",
            Counter::ProbesQuarantined => "probes_quarantined",
            Counter::WavesResumed => "waves_resumed",
            Counter::ServeAccepted => "serve_accepted",
            Counter::ServeFull => "serve_full",
            Counter::ServeDegraded => "serve_degraded",
            Counter::ServeShed => "serve_shed",
            Counter::ServeDeadline => "serve_deadline",
            Counter::ServePanics => "serve_panics",
            Counter::HedgesSent => "hedges_sent",
            Counter::HedgesWon => "hedges_won",
            Counter::ShardsQuarantined => "shards_quarantined",
            Counter::PartialResponses => "partial_responses",
            Counter::SnapshotBandsSalvaged => "snapshot_bands_salvaged",
            Counter::SnapshotBandsRebuilt => "snapshot_bands_rebuilt",
            Counter::SnapshotCorruptionsDetected => "snapshot_corruptions_detected",
            Counter::WarmRestarts => "warm_restarts",
        }
    }
}

/// Point-in-time measurements; aggregation over a run takes the maximum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gauge {
    /// Estimated current segment-index footprint in bytes.
    IndexBytes,
    /// Peak estimated segment-index footprint in bytes (the Fig 7 metric).
    PeakIndexBytes,
    /// Strings in the collection(s) under join.
    NumStrings,
    /// Length shards currently resident in the sharded parallel driver.
    ResidentShards,
    /// Peak bytes of simultaneously-resident shard indices (the sharded
    /// driver's analogue of [`Gauge::PeakIndexBytes`]).
    PeakResidentBytes,
    /// Peak depth of the query server's bounded admission queue.
    ServeQueueDepth,
    /// Healthy (non-quarantined) shards behind the coordinator. Folded
    /// with max semantics like every gauge, so a snapshot reports the
    /// peak healthy count; the live per-shard view is the `SHARDS` verb.
    ShardHealthy,
    /// Age in seconds of the snapshot the server started from (mtime at
    /// load), or absent after a cold start.
    SnapshotAgeSeconds,
}

impl Gauge {
    /// Every gauge, in serialisation order.
    pub const ALL: [Gauge; 8] = [
        Gauge::IndexBytes,
        Gauge::PeakIndexBytes,
        Gauge::NumStrings,
        Gauge::ResidentShards,
        Gauge::PeakResidentBytes,
        Gauge::ServeQueueDepth,
        Gauge::ShardHealthy,
        Gauge::SnapshotAgeSeconds,
    ];

    /// Dense index into per-gauge arrays.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name used in JSON snapshots and trace lines.
    pub const fn name(self) -> &'static str {
        match self {
            Gauge::IndexBytes => "index_bytes",
            Gauge::PeakIndexBytes => "peak_index_bytes",
            Gauge::NumStrings => "num_strings",
            Gauge::ResidentShards => "resident_shards",
            Gauge::PeakResidentBytes => "peak_resident_bytes",
            Gauge::ServeQueueDepth => "serve_queue_depth",
            Gauge::ShardHealthy => "shard_healthy",
            Gauge::SnapshotAgeSeconds => "snapshot_age_seconds",
        }
    }
}

/// Sink for pipeline events. All methods default to no-ops so sinks only
/// implement what they consume; dispatch is static (generic, not `dyn`),
/// so a no-op sink costs nothing after inlining.
pub trait Recorder {
    /// A probe's work begins (one probe = one string queried against the
    /// index). Events until the matching [`Recorder::probe_end`] belong to
    /// this probe.
    fn probe_start(&mut self, probe_id: u32) {
        let _ = probe_id;
    }

    /// The probe's work is complete; per-probe aggregates may be flushed.
    fn probe_end(&mut self, probe_id: u32) {
        let _ = probe_id;
    }

    /// A phase span opens. Spans of the same phase may open several times
    /// within one probe (e.g. one CDF evaluation per candidate); sinks
    /// aggregate per probe.
    fn enter_phase(&mut self, phase: Phase) {
        let _ = phase;
    }

    /// A phase span closes after `elapsed`. Always paired with
    /// [`Recorder::enter_phase`]; the driver measures the duration so
    /// deterministic tests can replay fixed timings.
    fn exit_phase(&mut self, phase: Phase, elapsed: Duration) {
        let _ = (phase, elapsed);
    }

    /// `counter` increased by `delta` (possibly 0 — a zero delta still
    /// marks the counter as observed for per-probe histograms).
    fn counter(&mut self, counter: Counter, delta: u64) {
        let _ = (counter, delta);
    }

    /// `gauge` measured at `value`.
    fn gauge(&mut self, gauge: Gauge, value: u64) {
        let _ = (gauge, value);
    }

    /// Associates subsequent events with an end-to-end trace id (see the
    /// crate docs). Zero means "untraced" and is the default; sinks that
    /// do not render causal output ignore this.
    fn set_trace_id(&mut self, trace_id: u64) {
        let _ = trace_id;
    }
}

/// RAII phase span: opens `phase` on construction, closes it (with the
/// measured wall-clock) when dropped — on *every* path out of the scope,
/// including early `return` and `?`. The `span-paired` tidy lint flags
/// manual [`Recorder::enter_phase`]/[`Recorder::exit_phase`] pairs with
/// early exits between them; this guard is the sanctioned fix.
#[derive(Debug)]
pub struct PhaseGuard<'a, R: Recorder> {
    rec: &'a mut R,
    phase: Phase,
    start: Instant,
}

impl<'a, R: Recorder> PhaseGuard<'a, R> {
    /// Opens a `phase` span on `rec`.
    pub fn enter(rec: &'a mut R, phase: Phase) -> Self {
        rec.enter_phase(phase);
        PhaseGuard {
            rec,
            phase,
            start: Instant::now(),
        }
    }

    /// The guarded recorder, for events emitted inside the span.
    pub fn rec(&mut self) -> &mut R {
        self.rec
    }
}

impl<R: Recorder> Drop for PhaseGuard<'_, R> {
    fn drop(&mut self) {
        self.rec.exit_phase(self.phase, self.start.elapsed());
    }
}

/// The default sink: discards everything. With this recorder the
/// instrumented drivers compile to exactly their un-instrumented code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

impl MergeRecorder for NoopRecorder {
    fn absorb(&mut self, _other: Self) {}
}

/// A recorder whose per-worker instances can be folded into one — the
/// parallel join gives each worker its own recorder (keeping the hot loop
/// lock-free) and absorbs them after the scope joins.
pub trait MergeRecorder: Recorder {
    /// Folds `other`'s observations into `self`.
    fn absorb(&mut self, other: Self);
}

/// Recorders compose by tupling: every event is forwarded to both halves
/// (e.g. collect a snapshot *and* trace to stderr in one pass).
impl<A: Recorder, B: Recorder> Recorder for (A, B) {
    fn probe_start(&mut self, probe_id: u32) {
        self.0.probe_start(probe_id);
        self.1.probe_start(probe_id);
    }

    fn probe_end(&mut self, probe_id: u32) {
        self.0.probe_end(probe_id);
        self.1.probe_end(probe_id);
    }

    fn enter_phase(&mut self, phase: Phase) {
        self.0.enter_phase(phase);
        self.1.enter_phase(phase);
    }

    fn exit_phase(&mut self, phase: Phase, elapsed: Duration) {
        self.0.exit_phase(phase, elapsed);
        self.1.exit_phase(phase, elapsed);
    }

    fn counter(&mut self, counter: Counter, delta: u64) {
        self.0.counter(counter, delta);
        self.1.counter(counter, delta);
    }

    fn gauge(&mut self, gauge: Gauge, value: u64) {
        self.0.gauge(gauge, value);
        self.1.gauge(gauge, value);
    }

    fn set_trace_id(&mut self, trace_id: u64) {
        self.0.set_trace_id(trace_id);
        self.1.set_trace_id(trace_id);
    }
}

impl<A: MergeRecorder, B: MergeRecorder> MergeRecorder for (A, B) {
    fn absorb(&mut self, other: Self) {
        self.0.absorb(other.0);
        self.1.absorb(other.1);
    }
}

/// `&mut R` forwards to `R`, so drivers can hand a reborrowed recorder to
/// helpers without consuming it.
impl<R: Recorder> Recorder for &mut R {
    fn probe_start(&mut self, probe_id: u32) {
        (**self).probe_start(probe_id);
    }

    fn probe_end(&mut self, probe_id: u32) {
        (**self).probe_end(probe_id);
    }

    fn enter_phase(&mut self, phase: Phase) {
        (**self).enter_phase(phase);
    }

    fn exit_phase(&mut self, phase: Phase, elapsed: Duration) {
        (**self).exit_phase(phase, elapsed);
    }

    fn counter(&mut self, counter: Counter, delta: u64) {
        (**self).counter(counter, delta);
    }

    fn gauge(&mut self, gauge: Gauge, value: u64) {
        (**self).gauge(gauge, value);
    }

    fn set_trace_id(&mut self, trace_id: u64) {
        (**self).set_trace_id(trace_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_indices_are_dense_and_names_unique() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, g) in Gauge::ALL.iter().enumerate() {
            assert_eq!(g.index(), i);
        }
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.extend(Phase::ALL.iter().map(|p| p.name()));
        names.extend(Gauge::ALL.iter().map(|g| g.name()));
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(names.len(), deduped.len(), "{names:?}");
    }

    #[test]
    fn noop_recorder_accepts_everything() {
        let mut r = NoopRecorder;
        r.probe_start(0);
        r.enter_phase(Phase::Qgram);
        r.exit_phase(Phase::Qgram, Duration::from_nanos(5));
        r.counter(Counter::PairsInScope, 3);
        r.gauge(Gauge::IndexBytes, 100);
        r.probe_end(0);
        let mut copy = r;
        copy.absorb(r);
    }

    #[test]
    fn tuple_recorder_forwards_to_both() {
        let mut pair = (CollectingRecorder::new(), CollectingRecorder::new());
        pair.probe_start(1);
        pair.counter(Counter::OutputPairs, 2);
        pair.probe_end(1);
        assert_eq!(pair.0.counter_total(Counter::OutputPairs), 2);
        assert_eq!(pair.1.counter_total(Counter::OutputPairs), 2);
        assert_eq!(pair.0.probes(), 1);
        assert_eq!(pair.1.probes(), 1);
    }

    #[test]
    fn phase_guard_closes_span_on_early_return() {
        fn body(rec: &mut CollectingRecorder, bail: bool) -> Option<u32> {
            let mut guard = PhaseGuard::enter(rec, Phase::Cdf);
            guard.rec().counter(Counter::CdfUndecided, 1);
            if bail {
                return None; // guard still exits the phase
            }
            Some(7)
        }
        let mut rec = CollectingRecorder::new();
        assert_eq!(body(&mut rec, true), None);
        assert_eq!(body(&mut rec, false), Some(7));
        assert_eq!(rec.phase_histogram(Phase::Cdf).count(), 2);
        assert_eq!(rec.counter_total(Counter::CdfUndecided), 2);
    }

    #[test]
    fn mut_ref_forwards() {
        // Generic over R so the call monomorphises against the blanket
        // `impl Recorder for &mut R` rather than auto-dereferencing.
        fn feed<R: Recorder>(mut r: R) {
            r.counter(Counter::CdfAccepted, 7);
            r.gauge(Gauge::NumStrings, 4);
        }
        let mut c = CollectingRecorder::new();
        feed(&mut c);
        assert_eq!(c.counter_total(Counter::CdfAccepted), 7);
        assert_eq!(c.gauge_max(Gauge::NumStrings), 4);
    }
}
