//! A shared, atomic metrics registry for long-running processes, rendered
//! in Prometheus text exposition format.
//!
//! [`crate::CollectingRecorder`] is the right sink for one run: it is
//! single-threaded, rich, and snapshotted at the end. A query server
//! needs the dual — many short requests, each recorded locally and then
//! **folded** into one process-wide registry that can be scraped at any
//! moment without locking the request path. [`MetricsRegistry`] is that
//! registry: plain `AtomicU64`s for every golden-schema counter, gauge,
//! per-phase total, and per-phase log₂ latency histogram, plus the
//! per-length-band selectivity **funnel** (candidates in/out of each
//! filter stage per band of 8 probe-text lengths) that the cost-based
//! planner of ROADMAP open item 3 will consume.
//!
//! [`MetricsRegistry::render_prometheus`] emits the whole registry in
//! Prometheus text exposition format (`# TYPE` headers, `_total` counter
//! suffixes, summary quantiles for latency). The series set is fixed —
//! every counter/gauge/phase/band appears even at zero — so scrapes are
//! schema-stable from the first request.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::{CollectingRecorder, Counter, Gauge, Log2Histogram, Phase};

const NUM_PHASES: usize = Phase::ALL.len();
const NUM_COUNTERS: usize = Counter::ALL.len();
const NUM_GAUGES: usize = Gauge::ALL.len();

/// Number of probe-text length bands in the selectivity funnel: band `b`
/// covers lengths `[8b, 8b+7]`, the last band is open-ended.
pub const FUNNEL_BANDS: usize = 16;

/// Stages of the selectivity funnel, in pipeline order.
pub const FUNNEL_STAGES: usize = 9;

/// Funnel stage labels, in pipeline order (candidates flowing in at the
/// top, decided pairs dropping out of each filter).
const STAGE_NAMES: [&str; FUNNEL_STAGES] = [
    "pairs_in",
    "qgram_out",
    "freq_out",
    "cdf_accepted",
    "cdf_rejected",
    "cdf_undecided",
    "verified_similar",
    "verified_dissimilar",
    "output",
];

/// The golden-schema counter feeding each funnel stage.
const STAGE_COUNTERS: [Counter; FUNNEL_STAGES] = [
    Counter::PairsInScope,
    Counter::QgramSurvivors,
    Counter::FreqSurvivors,
    Counter::CdfAccepted,
    Counter::CdfRejected,
    Counter::CdfUndecided,
    Counter::VerifiedSimilar,
    Counter::VerifiedDissimilar,
    Counter::OutputPairs,
];

/// The length band of a probe text: `min(len / 8, FUNNEL_BANDS - 1)`.
pub fn band_of(len: usize) -> usize {
    (len / 8).min(FUNNEL_BANDS - 1)
}

/// Human label for a band: `"0-7"`, `"8-15"`, …, `"120+"`.
pub fn band_label(band: usize) -> String {
    if band + 1 == FUNNEL_BANDS {
        format!("{}+", band * 8)
    } else {
        format!("{}-{}", band * 8, band * 8 + 7)
    }
}

/// An atomically-updatable [`Log2Histogram`]: folded into under
/// `Relaxed` ordering, snapshotted bucket-by-bucket for quantiles.
#[derive(Debug)]
struct AtomicHistogram {
    buckets: [AtomicU64; 65],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    // [AtomicU64; 65] has no derived Default (std stops at 32 elements).
    fn default() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl AtomicHistogram {
    fn fold(&self, h: &Log2Histogram) {
        // ordering: every cell is an independent monotone accumulator;
        // scrapes tolerate tearing across cells (each series is
        // monotone), so Relaxed suffices throughout the registry.
        for (cell, &n) in self.buckets.iter().zip(h.bucket_counts()) {
            if n != 0 {
                // ordering: see above — independent monotone accumulators.
                cell.fetch_add(n, Ordering::Relaxed);
            }
        }
        // ordering: see above — independent monotone accumulators.
        self.count.fetch_add(h.count(), Ordering::Relaxed);
        self.sum.fetch_add(h.sum(), Ordering::Relaxed);
        self.max.fetch_max(h.max(), Ordering::Relaxed);
    }

    fn snapshot(&self) -> Log2Histogram {
        // ordering: a scrape is a statistical read; per-cell tearing is
        // acceptable, so Relaxed loads suffice.
        let buckets = std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        Log2Histogram::from_raw(
            buckets,
            // ordering: see above.
            self.count.load(Ordering::Relaxed),
            self.sum.load(Ordering::Relaxed),
            self.max.load(Ordering::Relaxed),
        )
    }
}

/// Process-wide atomic metrics, scraped via `METRICS` / `usj metrics`.
///
/// Request handlers record into a local [`CollectingRecorder`] (lock-free
/// for the handler) and call [`MetricsRegistry::fold`] once per request;
/// a scrape calls [`MetricsRegistry::render_prometheus`] at any time.
#[derive(Debug)]
pub struct MetricsRegistry {
    probes: AtomicU64,
    counters: [AtomicU64; NUM_COUNTERS],
    gauges: [AtomicU64; NUM_GAUGES],
    phase_ns: [AtomicU64; NUM_PHASES],
    phase_hist: [AtomicHistogram; NUM_PHASES],
    funnel: [[AtomicU64; FUNNEL_STAGES]; FUNNEL_BANDS],
}

impl Default for MetricsRegistry {
    // [AtomicU64; NUM_COUNTERS] has no derived Default past 32 elements.
    fn default() -> Self {
        MetricsRegistry {
            probes: AtomicU64::new(0),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            gauges: std::array::from_fn(|_| AtomicU64::new(0)),
            phase_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            phase_hist: std::array::from_fn(|_| AtomicHistogram::default()),
            funnel: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
        }
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Folds one request's local snapshot into the registry. `band` is
    /// the probe-text length band ([`band_of`]) and routes this request's
    /// filter-funnel counters into the per-band selectivity series; pass
    /// `None` for non-probe work (index builds, admin requests).
    pub fn fold(&self, band: Option<usize>, rec: &CollectingRecorder) {
        // ordering: monotone accumulators, see AtomicHistogram::fold.
        self.probes.fetch_add(rec.probes(), Ordering::Relaxed);
        for c in Counter::ALL {
            let total = rec.counter_total(c);
            if total != 0 {
                // ordering: monotone accumulator.
                self.counters[c.index()].fetch_add(total, Ordering::Relaxed);
            }
        }
        for g in Gauge::ALL {
            // ordering: gauges aggregate by max; monotone, Relaxed.
            self.gauges[g.index()].fetch_max(rec.gauge_max(g), Ordering::Relaxed);
        }
        for p in Phase::ALL {
            let ns = rec.phase_total_ns(p);
            if ns != 0 {
                // ordering: monotone accumulator.
                self.phase_ns[p.index()].fetch_add(ns, Ordering::Relaxed);
            }
            self.phase_hist[p.index()].fold(rec.phase_histogram(p));
        }
        if let Some(band) = band {
            let band = band.min(FUNNEL_BANDS - 1);
            for (stage, c) in STAGE_COUNTERS.iter().enumerate() {
                let total = rec.counter_total(*c);
                if total != 0 {
                    // ordering: monotone accumulator.
                    self.funnel[band][stage].fetch_add(total, Ordering::Relaxed);
                }
            }
        }
    }

    /// Renders every series in Prometheus text exposition format. The
    /// output is schema-stable: the full golden-schema counter/gauge set,
    /// per-phase totals and latency summaries, and the complete
    /// band × stage funnel appear in fixed order even when zero.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        out.push_str("# TYPE usj_probes_total counter\n");
        // ordering: scrape reads are statistical; Relaxed throughout.
        let probes = self.probes.load(Ordering::Relaxed);
        out.push_str(&format!("usj_probes_total {probes}\n"));
        for c in Counter::ALL {
            // ordering: statistical scrape read.
            let v = self.counters[c.index()].load(Ordering::Relaxed);
            out.push_str(&format!("# TYPE usj_{}_total counter\n", c.name()));
            out.push_str(&format!("usj_{}_total {v}\n", c.name()));
        }
        for g in Gauge::ALL {
            // ordering: statistical scrape read.
            let v = self.gauges[g.index()].load(Ordering::Relaxed);
            out.push_str(&format!("# TYPE usj_{} gauge\n", g.name()));
            out.push_str(&format!("usj_{} {v}\n", g.name()));
        }
        out.push_str("# TYPE usj_phase_ns_total counter\n");
        for p in Phase::ALL {
            // ordering: statistical scrape read.
            let ns = self.phase_ns[p.index()].load(Ordering::Relaxed);
            out.push_str(&format!("usj_phase_ns_total{{phase=\"{}\"}} {ns}\n", p.name()));
        }
        out.push_str("# TYPE usj_phase_latency_ns summary\n");
        for p in Phase::ALL {
            let h = self.phase_hist[p.index()].snapshot();
            for (label, q) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99)] {
                out.push_str(&format!(
                    "usj_phase_latency_ns{{phase=\"{}\",quantile=\"{label}\"}} {}\n",
                    p.name(),
                    h.quantile(q)
                ));
            }
            out.push_str(&format!(
                "usj_phase_latency_ns_sum{{phase=\"{}\"}} {}\n",
                p.name(),
                h.sum()
            ));
            out.push_str(&format!(
                "usj_phase_latency_ns_count{{phase=\"{}\"}} {}\n",
                p.name(),
                h.count()
            ));
        }
        out.push_str("# TYPE usj_funnel_candidates_total counter\n");
        for band in 0..FUNNEL_BANDS {
            for (stage, name) in STAGE_NAMES.iter().enumerate() {
                // ordering: statistical scrape read.
                let v = self.funnel[band][stage].load(Ordering::Relaxed);
                out.push_str(&format!(
                    "usj_funnel_candidates_total{{band=\"{}\",stage=\"{name}\"}} {v}\n",
                    band_label(band)
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;
    use std::time::Duration;

    fn one_request() -> CollectingRecorder {
        let mut r = CollectingRecorder::new();
        r.probe_start(0);
        r.enter_phase(Phase::Qgram);
        r.exit_phase(Phase::Qgram, Duration::from_nanos(100));
        r.counter(Counter::PairsInScope, 10);
        r.counter(Counter::QgramSurvivors, 4);
        r.counter(Counter::OutputPairs, 1);
        r.probe_end(0);
        r.gauge(Gauge::IndexBytes, 2048);
        r
    }

    #[test]
    fn bands_partition_lengths() {
        assert_eq!(band_of(0), 0);
        assert_eq!(band_of(7), 0);
        assert_eq!(band_of(8), 1);
        assert_eq!(band_of(119), 14);
        assert_eq!(band_of(120), 15);
        assert_eq!(band_of(100_000), 15);
        assert_eq!(band_label(0), "0-7");
        assert_eq!(band_label(1), "8-15");
        assert_eq!(band_label(15), "120+");
    }

    #[test]
    fn fold_accumulates_across_requests() {
        let reg = MetricsRegistry::new();
        reg.fold(Some(band_of(10)), &one_request());
        reg.fold(Some(band_of(10)), &one_request());
        reg.fold(Some(band_of(200)), &one_request());
        let text = reg.render_prometheus();
        assert!(text.contains("usj_probes_total 3\n"));
        assert!(text.contains("usj_pairs_in_scope_total 30\n"));
        assert!(text.contains("usj_index_bytes 2048\n"));
        assert!(text.contains("usj_phase_ns_total{phase=\"qgram\"} 300\n"));
        assert!(text.contains(
            "usj_funnel_candidates_total{band=\"8-15\",stage=\"pairs_in\"} 20\n"
        ));
        assert!(text.contains(
            "usj_funnel_candidates_total{band=\"120+\",stage=\"output\"} 1\n"
        ));
    }

    #[test]
    fn schema_is_complete_even_when_empty() {
        let text = MetricsRegistry::new().render_prometheus();
        for c in Counter::ALL {
            assert!(
                text.contains(&format!("usj_{}_total 0\n", c.name())),
                "missing counter {}",
                c.name()
            );
        }
        for g in Gauge::ALL {
            assert!(
                text.contains(&format!("usj_{} 0\n", g.name())),
                "missing gauge {}",
                g.name()
            );
        }
        for p in Phase::ALL {
            assert!(text.contains(&format!("usj_phase_ns_total{{phase=\"{}\"}} 0\n", p.name())));
            assert!(text.contains(&format!(
                "usj_phase_latency_ns{{phase=\"{}\",quantile=\"0.99\"}} 0\n",
                p.name()
            )));
        }
        for band in 0..FUNNEL_BANDS {
            for name in STAGE_NAMES {
                assert!(text.contains(&format!(
                    "usj_funnel_candidates_total{{band=\"{}\",stage=\"{name}\"}} 0\n",
                    band_label(band)
                )));
            }
        }
        // Exposition-format shape: every non-comment line is `name value`.
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(line.starts_with("# TYPE usj_"), "bad header: {line}");
            } else {
                let mut parts = line.rsplitn(2, ' ');
                let value = parts.next().unwrap();
                let name = parts.next().unwrap();
                assert!(value.parse::<u64>().is_ok(), "bad value in: {line}");
                assert!(name.starts_with("usj_"), "bad series in: {line}");
            }
        }
    }

    #[test]
    fn latency_summary_reflects_folded_histograms() {
        let reg = MetricsRegistry::new();
        reg.fold(None, &one_request());
        let text = reg.render_prometheus();
        // One 100ns qgram sample: p50 = bucket upper bound clamped to max.
        assert!(text.contains("usj_phase_latency_ns{phase=\"qgram\",quantile=\"0.5\"} 100\n"));
        assert!(text.contains("usj_phase_latency_ns_count{phase=\"qgram\"} 1\n"));
        assert!(text.contains("usj_phase_latency_ns_sum{phase=\"qgram\"} 100\n"));
    }
}
