//! Aggregating recorder: per-probe histograms + run-level counters.

use std::time::Duration;

use crate::histogram::Log2Histogram;
use crate::json::JsonWriter;
use crate::{Counter, Gauge, MergeRecorder, Phase, Recorder};

const NUM_PHASES: usize = Phase::ALL.len();
const NUM_COUNTERS: usize = Counter::ALL.len();
const NUM_GAUGES: usize = Gauge::ALL.len();

/// Schema version stamped into every snapshot; bump when the JSON layout
/// changes shape (key renames/removals — pure additions keep the version).
pub const SNAPSHOT_SCHEMA_VERSION: u64 = 1;

/// Aggregates pipeline events into a queryable, serialisable snapshot:
///
/// * run-level totals for every [`Counter`] (prune attribution per phase)
///   and max for every [`Gauge`];
/// * per-probe **latency histograms** per phase (all spans of a phase
///   within one probe sum to one sample, log₂-bucketed);
/// * per-probe **magnitude histograms** per counter (e.g. candidates in
///   scope per probe), so the snapshot answers "how skewed are probes?"
///   and not just "how much total work?".
///
/// Spans observed outside a probe bracket (e.g. the driver's whole-run
/// `total` span) contribute one sample directly.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectingRecorder {
    probes: u64,
    counters: [u64; NUM_COUNTERS],
    gauges: [u64; NUM_GAUGES],
    phase_total_ns: [u64; NUM_PHASES],
    phase_hist: [Log2Histogram; NUM_PHASES],
    counter_hist: [Log2Histogram; NUM_COUNTERS],
    // Scratch for the probe currently in flight.
    in_probe: bool,
    cur_phase_ns: [u64; NUM_PHASES],
    cur_phase_seen: [bool; NUM_PHASES],
    cur_counter: [u64; NUM_COUNTERS],
    cur_counter_seen: [bool; NUM_COUNTERS],
}

impl Default for CollectingRecorder {
    fn default() -> Self {
        CollectingRecorder {
            probes: 0,
            counters: [0; NUM_COUNTERS],
            gauges: [0; NUM_GAUGES],
            phase_total_ns: [0; NUM_PHASES],
            phase_hist: std::array::from_fn(|_| Log2Histogram::new()),
            counter_hist: std::array::from_fn(|_| Log2Histogram::new()),
            in_probe: false,
            cur_phase_ns: [0; NUM_PHASES],
            cur_phase_seen: [false; NUM_PHASES],
            cur_counter: [0; NUM_COUNTERS],
            cur_counter_seen: [false; NUM_COUNTERS],
        }
    }
}

impl CollectingRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        CollectingRecorder::default()
    }

    /// Probes observed (`probe_start`/`probe_end` brackets).
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Run-level total for one counter.
    pub fn counter_total(&self, counter: Counter) -> u64 {
        self.counters[counter.index()]
    }

    /// Largest value observed for one gauge.
    pub fn gauge_max(&self, gauge: Gauge) -> u64 {
        self.gauges[gauge.index()]
    }

    /// Total nanoseconds spent in one phase across the run.
    pub fn phase_total_ns(&self, phase: Phase) -> u64 {
        self.phase_total_ns[phase.index()]
    }

    /// Per-probe latency histogram for one phase.
    pub fn phase_histogram(&self, phase: Phase) -> &Log2Histogram {
        &self.phase_hist[phase.index()]
    }

    /// Per-probe magnitude histogram for one counter.
    pub fn counter_histogram(&self, counter: Counter) -> &Log2Histogram {
        &self.counter_hist[counter.index()]
    }

    /// Serialises the snapshot as pretty-printed JSON. The layout is
    /// schema-stable (fixed keys, fixed order — pinned by a golden test):
    ///
    /// ```json
    /// {
    ///   "schema_version": 1,
    ///   "probes": <u64>,
    ///   "counters": { "<counter>": <u64>, … },
    ///   "gauges": { "<gauge>": <u64>, … },
    ///   "phases": {
    ///     "<phase>": { "probes", "total_ns", "p50_ns", "p90_ns",
    ///                   "p99_ns", "max_ns" }, …
    ///   },
    ///   "per_probe": {
    ///     "<counter>": { "probes", "sum", "p50", "p90", "p99", "max" }, …
    ///   }
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.field_u64("schema_version", SNAPSHOT_SCHEMA_VERSION);
        w.field_u64("probes", self.probes);
        w.begin_object("counters");
        for c in Counter::ALL {
            w.field_u64(c.name(), self.counters[c.index()]);
        }
        w.end_object();
        w.begin_object("gauges");
        for g in Gauge::ALL {
            w.field_u64(g.name(), self.gauges[g.index()]);
        }
        w.end_object();
        w.begin_object("phases");
        for p in Phase::ALL {
            let h = &self.phase_hist[p.index()];
            w.begin_object(p.name());
            w.field_u64("probes", h.count());
            w.field_u64("total_ns", self.phase_total_ns[p.index()]);
            w.field_u64("p50_ns", h.quantile(0.50));
            w.field_u64("p90_ns", h.quantile(0.90));
            w.field_u64("p99_ns", h.quantile(0.99));
            w.field_u64("max_ns", h.max());
            w.end_object();
        }
        w.end_object();
        w.begin_object("per_probe");
        for c in Counter::ALL {
            let h = &self.counter_hist[c.index()];
            w.begin_object(c.name());
            w.field_u64("probes", h.count());
            w.field_u64("sum", h.sum());
            w.field_u64("p50", h.quantile(0.50));
            w.field_u64("p90", h.quantile(0.90));
            w.field_u64("p99", h.quantile(0.99));
            w.field_u64("max", h.max());
            w.end_object();
        }
        w.end_object();
        w.finish()
    }

    fn flush_probe(&mut self) {
        for i in 0..NUM_PHASES {
            if self.cur_phase_seen[i] {
                self.phase_hist[i].record(self.cur_phase_ns[i]);
            }
            self.cur_phase_ns[i] = 0;
            self.cur_phase_seen[i] = false;
        }
        for i in 0..NUM_COUNTERS {
            if self.cur_counter_seen[i] {
                self.counter_hist[i].record(self.cur_counter[i]);
            }
            self.cur_counter[i] = 0;
            self.cur_counter_seen[i] = false;
        }
    }
}

impl Recorder for CollectingRecorder {
    fn probe_start(&mut self, _probe_id: u32) {
        // A dangling open probe (driver bailed early) is flushed rather
        // than leaked into the next probe's scratch.
        if self.in_probe {
            self.flush_probe();
            self.probes += 1;
        }
        self.in_probe = true;
    }

    fn probe_end(&mut self, _probe_id: u32) {
        if self.in_probe {
            self.flush_probe();
            self.probes += 1;
            self.in_probe = false;
        }
    }

    fn exit_phase(&mut self, phase: Phase, elapsed: Duration) {
        let ns = elapsed.as_nanos().min(u64::MAX as u128) as u64;
        let i = phase.index();
        self.phase_total_ns[i] = self.phase_total_ns[i].saturating_add(ns);
        if self.in_probe {
            self.cur_phase_ns[i] = self.cur_phase_ns[i].saturating_add(ns);
            self.cur_phase_seen[i] = true;
        } else {
            self.phase_hist[i].record(ns);
        }
    }

    fn counter(&mut self, counter: Counter, delta: u64) {
        let i = counter.index();
        self.counters[i] += delta;
        if self.in_probe {
            self.cur_counter[i] += delta;
            self.cur_counter_seen[i] = true;
        } else {
            self.counter_hist[i].record(delta);
        }
    }

    fn gauge(&mut self, gauge: Gauge, value: u64) {
        let i = gauge.index();
        self.gauges[i] = self.gauges[i].max(value);
    }
}

impl MergeRecorder for CollectingRecorder {
    fn absorb(&mut self, mut other: Self) {
        if other.in_probe {
            other.flush_probe();
            other.probes += 1;
        }
        self.probes += other.probes;
        for i in 0..NUM_COUNTERS {
            self.counters[i] += other.counters[i];
            self.counter_hist[i].merge(&other.counter_hist[i]);
        }
        for i in 0..NUM_GAUGES {
            self.gauges[i] = self.gauges[i].max(other.gauges[i]);
        }
        for i in 0..NUM_PHASES {
            self.phase_total_ns[i] = self.phase_total_ns[i].saturating_add(other.phase_total_ns[i]);
            self.phase_hist[i].merge(&other.phase_hist[i]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic event sequence: two probes plus one out-of-probe
    /// total span, with fixed durations.
    fn scripted() -> CollectingRecorder {
        let mut r = CollectingRecorder::new();
        r.probe_start(0);
        r.enter_phase(Phase::Qgram);
        r.exit_phase(Phase::Qgram, Duration::from_nanos(100));
        r.counter(Counter::PairsInScope, 4);
        r.counter(Counter::QgramSurvivors, 2);
        r.counter(Counter::CdfUndecided, 2);
        r.enter_phase(Phase::Verify);
        r.exit_phase(Phase::Verify, Duration::from_nanos(700));
        r.enter_phase(Phase::Verify);
        r.exit_phase(Phase::Verify, Duration::from_nanos(300));
        r.counter(Counter::VerifiedSimilar, 1);
        r.counter(Counter::VerifiedDissimilar, 1);
        r.probe_end(0);
        r.probe_start(1);
        r.counter(Counter::PairsInScope, 0);
        r.enter_phase(Phase::Qgram);
        r.exit_phase(Phase::Qgram, Duration::from_nanos(50));
        r.probe_end(1);
        r.gauge(Gauge::IndexBytes, 1000);
        r.gauge(Gauge::IndexBytes, 400);
        r.gauge(Gauge::PeakIndexBytes, 1200);
        r.exit_phase(Phase::Total, Duration::from_nanos(2000));
        r
    }

    #[test]
    fn per_probe_spans_aggregate_within_probe() {
        let r = scripted();
        assert_eq!(r.probes(), 2);
        // The two verify spans of probe 0 fused into one 1000ns sample.
        let verify = r.phase_histogram(Phase::Verify);
        assert_eq!(verify.count(), 1);
        assert_eq!(verify.max(), 1000);
        assert_eq!(r.phase_total_ns(Phase::Verify), 1000);
        // Qgram was seen by both probes.
        assert_eq!(r.phase_histogram(Phase::Qgram).count(), 2);
        assert_eq!(r.phase_total_ns(Phase::Qgram), 150);
        // The out-of-probe total span became a direct sample.
        assert_eq!(r.phase_histogram(Phase::Total).count(), 1);
        assert_eq!(r.phase_histogram(Phase::Total).max(), 2000);
    }

    #[test]
    fn counters_total_and_per_probe() {
        let r = scripted();
        assert_eq!(r.counter_total(Counter::PairsInScope), 4);
        let h = r.counter_histogram(Counter::PairsInScope);
        // Probe 0 saw 4, probe 1 saw an explicit 0.
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 4);
        assert_eq!(h.quantile(0.5), 0);
        // A counter never touched has no per-probe samples.
        assert_eq!(r.counter_histogram(Counter::CdfRejected).count(), 0);
    }

    #[test]
    fn gauges_keep_max() {
        let r = scripted();
        assert_eq!(r.gauge_max(Gauge::IndexBytes), 1000);
        assert_eq!(r.gauge_max(Gauge::PeakIndexBytes), 1200);
        assert_eq!(r.gauge_max(Gauge::NumStrings), 0);
    }

    #[test]
    fn absorb_merges_workers() {
        let mut a = scripted();
        let b = scripted();
        a.absorb(b);
        assert_eq!(a.probes(), 4);
        assert_eq!(a.counter_total(Counter::PairsInScope), 8);
        assert_eq!(a.phase_total_ns(Phase::Verify), 2000);
        assert_eq!(a.phase_histogram(Phase::Verify).count(), 2);
        assert_eq!(a.gauge_max(Gauge::IndexBytes), 1000);
    }

    #[test]
    fn absorb_flushes_dangling_probe() {
        let mut a = CollectingRecorder::new();
        let mut b = CollectingRecorder::new();
        b.probe_start(9);
        b.counter(Counter::OutputPairs, 3);
        a.absorb(b);
        assert_eq!(a.probes(), 1);
        assert_eq!(a.counter_histogram(Counter::OutputPairs).count(), 1);
    }

    /// Golden test: the snapshot serialisation of a fixed event script is
    /// pinned byte-for-byte. If this test fails you changed the snapshot
    /// schema — bump [`SNAPSHOT_SCHEMA_VERSION`] and update the golden
    /// text deliberately.
    #[test]
    fn golden_snapshot_json() {
        let got = scripted().to_json();
        let want = r#"{
  "schema_version": 1,
  "probes": 2,
  "counters": {
    "pairs_in_scope": 4,
    "qgram_survivors": 2,
    "qgram_pruned_count": 0,
    "qgram_pruned_bound": 0,
    "freq_survivors": 0,
    "freq_pruned_lower": 0,
    "freq_pruned_chebyshev": 0,
    "cdf_accepted": 0,
    "cdf_rejected": 0,
    "cdf_undecided": 2,
    "verified_similar": 1,
    "verified_dissimilar": 1,
    "output_pairs": 0,
    "index_insertions": 0,
    "index_postings_scanned": 0,
    "index_candidates_surfaced": 0,
    "verifier_builds": 0,
    "steal_batches": 0,
    "faults_injected": 0,
    "batches_retried": 0,
    "probes_quarantined": 0,
    "waves_resumed": 0,
    "serve_accepted": 0,
    "serve_full": 0,
    "serve_degraded": 0,
    "serve_shed": 0,
    "serve_deadline": 0,
    "serve_panics": 0,
    "hedges_sent": 0,
    "hedges_won": 0,
    "shards_quarantined": 0,
    "partial_responses": 0,
    "snapshot_bands_salvaged": 0,
    "snapshot_bands_rebuilt": 0,
    "snapshot_corruptions_detected": 0,
    "warm_restarts": 0
  },
  "gauges": {
    "index_bytes": 1000,
    "peak_index_bytes": 1200,
    "num_strings": 0,
    "resident_shards": 0,
    "peak_resident_bytes": 0,
    "serve_queue_depth": 0,
    "shard_healthy": 0,
    "snapshot_age_seconds": 0
  },
  "phases": {
    "qgram": {
      "probes": 2,
      "total_ns": 150,
      "p50_ns": 63,
      "p90_ns": 100,
      "p99_ns": 100,
      "max_ns": 100
    },
    "freq": {
      "probes": 0,
      "total_ns": 0,
      "p50_ns": 0,
      "p90_ns": 0,
      "p99_ns": 0,
      "max_ns": 0
    },
    "cdf": {
      "probes": 0,
      "total_ns": 0,
      "p50_ns": 0,
      "p90_ns": 0,
      "p99_ns": 0,
      "max_ns": 0
    },
    "verify": {
      "probes": 1,
      "total_ns": 1000,
      "p50_ns": 1000,
      "p90_ns": 1000,
      "p99_ns": 1000,
      "max_ns": 1000
    },
    "index": {
      "probes": 0,
      "total_ns": 0,
      "p50_ns": 0,
      "p90_ns": 0,
      "p99_ns": 0,
      "max_ns": 0
    },
    "total": {
      "probes": 1,
      "total_ns": 2000,
      "p50_ns": 2000,
      "p90_ns": 2000,
      "p99_ns": 2000,
      "max_ns": 2000
    }
  },
  "per_probe": {
    "pairs_in_scope": {
      "probes": 2,
      "sum": 4,
      "p50": 0,
      "p90": 4,
      "p99": 4,
      "max": 4
    },
    "qgram_survivors": {
      "probes": 1,
      "sum": 2,
      "p50": 2,
      "p90": 2,
      "p99": 2,
      "max": 2
    },
    "qgram_pruned_count": {
      "probes": 0,
      "sum": 0,
      "p50": 0,
      "p90": 0,
      "p99": 0,
      "max": 0
    },
    "qgram_pruned_bound": {
      "probes": 0,
      "sum": 0,
      "p50": 0,
      "p90": 0,
      "p99": 0,
      "max": 0
    },
    "freq_survivors": {
      "probes": 0,
      "sum": 0,
      "p50": 0,
      "p90": 0,
      "p99": 0,
      "max": 0
    },
    "freq_pruned_lower": {
      "probes": 0,
      "sum": 0,
      "p50": 0,
      "p90": 0,
      "p99": 0,
      "max": 0
    },
    "freq_pruned_chebyshev": {
      "probes": 0,
      "sum": 0,
      "p50": 0,
      "p90": 0,
      "p99": 0,
      "max": 0
    },
    "cdf_accepted": {
      "probes": 0,
      "sum": 0,
      "p50": 0,
      "p90": 0,
      "p99": 0,
      "max": 0
    },
    "cdf_rejected": {
      "probes": 0,
      "sum": 0,
      "p50": 0,
      "p90": 0,
      "p99": 0,
      "max": 0
    },
    "cdf_undecided": {
      "probes": 1,
      "sum": 2,
      "p50": 2,
      "p90": 2,
      "p99": 2,
      "max": 2
    },
    "verified_similar": {
      "probes": 1,
      "sum": 1,
      "p50": 1,
      "p90": 1,
      "p99": 1,
      "max": 1
    },
    "verified_dissimilar": {
      "probes": 1,
      "sum": 1,
      "p50": 1,
      "p90": 1,
      "p99": 1,
      "max": 1
    },
    "output_pairs": {
      "probes": 0,
      "sum": 0,
      "p50": 0,
      "p90": 0,
      "p99": 0,
      "max": 0
    },
    "index_insertions": {
      "probes": 0,
      "sum": 0,
      "p50": 0,
      "p90": 0,
      "p99": 0,
      "max": 0
    },
    "index_postings_scanned": {
      "probes": 0,
      "sum": 0,
      "p50": 0,
      "p90": 0,
      "p99": 0,
      "max": 0
    },
    "index_candidates_surfaced": {
      "probes": 0,
      "sum": 0,
      "p50": 0,
      "p90": 0,
      "p99": 0,
      "max": 0
    },
    "verifier_builds": {
      "probes": 0,
      "sum": 0,
      "p50": 0,
      "p90": 0,
      "p99": 0,
      "max": 0
    },
    "steal_batches": {
      "probes": 0,
      "sum": 0,
      "p50": 0,
      "p90": 0,
      "p99": 0,
      "max": 0
    },
    "faults_injected": {
      "probes": 0,
      "sum": 0,
      "p50": 0,
      "p90": 0,
      "p99": 0,
      "max": 0
    },
    "batches_retried": {
      "probes": 0,
      "sum": 0,
      "p50": 0,
      "p90": 0,
      "p99": 0,
      "max": 0
    },
    "probes_quarantined": {
      "probes": 0,
      "sum": 0,
      "p50": 0,
      "p90": 0,
      "p99": 0,
      "max": 0
    },
    "waves_resumed": {
      "probes": 0,
      "sum": 0,
      "p50": 0,
      "p90": 0,
      "p99": 0,
      "max": 0
    },
    "serve_accepted": {
      "probes": 0,
      "sum": 0,
      "p50": 0,
      "p90": 0,
      "p99": 0,
      "max": 0
    },
    "serve_full": {
      "probes": 0,
      "sum": 0,
      "p50": 0,
      "p90": 0,
      "p99": 0,
      "max": 0
    },
    "serve_degraded": {
      "probes": 0,
      "sum": 0,
      "p50": 0,
      "p90": 0,
      "p99": 0,
      "max": 0
    },
    "serve_shed": {
      "probes": 0,
      "sum": 0,
      "p50": 0,
      "p90": 0,
      "p99": 0,
      "max": 0
    },
    "serve_deadline": {
      "probes": 0,
      "sum": 0,
      "p50": 0,
      "p90": 0,
      "p99": 0,
      "max": 0
    },
    "serve_panics": {
      "probes": 0,
      "sum": 0,
      "p50": 0,
      "p90": 0,
      "p99": 0,
      "max": 0
    },
    "hedges_sent": {
      "probes": 0,
      "sum": 0,
      "p50": 0,
      "p90": 0,
      "p99": 0,
      "max": 0
    },
    "hedges_won": {
      "probes": 0,
      "sum": 0,
      "p50": 0,
      "p90": 0,
      "p99": 0,
      "max": 0
    },
    "shards_quarantined": {
      "probes": 0,
      "sum": 0,
      "p50": 0,
      "p90": 0,
      "p99": 0,
      "max": 0
    },
    "partial_responses": {
      "probes": 0,
      "sum": 0,
      "p50": 0,
      "p90": 0,
      "p99": 0,
      "max": 0
    },
    "snapshot_bands_salvaged": {
      "probes": 0,
      "sum": 0,
      "p50": 0,
      "p90": 0,
      "p99": 0,
      "max": 0
    },
    "snapshot_bands_rebuilt": {
      "probes": 0,
      "sum": 0,
      "p50": 0,
      "p90": 0,
      "p99": 0,
      "max": 0
    },
    "snapshot_corruptions_detected": {
      "probes": 0,
      "sum": 0,
      "p50": 0,
      "p90": 0,
      "p99": 0,
      "max": 0
    },
    "warm_restarts": {
      "probes": 0,
      "sum": 0,
      "p50": 0,
      "p90": 0,
      "p99": 0,
      "max": 0
    }
  }
}
"#;
        assert_eq!(got, want);
    }
}
