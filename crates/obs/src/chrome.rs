//! Chrome trace-event JSON output — the causal span tree of a run,
//! loadable in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! Every span is emitted as a complete ("ph":"X") trace event with a
//! microsecond timestamp relative to a process-wide epoch, so events from
//! recorders absorbed across workers land on one consistent timeline.
//! Each recorder owns a *lane* (rendered as the event `tid`); span ids
//! are `lane << 32 | counter`, so ids never collide across workers.
//!
//! The causal model: a probe opens a `"probe"` span ([`SpanId`] parent
//! [`SpanId::ROOT`]); every phase span opened while the probe is active
//! becomes its child (`args.parent` = the probe's span id). Phase spans
//! opened outside a probe (index build, driver total) are top-level.
//! When a trace id is set ([`Recorder::set_trace_id`]), every event
//! carries it as `args.trace` (16 lowercase hex digits) — the same id the
//! serve wire protocol and [`crate::TraceRecorder`] lines carry, so one
//! request can be followed across client, server log, and trace viewer.
//!
//! Counters and gauges are not rendered: they are aggregate metrics, not
//! causal events, and belong to [`crate::CollectingRecorder`] /
//! [`crate::MetricsRegistry`].

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::{MergeRecorder, Phase, Recorder, SpanId};

/// All timestamps are measured against one process-wide instant so that
/// recorders created at different times (per-worker, per-request) share a
/// timeline.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Lane (trace-event `tid`) allocator; lane 0 is never handed out so a
/// span id can never be zero (= [`SpanId::ROOT`]).
fn next_lane() -> u32 {
    static NEXT_LANE: AtomicU32 = AtomicU32::new(1);
    // ordering: a pure id allocator — uniqueness is all that matters.
    NEXT_LANE.fetch_add(1, Ordering::Relaxed)
}

/// Buffers the event stream as Chrome trace events; render the buffer
/// with [`ChromeTraceRecorder::render`] once the run (or request) ends.
#[derive(Debug)]
pub struct ChromeTraceRecorder {
    /// Pre-rendered JSON objects, one per completed span.
    events: Vec<String>,
    lane: u32,
    next_span: u64,
    trace_id: u64,
    enabled: bool,
    /// The open probe span: (span id, probe id, start instant).
    probe: Option<(SpanId, u32, Instant)>,
    /// Open phase spans, innermost last: (span id, phase, start instant).
    stack: Vec<(SpanId, Phase, Instant)>,
}

impl Default for ChromeTraceRecorder {
    fn default() -> Self {
        ChromeTraceRecorder::new()
    }
}

impl ChromeTraceRecorder {
    /// An enabled recorder on a fresh lane.
    pub fn new() -> Self {
        ChromeTraceRecorder {
            events: Vec::new(),
            lane: next_lane(),
            next_span: 0,
            trace_id: 0,
            enabled: true,
            probe: None,
            stack: Vec::new(),
        }
    }

    /// A disabled recorder: accepts events, buffers nothing. Lets callers
    /// keep one statically-known recorder type for traced and untraced
    /// requests (e.g. `(CollectingRecorder, ChromeTraceRecorder)`).
    pub fn silent() -> Self {
        ChromeTraceRecorder {
            enabled: false,
            ..ChromeTraceRecorder::new()
        }
    }

    /// `true` when events are being buffered.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The trace id stamped on events (0 = untraced).
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// Number of completed spans buffered so far.
    pub fn span_count(&self) -> usize {
        self.events.len()
    }

    fn alloc_span(&mut self) -> SpanId {
        self.next_span += 1;
        SpanId((u64::from(self.lane) << 32) | self.next_span)
    }

    /// Current parent for a newly-opened span: innermost open phase, else
    /// the open probe, else the root.
    fn parent(&self) -> SpanId {
        if let Some(&(span, _, _)) = self.stack.last() {
            span
        } else if let Some((span, _, _)) = self.probe {
            span
        } else {
            SpanId::ROOT
        }
    }

    fn push_event(
        &mut self,
        name: &str,
        start: Instant,
        dur_us: u64,
        span: SpanId,
        parent: SpanId,
        probe_id: Option<u32>,
    ) {
        let cat = if probe_id.is_some() { "probe" } else { "phase" };
        let ts = start.saturating_duration_since(epoch()).as_micros() as u64;
        let mut args = format!("\"span\":{},\"parent\":{}", span.0, parent.0);
        if self.trace_id != 0 {
            args.push_str(&format!(",\"trace\":\"{:016x}\"", self.trace_id));
        }
        if let Some(id) = probe_id {
            args.push_str(&format!(",\"probe\":{id}"));
        }
        self.events.push(format!(
            "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
             \"ts\":{ts},\"dur\":{dur_us},\"args\":{{{args}}}}}",
            self.lane
        ));
    }

    /// Closes any spans left open (driver bailed early) so the buffer is
    /// well-formed, measuring their duration up to now.
    fn close_dangling(&mut self) {
        while let Some((span, phase, start)) = self.stack.pop() {
            let parent = self.parent();
            let dur = start.elapsed().as_micros() as u64;
            self.push_event(phase.name(), start, dur, span, parent, None);
        }
        if let Some((span, probe_id, start)) = self.probe.take() {
            let dur = start.elapsed().as_micros() as u64;
            self.push_event("probe", start, dur, span, SpanId::ROOT, Some(probe_id));
        }
    }

    /// Renders the buffered spans as one compact (single-line) Chrome
    /// trace-event JSON document. Safe to call mid-run: only completed
    /// spans are included.
    pub fn render(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(e);
        }
        out.push_str("]}");
        out
    }

    /// [`ChromeTraceRecorder::render`] after closing dangling spans;
    /// consumes the recorder. Returns `None` when disabled.
    pub fn finish(mut self) -> Option<String> {
        if !self.enabled {
            return None;
        }
        self.close_dangling();
        Some(self.render())
    }
}

impl Recorder for ChromeTraceRecorder {
    fn probe_start(&mut self, probe_id: u32) {
        if !self.enabled {
            return;
        }
        self.close_dangling();
        let span = self.alloc_span();
        self.probe = Some((span, probe_id, Instant::now()));
    }

    fn probe_end(&mut self, probe_id: u32) {
        if !self.enabled {
            return;
        }
        // Phase spans still open belong to the probe; close them first so
        // the probe event is emitted last (children before parent, the
        // order Perfetto expects from flattened "X" events is free-form,
        // but containment must hold).
        while let Some((span, phase, start)) = self.stack.pop() {
            let parent = self.parent();
            let dur = start.elapsed().as_micros() as u64;
            self.push_event(phase.name(), start, dur, span, parent, None);
        }
        if let Some((span, _, start)) = self.probe.take() {
            let dur = start.elapsed().as_micros() as u64;
            self.push_event("probe", start, dur, span, SpanId::ROOT, Some(probe_id));
        }
    }

    fn enter_phase(&mut self, phase: Phase) {
        if !self.enabled {
            return;
        }
        let span = self.alloc_span();
        self.stack.push((span, phase, Instant::now()));
    }

    fn exit_phase(&mut self, phase: Phase, elapsed: std::time::Duration) {
        if !self.enabled {
            return;
        }
        // Innermost matching span; drivers nest properly, so this is the
        // top of the stack in practice.
        let Some(pos) = self.stack.iter().rposition(|&(_, p, _)| p == phase) else {
            return;
        };
        let (span, _, start) = self.stack.remove(pos);
        let parent = self.parent();
        let dur = elapsed.as_micros() as u64;
        self.push_event(phase.name(), start, dur, span, parent, None);
    }

    fn set_trace_id(&mut self, trace_id: u64) {
        self.trace_id = trace_id;
    }
}

impl MergeRecorder for ChromeTraceRecorder {
    /// Appends the other lane's completed spans (closing its dangling
    /// ones first). Lanes differ, so span ids cannot collide.
    fn absorb(&mut self, mut other: Self) {
        other.close_dangling();
        self.events.extend(other.events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// Extracts the `"key":value` number for each event in emission order.
    fn field_values(json: &str, key: &str) -> Vec<u64> {
        let pat = format!("\"{key}\":");
        let mut out = Vec::new();
        let mut rest = json;
        while let Some(i) = rest.find(&pat) {
            rest = &rest[i + pat.len()..];
            let end = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            out.push(rest[..end].parse().unwrap());
        }
        out
    }

    #[test]
    fn probe_phases_nest_under_probe_span() {
        let mut t = ChromeTraceRecorder::new();
        t.probe_start(7);
        t.enter_phase(Phase::Qgram);
        t.exit_phase(Phase::Qgram, Duration::from_micros(5));
        t.enter_phase(Phase::Cdf);
        t.exit_phase(Phase::Cdf, Duration::from_micros(3));
        t.probe_end(7);
        let json = t.finish().unwrap();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(!json.contains('\n'), "wire transport needs one line");
        assert!(json.contains("\"name\":\"qgram\""));
        assert!(json.contains("\"name\":\"cdf\""));
        assert!(json.contains("\"name\":\"probe\""));
        assert!(json.contains("\"probe\":7"));
        // Both phase spans are children of the probe span.
        let spans = field_values(&json, "span");
        let parents = field_values(&json, "parent");
        let probe_span = spans[2]; // probe event emitted last
        assert_eq!(parents[0], probe_span);
        assert_eq!(parents[1], probe_span);
        assert_eq!(parents[2], SpanId::ROOT.0);
    }

    #[test]
    fn trace_id_is_stamped_on_every_event() {
        let mut t = ChromeTraceRecorder::new();
        t.set_trace_id(0xdead_beef);
        t.probe_start(0);
        t.enter_phase(Phase::Verify);
        t.exit_phase(Phase::Verify, Duration::from_micros(1));
        t.probe_end(0);
        let json = t.finish().unwrap();
        assert_eq!(json.matches("\"trace\":\"00000000deadbeef\"").count(), 2);
    }

    #[test]
    fn out_of_probe_spans_are_top_level() {
        let mut t = ChromeTraceRecorder::new();
        t.enter_phase(Phase::Index);
        t.exit_phase(Phase::Index, Duration::from_micros(2));
        let json = t.finish().unwrap();
        assert!(json.contains("\"name\":\"index\""));
        assert_eq!(field_values(&json, "parent"), vec![SpanId::ROOT.0]);
    }

    #[test]
    fn dangling_spans_are_closed_on_finish() {
        let mut t = ChromeTraceRecorder::new();
        t.probe_start(1);
        t.enter_phase(Phase::Freq);
        let json = t.finish().unwrap();
        assert!(json.contains("\"name\":\"freq\""));
        assert!(json.contains("\"name\":\"probe\""));
    }

    #[test]
    fn silent_recorder_buffers_nothing() {
        let mut t = ChromeTraceRecorder::silent();
        t.probe_start(0);
        t.enter_phase(Phase::Qgram);
        t.exit_phase(Phase::Qgram, Duration::from_micros(1));
        t.probe_end(0);
        assert_eq!(t.span_count(), 0);
        assert!(t.finish().is_none());
    }

    #[test]
    fn absorb_appends_the_other_lane() {
        let mut a = ChromeTraceRecorder::new();
        let mut b = ChromeTraceRecorder::new();
        a.enter_phase(Phase::Total);
        a.exit_phase(Phase::Total, Duration::from_micros(9));
        b.probe_start(2);
        b.probe_end(2);
        a.absorb(b);
        assert_eq!(a.span_count(), 2);
        // Distinct lanes → distinct span ids.
        let json = a.render();
        let spans = field_values(&json, "span");
        assert_ne!(spans[0], spans[1]);
    }
}
