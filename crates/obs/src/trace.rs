//! Per-probe trace lines for a human (or a log pipeline) watching a run.
//!
//! # Line format (pinned by a golden test)
//!
//! Every line starts with `seq=<n>` — a per-sink monotonic sequence
//! number starting at 1, so dropped or reordered log lines are
//! detectable. Four line shapes follow the sequence field:
//!
//! ```text
//! seq=<n> probe=<id> [trace=<16 hex>] [<phase>_ns=<ns>]… [<counter>=<v>]…
//! seq=<n> span <phase>_ns=<ns>
//! seq=<n> count <counter>=<v>
//! seq=<n> gauge <gauge>=<v>
//! ```
//!
//! * `probe` lines aggregate one probe's spans and counters; only phases
//!   and counters actually observed appear, in [`Phase::ALL`] /
//!   [`Counter::ALL`] order, keeping output proportional to work done.
//! * `trace=` carries the end-to-end trace id
//!   ([`Recorder::set_trace_id`], 16 lowercase hex digits) and appears
//!   only when a nonzero id is set — it links a probe line to the same
//!   request's wire-protocol id and Chrome trace spans.
//! * `span` / `count` lines report phase exits and counter increments
//!   observed outside any probe (index build, driver totals).
//! * `gauge` lines are always emitted immediately, even mid-probe.

use std::io::Write;
use std::time::Duration;

use crate::{Counter, Gauge, MergeRecorder, Phase, Recorder};

const NUM_PHASES: usize = Phase::ALL.len();
const NUM_COUNTERS: usize = Counter::ALL.len();

/// Emits one `key=value` line per probe (and per out-of-probe gauge /
/// span) to any `io::Write` — see the module docs for the exact line
/// format. The CLI's `--trace` wires this to stderr:
///
/// ```text
/// seq=1 probe=17 qgram_ns=10231 cdf_ns=884 verify_ns=120933 pairs_in_scope=42 qgram_survivors=3 cdf_undecided=2 verified_similar=1 verified_dissimilar=1
/// seq=2 gauge peak_index_bytes=1048576
/// seq=3 span total_ns=193822110
/// ```
///
/// Write errors are deliberately swallowed — tracing must never fail a
/// join.
#[derive(Debug)]
pub struct TraceRecorder<W: Write = std::io::Stderr> {
    out: Option<W>,
    probe_id: u32,
    phase_ns: [u64; NUM_PHASES],
    phase_seen: [bool; NUM_PHASES],
    counter: [u64; NUM_COUNTERS],
    counter_seen: [bool; NUM_COUNTERS],
    in_probe: bool,
    seq: u64,
    trace_id: u64,
}

impl TraceRecorder<std::io::Stderr> {
    /// Traces to stderr.
    pub fn stderr() -> Self {
        TraceRecorder::to(std::io::stderr())
    }
}

impl<W: Write> TraceRecorder<W> {
    /// Traces to `out`.
    pub fn to(out: W) -> Self {
        TraceRecorder {
            out: Some(out),
            probe_id: 0,
            phase_ns: [0; NUM_PHASES],
            phase_seen: [false; NUM_PHASES],
            counter: [0; NUM_COUNTERS],
            counter_seen: [false; NUM_COUNTERS],
            in_probe: false,
            seq: 0,
            trace_id: 0,
        }
    }

    /// A disabled tracer: accepts events, writes nothing. Lets callers
    /// keep one statically-known recorder type for traced and untraced
    /// runs (e.g. `(CollectingRecorder, TraceRecorder)`).
    pub fn silent() -> Self {
        TraceRecorder {
            out: None,
            probe_id: 0,
            phase_ns: [0; NUM_PHASES],
            phase_seen: [false; NUM_PHASES],
            counter: [0; NUM_COUNTERS],
            counter_seen: [false; NUM_COUNTERS],
            in_probe: false,
            seq: 0,
            trace_id: 0,
        }
    }

    /// Consumes the tracer and returns the writer (for tests).
    pub fn into_inner(self) -> Option<W> {
        self.out
    }

    /// The next line's `seq=` value (per-sink, monotonic from 1).
    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    fn flush_probe_line(&mut self) {
        if self.out.is_none() {
            self.reset_scratch();
            return;
        }
        let mut line = format!("seq={} probe={}", self.next_seq(), self.probe_id);
        if self.trace_id != 0 {
            line.push_str(&format!(" trace={:016x}", self.trace_id));
        }
        for p in Phase::ALL {
            if self.phase_seen[p.index()] {
                line.push_str(&format!(" {}_ns={}", p.name(), self.phase_ns[p.index()]));
            }
        }
        for c in Counter::ALL {
            if self.counter_seen[c.index()] {
                line.push_str(&format!(" {}={}", c.name(), self.counter[c.index()]));
            }
        }
        line.push('\n');
        if let Some(out) = self.out.as_mut() {
            let _ = out.write_all(line.as_bytes());
        }
        self.reset_scratch();
    }

    fn reset_scratch(&mut self) {
        self.phase_ns = [0; NUM_PHASES];
        self.phase_seen = [false; NUM_PHASES];
        self.counter = [0; NUM_COUNTERS];
        self.counter_seen = [false; NUM_COUNTERS];
    }
}

impl<W: Write> Recorder for TraceRecorder<W> {
    fn probe_start(&mut self, probe_id: u32) {
        if self.in_probe {
            self.flush_probe_line();
        }
        self.in_probe = true;
        self.probe_id = probe_id;
    }

    fn probe_end(&mut self, probe_id: u32) {
        if self.in_probe {
            self.probe_id = probe_id;
            self.flush_probe_line();
            self.in_probe = false;
        }
    }

    fn exit_phase(&mut self, phase: Phase, elapsed: Duration) {
        let ns = elapsed.as_nanos().min(u64::MAX as u128) as u64;
        if self.in_probe {
            let i = phase.index();
            self.phase_ns[i] = self.phase_ns[i].saturating_add(ns);
            self.phase_seen[i] = true;
        } else if self.out.is_some() {
            let seq = self.next_seq();
            if let Some(out) = self.out.as_mut() {
                let _ = writeln!(out, "seq={seq} span {}_ns={}", phase.name(), ns);
            }
        }
    }

    fn counter(&mut self, counter: Counter, delta: u64) {
        if self.in_probe {
            let i = counter.index();
            self.counter[i] += delta;
            self.counter_seen[i] = true;
        } else if self.out.is_some() {
            let seq = self.next_seq();
            if let Some(out) = self.out.as_mut() {
                let _ = writeln!(out, "seq={seq} count {}={}", counter.name(), delta);
            }
        }
    }

    fn gauge(&mut self, gauge: Gauge, value: u64) {
        // Gauges are run-level; always emitted immediately (index growth
        // is interesting *between* probes).
        if self.out.is_some() {
            let seq = self.next_seq();
            if let Some(out) = self.out.as_mut() {
                let _ = writeln!(out, "seq={seq} gauge {}={}", gauge.name(), value);
            }
        }
    }

    fn set_trace_id(&mut self, trace_id: u64) {
        self.trace_id = trace_id;
    }
}

impl<W: Write + Send> MergeRecorder for TraceRecorder<W> {
    /// Trace lines were already written as events arrived; there is
    /// nothing to fold. A dangling open probe on the absorbed side is
    /// flushed so its line is not lost.
    fn absorb(&mut self, mut other: Self) {
        if other.in_probe {
            other.flush_probe_line();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(t: TraceRecorder<Vec<u8>>) -> Vec<String> {
        String::from_utf8(t.into_inner().unwrap())
            .unwrap()
            .lines()
            .map(String::from)
            .collect()
    }

    #[test]
    fn one_line_per_probe_with_observed_fields_only() {
        let mut t = TraceRecorder::to(Vec::new());
        t.probe_start(3);
        t.enter_phase(Phase::Qgram);
        t.exit_phase(Phase::Qgram, Duration::from_nanos(40));
        t.exit_phase(Phase::Qgram, Duration::from_nanos(2));
        t.counter(Counter::PairsInScope, 5);
        t.probe_end(3);
        t.probe_start(4);
        t.probe_end(4);
        let lines = lines(t);
        assert_eq!(
            lines,
            vec!["seq=1 probe=3 qgram_ns=42 pairs_in_scope=5", "seq=2 probe=4"]
        );
    }

    /// Golden test for the documented line format: sequence numbers are
    /// per-sink and monotonic from 1, the trace id appears on probe lines
    /// as 16 lowercase hex digits, and the four line shapes render
    /// exactly as the module docs promise.
    #[test]
    fn golden_line_format() {
        let mut t = TraceRecorder::to(Vec::new());
        t.set_trace_id(0x00ab_cdef_0123_4567);
        t.gauge(Gauge::NumStrings, 2000);
        t.probe_start(17);
        t.enter_phase(Phase::Qgram);
        t.exit_phase(Phase::Qgram, Duration::from_nanos(10231));
        t.enter_phase(Phase::Cdf);
        t.exit_phase(Phase::Cdf, Duration::from_nanos(884));
        t.counter(Counter::PairsInScope, 42);
        t.counter(Counter::CdfUndecided, 2);
        t.probe_end(17);
        t.exit_phase(Phase::Total, Duration::from_nanos(193822));
        t.counter(Counter::OutputPairs, 7);
        assert_eq!(
            lines(t),
            vec![
                "seq=1 gauge num_strings=2000",
                "seq=2 probe=17 trace=00abcdef01234567 qgram_ns=10231 cdf_ns=884 \
                 pairs_in_scope=42 cdf_undecided=2",
                "seq=3 span total_ns=193822",
                "seq=4 count output_pairs=7",
            ]
        );
    }

    #[test]
    fn out_of_probe_events_emit_standalone_lines() {
        let mut t = TraceRecorder::to(Vec::new());
        t.gauge(Gauge::PeakIndexBytes, 77);
        t.exit_phase(Phase::Total, Duration::from_nanos(9));
        t.counter(Counter::OutputPairs, 2);
        let lines = lines(t);
        assert_eq!(
            lines,
            vec![
                "seq=1 gauge peak_index_bytes=77",
                "seq=2 span total_ns=9",
                "seq=3 count output_pairs=2"
            ]
        );
    }

    #[test]
    fn gauges_flush_even_inside_probes() {
        let mut t = TraceRecorder::to(Vec::new());
        t.probe_start(0);
        t.gauge(Gauge::IndexBytes, 10);
        t.probe_end(0);
        assert_eq!(lines(t), vec!["seq=1 gauge index_bytes=10", "seq=2 probe=0"]);
    }

    #[test]
    fn silent_tracer_writes_nothing() {
        let mut t: TraceRecorder<Vec<u8>> = TraceRecorder::silent();
        t.probe_start(0);
        t.counter(Counter::OutputPairs, 1);
        t.probe_end(0);
        t.gauge(Gauge::IndexBytes, 5);
        assert!(t.into_inner().is_none());
    }
}
