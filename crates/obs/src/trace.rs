//! Per-probe trace lines for a human (or a log pipeline) watching a run.

use std::io::Write;
use std::time::Duration;

use crate::{Counter, Gauge, MergeRecorder, Phase, Recorder};

const NUM_PHASES: usize = Phase::ALL.len();
const NUM_COUNTERS: usize = Counter::ALL.len();

/// Emits one `key=value` line per probe (and per out-of-probe gauge /
/// span) to any `io::Write`. The CLI's `--trace` wires this to stderr:
///
/// ```text
/// probe=17 qgram_ns=10231 cdf_ns=884 verify_ns=120933 pairs_in_scope=42 qgram_survivors=3 cdf_undecided=2 verified_similar=1 verified_dissimilar=1
/// gauge peak_index_bytes=1048576
/// span total_ns=193822110
/// ```
///
/// Only phases and counters actually observed during a probe appear on
/// its line, keeping the output proportional to work done. Write errors
/// are deliberately swallowed — tracing must never fail a join.
#[derive(Debug)]
pub struct TraceRecorder<W: Write = std::io::Stderr> {
    out: Option<W>,
    probe_id: u32,
    phase_ns: [u64; NUM_PHASES],
    phase_seen: [bool; NUM_PHASES],
    counter: [u64; NUM_COUNTERS],
    counter_seen: [bool; NUM_COUNTERS],
    in_probe: bool,
}

impl TraceRecorder<std::io::Stderr> {
    /// Traces to stderr.
    pub fn stderr() -> Self {
        TraceRecorder::to(std::io::stderr())
    }
}

impl<W: Write> TraceRecorder<W> {
    /// Traces to `out`.
    pub fn to(out: W) -> Self {
        TraceRecorder {
            out: Some(out),
            probe_id: 0,
            phase_ns: [0; NUM_PHASES],
            phase_seen: [false; NUM_PHASES],
            counter: [0; NUM_COUNTERS],
            counter_seen: [false; NUM_COUNTERS],
            in_probe: false,
        }
    }

    /// A disabled tracer: accepts events, writes nothing. Lets callers
    /// keep one statically-known recorder type for traced and untraced
    /// runs (e.g. `(CollectingRecorder, TraceRecorder)`).
    pub fn silent() -> Self {
        TraceRecorder {
            out: None,
            probe_id: 0,
            phase_ns: [0; NUM_PHASES],
            phase_seen: [false; NUM_PHASES],
            counter: [0; NUM_COUNTERS],
            counter_seen: [false; NUM_COUNTERS],
            in_probe: false,
        }
    }

    /// Consumes the tracer and returns the writer (for tests).
    pub fn into_inner(self) -> Option<W> {
        self.out
    }

    fn flush_probe_line(&mut self) {
        let Some(out) = self.out.as_mut() else {
            self.reset_scratch();
            return;
        };
        let mut line = format!("probe={}", self.probe_id);
        for p in Phase::ALL {
            if self.phase_seen[p.index()] {
                line.push_str(&format!(" {}_ns={}", p.name(), self.phase_ns[p.index()]));
            }
        }
        for c in Counter::ALL {
            if self.counter_seen[c.index()] {
                line.push_str(&format!(" {}={}", c.name(), self.counter[c.index()]));
            }
        }
        line.push('\n');
        let _ = out.write_all(line.as_bytes());
        self.reset_scratch();
    }

    fn reset_scratch(&mut self) {
        self.phase_ns = [0; NUM_PHASES];
        self.phase_seen = [false; NUM_PHASES];
        self.counter = [0; NUM_COUNTERS];
        self.counter_seen = [false; NUM_COUNTERS];
    }
}

impl<W: Write> Recorder for TraceRecorder<W> {
    fn probe_start(&mut self, probe_id: u32) {
        if self.in_probe {
            self.flush_probe_line();
        }
        self.in_probe = true;
        self.probe_id = probe_id;
    }

    fn probe_end(&mut self, probe_id: u32) {
        if self.in_probe {
            self.probe_id = probe_id;
            self.flush_probe_line();
            self.in_probe = false;
        }
    }

    fn exit_phase(&mut self, phase: Phase, elapsed: Duration) {
        let ns = elapsed.as_nanos().min(u64::MAX as u128) as u64;
        if self.in_probe {
            let i = phase.index();
            self.phase_ns[i] = self.phase_ns[i].saturating_add(ns);
            self.phase_seen[i] = true;
        } else if let Some(out) = self.out.as_mut() {
            let _ = writeln!(out, "span {}_ns={}", phase.name(), ns);
        }
    }

    fn counter(&mut self, counter: Counter, delta: u64) {
        if self.in_probe {
            let i = counter.index();
            self.counter[i] += delta;
            self.counter_seen[i] = true;
        } else if let Some(out) = self.out.as_mut() {
            let _ = writeln!(out, "count {}={}", counter.name(), delta);
        }
    }

    fn gauge(&mut self, gauge: Gauge, value: u64) {
        // Gauges are run-level; always emitted immediately (index growth
        // is interesting *between* probes).
        if let Some(out) = self.out.as_mut() {
            let _ = writeln!(out, "gauge {}={}", gauge.name(), value);
        }
    }
}

impl<W: Write + Send> MergeRecorder for TraceRecorder<W> {
    /// Trace lines were already written as events arrived; there is
    /// nothing to fold. A dangling open probe on the absorbed side is
    /// flushed so its line is not lost.
    fn absorb(&mut self, mut other: Self) {
        if other.in_probe {
            other.flush_probe_line();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(t: TraceRecorder<Vec<u8>>) -> Vec<String> {
        String::from_utf8(t.into_inner().unwrap())
            .unwrap()
            .lines()
            .map(String::from)
            .collect()
    }

    #[test]
    fn one_line_per_probe_with_observed_fields_only() {
        let mut t = TraceRecorder::to(Vec::new());
        t.probe_start(3);
        t.enter_phase(Phase::Qgram);
        t.exit_phase(Phase::Qgram, Duration::from_nanos(40));
        t.exit_phase(Phase::Qgram, Duration::from_nanos(2));
        t.counter(Counter::PairsInScope, 5);
        t.probe_end(3);
        t.probe_start(4);
        t.probe_end(4);
        let lines = lines(t);
        assert_eq!(
            lines,
            vec!["probe=3 qgram_ns=42 pairs_in_scope=5", "probe=4"]
        );
    }

    #[test]
    fn out_of_probe_events_emit_standalone_lines() {
        let mut t = TraceRecorder::to(Vec::new());
        t.gauge(Gauge::PeakIndexBytes, 77);
        t.exit_phase(Phase::Total, Duration::from_nanos(9));
        t.counter(Counter::OutputPairs, 2);
        let lines = lines(t);
        assert_eq!(
            lines,
            vec![
                "gauge peak_index_bytes=77",
                "span total_ns=9",
                "count output_pairs=2"
            ]
        );
    }

    #[test]
    fn gauges_flush_even_inside_probes() {
        let mut t = TraceRecorder::to(Vec::new());
        t.probe_start(0);
        t.gauge(Gauge::IndexBytes, 10);
        t.probe_end(0);
        assert_eq!(lines(t), vec!["gauge index_bytes=10", "probe=0"]);
    }

    #[test]
    fn silent_tracer_writes_nothing() {
        let mut t: TraceRecorder<Vec<u8>> = TraceRecorder::silent();
        t.probe_start(0);
        t.counter(Counter::OutputPairs, 1);
        t.probe_end(0);
        t.gauge(Gauge::IndexBytes, 5);
        assert!(t.into_inner().is_none());
    }
}
