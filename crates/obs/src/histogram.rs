//! Log₂-bucketed histogram for latencies and candidate counts.

/// A histogram with one bucket per power of two: bucket 0 holds the value
/// 0, bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`. 65 buckets cover
/// the full `u64` range, so recording never saturates or loses samples;
/// quantiles are resolved to the upper bound of the containing bucket
/// (deterministic, and never an underestimate — safe for p99 reporting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

/// Bucket index for `value`: 0 for 0, else `⌊log₂ value⌋ + 1`.
fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Log2Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample recorded, exact (not bucket-rounded).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (`0 < q ≤ 1`), resolved to the upper bound of the
    /// bucket containing the ⌈q·count⌉-th smallest sample, clamped to the
    /// exact max. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = if i == 0 {
                    0
                } else if i >= 64 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Raw per-bucket sample counts (bucket 0 = value 0, bucket `i ≥ 1` =
    /// `[2^(i-1), 2^i)`), for sinks that fold histograms into their own
    /// storage (e.g. the atomic [`crate::MetricsRegistry`]).
    pub fn bucket_counts(&self) -> &[u64; 65] {
        &self.buckets
    }

    /// Rebuilds a histogram from raw parts (the inverse of the accessors;
    /// used to snapshot the atomic registry back into quantile queries).
    pub(crate) fn from_raw(buckets: [u64; 65], count: u64, sum: u64, max: u64) -> Self {
        Log2Histogram {
            buckets,
            count,
            sum,
            max,
        }
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn quantiles_on_known_distribution() {
        let mut h = Log2Histogram::new();
        // 90 samples of 1, 9 of ~1000, 1 of ~1_000_000.
        for _ in 0..90 {
            h.record(1);
        }
        for _ in 0..9 {
            h.record(1000);
        }
        h.record(1_000_000);
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile(0.5), 1);
        // p90 lands on the 90th sample (value 1).
        assert_eq!(h.quantile(0.90), 1);
        // p91..p99 land in the 1000 bucket → upper bound 1023.
        assert_eq!(h.quantile(0.99), 1023);
        // p100 = the exact max, not the bucket bound.
        assert_eq!(h.quantile(1.0), 1_000_000);
        assert_eq!(h.max(), 1_000_000);
        assert_eq!(h.sum(), 90 + 9000 + 1_000_000);
    }

    #[test]
    fn quantile_clamped_to_max() {
        let mut h = Log2Histogram::new();
        h.record(5); // bucket upper bound is 7, but max is 5
        assert_eq!(h.quantile(0.5), 5);
        assert_eq!(h.quantile(1.0), 5);
    }

    #[test]
    fn empty_histogram() {
        let h = Log2Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn zeros_are_their_own_bucket() {
        let mut h = Log2Histogram::new();
        for _ in 0..3 {
            h.record(0);
        }
        h.record(8);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(1.0), 8);
    }

    /// Seeded xorshift64 — keeps the randomized merge-law tests std-only
    /// and deterministic (the proptest suite in tests/histogram_props.rs
    /// explores the same laws with shrinking).
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    fn random_hist(state: &mut u64, samples: usize) -> Log2Histogram {
        let mut h = Log2Histogram::new();
        for _ in 0..samples {
            // Exercise every magnitude: shift a full-width draw by a
            // random amount so small and huge values are equally likely.
            let v = xorshift(state) >> (xorshift(state) % 64);
            h.record(v);
        }
        h
    }

    #[test]
    fn merge_is_commutative_and_associative() {
        let mut state = 0x5347_4D4F_4421_7031u64;
        for round in 0..50usize {
            let a = random_hist(&mut state, round % 7);
            let b = random_hist(&mut state, 5);
            let c = random_hist(&mut state, 3);
            // a ∪ b == b ∪ a
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            assert_eq!(ab, ba);
            // (a ∪ b) ∪ c == a ∪ (b ∪ c)
            let mut ab_c = ab.clone();
            ab_c.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut a_bc = a.clone();
            a_bc.merge(&bc);
            assert_eq!(ab_c, a_bc);
        }
    }

    #[test]
    fn empty_histogram_percentiles_are_zero_for_all_q() {
        let h = Log2Histogram::new();
        for q in [0.0, 0.001, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q), 0);
        }
    }

    #[test]
    fn u64_max_saturates_top_bucket_and_sum() {
        let mut h = Log2Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        // All three land in bucket 64, whose upper bound is u64::MAX.
        assert_eq!(h.bucket_counts()[64], 3);
        assert_eq!(h.quantile(0.5), u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        // The sum saturates instead of wrapping.
        assert_eq!(h.sum(), u64::MAX);
        let mut other = Log2Histogram::new();
        other.record(u64::MAX);
        h.merge(&other);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn merge_combines_counts_and_max() {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        for _ in 0..10 {
            a.record(1);
        }
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 11);
        assert_eq!(a.max(), 100);
        assert_eq!(a.quantile(0.5), 1);
        assert_eq!(a.sum(), 110);
    }
}
