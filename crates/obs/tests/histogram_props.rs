//! Property tests for [`Log2Histogram`] and the merge laws
//! [`MergeRecorder::absorb`] relies on: serve's degradation-ladder p99s
//! and the `METRICS` exposition both aggregate histograms across workers
//! and requests, which is only sound if merging is order-insensitive.
//!
//! (The in-src histogram tests cover the same laws with a seeded
//! xorshift so they run in the std-only offline subset; this suite adds
//! proptest's shrinking and wider exploration.)

use proptest::prelude::*;
use usj_obs::{
    CollectingRecorder, Counter, Log2Histogram, MergeRecorder, Phase, Recorder,
};

fn hist_of(samples: &[u64]) -> Log2Histogram {
    let mut h = Log2Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

/// Samples spanning every magnitude, u64::MAX included.
fn arb_samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![
            Just(0u64),
            Just(u64::MAX),
            any::<u64>(),
            (0u32..64).prop_map(|s| 1u64 << s),
        ],
        0..24,
    )
}

/// One scripted probe per sample batch, so CollectingRecorder absorb
/// exercises phase and counter histograms together.
fn recorder_of(samples: &[u64]) -> CollectingRecorder {
    let mut r = CollectingRecorder::new();
    for (i, &v) in samples.iter().enumerate() {
        r.probe_start(i as u32);
        r.enter_phase(Phase::Cdf);
        r.exit_phase(Phase::Cdf, std::time::Duration::from_nanos(v.min(1 << 40)));
        r.counter(Counter::CdfUndecided, v);
        r.probe_end(i as u32);
    }
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// a ∪ b == b ∪ a, bucket-for-bucket.
    #[test]
    fn merge_is_commutative(a in arb_samples(), b in arb_samples()) {
        let mut ab = hist_of(&a);
        ab.merge(&hist_of(&b));
        let mut ba = hist_of(&b);
        ba.merge(&hist_of(&a));
        prop_assert_eq!(ab, ba);
    }

    /// (a ∪ b) ∪ c == a ∪ (b ∪ c).
    #[test]
    fn merge_is_associative(a in arb_samples(), b in arb_samples(), c in arb_samples()) {
        let mut left = hist_of(&a);
        left.merge(&hist_of(&b));
        left.merge(&hist_of(&c));
        let mut bc = hist_of(&b);
        bc.merge(&hist_of(&c));
        let mut right = hist_of(&a);
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Merging equals recording the concatenation directly.
    #[test]
    fn merge_equals_concatenation(a in arb_samples(), b in arb_samples()) {
        let mut merged = hist_of(&a);
        merged.merge(&hist_of(&b));
        let mut concat: Vec<u64> = a.clone();
        concat.extend(&b);
        prop_assert_eq!(merged, hist_of(&concat));
    }

    /// CollectingRecorder::absorb inherits the merge laws: worker
    /// recorders folded in either order yield identical counter
    /// histograms (phase histograms carry real wall-clock, so only the
    /// deterministic counter side is compared bit-for-bit).
    #[test]
    fn absorb_order_does_not_matter(a in arb_samples(), b in arb_samples()) {
        let (ra, rb) = (recorder_of(&a), recorder_of(&b));
        let mut ab = CollectingRecorder::new();
        ab.absorb(ra.clone());
        ab.absorb(rb.clone());
        let mut ba = CollectingRecorder::new();
        ba.absorb(rb);
        ba.absorb(ra);
        prop_assert_eq!(
            ab.counter_histogram(Counter::CdfUndecided),
            ba.counter_histogram(Counter::CdfUndecided)
        );
        prop_assert_eq!(ab.probes(), ba.probes());
        prop_assert_eq!(
            ab.phase_histogram(Phase::Cdf).count(),
            ba.phase_histogram(Phase::Cdf).count()
        );
    }

    /// Quantiles never exceed the exact max, never undershoot the true
    /// quantile's bucket, and are monotone in q.
    #[test]
    fn quantiles_are_sound(samples in arb_samples()) {
        let h = hist_of(&samples);
        let mut prev = 0u64;
        for q in [0.01, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let v = h.quantile(q);
            prop_assert!(v <= h.max());
            prop_assert!(v >= prev, "quantile not monotone at q={q}");
            prev = v;
        }
        if !samples.is_empty() {
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            // The bucket upper bound never underestimates: p100 >= max.
            prop_assert_eq!(h.quantile(1.0), *sorted.last().unwrap());
        }
    }
}
