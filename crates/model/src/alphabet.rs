//! Finite alphabets and compact symbol interning.
//!
//! All algorithmic crates in the workspace operate on [`Symbol`] ids (`u8`)
//! rather than `char`s: alphabets in the paper's experiments are small
//! (`|Σ| = 27` for dblp author names, `|Σ| = 22` for protein sequences), and
//! `u8` symbols keep frequency vectors, DP tables, and q-gram keys compact.

use std::fmt;

use crate::{ModelError, Result};

/// Compact id of an alphabet character. Alphabets are limited to 256 symbols.
pub type Symbol = u8;

/// A finite, ordered alphabet mapping `char`s to dense [`Symbol`] ids.
///
/// The order of characters passed to [`Alphabet::new`] determines symbol ids
/// (`symbols[i]` gets id `i`). Equality of two alphabets is equality of the
/// character sequences.
///
/// ```
/// use usj_model::Alphabet;
///
/// let dna = Alphabet::dna();
/// assert_eq!(dna.size(), 4);
/// let a = dna.symbol('A').unwrap();
/// assert_eq!(dna.char_of(a), 'A');
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alphabet {
    chars: Vec<char>,
    /// ASCII fast path: `ascii[b]` is the symbol for byte `b`, or `u8::MAX`.
    ascii: [u8; 128],
}

const NO_SYMBOL: u8 = u8::MAX;

impl Alphabet {
    /// Builds an alphabet from an ordered, duplicate-free character sequence.
    ///
    /// # Panics
    ///
    /// Panics if `chars` is empty, longer than 255 characters, contains a
    /// duplicate, or contains a non-ASCII character. (255 rather than 256 so
    /// that `u8::MAX` stays free as a sentinel.)
    pub fn new(chars: impl IntoIterator<Item = char>) -> Self {
        let chars: Vec<char> = chars.into_iter().collect();
        assert!(!chars.is_empty(), "alphabet must not be empty");
        assert!(
            chars.len() < 256,
            "alphabet must have fewer than 256 symbols"
        );
        let mut ascii = [NO_SYMBOL; 128];
        for (i, &c) in chars.iter().enumerate() {
            assert!(c.is_ascii(), "alphabet characters must be ASCII, got {c:?}");
            let b = c as usize;
            assert!(ascii[b] == NO_SYMBOL, "duplicate alphabet character {c:?}");
            ascii[b] = i as u8;
        }
        Alphabet { chars, ascii }
    }

    /// The four-letter DNA alphabet `ACGT`.
    pub fn dna() -> Self {
        Alphabet::new("ACGT".chars())
    }

    /// The 20 standard amino acids plus `B` and `Z` ambiguity codes
    /// (`|Σ| = 22`), matching the paper's protein dataset.
    pub fn protein() -> Self {
        Alphabet::new("ACDEFGHIKLMNPQRSTVWYBZ".chars())
    }

    /// Lowercase `a`–`z` plus space (`|Σ| = 27`), matching the paper's dblp
    /// author-name dataset.
    pub fn names() -> Self {
        Alphabet::new("abcdefghijklmnopqrstuvwxyz ".chars())
    }

    /// Uppercase `A`–`Z`.
    pub fn uppercase() -> Self {
        Alphabet::new(('A'..='Z').collect::<Vec<_>>())
    }

    /// Number of symbols `σ = |Σ|`.
    #[inline]
    pub fn size(&self) -> usize {
        self.chars.len()
    }

    /// All symbol ids, in order.
    pub fn symbols(&self) -> impl Iterator<Item = Symbol> + '_ {
        (0..self.chars.len()).map(|i| i as Symbol)
    }

    /// The symbol id for `c`, or `None` if `c` is not in the alphabet.
    #[inline]
    pub fn symbol(&self, c: char) -> Option<Symbol> {
        if (c as u32) < 128 {
            let s = self.ascii[c as usize];
            (s != NO_SYMBOL).then_some(s)
        } else {
            None
        }
    }

    /// The symbol id for `c`, or an error naming the character.
    pub fn try_symbol(&self, c: char) -> Result<Symbol> {
        self.symbol(c).ok_or(ModelError::UnknownChar(c))
    }

    /// The character for symbol `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not a valid symbol of this alphabet.
    #[inline]
    pub fn char_of(&self, s: Symbol) -> char {
        self.chars[s as usize]
    }

    /// Returns `true` if `s` is a valid symbol of this alphabet.
    #[inline]
    pub fn contains_symbol(&self, s: Symbol) -> bool {
        (s as usize) < self.chars.len()
    }

    /// Encodes a `&str` into symbol ids, failing on the first unknown char.
    pub fn encode(&self, text: &str) -> Result<Vec<Symbol>> {
        text.chars().map(|c| self.try_symbol(c)).collect()
    }

    /// Decodes a symbol slice back into a `String`.
    ///
    /// # Panics
    ///
    /// Panics if any symbol is out of range.
    pub fn decode(&self, symbols: &[Symbol]) -> String {
        symbols.iter().map(|&s| self.char_of(s)).collect()
    }
}

impl fmt::Display for Alphabet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Σ{{")?;
        for c in &self.chars {
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dna_roundtrip() {
        let a = Alphabet::dna();
        let enc = a.encode("GATTACA").unwrap();
        assert_eq!(a.decode(&enc), "GATTACA");
        assert_eq!(enc, vec![2, 0, 3, 3, 0, 1, 0]);
    }

    #[test]
    fn sizes_match_paper() {
        assert_eq!(Alphabet::names().size(), 27);
        assert_eq!(Alphabet::protein().size(), 22);
    }

    #[test]
    fn unknown_char_is_error() {
        let a = Alphabet::dna();
        assert_eq!(a.encode("AXC"), Err(ModelError::UnknownChar('X')));
        assert_eq!(a.symbol('x'), None);
    }

    #[test]
    fn symbols_are_dense_and_ordered() {
        let a = Alphabet::new("xyz".chars());
        let ids: Vec<_> = a.symbols().collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(a.char_of(1), 'y');
        assert!(a.contains_symbol(2));
        assert!(!a.contains_symbol(3));
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_char_panics() {
        Alphabet::new("AA".chars());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_alphabet_panics() {
        Alphabet::new(std::iter::empty());
    }

    #[test]
    fn display_lists_characters() {
        assert_eq!(Alphabet::dna().to_string(), "Σ{ACGT}");
    }
}
