//! A small multiplicative hasher for short keys on hot paths.
//!
//! The segment index and the q-gram filter hash *short* keys at very
//! high rates: instantiated segments (a handful of symbol bytes), dense
//! `u32` string ids, and window tuples. `std`'s default SipHash pays a
//! per-call finalisation cost that dominates for keys this small, so the
//! hot maps use [`FastHasher`] instead — a word-at-a-time
//! multiply-rotate-xor mix in the `FxHash` family.
//!
//! This is **not** a DoS-resistant hash: it is for internal maps keyed
//! by data the process generated itself (interned ids, window bounds),
//! never for attacker-controlled keys crossing a trust boundary.

use std::hash::{BuildHasherDefault, Hasher};

/// `BuildHasher` for [`FastHasher`] (usable as a `HashMap`'s `S`
/// parameter via `Default`).
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// Word-at-a-time multiplicative hasher; see the module docs for the
/// intended (internal, short-key) use.
#[derive(Debug, Default, Clone)]
pub struct FastHasher {
    state: u64,
}

/// Odd multiplier with high-entropy bits (the golden-ratio-derived
/// constant commonly used by multiplicative hashes).
const SEED: u64 = 0x517c_c1b7_2722_0a95;

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

#[inline]
fn le_word(bytes: &[u8]) -> u64 {
    debug_assert!(bytes.len() <= 8);
    let mut w = [0u8; 8];
    w[..bytes.len()].copy_from_slice(bytes);
    u64::from_le_bytes(w)
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(le_word(c));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            self.add(le_word(rem));
        }
        // No length framing here: the std `Hash` impls for slices and
        // `Vec` already prefix the length through `write_usize`/
        // `write_length_prefix`, which keeps prefixes distinct.
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add(i as u64);
        self.add((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FastBuildHasher::default().hash_one(v)
    }

    #[test]
    fn equal_keys_hash_equal() {
        let a: Vec<u8> = vec![0, 1, 2, 3, 1, 0];
        let b = a.clone();
        assert_eq!(hash_of(&a), hash_of(&b));
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&(7usize, 9usize)), hash_of(&(7usize, 9usize)));
    }

    #[test]
    fn nearby_keys_disperse() {
        // Not a statistical test — just pins that the mix isn't the
        // identity on the patterns the index actually uses (dense ids,
        // short near-equal byte strings).
        let h: Vec<u64> = (0u32..64).map(|i| hash_of(&i)).collect();
        let mut sorted = h.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), h.len(), "dense u32 ids must not collide");
        assert_ne!(hash_of(&vec![0u8, 1, 2]), hash_of(&vec![0u8, 1, 3]));
        assert_ne!(hash_of(&vec![0u8, 1, 2]), hash_of(&vec![0u8, 1, 2, 0]));
    }

    #[test]
    fn works_as_a_map_hasher() {
        let mut map: HashMap<Vec<u8>, u32, FastBuildHasher> = HashMap::default();
        for i in 0u32..100 {
            map.insert(vec![(i % 16) as u8, (i / 16) as u8], i);
        }
        assert_eq!(map.len(), 100); // all pairs are distinct
        assert_eq!(map.get([3u8, 1].as_slice()), Some(&19));
    }
}
