//! Character-level uncertain string model.
//!
//! This crate implements the data model from *Similarity Joins for Uncertain
//! Strings* (Patil & Shah, SIGMOD 2014): a **character-level uncertain
//! string** `S = S[1] S[2] … S[l]` where every position `S[i]` is an
//! independent random variable with a discrete distribution over a finite
//! alphabet `Σ`. The *possible worlds* of `S` are all deterministic
//! instantiations, each weighted by the product of its per-position
//! probabilities; every instance has the same length as `S`.
//!
//! The crate provides:
//!
//! * [`Alphabet`] — interning between `char`s and compact [`Symbol`] ids;
//! * [`Position`] — one certain or uncertain character;
//! * [`UncertainString`] — the string itself, with matching probabilities,
//!   possible-world enumeration ([`UncertainString::worlds`]) and sampling;
//! * a parser/formatter for the paper's textual syntax, e.g.
//!   `A{(C,0.5),(G,0.5)}A` (see [`UncertainString::parse`]).
//!
//! All probabilities are `f64`. Validation utilities live in [`prob`].

#![warn(missing_docs)]

pub mod alphabet;
pub mod hash;
mod invariant;
pub mod parse;
pub mod position;
pub mod prob;
pub mod string;
pub mod string_level;
pub mod worlds;

pub use alphabet::{Alphabet, Symbol};
pub use position::Position;
pub use prob::Prob;
pub use string::UncertainString;
pub use string_level::StringLevelUncertain;
pub use worlds::{World, WorldIter};

/// Errors produced while constructing or parsing uncertain strings.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A character was not part of the alphabet.
    UnknownChar(char),
    /// A per-position distribution did not sum to 1 (within tolerance).
    BadDistribution {
        /// Position index (0-based) of the offending distribution.
        index: usize,
        /// The actual probability mass found.
        sum: f64,
    },
    /// A distribution listed the same symbol twice.
    DuplicateSymbol {
        /// Position index (0-based).
        index: usize,
        /// The duplicated symbol.
        symbol: Symbol,
    },
    /// A probability outside `(0, 1]` was supplied.
    BadProbability {
        /// Position index (0-based).
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// A distribution with no alternatives was supplied.
    EmptyDistribution {
        /// Position index (0-based).
        index: usize,
    },
    /// Parse error with a human-readable message and byte offset.
    Parse {
        /// Byte offset in the input where the error was detected.
        offset: usize,
        /// Description of what went wrong.
        message: String,
    },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::UnknownChar(c) => write!(f, "character {c:?} is not in the alphabet"),
            ModelError::BadDistribution { index, sum } => {
                write!(
                    f,
                    "distribution at position {index} sums to {sum}, expected 1"
                )
            }
            ModelError::DuplicateSymbol { index, symbol } => {
                write!(
                    f,
                    "distribution at position {index} lists symbol {symbol} twice"
                )
            }
            ModelError::BadProbability { index, value } => {
                write!(
                    f,
                    "probability {value} at position {index} is outside (0, 1]"
                )
            }
            ModelError::EmptyDistribution { index } => {
                write!(f, "distribution at position {index} has no alternatives")
            }
            ModelError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// Convenient `Result` alias for this crate.
pub type Result<T> = std::result::Result<T, ModelError>;
