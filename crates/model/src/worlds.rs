//! Possible-world enumeration.
//!
//! A *possible world* of an uncertain string is one deterministic instance
//! together with its probability of existence. [`WorldIter`] enumerates all
//! worlds of a position slice in lexicographic order of symbol choices using
//! an odometer over per-position alternative indices; the probability of the
//! current world is maintained incrementally, so stepping is `O(1)` amortised
//! in the number of positions that change.

use crate::position::Position;
use crate::prob::Prob;
use crate::Symbol;

/// One possible world: a deterministic instance and its probability.
#[derive(Debug, Clone, PartialEq)]
pub struct World {
    /// The deterministic instance as symbol ids.
    pub instance: Vec<Symbol>,
    /// Probability of existence `p(s) = Π_i Pr(S[i] = s[i])`.
    pub prob: Prob,
}

/// Iterator over all possible worlds of a sequence of positions.
///
/// The empty slice yields exactly one world: the empty instance with
/// probability one (matching the convention `Σ p(s) = 1`).
#[derive(Debug, Clone)]
pub struct WorldIter<'a> {
    positions: &'a [Position],
    /// Odometer: current alternative index per position.
    counters: Vec<u16>,
    /// Current symbol per position.
    current: Vec<Symbol>,
    /// Per-position probability of the current choice.
    probs: Vec<Prob>,
    done: bool,
}

impl<'a> WorldIter<'a> {
    /// Creates an iterator over all worlds of `positions`.
    pub fn new(positions: &'a [Position]) -> Self {
        let mut current = Vec::with_capacity(positions.len());
        let mut probs = Vec::with_capacity(positions.len());
        for p in positions {
            let (s, q) = p.alternatives().next().expect("positions are non-empty");
            current.push(s);
            probs.push(q);
        }
        WorldIter {
            positions,
            counters: vec![0; positions.len()],
            current,
            probs,
            done: false,
        }
    }

    /// Total number of worlds this iterator will yield, as `f64`.
    pub fn total_worlds(&self) -> f64 {
        self.positions
            .iter()
            .map(|p| p.num_alternatives() as f64)
            .product()
    }

    fn alternative(&self, pos: usize, alt: usize) -> (Symbol, Prob) {
        match &self.positions[pos] {
            Position::Certain(s) => (*s, 1.0),
            Position::Uncertain(alts) => alts[alt],
        }
    }

    /// Visits every world as a *borrowed* `(instance, probability)`
    /// pair, in the same lexicographic order as iteration, without the
    /// per-world instance allocation of the `Iterator` impl. `f`
    /// returning `false` stops the walk; the return value is `true` iff
    /// every world was visited. The enumeration-heavy callers (the
    /// q-gram filter's equivalent sets) copy the borrowed instance into
    /// flat storage instead of allocating one `Vec` per world.
    pub fn visit_all<F: FnMut(&[Symbol], Prob) -> bool>(mut self, mut f: F) -> bool {
        if self.done {
            return true;
        }
        loop {
            if !f(&self.current, self.probs.iter().product()) {
                return false;
            }
            if !self.step() {
                return true;
            }
        }
    }

    /// Advances the odometer; returns `false` when exhausted.
    fn step(&mut self) -> bool {
        // Increment from the last position, like counting.
        for i in (0..self.positions.len()).rev() {
            let n = self.positions[i].num_alternatives();
            let next = self.counters[i] as usize + 1;
            if next < n {
                self.counters[i] = next as u16;
                let (s, q) = self.alternative(i, next);
                self.current[i] = s;
                self.probs[i] = q;
                return true;
            }
            self.counters[i] = 0;
            let (s, q) = self.alternative(i, 0);
            self.current[i] = s;
            self.probs[i] = q;
        }
        false
    }
}

/// Position slices up to this length take the stack-state fast path in
/// [`visit_worlds`].
const SHORT_WORLD_POSITIONS: usize = 16;

/// Visits every world of `positions` exactly like
/// [`WorldIter::visit_all`] (same order, same probabilities, same early
/// stop), but keeps the odometer state on the stack for slices of at
/// most [`SHORT_WORLD_POSITIONS`] positions. The q-gram filters
/// enumerate worlds of 3–4-symbol windows at very high rates, where
/// [`WorldIter::new`]'s three per-call heap allocations dominate the
/// walk itself.
pub fn visit_worlds<F: FnMut(&[Symbol], Prob) -> bool>(positions: &[Position], f: F) -> bool {
    if positions.len() <= SHORT_WORLD_POSITIONS {
        visit_worlds_short(positions, f)
    } else {
        WorldIter::new(positions).visit_all(f)
    }
}

fn alternative_at(p: &Position, alt: usize) -> (Symbol, Prob) {
    match p {
        Position::Certain(s) => (*s, 1.0),
        Position::Uncertain(alts) => alts[alt],
    }
}

fn visit_worlds_short<F: FnMut(&[Symbol], Prob) -> bool>(
    positions: &[Position],
    mut f: F,
) -> bool {
    let n = positions.len();
    debug_assert!(n <= SHORT_WORLD_POSITIONS);
    let mut counters = [0u16; SHORT_WORLD_POSITIONS];
    let mut current = [0 as Symbol; SHORT_WORLD_POSITIONS];
    let mut probs = [1.0 as Prob; SHORT_WORLD_POSITIONS];
    for (i, p) in positions.iter().enumerate() {
        let (s, q) = alternative_at(p, 0);
        current[i] = s;
        probs[i] = q;
    }
    loop {
        // Same left-to-right product as `WorldIter::next`, so the
        // probabilities are bitwise identical to the iterator's.
        let mut prob: Prob = 1.0;
        for &q in &probs[..n] {
            prob *= q;
        }
        if !f(&current[..n], prob) {
            return false;
        }
        // Advance the odometer from the last position, like counting.
        let mut advanced = false;
        for i in (0..n).rev() {
            let next = counters[i] as usize + 1;
            if next < positions[i].num_alternatives() {
                counters[i] = next as u16;
                let (s, q) = alternative_at(&positions[i], next);
                current[i] = s;
                probs[i] = q;
                advanced = true;
                break;
            }
            counters[i] = 0;
            let (s, q) = alternative_at(&positions[i], 0);
            current[i] = s;
            probs[i] = q;
        }
        if !advanced {
            return true;
        }
    }
}

impl Iterator for WorldIter<'_> {
    type Item = World;

    fn next(&mut self) -> Option<World> {
        if self.done {
            return None;
        }
        let world = World {
            instance: self.current.clone(),
            prob: self.probs.iter().product(),
        };
        if !self.step() {
            self.done = true;
        }
        Some(world)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prob::approx_eq_eps;
    use crate::{Alphabet, UncertainString};

    #[test]
    fn enumerates_cartesian_product() {
        let dna = Alphabet::dna();
        let s = UncertainString::parse("{(A,0.5),(C,0.5)}{(G,0.25),(T,0.75)}", &dna).unwrap();
        let worlds: Vec<_> = s.worlds().collect();
        let decoded: Vec<_> = worlds.iter().map(|w| dna.decode(&w.instance)).collect();
        assert_eq!(decoded, vec!["AG", "AT", "CG", "CT"]);
        let probs: Vec<_> = worlds.iter().map(|w| w.prob).collect();
        assert!(approx_eq_eps(probs[0], 0.125, 1e-12));
        assert!(approx_eq_eps(probs[1], 0.375, 1e-12));
        assert!(approx_eq_eps(probs[2], 0.125, 1e-12));
        assert!(approx_eq_eps(probs[3], 0.375, 1e-12));
    }

    #[test]
    fn deterministic_single_world() {
        let dna = Alphabet::dna();
        let s = UncertainString::parse("ACGT", &dna).unwrap();
        let worlds: Vec<_> = s.worlds().collect();
        assert_eq!(worlds.len(), 1);
        assert_eq!(dna.decode(&worlds[0].instance), "ACGT");
        assert_eq!(worlds[0].prob, 1.0);
    }

    #[test]
    fn empty_yields_one_empty_world() {
        let worlds: Vec<_> = WorldIter::new(&[]).collect();
        assert_eq!(worlds.len(), 1);
        assert!(worlds[0].instance.is_empty());
        assert_eq!(worlds[0].prob, 1.0);
    }

    #[test]
    fn visit_all_matches_iteration_and_stops_early() {
        let dna = Alphabet::dna();
        let s = UncertainString::parse("{(A,0.5),(C,0.5)}{(G,0.25),(T,0.75)}", &dna).unwrap();
        let mut seen = Vec::new();
        let complete = s.worlds().visit_all(|inst, p| {
            seen.push((inst.to_vec(), p));
            true
        });
        assert!(complete);
        let iterated: Vec<_> = s.worlds().map(|w| (w.instance, w.prob)).collect();
        assert_eq!(seen, iterated);

        let mut count = 0;
        let complete = s.worlds().visit_all(|_, _| {
            count += 1;
            count < 3
        });
        assert!(!complete);
        assert_eq!(count, 3);
    }

    #[test]
    fn probabilities_sum_to_one_across_many_positions() {
        let dna = Alphabet::dna();
        let s = UncertainString::parse(
            "{(A,0.1),(C,0.2),(G,0.3),(T,0.4)}A{(A,0.6),(T,0.4)}{(C,0.5),(G,0.5)}",
            &dna,
        )
        .unwrap();
        let total: f64 = s.worlds().map(|w| w.prob).sum();
        assert!(approx_eq_eps(total, 1.0, 1e-9));
        assert_eq!(s.worlds().count(), 16);
        assert_eq!(s.worlds().total_worlds(), 16.0);
    }
}
