//! A single (possibly uncertain) character position.

use crate::prob::{self, Prob, PROB_EPS};
use crate::{ModelError, Result, Symbol};

/// One position of a character-level uncertain string: either a certain
/// symbol or a discrete distribution over several symbols.
///
/// Invariants (enforced by [`Position::uncertain`] and checked by
/// [`Position::validate`]):
///
/// * every probability lies in `(0, 1]`;
/// * no symbol appears twice;
/// * probabilities sum to one (within tolerance);
/// * an `Uncertain` variant holds at least one alternative. A
///   single-alternative `Uncertain` is collapsed to `Certain`.
///
/// Alternatives are stored sorted by symbol id so that equal distributions
/// compare equal structurally.
#[derive(Debug, Clone, PartialEq)]
pub enum Position {
    /// The character at this position is known with probability one.
    Certain(Symbol),
    /// Discrete distribution over at least two alternatives, sorted by
    /// symbol id.
    Uncertain(Vec<(Symbol, Prob)>),
}

impl Position {
    /// Creates a certain position.
    #[inline]
    pub fn certain(symbol: Symbol) -> Self {
        Position::Certain(symbol)
    }

    /// Creates an uncertain position from `(symbol, probability)` pairs.
    ///
    /// Pairs are sorted by symbol; a single pair (or one with probability
    /// ~1) collapses to [`Position::Certain`]. `index` is only used for
    /// error reporting.
    pub fn uncertain(index: usize, mut alts: Vec<(Symbol, Prob)>) -> Result<Self> {
        if alts.is_empty() {
            return Err(ModelError::EmptyDistribution { index });
        }
        alts.sort_unstable_by_key(|&(s, _)| s);
        let mut sum = 0.0;
        for window in alts.windows(2) {
            if window[0].0 == window[1].0 {
                return Err(ModelError::DuplicateSymbol {
                    index,
                    symbol: window[0].0,
                });
            }
        }
        for &(_, p) in &alts {
            if !(p.is_finite() && p > 0.0 && p <= 1.0 + PROB_EPS) {
                return Err(ModelError::BadProbability { index, value: p });
            }
            sum += p;
        }
        if !prob::approx_eq_eps(sum, 1.0, 1e-6) {
            return Err(ModelError::BadDistribution { index, sum });
        }
        if alts.len() == 1 {
            return Ok(Position::Certain(alts[0].0));
        }
        Ok(Position::Uncertain(alts))
    }

    /// `true` when the character here is known with probability one.
    #[inline]
    pub fn is_certain(&self) -> bool {
        matches!(self, Position::Certain(_))
    }

    /// Number of alternatives (`1` for a certain position).
    #[inline]
    pub fn num_alternatives(&self) -> usize {
        match self {
            Position::Certain(_) => 1,
            Position::Uncertain(alts) => alts.len(),
        }
    }

    /// Probability that this position takes symbol `s`.
    #[inline]
    pub fn prob_of(&self, s: Symbol) -> Prob {
        match self {
            Position::Certain(c) => {
                if *c == s {
                    1.0
                } else {
                    0.0
                }
            }
            Position::Uncertain(alts) => alts
                .binary_search_by_key(&s, |&(sym, _)| sym)
                .map(|i| alts[i].1)
                .unwrap_or(0.0),
        }
    }

    /// Iterates `(symbol, probability)` alternatives (a certain position
    /// yields a single pair with probability one).
    pub fn alternatives(&self) -> PositionAlts<'_> {
        match self {
            Position::Certain(s) => PositionAlts::Certain(Some(*s)),
            Position::Uncertain(alts) => PositionAlts::Uncertain(alts.iter()),
        }
    }

    /// The most probable symbol at this position (ties broken by smaller
    /// symbol id, which sorting makes deterministic).
    pub fn most_probable(&self) -> Symbol {
        match self {
            Position::Certain(s) => *s,
            Position::Uncertain(alts) => {
                let mut best = alts[0];
                for &(s, p) in &alts[1..] {
                    if p > best.1 {
                        best = (s, p);
                    }
                }
                best.0
            }
        }
    }

    /// Probability of the *most probable* symbol.
    pub fn max_prob(&self) -> Prob {
        match self {
            Position::Certain(_) => 1.0,
            Position::Uncertain(alts) => alts.iter().map(|&(_, p)| p).fold(0.0, f64::max),
        }
    }

    /// Probability that this position matches `other` (both distributions
    /// independent): `Σ_c Pr(self = c)·Pr(other = c)`.
    pub fn match_prob(&self, other: &Position) -> Prob {
        match (self, other) {
            (Position::Certain(a), Position::Certain(b)) => {
                if a == b {
                    1.0
                } else {
                    0.0
                }
            }
            (Position::Certain(a), u @ Position::Uncertain(_)) => u.prob_of(*a),
            (u @ Position::Uncertain(_), Position::Certain(b)) => u.prob_of(*b),
            (Position::Uncertain(a), Position::Uncertain(b)) => {
                // Sorted-merge over the two alternative lists.
                let (mut i, mut j, mut acc) = (0usize, 0usize, 0.0);
                while i < a.len() && j < b.len() {
                    match a[i].0.cmp(&b[j].0) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            acc += a[i].1 * b[j].1;
                            i += 1;
                            j += 1;
                        }
                    }
                }
                acc
            }
        }
    }

    /// Re-checks all invariants; useful after deserialisation.
    pub fn validate(&self, index: usize) -> Result<()> {
        match self {
            Position::Certain(_) => Ok(()),
            Position::Uncertain(alts) => {
                if alts.len() < 2 {
                    return Err(ModelError::EmptyDistribution { index });
                }
                let mut sum = 0.0;
                for w in alts.windows(2) {
                    if w[0].0 >= w[1].0 {
                        return Err(ModelError::DuplicateSymbol {
                            index,
                            symbol: w[1].0,
                        });
                    }
                }
                for &(_, p) in alts {
                    if !(p.is_finite() && p > 0.0 && p <= 1.0 + PROB_EPS) {
                        return Err(ModelError::BadProbability { index, value: p });
                    }
                    sum += p;
                }
                if !prob::approx_eq_eps(sum, 1.0, 1e-6) {
                    return Err(ModelError::BadDistribution { index, sum });
                }
                Ok(())
            }
        }
    }
}

/// Iterator over a position's `(symbol, probability)` alternatives.
#[derive(Debug, Clone)]
pub enum PositionAlts<'a> {
    /// Single certain symbol still pending.
    Certain(Option<Symbol>),
    /// Remaining uncertain alternatives.
    Uncertain(std::slice::Iter<'a, (Symbol, Prob)>),
}

impl<'a> Iterator for PositionAlts<'a> {
    type Item = (Symbol, Prob);

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            PositionAlts::Certain(s) => s.take().map(|s| (s, 1.0)),
            PositionAlts::Uncertain(it) => it.next().copied(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            PositionAlts::Certain(s) => {
                let n = usize::from(s.is_some());
                (n, Some(n))
            }
            PositionAlts::Uncertain(it) => it.size_hint(),
        }
    }
}

impl ExactSizeIterator for PositionAlts<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prob::approx_eq;

    #[test]
    fn uncertain_sorts_and_validates() {
        let p = Position::uncertain(0, vec![(3, 0.6), (1, 0.4)]).unwrap();
        match &p {
            Position::Uncertain(alts) => assert_eq!(alts, &vec![(1, 0.4), (3, 0.6)]),
            _ => panic!("expected uncertain"),
        }
        assert!(p.validate(0).is_ok());
    }

    #[test]
    fn single_alternative_collapses_to_certain() {
        let p = Position::uncertain(0, vec![(2, 1.0)]).unwrap();
        assert_eq!(p, Position::Certain(2));
    }

    #[test]
    fn bad_distributions_rejected() {
        assert!(matches!(
            Position::uncertain(3, vec![]),
            Err(ModelError::EmptyDistribution { index: 3 })
        ));
        assert!(matches!(
            Position::uncertain(1, vec![(0, 0.5), (0, 0.5)]),
            Err(ModelError::DuplicateSymbol {
                index: 1,
                symbol: 0
            })
        ));
        assert!(matches!(
            Position::uncertain(2, vec![(0, 0.5), (1, 0.2)]),
            Err(ModelError::BadDistribution { index: 2, .. })
        ));
        assert!(matches!(
            Position::uncertain(0, vec![(0, -0.5), (1, 1.5)]),
            Err(ModelError::BadProbability { .. })
        ));
    }

    #[test]
    fn prob_of_lookup() {
        let p = Position::uncertain(0, vec![(0, 0.8), (2, 0.2)]).unwrap();
        assert!(approx_eq(p.prob_of(0), 0.8));
        assert!(approx_eq(p.prob_of(2), 0.2));
        assert!(approx_eq(p.prob_of(1), 0.0));
        let c = Position::certain(5);
        assert!(approx_eq(c.prob_of(5), 1.0));
        assert!(approx_eq(c.prob_of(4), 0.0));
    }

    #[test]
    fn match_prob_combinations() {
        let a = Position::uncertain(0, vec![(0, 0.8), (1, 0.2)]).unwrap();
        let b = Position::uncertain(0, vec![(0, 0.5), (2, 0.5)]).unwrap();
        assert!(approx_eq(a.match_prob(&b), 0.4));
        assert!(approx_eq(a.match_prob(&Position::certain(1)), 0.2));
        assert!(approx_eq(Position::certain(1).match_prob(&a), 0.2));
        assert!(approx_eq(
            Position::certain(1).match_prob(&Position::certain(1)),
            1.0
        ));
        assert!(approx_eq(
            Position::certain(1).match_prob(&Position::certain(0)),
            0.0
        ));
        // match_prob is symmetric
        assert!(approx_eq(a.match_prob(&b), b.match_prob(&a)));
    }

    #[test]
    fn most_probable_and_max() {
        let p = Position::uncertain(0, vec![(0, 0.3), (1, 0.5), (2, 0.2)]).unwrap();
        assert_eq!(p.most_probable(), 1);
        assert!(approx_eq(p.max_prob(), 0.5));
        assert_eq!(Position::certain(7).most_probable(), 7);
    }

    #[test]
    fn alternatives_iterator() {
        let p = Position::uncertain(0, vec![(0, 0.3), (1, 0.7)]).unwrap();
        let alts: Vec<_> = p.alternatives().collect();
        assert_eq!(alts, vec![(0, 0.3), (1, 0.7)]);
        assert_eq!(p.alternatives().len(), 2);
        let c = Position::certain(4);
        let alts: Vec<_> = c.alternatives().collect();
        assert_eq!(alts, vec![(4, 1.0)]);
    }
}
