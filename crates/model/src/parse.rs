//! Parser and formatter for the paper's uncertain-string syntax.
//!
//! The textual form is the one used in the paper's examples:
//!
//! ```text
//! A{(A,0.8),(C,0.2)}AATT
//! ```
//!
//! A bare character is a certain position; `{(c1,p1),(c2,p2),…}` is an
//! uncertain position. Whitespace *inside braces* is ignored; a space
//! outside braces is treated as an alphabet character (the dblp alphabet
//! includes space), so `a b` is three positions.

use std::fmt::Write as _;

use crate::position::Position;
use crate::string::UncertainString;
use crate::{Alphabet, ModelError, Result};

impl UncertainString {
    /// Parses the paper's textual syntax against `alphabet`.
    ///
    /// ```
    /// use usj_model::{Alphabet, UncertainString};
    /// let s = UncertainString::parse("G{(A,0.8),(G,0.2)}CT", &Alphabet::dna()).unwrap();
    /// assert_eq!(s.len(), 4);
    /// ```
    pub fn parse(text: &str, alphabet: &Alphabet) -> Result<Self> {
        Parser {
            input: text,
            offset: 0,
            alphabet,
        }
        .parse()
    }

    /// Formats the string back into the paper's syntax.
    ///
    /// Probabilities are printed in their shortest exact form, so
    /// `display` followed by [`UncertainString::parse`] round-trips.
    pub fn display(&self, alphabet: &Alphabet) -> String {
        let mut out = String::with_capacity(self.len() * 2);
        for pos in self.positions() {
            match pos {
                Position::Certain(s) => out.push(alphabet.char_of(*s)),
                Position::Uncertain(alts) => {
                    out.push('{');
                    for (i, &(s, p)) in alts.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "({},{})", alphabet.char_of(s), format_prob(p));
                    }
                    out.push('}');
                }
            }
        }
        out
    }
}

fn format_prob(p: f64) -> String {
    // Rust's default float Display is the shortest representation that
    // round-trips exactly, so re-parsing reproduces the distribution.
    let mut s = p.to_string();
    if !s.contains('.') && !s.contains('e') {
        s.push_str(".0");
    }
    s
}

struct Parser<'a> {
    input: &'a str,
    offset: usize,
    alphabet: &'a Alphabet,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> ModelError {
        ModelError::Parse {
            offset: self.offset,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.input[self.offset..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.offset += c.len_utf8();
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    fn expect(&mut self, want: char) -> Result<()> {
        match self.bump() {
            Some(c) if c == want => Ok(()),
            Some(c) => Err(self.error(format!("expected {want:?}, found {c:?}"))),
            None => Err(self.error(format!("expected {want:?}, found end of input"))),
        }
    }

    fn parse(mut self) -> Result<UncertainString> {
        let mut positions = Vec::new();
        while let Some(c) = self.peek() {
            if c == '{' {
                // Remember where the distribution started: validation
                // failures (mass ≠ 1, NaN/negative/zero probabilities,
                // duplicate symbols) are detected only after the closing
                // brace, but should point the user at the distribution.
                let brace = self.offset;
                self.bump();
                let index = positions.len();
                let alts = self.parse_alternatives()?;
                let pos = Position::uncertain(index, alts).map_err(|e| ModelError::Parse {
                    offset: brace,
                    message: format!("invalid distribution: {e}"),
                })?;
                positions.push(pos);
            } else {
                self.bump();
                let sym = self
                    .alphabet
                    .symbol(c)
                    .ok_or_else(|| self.error(format!("character {c:?} not in alphabet")))?;
                positions.push(Position::certain(sym));
            }
        }
        Ok(UncertainString::new(positions))
    }

    fn parse_alternatives(&mut self) -> Result<Vec<(u8, f64)>> {
        let mut alts = Vec::new();
        loop {
            self.skip_ws();
            self.expect('(')?;
            // The character is read verbatim — no whitespace skipping —
            // so alphabets containing a space (dblp names) round-trip:
            // `{(a,0.8),( ,0.2)}` is a valid distribution over {a, ' '}.
            let c = self
                .bump()
                .ok_or_else(|| self.error("expected character, found end of input"))?;
            let sym = self
                .alphabet
                .symbol(c)
                .ok_or_else(|| self.error(format!("character {c:?} not in alphabet")))?;
            self.skip_ws();
            // The paper's figures occasionally write "(R = 0.1)"; accept both
            // ',' and '=' as the separator.
            match self.bump() {
                Some(',') | Some('=') => {}
                Some(c) => return Err(self.error(format!("expected ',' or '=', found {c:?}"))),
                None => return Err(self.error("expected ',' or '=', found end of input")),
            }
            self.skip_ws();
            let p = self.parse_number()?;
            self.skip_ws();
            self.expect(')')?;
            alts.push((sym, p));
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => break,
                Some(c) => return Err(self.error(format!("expected ',' or '}}', found {c:?}"))),
                None => return Err(self.error("unterminated distribution")),
            }
        }
        Ok(alts)
    }

    fn parse_number(&mut self) -> Result<f64> {
        let start = self.offset;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+')
        {
            self.bump();
        }
        let text = &self.input[start..self.offset];
        text.parse::<f64>()
            .map_err(|_| self.error(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prob::approx_eq;

    #[test]
    fn parse_paper_example() {
        // String S3 from Table 1 of the paper.
        let dna = Alphabet::dna();
        let s =
            UncertainString::parse("G{(A,0.8),(G,0.2)}CT{(A,0.8),(C,0.1),(T,0.1)}C", &dna).unwrap();
        assert_eq!(s.len(), 6);
        assert_eq!(s.num_uncertain(), 2);
        let a = dna.symbol('A').unwrap();
        assert!(approx_eq(s.position(1).prob_of(a), 0.8));
        assert_eq!(s.position(4).num_alternatives(), 3);
    }

    #[test]
    fn roundtrip_display_parse() {
        let dna = Alphabet::dna();
        let text = "A{(C,0.5),(G,0.5)}A{(C,0.25),(G,0.75)}AC";
        let s = UncertainString::parse(text, &dna).unwrap();
        let printed = s.display(&dna);
        let reparsed = UncertainString::parse(&printed, &dna).unwrap();
        assert_eq!(s, reparsed);
        assert_eq!(printed, text);
    }

    #[test]
    fn accepts_equals_separator() {
        // The paper's footnote writes "DI{(C,0.4),(S,0.5),(R = 0.1)}".
        let upper = Alphabet::uppercase();
        let s = UncertainString::parse("DI{(C,0.4),(S,0.5),(R = 0.1)}C", &upper).unwrap();
        assert_eq!(s.len(), 4);
        let r = upper.symbol('R').unwrap();
        assert!(approx_eq(s.position(2).prob_of(r), 0.1));
    }

    #[test]
    fn whitespace_inside_braces_ignored() {
        let dna = Alphabet::dna();
        let s = UncertainString::parse("{ (A, 0.5) , (C, 0.5) }T", &dna).unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn space_character_alternative_roundtrips() {
        // The dblp alphabet contains ' '; a distribution over {a, ' '}
        // must parse (the character after '(' is verbatim).
        let names = Alphabet::names();
        let s = UncertainString::parse("{(a,0.8),( ,0.2)}b", &names).unwrap();
        assert_eq!(s.len(), 2);
        let space = names.symbol(' ').unwrap();
        assert!((s.position(0).prob_of(space) - 0.2).abs() < 1e-12);
        let printed = s.display(&names);
        assert_eq!(UncertainString::parse(&printed, &names).unwrap(), s);
    }

    #[test]
    fn space_is_a_character_in_names_alphabet() {
        let names = Alphabet::names();
        let s = UncertainString::parse("a b", &names).unwrap();
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn parse_errors_carry_offsets() {
        let dna = Alphabet::dna();
        let err = UncertainString::parse("AX", &dna).unwrap_err();
        assert!(
            matches!(err, ModelError::Parse { offset: 2, .. }),
            "{err:?}"
        );
        assert!(UncertainString::parse("{(A,0.5)", &dna).is_err());
        assert!(UncertainString::parse("{(A,0.5),(A,0.5)}", &dna).is_err());
        assert!(UncertainString::parse("{(A,0.5),(C,0.2)}", &dna).is_err());
        assert!(UncertainString::parse("{(A,abc)}", &dna).is_err());
        // Distribution validation failures point at the opening brace.
        let err = UncertainString::parse("AC{(G,0.5),(T,0.2)}", &dna).unwrap_err();
        assert!(
            matches!(err, ModelError::Parse { offset: 2, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn singleton_distribution_collapses() {
        let dna = Alphabet::dna();
        let s = UncertainString::parse("{(A,1.0)}C", &dna).unwrap();
        assert!(s.is_deterministic());
    }

    #[test]
    fn empty_input_is_empty_string() {
        let s = UncertainString::parse("", &Alphabet::dna()).unwrap();
        assert!(s.is_empty());
    }
}
