//! The string-level uncertainty model (paper §1).
//!
//! Alongside the character-level model, Jestes et al. define a
//! **string-level** model: all possible instances of the uncertain string
//! are listed explicitly with their probabilities (a discrete pdf over
//! whole strings). The paper focuses on the character-level model because
//! it is more concise; this module provides the string-level counterpart
//! so collections given in either form can be joined:
//!
//! * instances may have **different lengths** (impossible in the
//!   character-level model);
//! * possible worlds are exactly the listed alternatives — no
//!   exponential blow-up, so exact similarity probabilities are
//!   `O(|R| · |S|)` banded-DP evaluations;
//! * conversions to/from the character-level model are provided, with
//!   their lossiness spelled out.

use std::collections::HashMap;

use crate::position::Position;
use crate::prob::{self, Prob};
use crate::string::UncertainString;
use crate::{ModelError, Result, Symbol};

/// An uncertain string in the string-level model: an explicit pdf over
/// deterministic instances.
///
/// Invariants: at least one alternative; probabilities in `(0, 1]`
/// summing to one; duplicate instances merged.
#[derive(Debug, Clone, PartialEq)]
pub struct StringLevelUncertain {
    /// `(instance, probability)` sorted by instance for canonical form.
    alternatives: Vec<(Vec<Symbol>, Prob)>,
}

impl StringLevelUncertain {
    /// Builds from `(instance, probability)` pairs; duplicates are
    /// merged, the result is sorted.
    pub fn new(alternatives: Vec<(Vec<Symbol>, Prob)>) -> Result<StringLevelUncertain> {
        if alternatives.is_empty() {
            return Err(ModelError::EmptyDistribution { index: 0 });
        }
        let mut merged: HashMap<Vec<Symbol>, Prob> = HashMap::new();
        let mut sum = 0.0;
        for (instance, p) in alternatives {
            if !(p.is_finite() && p > 0.0 && p <= 1.0 + prob::PROB_EPS) {
                return Err(ModelError::BadProbability { index: 0, value: p });
            }
            sum += p;
            *merged.entry(instance).or_insert(0.0) += p;
        }
        if !prob::approx_eq_eps(sum, 1.0, 1e-6) {
            return Err(ModelError::BadDistribution { index: 0, sum });
        }
        let mut alternatives: Vec<(Vec<Symbol>, Prob)> = merged.into_iter().collect();
        alternatives.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        Ok(StringLevelUncertain { alternatives })
    }

    /// A certain (single-instance) string.
    pub fn certain(instance: Vec<Symbol>) -> StringLevelUncertain {
        StringLevelUncertain {
            alternatives: vec![(instance, 1.0)],
        }
    }

    /// The alternatives, sorted by instance.
    pub fn alternatives(&self) -> &[(Vec<Symbol>, Prob)] {
        &self.alternatives
    }

    /// Number of alternatives.
    pub fn num_alternatives(&self) -> usize {
        self.alternatives.len()
    }

    /// Shortest instance length.
    pub fn min_len(&self) -> usize {
        self.alternatives
            .iter()
            .map(|(w, _)| w.len())
            .min()
            .unwrap_or(0)
    }

    /// Longest instance length.
    pub fn max_len(&self) -> usize {
        self.alternatives
            .iter()
            .map(|(w, _)| w.len())
            .max()
            .unwrap_or(0)
    }

    /// Probability of a specific instance.
    pub fn prob_of(&self, instance: &[Symbol]) -> Prob {
        self.alternatives
            .binary_search_by(|(w, _)| w.as_slice().cmp(instance))
            .map(|i| self.alternatives[i].1)
            .unwrap_or(0.0)
    }

    /// The most probable instance (ties broken lexicographically).
    pub fn most_probable(&self) -> &[Symbol] {
        let mut best = &self.alternatives[0];
        for alt in &self.alternatives[1..] {
            if alt.1 > best.1 {
                best = alt;
            }
        }
        &best.0
    }

    /// Exact `Pr(ed(self, other) ≤ k)`: a sum over the explicit joint
    /// alternatives (`O(A·B)` banded edit distances).
    pub fn similarity_prob(&self, other: &StringLevelUncertain, k: usize) -> Prob {
        let mut acc = 0.0;
        for (r, p) in &self.alternatives {
            for (s, q) in &other.alternatives {
                if r.len().abs_diff(s.len()) <= k && usj_ed_bounded(r, s, k) {
                    acc += p * q;
                }
            }
        }
        acc
    }

    /// Expected edit distance to `other` (the eed of Jestes et al.).
    pub fn expected_edit_distance(&self, other: &StringLevelUncertain) -> f64 {
        let mut acc = 0.0;
        for (r, p) in &self.alternatives {
            for (s, q) in &other.alternatives {
                acc += p * q * levenshtein(r, s) as f64;
            }
        }
        acc
    }

    /// Materialises a character-level string as string-level (enumerates
    /// its worlds; `None` when more than `max_worlds` exist).
    pub fn from_character_level(
        s: &UncertainString,
        max_worlds: u64,
    ) -> Option<StringLevelUncertain> {
        s.num_worlds_capped(max_worlds)?;
        let alternatives: Vec<(Vec<Symbol>, Prob)> =
            s.worlds().map(|w| (w.instance, w.prob)).collect();
        StringLevelUncertain::new(alternatives).ok()
    }

    /// Projects onto the character-level model by taking per-position
    /// marginals. Only defined when all alternatives share one length.
    ///
    /// **Lossy**: the character-level string's worlds are the *product*
    /// of the marginals, which generally has more (and differently
    /// weighted) worlds than the original pdf — positions of a
    /// string-level pdf need not be independent. The marginals are
    /// preserved exactly; joint structure is not. Returns `None` when
    /// alternative lengths differ.
    pub fn marginal_character_level(&self) -> Option<UncertainString> {
        let len = self.alternatives[0].0.len();
        if self.alternatives.iter().any(|(w, _)| w.len() != len) {
            return None;
        }
        let mut positions = Vec::with_capacity(len);
        for i in 0..len {
            let mut mass: HashMap<Symbol, Prob> = HashMap::new();
            for (w, p) in &self.alternatives {
                *mass.entry(w[i]).or_insert(0.0) += p;
            }
            let alts: Vec<(Symbol, Prob)> = mass.into_iter().collect();
            positions.push(Position::uncertain(i, alts).ok()?);
        }
        Some(UncertainString::new(positions))
    }
}

/// Minimal local Levenshtein (avoids a dependency cycle with
/// `usj-editdist`; the two are cross-checked in tests there).
fn levenshtein(a: &[Symbol], b: &[Symbol]) -> usize {
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut diag = row[0];
        row[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let val = (diag + usize::from(ca != cb))
                .min(row[j] + 1)
                .min(row[j + 1] + 1);
            diag = row[j + 1];
            row[j + 1] = val;
        }
    }
    row[b.len()]
}

/// `ed(a, b) ≤ k`?
fn usj_ed_bounded(a: &[Symbol], b: &[Symbol], k: usize) -> bool {
    levenshtein(a, b) <= k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Alphabet;

    fn enc(t: &str) -> Vec<Symbol> {
        Alphabet::dna().encode(t).unwrap()
    }

    #[test]
    fn construction_and_canonical_form() {
        let s = StringLevelUncertain::new(vec![
            (enc("ACGT"), 0.5),
            (enc("ACG"), 0.3),
            (enc("ACGT"), 0.2), // duplicate merges
        ])
        .unwrap();
        assert_eq!(s.num_alternatives(), 2);
        assert!((s.prob_of(&enc("ACGT")) - 0.7).abs() < 1e-12);
        assert_eq!(s.min_len(), 3);
        assert_eq!(s.max_len(), 4);
        assert_eq!(s.most_probable(), enc("ACGT").as_slice());
    }

    #[test]
    fn validation_errors() {
        assert!(StringLevelUncertain::new(vec![]).is_err());
        assert!(StringLevelUncertain::new(vec![(enc("A"), 0.5)]).is_err());
        assert!(StringLevelUncertain::new(vec![(enc("A"), -0.5), (enc("C"), 1.5)]).is_err());
    }

    #[test]
    fn similarity_prob_direct() {
        // R = {ACGT: 0.6, TTTT: 0.4}, S = {ACGA: 1.0}, k = 1:
        // only ACGT is within 1 → 0.6.
        let r = StringLevelUncertain::new(vec![(enc("ACGT"), 0.6), (enc("TTTT"), 0.4)]).unwrap();
        let s = StringLevelUncertain::certain(enc("ACGA"));
        assert!((r.similarity_prob(&s, 1) - 0.6).abs() < 1e-12);
        assert_eq!(r.similarity_prob(&s, 0), 0.0);
        assert!((r.similarity_prob(&s, 4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn different_length_alternatives() {
        // String-level models can mix lengths — impossible for
        // character-level strings.
        let r = StringLevelUncertain::new(vec![(enc("AC"), 0.5), (enc("ACGT"), 0.5)]).unwrap();
        let s = StringLevelUncertain::certain(enc("ACG"));
        // ed(AC, ACG) = 1 and ed(ACGT, ACG) = 1 → Pr(ed ≤ 1) = 1.
        assert!((r.similarity_prob(&s, 1) - 1.0).abs() < 1e-12);
        assert!(r.marginal_character_level().is_none());
    }

    #[test]
    fn eed_matches_weighted_sum() {
        let r = StringLevelUncertain::new(vec![(enc("ACGT"), 0.5), (enc("AAAA"), 0.5)]).unwrap();
        let s = StringLevelUncertain::certain(enc("ACGT"));
        // 0.5·0 + 0.5·3 = 1.5
        assert!((r.expected_edit_distance(&s) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn roundtrip_with_character_level() {
        let dna = Alphabet::dna();
        let c = UncertainString::parse("A{(C,0.3),(G,0.7)}T", &dna).unwrap();
        let s = StringLevelUncertain::from_character_level(&c, 100).unwrap();
        assert_eq!(s.num_alternatives(), 2);
        assert!((s.prob_of(&enc("ACT")) - 0.3).abs() < 1e-12);
        // Marginals project back to the original (positions here are
        // genuinely independent).
        let back = s.marginal_character_level().unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn marginal_projection_is_lossy_for_correlated_pdfs() {
        // {AA: 0.5, CC: 0.5} has perfectly correlated positions; the
        // marginal character-level string also allows AC and CA.
        let s = StringLevelUncertain::new(vec![(enc("AA"), 0.5), (enc("CC"), 0.5)]).unwrap();
        let marginal = s.marginal_character_level().unwrap();
        assert_eq!(marginal.num_worlds(), 4.0);
        assert!((marginal.instance_prob(&enc("AC")) - 0.25).abs() < 1e-12);
        // ... which is exactly why joins must not silently convert.
    }

    #[test]
    fn world_cap() {
        let dna = Alphabet::dna();
        let c = UncertainString::parse("{(A,0.5),(C,0.5)}{(A,0.5),(C,0.5)}", &dna).unwrap();
        assert!(StringLevelUncertain::from_character_level(&c, 3).is_none());
        assert!(StringLevelUncertain::from_character_level(&c, 4).is_some());
    }

    #[test]
    fn local_levenshtein_matches_reference() {
        // Cross-check the module-local DP against usj-editdist on a grid
        // of short strings (dev-dependency direction keeps no cycle).
        for a in ["", "A", "AC", "ACG", "ACGT", "TTTT"] {
            for b in ["", "G", "AC", "AGG", "ACGT", "ACTT"] {
                let (ea, eb) = (enc(a), enc(b));
                assert_eq!(
                    levenshtein(&ea, &eb),
                    usj_editdist::edit_distance(&ea, &eb),
                    "{a} vs {b}"
                );
            }
        }
    }
}
