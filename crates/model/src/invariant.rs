//! Debug-build runtime invariant checks for the probability model.
//!
//! Every probability kernel downstream (q-gram `α_x`, frequency distance,
//! CDF bounds) assumes per-position pdfs are normalized. The
//! [`Position::Uncertain`] variant is public, so strings can be built
//! without going through [`Position::uncertain`]'s validating constructor
//! — [`crate::UncertainString::new`] therefore re-checks the invariant in
//! debug builds. Under `cfg(not(debug_assertions))` the check compiles to
//! an empty inline function: release joins pay nothing.

use crate::position::Position;

/// Asserts every uncertain position carries a normalized pdf: each
/// probability finite and in `(0, 1]`, masses summing to `1 ± 1e-6` (the
/// same tolerance as [`Position::validate`]).
#[cfg(debug_assertions)]
pub(crate) fn debug_check_positions(positions: &[Position]) {
    use crate::prob::PROB_EPS;
    for (i, pos) in positions.iter().enumerate() {
        if let Position::Uncertain(alts) = pos {
            let mut sum = 0.0;
            for &(sym, p) in alts {
                debug_assert!(
                    p.is_finite() && p > 0.0 && p <= 1.0 + PROB_EPS,
                    "position {i}: Pr(symbol {sym}) = {p} lies outside (0, 1]"
                );
                sum += p;
            }
            debug_assert!(
                (sum - 1.0).abs() <= 1e-6,
                "position {i}: pdf mass {sum} differs from 1 beyond tolerance"
            );
        }
    }
}

#[cfg(not(debug_assertions))]
#[inline(always)]
pub(crate) fn debug_check_positions(_: &[Position]) {}
