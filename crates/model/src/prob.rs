//! Probability helpers shared across the workspace.
//!
//! Probabilities are plain `f64`; this module centralises the tolerance used
//! when validating distributions and comparing probability values, so every
//! crate agrees on what "sums to one" means.

/// Probability type used throughout the workspace.
pub type Prob = f64;

/// Absolute tolerance used when checking that a distribution sums to one and
/// when comparing probabilities in tests.
pub const PROB_EPS: f64 = 1e-9;

/// Looser tolerance for quantities accumulated over many floating point
/// operations (possible-world sums, DP tables).
pub const SUM_EPS: f64 = 1e-6;

/// Returns `true` if `a` and `b` are equal within [`PROB_EPS`].
#[inline]
pub fn approx_eq(a: Prob, b: Prob) -> bool {
    (a - b).abs() <= PROB_EPS
}

/// Returns `true` if `a` and `b` are equal within `eps`.
#[inline]
pub fn approx_eq_eps(a: Prob, b: Prob, eps: f64) -> bool {
    (a - b).abs() <= eps
}

/// Returns `true` if `p` is a valid probability in `[0, 1]` (within
/// [`PROB_EPS`] slack on both ends).
#[inline]
pub fn is_valid(p: Prob) -> bool {
    p.is_finite() && (-PROB_EPS..=1.0 + PROB_EPS).contains(&p)
}

/// Clamps `p` into `[0, 1]`, absorbing small floating-point drift.
///
/// DP recurrences such as the Poisson-binomial tail or the CDF bounds can
/// produce values like `1.0000000000000002`; clamping keeps downstream
/// threshold comparisons honest.
#[inline]
pub fn clamp(p: Prob) -> Prob {
    p.clamp(0.0, 1.0)
}

/// Normalises `weights` in place so they sum to one.
///
/// Returns `false` (leaving the input untouched) when the total mass is zero
/// or non-finite, in which case normalisation is impossible.
pub fn normalize(weights: &mut [Prob]) -> bool {
    let total: f64 = weights.iter().sum();
    if !(total.is_finite() && total > 0.0) {
        return false;
    }
    for w in weights.iter_mut() {
        *w /= total;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_within_tolerance() {
        assert!(approx_eq(0.5, 0.5 + 1e-12));
        assert!(!approx_eq(0.5, 0.5 + 1e-6));
    }

    #[test]
    fn validity_bounds() {
        assert!(is_valid(0.0));
        assert!(is_valid(1.0));
        assert!(is_valid(1.0 + 1e-12));
        assert!(!is_valid(1.1));
        assert!(!is_valid(-0.1));
        assert!(!is_valid(f64::NAN));
        assert!(!is_valid(f64::INFINITY));
    }

    #[test]
    fn clamp_absorbs_drift() {
        assert_eq!(clamp(1.0 + 1e-15), 1.0);
        assert_eq!(clamp(-1e-15), 0.0);
        assert_eq!(clamp(0.25), 0.25);
    }

    #[test]
    fn normalize_rescales() {
        let mut w = [1.0, 3.0];
        assert!(normalize(&mut w));
        assert!(approx_eq(w[0], 0.25));
        assert!(approx_eq(w[1], 0.75));
    }

    #[test]
    fn normalize_rejects_zero_mass() {
        let mut w = [0.0, 0.0];
        assert!(!normalize(&mut w));
        assert_eq!(w, [0.0, 0.0]);
    }

    #[test]
    fn normalize_rejects_nan() {
        let mut w = [f64::NAN, 1.0];
        assert!(!normalize(&mut w));
    }
}
