//! The character-level uncertain string type.

use crate::position::Position;
use crate::prob::Prob;
use crate::worlds::{World, WorldIter};
use crate::{Result, Symbol};

/// A character-level uncertain string: a sequence of independent
/// per-position distributions over the alphabet.
///
/// Every possible instance (world) of the string has the same length
/// [`UncertainString::len`]. Positions are 0-indexed throughout the API
/// (the paper uses 1-indexing in prose).
///
/// ```
/// use usj_model::{Alphabet, UncertainString};
///
/// let dna = Alphabet::dna();
/// let s = UncertainString::parse("A{(C,0.5),(G,0.5)}A", &dna).unwrap();
/// assert_eq!(s.len(), 3);
/// assert_eq!(s.num_worlds(), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct UncertainString {
    positions: Vec<Position>,
}

impl UncertainString {
    /// Builds an uncertain string from validated positions.
    ///
    /// Debug builds re-check that every pdf is normalized (the
    /// [`Position::Uncertain`] variant is public, so unvalidated
    /// distributions are constructible); release builds skip the check.
    pub fn new(positions: Vec<Position>) -> Self {
        crate::invariant::debug_check_positions(&positions);
        UncertainString { positions }
    }

    /// Builds a fully-certain string from symbol ids.
    pub fn from_symbols(symbols: &[Symbol]) -> Self {
        UncertainString {
            positions: symbols.iter().map(|&s| Position::certain(s)).collect(),
        }
    }

    /// The empty string (zero positions, exactly one empty world).
    pub fn empty() -> Self {
        UncertainString {
            positions: Vec::new(),
        }
    }

    /// Number of positions `l = |S|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `true` when the string has no positions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The distribution at position `i` (0-based).
    #[inline]
    pub fn position(&self, i: usize) -> &Position {
        &self.positions[i]
    }

    /// All positions as a slice.
    #[inline]
    pub fn positions(&self) -> &[Position] {
        &self.positions
    }

    /// `true` when every position is certain (exactly one world).
    pub fn is_deterministic(&self) -> bool {
        self.positions.iter().all(Position::is_certain)
    }

    /// Number of uncertain positions.
    pub fn num_uncertain(&self) -> usize {
        self.positions.iter().filter(|p| !p.is_certain()).count()
    }

    /// Fraction `θ` of uncertain positions (0 for the empty string).
    pub fn theta(&self) -> f64 {
        if self.positions.is_empty() {
            0.0
        } else {
            self.num_uncertain() as f64 / self.positions.len() as f64
        }
    }

    /// Number of possible worlds as an `f64` (products overflow `u64`
    /// quickly; callers that need an exact small count should check
    /// [`UncertainString::num_worlds_capped`]).
    pub fn num_worlds(&self) -> f64 {
        self.positions
            .iter()
            .map(|p| p.num_alternatives() as f64)
            .product()
    }

    /// Exact world count if it does not exceed `cap`, else `None`.
    pub fn num_worlds_capped(&self, cap: u64) -> Option<u64> {
        let mut n: u64 = 1;
        for p in &self.positions {
            n = n.checked_mul(p.num_alternatives() as u64)?;
            if n > cap {
                return None;
            }
        }
        Some(n)
    }

    /// Probability that the instance of this string equals the deterministic
    /// string `w`: `Π_i Pr(S[i] = w[i])`, or 0 when lengths differ.
    pub fn instance_prob(&self, w: &[Symbol]) -> Prob {
        if w.len() != self.positions.len() {
            return 0.0;
        }
        let mut p = 1.0;
        for (pos, &sym) in self.positions.iter().zip(w) {
            p *= pos.prob_of(sym);
            if p == 0.0 {
                return 0.0;
            }
        }
        p
    }

    /// Probability that deterministic `w` matches the substring starting at
    /// `start` (0-based): `Pr(w = S[start .. start+|w|])`. Returns 0 when
    /// the window does not fit.
    pub fn substring_match_prob(&self, start: usize, w: &[Symbol]) -> Prob {
        let Some(end) = start.checked_add(w.len()) else {
            return 0.0;
        };
        if end > self.positions.len() {
            return 0.0;
        }
        let mut p = 1.0;
        for (pos, &sym) in self.positions[start..end].iter().zip(w) {
            p *= pos.prob_of(sym);
            if p == 0.0 {
                return 0.0;
            }
        }
        p
    }

    /// Probability that this whole string matches uncertain `other`
    /// position-wise: `Π_i Σ_c Pr(S[i]=c)·Pr(T[i]=c)`; 0 when lengths
    /// differ. This is the paper's `Pr(W = T)`.
    pub fn match_prob(&self, other: &UncertainString) -> Prob {
        if self.len() != other.len() {
            return 0.0;
        }
        let mut p = 1.0;
        for (a, b) in self.positions.iter().zip(other.positions.iter()) {
            p *= a.match_prob(b);
            if p == 0.0 {
                return 0.0;
            }
        }
        p
    }

    /// A view of the substring `[start, start+len)` as a new uncertain
    /// string (clones the positions).
    ///
    /// # Panics
    ///
    /// Panics if the range does not fit.
    pub fn substring(&self, start: usize, len: usize) -> UncertainString {
        UncertainString {
            positions: self.positions[start..start + len].to_vec(),
        }
    }

    /// Iterates all possible worlds of the substring `[start, start+len)`
    /// as `(instance, probability)` pairs, in lexicographic symbol order.
    pub fn substring_worlds(&self, start: usize, len: usize) -> WorldIter<'_> {
        WorldIter::new(&self.positions[start..start + len])
    }

    /// Visits all worlds of the substring `[start, start+len)` without
    /// per-world allocation — see [`crate::worlds::visit_worlds`].
    /// Returns `true` iff `f` never stopped the walk.
    pub fn visit_substring_worlds<F>(&self, start: usize, len: usize, f: F) -> bool
    where
        F: FnMut(&[crate::Symbol], crate::Prob) -> bool,
    {
        crate::worlds::visit_worlds(&self.positions[start..start + len], f)
    }

    /// Iterates all possible worlds of the whole string.
    pub fn worlds(&self) -> WorldIter<'_> {
        WorldIter::new(&self.positions)
    }

    /// Collects all worlds into a vector; `cap` bounds the number of worlds
    /// (returns `None` when exceeded) to guard against exponential blowup.
    pub fn collect_worlds(&self, cap: usize) -> Option<Vec<World>> {
        let mut out = Vec::new();
        for world in self.worlds() {
            if out.len() >= cap {
                return None;
            }
            out.push(world);
        }
        Some(out)
    }

    /// The most probable world (per-position argmax; valid because
    /// positions are independent).
    pub fn most_probable_world(&self) -> World {
        let mut instance = Vec::with_capacity(self.len());
        let mut prob = 1.0;
        for p in &self.positions {
            let s = p.most_probable();
            prob *= p.prob_of(s);
            instance.push(s);
        }
        World { instance, prob }
    }

    /// Samples one world using the supplied uniform samples.
    ///
    /// `uniforms` must yield one value in `[0, 1)` per position; this keeps
    /// the crate free of a hard `rand` dependency while callers can pass
    /// `std::iter::repeat_with(|| rng.gen::<f64>())`.
    pub fn sample_world(&self, mut uniforms: impl FnMut() -> f64) -> World {
        let mut instance = Vec::with_capacity(self.len());
        let mut prob = 1.0;
        for p in &self.positions {
            match p {
                Position::Certain(s) => instance.push(*s),
                Position::Uncertain(alts) => {
                    let u = uniforms();
                    let mut acc = 0.0;
                    let mut chosen = alts[alts.len() - 1].0;
                    for &(s, q) in alts {
                        acc += q;
                        if u < acc {
                            chosen = s;
                            break;
                        }
                    }
                    prob *= p.prob_of(chosen);
                    instance.push(chosen);
                }
            }
        }
        World { instance, prob }
    }

    /// Concatenates `self` with `other` (used by the paper's string-length
    /// experiment, which appends each string to itself).
    pub fn concat(&self, other: &UncertainString) -> UncertainString {
        let mut positions = Vec::with_capacity(self.len() + other.len());
        positions.extend_from_slice(&self.positions);
        positions.extend_from_slice(&other.positions);
        UncertainString { positions }
    }

    /// Validates every position's distribution (useful after manual
    /// construction or deserialisation).
    pub fn validate(&self) -> Result<()> {
        for (i, p) in self.positions.iter().enumerate() {
            p.validate(i)?;
        }
        Ok(())
    }
}

impl std::ops::Index<usize> for UncertainString {
    type Output = Position;

    fn index(&self, i: usize) -> &Position {
        &self.positions[i]
    }
}

impl FromIterator<Position> for UncertainString {
    fn from_iter<T: IntoIterator<Item = Position>>(iter: T) -> Self {
        UncertainString::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prob::{approx_eq, approx_eq_eps};
    use crate::Alphabet;

    fn s(text: &str) -> UncertainString {
        UncertainString::parse(text, &Alphabet::dna()).unwrap()
    }

    #[test]
    fn deterministic_string_basics() {
        let x = s("ACGT");
        assert_eq!(x.len(), 4);
        assert!(x.is_deterministic());
        assert_eq!(x.num_uncertain(), 0);
        assert_eq!(x.theta(), 0.0);
        assert_eq!(x.num_worlds(), 1.0);
        assert_eq!(x.num_worlds_capped(10), Some(1));
    }

    #[test]
    fn uncertain_counts() {
        let x = s("A{(C,0.5),(G,0.5)}A{(A,0.25),(T,0.75)}");
        assert_eq!(x.len(), 4);
        assert_eq!(x.num_uncertain(), 2);
        assert!(approx_eq(x.theta(), 0.5));
        assert_eq!(x.num_worlds(), 4.0);
        assert_eq!(x.num_worlds_capped(3), None);
        assert_eq!(x.num_worlds_capped(4), Some(4));
    }

    #[test]
    fn instance_prob_products() {
        let dna = Alphabet::dna();
        let x = s("A{(C,0.5),(G,0.5)}A");
        let aca = dna.encode("ACA").unwrap();
        let aga = dna.encode("AGA").unwrap();
        let ata = dna.encode("ATA").unwrap();
        assert!(approx_eq(x.instance_prob(&aca), 0.5));
        assert!(approx_eq(x.instance_prob(&aga), 0.5));
        assert!(approx_eq(x.instance_prob(&ata), 0.0));
        assert!(approx_eq(x.instance_prob(&dna.encode("AC").unwrap()), 0.0));
    }

    #[test]
    fn substring_match_prob_windows() {
        let dna = Alphabet::dna();
        let x = s("A{(C,0.5),(G,0.5)}AT");
        let ca = dna.encode("CA").unwrap();
        assert!(approx_eq(x.substring_match_prob(1, &ca), 0.5));
        assert!(approx_eq(x.substring_match_prob(0, &ca), 0.0));
        // window falls off the end
        assert!(approx_eq(x.substring_match_prob(3, &ca), 0.0));
        assert!(approx_eq(x.substring_match_prob(usize::MAX, &ca), 0.0));
    }

    #[test]
    fn match_prob_of_two_uncertain_strings() {
        let a = s("{(A,0.8),(C,0.2)}T");
        let b = s("{(A,0.5),(G,0.5)}T");
        assert!(approx_eq(a.match_prob(&b), 0.4));
        assert!(approx_eq(a.match_prob(&s("AT")), 0.8));
        assert!(approx_eq(a.match_prob(&s("ATT")), 0.0));
    }

    #[test]
    fn worlds_sum_to_one() {
        let x = s("{(A,0.3),(C,0.7)}G{(A,0.5),(T,0.5)}");
        let worlds = x.collect_worlds(100).unwrap();
        assert_eq!(worlds.len(), 4);
        let total: f64 = worlds.iter().map(|w| w.prob).sum();
        assert!(approx_eq_eps(total, 1.0, 1e-9));
        // every world's prob equals instance_prob of its instance
        for w in &worlds {
            assert!(approx_eq(x.instance_prob(&w.instance), w.prob));
        }
    }

    #[test]
    fn collect_worlds_cap() {
        let x = s("{(A,0.5),(C,0.5)}{(A,0.5),(C,0.5)}");
        assert!(x.collect_worlds(3).is_none());
        assert_eq!(x.collect_worlds(4).unwrap().len(), 4);
    }

    #[test]
    fn most_probable_world_is_argmax() {
        let x = s("{(A,0.3),(C,0.7)}G");
        let w = x.most_probable_world();
        assert_eq!(Alphabet::dna().decode(&w.instance), "CG");
        assert!(approx_eq(w.prob, 0.7));
    }

    #[test]
    fn sample_world_deterministic_uniforms() {
        let x = s("{(A,0.3),(C,0.7)}G");
        let w = x.sample_world(|| 0.1); // 0.1 < 0.3 → A
        assert_eq!(Alphabet::dna().decode(&w.instance), "AG");
        let w = x.sample_world(|| 0.9); // 0.9 ≥ 0.3 → C
        assert_eq!(Alphabet::dna().decode(&w.instance), "CG");
    }

    #[test]
    fn concat_appends_positions() {
        let x = s("A{(C,0.5),(G,0.5)}");
        let y = x.concat(&x);
        assert_eq!(y.len(), 4);
        assert_eq!(y.num_worlds(), 4.0);
    }

    #[test]
    fn empty_string_has_one_world() {
        let e = UncertainString::empty();
        assert!(e.is_empty());
        assert_eq!(e.num_worlds(), 1.0);
        let worlds = e.collect_worlds(10).unwrap();
        assert_eq!(worlds.len(), 1);
        assert!(approx_eq(worlds[0].prob, 1.0));
        assert!(worlds[0].instance.is_empty());
    }

    // The debug-only invariant layer: corrupted pdfs (constructible
    // because `Position::Uncertain` is public) must trip the check in
    // debug builds and cost nothing in release.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "pdf mass")]
    fn debug_build_rejects_unnormalized_pdf() {
        let _ = UncertainString::new(vec![Position::Uncertain(vec![(0, 0.3), (1, 0.3)])]);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn debug_build_rejects_out_of_range_probability() {
        let _ = UncertainString::new(vec![Position::Uncertain(vec![(0, -0.5), (1, 1.5)])]);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn release_build_skips_invariant_checks() {
        let s = UncertainString::new(vec![Position::Uncertain(vec![(0, 0.3), (1, 0.3)])]);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn substring_view() {
        let x = s("A{(C,0.5),(G,0.5)}AT");
        let sub = x.substring(1, 2);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.num_worlds(), 2.0);
    }
}
