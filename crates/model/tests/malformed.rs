//! Malformed-input corpus for the uncertain-string parser: every corpus
//! line must be rejected with a *positioned* `ModelError::Parse` — the
//! parser must never panic, never loop, and never silently accept a
//! defective distribution.

use usj_model::{Alphabet, ModelError, UncertainString};

/// Corpus lines use `\0` to denote an embedded NUL byte (a text file
/// cannot hold one literally without upsetting editors and diff tools).
fn unescape(line: &str) -> String {
    line.replace("\\0", "\0")
}

fn corpus() -> Vec<String> {
    include_str!("corpus/malformed.txt")
        .lines()
        .map(str::trim_end)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(unescape)
        .collect()
}

#[test]
fn every_corpus_line_is_rejected_with_a_positioned_error() {
    let dna = Alphabet::dna();
    let inputs = corpus();
    assert!(inputs.len() >= 30, "corpus unexpectedly small: {}", inputs.len());
    for input in &inputs {
        match UncertainString::parse(input, &dna) {
            Ok(s) => panic!("corpus input {input:?} parsed to a {}-position string", s.len()),
            Err(ModelError::Parse { offset, message }) => {
                assert!(
                    offset <= input.len(),
                    "{input:?}: offset {offset} beyond input length {}",
                    input.len()
                );
                assert!(!message.is_empty(), "{input:?}: empty error message");
                // The Display form is what the CLI prints; it must carry
                // the position.
                let shown = ModelError::Parse { offset, message }.to_string();
                assert!(shown.contains(&format!("byte {offset}")), "{shown}");
            }
            Err(other) => {
                panic!("corpus input {input:?} produced unpositioned error {other:?}")
            }
        }
    }
}

#[test]
fn defect_positions_are_precise() {
    let dna = Alphabet::dna();
    let at = |text: &str| match UncertainString::parse(text, &dna) {
        Err(ModelError::Parse { offset, .. }) => offset,
        other => panic!("{text:?}: expected parse error, got {other:?}"),
    };
    // Mass/validation defects point at the opening brace of the
    // offending distribution, even though they are detected at '}'.
    assert_eq!(at("AC{(G,0.5),(T,0.2)}AC"), 2);
    assert_eq!(at("{(A,0.5),(A,0.5)}"), 0);
    assert_eq!(at("ACGT{(A,-0.5),(C,1.5)}"), 4);
    // Lexical defects point just past the offending character.
    assert_eq!(at("AXC"), 2);
    assert_eq!(at("A\0C"), 2);
}

#[test]
fn nearby_wellformed_inputs_still_parse() {
    // Over-rejection guard: the hardened paths must not refuse the valid
    // neighbours of the corpus defects.
    let dna = Alphabet::dna();
    for text in [
        "A{(C,0.5),(G,0.5)}A",
        "{(A,0.8),(C,0.1),(T,0.1)}",
        "{ (A, 0.5) , (C, 0.5) }T",
        "{(A,1.0)}C",
        "",
        "ACGT",
    ] {
        UncertainString::parse(text, &dna)
            .unwrap_or_else(|e| panic!("{text:?} must parse: {e}"));
    }
}
