//! Property tests for the uncertain string model.

use proptest::prelude::*;
use usj_model::{Alphabet, Position, UncertainString};

/// Strategy: a random position over an alphabet of size `sigma`, with up to
/// `max_alts` alternatives.
fn arb_position(sigma: u8, max_alts: usize) -> impl Strategy<Value = Position> {
    prop::collection::vec((0..sigma, 1u32..=100), 1..=max_alts).prop_map(|raw| {
        // Deduplicate symbols, then normalise weights into probabilities.
        let mut seen = std::collections::BTreeMap::new();
        for (s, w) in raw {
            *seen.entry(s).or_insert(0u32) += w;
        }
        let total: u32 = seen.values().sum();
        let alts: Vec<(u8, f64)> = seen
            .into_iter()
            .map(|(s, w)| (s, w as f64 / total as f64))
            .collect();
        Position::uncertain(0, alts).expect("constructed distribution is valid")
    })
}

/// Strategy: a random uncertain string.
pub fn arb_string(
    sigma: u8,
    max_len: usize,
    max_alts: usize,
) -> impl Strategy<Value = UncertainString> {
    prop::collection::vec(arb_position(sigma, max_alts), 0..=max_len).prop_map(UncertainString::new)
}

proptest! {
    #[test]
    fn world_probabilities_sum_to_one(s in arb_string(4, 6, 3)) {
        let total: f64 = s.worlds().map(|w| w.prob).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "total = {total}");
    }

    #[test]
    fn world_count_matches_product(s in arb_string(4, 6, 3)) {
        let n = s.worlds().count();
        prop_assert_eq!(n as f64, s.num_worlds());
    }

    #[test]
    fn instance_prob_agrees_with_world_enumeration(s in arb_string(4, 5, 3)) {
        for w in s.worlds() {
            let p = s.instance_prob(&w.instance);
            prop_assert!((p - w.prob).abs() < 1e-12);
        }
    }

    #[test]
    fn match_prob_equals_world_pair_sum(
        a in arb_string(3, 4, 2),
        b in arb_string(3, 4, 2),
    ) {
        // Pr(A = B) over the joint worlds must equal the position-wise product.
        let direct = a.match_prob(&b);
        let mut acc = 0.0;
        for wa in a.worlds() {
            for wb in b.worlds() {
                if wa.instance == wb.instance {
                    acc += wa.prob * wb.prob;
                }
            }
        }
        prop_assert!((direct - acc).abs() < 1e-9, "direct={direct} acc={acc}");
    }

    #[test]
    fn display_parse_roundtrip(s in arb_string(4, 8, 3)) {
        let dna = Alphabet::dna();
        let text = s.display(&dna);
        let reparsed = UncertainString::parse(&text, &dna).unwrap();
        prop_assert_eq!(s.len(), reparsed.len());
        for i in 0..s.len() {
            for sym in 0..4u8 {
                let p0 = s.position(i).prob_of(sym);
                let p1 = reparsed.position(i).prob_of(sym);
                prop_assert!((p0 - p1).abs() < 1e-5, "pos {i} sym {sym}: {p0} vs {p1}");
            }
        }
    }

    /// The parser never panics on arbitrary input — it either produces a
    /// valid string or a structured error.
    #[test]
    fn parser_never_panics(input in "\\PC*") {
        let dna = Alphabet::dna();
        match UncertainString::parse(&input, &dna) {
            Ok(s) => prop_assert!(s.validate().is_ok()),
            Err(_) => {}
        }
    }

    /// Parser fuzz biased towards near-valid syntax (braces, parens,
    /// digits) to reach deeper states than fully random text.
    #[test]
    fn parser_never_panics_near_valid(input in "[ACGT{}(),.0-9eE+-]{0,40}") {
        let dna = Alphabet::dna();
        let _ = UncertainString::parse(&input, &dna);
    }

    #[test]
    fn most_probable_world_dominates_samples(s in arb_string(4, 5, 3)) {
        let best = s.most_probable_world();
        for w in s.worlds() {
            prop_assert!(best.prob >= w.prob - 1e-12);
        }
    }

    #[test]
    fn substring_match_prob_consistent_with_substring_worlds(
        s in arb_string(4, 6, 3),
        start in 0usize..4,
        len in 0usize..4,
    ) {
        if start + len <= s.len() {
            let sub = s.substring(start, len);
            for w in sub.worlds() {
                let p = s.substring_match_prob(start, &w.instance);
                prop_assert!((p - w.prob).abs() < 1e-12);
            }
        }
    }
}
