//! Property tests for the expected-edit-distance baseline.

use proptest::prelude::*;
use usj_eed::{eed_within, expected_edit_distance, EedJoin};
use usj_model::{Position, UncertainString};

fn arb_position(sigma: u8) -> impl Strategy<Value = Position> {
    prop::collection::vec((0..sigma, 1u32..=100), 1..=2).prop_map(|raw| {
        let mut seen = std::collections::BTreeMap::new();
        for (s, w) in raw {
            *seen.entry(s).or_insert(0u32) += w;
        }
        let total: u32 = seen.values().sum();
        let alts: Vec<(u8, f64)> = seen
            .into_iter()
            .map(|(s, w)| (s, w as f64 / total as f64))
            .collect();
        Position::uncertain(0, alts).unwrap()
    })
}

fn arb_string(len: std::ops::Range<usize>) -> impl Strategy<Value = UncertainString> {
    prop::collection::vec(arb_position(3), len).prop_map(UncertainString::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// eed is bounded by the length gap below and max length above.
    #[test]
    fn eed_bounds(r in arb_string(0..7), s in arb_string(0..7)) {
        let eed = expected_edit_distance(&r, &s, 1 << 20).unwrap();
        prop_assert!(eed >= r.len().abs_diff(s.len()) as f64 - 1e-9);
        prop_assert!(eed <= r.len().max(s.len()) as f64 + 1e-9);
    }

    /// eed is symmetric.
    #[test]
    fn eed_symmetric(r in arb_string(0..6), s in arb_string(0..6)) {
        let a = expected_edit_distance(&r, &s, 1 << 20).unwrap();
        let b = expected_edit_distance(&s, &r, 1 << 20).unwrap();
        prop_assert!((a - b).abs() < 1e-9);
    }

    /// Early-terminating decision equals the exact comparison.
    #[test]
    fn eed_within_agrees(r in arb_string(1..6), s in arb_string(1..6), d_tenths in 0u32..40) {
        let d = d_tenths as f64 / 10.0 + 0.05; // avoid knife edges
        let exact = expected_edit_distance(&r, &s, 1 << 20).unwrap();
        prop_assume!((exact - d).abs() > 1e-6);
        prop_assert_eq!(eed_within(&r, &s, d), exact <= d);
    }

    /// Markov-style relation between the two semantics: for deterministic
    /// strings the eed join with threshold k and the (k,τ) join agree for
    /// any τ < 1 (both reduce to ed ≤ k).
    #[test]
    fn deterministic_strings_reduce_to_plain_ed(
        worlds in prop::collection::vec(prop::collection::vec(0u8..3, 2..6), 2..5),
        k in 0usize..3,
    ) {
        let strings: Vec<UncertainString> =
            worlds.iter().map(|w| UncertainString::from_symbols(w)).collect();
        let (pairs, _) = EedJoin::new(k as f64 + 0.5).self_join(&strings);
        for i in 0..strings.len() {
            for j in (i + 1)..strings.len() {
                let d = usj_editdist::edit_distance(
                    &worlds[i],
                    &worlds[j],
                );
                let listed = pairs.iter().any(|p| (p.left, p.right) == (i as u32, j as u32));
                prop_assert_eq!(listed, d as f64 <= k as f64 + 0.5, "i={} j={} d={}", i, j, d);
            }
        }
    }
}
