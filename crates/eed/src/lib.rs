//! Expected-edit-distance (EED) baseline (paper §7.9; Jestes et al.,
//! SIGMOD 2010).
//!
//! Jestes et al. define similarity of uncertain strings by the *expected*
//! edit distance over all world pairs,
//! `eed(R, S) = Σ_{r_i, s_j} p(r_i)·p(s_j)·ed(r_i, s_j)`, and join pairs
//! with `eed ≤ d`. The paper this crate belongs to argues (§1) that eed
//! does not implement possible-world semantics at the query level and
//! compares against it qualitatively in §7.9 on three axes:
//!
//! 1. **index size** — \[10\] indexes *overlapping* q-grams of every
//!    instance (≈5× the data size); the (k,τ) join indexes disjoint
//!    segments (≈2×). [`OverlappingQGramIndex`] measures this.
//! 2. **filtering** — \[10\] evaluates every candidate pair individually;
//! 3. **verification** — computing exact eed requires enumerating all
//!    world pairs ([`expected_edit_distance`]); early termination via
//!    running bounds is the only shortcut ([`eed_within`]).
//!
//! This is a faithful *cost-model* reimplementation of the eed join, not a
//! line-by-line port of \[10\] (whose full machinery — probabilistic q-gram
//! lower bounds on eed — is out of scope; see DESIGN.md §4).

#![warn(missing_docs)]

use std::collections::HashMap;

use usj_editdist::myers_distance as edit_distance;
use usj_model::{Symbol, UncertainString};

/// Exact expected edit distance by joint world enumeration, or `None` if
/// the joint world count exceeds `max_worlds`.
pub fn expected_edit_distance(
    r: &UncertainString,
    s: &UncertainString,
    max_worlds: u64,
) -> Option<f64> {
    let rn = r.num_worlds_capped(max_worlds)?;
    let sn = s.num_worlds_capped(max_worlds)?;
    if rn.checked_mul(sn)? > max_worlds {
        return None;
    }
    let s_worlds: Vec<_> = s.worlds().collect();
    let mut acc = 0.0;
    for rw in r.worlds() {
        for sw in &s_worlds {
            acc += rw.prob * sw.prob * edit_distance(&rw.instance, &sw.instance) as f64;
        }
    }
    Some(acc)
}

/// Decides `eed(R, S) ≤ d` with early termination.
///
/// Since every term is non-negative, the partial sum is a growing lower
/// bound: exceed `d` → reject immediately. The processed probability mass
/// also yields an upper bound (`partial + remaining·max_ed`): drop below
/// `d` → accept immediately.
pub fn eed_within(r: &UncertainString, s: &UncertainString, d: f64) -> bool {
    let max_ed = r.len().max(s.len()) as f64;
    if max_ed <= d {
        return true;
    }
    let s_worlds: Vec<_> = s.worlds().collect();
    let mut acc = 0.0;
    let mut processed = 0.0;
    for rw in r.worlds() {
        for sw in &s_worlds {
            let joint = rw.prob * sw.prob;
            acc += joint * edit_distance(&rw.instance, &sw.instance) as f64;
            processed += joint;
            if acc > d {
                return false;
            }
            if acc + (1.0 - processed).max(0.0) * max_ed <= d {
                return true;
            }
        }
    }
    acc <= d
}

/// Inverted index over *overlapping* q-grams of all instances — the \[10\]
/// storage scheme, built here to measure its footprint against the
/// disjoint-segment index (§7.9 point 1).
#[derive(Debug, Clone, Default)]
pub struct OverlappingQGramIndex {
    postings: HashMap<Vec<Symbol>, Vec<(u32, f64)>>,
    bytes: usize,
    q: usize,
}

impl OverlappingQGramIndex {
    /// Creates an index for q-grams of length `q`.
    pub fn new(q: usize) -> Self {
        assert!(q >= 1);
        OverlappingQGramIndex {
            postings: HashMap::new(),
            bytes: 0,
            q,
        }
    }

    /// Indexes all instances of every overlapping window of `s`.
    ///
    /// `max_instances` caps the enumeration per window (a window instance
    /// beyond the cap is dropped — the index is a measurement artefact,
    /// not a correctness-critical structure).
    pub fn insert(&mut self, id: u32, s: &UncertainString, max_instances: usize) {
        if s.len() < self.q {
            return;
        }
        for start in 0..=s.len() - self.q {
            let mut seen = 0usize;
            for world in s.substring_worlds(start, self.q) {
                seen += 1;
                if seen > max_instances {
                    break;
                }
                let entry = self.postings.entry(world.instance);
                if let std::collections::hash_map::Entry::Vacant(_) = entry {
                    self.bytes += self.q + 48;
                }
                entry.or_default().push((id, world.prob));
                self.bytes += std::mem::size_of::<(u32, f64)>();
            }
        }
    }

    /// Estimated heap footprint in bytes.
    pub fn estimated_bytes(&self) -> usize {
        self.bytes
    }

    /// Number of distinct q-gram instances.
    pub fn num_grams(&self) -> usize {
        self.postings.len()
    }

    /// Total number of postings.
    pub fn num_postings(&self) -> usize {
        self.postings.values().map(Vec::len).sum()
    }
}

/// One eed join pair.
#[derive(Debug, Clone, PartialEq)]
pub struct EedPair {
    /// Smaller index.
    pub left: u32,
    /// Larger index.
    pub right: u32,
    /// Exact expected edit distance (when computed without early stop).
    pub eed: Option<f64>,
}

/// The eed self-join: all pairs with `eed ≤ d`.
#[derive(Debug, Clone)]
pub struct EedJoin {
    /// Expected-edit-distance threshold.
    pub d: f64,
    /// World cap per pair; pairs whose joint worlds exceed it are skipped
    /// (counted in the returned statistics).
    pub max_worlds: u64,
}

impl EedJoin {
    /// Creates the join with threshold `d`.
    pub fn new(d: f64) -> Self {
        EedJoin {
            d,
            max_worlds: 1 << 22,
        }
    }

    /// Runs the join. Candidates are the length-compatible pairs
    /// (`||R|−|S|| ≤ ⌈d⌉`, since `eed ≥ | |R|−|S| |`); each is decided by
    /// [`eed_within`].
    pub fn self_join(&self, strings: &[UncertainString]) -> (Vec<EedPair>, EedJoinStats) {
        let mut pairs = Vec::new();
        let mut stats = EedJoinStats::default();
        let len_gap = self.d.ceil() as usize;
        for i in 0..strings.len() {
            for j in i + 1..strings.len() {
                let (r, s) = (&strings[i], &strings[j]);
                if r.len().abs_diff(s.len()) > len_gap {
                    stats.pruned_by_length += 1;
                    continue;
                }
                let joint = r.num_worlds() * s.num_worlds();
                if joint > self.max_worlds as f64 {
                    stats.skipped_over_cap += 1;
                    continue;
                }
                stats.pairs_evaluated += 1;
                if eed_within(r, s, self.d) {
                    pairs.push(EedPair {
                        left: i as u32,
                        right: j as u32,
                        eed: None,
                    });
                }
            }
        }
        (pairs, stats)
    }
}

/// Counters for one eed join run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EedJoinStats {
    /// Pairs eliminated by the length lower bound.
    pub pruned_by_length: u64,
    /// Pairs skipped because their joint world count exceeded the cap.
    pub skipped_over_cap: u64,
    /// Pairs decided by (possibly early-terminated) eed evaluation.
    pub pairs_evaluated: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_model::Alphabet;

    fn dna(text: &str) -> UncertainString {
        UncertainString::parse(text, &Alphabet::dna()).unwrap()
    }

    #[test]
    fn eed_deterministic_pairs_is_plain_ed() {
        let r = dna("ACGT");
        let s = dna("AGGA");
        let eed = expected_edit_distance(&r, &s, 1000).unwrap();
        assert_eq!(eed, 2.0);
    }

    #[test]
    fn eed_weights_worlds() {
        // R = {A:0.8, C:0.2}, S = A → eed = 0.8·0 + 0.2·1 = 0.2.
        let r = dna("{(A,0.8),(C,0.2)}");
        let s = dna("A");
        let eed = expected_edit_distance(&r, &s, 1000).unwrap();
        assert!((eed - 0.2).abs() < 1e-12);
    }

    #[test]
    fn eed_within_agrees_with_exact() {
        let cases = [
            ("A{(C,0.5),(G,0.5)}GT", "ACG{(T,0.4),(A,0.6)}"),
            ("ACGT", "TTTT"),
            ("{(A,0.9),(T,0.1)}CGT", "ACGT"),
        ];
        for (rt, st) in cases {
            let (r, s) = (dna(rt), dna(st));
            let exact = expected_edit_distance(&r, &s, 10_000).unwrap();
            for d in [0.1, 0.5, 1.0, 2.0, 3.9] {
                if (exact - d).abs() < 1e-9 {
                    continue; // knife edge
                }
                assert_eq!(
                    eed_within(&r, &s, d),
                    exact <= d,
                    "{rt} {st} d={d} exact={exact}"
                );
            }
        }
    }

    #[test]
    fn eed_lower_bounded_by_length_gap() {
        let r = dna("ACGTACGT");
        let s = dna("AC");
        let eed = expected_edit_distance(&r, &s, 1000).unwrap();
        assert!(eed >= 6.0);
    }

    #[test]
    fn join_finds_expected_pairs() {
        let strings = vec![
            dna("ACGTAC"),
            dna("ACGTAC"),
            dna("AC{(G,0.5),(T,0.5)}TAC"),
            dna("TTTTTT"),
        ];
        let (pairs, stats) = EedJoin::new(1.0).self_join(&strings);
        let ids: Vec<_> = pairs.iter().map(|p| (p.left, p.right)).collect();
        assert!(ids.contains(&(0, 1)));
        assert!(ids.contains(&(0, 2)));
        assert!(ids.contains(&(1, 2)));
        assert!(!ids.iter().any(|&(a, b)| a == 3 || b == 3));
        assert!(stats.pairs_evaluated >= 3);
    }

    #[test]
    fn overlapping_index_is_bigger_than_disjoint() {
        // The same strings indexed both ways: overlapping q-grams produce
        // strictly more postings (the §7.9 storage argument — asymptotic,
        // so the corpus must be large enough that posting volume, not
        // per-distinct-instance fixed costs such as the segment
        // interner's lookup tables, dominates both estimates).
        let base = [
            dna("ACGTAC{(G,0.5),(T,0.5)}TAACGTACGTAC"),
            dna("TTACG{(C,0.3),(A,0.7)}ACGGTTACACGT"),
            dna("GGCATCAT{(A,0.5),(T,0.5)}CCGTAGGCAT"),
            dna("CATTACGGA{(C,0.4),(G,0.6)}TTAACGGTC"),
        ];
        let strings: Vec<_> = (0..24).map(|i| base[i % base.len()].clone()).collect();
        let mut overlapping = OverlappingQGramIndex::new(3);
        for (i, s) in strings.iter().enumerate() {
            overlapping.insert(i as u32, s, 10_000);
        }
        let config = usj_core::JoinConfig::new(2, 0.1);
        let mut disjoint = usj_core::SegmentIndex::new();
        for (i, s) in strings.iter().enumerate() {
            disjoint.insert(i as u32, s, &config);
        }
        assert!(
            overlapping.estimated_bytes() > disjoint.estimated_bytes(),
            "overlapping {} vs disjoint {}",
            overlapping.estimated_bytes(),
            disjoint.estimated_bytes()
        );
        assert!(overlapping.num_postings() > 0);
        assert!(overlapping.num_grams() > 0);
    }
}
