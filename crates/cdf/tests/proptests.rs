//! Property tests for Theorem 4's CDF bounds.

use proptest::prelude::*;
use usj_cdf::{cdf_bounds, CdfDecision, CdfFilter};
use usj_model::{Position, UncertainString};

fn arb_position(sigma: u8, max_alts: usize) -> impl Strategy<Value = Position> {
    prop::collection::vec((0..sigma, 1u32..=100), 1..=max_alts).prop_map(|raw| {
        let mut seen = std::collections::BTreeMap::new();
        for (s, w) in raw {
            *seen.entry(s).or_insert(0u32) += w;
        }
        let total: u32 = seen.values().sum();
        let alts: Vec<(u8, f64)> = seen
            .into_iter()
            .map(|(s, w)| (s, w as f64 / total as f64))
            .collect();
        Position::uncertain(0, alts).unwrap()
    })
}

fn arb_string(sigma: u8, len: std::ops::Range<usize>) -> impl Strategy<Value = UncertainString> {
    prop::collection::vec(arb_position(sigma, 2), len).prop_map(UncertainString::new)
}

fn exact_cdf(r: &UncertainString, s: &UncertainString, k: usize) -> Vec<f64> {
    let mut cdf = vec![0.0; k + 1];
    for rw in r.worlds() {
        for sw in s.worlds() {
            let d = usj_editdist::edit_distance(&rw.instance, &sw.instance);
            let p = rw.prob * sw.prob;
            for (j, slot) in cdf.iter_mut().enumerate() {
                if d <= j {
                    *slot += p;
                }
            }
        }
    }
    cdf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Theorem 4: at every threshold j, L[j] ≤ Pr(ed ≤ j) ≤ U[j].
    #[test]
    fn bounds_sandwich_exact(
        r in arb_string(3, 0..8),
        s in arb_string(3, 0..8),
        k in 0usize..4,
    ) {
        let b = cdf_bounds(&r, &s, k);
        if r.len().abs_diff(s.len()) > k {
            // Short-circuit case: bounds are 0 and the exact prob is 0 too.
            prop_assert_eq!(b.at_k(), (0.0, 0.0));
            return Ok(());
        }
        let exact = exact_cdf(&r, &s, k);
        for (j, &e) in exact.iter().enumerate() {
            prop_assert!(b.lower[j] <= e + 1e-9, "L[{j}]={} > exact={}", b.lower[j], e);
            prop_assert!(b.upper[j] >= e - 1e-9, "U[{j}]={} < exact={}", b.upper[j], e);
        }
    }

    /// The filter never prunes a truly similar pair and never accepts a
    /// truly dissimilar one.
    #[test]
    fn filter_decisions_sound(
        r in arb_string(3, 1..8),
        s in arb_string(3, 1..8),
        k in 0usize..3,
        tau_pct in 1u32..90,
    ) {
        let tau = tau_pct as f64 / 100.0;
        let filter = CdfFilter::new(k, tau);
        let out = filter.evaluate(&r, &s);
        let exact = if r.len().abs_diff(s.len()) > k { 0.0 } else { *exact_cdf(&r, &s, k).last().unwrap() };
        match out.decision {
            CdfDecision::Reject => prop_assert!(exact <= tau + 1e-9, "rejected but exact={exact} > tau={tau}"),
            CdfDecision::Accept => prop_assert!(exact > tau - 1e-9, "accepted but exact={exact} <= tau={tau}"),
            CdfDecision::Undecided => {}
        }
    }

    /// Bounds are valid probabilities and monotone in j.
    #[test]
    fn bounds_shape(
        r in arb_string(4, 0..8),
        s in arb_string(4, 0..8),
        k in 0usize..4,
    ) {
        let b = cdf_bounds(&r, &s, k);
        for j in 0..=k {
            prop_assert!((0.0..=1.0).contains(&b.lower[j]));
            prop_assert!((0.0..=1.0).contains(&b.upper[j]));
            prop_assert!(b.lower[j] <= b.upper[j] + 1e-12);
            if j > 0 && r.len().abs_diff(s.len()) <= k {
                prop_assert!(b.lower[j] + 1e-12 >= b.lower[j - 1]);
                prop_assert!(b.upper[j] + 1e-12 >= b.upper[j - 1]);
            }
        }
    }

    /// Symmetry: swapping R and S leaves the bounds unchanged (edit
    /// distance is symmetric and the recurrences treat rows/columns
    /// symmetrically).
    #[test]
    fn bounds_symmetric(
        r in arb_string(3, 1..7),
        s in arb_string(3, 1..7),
        k in 0usize..3,
    ) {
        let b1 = cdf_bounds(&r, &s, k);
        let b2 = cdf_bounds(&s, &r, k);
        for j in 0..=k {
            prop_assert!((b1.lower[j] - b2.lower[j]).abs() < 1e-9);
            prop_assert!((b1.upper[j] - b2.upper[j]).abs() < 1e-9);
        }
    }
}
