//! CDF-bound filtering (paper §6.1, Theorem 4).
//!
//! A banded dynamic program over the cells `(x, y)` of the `|R| × |S|`
//! edit matrix. Each in-band cell (`|x − y| ≤ k`) carries `k+1` pairs
//! `(L[j], U[j])` bounding the cumulative distribution of the (random)
//! edit distance between the prefixes:
//!
//! ```text
//! L[j] ≤ Pr(ed(R[1..x], S[1..y]) ≤ j) ≤ U[j]
//! ```
//!
//! With `p1 = Σ_c Pr(R[x]=c)·Pr(S[y]=c)` (the probability the two current
//! characters match) and `p2 = 1 − p1`, Theorem 4's recurrences are
//!
//! ```text
//! L[j] = max(p1·L_D1[j], p2·L_(argmin Dᵢ)[j−1])
//! U[j] = min(1, p1·U_D1[j] + p2·U_D1[j−1] + U_D2[j−1] + U_D3[j−1])
//! ```
//!
//! where `D1/D2/D3` are the diagonal/upper/left neighbours and
//! `argmin Dᵢ` selects the stochastically-smallest neighbour distribution
//! (greatest `L[0]`, ties broken by `L[1]`, …). Out-of-band neighbours
//! contribute zero; `j−1 < 0` reads as zero.
//!
//! At the final cell the filter **accepts** the pair outright when
//! `L[k] > τ` (it is provably similar — no verification needed) and
//! **rejects** it when `U[k] ≤ τ`; otherwise the pair proceeds to exact
//! verification.

#![warn(missing_docs)]

use usj_model::{Prob, UncertainString};

/// Lower/upper bounds on `Pr(ed(R,S) ≤ j)` for `j = 0..=k` at the final
/// DP cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CdfBounds {
    /// `lower[j] ≤ Pr(ed ≤ j)`.
    pub lower: Vec<Prob>,
    /// `upper[j] ≥ Pr(ed ≤ j)`.
    pub upper: Vec<Prob>,
}

impl CdfBounds {
    /// The bound pair at the full threshold `k`.
    ///
    /// [`cdf_bounds`] always produces `k + 1 ≥ 1` entries, but the fields
    /// are public; hand-built empty bounds yield the vacuous `(0.0, 1.0)`
    /// (which can never accept or reject) instead of panicking.
    pub fn at_k(&self) -> (Prob, Prob) {
        match (self.lower.last(), self.upper.last()) {
            (Some(&l), Some(&u)) => (l, u),
            _ => (0.0, 1.0),
        }
    }
}

/// Decision of the CDF filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CdfDecision {
    /// `L[k] > τ`: provably similar, emit without verification.
    Accept,
    /// `U[k] ≤ τ`: provably dissimilar, prune.
    Reject,
    /// Bounds straddle τ: exact verification required.
    Undecided,
}

/// Outcome of the CDF filter on one pair.
#[derive(Debug, Clone, PartialEq)]
pub struct CdfOutcome {
    /// Bounds at the final cell.
    pub bounds: CdfBounds,
    /// The decision against τ.
    pub decision: CdfDecision,
}

/// Computes Theorem 4's CDF bounds for a pair of uncertain strings.
///
/// Cost: `O(min(|R|,|S|) · (k+1) · max(k, γ))` — the band has `O(k)` cells
/// per row, each carrying `k+1` bound pairs, and `p1` costs `O(γ)` per
/// cell.
pub fn cdf_bounds(r: &UncertainString, s: &UncertainString, k: usize) -> CdfBounds {
    let (n, m) = (r.len(), s.len());
    let width = k + 1;
    if n.abs_diff(m) > k {
        return CdfBounds {
            lower: vec![0.0; width],
            upper: vec![0.0; width],
        };
    }

    // Four flat planes of contiguous (k+1)-wide rows over y = 0..=m —
    // L and U kept separate so each cell update is a dense row scan the
    // SIMD row kernel can vectorise. Out-of-band cells read as zero.
    let cells = m + 1;
    let mut prev_l = vec![0.0; cells * width]; // row x−1
    let mut prev_u = vec![0.0; cells * width];
    let mut cur_l = vec![0.0; cells * width];
    let mut cur_u = vec![0.0; cells * width];

    // Row 0: cell (0, y) has L[j] = U[j] = [j ≥ y] for y ≤ k.
    for y in 0..=m.min(k) {
        for j in 0..width {
            let v = if j >= y { 1.0 } else { 0.0 };
            prev_l[y * width + j] = v;
            prev_u[y * width + j] = v;
        }
    }

    for x in 1..=n {
        let lo = x.saturating_sub(k);
        let hi = (x + k).min(m);
        // Band-local zeroing: every row in lo..=hi is overwritten below,
        // and only the fringe rows lo−1 / hi+1 can still be read as
        // out-of-band neighbours (by this x as D2, or by x+1 whose band
        // grows at most one row each way) — so zeroing just those two
        // rows replaces zeroing the whole plane.
        let fringes = [lo.checked_sub(1), (hi < m).then_some(hi + 1)];
        for f in fringes.into_iter().flatten() {
            cur_l[f * width..(f + 1) * width].fill(0.0);
            cur_u[f * width..(f + 1) * width].fill(0.0);
        }
        for y in lo..=hi {
            if y == 0 {
                // Cell (x, 0): distance is exactly x.
                for j in 0..width {
                    let v = if j >= x { 1.0 } else { 0.0 };
                    cur_l[j] = v;
                    cur_u[j] = v;
                }
                continue;
            }
            let p1 = r.position(x - 1).match_prob(s.position(y - 1));
            // Invariant (debug builds): a match probability outside
            // [0, 1] means an input pdf upstream was not normalized —
            // every bound this DP produces from it would be garbage.
            debug_assert!(
                (0.0..=1.0 + 1e-9).contains(&p1),
                "match probability {p1} at cell ({x}, {y}) lies outside [0, 1]"
            );
            let p2 = 1.0 - p1;

            // Neighbour rows: D1 = (x−1, y−1), D2 = (x, y−1),
            // D3 = (x−1, y). D2 lives in the head of the cur plane
            // (row y−1 < y), the output in its tail — split_at_mut
            // proves the disjointness.
            let l_d1 = &prev_l[(y - 1) * width..y * width];
            let l_d3 = &prev_l[y * width..(y + 1) * width];
            let (head_l, tail_l) = cur_l.split_at_mut(y * width);
            let l_d2 = &head_l[(y - 1) * width..];
            let out_l = &mut tail_l[..width];

            // `argmin Dᵢ`: stochastically smallest distance = greatest L
            // vector lexicographically.
            let mut best = 1usize; // D1 by default
            {
                let l = |idx: usize, j: usize| -> f64 {
                    match idx {
                        1 => l_d1[j],
                        2 => l_d2[j],
                        _ => l_d3[j],
                    }
                };
                for cand in [2usize, 3] {
                    for j in 0..width {
                        let a = l(cand, j);
                        let b = l(best, j);
                        if a > b + 1e-15 {
                            best = cand;
                            break;
                        }
                        if b > a + 1e-15 {
                            break;
                        }
                    }
                }
            }
            let l_best = match best {
                1 => l_d1,
                2 => &l_d2[..width],
                _ => l_d3,
            };

            let u_d1 = &prev_u[(y - 1) * width..y * width];
            let u_d3 = &prev_u[y * width..(y + 1) * width];
            let (head_u, tail_u) = cur_u.split_at_mut(y * width);
            let u_d2 = &head_u[(y - 1) * width..y * width];
            let out_u = &mut tail_u[..width];

            usj_simd::cdf_row_update(p1, p2, l_d1, l_best, u_d1, u_d2, u_d3, out_l, out_u);
        }
        std::mem::swap(&mut prev_l, &mut cur_l);
        std::mem::swap(&mut prev_u, &mut cur_u);
    }

    let lower = prev_l[m * width..(m + 1) * width].to_vec();
    let upper = prev_u[m * width..(m + 1) * width].to_vec();
    let bounds = CdfBounds { lower, upper };
    debug_check_bounds(&bounds, k);
    bounds
}

/// Debug-build well-formedness check on a DP result: `k + 1` entries per
/// side, every value a probability, `L[j] ≤ U[j]`, and both sides
/// monotone non-decreasing in `j` (a CDF can only grow with the
/// threshold). Compiles to nothing in release builds.
#[cfg(debug_assertions)]
fn debug_check_bounds(b: &CdfBounds, k: usize) {
    const EPS: f64 = 1e-9;
    debug_assert_eq!(b.lower.len(), k + 1, "lower bounds must carry k+1 entries");
    debug_assert_eq!(b.upper.len(), k + 1, "upper bounds must carry k+1 entries");
    let (mut prev_l, mut prev_u) = (0.0f64, 0.0f64);
    for j in 0..=k {
        let (l, u) = (b.lower[j], b.upper[j]);
        debug_assert!(
            l.is_finite() && (-EPS..=1.0 + EPS).contains(&l),
            "L[{j}] = {l} lies outside [0, 1]"
        );
        debug_assert!(
            u.is_finite() && (-EPS..=1.0 + EPS).contains(&u),
            "U[{j}] = {u} lies outside [0, 1]"
        );
        debug_assert!(l <= u + EPS, "L[{j}] = {l} exceeds U[{j}] = {u}");
        debug_assert!(l + EPS >= prev_l, "lower CDF bound not monotone at j = {j}");
        debug_assert!(u + EPS >= prev_u, "upper CDF bound not monotone at j = {j}");
        prev_l = l;
        prev_u = u;
    }
}

#[cfg(not(debug_assertions))]
#[inline(always)]
fn debug_check_bounds(_: &CdfBounds, _: usize) {}

/// The CDF filter: computes bounds and compares them against τ.
#[derive(Debug, Clone)]
pub struct CdfFilter {
    k: usize,
    tau: Prob,
}

impl CdfFilter {
    /// Creates the filter for edit threshold `k` and probability
    /// threshold `τ`.
    pub fn new(k: usize, tau: Prob) -> Self {
        assert!((0.0..=1.0).contains(&tau), "tau must lie in [0, 1]");
        CdfFilter { k, tau }
    }

    /// Edit threshold `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Probability threshold `τ`.
    pub fn tau(&self) -> Prob {
        self.tau
    }

    /// Evaluates a pair.
    pub fn evaluate(&self, r: &UncertainString, s: &UncertainString) -> CdfOutcome {
        let bounds = cdf_bounds(r, s, self.k);
        let (l, u) = bounds.at_k();
        let decision = if u <= self.tau {
            CdfDecision::Reject
        } else if l > self.tau {
            CdfDecision::Accept
        } else {
            CdfDecision::Undecided
        };
        CdfOutcome { bounds, decision }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_model::Alphabet;

    fn dna(text: &str) -> UncertainString {
        UncertainString::parse(text, &Alphabet::dna()).unwrap()
    }

    fn exact(r: &UncertainString, s: &UncertainString, k: usize) -> f64 {
        let mut total = 0.0;
        for rw in r.worlds() {
            for sw in s.worlds() {
                if usj_editdist::within_k(&rw.instance, &sw.instance, k) {
                    total += rw.prob * sw.prob;
                }
            }
        }
        total
    }

    #[test]
    fn deterministic_equal_strings() {
        let r = dna("ACGT");
        let b = cdf_bounds(&r, &r, 2);
        // ed = 0 surely: every CDF value is 1.
        for j in 0..=2 {
            assert!((b.lower[j] - 1.0).abs() < 1e-12, "L[{j}]={}", b.lower[j]);
            assert!((b.upper[j] - 1.0).abs() < 1e-12, "U[{j}]={}", b.upper[j]);
        }
    }

    #[test]
    fn deterministic_distance_exact() {
        // ed(kitten-ish, DNA) pairs: check the bounds sandwich the 0/1
        // truth for deterministic inputs.
        let pairs = [
            ("ACGT", "AGGT", 1usize),
            ("ACGT", "TTTT", 3),
            ("AC", "ACGT", 2),
        ];
        for (rt, st, d) in pairs {
            let (r, s) = (dna(rt), dna(st));
            for k in 0..=4usize {
                let b = cdf_bounds(&r, &s, k);
                let truth = if d <= k { 1.0 } else { 0.0 };
                let (l, u) = b.at_k();
                assert!(
                    l <= truth + 1e-9 && truth <= u + 1e-9,
                    "{rt} {st} k={k}: L={l} U={u} truth={truth}"
                );
            }
        }
    }

    #[test]
    fn bounds_sandwich_exact_probability() {
        let cases = [
            ("A{(C,0.7),(G,0.3)}GT", "ACGT"),
            ("{(A,0.5),(T,0.5)}CGT", "TC{(G,0.9),(T,0.1)}T"),
            ("AC{(G,0.2),(T,0.8)}", "ACG"),
            ("{(A,0.4),(C,0.6)}{(A,0.4),(C,0.6)}A", "CCA"),
        ];
        for (rt, st) in cases {
            let (r, s) = (dna(rt), dna(st));
            for k in 0..=2usize {
                let b = cdf_bounds(&r, &s, k);
                let e = exact(&r, &s, k);
                let (l, u) = b.at_k();
                assert!(l <= e + 1e-9, "{rt} {st} k={k}: L={l} > exact={e}");
                assert!(u >= e - 1e-9, "{rt} {st} k={k}: U={u} < exact={e}");
            }
        }
    }

    #[test]
    fn bounds_monotone_in_j() {
        let r = dna("A{(C,0.5),(G,0.5)}GTAC");
        let s = dna("AGG{(T,0.6),(A,0.4)}AC");
        let b = cdf_bounds(&r, &s, 3);
        for j in 1..b.lower.len() {
            assert!(
                b.lower[j] + 1e-12 >= b.lower[j - 1],
                "L not monotone at {j}"
            );
            assert!(
                b.upper[j] + 1e-12 >= b.upper[j - 1],
                "U not monotone at {j}"
            );
        }
    }

    #[test]
    fn length_gap_rejects() {
        let f = CdfFilter::new(1, 0.1);
        let out = f.evaluate(&dna("ACGTACGT"), &dna("AC"));
        assert_eq!(out.decision, CdfDecision::Reject);
        assert_eq!(out.bounds.at_k(), (0.0, 0.0));
    }

    #[test]
    fn empty_strings() {
        let e = UncertainString::empty();
        let b = cdf_bounds(&e, &e, 1);
        assert_eq!(b.at_k(), (1.0, 1.0));
        let b = cdf_bounds(&e, &dna("AC"), 2);
        // ed = 2 surely.
        assert_eq!(b.lower[1], 0.0);
        assert_eq!(b.upper[1], 0.0);
        assert_eq!(b.at_k(), (1.0, 1.0));
    }

    #[test]
    fn filter_decisions() {
        // Certainly-similar pair accepted without verification.
        let f = CdfFilter::new(1, 0.5);
        assert_eq!(
            f.evaluate(&dna("ACGT"), &dna("ACGT")).decision,
            CdfDecision::Accept
        );
        // Certainly-dissimilar pair rejected.
        assert_eq!(
            f.evaluate(&dna("AAAA"), &dna("TTTT")).decision,
            CdfDecision::Reject
        );
    }

    #[test]
    #[should_panic(expected = "tau must lie in [0, 1]")]
    fn invalid_tau_panics() {
        CdfFilter::new(1, -0.5);
    }

    #[test]
    fn hand_built_empty_bounds_are_vacuous() {
        // The fields are public, so degenerate bounds must not panic; the
        // vacuous pair can neither accept nor reject.
        let b = CdfBounds {
            lower: Vec::new(),
            upper: Vec::new(),
        };
        assert_eq!(b.at_k(), (0.0, 1.0));
    }

    #[test]
    fn k_zero_bounds_and_decisions() {
        // k = 0 is the smallest legal threshold: width-1 bound vectors,
        // never empty, and the filter decides exact-match probability.
        let b = cdf_bounds(&dna("ACGT"), &dna("ACGT"), 0);
        assert_eq!(b.lower.len(), 1);
        assert_eq!(b.at_k(), (1.0, 1.0));
        let f = CdfFilter::new(0, 0.5);
        assert_eq!(
            f.evaluate(&dna("ACGT"), &dna("ACGT")).decision,
            CdfDecision::Accept
        );
        assert_eq!(
            f.evaluate(&dna("ACGT"), &dna("ACGA")).decision,
            CdfDecision::Reject
        );
        // Uncertain match probability sandwiched at k = 0.
        let r = dna("AC{(G,0.5),(T,0.5)}T");
        let e = exact(&r, &dna("ACGT"), 0);
        let (l, u) = cdf_bounds(&r, &dna("ACGT"), 0).at_k();
        assert!(l <= e + 1e-9 && e <= u + 1e-9);
    }

    #[test]
    fn k_zero_empty_probe_edges() {
        let e = UncertainString::empty();
        // Two empty strings at k = 0: surely identical.
        assert_eq!(cdf_bounds(&e, &e, 0).at_k(), (1.0, 1.0));
        let f = CdfFilter::new(0, 0.3);
        assert_eq!(f.evaluate(&e, &e).decision, CdfDecision::Accept);
        // Empty vs non-empty at k = 0: length gap, surely rejected.
        assert_eq!(cdf_bounds(&e, &dna("A"), 0).at_k(), (0.0, 0.0));
        assert_eq!(f.evaluate(&e, &dna("A")).decision, CdfDecision::Reject);
        // Empty vs length-1 at k = 1: one deletion, surely similar.
        assert_eq!(cdf_bounds(&e, &dna("A"), 1).at_k(), (1.0, 1.0));
    }

    // The debug-only well-formedness check runs on every cdf_bounds call
    // in debug builds; these feed it corrupted bounds directly.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "exceeds U[0]")]
    fn debug_check_catches_crossed_bounds() {
        debug_check_bounds(
            &CdfBounds {
                lower: vec![0.5],
                upper: vec![0.4],
            },
            0,
        );
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "upper CDF bound not monotone")]
    fn debug_check_catches_non_monotone_upper() {
        debug_check_bounds(
            &CdfBounds {
                lower: vec![0.1, 0.2],
                upper: vec![0.9, 0.5],
            },
            1,
        );
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lies outside [0, 1]")]
    fn debug_check_catches_out_of_range_bound() {
        debug_check_bounds(
            &CdfBounds {
                lower: vec![-0.2],
                upper: vec![1.4],
            },
            0,
        );
    }
}
