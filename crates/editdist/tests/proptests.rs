//! Property tests for the deterministic edit-distance substrate.

use proptest::prelude::*;
use usj_editdist::{
    edit_distance, edit_distance_bounded, frequency_distance, myers_distance, within_k,
    within_k_auto, PrefixDp,
};

fn arb_str(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..4, 0..=max_len)
}

proptest! {
    #[test]
    fn metric_properties(a in arb_str(12), b in arb_str(12), c in arb_str(12)) {
        let ab = edit_distance(&a, &b);
        let ba = edit_distance(&b, &a);
        prop_assert_eq!(ab, ba); // symmetry
        prop_assert_eq!(edit_distance(&a, &a), 0); // identity
        let ac = edit_distance(&a, &c);
        let cb = edit_distance(&c, &b);
        prop_assert!(ab <= ac + cb, "triangle inequality violated"); // triangle
    }

    #[test]
    fn length_difference_lower_bound(a in arb_str(12), b in arb_str(12)) {
        prop_assert!(edit_distance(&a, &b) >= a.len().abs_diff(b.len()));
        prop_assert!(edit_distance(&a, &b) <= a.len().max(b.len()));
    }

    #[test]
    fn bounded_agrees_with_full(a in arb_str(12), b in arb_str(12), k in 0usize..8) {
        let d = edit_distance(&a, &b);
        prop_assert_eq!(edit_distance_bounded(&a, &b, k), (d <= k).then_some(d));
        prop_assert_eq!(within_k(&a, &b, k), d <= k);
    }

    #[test]
    fn prefix_dp_agrees_with_full(a in arb_str(10), b in arb_str(10), k in 0usize..6) {
        let d = edit_distance(&a, &b);
        prop_assert_eq!(PrefixDp::run(&b, &a, k), (d <= k).then_some(d));
    }

    #[test]
    fn myers_equals_dp(a in prop::collection::vec(0u8..5, 0..150), b in prop::collection::vec(0u8..5, 0..150)) {
        prop_assert_eq!(myers_distance(&a, &b), edit_distance(&a, &b));
    }

    #[test]
    fn within_k_auto_equals_dp(a in arb_str(20), b in arb_str(20), k in 0usize..12) {
        prop_assert_eq!(within_k_auto(&a, &b, k), edit_distance(&a, &b) <= k);
    }

    #[test]
    fn frequency_distance_lower_bounds(a in arb_str(12), b in arb_str(12)) {
        let fd = frequency_distance(&a, &b, 4) as usize;
        prop_assert!(fd <= edit_distance(&a, &b));
    }

    #[test]
    fn single_substitution_distance_one(a in arb_str(10), idx in 0usize..10, sym in 0u8..4) {
        if idx < a.len() && a[idx] != sym {
            let mut b = a.clone();
            b[idx] = sym;
            prop_assert_eq!(edit_distance(&a, &b), 1);
        }
    }

    #[test]
    fn single_deletion_distance_one(a in arb_str(10), idx in 0usize..10) {
        if idx < a.len() {
            let mut b = a.clone();
            b.remove(idx);
            prop_assert_eq!(edit_distance(&a, &b), 1);
        }
    }
}
