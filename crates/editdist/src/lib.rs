//! Deterministic edit-distance substrate.
//!
//! Everything in this crate operates on plain symbol slices (`&[u8]`); the
//! uncertain-string algorithms build on these primitives by applying them to
//! possible-world instances.
//!
//! Provided:
//!
//! * [`levenshtein::edit_distance`] — full `O(|r|·|s|)` DP;
//! * [`levenshtein::edit_distance_bounded`] — banded (Ukkonen) DP in
//!   `O(k·min(|r|,|s|))` that reports `None` when the distance exceeds `k`;
//! * [`levenshtein::within_k`] — boolean form with length-difference
//!   fast path;
//! * [`prefix::PrefixDp`] — incremental row-at-a-time DP with the paper's
//!   *prefix-pruning* early termination (§6.2), used by the naive verifier
//!   and as the reference for trie active sets;
//! * [`freq`] — frequency vectors and frequency distance (§2.2), a lower
//!   bound on edit distance.

#![warn(missing_docs)]

pub mod freq;
pub mod levenshtein;
pub mod myers;
pub mod prefix;

pub use freq::{frequency_distance, FreqVector};
pub use levenshtein::{edit_distance, edit_distance_bounded, within_k};
pub use myers::{myers_distance, within_k_auto};
pub use prefix::PrefixDp;
