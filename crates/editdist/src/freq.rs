//! Frequency vectors and frequency distance (paper §2.2).
//!
//! The frequency vector `f(s)` counts occurrences of each alphabet symbol
//! in `s`. The *frequency distance*
//!
//! ```text
//! fd(r, s) = max(pD, nD)
//! pD = Σ_{f(r)_i > f(s)_i} f(r)_i − f(s)_i
//! nD = Σ_{f(r)_i < f(s)_i} f(s)_i − f(r)_i
//! ```
//!
//! lower-bounds the edit distance (`fd(r,s) ≤ ed(r,s)`, Kahveci & Singh):
//! every edit operation changes at most one positive and one negative
//! surplus unit. Strings with `fd > k` can therefore be pruned.

/// Dense per-symbol occurrence counts for a deterministic string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FreqVector {
    counts: Vec<u32>,
}

impl FreqVector {
    /// Counts symbol occurrences of `s` over an alphabet of size `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if a symbol id is `≥ sigma`.
    pub fn new(s: &[u8], sigma: usize) -> Self {
        let mut counts = vec![0u32; sigma];
        for &c in s {
            counts[c as usize] += 1;
        }
        FreqVector { counts }
    }

    /// Alphabet size this vector was built for.
    pub fn sigma(&self) -> usize {
        self.counts.len()
    }

    /// Occurrence count of symbol `c`.
    #[inline]
    pub fn count(&self, c: u8) -> u32 {
        self.counts[c as usize]
    }

    /// Raw counts slice.
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Total length of the underlying string.
    pub fn len(&self) -> u32 {
        self.counts.iter().sum()
    }

    /// `true` when built from the empty string.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Frequency distance `fd = max(pD, nD)` to another vector.
    ///
    /// # Panics
    ///
    /// Panics if the vectors were built for different alphabet sizes.
    pub fn distance(&self, other: &FreqVector) -> u32 {
        assert_eq!(self.sigma(), other.sigma(), "alphabet size mismatch");
        let (mut pd, mut nd) = (0u32, 0u32);
        for (&a, &b) in self.counts.iter().zip(&other.counts) {
            if a > b {
                pd += a - b;
            } else {
                nd += b - a;
            }
        }
        pd.max(nd)
    }
}

/// Frequency distance between two deterministic strings over an alphabet of
/// size `sigma`.
///
/// ```
/// use usj_editdist::{frequency_distance, edit_distance};
/// let (r, s): (&[u8], &[u8]) = (&[0, 1, 1, 2], &[1, 2, 2]);
/// let fd = frequency_distance(r, s, 3);
/// assert!(fd as usize <= edit_distance(r, s));
/// ```
pub fn frequency_distance(r: &[u8], s: &[u8], sigma: usize) -> u32 {
    FreqVector::new(r, sigma).distance(&FreqVector::new(s, sigma))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levenshtein::edit_distance;

    #[test]
    fn counts_and_len() {
        let v = FreqVector::new(&[0, 1, 1, 3], 4);
        assert_eq!(v.counts(), &[1, 2, 0, 1]);
        assert_eq!(v.count(1), 2);
        assert_eq!(v.len(), 4);
        assert!(!v.is_empty());
        assert!(FreqVector::new(&[], 4).is_empty());
    }

    #[test]
    fn distance_examples() {
        // r = aabb, s = abcc: pD = (2-1)_a + (2-1)_b = 2, nD = 2 → fd = 2
        assert_eq!(frequency_distance(&[0, 0, 1, 1], &[0, 1, 2, 2], 3), 2);
        // identical strings
        assert_eq!(frequency_distance(&[0, 1], &[1, 0], 2), 0);
        // disjoint alphabets
        assert_eq!(frequency_distance(&[0, 0], &[1, 1], 2), 2);
        // different lengths
        assert_eq!(frequency_distance(&[0, 0, 0], &[0], 2), 2);
    }

    #[test]
    fn symmetric() {
        let a = [0u8, 2, 2, 1];
        let b = [1u8, 1, 0];
        assert_eq!(frequency_distance(&a, &b, 3), frequency_distance(&b, &a, 3));
    }

    #[test]
    #[should_panic(expected = "alphabet size mismatch")]
    fn mismatched_sigma_panics() {
        FreqVector::new(&[0], 2).distance(&FreqVector::new(&[0], 3));
    }

    /// fd lower-bounds ed on all short ternary strings (exhaustive).
    #[test]
    fn lower_bounds_edit_distance_exhaustive() {
        fn all(len: usize) -> Vec<Vec<u8>> {
            (0..=len)
                .flat_map(|l| {
                    (0..(3usize.pow(l as u32))).map(move |mut x| {
                        (0..l)
                            .map(|_| {
                                let d = (x % 3) as u8;
                                x /= 3;
                                d
                            })
                            .collect()
                    })
                })
                .collect()
        }
        for a in all(3) {
            for b in all(3) {
                let fd = frequency_distance(&a, &b, 3) as usize;
                let ed = edit_distance(&a, &b);
                assert!(fd <= ed, "a={a:?} b={b:?} fd={fd} ed={ed}");
            }
        }
    }
}
