//! Incremental prefix DP with prefix-pruning (paper §6.2).
//!
//! [`PrefixDp`] computes edit distances between a *fixed* target string and
//! a probe string that is revealed one character at a time — exactly the
//! access pattern of a depth-first walk over a trie of probe instances. Each
//! [`PrefixDp::push`] appends one probe character and computes the next DP
//! row; [`PrefixDp::pop`] backtracks. *Prefix-pruning* is the observation
//! that once every cell of a row exceeds the threshold `k`, no extension of
//! the probe prefix can come back within `k`, so the subtree can be skipped.

const INF: usize = usize::MAX / 2;

/// Row-stack DP between a fixed `target` and an incrementally-built probe.
///
/// ```
/// use usj_editdist::PrefixDp;
///
/// let mut dp = PrefixDp::new(b"abc", 1);
/// assert!(dp.push(b'a'));          // probe = "a"
/// assert!(dp.push(b'x'));          // probe = "ax"
/// assert_eq!(dp.distance(), None); // ed("ax", "abc") = 2 > 1
/// dp.pop();
/// assert!(dp.push(b'b'));          // probe = "ab"
/// assert!(dp.push(b'c'));          // probe = "abc"
/// assert_eq!(dp.distance(), Some(0));
/// ```
#[derive(Debug, Clone)]
pub struct PrefixDp {
    target: Vec<u8>,
    k: usize,
    /// Flattened row stack; each row has `target.len() + 1` cells.
    rows: Vec<usize>,
    /// Number of pushed probe characters (= number of rows minus one).
    depth: usize,
}

impl PrefixDp {
    /// Creates the DP for `target` with edit threshold `k`. The initial row
    /// corresponds to the empty probe prefix.
    pub fn new(target: &[u8], k: usize) -> Self {
        let width = target.len() + 1;
        let mut rows = Vec::with_capacity(width * (target.len() + k + 2));
        rows.extend(0..width);
        PrefixDp {
            target: target.to_vec(),
            k,
            rows,
            depth: 0,
        }
    }

    /// The fixed target string.
    pub fn target(&self) -> &[u8] {
        &self.target
    }

    /// The edit threshold `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of probe characters currently pushed.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Appends probe character `c`, computing the next row.
    ///
    /// Returns `true` when the new row still has a cell `≤ k` (the probe
    /// prefix remains *viable*); returns `false` when every cell exceeds
    /// `k`, i.e. prefix-pruning applies. The row is pushed either way so
    /// that [`PrefixDp::pop`] stays symmetric.
    pub fn push(&mut self, c: u8) -> bool {
        let width = self.target.len() + 1;
        let prev_start = self.rows.len() - width;
        let i1 = self.depth + 1;
        // Band: only cells with |i1 - j| <= k can be <= k.
        let lo = i1.saturating_sub(self.k);
        let hi = (i1 + self.k).min(self.target.len());
        let mut min = INF;
        self.rows.reserve(width);
        for j in 0..width {
            let val = if j < lo || j > hi {
                INF
            } else if j == 0 {
                i1
            } else {
                let diag = self.rows[prev_start + j - 1];
                let up = self.rows[prev_start + j];
                // `left` reads the freshly pushed cell of the current row.
                let left = self.rows[prev_start + width + j - 1];
                let cost = usize::from(self.target[j - 1] != c);
                (diag + cost).min(up + 1).min(left + 1)
            };
            min = min.min(val);
            self.rows.push(val);
        }
        self.depth += 1;
        min <= self.k
    }

    /// Removes the most recently pushed probe character.
    ///
    /// # Panics
    ///
    /// Panics when no character has been pushed.
    pub fn pop(&mut self) {
        assert!(self.depth > 0, "pop on empty PrefixDp");
        let width = self.target.len() + 1;
        self.rows.truncate(self.rows.len() - width);
        self.depth -= 1;
    }

    /// Edit distance between the current probe prefix and the *whole*
    /// target, if it is `≤ k`.
    pub fn distance(&self) -> Option<usize> {
        let d = *self.rows.last().expect("rows are never empty");
        (d <= self.k).then_some(d)
    }

    /// Minimum cell value of the current row — a lower bound on the edit
    /// distance between any extension of the probe prefix and the target.
    pub fn row_min(&self) -> usize {
        let width = self.target.len() + 1;
        let start = self.rows.len() - width;
        self.rows[start..].iter().copied().min().unwrap_or(INF)
    }

    /// `true` while the current prefix can still extend into a string
    /// within distance `k` of the target.
    pub fn viable(&self) -> bool {
        self.row_min() <= self.k
    }

    /// Convenience: walks `probe` left-to-right with prefix-pruning and
    /// returns `ed(probe, target)` when `≤ k`.
    pub fn run(target: &[u8], probe: &[u8], k: usize) -> Option<usize> {
        let mut dp = PrefixDp::new(target, k);
        for &c in probe {
            if !dp.push(c) {
                return None;
            }
        }
        dp.distance()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levenshtein::edit_distance;

    #[test]
    fn run_agrees_with_full_dp() {
        let pairs: &[(&[u8], &[u8])] = &[
            (b"kitten", b"sitting"),
            (b"abc", b""),
            (b"", b"abc"),
            (b"abc", b"abc"),
            (b"gumbo", b"gambol"),
        ];
        for &(t, p) in pairs {
            let d = edit_distance(p, t);
            for k in 0..=d + 1 {
                assert_eq!(
                    PrefixDp::run(t, p, k),
                    (d <= k).then_some(d),
                    "t={t:?} p={p:?} k={k}"
                );
            }
        }
    }

    #[test]
    fn push_pop_backtracking() {
        let mut dp = PrefixDp::new(b"abcd", 2);
        assert_eq!(dp.depth(), 0);
        assert!(dp.push(b'a'));
        assert!(dp.push(b'b'));
        let before = dp.distance();
        assert!(dp.push(b'z'));
        dp.pop();
        assert_eq!(dp.distance(), before);
        assert_eq!(dp.depth(), 2);
    }

    #[test]
    fn prefix_pruning_fires() {
        // target "aaaa", probe prefix "bbb" has min row value 3 > 2.
        let mut dp = PrefixDp::new(b"aaaa", 2);
        assert!(dp.push(b'b'));
        assert!(dp.push(b'b'));
        assert!(!dp.push(b'b'));
        assert!(!dp.viable());
    }

    #[test]
    fn distance_respects_threshold() {
        let mut dp = PrefixDp::new(b"abc", 1);
        dp.push(b'a');
        assert_eq!(dp.distance(), None); // ed("a","abc") = 2
        dp.push(b'b');
        assert_eq!(dp.distance(), Some(1));
        dp.push(b'c');
        assert_eq!(dp.distance(), Some(0));
    }

    #[test]
    fn empty_target() {
        let mut dp = PrefixDp::new(b"", 1);
        assert_eq!(dp.distance(), Some(0));
        assert!(dp.push(b'x'));
        assert_eq!(dp.distance(), Some(1));
        assert!(!dp.push(b'y'));
        assert_eq!(dp.distance(), None);
    }

    #[test]
    #[should_panic(expected = "pop on empty")]
    fn pop_empty_panics() {
        PrefixDp::new(b"a", 1).pop();
    }

    /// Exhaustive: every probe over {a,b} of length ≤ 4 against every
    /// target of length ≤ 3, every k ≤ 3.
    #[test]
    fn exhaustive_small() {
        fn all(len: usize) -> Vec<Vec<u8>> {
            (0..=len)
                .flat_map(|l| {
                    (0..(1usize << l))
                        .map(move |bits| (0..l).map(|i| b'a' + ((bits >> i) & 1) as u8).collect())
                })
                .collect()
        }
        for t in all(3) {
            for p in all(4) {
                let d = edit_distance(&p, &t);
                for k in 0..=3 {
                    assert_eq!(
                        PrefixDp::run(&t, &p, k),
                        (d <= k).then_some(d),
                        "t={t:?} p={p:?} k={k}"
                    );
                }
            }
        }
    }
}
