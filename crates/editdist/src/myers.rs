//! Myers' bit-parallel edit distance (Myers 1999, multi-block form after
//! Hyyrö 2003).
//!
//! Computes `ed(a, b)` in `O(⌈|a|/64⌉ · |b|)` word operations — roughly
//! 64× fewer operations than the plain DP for strings under 64 symbols,
//! which is every string in the paper's experiments. Used by the naive
//! verifier and the eed baseline where whole (unbanded) distances over
//! many world pairs dominate.
//!
//! The pattern is padded to a whole number of 64-bit blocks with rows
//! that can never match; each padded row contributes exactly +1 to every
//! column of the DP, so the true distance is the padded score minus the
//! padding.

use crate::levenshtein::edit_distance;

const WORD: usize = 64;
const HIGH: u64 = 1 << (WORD - 1);

/// Bit-parallel `ed(a, b)`.
///
/// Symbols may be any `u8` values. Falls back to the plain DP for the
/// empty pattern.
///
/// ```
/// use usj_editdist::myers_distance;
/// assert_eq!(myers_distance(b"kitten", b"sitting"), 3);
/// ```
pub fn myers_distance(a: &[u8], b: &[u8]) -> usize {
    let m = a.len();
    if m == 0 || b.is_empty() {
        return m.max(b.len());
    }
    let blocks = m.div_ceil(WORD);
    // Peq[c][j]: bitmask of pattern positions in block j equal to c.
    let mut peq = vec![[0u64; 256]; blocks];
    for (i, &c) in a.iter().enumerate() {
        peq[i / WORD][c as usize] |= 1 << (i % WORD);
    }
    // The score is read at row m: bit `last_bit` of the last block's
    // horizontal-delta vectors (before their shift).
    let last_bit = 1u64 << ((m - 1) % WORD);
    let mut pv = vec![!0u64; blocks];
    let mut mv = vec![0u64; blocks];
    let mut score = m as i64;

    for &c in b {
        // hin: horizontal delta entering the current block from below
        // (the row-0 boundary contributes +1 — insertions only).
        let mut hin: i64 = 1;
        for j in 0..blocks {
            let mut eq = peq[j][c as usize];
            let pv_j = pv[j];
            let mv_j = mv[j];
            let xv = eq | mv_j;
            if hin < 0 {
                eq |= 1;
            }
            let xh = (((eq & pv_j).wrapping_add(pv_j)) ^ pv_j) | eq;
            let mut ph = mv_j | !(xh | pv_j);
            let mut mh = pv_j & xh;
            if j == blocks - 1 {
                // Horizontal delta at the pattern's true last row.
                if ph & last_bit != 0 {
                    score += 1;
                } else if mh & last_bit != 0 {
                    score -= 1;
                }
            }
            let mut hout: i64 = 0;
            if ph & HIGH != 0 {
                hout += 1;
            }
            if mh & HIGH != 0 {
                hout -= 1;
            }
            ph <<= 1;
            mh <<= 1;
            match hin.cmp(&0) {
                std::cmp::Ordering::Less => mh |= 1,
                std::cmp::Ordering::Greater => ph |= 1,
                std::cmp::Ordering::Equal => {}
            }
            pv[j] = mh | !(xv | ph);
            mv[j] = ph & xv;
            hin = hout;
        }
    }
    score as usize
}

/// `true` iff `ed(a, b) ≤ k`, choosing between the banded DP (small k)
/// and Myers (large k relative to the strings).
pub fn within_k_auto(a: &[u8], b: &[u8], k: usize) -> bool {
    if a.len().abs_diff(b.len()) > k {
        return false;
    }
    // Banded DP does O((2k+1)·min) work; Myers does O(⌈m/64⌉·n). Prefer
    // Myers once the band covers most of the matrix.
    if (2 * k + 1) * 8 >= a.len().min(b.len()) {
        myers_distance(a, b) <= k
    } else {
        crate::levenshtein::edit_distance_bounded(a, b, k).is_some()
    }
}

/// Reference check helper used by tests (kept here so the doc example
/// can call it too).
#[doc(hidden)]
pub fn agrees_with_dp(a: &[u8], b: &[u8]) -> bool {
    myers_distance(a, b) == edit_distance(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_pairs() {
        assert_eq!(myers_distance(b"kitten", b"sitting"), 3);
        assert_eq!(myers_distance(b"flaw", b"lawn"), 2);
        assert_eq!(myers_distance(b"intention", b"execution"), 5);
        assert_eq!(myers_distance(b"", b""), 0);
        assert_eq!(myers_distance(b"abc", b""), 3);
        assert_eq!(myers_distance(b"", b"abc"), 3);
        assert_eq!(myers_distance(b"same", b"same"), 0);
    }

    #[test]
    fn exhaustive_small_binary() {
        let strings: Vec<Vec<u8>> = (0..=5usize)
            .flat_map(|len| {
                (0..(1usize << len))
                    .map(move |bits| (0..len).map(|i| ((bits >> i) & 1) as u8).collect())
            })
            .collect();
        for a in &strings {
            for b in &strings {
                assert!(agrees_with_dp(a, b), "a={a:?} b={b:?}");
            }
        }
    }

    #[test]
    fn multi_block_patterns() {
        // Patterns spanning 2–3 blocks (65–160 symbols).
        let a: Vec<u8> = (0..130).map(|i| (i % 7) as u8).collect();
        let mut b = a.clone();
        b[5] = 99;
        b.remove(70);
        b.insert(100, 42);
        assert_eq!(myers_distance(&a, &b), edit_distance(&a, &b));
        // Exactly 64 and 65 to hit the block boundary.
        for m in [63usize, 64, 65, 128, 129] {
            let a: Vec<u8> = (0..m).map(|i| (i % 5) as u8).collect();
            let b: Vec<u8> = (0..m + 3).map(|i| ((i + 1) % 5) as u8).collect();
            assert_eq!(myers_distance(&a, &b), edit_distance(&a, &b), "m={m}");
        }
    }

    #[test]
    fn asymmetric_lengths() {
        let a: Vec<u8> = vec![1; 100];
        let b: Vec<u8> = vec![1; 10];
        assert_eq!(myers_distance(&a, &b), 90);
        assert_eq!(myers_distance(&b, &a), 90);
    }

    #[test]
    fn within_k_auto_agrees() {
        let pairs: &[(&[u8], &[u8])] = &[
            (b"kitten", b"sitting"),
            (b"abcdefghabcdefgh", b"abcdefghabcdefgi"),
            (b"aaaa", b"bbbb"),
        ];
        for &(a, b) in pairs {
            let d = edit_distance(a, b);
            for k in 0..=d + 2 {
                assert_eq!(within_k_auto(a, b, k), d <= k, "a={a:?} k={k}");
            }
        }
    }
}
