//! Levenshtein (edit) distance over symbol slices.
//!
//! The edit distance `ed(r, s)` is the minimum number of single-character
//! insertions, deletions, and substitutions transforming `r` into `s`.

/// Full dynamic-programming edit distance in `O(|r|·|s|)` time and
/// `O(min(|r|,|s|))` space.
///
/// ```
/// use usj_editdist::edit_distance;
/// assert_eq!(edit_distance(b"kitten", b"sitting"), 3);
/// assert_eq!(edit_distance(b"", b"abc"), 3);
/// assert_eq!(edit_distance(b"abc", b"abc"), 0);
/// ```
pub fn edit_distance(r: &[u8], s: &[u8]) -> usize {
    // Keep the shorter string in the row to minimise memory.
    let (short, long) = if r.len() <= s.len() { (r, s) } else { (s, r) };
    if short.is_empty() {
        return long.len();
    }
    let mut row: Vec<usize> = (0..=short.len()).collect();
    for (i, &lc) in long.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            let val = (prev_diag + cost).min(row[j] + 1).min(row[j + 1] + 1);
            prev_diag = row[j + 1];
            row[j + 1] = val;
        }
    }
    row[short.len()]
}

/// Banded edit distance: returns `Some(d)` when `ed(r, s) = d ≤ k`, `None`
/// otherwise, in `O((2k+1)·min(|r|,|s|))` time.
///
/// ```
/// use usj_editdist::edit_distance_bounded;
/// assert_eq!(edit_distance_bounded(b"kitten", b"sitting", 3), Some(3));
/// assert_eq!(edit_distance_bounded(b"kitten", b"sitting", 2), None);
/// assert_eq!(edit_distance_bounded(b"a", b"a", 0), Some(0));
/// ```
pub fn edit_distance_bounded(r: &[u8], s: &[u8], k: usize) -> Option<usize> {
    let (short, long) = if r.len() <= s.len() { (r, s) } else { (s, r) };
    if long.len() - short.len() > k {
        return None;
    }
    // Matching affixes never change the distance; strip them (vectorised
    // block compares) so the banded DP only runs on the differing core.
    let p = usj_simd::common_prefix_len(short, long);
    let (short, long) = (&short[p..], &long[p..]);
    let q = usj_simd::common_suffix_len(short, long);
    let (short, long) = (&short[..short.len() - q], &long[..long.len() - q]);
    let (n, m) = (short.len(), long.len());
    if n == 0 {
        return Some(m);
    }
    // Row-wise DP over `long` with a band of half-width k around the
    // diagonal. INF marks cells outside the band.
    const INF: usize = usize::MAX / 2;
    let mut row = vec![INF; n + 1];
    for (j, cell) in row.iter_mut().enumerate().take(k.min(n) + 1) {
        *cell = j;
    }
    for (i, &lc) in long.iter().enumerate() {
        let i1 = i + 1;
        // Band limits for this row (columns j of `short`, 1-based).
        let lo = i1.saturating_sub(k);
        let hi = (i1 + k).min(n);
        if lo > hi {
            return None;
        }
        let mut prev_diag = if lo == 0 { row[0] } else { row[lo - 1] };
        if lo == 0 {
            row[0] = i1;
        } else {
            // Column lo-1 falls outside the band for this row.
            row[lo - 1] = INF;
        }
        let mut row_min = if lo == 0 { i1 } else { INF };
        for j in lo.max(1)..=hi {
            let cost = usize::from(lc != short[j - 1]);
            let val = (prev_diag + cost).min(row[j - 1] + 1).min(row[j] + 1);
            prev_diag = row[j];
            row[j] = val;
            row_min = row_min.min(val);
        }
        // Cells right of the band are unreachable in later rows.
        if hi < n {
            row[hi + 1] = INF;
        }
        if row_min > k {
            return None;
        }
    }
    (row[n] <= k).then_some(row[n])
}

/// `true` iff `ed(r, s) ≤ k`, with an `O(1)` length-difference fast path.
#[inline]
pub fn within_k(r: &[u8], s: &[u8], k: usize) -> bool {
    if r.len().abs_diff(s.len()) > k {
        return false;
    }
    edit_distance_bounded(r, s, k).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_pairs() {
        assert_eq!(edit_distance(b"kitten", b"sitting"), 3);
        assert_eq!(edit_distance(b"flaw", b"lawn"), 2);
        assert_eq!(edit_distance(b"intention", b"execution"), 5);
        assert_eq!(edit_distance(b"gumbo", b"gambol"), 2);
    }

    #[test]
    fn identity_and_empty() {
        assert_eq!(edit_distance(b"", b""), 0);
        assert_eq!(edit_distance(b"abc", b""), 3);
        assert_eq!(edit_distance(b"", b"abc"), 3);
        assert_eq!(edit_distance(b"same", b"same"), 0);
    }

    #[test]
    fn symmetry() {
        assert_eq!(
            edit_distance(b"abcdef", b"azced"),
            edit_distance(b"azced", b"abcdef")
        );
    }

    #[test]
    fn bounded_matches_full_when_within() {
        let pairs: &[(&[u8], &[u8])] = &[
            (b"kitten", b"sitting"),
            (b"abc", b"abc"),
            (b"", b"xy"),
            (b"aaaa", b"bbbb"),
            (b"abcdefgh", b"abdefghi"),
        ];
        for &(a, b) in pairs {
            let d = edit_distance(a, b);
            for k in 0..=d + 2 {
                let got = edit_distance_bounded(a, b, k);
                if k >= d {
                    assert_eq!(got, Some(d), "a={a:?} b={b:?} k={k}");
                } else {
                    assert_eq!(got, None, "a={a:?} b={b:?} k={k}");
                }
            }
        }
    }

    #[test]
    fn bounded_k_zero() {
        assert_eq!(edit_distance_bounded(b"abc", b"abc", 0), Some(0));
        assert_eq!(edit_distance_bounded(b"abc", b"abd", 0), None);
        assert_eq!(edit_distance_bounded(b"", b"", 0), Some(0));
    }

    #[test]
    fn bounded_strips_shared_affixes() {
        // Long shared prefix + suffix around a small differing core —
        // the strip must leave the distance (and the ≤ k decision) exact.
        let mut a = vec![7u8; 300];
        let mut b = a.clone();
        b[150] = 9; // one substitution in the middle
        assert_eq!(edit_distance_bounded(&a, &b, 2), Some(1));
        b.insert(150, 3); // plus one insertion
        assert_eq!(edit_distance_bounded(&a, &b, 2), Some(2));
        assert_eq!(edit_distance_bounded(&a, &b, 1), None);
        // Identical strings collapse to the n == 0 fast path.
        a = b.clone();
        assert_eq!(edit_distance_bounded(&a, &b, 0), Some(0));
    }

    #[test]
    fn within_k_fast_path() {
        assert!(!within_k(b"a", b"abcdef", 3));
        assert!(within_k(b"abc", b"abcd", 1));
        assert!(!within_k(b"abc", b"xyz", 2));
        assert!(within_k(b"abc", b"xyz", 3));
    }

    /// Exhaustive cross-check of the banded DP against the full DP on all
    /// short binary strings.
    #[test]
    fn bounded_exhaustive_small() {
        let strings: Vec<Vec<u8>> = (0..=4usize)
            .flat_map(|len| {
                (0..(1usize << len))
                    .map(move |bits| (0..len).map(|i| ((bits >> i) & 1) as u8).collect())
            })
            .collect();
        for a in &strings {
            for b in &strings {
                let d = edit_distance(a, b);
                for k in 0..=5 {
                    let got = edit_distance_bounded(a, b, k);
                    assert_eq!(got, (d <= k).then_some(d), "a={a:?} b={b:?} k={k}");
                }
            }
        }
    }
}
