//! x86_64 backends: AVX2 (256-bit) and SSE2 (128-bit baseline).
//!
//! Every function is `unsafe` only because of `target_feature`; callers
//! (the dispatcher in `lib.rs`) guarantee the feature is present. Lane
//! math mirrors the scalar kernels' expression trees exactly — plain
//! mul/add (never FMA), identical max/min operand order — so results are
//! bitwise equal to `crate::scalar`.

#![allow(clippy::missing_safety_doc)] // safety contract documented per fn body

use std::arch::x86_64::*;

use crate::scalar;

/// AVX2 [`crate::pb_row_update`]: 4 lanes of `prev[j]·keep + prev[j−1]·step`.
#[target_feature(enable = "avx2")]
pub unsafe fn pb_row_update_avx2(prev: &[f64], cur: &mut [f64], keep: f64, step: f64) {
    let n = cur.len();
    if n == 0 {
        return;
    }
    cur[0] = prev[0] * keep;
    let vk = _mm256_set1_pd(keep);
    let vs = _mm256_set1_pd(step);
    let mut j = 1usize;
    while j + 4 <= n {
        // safety: j ≥ 1 and j+4 ≤ n = len(prev) = len(cur), so both the
        // aligned-at-j and shifted-at-j−1 4-lane loads and the store stay
        // in bounds.
        unsafe {
            let p = _mm256_loadu_pd(prev.as_ptr().add(j));
            let pm1 = _mm256_loadu_pd(prev.as_ptr().add(j - 1));
            let v = _mm256_add_pd(_mm256_mul_pd(p, vk), _mm256_mul_pd(pm1, vs));
            _mm256_storeu_pd(cur.as_mut_ptr().add(j), v);
        }
        j += 4;
    }
    while j < n {
        cur[j] = prev[j] * keep + prev[j - 1] * step;
        j += 1;
    }
}

/// SSE2 [`crate::pb_row_update`]: 2 lanes.
#[target_feature(enable = "sse2")]
pub unsafe fn pb_row_update_sse2(prev: &[f64], cur: &mut [f64], keep: f64, step: f64) {
    let n = cur.len();
    if n == 0 {
        return;
    }
    cur[0] = prev[0] * keep;
    let vk = _mm_set1_pd(keep);
    let vs = _mm_set1_pd(step);
    let mut j = 1usize;
    while j + 2 <= n {
        // safety: j ≥ 1 and j+2 ≤ n = len(prev) = len(cur), so both
        // 2-lane loads and the store stay in bounds.
        unsafe {
            let p = _mm_loadu_pd(prev.as_ptr().add(j));
            let pm1 = _mm_loadu_pd(prev.as_ptr().add(j - 1));
            let v = _mm_add_pd(_mm_mul_pd(p, vk), _mm_mul_pd(pm1, vs));
            _mm_storeu_pd(cur.as_mut_ptr().add(j), v);
        }
        j += 2;
    }
    while j < n {
        cur[j] = prev[j] * keep + prev[j - 1] * step;
        j += 1;
    }
}

/// AVX2 [`crate::cdf_row_update`]: lane `j` computes the Theorem 4 cell
/// pair from the shifted neighbour loads.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2")]
pub unsafe fn cdf_row_update_avx2(
    p1: f64,
    p2: f64,
    l_d1: &[f64],
    l_best: &[f64],
    u_d1: &[f64],
    u_d2: &[f64],
    u_d3: &[f64],
    out_l: &mut [f64],
    out_u: &mut [f64],
) {
    let w = out_l.len();
    if w == 0 {
        return;
    }
    // j = 0 reads zero neighbours — scalar.
    out_l[0] = (p1 * l_d1[0]).max(p2 * 0.0).clamp(0.0, 1.0);
    out_u[0] = (p1 * u_d1[0] + p2 * 0.0 + 0.0 + 0.0).min(1.0).clamp(0.0, 1.0);
    let vp1 = _mm256_set1_pd(p1);
    let vp2 = _mm256_set1_pd(p2);
    let one = _mm256_set1_pd(1.0);
    let zero = _mm256_setzero_pd();
    let mut j = 1usize;
    while j + 4 <= w {
        // safety: j ≥ 1 and j+4 ≤ w, and every slice has length ≥ w
        // (checked by the dispatcher), so the at-j and at-j−1 4-lane
        // loads and both stores stay in bounds.
        unsafe {
            let ld1 = _mm256_loadu_pd(l_d1.as_ptr().add(j));
            let lbm1 = _mm256_loadu_pd(l_best.as_ptr().add(j - 1));
            let l = _mm256_max_pd(_mm256_mul_pd(vp1, ld1), _mm256_mul_pd(vp2, lbm1));
            let l = _mm256_max_pd(_mm256_min_pd(l, one), zero);
            _mm256_storeu_pd(out_l.as_mut_ptr().add(j), l);

            let ud1 = _mm256_loadu_pd(u_d1.as_ptr().add(j));
            let ud1m1 = _mm256_loadu_pd(u_d1.as_ptr().add(j - 1));
            let ud2m1 = _mm256_loadu_pd(u_d2.as_ptr().add(j - 1));
            let ud3m1 = _mm256_loadu_pd(u_d3.as_ptr().add(j - 1));
            let u = _mm256_add_pd(
                _mm256_add_pd(
                    _mm256_add_pd(_mm256_mul_pd(vp1, ud1), _mm256_mul_pd(vp2, ud1m1)),
                    ud2m1,
                ),
                ud3m1,
            );
            let u = _mm256_max_pd(_mm256_min_pd(_mm256_min_pd(u, one), one), zero);
            _mm256_storeu_pd(out_u.as_mut_ptr().add(j), u);
        }
        j += 4;
    }
    while j < w {
        let l = (p1 * l_d1[j]).max(p2 * l_best[j - 1]);
        let u = (p1 * u_d1[j] + p2 * u_d1[j - 1] + u_d2[j - 1] + u_d3[j - 1]).min(1.0);
        out_l[j] = l.clamp(0.0, 1.0);
        out_u[j] = u.clamp(0.0, 1.0);
        j += 1;
    }
}

/// SSE2 [`crate::cdf_row_update`]: 2 lanes.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "sse2")]
pub unsafe fn cdf_row_update_sse2(
    p1: f64,
    p2: f64,
    l_d1: &[f64],
    l_best: &[f64],
    u_d1: &[f64],
    u_d2: &[f64],
    u_d3: &[f64],
    out_l: &mut [f64],
    out_u: &mut [f64],
) {
    let w = out_l.len();
    if w == 0 {
        return;
    }
    out_l[0] = (p1 * l_d1[0]).max(p2 * 0.0).clamp(0.0, 1.0);
    out_u[0] = (p1 * u_d1[0] + p2 * 0.0 + 0.0 + 0.0).min(1.0).clamp(0.0, 1.0);
    let vp1 = _mm_set1_pd(p1);
    let vp2 = _mm_set1_pd(p2);
    let one = _mm_set1_pd(1.0);
    let zero = _mm_setzero_pd();
    let mut j = 1usize;
    while j + 2 <= w {
        // safety: j ≥ 1 and j+2 ≤ w, and every slice has length ≥ w
        // (checked by the dispatcher), so all 2-lane loads/stores stay in
        // bounds.
        unsafe {
            let ld1 = _mm_loadu_pd(l_d1.as_ptr().add(j));
            let lbm1 = _mm_loadu_pd(l_best.as_ptr().add(j - 1));
            let l = _mm_max_pd(_mm_mul_pd(vp1, ld1), _mm_mul_pd(vp2, lbm1));
            let l = _mm_max_pd(_mm_min_pd(l, one), zero);
            _mm_storeu_pd(out_l.as_mut_ptr().add(j), l);

            let ud1 = _mm_loadu_pd(u_d1.as_ptr().add(j));
            let ud1m1 = _mm_loadu_pd(u_d1.as_ptr().add(j - 1));
            let ud2m1 = _mm_loadu_pd(u_d2.as_ptr().add(j - 1));
            let ud3m1 = _mm_loadu_pd(u_d3.as_ptr().add(j - 1));
            let u = _mm_add_pd(
                _mm_add_pd(_mm_add_pd(_mm_mul_pd(vp1, ud1), _mm_mul_pd(vp2, ud1m1)), ud2m1),
                ud3m1,
            );
            let u = _mm_max_pd(_mm_min_pd(_mm_min_pd(u, one), one), zero);
            _mm_storeu_pd(out_u.as_mut_ptr().add(j), u);
        }
        j += 2;
    }
    while j < w {
        let l = (p1 * l_d1[j]).max(p2 * l_best[j - 1]);
        let u = (p1 * u_d1[j] + p2 * u_d1[j - 1] + u_d2[j - 1] + u_d3[j - 1]).min(1.0);
        out_l[j] = l.clamp(0.0, 1.0);
        out_u[j] = u.clamp(0.0, 1.0);
        j += 1;
    }
}

/// AVX2 [`crate::common_prefix_len`]: 32-byte equality blocks.
#[target_feature(enable = "avx2")]
pub unsafe fn common_prefix_len_avx2(a: &[u8], b: &[u8]) -> usize {
    let n = a.len().min(b.len());
    let mut i = 0usize;
    while i + 32 <= n {
        // safety: i+32 ≤ n ≤ len(a), len(b), so both 32-byte loads stay
        // in bounds.
        let mask = unsafe {
            let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
            let vb = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
            _mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)) as u32
        };
        if mask != u32::MAX {
            return i + (!mask).trailing_zeros() as usize;
        }
        i += 32;
    }
    while i < n && a[i] == b[i] {
        i += 1;
    }
    i
}

/// SSE2 [`crate::common_prefix_len`]: 16-byte equality blocks.
#[target_feature(enable = "sse2")]
pub unsafe fn common_prefix_len_sse2(a: &[u8], b: &[u8]) -> usize {
    let n = a.len().min(b.len());
    let mut i = 0usize;
    while i + 16 <= n {
        // safety: i+16 ≤ n ≤ len(a), len(b), so both 16-byte loads stay
        // in bounds.
        let mask = unsafe {
            let va = _mm_loadu_si128(a.as_ptr().add(i) as *const __m128i);
            let vb = _mm_loadu_si128(b.as_ptr().add(i) as *const __m128i);
            _mm_movemask_epi8(_mm_cmpeq_epi8(va, vb)) as u32
        };
        if mask != 0xFFFF {
            return i + (!mask).trailing_zeros() as usize;
        }
        i += 16;
    }
    while i < n && a[i] == b[i] {
        i += 1;
    }
    i
}

/// AVX2 [`crate::common_suffix_len`]: 32-byte blocks walked from the end.
#[target_feature(enable = "avx2")]
pub unsafe fn common_suffix_len_avx2(a: &[u8], b: &[u8]) -> usize {
    let n = a.len().min(b.len());
    let mut i = 0usize;
    while i + 32 <= n {
        // safety: i+32 ≤ n ≤ len(a), len(b), so the block starting 32
        // bytes before each unmatched tail stays in bounds.
        let mask = unsafe {
            let va = _mm256_loadu_si256(a.as_ptr().add(a.len() - i - 32) as *const __m256i);
            let vb = _mm256_loadu_si256(b.as_ptr().add(b.len() - i - 32) as *const __m256i);
            _mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)) as u32
        };
        if mask != u32::MAX {
            // Matching run at the high (end-most) side of the block.
            return i + (!mask).leading_zeros() as usize;
        }
        i += 32;
    }
    while i < n && a[a.len() - 1 - i] == b[b.len() - 1 - i] {
        i += 1;
    }
    i
}

/// SSE2 [`crate::common_suffix_len`]: 16-byte blocks walked from the end.
#[target_feature(enable = "sse2")]
pub unsafe fn common_suffix_len_sse2(a: &[u8], b: &[u8]) -> usize {
    let n = a.len().min(b.len());
    let mut i = 0usize;
    while i + 16 <= n {
        // safety: i+16 ≤ n ≤ len(a), len(b), so the block starting 16
        // bytes before each unmatched tail stays in bounds.
        let mask = unsafe {
            let va = _mm_loadu_si128(a.as_ptr().add(a.len() - i - 16) as *const __m128i);
            let vb = _mm_loadu_si128(b.as_ptr().add(b.len() - i - 16) as *const __m128i);
            _mm_movemask_epi8(_mm_cmpeq_epi8(va, vb)) as u32
        };
        if mask != 0xFFFF {
            // The 16 mask bits sit in the low half; shift them to the top
            // so leading_zeros counts the end-most matching run.
            return i + ((!mask) << 16).leading_zeros() as usize;
        }
        i += 16;
    }
    while i < n && a[a.len() - 1 - i] == b[b.len() - 1 - i] {
        i += 1;
    }
    i
}

/// AVX2 [`crate::intersect_sorted_ids`]: scalar block skips plus an
/// 8-lane splat-equality probe of `a[i]` against `b[j..j+8]`.
#[target_feature(enable = "avx2")]
pub unsafe fn intersect_sorted_ids_avx2(a: &[u32], b: &[u32], out: &mut Vec<(u32, u32)>) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j + 8 <= b.len() {
        let x = a[i];
        if b[j + 7] < x {
            j += 8;
            continue;
        }
        if a.len() - i >= 8 && a[i + 7] < b[j] {
            i += 8;
            continue;
        }
        // safety: j+8 ≤ len(b), so the 8-lane load stays in bounds.
        let mask = unsafe {
            let vx = _mm256_set1_epi32(x as i32);
            let vb = _mm256_loadu_si256(b.as_ptr().add(j) as *const __m256i);
            _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(vx, vb))) as u32
        };
        if mask != 0 {
            let pos = mask.trailing_zeros() as usize;
            out.push((i as u32, (j + pos) as u32));
            i += 1;
            j += pos + 1;
        } else {
            // x ≤ b[j+7] but equals none of b[j..j+8]; every later b is
            // larger still, so a[i] matches nothing.
            i += 1;
        }
    }
    // Tails shorter than one vector: plain merge (block skips included).
    scalar::intersect_tail(a, b, i, j, out);
}

/// SSE2 [`crate::intersect_sorted_ids`]: 4-lane splat-equality probe.
#[target_feature(enable = "sse2")]
pub unsafe fn intersect_sorted_ids_sse2(a: &[u32], b: &[u32], out: &mut Vec<(u32, u32)>) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j + 4 <= b.len() {
        let x = a[i];
        if b[j + 3] < x {
            j += 4;
            continue;
        }
        if a.len() - i >= 4 && a[i + 3] < b[j] {
            i += 4;
            continue;
        }
        // safety: j+4 ≤ len(b), so the 4-lane load stays in bounds.
        let mask = unsafe {
            let vx = _mm_set1_epi32(x as i32);
            let vb = _mm_loadu_si128(b.as_ptr().add(j) as *const __m128i);
            _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(vx, vb))) as u32
        };
        if mask != 0 {
            let pos = mask.trailing_zeros() as usize;
            out.push((i as u32, (j + pos) as u32));
            i += 1;
            j += pos + 1;
        } else {
            i += 1;
        }
    }
    scalar::intersect_tail(a, b, i, j, out);
}
