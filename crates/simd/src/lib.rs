//! `usj-simd` — runtime-dispatched SIMD kernels for the join's hot loops.
//!
//! Four kernels cover the inner loops the paper's filters spend their
//! time in:
//!
//! | kernel | hot loop |
//! |--------|----------|
//! | [`pb_row_update`] | Poisson-binomial segment-match DP rows (Theorem 2, `usj-qgram`) |
//! | [`cdf_row_update`] | CDF-bound recurrence cells (Theorem 4, `usj-cdf`) |
//! | [`common_prefix_len`] / [`common_suffix_len`] | banded edit-distance reduction (`usj-editdist`) |
//! | [`intersect_sorted_ids`] | interned posting-list merge (`usj-core` segment index) |
//!
//! # Dispatch contract
//!
//! Every kernel has a **mandatory scalar fallback** in [`scalar`] that is
//! the semantic reference: the accelerated paths must return *bitwise*
//! identical results (the float kernels use plain mul/add trees — never
//! FMA — so lane math equals scalar math exactly). The instruction set is
//! picked once per process by [`simd_level`]:
//!
//! * `x86_64`: AVX2 when the CPU reports it, else SSE2 (the baseline
//!   every x86_64 CPU has);
//! * `aarch64`: NEON (architecturally guaranteed);
//! * anything else, Miri, or `USJ_NO_SIMD=1` in the environment: scalar.
//!
//! The env override gives sanitizer runs and differential tests a forced
//! scalar leg without a rebuild; Miri always takes the scalar path so the
//! interpreter never sees a vendor intrinsic.
//!
//! # Unsafe policy
//!
//! The only `unsafe` in this crate is `target_feature` kernel invocation
//! and raw-pointer lane loads/stores inside those kernels. Every unsafe
//! block carries a `// safety:` comment discharging its obligation
//! (bounds and feature availability); `usj-tidy`'s `unsafe-safety` lint
//! enforces the comment, and the seeded parity tests plus the Miri leg in
//! `scripts/sanitize.sh` enforce the semantics.

#![warn(missing_docs)]

pub mod scalar;

#[cfg(all(target_arch = "x86_64", not(miri)))]
mod x86;

#[cfg(all(target_arch = "aarch64", not(miri)))]
mod neon;

use std::sync::OnceLock;

/// The instruction set the process-wide dispatcher selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// Portable scalar fallbacks only.
    Scalar,
    /// x86_64 SSE2 (128-bit lanes; baseline on every x86_64 CPU).
    Sse2,
    /// x86_64 AVX2 (256-bit lanes; runtime-detected).
    Avx2,
    /// aarch64 NEON (128-bit lanes; architecturally guaranteed).
    Neon,
}

impl SimdLevel {
    /// Stable lowercase name (for logs and bench labels).
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Neon => "neon",
        }
    }
}

static LEVEL: OnceLock<SimdLevel> = OnceLock::new();

/// The instruction set every kernel in this process dispatches to,
/// detected once and cached. `USJ_NO_SIMD` set to anything but `0`
/// forces [`SimdLevel::Scalar`] (read at first use, so set it before the
/// first kernel call).
pub fn simd_level() -> SimdLevel {
    *LEVEL.get_or_init(detect)
}

fn detect() -> SimdLevel {
    if std::env::var_os("USJ_NO_SIMD").is_some_and(|v| v != *"0") {
        return SimdLevel::Scalar;
    }
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return SimdLevel::Avx2;
        }
        // SSE2 is part of the x86_64 baseline — no detection needed.
        SimdLevel::Sse2
    }
    #[cfg(all(target_arch = "aarch64", not(miri)))]
    {
        SimdLevel::Neon
    }
    #[cfg(not(all(any(target_arch = "x86_64", target_arch = "aarch64"), not(miri))))]
    {
        SimdLevel::Scalar
    }
}

/// One Poisson-binomial DP row transition:
///
/// ```text
/// cur[0] = prev[0] · keep
/// cur[j] = prev[j] · keep + prev[j−1] · step      (j ≥ 1)
/// ```
///
/// This is the shared shape of all three DP loops in `usj_qgram::tail`
/// (full distribution: `keep = 1−α, step = α`; failure-count form:
/// `keep = α, step = 1−α`). `prev` and `cur` must have equal length;
/// the result is bitwise identical across dispatch levels.
#[inline]
pub fn pb_row_update(prev: &[f64], cur: &mut [f64], keep: f64, step: f64) {
    debug_assert_eq!(prev.len(), cur.len(), "row buffers must match");
    let n = prev.len().min(cur.len());
    if n < 16 {
        // Rows this narrow are dominated by dispatch + vector setup;
        // the scalar loop (bitwise identical by the parity contract)
        // inlines into the caller instead. The Poisson-binomial DPs
        // spend almost all their calls here.
        return scalar::pb_row_update(&prev[..n], &mut cur[..n], keep, step);
    }
    match simd_level() {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        // safety: Avx2 is only selected when the CPU reported avx2.
        SimdLevel::Avx2 => unsafe { x86::pb_row_update_avx2(&prev[..n], &mut cur[..n], keep, step) },
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        // safety: SSE2 is unconditionally available on x86_64.
        SimdLevel::Sse2 => unsafe { x86::pb_row_update_sse2(&prev[..n], &mut cur[..n], keep, step) },
        #[cfg(all(target_arch = "aarch64", not(miri)))]
        // safety: NEON is unconditionally available on aarch64.
        SimdLevel::Neon => unsafe { neon::pb_row_update_neon(&prev[..n], &mut cur[..n], keep, step) },
        _ => scalar::pb_row_update(&prev[..n], &mut cur[..n], keep, step),
    }
}

/// One CDF-bound DP cell vector (Theorem 4), all `j = 0..width` at once:
///
/// ```text
/// out_l[j] = clamp(max(p1·l_d1[j], p2·l_best[j−1]))
/// out_u[j] = clamp(min(1, p1·u_d1[j] + p2·u_d1[j−1] + u_d2[j−1] + u_d3[j−1]))
/// ```
///
/// `j−1 < 0` reads as zero; `clamp` is to `[0, 1]`. All slices must share
/// `out_l.len()`; the result is bitwise identical across dispatch levels
/// (same mul/add/max/min tree, no FMA).
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn cdf_row_update(
    p1: f64,
    p2: f64,
    l_d1: &[f64],
    l_best: &[f64],
    u_d1: &[f64],
    u_d2: &[f64],
    u_d3: &[f64],
    out_l: &mut [f64],
    out_u: &mut [f64],
) {
    let w = out_l.len();
    debug_assert!(
        [l_d1.len(), l_best.len(), u_d1.len(), u_d2.len(), u_d3.len(), out_u.len()]
            .iter()
            .all(|&l| l == w),
        "cdf cell slices must share one width"
    );
    if [l_d1.len(), l_best.len(), u_d1.len(), u_d2.len(), u_d3.len(), out_u.len()]
        .iter()
        .any(|&l| l < w)
    {
        return;
    }
    if w < 16 {
        // Banded CDF rows are `2k+1` cells wide — single digits for the
        // thresholds the join runs at — so the inlined scalar loop wins
        // over any dispatch (identical bits either way).
        return scalar::cdf_row_update(p1, p2, l_d1, l_best, u_d1, u_d2, u_d3, out_l, out_u);
    }
    match simd_level() {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        // safety: Avx2 is only selected when the CPU reported avx2.
        SimdLevel::Avx2 => unsafe {
            x86::cdf_row_update_avx2(p1, p2, l_d1, l_best, u_d1, u_d2, u_d3, out_l, out_u)
        },
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        // safety: SSE2 is unconditionally available on x86_64.
        SimdLevel::Sse2 => unsafe {
            x86::cdf_row_update_sse2(p1, p2, l_d1, l_best, u_d1, u_d2, u_d3, out_l, out_u)
        },
        #[cfg(all(target_arch = "aarch64", not(miri)))]
        // safety: NEON is unconditionally available on aarch64.
        SimdLevel::Neon => unsafe {
            neon::cdf_row_update_neon(p1, p2, l_d1, l_best, u_d1, u_d2, u_d3, out_l, out_u)
        },
        _ => scalar::cdf_row_update(p1, p2, l_d1, l_best, u_d1, u_d2, u_d3, out_l, out_u),
    }
}

/// Length of the longest common prefix of `a` and `b`.
#[inline]
pub fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    match simd_level() {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        // safety: Avx2 is only selected when the CPU reported avx2.
        SimdLevel::Avx2 => unsafe { x86::common_prefix_len_avx2(a, b) },
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        // safety: SSE2 is unconditionally available on x86_64.
        SimdLevel::Sse2 => unsafe { x86::common_prefix_len_sse2(a, b) },
        #[cfg(all(target_arch = "aarch64", not(miri)))]
        // safety: NEON is unconditionally available on aarch64.
        SimdLevel::Neon => unsafe { neon::common_prefix_len_neon(a, b) },
        _ => scalar::common_prefix_len(a, b),
    }
}

/// Length of the longest common suffix of `a` and `b`.
#[inline]
pub fn common_suffix_len(a: &[u8], b: &[u8]) -> usize {
    // Delegates through the (dispatched) prefix kernel on reversed index
    // arithmetic inside each backend; scalar handles the general case.
    match simd_level() {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        // safety: Avx2 is only selected when the CPU reported avx2.
        SimdLevel::Avx2 => unsafe { x86::common_suffix_len_avx2(a, b) },
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        // safety: SSE2 is unconditionally available on x86_64.
        SimdLevel::Sse2 => unsafe { x86::common_suffix_len_sse2(a, b) },
        #[cfg(all(target_arch = "aarch64", not(miri)))]
        // safety: NEON is unconditionally available on aarch64.
        SimdLevel::Neon => unsafe { neon::common_suffix_len_neon(a, b) },
        _ => scalar::common_suffix_len(a, b),
    }
}

/// Intersects two strictly-ascending `u32` key lists, pushing the
/// position pair `(index in a, index in b)` of every common value onto
/// `out`, ascending.
///
/// This is the interned posting-list merge: `a` is a probe's resolved
/// equivalent-set keys, `b` one inverted index's key column. Both sides
/// being strictly ascending makes the output independent of traversal
/// strategy, so the accelerated paths are exactly comparable to scalar.
#[inline]
pub fn intersect_sorted_ids(a: &[u32], b: &[u32], out: &mut Vec<(u32, u32)>) {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "a must strictly ascend");
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]), "b must strictly ascend");
    // Strongly asymmetric inputs: binary-search the short side into the
    // long one instead of scanning — `O(min · log max)` beats a linear
    // merge at any vector width, and the output pairs are identical
    // (matches are value determined).
    if a.len() * 16 < b.len() {
        return scalar::intersect_small_into_large(a, b, false, out);
    }
    if b.len() * 16 < a.len() {
        return scalar::intersect_small_into_large(b, a, true, out);
    }
    match simd_level() {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        // safety: Avx2 is only selected when the CPU reported avx2.
        SimdLevel::Avx2 => unsafe { x86::intersect_sorted_ids_avx2(a, b, out) },
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        // safety: SSE2 is unconditionally available on x86_64.
        SimdLevel::Sse2 => unsafe { x86::intersect_sorted_ids_sse2(a, b, out) },
        #[cfg(all(target_arch = "aarch64", not(miri)))]
        // safety: NEON is unconditionally available on aarch64.
        SimdLevel::Neon => unsafe { neon::intersect_sorted_ids_neon(a, b, out) },
        _ => scalar::intersect_sorted_ids(a, b, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_is_cached_and_consistent() {
        let first = simd_level();
        assert_eq!(first, simd_level());
        // On x86_64/aarch64 without USJ_NO_SIMD the level is non-scalar;
        // everywhere it must be a valid variant with a stable name.
        assert!(!first.name().is_empty());
        if cfg!(miri) {
            assert_eq!(first, SimdLevel::Scalar);
        }
    }

    #[test]
    fn dispatch_matches_scalar_on_smoke_inputs() {
        // The full seeded sweep lives in tests/parity.rs; this in-crate
        // smoke check keeps `cargo test -p usj-simd --lib` meaningful
        // under Miri (which only runs lib tests).
        let prev = [1.0, 0.5, 0.25, 0.125, 0.0625, 0.03125];
        let mut a = [0.0; 6];
        let mut b = [0.0; 6];
        pb_row_update(&prev, &mut a, 0.7, 0.3);
        scalar::pb_row_update(&prev, &mut b, 0.7, 0.3);
        assert_eq!(a.map(f64::to_bits), b.map(f64::to_bits));

        assert_eq!(common_prefix_len(b"banana", b"bandana"), 3);
        assert_eq!(common_suffix_len(b"banana", b"bandana"), 3);

        let mut got = Vec::new();
        intersect_sorted_ids(&[1, 4, 9, 33], &[0, 4, 8, 9, 34], &mut got);
        assert_eq!(got, vec![(1, 1), (2, 3)]);
    }
}
