//! aarch64 NEON backends (128-bit lanes, architecturally guaranteed).
//!
//! Float kernels use `vmulq`/`vaddq` (never `vfmaq`) so lane math equals
//! the scalar kernels bit-for-bit; byte/id kernels reduce equality masks
//! with `vminvq`/`vmaxvq` and fall back to scalar scans inside a block
//! once a mismatch or hit is located.

use std::arch::aarch64::*;

use crate::scalar;

/// NEON [`crate::pb_row_update`]: 2 lanes of `prev[j]·keep + prev[j−1]·step`.
#[target_feature(enable = "neon")]
pub unsafe fn pb_row_update_neon(prev: &[f64], cur: &mut [f64], keep: f64, step: f64) {
    let n = cur.len();
    if n == 0 {
        return;
    }
    cur[0] = prev[0] * keep;
    // safety: vdupq_n_f64 only materialises registers.
    let (vk, vs) = unsafe { (vdupq_n_f64(keep), vdupq_n_f64(step)) };
    let mut j = 1usize;
    while j + 2 <= n {
        // safety: j ≥ 1 and j+2 ≤ n = len(prev) = len(cur), so both
        // 2-lane loads and the store stay in bounds.
        unsafe {
            let p = vld1q_f64(prev.as_ptr().add(j));
            let pm1 = vld1q_f64(prev.as_ptr().add(j - 1));
            let v = vaddq_f64(vmulq_f64(p, vk), vmulq_f64(pm1, vs));
            vst1q_f64(cur.as_mut_ptr().add(j), v);
        }
        j += 2;
    }
    while j < n {
        cur[j] = prev[j] * keep + prev[j - 1] * step;
        j += 1;
    }
}

/// NEON [`crate::cdf_row_update`]: 2 lanes per Theorem 4 cell pair.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "neon")]
pub unsafe fn cdf_row_update_neon(
    p1: f64,
    p2: f64,
    l_d1: &[f64],
    l_best: &[f64],
    u_d1: &[f64],
    u_d2: &[f64],
    u_d3: &[f64],
    out_l: &mut [f64],
    out_u: &mut [f64],
) {
    let w = out_l.len();
    if w == 0 {
        return;
    }
    out_l[0] = (p1 * l_d1[0]).max(p2 * 0.0).clamp(0.0, 1.0);
    out_u[0] = (p1 * u_d1[0] + p2 * 0.0 + 0.0 + 0.0).min(1.0).clamp(0.0, 1.0);
    // safety: vdupq_n_f64 only materialises registers.
    let (vp1, vp2, one, zero) = unsafe {
        (
            vdupq_n_f64(p1),
            vdupq_n_f64(p2),
            vdupq_n_f64(1.0),
            vdupq_n_f64(0.0),
        )
    };
    let mut j = 1usize;
    while j + 2 <= w {
        // safety: j ≥ 1 and j+2 ≤ w, and every slice has length ≥ w
        // (checked by the dispatcher), so all 2-lane loads/stores stay in
        // bounds.
        unsafe {
            let ld1 = vld1q_f64(l_d1.as_ptr().add(j));
            let lbm1 = vld1q_f64(l_best.as_ptr().add(j - 1));
            let l = vmaxq_f64(vmulq_f64(vp1, ld1), vmulq_f64(vp2, lbm1));
            let l = vmaxq_f64(vminq_f64(l, one), zero);
            vst1q_f64(out_l.as_mut_ptr().add(j), l);

            let ud1 = vld1q_f64(u_d1.as_ptr().add(j));
            let ud1m1 = vld1q_f64(u_d1.as_ptr().add(j - 1));
            let ud2m1 = vld1q_f64(u_d2.as_ptr().add(j - 1));
            let ud3m1 = vld1q_f64(u_d3.as_ptr().add(j - 1));
            let u = vaddq_f64(
                vaddq_f64(vaddq_f64(vmulq_f64(vp1, ud1), vmulq_f64(vp2, ud1m1)), ud2m1),
                ud3m1,
            );
            let u = vmaxq_f64(vminq_f64(vminq_f64(u, one), one), zero);
            vst1q_f64(out_u.as_mut_ptr().add(j), u);
        }
        j += 2;
    }
    while j < w {
        let l = (p1 * l_d1[j]).max(p2 * l_best[j - 1]);
        let u = (p1 * u_d1[j] + p2 * u_d1[j - 1] + u_d2[j - 1] + u_d3[j - 1]).min(1.0);
        out_l[j] = l.clamp(0.0, 1.0);
        out_u[j] = u.clamp(0.0, 1.0);
        j += 1;
    }
}

/// NEON [`crate::common_prefix_len`]: 16-byte all-equal blocks, scalar
/// scan inside the first unequal block.
#[target_feature(enable = "neon")]
pub unsafe fn common_prefix_len_neon(a: &[u8], b: &[u8]) -> usize {
    let n = a.len().min(b.len());
    let mut i = 0usize;
    while i + 16 <= n {
        // safety: i+16 ≤ n ≤ len(a), len(b), so both 16-byte loads stay
        // in bounds.
        let all_eq = unsafe {
            let va = vld1q_u8(a.as_ptr().add(i));
            let vb = vld1q_u8(b.as_ptr().add(i));
            vminvq_u8(vceqq_u8(va, vb)) == u8::MAX
        };
        if !all_eq {
            break;
        }
        i += 16;
    }
    while i < n && a[i] == b[i] {
        i += 1;
    }
    i
}

/// NEON [`crate::common_suffix_len`]: 16-byte all-equal blocks from the
/// end, scalar scan inside the first unequal block.
#[target_feature(enable = "neon")]
pub unsafe fn common_suffix_len_neon(a: &[u8], b: &[u8]) -> usize {
    let n = a.len().min(b.len());
    let mut i = 0usize;
    while i + 16 <= n {
        // safety: i+16 ≤ n ≤ len(a), len(b), so the block starting 16
        // bytes before each unmatched tail stays in bounds.
        let all_eq = unsafe {
            let va = vld1q_u8(a.as_ptr().add(a.len() - i - 16));
            let vb = vld1q_u8(b.as_ptr().add(b.len() - i - 16));
            vminvq_u8(vceqq_u8(va, vb)) == u8::MAX
        };
        if !all_eq {
            break;
        }
        i += 16;
    }
    while i < n && a[a.len() - 1 - i] == b[b.len() - 1 - i] {
        i += 1;
    }
    i
}

/// NEON [`crate::intersect_sorted_ids`]: scalar block skips plus a 4-lane
/// splat-equality probe of `a[i]` against `b[j..j+4]`.
#[target_feature(enable = "neon")]
pub unsafe fn intersect_sorted_ids_neon(a: &[u32], b: &[u32], out: &mut Vec<(u32, u32)>) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j + 4 <= b.len() {
        let x = a[i];
        if b[j + 3] < x {
            j += 4;
            continue;
        }
        if a.len() - i >= 4 && a[i + 3] < b[j] {
            i += 4;
            continue;
        }
        // safety: j+4 ≤ len(b), so the 4-lane load stays in bounds.
        let any_eq = unsafe {
            let vx = vdupq_n_u32(x);
            let vb = vld1q_u32(b.as_ptr().add(j));
            vmaxvq_u32(vceqq_u32(vx, vb)) != 0
        };
        if any_eq {
            // Strict ascent means exactly one lane hit; locate it.
            let mut pos = 0usize;
            while b[j + pos] != x {
                pos += 1;
            }
            out.push((i as u32, (j + pos) as u32));
            i += 1;
            j += pos + 1;
        } else {
            // x ≤ b[j+3] but equals none of b[j..j+4]; every later b is
            // larger still, so a[i] matches nothing.
            i += 1;
        }
    }
    scalar::intersect_tail(a, b, i, j, out);
}
