//! Portable scalar reference kernels.
//!
//! These are the semantic ground truth for every accelerated backend:
//! the parity tests compare SIMD output against these functions with
//! **bitwise** equality, which works because both sides evaluate the
//! same mul/add/max/min expression trees (no FMA contraction — each
//! product is rounded before the sum, exactly as the vector lanes do).

/// Scalar [`crate::pb_row_update`].
#[inline]
pub fn pb_row_update(prev: &[f64], cur: &mut [f64], keep: f64, step: f64) {
    if cur.is_empty() || prev.is_empty() {
        return;
    }
    cur[0] = prev[0] * keep;
    for j in 1..cur.len().min(prev.len()) {
        cur[j] = prev[j] * keep + prev[j - 1] * step;
    }
}

/// Scalar [`crate::cdf_row_update`].
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn cdf_row_update(
    p1: f64,
    p2: f64,
    l_d1: &[f64],
    l_best: &[f64],
    u_d1: &[f64],
    u_d2: &[f64],
    u_d3: &[f64],
    out_l: &mut [f64],
    out_u: &mut [f64],
) {
    for j in 0..out_l.len() {
        let (lb, u1, u2, u3) = if j > 0 {
            (l_best[j - 1], u_d1[j - 1], u_d2[j - 1], u_d3[j - 1])
        } else {
            (0.0, 0.0, 0.0, 0.0)
        };
        let l = (p1 * l_d1[j]).max(p2 * lb);
        let u = (p1 * u_d1[j] + p2 * u1 + u2 + u3).min(1.0);
        out_l[j] = l.clamp(0.0, 1.0);
        out_u[j] = u.clamp(0.0, 1.0);
    }
}

/// Scalar [`crate::common_prefix_len`].
#[inline]
pub fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    let n = a.len().min(b.len());
    let mut i = 0;
    while i < n && a[i] == b[i] {
        i += 1;
    }
    i
}

/// Scalar [`crate::common_suffix_len`].
#[inline]
pub fn common_suffix_len(a: &[u8], b: &[u8]) -> usize {
    let n = a.len().min(b.len());
    let mut i = 0;
    while i < n && a[a.len() - 1 - i] == b[b.len() - 1 - i] {
        i += 1;
    }
    i
}

/// Scalar [`crate::intersect_sorted_ids`]: two-pointer merge with block
/// skips (the skips change nothing about the output — matches are value
/// determined — they just avoid per-element compares across disjoint
/// stretches).
pub fn intersect_sorted_ids(a: &[u32], b: &[u32], out: &mut Vec<(u32, u32)>) {
    intersect_tail(a, b, 0, 0, out);
}

/// Asymmetric intersection: binary-searches each element of `small`
/// into the (strictly ascending) remainder of `large`. Produces exactly
/// the pairs of [`intersect_sorted_ids`] — matches are value determined
/// and both index streams still ascend — in `O(|small| · log |large|)`.
/// `swapped` flips the pair order for callers whose `small` is the `b`
/// side of the public contract.
pub(crate) fn intersect_small_into_large(
    small: &[u32],
    large: &[u32],
    swapped: bool,
    out: &mut Vec<(u32, u32)>,
) {
    let mut lo = 0usize;
    for (i, &v) in small.iter().enumerate() {
        lo += large[lo..].partition_point(|&x| x < v);
        if lo >= large.len() {
            break;
        }
        if large[lo] == v {
            if swapped {
                out.push((lo as u32, i as u32));
            } else {
                out.push((i as u32, lo as u32));
            }
            lo += 1;
        }
    }
}

/// The merge continued from positions `(i, j)` — shared by the vector
/// backends for their sub-vector-width tails.
pub(crate) fn intersect_tail(a: &[u32], b: &[u32], mut i: usize, mut j: usize, out: &mut Vec<(u32, u32)>) {
    while i < a.len() && j < b.len() {
        if a.len() - i >= 8 && a[i + 7] < b[j] {
            i += 8;
            continue;
        }
        if b.len() - j >= 8 && b[j + 7] < a[i] {
            j += 8;
            continue;
        }
        let (x, y) = (a[i], b[j]);
        if x == y {
            out.push((i as u32, j as u32));
            i += 1;
            j += 1;
        } else if x < y {
            i += 1;
        } else {
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pb_row_matches_hand_computation() {
        let prev = [1.0, 0.0, 0.0];
        let mut cur = [0.0; 3];
        pb_row_update(&prev, &mut cur, 0.6, 0.4);
        assert_eq!(cur, [0.6, 0.4, 0.0]);
    }

    #[test]
    fn cdf_row_j0_reads_zero_neighbours() {
        let l_d1 = [0.8, 1.0];
        let l_best = [0.5, 0.9];
        let u_d1 = [0.9, 1.0];
        let u_d2 = [0.3, 0.4];
        let u_d3 = [0.2, 0.1];
        let (mut ol, mut ou) = ([0.0; 2], [0.0; 2]);
        cdf_row_update(0.5, 0.5, &l_d1, &l_best, &u_d1, &u_d2, &u_d3, &mut ol, &mut ou);
        assert_eq!(ol[0], 0.5 * 0.8);
        assert_eq!(ou[0], 0.5 * 0.9);
        assert_eq!(ol[1], (0.5f64 * 1.0).max(0.5 * 0.5));
        assert_eq!(ou[1], 1.0); // 0.5·1.0 + 0.5·0.9 + 0.3 + 0.2 clamps at 1
    }

    #[test]
    fn prefix_suffix_edges() {
        assert_eq!(common_prefix_len(b"", b"abc"), 0);
        assert_eq!(common_prefix_len(b"abc", b"abc"), 3);
        assert_eq!(common_prefix_len(b"abcd", b"abxd"), 2);
        assert_eq!(common_suffix_len(b"", b"abc"), 0);
        assert_eq!(common_suffix_len(b"abc", b"abc"), 3);
        assert_eq!(common_suffix_len(b"xbcd", b"ybcd"), 3);
    }

    #[test]
    fn intersect_block_skip_paths() {
        // Long disjoint stretches exercise both 8-wide skips.
        let a: Vec<u32> = (0..64).map(|i| i * 3).collect();
        let b: Vec<u32> = (0..64).map(|i| 90 + i * 2).collect();
        let mut got = Vec::new();
        intersect_sorted_ids(&a, &b, &mut got);
        let naive: Vec<(u32, u32)> = a
            .iter()
            .enumerate()
            .filter_map(|(i, x)| b.iter().position(|y| y == x).map(|j| (i as u32, j as u32)))
            .collect();
        assert_eq!(got, naive);
        assert!(!got.is_empty());
    }

    #[test]
    fn intersect_empty_sides() {
        let mut got = Vec::new();
        intersect_sorted_ids(&[], &[1, 2], &mut got);
        intersect_sorted_ids(&[1, 2], &[], &mut got);
        assert!(got.is_empty());
    }
}
