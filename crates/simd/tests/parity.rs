//! Seeded scalar==SIMD differential property tests.
//!
//! Every kernel is run on xorshift-generated inputs through both the
//! dispatcher (whatever level the host selected) and the scalar
//! reference, asserting **bitwise** equality — the float kernels promise
//! identical expression trees, not just tolerance-close results. On a
//! host without vector units (or under `USJ_NO_SIMD=1`) the comparison
//! is scalar-vs-scalar and trivially passes; the CI `simd` job runs this
//! suite both ways.

use usj_simd::{scalar, simd_level};

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

fn gen_probs(state: &mut u64, n: usize) -> Vec<f64> {
    (0..n).map(|_| (xorshift(state) % 10_001) as f64 / 10_000.0).collect()
}

fn gen_sorted_ids(state: &mut u64, n: usize, gap: u64) -> Vec<u32> {
    let mut v = Vec::with_capacity(n);
    let mut cur = 0u64;
    for _ in 0..n {
        cur += 1 + xorshift(state) % gap;
        v.push(cur as u32);
    }
    v
}

#[test]
fn pb_row_update_matches_scalar_bitwise() {
    let mut state = 0x5349_4D44_0001u64 | 1;
    for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 13, 16, 31, 64, 129] {
        for _ in 0..8 {
            let prev = gen_probs(&mut state, len);
            let keep = (xorshift(&mut state) % 10_001) as f64 / 10_000.0;
            let step = 1.0 - keep;
            let mut got = vec![0.0; len];
            let mut want = vec![0.0; len];
            usj_simd::pb_row_update(&prev, &mut got, keep, step);
            scalar::pb_row_update(&prev, &mut want, keep, step);
            let gb: Vec<u64> = got.iter().map(|v| v.to_bits()).collect();
            let wb: Vec<u64> = want.iter().map(|v| v.to_bits()).collect();
            assert_eq!(gb, wb, "len={len} level={:?}", simd_level());
        }
    }
}

#[test]
fn cdf_row_update_matches_scalar_bitwise() {
    let mut state = 0x5349_4D44_0002u64 | 1;
    for width in [1usize, 2, 3, 4, 5, 6, 9, 16, 33] {
        for _ in 0..8 {
            let p1 = (xorshift(&mut state) % 10_001) as f64 / 10_000.0;
            let p2 = 1.0 - p1;
            let l_d1 = gen_probs(&mut state, width);
            let l_best = gen_probs(&mut state, width);
            let u_d1 = gen_probs(&mut state, width);
            let u_d2 = gen_probs(&mut state, width);
            let u_d3 = gen_probs(&mut state, width);
            let (mut gl, mut gu) = (vec![0.0; width], vec![0.0; width]);
            let (mut wl, mut wu) = (vec![0.0; width], vec![0.0; width]);
            usj_simd::cdf_row_update(p1, p2, &l_d1, &l_best, &u_d1, &u_d2, &u_d3, &mut gl, &mut gu);
            scalar::cdf_row_update(p1, p2, &l_d1, &l_best, &u_d1, &u_d2, &u_d3, &mut wl, &mut wu);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&gl), bits(&wl), "L width={width}");
            assert_eq!(bits(&gu), bits(&wu), "U width={width}");
        }
    }
}

#[test]
fn prefix_suffix_match_scalar_on_random_pairs() {
    let mut state = 0x5349_4D44_0003u64 | 1;
    for _ in 0..400 {
        let la = (xorshift(&mut state) % 120) as usize;
        let lb = (xorshift(&mut state) % 120) as usize;
        let a: Vec<u8> = (0..la).map(|_| (xorshift(&mut state) % 4) as u8).collect();
        let mut b: Vec<u8> = (0..lb).map(|_| (xorshift(&mut state) % 4) as u8).collect();
        // Half the time, force long shared affixes (the realistic case).
        if xorshift(&mut state) % 2 == 0 {
            let n = la.min(lb);
            let shared = (xorshift(&mut state) as usize) % (n + 1);
            for t in 0..shared {
                b[t] = a[t];
                let (x, y) = (la - 1 - t, lb - 1 - t);
                b[y] = a[x];
            }
        }
        assert_eq!(
            usj_simd::common_prefix_len(&a, &b),
            scalar::common_prefix_len(&a, &b),
            "prefix a={a:?} b={b:?}"
        );
        assert_eq!(
            usj_simd::common_suffix_len(&a, &b),
            scalar::common_suffix_len(&a, &b),
            "suffix a={a:?} b={b:?}"
        );
    }
    // Identical long strings hit the all-blocks-equal path exactly.
    let long: Vec<u8> = (0..257).map(|i| (i % 7) as u8).collect();
    assert_eq!(usj_simd::common_prefix_len(&long, &long), 257);
    assert_eq!(usj_simd::common_suffix_len(&long, &long), 257);
}

#[test]
fn intersect_matches_scalar_on_random_lists() {
    let mut state = 0x5349_4D44_0004u64 | 1;
    for _ in 0..200 {
        let na = (xorshift(&mut state) % 200) as usize;
        let nb = (xorshift(&mut state) % 200) as usize;
        // Small gaps make dense overlap; large gaps exercise the skips.
        let ga = 1 + xorshift(&mut state) % 7;
        let gb = 1 + xorshift(&mut state) % 7;
        let a = gen_sorted_ids(&mut state, na, ga);
        let b = gen_sorted_ids(&mut state, nb, gb);
        let mut got = Vec::new();
        let mut want = Vec::new();
        usj_simd::intersect_sorted_ids(&a, &b, &mut got);
        scalar::intersect_sorted_ids(&a, &b, &mut want);
        assert_eq!(got, want, "a={a:?} b={b:?}");
        // Sanity: every reported pair is a true match, ascending in both.
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 < w[1].1));
        assert!(got.iter().all(|&(i, j)| a[i as usize] == b[j as usize]));
    }
}
