//! Forced-scalar leg: `USJ_NO_SIMD=1` must pin the dispatcher to the
//! scalar level for the whole process.
//!
//! This lives in its own integration-test binary because the level is
//! cached in a `OnceLock` on first use — the env var has to be set
//! before any kernel call in the process, which a shared test binary
//! cannot guarantee.

use usj_simd::{scalar, simd_level, SimdLevel};

#[test]
fn env_override_forces_scalar_level() {
    // Set before the first simd_level() call in this process.
    std::env::set_var("USJ_NO_SIMD", "1");
    assert_eq!(simd_level(), SimdLevel::Scalar);

    // And the kernels really run the scalar reference: exact equality on
    // a non-trivial input.
    let prev = [0.25, 0.5, 0.75, 1.0, 0.125, 0.375, 0.625, 0.875, 0.0625];
    let mut got = [0.0; 9];
    let mut want = [0.0; 9];
    usj_simd::pb_row_update(&prev, &mut got, 0.3, 0.7);
    scalar::pb_row_update(&prev, &mut want, 0.3, 0.7);
    assert_eq!(got.map(f64::to_bits), want.map(f64::to_bits));

    let a: Vec<u8> = (0..100).map(|i| (i % 5) as u8).collect();
    let mut b = a.clone();
    b[97] = 9;
    assert_eq!(usj_simd::common_prefix_len(&a, &b), 97);
    assert_eq!(usj_simd::common_suffix_len(&a, &b), 2);

    let mut out = Vec::new();
    usj_simd::intersect_sorted_ids(&[2, 5, 8], &[1, 2, 3, 8], &mut out);
    assert_eq!(out, vec![(0, 1), (2, 3)]);
}
