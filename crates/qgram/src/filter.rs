//! The complete q-gram filter for one string pair (Theorems 1–2).

use usj_model::{Prob, UncertainString};

use crate::alpha::alpha_for_segment;
use crate::equivalent::{AlphaMode, EquivalentSet};
use crate::partition::{partition, Segment};
use crate::selection::{window_range, SelectionPolicy};
use crate::soundness::{sound_at_least, window_region, Region};
use crate::tail::at_least;

/// Outcome of running the q-gram filter on a candidate pair.
#[derive(Debug, Clone, PartialEq)]
pub struct QGramOutcome {
    /// Per-segment match probabilities `α_x` (length = number of segments
    /// of the indexed string).
    pub alphas: Vec<Prob>,
    /// Number of segments with `α_x > 0`.
    pub matched_segments: usize,
    /// Number of segments the indexed string was partitioned into.
    pub num_segments: usize,
    /// Minimum number of matching segments required (`m − k`, ≥ 0).
    pub required_segments: usize,
    /// Theorem 2 upper bound on `Pr(ed(R,S) ≤ k)`; `1.0` when the filter
    /// could not bound the pair (short strings with `m ≤ k`, or instance
    /// caps exceeded).
    pub upper_bound: Prob,
    /// The filter's decision.
    pub verdict: FilterVerdict,
}

/// Decision of a probabilistic filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterVerdict {
    /// The pair cannot satisfy `Pr(ed ≤ k) > τ` and is pruned.
    Pruned,
    /// The pair survives and must be examined further.
    Candidate,
}

/// Configuration + scratch for applying q-gram filtering between uncertain
/// string pairs.
///
/// ```
/// use usj_model::{Alphabet, UncertainString};
/// use usj_qgram::{QGramFilter, FilterVerdict, SelectionPolicy};
///
/// let dna = Alphabet::dna();
/// let filter = QGramFilter::new(1, 0.25, 2).with_policy(SelectionPolicy::PositionBased);
/// let r = UncertainString::parse("GGATCC", &dna).unwrap();
/// let s3 = UncertainString::parse("G{(A,0.8),(G,0.2)}CT{(A,0.8),(C,0.1),(T,0.1)}C", &dna).unwrap();
/// let out = filter.evaluate(&r, &s3);
/// assert_eq!(out.verdict, FilterVerdict::Pruned); // bound 0.2 < τ = 0.25
/// ```
#[derive(Debug, Clone)]
pub struct QGramFilter {
    k: usize,
    tau: Prob,
    q: usize,
    policy: SelectionPolicy,
    alpha_mode: AlphaMode,
    max_instances: usize,
    paper_bound: bool,
}

impl QGramFilter {
    /// Creates a filter for edit threshold `k`, probability threshold
    /// `tau`, and q-gram length `q` (the paper uses `q = 3` by default).
    pub fn new(k: usize, tau: Prob, q: usize) -> Self {
        assert!(q >= 1, "q must be at least 1");
        assert!((0.0..=1.0).contains(&tau), "tau must lie in [0, 1]");
        QGramFilter {
            k,
            tau,
            q,
            policy: SelectionPolicy::default(),
            alpha_mode: AlphaMode::default(),
            max_instances: 1 << 14,
            paper_bound: false,
        }
    }

    /// Uses the paper's Theorem 2 bound verbatim (plain Poisson-binomial
    /// tail) instead of the sound bound. Can wrongly prune candidates
    /// whose probe windows share uncertain positions across segments —
    /// kept only for the paper-faithfulness ablation (see
    /// [`crate::soundness`]).
    pub fn with_paper_bound(mut self, on: bool) -> Self {
        self.paper_bound = on;
        self
    }

    /// Overrides the window selection policy.
    pub fn with_policy(mut self, policy: SelectionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the `α` computation mode (see [`AlphaMode`]).
    pub fn with_alpha_mode(mut self, mode: AlphaMode) -> Self {
        self.alpha_mode = mode;
        self
    }

    /// Caps the number of window instances enumerated per segment; pairs
    /// exceeding the cap are passed through un-pruned rather than risking
    /// exponential work.
    pub fn with_max_instances(mut self, max_instances: usize) -> Self {
        self.max_instances = max_instances;
        self
    }

    /// Edit threshold `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Probability threshold `τ`.
    pub fn tau(&self) -> Prob {
        self.tau
    }

    /// q-gram length.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Partitions an indexed string of length `len` exactly as the filter
    /// will (exposed so the index builder in `usj-core` agrees).
    pub fn segments(&self, len: usize) -> Vec<Segment> {
        partition(len, self.q, self.k)
    }

    /// Builds the equivalent sets `q(r, x)` of `probe` against an indexed
    /// string of length `indexed_len`; `None` entries mean "no window can
    /// align" (α_x = 0 for that segment).
    pub fn probe_sets(
        &self,
        probe: &UncertainString,
        indexed_len: usize,
    ) -> Vec<Option<EquivalentSet>> {
        self.segments(indexed_len)
            .iter()
            .map(|seg| {
                let range = window_range(self.policy, probe.len(), indexed_len, self.k, seg)?;
                EquivalentSet::build(probe, range, seg.len, self.alpha_mode, self.max_instances)
            })
            .collect()
    }

    /// Runs the filter on a pair: `probe` plays the role of `R`, `indexed`
    /// the role of the partitioned string `S`.
    pub fn evaluate(&self, probe: &UncertainString, indexed: &UncertainString) -> QGramOutcome {
        if probe.len().abs_diff(indexed.len()) > self.k {
            return QGramOutcome {
                alphas: Vec::new(),
                matched_segments: 0,
                num_segments: 0,
                required_segments: 1,
                upper_bound: 0.0,
                verdict: FilterVerdict::Pruned,
            };
        }
        let segments = self.segments(indexed.len());
        let m = segments.len();
        let required = m.saturating_sub(self.k);
        let mut alphas = Vec::with_capacity(m);
        let mut regions: Vec<Option<Region>> = Vec::with_capacity(m);
        let mut capped = false;
        for seg in &segments {
            let range = window_range(self.policy, probe.len(), indexed.len(), self.k, seg);
            regions.push(range.map(|r| window_region(r, seg.len)));
            let alpha = match range {
                None => 0.0,
                Some(range) => {
                    match EquivalentSet::build(
                        probe,
                        range,
                        seg.len,
                        self.alpha_mode,
                        self.max_instances,
                    ) {
                        // Cap exceeded: cannot evaluate this segment; be
                        // conservative (treat as certain match).
                        None => {
                            capped = true;
                            1.0
                        }
                        Some(set) => alpha_for_segment(&set, indexed, seg),
                    }
                }
            };
            alphas.push(alpha);
        }
        let matched = alphas.iter().filter(|&&a| a > 0.0).count();
        // Lemma 4/5 necessary condition.
        if matched < required {
            return QGramOutcome {
                alphas,
                matched_segments: matched,
                num_segments: m,
                required_segments: required,
                upper_bound: 0.0,
                verdict: FilterVerdict::Pruned,
            };
        }
        // Probabilistic pruning: the sound bound by default, the paper's
        // Theorem 2 tail in the ablation mode.
        let upper = if capped || required == 0 {
            1.0
        } else if self.paper_bound {
            at_least(&alphas, required)
        } else {
            sound_at_least(&alphas, &regions, probe, required)
        };
        let verdict = if upper <= self.tau {
            FilterVerdict::Pruned
        } else {
            FilterVerdict::Candidate
        };
        QGramOutcome {
            alphas,
            matched_segments: matched,
            num_segments: m,
            required_segments: required,
            upper_bound: upper,
            verdict,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_model::Alphabet;

    fn dna(text: &str) -> UncertainString {
        UncertainString::parse(text, &Alphabet::dna()).unwrap()
    }

    fn table1_filter() -> QGramFilter {
        QGramFilter::new(1, 0.25, 2).with_policy(SelectionPolicy::PositionBased)
    }

    /// Reproduces the paper's Table 1 / §3.1 walkthrough. The probe is the
    /// deterministic string r = GGATCC; the four collection strings behave
    /// as described in §3 (two fail the count condition, one is pruned by
    /// the probabilistic bound, one survives).
    #[test]
    fn table1_walkthrough() {
        let filter = table1_filter();
        let r = dna("GGATCC");

        // "A{C,G}A{C,G}AC": no segment matches at all.
        let s1 = dna("A{(C,0.5),(G,0.5)}A{(C,0.5),(G,0.5)}AC");
        let out = filter.evaluate(&r, &s1);
        assert_eq!(out.matched_segments, 0);
        assert_eq!(out.verdict, FilterVerdict::Pruned);

        // "AA{G,T}G{C,G,T}C": only the third segment matches (< m−k = 2).
        let s2 = dna("AA{(G,0.9),(T,0.1)}G{(C,0.3),(G,0.2),(T,0.5)}C");
        let out = filter.evaluate(&r, &s2);
        assert_eq!(out.matched_segments, 1);
        assert_eq!(out.required_segments, 2);
        assert_eq!(out.verdict, FilterVerdict::Pruned);

        // S3: α = (1, 0, 0.2), upper bound 0.2 < τ = 0.25 → pruned.
        let s3 = dna("G{(A,0.8),(G,0.2)}CT{(A,0.8),(C,0.1),(T,0.1)}C");
        let out = filter.evaluate(&r, &s3);
        assert_eq!(out.num_segments, 3);
        assert!((out.alphas[0] - 1.0).abs() < 1e-9);
        assert!((out.alphas[1] - 0.0).abs() < 1e-9);
        assert!((out.alphas[2] - 0.2).abs() < 1e-9);
        assert!((out.upper_bound - 0.2).abs() < 1e-9);
        assert_eq!(out.verdict, FilterVerdict::Pruned);

        // S4: α = (0.8, 0.5, 0), upper bound 0.4 > τ → candidate.
        let s4 = dna("{(G,0.8),(T,0.2)}GA{(C,0.3),(G,0.2),(T,0.5)}CT");
        let out = filter.evaluate(&r, &s4);
        assert!((out.alphas[0] - 0.8).abs() < 1e-9);
        assert!((out.alphas[1] - 0.5).abs() < 1e-9);
        assert!((out.alphas[2] - 0.0).abs() < 1e-9);
        assert!((out.upper_bound - 0.4).abs() < 1e-9);
        assert_eq!(out.verdict, FilterVerdict::Candidate);
    }

    #[test]
    fn length_gap_short_circuits() {
        let filter = QGramFilter::new(1, 0.1, 2);
        let out = filter.evaluate(&dna("ACGT"), &dna("ACGTACGT"));
        assert_eq!(out.verdict, FilterVerdict::Pruned);
        assert_eq!(out.upper_bound, 0.0);
    }

    #[test]
    fn identical_deterministic_strings_survive() {
        let filter = QGramFilter::new(1, 0.5, 2);
        let s = dna("ACGTAC");
        let out = filter.evaluate(&s, &s);
        assert_eq!(out.verdict, FilterVerdict::Candidate);
        assert!((out.upper_bound - 1.0).abs() < 1e-9);
        assert_eq!(out.matched_segments, out.num_segments);
    }

    /// Short strings where m ≤ k: no pruning possible, bound is 1.
    #[test]
    fn short_strings_pass_through() {
        let filter = QGramFilter::new(3, 0.9, 3);
        let out = filter.evaluate(&dna("AC"), &dna("GT"));
        // m = min(k+1, len) = 2 ≤ k = 3 → required 0 → bound 1.
        assert_eq!(out.required_segments, 0);
        assert_eq!(out.upper_bound, 1.0);
        assert_eq!(out.verdict, FilterVerdict::Candidate);
    }

    /// Theorem 1 (deterministic probe, uncertain indexed string): the
    /// upper bound dominates the exact probability computed by brute
    /// force over the indexed string's worlds.
    #[test]
    fn upper_bound_dominates_exact_deterministic_probe() {
        let filter = QGramFilter::new(1, 0.0, 2);
        let r = dna("GGATCC");
        for s_text in [
            "G{(A,0.8),(G,0.2)}CT{(A,0.8),(C,0.1),(T,0.1)}C",
            "{(G,0.8),(T,0.2)}GA{(C,0.3),(G,0.2),(T,0.5)}CT",
            "GGAT{(C,0.6),(G,0.4)}C",
            "GGATCC",
            "AA{(G,0.9),(T,0.1)}G{(C,0.3),(G,0.2),(T,0.5)}C",
        ] {
            let s = dna(s_text);
            let out = filter.evaluate(&r, &s);
            let r_world = r.most_probable_world().instance;
            let mut exact = 0.0;
            for w in s.worlds() {
                if usj_editdist::within_k(&r_world, &w.instance, 1) {
                    exact += w.prob;
                }
            }
            assert!(
                out.upper_bound >= exact - 1e-9,
                "s={s_text}: bound {} < exact {exact}",
                out.upper_bound
            );
        }
    }

    /// The shift-based policy never reports fewer matched segments than
    /// required for genuinely similar pairs (completeness smoke test with
    /// uncertain strings).
    #[test]
    fn similar_pairs_survive_both_policies() {
        for policy in [SelectionPolicy::PositionBased, SelectionPolicy::ShiftBased] {
            let filter = QGramFilter::new(2, 0.05, 2).with_policy(policy);
            let r = dna("ACGT{(A,0.6),(T,0.4)}CCA");
            let s = dna("ACG{(T,0.9),(G,0.1)}ACCA");
            let out = filter.evaluate(&r, &s);
            assert_eq!(out.verdict, FilterVerdict::Candidate, "{policy:?}: {out:?}");
        }
    }

    #[test]
    #[should_panic(expected = "tau must lie in [0, 1]")]
    fn invalid_tau_panics() {
        QGramFilter::new(1, 1.5, 2);
    }
}
