//! Equivalent-set construction for uncertain probe windows (paper §3.2).
//!
//! For a segment `S^x`, the probe contributes a set of *windows*
//! `q(R, x)` — uncertain substrings of `R` of the segment's length whose
//! start positions fall in the position-aware range. Each window
//! instantiates into deterministic strings with probabilities; summing
//! `Pr(W = S^x)` naively over windows double-counts worlds in which the
//! same instance string occurs at several overlapping starts (the paper's
//! `Pr(E1) = 1.32` example).
//!
//! The fix is the **equivalent set** `q(r, x)`: the distinct instance
//! strings `w`, each with the probability `p_r(w)` that `w` occurs in at
//! least one of the selected windows of `R`:
//!
//! 1. occurrences of `w` are sorted by start position and grouped into
//!    maximal runs of overlapping occurrences;
//! 2. within a group the paper's `β` recurrence adds each occurrence's
//!    probability and subtracts the probability that its overlap with the
//!    previous occurrence matches `R`;
//! 3. groups never overlap, so their events are independent:
//!    `p_r(w) = 1 − Π_i (1 − p(g_i))`.
//!
//! Three modes are provided (see [`AlphaMode`]): the paper's grouped
//! recurrence, the deliberately *naive* sum (kept for the ablation that
//! reproduces the paper's incorrect `1.32`), and an exact
//! possible-world computation used as a test oracle and accuracy ablation.

use std::collections::HashMap;

use usj_model::{Prob, Symbol, UncertainString};

/// How to combine multiple occurrences of the same window instance.
///
/// Soundness note (a reproduction finding, see DESIGN.md §3.3a): the
/// filter's upper bound needs `p_r(w)` values that are exact or
/// over-estimates. `Grouped` (the paper's §3.2 recurrence) can
/// *under*-estimate the union of overlapping occurrences — for two
/// occurrences it computes `p₁ + p₂ − p_overlap` where the true
/// intersection is the smaller `p₁·p₂/p_overlap` — so `Exact` is the
/// default and `Grouped` is kept for the paper-faithful ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AlphaMode {
    /// Paper §3.2: overlap grouping + `β` recurrence. Can slightly
    /// under-estimate `p_r(w)` for periodic windows; kept as the
    /// paper-faithful ablation.
    Grouped,
    /// No deduplication: `p_r(w)` is the plain sum of occurrence
    /// probabilities — the union bound. Over-estimates (sound but loose);
    /// reproduces the paper's `Pr(E1) = 1.32` example.
    Naive,
    /// Exact `Pr(w occurs in some selected window)` by enumerating the
    /// possible worlds of the probe region covered by each overlap group
    /// (default). Groups whose region exceeds the instance cap fall back
    /// to the union bound, which keeps the result an over-estimate. Only
    /// windows with *overlapping duplicate occurrences* (periodic
    /// instances) pay the enumeration; everything else is a plain
    /// product.
    #[default]
    Exact,
}

/// The equivalent set `q(r, x)`: distinct deterministic window instances
/// with their occurrence probabilities `p_r(w)`.
#[derive(Debug, Clone, PartialEq)]
pub struct EquivalentSet {
    entries: Vec<(Vec<Symbol>, Prob)>,
}

impl EquivalentSet {
    /// Builds the equivalent set for windows of length `window_len`
    /// starting at positions `starts` (inclusive range) of probe `probe`.
    ///
    /// `max_instances` caps the total number of `(instance, occurrence)`
    /// pairs enumerated; `None` is returned when the cap would be
    /// exceeded, signalling the caller to fall back to a trivial bound.
    pub fn build(
        probe: &UncertainString,
        starts: (usize, usize),
        window_len: usize,
        mode: AlphaMode,
        max_instances: usize,
    ) -> Option<EquivalentSet> {
        let (lo, hi) = starts;
        debug_assert!(hi + window_len <= probe.len());
        // occurrences[w] = list of (start, occurrence probability), start
        // ascending because we scan windows left to right.
        let mut occurrences: HashMap<Vec<Symbol>, Vec<(usize, Prob)>> = HashMap::new();
        let mut budget = max_instances;
        for start in lo..=hi {
            for world in probe.substring_worlds(start, window_len) {
                budget = budget.checked_sub(1)?;
                occurrences
                    .entry(world.instance)
                    .or_default()
                    .push((start, world.prob));
            }
        }
        let mut entries: Vec<(Vec<Symbol>, Prob)> = occurrences
            .into_iter()
            .map(|(w, occs)| {
                let p = match mode {
                    AlphaMode::Naive => occs.iter().map(|&(_, p)| p).sum(),
                    AlphaMode::Grouped => grouped_probability(&w, &occs, probe),
                    AlphaMode::Exact => exact_probability(&w, &occs, probe),
                };
                (w, p)
            })
            .collect();
        // Deterministic order helps tests and reproducible index builds.
        entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        Some(EquivalentSet { entries })
    }

    /// The `(instance, p_r(w))` entries, sorted by instance.
    pub fn entries(&self) -> &[(Vec<Symbol>, Prob)] {
        &self.entries
    }

    /// Number of distinct instances.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no window instance exists (only possible for an empty
    /// start range, which [`EquivalentSet::build`] never produces).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up `p_r(w)` for a specific instance.
    pub fn probability_of(&self, w: &[Symbol]) -> Prob {
        self.entries
            .binary_search_by(|(e, _)| e.as_slice().cmp(w))
            .map(|i| self.entries[i].1)
            .unwrap_or(0.0)
    }
}

/// Paper §3.2 Step 1 + Step 2: group overlapping occurrences and combine.
fn grouped_probability(w: &[Symbol], occs: &[(usize, Prob)], probe: &UncertainString) -> Prob {
    let len = w.len();
    let mut complement = 1.0; // Π (1 − p(g_i))
    let mut i = 0;
    while i < occs.len() {
        // β recurrence over the maximal run of pairwise-adjacent
        // overlapping occurrences starting at i.
        let mut beta = occs[i].1;
        let mut prev_start = occs[i].0;
        let mut j = i + 1;
        while j < occs.len() && occs[j].0 < prev_start + len {
            let (start_j, p_j) = occs[j];
            // Overlap of occurrence j with its predecessor: [y, z].
            let y = start_j;
            let z = prev_start + len - 1;
            let overlap_len = z - y + 1;
            let overlap_prob = probe.substring_match_prob(y, &w[..overlap_len]);
            beta += p_j - overlap_prob;
            prev_start = start_j;
            j += 1;
        }
        complement *= 1.0 - beta.clamp(0.0, 1.0);
        i = j;
    }
    (1.0 - complement).clamp(0.0, 1.0)
}

/// Exact occurrence probability: for each overlap group, enumerate the
/// possible worlds of the probe region the group covers and add the mass
/// of worlds containing `w` at one of the group's starts. Groups cover
/// disjoint regions, hence are independent. A group whose region has more
/// than [`EXACT_GROUP_WORLD_CAP`] worlds falls back to the union bound
/// (an over-estimate, preserving filter soundness).
fn exact_probability(w: &[Symbol], occs: &[(usize, Prob)], probe: &UncertainString) -> Prob {
    const EXACT_GROUP_WORLD_CAP: u64 = 4096;
    let len = w.len();
    let mut complement = 1.0;
    let mut i = 0;
    while i < occs.len() {
        let group_start = occs[i].0;
        let mut group_end = occs[i].0 + len; // exclusive
        let mut j = i + 1;
        while j < occs.len() && occs[j].0 < group_end {
            group_end = occs[j].0 + len;
            j += 1;
        }
        let hit = if j == i + 1 {
            // Single occurrence: its own probability.
            occs[i].1
        } else {
            let region = probe.substring(group_start, group_end - group_start);
            if region.num_worlds_capped(EXACT_GROUP_WORLD_CAP).is_some() {
                let starts: Vec<usize> = occs[i..j].iter().map(|&(s, _)| s).collect();
                let mut mass = 0.0;
                for world in region.worlds() {
                    let occurs = starts
                        .iter()
                        .any(|&s| &world.instance[s - group_start..s - group_start + len] == w);
                    if occurs {
                        mass += world.prob;
                    }
                }
                mass
            } else {
                // Union bound over the group's occurrences.
                occs[i..j].iter().map(|&(_, p)| p).sum::<f64>().min(1.0)
            }
        };
        complement *= 1.0 - hit;
        i = j;
    }
    (1.0 - complement).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_model::Alphabet;

    fn dna(text: &str) -> UncertainString {
        UncertainString::parse(text, &Alphabet::dna()).unwrap()
    }

    fn enc(text: &str) -> Vec<Symbol> {
        Alphabet::dna().encode(text).unwrap()
    }

    /// The paper's §3.2 worked example: R = A{(A,0.8),(C,0.2)}AATT,
    /// windows of length 3 at starts {0, 1}.
    #[test]
    fn paper_example_grouped() {
        let r = dna("A{(A,0.8),(C,0.2)}AATT");
        let set = EquivalentSet::build(&r, (0, 1), 3, AlphaMode::Grouped, 1000).unwrap();
        // q(r,1) = {(AAA, 0.8), (ACA, 0.2), (CAA, 0.2)}
        assert_eq!(set.len(), 3);
        assert!((set.probability_of(&enc("AAA")) - 0.8).abs() < 1e-9);
        assert!((set.probability_of(&enc("ACA")) - 0.2).abs() < 1e-9);
        assert!((set.probability_of(&enc("CAA")) - 0.2).abs() < 1e-9);
        assert_eq!(set.probability_of(&enc("TTT")), 0.0);
    }

    /// The naive mode reproduces the paper's double-counting example:
    /// AAA appears at both starts with probability 0.8 each.
    #[test]
    fn paper_example_naive_double_counts() {
        let r = dna("A{(A,0.8),(C,0.2)}AATT");
        let set = EquivalentSet::build(&r, (0, 1), 3, AlphaMode::Naive, 1000).unwrap();
        assert!((set.probability_of(&enc("AAA")) - 1.6).abs() < 1e-9);
    }

    /// Exact mode agrees with grouped mode on the paper example.
    #[test]
    fn paper_example_exact_agrees() {
        let r = dna("A{(A,0.8),(C,0.2)}AATT");
        let grouped = EquivalentSet::build(&r, (0, 1), 3, AlphaMode::Grouped, 1000).unwrap();
        let exact = EquivalentSet::build(&r, (0, 1), 3, AlphaMode::Exact, 1000).unwrap();
        for (w, p) in grouped.entries() {
            assert!((p - exact.probability_of(w)).abs() < 1e-9, "w={w:?}");
        }
    }

    /// Deterministic probes: every instance has probability exactly 1 and
    /// duplicates collapse (a periodic probe has the same window string at
    /// several starts).
    #[test]
    fn deterministic_periodic_probe() {
        let r = dna("AAAAA");
        for mode in [AlphaMode::Grouped, AlphaMode::Exact] {
            let set = EquivalentSet::build(&r, (0, 2), 3, mode, 1000).unwrap();
            assert_eq!(set.len(), 1);
            assert!(
                (set.probability_of(&enc("AAA")) - 1.0).abs() < 1e-9,
                "{mode:?}"
            );
        }
        // Naive mode triple counts.
        let set = EquivalentSet::build(&r, (0, 2), 3, AlphaMode::Naive, 1000).unwrap();
        assert!((set.probability_of(&enc("AAA")) - 3.0).abs() < 1e-9);
    }

    /// Non-overlapping duplicate occurrences combine with the
    /// inclusion-exclusion product across groups.
    #[test]
    fn independent_groups_union() {
        // w = "AC" occurs at starts 0 and 3 (no overlap), each with
        // probability 0.5.
        let r = dna("A{(C,0.5),(G,0.5)}TA{(C,0.5),(G,0.5)}T");
        for mode in [AlphaMode::Grouped, AlphaMode::Exact] {
            let set = EquivalentSet::build(&r, (0, 3), 2, mode, 1000).unwrap();
            // Pr(AC at 0 or 3) = 1 − 0.5·0.5 = 0.75.
            assert!(
                (set.probability_of(&enc("AC")) - 0.75).abs() < 1e-9,
                "{mode:?}"
            );
        }
    }

    /// Instance cap: exceeding it returns None.
    #[test]
    fn cap_exceeded_returns_none() {
        let r = dna("{(A,0.5),(C,0.5)}{(A,0.5),(C,0.5)}{(A,0.5),(C,0.5)}");
        assert!(EquivalentSet::build(&r, (0, 0), 3, AlphaMode::Grouped, 7).is_none());
        assert!(EquivalentSet::build(&r, (0, 0), 3, AlphaMode::Grouped, 8).is_some());
    }

    /// Grouped probabilities are always within [0, 1] even for highly
    /// periodic uncertain probes, and match the exact oracle within the
    /// documented approximation slack on random-ish inputs.
    #[test]
    fn grouped_close_to_exact_on_periodic_probe() {
        let r = dna("{(A,0.9),(C,0.1)}A{(A,0.9),(C,0.1)}A{(A,0.9),(C,0.1)}A");
        let grouped = EquivalentSet::build(&r, (0, 3), 3, AlphaMode::Grouped, 10_000).unwrap();
        let exact = EquivalentSet::build(&r, (0, 3), 3, AlphaMode::Exact, 10_000).unwrap();
        for (w, p) in grouped.entries() {
            let e = exact.probability_of(w);
            assert!(*p >= -1e-12 && *p <= 1.0 + 1e-12);
            // The β recurrence subtracts the full overlap-match probability,
            // which can under-approximate the union; it must never
            // over-approximate it by more than floating error.
            assert!(*p <= e + 1e-9, "w={w:?} grouped={p} exact={e}");
        }
    }
}
