//! Equivalent-set construction for uncertain probe windows (paper §3.2).
//!
//! For a segment `S^x`, the probe contributes a set of *windows*
//! `q(R, x)` — uncertain substrings of `R` of the segment's length whose
//! start positions fall in the position-aware range. Each window
//! instantiates into deterministic strings with probabilities; summing
//! `Pr(W = S^x)` naively over windows double-counts worlds in which the
//! same instance string occurs at several overlapping starts (the paper's
//! `Pr(E1) = 1.32` example).
//!
//! The fix is the **equivalent set** `q(r, x)`: the distinct instance
//! strings `w`, each with the probability `p_r(w)` that `w` occurs in at
//! least one of the selected windows of `R`:
//!
//! 1. occurrences of `w` are sorted by start position and grouped into
//!    maximal runs of overlapping occurrences;
//! 2. within a group the paper's `β` recurrence adds each occurrence's
//!    probability and subtracts the probability that its overlap with the
//!    previous occurrence matches `R`;
//! 3. groups never overlap, so their events are independent:
//!    `p_r(w) = 1 − Π_i (1 − p(g_i))`.
//!
//! Three modes are provided (see [`AlphaMode`]): the paper's grouped
//! recurrence, the deliberately *naive* sum (kept for the ablation that
//! reproduces the paper's incorrect `1.32`), and an exact
//! possible-world computation used as a test oracle and accuracy ablation.

use usj_model::{Prob, Symbol, UncertainString};

/// How to combine multiple occurrences of the same window instance.
///
/// Soundness note (a reproduction finding, see DESIGN.md §3.3a): the
/// filter's upper bound needs `p_r(w)` values that are exact or
/// over-estimates. `Grouped` (the paper's §3.2 recurrence) can
/// *under*-estimate the union of overlapping occurrences — for two
/// occurrences it computes `p₁ + p₂ − p_overlap` where the true
/// intersection is the smaller `p₁·p₂/p_overlap` — so `Exact` is the
/// default and `Grouped` is kept for the paper-faithful ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AlphaMode {
    /// Paper §3.2: overlap grouping + `β` recurrence. Can slightly
    /// under-estimate `p_r(w)` for periodic windows; kept as the
    /// paper-faithful ablation.
    Grouped,
    /// No deduplication: `p_r(w)` is the plain sum of occurrence
    /// probabilities — the union bound. Over-estimates (sound but loose);
    /// reproduces the paper's `Pr(E1) = 1.32` example.
    Naive,
    /// Exact `Pr(w occurs in some selected window)` by enumerating the
    /// possible worlds of the probe region covered by each overlap group
    /// (default). Groups whose region exceeds the instance cap fall back
    /// to the union bound, which keeps the result an over-estimate. Only
    /// windows with *overlapping duplicate occurrences* (periodic
    /// instances) pay the enumeration; everything else is a plain
    /// product.
    #[default]
    Exact,
}

/// The equivalent set `q(r, x)`: distinct deterministic window instances
/// with their occurrence probabilities `p_r(w)`.
///
/// Instances are stored in one flat symbol buffer (stride =
/// [`EquivalentSet::window_len`]) rather than one `Vec` per instance —
/// sets are rebuilt per probe window at high rates, and per-instance heap
/// boxes dominated construction. Short instances additionally carry their
/// big-endian packed [`pack_instance`] key so index resolution can look
/// them up as integers.
#[derive(Debug, Clone, PartialEq)]
pub struct EquivalentSet {
    /// Instance symbols: instance `i` is `flat[i*wl..(i+1)*wl]`, in
    /// ascending instance order.
    flat: Vec<Symbol>,
    /// `p_r(w)` per instance, parallel to the instances in `flat`.
    probs: Vec<Prob>,
    window_len: usize,
    /// Packed instance keys (ascending), parallel to `probs`; filled only
    /// when `window_len ≤ 8`.
    keys: Vec<u64>,
}

/// Packs a short instance (≤ 8 symbols) big-endian into a `u64`, so that
/// integer order equals lexicographic symbol order for equal lengths.
/// Keys of *different* lengths may collide; lookups must pair the key
/// with the instance length.
#[inline]
pub fn pack_instance(w: &[Symbol]) -> u64 {
    debug_assert!(w.len() <= 8);
    let mut key = 0u64;
    for &s in w {
        key = key << 8 | s as u64;
    }
    key
}

impl EquivalentSet {
    /// Builds the equivalent set for windows of length `window_len`
    /// starting at positions `starts` (inclusive range) of probe `probe`.
    ///
    /// `max_instances` caps the total number of `(instance, occurrence)`
    /// pairs enumerated; `None` is returned when the cap would be
    /// exceeded, signalling the caller to fall back to a trivial bound.
    pub fn build(
        probe: &UncertainString,
        starts: (usize, usize),
        window_len: usize,
        mode: AlphaMode,
        max_instances: usize,
    ) -> Option<EquivalentSet> {
        let (lo, hi) = starts;
        let wl = window_len;
        debug_assert!(hi + wl <= probe.len());
        // Worlds are grouped by one sort instead of a hash map: the
        // windows are tiny (a handful of short instances per start),
        // where sorting beats allocating and hashing every instance —
        // and the entries come out in the deterministic instance order
        // the caller needs anyway. (Profiled on the bench funnel; this
        // path dominates candidate generation.) Instances short enough
        // to pack into a `u64` sort as plain integers; longer ones land
        // in a flat stride-`wl` buffer.
        if wl <= 8 {
            return build_packed(probe, lo, hi, wl, mode, max_instances);
        }
        let mut flat: Vec<Symbol> = Vec::new();
        let mut meta: Vec<(usize, Prob)> = Vec::new(); // (start, prob) per world
        let mut budget = max_instances;
        for start in lo..=hi {
            let complete = probe.visit_substring_worlds(start, wl, |inst, p| {
                if budget == 0 {
                    return false;
                }
                budget -= 1;
                flat.extend_from_slice(inst);
                meta.push((start, p));
                true
            });
            if !complete {
                return None;
            }
        }
        // Instance-major, start-ascending: each instance's occurrences
        // form one contiguous run sorted by start, as the grouped/exact
        // recurrences require.
        let window = |o: u32| &flat[o as usize * wl..(o as usize + 1) * wl];
        let mut order: Vec<u32> = (0..meta.len() as u32).collect();
        order.sort_unstable_by(|&x, &y| {
            window(x)
                .cmp(window(y))
                .then(meta[x as usize].0.cmp(&meta[y as usize].0))
        });
        let mut set = EquivalentSet {
            flat: Vec::with_capacity(meta.len() * wl),
            probs: Vec::with_capacity(meta.len()),
            window_len: wl,
            keys: Vec::new(),
        };
        let mut occs: Vec<(usize, Prob)> = Vec::new();
        let mut i = 0;
        while i < order.len() {
            let w = window(order[i]);
            let mut j = i + 1;
            while j < order.len() && window(order[j]) == w {
                j += 1;
            }
            let p = if j == i + 1 {
                // Single occurrence (the common case): every mode
                // reduces to its own probability.
                meta[order[i] as usize].1
            } else {
                occs.clear();
                occs.extend(order[i..j].iter().map(|&o| meta[o as usize]));
                match mode {
                    AlphaMode::Naive => occs.iter().map(|&(_, p)| p).sum(),
                    AlphaMode::Grouped => grouped_probability(w, &occs, probe),
                    AlphaMode::Exact => exact_probability(w, &occs, probe),
                }
            };
            set.flat.extend_from_slice(w);
            set.probs.push(p);
            i = j;
        }
        Some(set)
    }

    /// Iterates the `(instance, p_r(w))` entries in ascending instance
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (&[Symbol], Prob)> + '_ {
        let wl = self.window_len;
        self.probs
            .iter()
            .enumerate()
            .map(move |(i, &p)| (&self.flat[i * wl..i * wl + wl], p))
    }

    /// Length every instance in this set shares.
    pub fn window_len(&self) -> usize {
        self.window_len
    }

    /// `p_r(w)` per instance, parallel to [`EquivalentSet::packed_keys`].
    pub fn probs(&self) -> &[Prob] {
        &self.probs
    }

    /// The ascending [`pack_instance`] keys of the instances, available
    /// when the window is short enough to pack (`window_len ≤ 8` — every
    /// q-gram partition the join produces qualifies).
    pub fn packed_keys(&self) -> Option<&[u64]> {
        if self.window_len <= 8 {
            Some(&self.keys)
        } else {
            None
        }
    }

    /// Number of distinct instances.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// `true` when no window instance exists (only possible for an empty
    /// start range, which [`EquivalentSet::build`] never produces).
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Looks up `p_r(w)` for a specific instance.
    pub fn probability_of(&self, w: &[Symbol]) -> Prob {
        let wl = self.window_len;
        let (mut lo, mut hi) = (0usize, self.probs.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.flat[mid * wl..mid * wl + wl].cmp(w) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return self.probs[mid],
            }
        }
        0.0
    }
}

/// [`EquivalentSet::build`] for windows of at most 8 symbols (every
/// q-gram partition the join runs produces segments this short): each
/// instance packs big-endian into a `u64`, so the occurrence sort
/// compares integers and the enumeration allocates nothing per world.
fn build_packed(
    probe: &UncertainString,
    lo: usize,
    hi: usize,
    wl: usize,
    mode: AlphaMode,
    max_instances: usize,
) -> Option<EquivalentSet> {
    debug_assert!(wl <= 8);
    // (packed instance, start, occurrence probability); big-endian
    // packing makes integer order equal lexicographic symbol order.
    // Pre-size from the per-start world counts — the buffer is filled in
    // a tight enumeration loop where growth reallocations show up.
    let mut cap = 0usize;
    for start in lo..=hi {
        let mut n = 1usize;
        for p in &probe.positions()[start..start + wl] {
            n = n.saturating_mul(p.num_alternatives());
        }
        cap = cap.saturating_add(n);
    }
    let mut occ: Vec<(u64, u32, Prob)> = Vec::with_capacity(cap.min(max_instances));
    let mut budget = max_instances;
    for start in lo..=hi {
        let complete = probe.visit_substring_worlds(start, wl, |inst, p| {
            if budget == 0 {
                return false;
            }
            budget -= 1;
            occ.push((pack_instance(inst), start as u32, p));
            true
        });
        if !complete {
            return None;
        }
    }
    // Instance-major, start-ascending (see `build`).
    occ.sort_unstable_by_key(|&(key, start, _)| (key, start));
    let mut set = EquivalentSet {
        flat: Vec::with_capacity(occ.len() * wl),
        probs: Vec::with_capacity(occ.len()),
        window_len: wl,
        keys: Vec::with_capacity(occ.len()),
    };
    let mut occs: Vec<(usize, Prob)> = Vec::new();
    let mut wbuf = [0u8; 8];
    let mut i = 0;
    while i < occ.len() {
        let key = occ[i].0;
        let mut j = i + 1;
        while j < occ.len() && occ[j].0 == key {
            j += 1;
        }
        for (t, b) in wbuf[..wl].iter_mut().enumerate() {
            *b = (key >> (8 * (wl - 1 - t))) as u8;
        }
        let w = &wbuf[..wl];
        let p = if j == i + 1 {
            // Single occurrence (the common case): every mode reduces
            // to its own probability.
            occ[i].2
        } else {
            occs.clear();
            occs.extend(occ[i..j].iter().map(|&(_, s, p)| (s as usize, p)));
            match mode {
                AlphaMode::Naive => occs.iter().map(|&(_, p)| p).sum(),
                AlphaMode::Grouped => grouped_probability(w, &occs, probe),
                AlphaMode::Exact => exact_probability(w, &occs, probe),
            }
        };
        set.flat.extend_from_slice(w);
        set.probs.push(p);
        set.keys.push(key);
        i = j;
    }
    Some(set)
}

/// Paper §3.2 Step 1 + Step 2: group overlapping occurrences and combine.
fn grouped_probability(w: &[Symbol], occs: &[(usize, Prob)], probe: &UncertainString) -> Prob {
    let len = w.len();
    let mut complement = 1.0; // Π (1 − p(g_i))
    let mut i = 0;
    while i < occs.len() {
        // β recurrence over the maximal run of pairwise-adjacent
        // overlapping occurrences starting at i.
        let mut beta = occs[i].1;
        let mut prev_start = occs[i].0;
        let mut j = i + 1;
        while j < occs.len() && occs[j].0 < prev_start + len {
            let (start_j, p_j) = occs[j];
            // Overlap of occurrence j with its predecessor: [y, z].
            let y = start_j;
            let z = prev_start + len - 1;
            let overlap_len = z - y + 1;
            let overlap_prob = probe.substring_match_prob(y, &w[..overlap_len]);
            beta += p_j - overlap_prob;
            prev_start = start_j;
            j += 1;
        }
        complement *= 1.0 - beta.clamp(0.0, 1.0);
        i = j;
    }
    (1.0 - complement).clamp(0.0, 1.0)
}

/// Exact occurrence probability: for each overlap group, enumerate the
/// possible worlds of the probe region the group covers and add the mass
/// of worlds containing `w` at one of the group's starts. Groups cover
/// disjoint regions, hence are independent. A group whose region has more
/// than [`EXACT_GROUP_WORLD_CAP`] worlds falls back to the union bound
/// (an over-estimate, preserving filter soundness).
fn exact_probability(w: &[Symbol], occs: &[(usize, Prob)], probe: &UncertainString) -> Prob {
    const EXACT_GROUP_WORLD_CAP: u64 = 4096;
    let len = w.len();
    let mut complement = 1.0;
    let mut i = 0;
    while i < occs.len() {
        let group_start = occs[i].0;
        let mut group_end = occs[i].0 + len; // exclusive
        let mut j = i + 1;
        while j < occs.len() && occs[j].0 < group_end {
            group_end = occs[j].0 + len;
            j += 1;
        }
        let hit = if j == i + 1 {
            // Single occurrence: its own probability.
            occs[i].1
        } else {
            let region = &probe.positions()[group_start..group_end];
            let worlds = region
                .iter()
                .try_fold(1u64, |n, p| {
                    let n = n.checked_mul(p.num_alternatives() as u64)?;
                    (n <= EXACT_GROUP_WORLD_CAP).then_some(n)
                })
                .is_some();
            if worlds {
                let group = &occs[i..j];
                let mut mass = 0.0;
                usj_model::worlds::visit_worlds(region, |inst, p| {
                    let occurs = group
                        .iter()
                        .any(|&(s, _)| &inst[s - group_start..s - group_start + len] == w);
                    if occurs {
                        mass += p;
                    }
                    true
                });
                mass
            } else {
                // Union bound over the group's occurrences.
                occs[i..j].iter().map(|&(_, p)| p).sum::<f64>().min(1.0)
            }
        };
        complement *= 1.0 - hit;
        i = j;
    }
    (1.0 - complement).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_model::Alphabet;

    fn dna(text: &str) -> UncertainString {
        UncertainString::parse(text, &Alphabet::dna()).unwrap()
    }

    fn enc(text: &str) -> Vec<Symbol> {
        Alphabet::dna().encode(text).unwrap()
    }

    /// The paper's §3.2 worked example: R = A{(A,0.8),(C,0.2)}AATT,
    /// windows of length 3 at starts {0, 1}.
    #[test]
    fn paper_example_grouped() {
        let r = dna("A{(A,0.8),(C,0.2)}AATT");
        let set = EquivalentSet::build(&r, (0, 1), 3, AlphaMode::Grouped, 1000).unwrap();
        // q(r,1) = {(AAA, 0.8), (ACA, 0.2), (CAA, 0.2)}
        assert_eq!(set.len(), 3);
        assert!((set.probability_of(&enc("AAA")) - 0.8).abs() < 1e-9);
        assert!((set.probability_of(&enc("ACA")) - 0.2).abs() < 1e-9);
        assert!((set.probability_of(&enc("CAA")) - 0.2).abs() < 1e-9);
        assert_eq!(set.probability_of(&enc("TTT")), 0.0);
    }

    /// The naive mode reproduces the paper's double-counting example:
    /// AAA appears at both starts with probability 0.8 each.
    #[test]
    fn paper_example_naive_double_counts() {
        let r = dna("A{(A,0.8),(C,0.2)}AATT");
        let set = EquivalentSet::build(&r, (0, 1), 3, AlphaMode::Naive, 1000).unwrap();
        assert!((set.probability_of(&enc("AAA")) - 1.6).abs() < 1e-9);
    }

    /// Exact mode agrees with grouped mode on the paper example.
    #[test]
    fn paper_example_exact_agrees() {
        let r = dna("A{(A,0.8),(C,0.2)}AATT");
        let grouped = EquivalentSet::build(&r, (0, 1), 3, AlphaMode::Grouped, 1000).unwrap();
        let exact = EquivalentSet::build(&r, (0, 1), 3, AlphaMode::Exact, 1000).unwrap();
        for (w, p) in grouped.iter() {
            assert!((p - exact.probability_of(w)).abs() < 1e-9, "w={w:?}");
        }
    }

    /// Deterministic probes: every instance has probability exactly 1 and
    /// duplicates collapse (a periodic probe has the same window string at
    /// several starts).
    #[test]
    fn deterministic_periodic_probe() {
        let r = dna("AAAAA");
        for mode in [AlphaMode::Grouped, AlphaMode::Exact] {
            let set = EquivalentSet::build(&r, (0, 2), 3, mode, 1000).unwrap();
            assert_eq!(set.len(), 1);
            assert!(
                (set.probability_of(&enc("AAA")) - 1.0).abs() < 1e-9,
                "{mode:?}"
            );
        }
        // Naive mode triple counts.
        let set = EquivalentSet::build(&r, (0, 2), 3, AlphaMode::Naive, 1000).unwrap();
        assert!((set.probability_of(&enc("AAA")) - 3.0).abs() < 1e-9);
    }

    /// Non-overlapping duplicate occurrences combine with the
    /// inclusion-exclusion product across groups.
    #[test]
    fn independent_groups_union() {
        // w = "AC" occurs at starts 0 and 3 (no overlap), each with
        // probability 0.5.
        let r = dna("A{(C,0.5),(G,0.5)}TA{(C,0.5),(G,0.5)}T");
        for mode in [AlphaMode::Grouped, AlphaMode::Exact] {
            let set = EquivalentSet::build(&r, (0, 3), 2, mode, 1000).unwrap();
            // Pr(AC at 0 or 3) = 1 − 0.5·0.5 = 0.75.
            assert!(
                (set.probability_of(&enc("AC")) - 0.75).abs() < 1e-9,
                "{mode:?}"
            );
        }
    }

    /// Instance cap: exceeding it returns None.
    #[test]
    fn cap_exceeded_returns_none() {
        let r = dna("{(A,0.5),(C,0.5)}{(A,0.5),(C,0.5)}{(A,0.5),(C,0.5)}");
        assert!(EquivalentSet::build(&r, (0, 0), 3, AlphaMode::Grouped, 7).is_none());
        assert!(EquivalentSet::build(&r, (0, 0), 3, AlphaMode::Grouped, 8).is_some());
    }

    /// Grouped probabilities are always within [0, 1] even for highly
    /// periodic uncertain probes, and match the exact oracle within the
    /// documented approximation slack on random-ish inputs.
    #[test]
    fn grouped_close_to_exact_on_periodic_probe() {
        let r = dna("{(A,0.9),(C,0.1)}A{(A,0.9),(C,0.1)}A{(A,0.9),(C,0.1)}A");
        let grouped = EquivalentSet::build(&r, (0, 3), 3, AlphaMode::Grouped, 10_000).unwrap();
        let exact = EquivalentSet::build(&r, (0, 3), 3, AlphaMode::Exact, 10_000).unwrap();
        for (w, p) in grouped.iter() {
            let e = exact.probability_of(w);
            assert!(p >= -1e-12 && p <= 1.0 + 1e-12);
            // The β recurrence subtracts the full overlap-match probability,
            // which can under-approximate the union; it must never
            // over-approximate it by more than floating error.
            assert!(p <= e + 1e-9, "w={w:?} grouped={p} exact={e}");
        }
    }
}
