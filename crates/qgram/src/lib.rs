//! q-gram filtering with probabilistic pruning for uncertain strings
//! (paper §2.1 and §3).
//!
//! The pipeline implemented here:
//!
//! 1. **Partition** the indexed string `S` into `m = max(k+1, ⌊|S|/q⌋)`
//!    disjoint segments with the even-partition scheme ([`partition`]).
//! 2. **Select** candidate windows of the probe `R` for each segment using
//!    position-aware substring selection ([`selection`]); both the
//!    position-based range `[p−k, p+k]` (used by the paper's Table 1) and
//!    the tighter shift-based range of size `≤ k+1` (used by the paper's
//!    text, following Li et al.'s Pass-Join) are provided.
//! 3. Convert the uncertain window multiset `q(R,x)` into the **equivalent
//!    set** `q(r,x)` of distinct deterministic strings with correctly
//!    combined probabilities (paper §3.2's overlap grouping —
//!    [`equivalent`]).
//! 4. Compute the **segment match probability** `α_x = Pr(E_x)`
//!    ([`alpha`]), the probability that segment `S^x` equals one of the
//!    probe's selected windows.
//! 5. Bound `Pr(ed(R,S) ≤ k)` by the Poisson-binomial tail probability
//!    that at least `m−k` segments match ([`tail`], Theorems 1–2), after
//!    the necessary-condition count check (Lemmas 2/4/5).
//!
//! [`filter::QGramFilter`] packages steps 1–5 for a single string pair;
//! the join driver in `usj-core` runs the same mathematics through its
//! inverted indices instead.
//!
//! **Reproduction finding:** Theorem 2's bound assumes the per-segment
//! match events are independent, which fails when an *uncertain* probe
//! position is shared by two segments' windows — property testing found
//! candidates the paper-faithful filter wrongly prunes. The [`soundness`]
//! module replaces the bound with a provably sound one that degenerates
//! to the paper's exactly when the independence assumption actually
//! holds (deterministic probes, disjoint window regions).

#![warn(missing_docs)]

pub mod alpha;
pub mod equivalent;
pub mod filter;
pub mod partition;
pub mod selection;
pub mod soundness;
pub mod tail;

pub use alpha::{alpha_for_segment, segment_instances};
pub use equivalent::{pack_instance, AlphaMode, EquivalentSet};
pub use filter::{FilterVerdict, QGramFilter, QGramOutcome};
pub use partition::{partition, Segment};
pub use selection::{window_range, SelectionPolicy};
pub use soundness::{independent_family, sound_at_least, window_region, Region, TailBounder};
pub use tail::{at_least, exactly, markov_at_least, poisson_binomial};
