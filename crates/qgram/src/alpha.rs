//! Segment match probabilities `α_x` (paper §3.1–§3.2).
//!
//! `α_x = Pr(E_x)` where `E_x` is the event that segment `S^x` of the
//! indexed string equals one of the probe's selected window instances.
//! Because distinct instances of the same length are disjoint outcomes of
//! `S^x`,
//!
//! ```text
//! α_x = Σ_{w ∈ q(r,x)} p_r(w) · Pr(w = S^x)
//! ```
//!
//! is an exact union probability given correct `p_r(w)` (see
//! [`crate::equivalent`]).

use usj_model::{Prob, Symbol, UncertainString};

use crate::equivalent::EquivalentSet;
use crate::partition::Segment;

/// Enumerates all deterministic instances of `segment` of `indexed`
/// together with their probabilities, or `None` if more than
/// `max_instances` exist.
///
/// This is exactly what the join index stores per segment (§4: "we
/// instantiate all possibilities of its segment and add them to the
/// inverted index along with their probabilities").
pub fn segment_instances(
    indexed: &UncertainString,
    segment: &Segment,
    max_instances: usize,
) -> Option<Vec<(Vec<Symbol>, Prob)>> {
    let mut out = Vec::new();
    for world in indexed.substring_worlds(segment.start, segment.len) {
        if out.len() >= max_instances {
            return None;
        }
        out.push((world.instance, world.prob));
    }
    Some(out)
}

/// Computes `α_x` for one segment by scanning the equivalent set against
/// the uncertain segment directly (index-free path, used by
/// [`crate::filter::QGramFilter`] and tests; the join driver computes the
/// same sum through its inverted lists).
pub fn alpha_for_segment(
    equivalent: &EquivalentSet,
    indexed: &UncertainString,
    segment: &Segment,
) -> Prob {
    let mut alpha = 0.0;
    for (w, p_r) in equivalent.iter() {
        if p_r == 0.0 {
            continue;
        }
        let m = indexed.substring_match_prob(segment.start, w);
        debug_check_addend(p_r, m);
        alpha += p_r * m;
    }
    // Note: the *raw* sum may legitimately exceed 1 — AlphaMode::Naive
    // double-counts overlapping instances (the paper's 1.32 example below)
    // — so only the clamped result is asserted to be a probability, never
    // the sum itself.
    debug_assert!(
        alpha.is_finite() && alpha >= 0.0,
        "accumulated alpha {alpha} is negative or non-finite"
    );
    alpha.clamp(0.0, 1.0)
}

/// Debug-build invariant on each α addend: the entry weight must be a
/// finite non-negative mass and the substring match probability a real
/// probability — a value outside `[0, 1]` means the indexed string's pdfs
/// were not normalized. Compiles to nothing in release builds.
#[cfg(debug_assertions)]
fn debug_check_addend(p_r: f64, m: f64) {
    debug_assert!(
        p_r.is_finite() && p_r >= 0.0,
        "equivalent-set weight {p_r} is negative or non-finite"
    );
    debug_assert!(
        (0.0..=1.0 + 1e-9).contains(&m),
        "substring match probability {m} lies outside [0, 1]"
    );
}

#[cfg(not(debug_assertions))]
#[inline(always)]
fn debug_check_addend(_: f64, _: f64) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equivalent::AlphaMode;
    use usj_model::Alphabet;

    fn dna(text: &str) -> UncertainString {
        UncertainString::parse(text, &Alphabet::dna()).unwrap()
    }

    /// The paper's §3.2 example end-to-end: P(E1) = 0.68.
    #[test]
    fn paper_example_alpha() {
        let r = dna("A{(A,0.8),(C,0.2)}AATT");
        let s = dna("A{(A,0.8),(C,0.2)}AGCT");
        let seg = Segment { start: 0, len: 3 };
        let set = EquivalentSet::build(&r, (0, 1), 3, AlphaMode::Grouped, 1000).unwrap();
        let alpha = alpha_for_segment(&set, &s, &seg);
        assert!((alpha - 0.68).abs() < 1e-9, "alpha = {alpha}");
    }

    /// The naive equivalent set produces the paper's incorrect 1.32 before
    /// clamping; `alpha_for_segment` clamps, so compute the raw sum here.
    #[test]
    fn paper_example_naive_alpha_is_wrong() {
        let r = dna("A{(A,0.8),(C,0.2)}AATT");
        let s = dna("A{(A,0.8),(C,0.2)}AGCT");
        let set = EquivalentSet::build(&r, (0, 1), 3, AlphaMode::Naive, 1000).unwrap();
        let raw: f64 = set
            .iter()
            .map(|(w, p)| p * s.substring_match_prob(0, w))
            .sum();
        assert!((raw - 1.32).abs() < 1e-9, "raw = {raw}");
    }

    /// α equals the exact joint probability of the segment-match event,
    /// verified by enumerating the joint worlds of probe region and
    /// segment.
    #[test]
    fn alpha_matches_joint_world_enumeration() {
        let r = dna("{(A,0.6),(C,0.4)}{(A,0.5),(G,0.5)}AT");
        let s = dna("{(A,0.7),(G,0.3)}{(A,0.2),(C,0.8)}GT");
        let seg = Segment { start: 0, len: 2 };
        let starts = (0, 2);
        let set = EquivalentSet::build(&r, starts, 2, AlphaMode::Exact, 10_000).unwrap();
        let alpha = alpha_for_segment(&set, &s, &seg);

        // Brute force: enumerate worlds of R and of S^x; the event is
        // "some window of the R-world equals the S^x-world".
        let mut exact = 0.0;
        for rw in r.worlds() {
            for sw in s.substring_worlds(seg.start, seg.len) {
                let hit = (starts.0..=starts.1).any(|st| rw.instance[st..st + 2] == sw.instance);
                if hit {
                    exact += rw.prob * sw.prob;
                }
            }
        }
        assert!((alpha - exact).abs() < 1e-9, "alpha={alpha} exact={exact}");
    }

    #[test]
    fn segment_instance_enumeration() {
        let s = dna("A{(C,0.5),(G,0.5)}{(A,0.3),(T,0.7)}G");
        let seg = Segment { start: 1, len: 2 };
        let inst = segment_instances(&s, &seg, 100).unwrap();
        assert_eq!(inst.len(), 4);
        let total: f64 = inst.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(segment_instances(&s, &seg, 3).is_none());
    }

    // Debug-only invariant layer: corrupted addends trip the check.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lies outside [0, 1]")]
    fn debug_check_catches_bad_match_probability() {
        debug_check_addend(0.5, 1.7);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "negative or non-finite")]
    fn debug_check_catches_negative_weight() {
        debug_check_addend(-0.25, 0.5);
    }

    #[test]
    fn alpha_zero_when_disjoint() {
        let r = dna("TTTT");
        let s = dna("AAAA");
        let seg = Segment { start: 0, len: 2 };
        let set = EquivalentSet::build(&r, (0, 2), 2, AlphaMode::Grouped, 100).unwrap();
        assert_eq!(alpha_for_segment(&set, &s, &seg), 0.0);
    }
}
