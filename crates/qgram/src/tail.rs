//! Poisson-binomial tail probabilities (paper §3.1).
//!
//! Given `m` independent events with probabilities `α_1 … α_m`, the paper's
//! DP computes the probability that *exactly* `y` of them happen:
//!
//! ```text
//! P(i, j) = α_i · P(i−1, j−1) + (1 − α_i) · P(i−1, j)
//! ```
//!
//! The upper bound of Theorem 2 is the tail `Pr(#events ≥ m−k)`. Two
//! implementations are provided: [`poisson_binomial`] fills the full
//! distribution in `O(m²)`, while [`at_least`] tracks only the top
//! `k+1` counts in `O(m(k+1))` — the `O(m(m−k))` improvement the paper
//! mentions in passing (counting successes ≥ m−k is the same as counting
//! failures ≤ k).

use usj_model::Prob;

/// Full Poisson-binomial distribution: returns `dist` with
/// `dist[y] = Pr(exactly y of the events happen)`, `len = m+1`. `O(m²)`.
pub fn poisson_binomial(alphas: &[Prob]) -> Vec<Prob> {
    let m = alphas.len();
    // Double-buffered rows so the update is a forward scan the SIMD
    // row kernel can vectorise; entries past the active prefix are
    // still zero from init (each buffer is only ever written on a
    // prefix that grows by one per event), so reading prev[i+1] = 0
    // reproduces the in-place downward recurrence bit-for-bit. The
    // scratch lives in `buf` (stack-backed for the row widths the
    // filter produces), so the only heap allocation is the returned
    // distribution itself.
    let mut buf = RowScratch::new(m + 1);
    let (mut prev, mut cur) = buf.rows();
    prev[0] = 1.0;
    for (i, &a) in alphas.iter().enumerate() {
        usj_simd::pb_row_update(&prev[..i + 2], &mut cur[..i + 2], 1.0 - a, a);
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[..m + 1].to_vec()
}

/// Double-buffer scratch for the DP rows: a fixed stack array for the
/// row widths the filter actually produces (segment counts are small),
/// spilling to the heap above that. Zero-initialised either way — the
/// kernels rely on the untouched suffix staying zero.
enum RowScratch {
    Stack([f64; 2 * RowScratch::STACK_WIDTH]),
    Heap(Vec<f64>),
}

impl RowScratch {
    const STACK_WIDTH: usize = 64;

    fn new(width: usize) -> RowScratch {
        if width <= RowScratch::STACK_WIDTH {
            RowScratch::Stack([0.0; 2 * RowScratch::STACK_WIDTH])
        } else {
            RowScratch::Heap(vec![0.0; 2 * width])
        }
    }

    /// The two equal-width zeroed rows.
    fn rows(&mut self) -> (&mut [f64], &mut [f64]) {
        match self {
            RowScratch::Stack(buf) => buf.split_at_mut(RowScratch::STACK_WIDTH),
            RowScratch::Heap(buf) => {
                let half = buf.len() / 2;
                buf.split_at_mut(half)
            }
        }
    }
}

/// `Pr(exactly y events happen)` via the full DP.
pub fn exactly(alphas: &[Prob], y: usize) -> Prob {
    if y > alphas.len() {
        return 0.0;
    }
    poisson_binomial(alphas)[y]
}

/// Tail probability `Pr(at least `need` events happen)` in
/// `O(m · min(need́, m−need+1))` time — the efficient form used by the
/// filter (Theorem 2's bound with `need = m−k`).
///
/// `need = 0` returns 1; `need > m` returns 0.
pub fn at_least(alphas: &[Prob], need: usize) -> Prob {
    let m = alphas.len();
    if need == 0 {
        return 1.0;
    }
    if need > m {
        return 0.0;
    }
    let fails_allowed = m - need; // tail ⟺ at most `fails_allowed` failures
    if fails_allowed < need {
        // Track failure counts 0..=fails_allowed: O(m·(m−need+1)).
        // Success keeps the count (·α), failure steps it (·(1−α)).
        let width = fails_allowed + 1;
        let mut buf = RowScratch::new(width);
        let (mut prev, mut cur) = buf.rows();
        prev[0] = 1.0;
        for &a in alphas {
            usj_simd::pb_row_update(&prev[..width], &mut cur[..width], a, 1.0 - a);
            std::mem::swap(&mut prev, &mut cur);
        }
        prev[..width].iter().sum::<f64>().clamp(0.0, 1.0)
    } else {
        // Complement: Pr(≥ need) = 1 − Pr(≤ need−1 successes).
        let mut buf = RowScratch::new(need);
        let (mut prev, mut cur) = buf.rows();
        prev[0] = 1.0;
        let mut overflow = 0.0; // mass that crossed the `need` boundary
        for &a in alphas {
            overflow += prev[need - 1] * a;
            usj_simd::pb_row_update(&prev[..need], &mut cur[..need], 1.0 - a, a);
            std::mem::swap(&mut prev, &mut cur);
        }
        overflow.clamp(0.0, 1.0)
    }
}

/// Markov (first-moment) tail bound: `Pr(≥ need events) ≤ E[#events]/need`,
/// valid under **arbitrary dependence** between the events — the sound
/// fallback used when segment-match events share uncertain probe
/// positions (see [`crate::soundness`]).
pub fn markov_at_least(alphas: &[Prob], need: usize) -> Prob {
    if need == 0 {
        return 1.0;
    }
    let mean: f64 = alphas.iter().sum();
    (mean / need as f64).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_at_least(alphas: &[Prob], need: usize) -> Prob {
        // Enumerate all 2^m outcomes.
        let m = alphas.len();
        let mut total = 0.0;
        for mask in 0u32..(1 << m) {
            let mut p = 1.0;
            let mut count = 0;
            for (i, &a) in alphas.iter().enumerate() {
                if mask >> i & 1 == 1 {
                    p *= a;
                    count += 1;
                } else {
                    p *= 1.0 - a;
                }
            }
            if count >= need {
                total += p;
            }
        }
        total
    }

    #[test]
    fn paper_example_tail() {
        // S3 from Table 1: α = (1, 0, 0.2), m = 3, k = 1 → Pr(≥ 2) = 0.2.
        assert!((at_least(&[1.0, 0.0, 0.2], 2) - 0.2).abs() < 1e-12);
        // S4: α = (0.8, 0.5, 0) → Pr(≥ 2) = 0.4.
        assert!((at_least(&[0.8, 0.5, 0.0], 2) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn lemma3_product_form() {
        // m = k+1: Pr(≥ 1) = 1 − Π(1−α_x) (Lemma 3 / 5).
        let alphas = [0.3, 0.5, 0.9];
        let expect = 1.0 - 0.7 * 0.5 * 0.1;
        assert!((at_least(&alphas, 1) - expect).abs() < 1e-12);
    }

    #[test]
    fn boundary_needs() {
        let alphas = [0.4, 0.6];
        assert_eq!(at_least(&alphas, 0), 1.0);
        assert_eq!(at_least(&alphas, 3), 0.0);
        assert!((at_least(&alphas, 2) - 0.24).abs() < 1e-12);
        assert_eq!(at_least(&[], 0), 1.0);
        assert_eq!(at_least(&[], 1), 0.0);
    }

    #[test]
    fn full_distribution_sums_to_one() {
        let alphas = [0.2, 0.7, 0.5, 0.9];
        let dist = poisson_binomial(&alphas);
        assert_eq!(dist.len(), 5);
        let total: f64 = dist.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((exactly(&alphas, 0) - 0.8 * 0.3 * 0.5 * 0.1).abs() < 1e-12);
        assert!((exactly(&alphas, 4) - 0.2 * 0.7 * 0.5 * 0.9).abs() < 1e-12);
        assert_eq!(exactly(&alphas, 5), 0.0);
    }

    #[test]
    fn truncated_matches_full_and_naive() {
        let cases: Vec<Vec<f64>> = vec![
            vec![0.5],
            vec![0.1, 0.9],
            vec![0.3, 0.3, 0.3],
            vec![0.25, 0.5, 0.75, 1.0],
            vec![0.0, 0.0, 0.2, 0.8, 0.6],
            vec![0.9, 0.8, 0.7, 0.6, 0.5, 0.4],
        ];
        for alphas in &cases {
            let dist = poisson_binomial(alphas);
            for need in 0..=alphas.len() + 1 {
                let tail_full: f64 = dist.iter().skip(need).sum();
                let tail = at_least(alphas, need);
                let naive = naive_at_least(alphas, need);
                assert!((tail - naive).abs() < 1e-9, "alphas={alphas:?} need={need}");
                assert!(
                    (tail_full - naive).abs() < 1e-9,
                    "alphas={alphas:?} need={need}"
                );
            }
        }
    }

    #[test]
    fn markov_dominates_any_dependence() {
        // Markov must dominate the independent tail (it allows more
        // adversarial dependence).
        let alphas = [0.3, 0.5, 0.9, 0.2];
        for need in 1..=4 {
            assert!(markov_at_least(&alphas, need) >= at_least(&alphas, need) - 1e-12);
        }
        assert_eq!(markov_at_least(&alphas, 0), 1.0);
        assert_eq!(markov_at_least(&[], 2), 0.0);
        // Perfectly correlated events: Pr(all 3 fire) can be as high as
        // 0.5 with these marginals; Markov yields 0.5 exactly.
        assert!((markov_at_least(&[0.5, 0.5, 0.5], 3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_probabilities() {
        // All-certain events.
        assert_eq!(at_least(&[1.0, 1.0, 1.0], 3), 1.0);
        assert_eq!(at_least(&[1.0, 1.0, 0.0], 3), 0.0);
        assert!((at_least(&[1.0, 1.0, 0.0], 2) - 1.0).abs() < 1e-12);
    }
}
