//! Sound replacement for Theorem 2's tail bound (a reproduction finding).
//!
//! The paper computes `Pr(at least m−k segments match)` with a
//! Poisson-binomial DP, which assumes the per-segment match events are
//! independent. When the probe `R` is **uncertain** and two segments'
//! candidate windows share an *uncertain* probe position, the events are
//! positively correlated and the DP can **undershoot** the true
//! probability — property testing produced concrete candidates that the
//! paper-faithful filter would wrongly prune (see DESIGN.md §3.3a for one
//! counterexample). When the probe is deterministic, or the shared
//! positions are certain, the events are genuinely independent
//! (conditioning on the certain characters changes nothing) and the
//! paper's bound is exact for `Pr(C)`.
//!
//! This module therefore:
//!
//! 1. detects which segments *conflict* — their window regions share at
//!    least one uncertain probe position ([`conflict_regions`]);
//! 2. selects a maximum subfamily `A` of pairwise non-conflicting
//!    segments by interval scheduling (regions are intervals, so greedy
//!    by earliest region end is optimal);
//! 3. bounds the tail soundly ([`sound_at_least`]) as the minimum of
//!    * the Poisson-binomial tail over `A` with the requirement reduced
//!      by the excluded segments (they are assumed to match — events in
//!      `A` are mutually independent, so this is a valid upper bound), and
//!    * the Markov bound `Σα/need` over all segments (valid under any
//!      dependence).
//!
//! With a deterministic probe no segment conflicts, `A` is everything,
//! and the bound reduces to the paper's — Table 1 reproduces unchanged.

use usj_model::{Prob, UncertainString};

use crate::tail::at_least;

/// Inclusive probe-position interval `[start, end]` covered by a
/// segment's candidate windows.
pub type Region = (usize, usize);

/// The region covered by windows starting in `[lo, hi]` of length `len`.
#[inline]
pub fn window_region(starts: (usize, usize), len: usize) -> Region {
    (starts.0, starts.1 + len - 1)
}

/// Greedy maximum subfamily of segments whose regions do not share any
/// uncertain probe position, by interval scheduling over the conflict
/// intervals. Returns indices into `regions` (entries that are `None`
/// — segments without windows — are never selected).
///
/// Two segments conflict iff the intersection of their regions contains
/// at least one position where `probe` is uncertain. To make the greedy
/// selection optimal we shrink each region to its uncertain-position
/// span: certain positions can never cause a conflict.
pub fn independent_family(regions: &[Option<Region>], probe: &UncertainString) -> Vec<usize> {
    // Uncertain span per segment: the smallest interval containing the
    // uncertain positions inside the region (None = no uncertain
    // positions, conflicts impossible for this segment).
    let mut items: Vec<(usize, Option<Region>)> = Vec::new();
    for (x, region) in regions.iter().enumerate() {
        let Some(&(a, b)) = region.as_ref() else {
            continue;
        };
        let mut span: Option<Region> = None;
        for pos in a..=b.min(probe.len().saturating_sub(1)) {
            if !probe.position(pos).is_certain() {
                span = Some(match span {
                    None => (pos, pos),
                    Some((lo, _)) => (lo, pos),
                });
            }
        }
        items.push((x, span));
    }
    // Segments with no uncertain span never conflict: always selected.
    let mut selected: Vec<usize> = items
        .iter()
        .filter(|(_, span)| span.is_none())
        .map(|&(x, _)| x)
        .collect();
    // Interval scheduling on the uncertain spans (sorted by span end).
    let mut spans: Vec<(usize, Region)> = items
        .iter()
        .filter_map(|&(x, span)| span.map(|s| (x, s)))
        .collect();
    spans.sort_unstable_by_key(|&(_, (_, end))| end);
    let mut last_end: Option<usize> = None;
    for (x, (start, end)) in spans {
        if last_end.is_none_or(|le| start > le) {
            selected.push(x);
            last_end = Some(end);
        }
    }
    selected.sort_unstable();
    selected
}

/// Precomputed independence structure for one (probe, indexed-length)
/// combination — build once, bound many candidates.
#[derive(Debug, Clone)]
pub struct TailBounder {
    /// Independent family (indices into the segment list).
    selected: Vec<usize>,
    /// Segments with a window range at all.
    possible: Vec<usize>,
}

impl TailBounder {
    /// Builds the bounder from the per-segment window regions of a probe.
    pub fn new(regions: &[Option<Region>], probe: &UncertainString) -> TailBounder {
        TailBounder {
            selected: independent_family(regions, probe),
            possible: (0..regions.len())
                .filter(|&x| regions[x].is_some())
                .collect(),
        }
    }

    /// The independent family chosen.
    pub fn selected(&self) -> &[usize] {
        &self.selected
    }

    /// Sound upper bound on `Pr(at least `need` segments match)` given
    /// per-segment match probabilities `alphas` (exact or over-estimates).
    pub fn bound(&self, alphas: &[Prob], need: usize) -> Prob {
        if need == 0 {
            return 1.0;
        }
        if self.possible.len() < need {
            return 0.0;
        }
        let excluded = self.possible.len() - self.selected.len();
        // Poisson-binomial over the independent family, requirement
        // reduced by the (assumed-matching) excluded segments. The
        // family is gathered into a stack buffer — `bound` runs once per
        // surviving candidate, and partitions rarely exceed a few dozen
        // segments.
        let mut stack = [0.0; 64];
        let heap: Vec<Prob>;
        let family_alphas: &[Prob] = if self.selected.len() <= stack.len() {
            for (d, &x) in stack.iter_mut().zip(&self.selected) {
                *d = alphas[x];
            }
            &stack[..self.selected.len()]
        } else {
            heap = self.selected.iter().map(|&x| alphas[x]).collect();
            &heap
        };
        let pb = at_least(family_alphas, need.saturating_sub(excluded));
        // Markov over everything, valid under arbitrary dependence; the
        // bound only needs the sum, so no gather at all.
        let mean: f64 = self.possible.iter().map(|&x| alphas[x]).sum();
        pb.min((mean / need as f64).clamp(0.0, 1.0))
    }
}

/// Sound upper bound on `Pr(at least `need` of the segments match)`.
///
/// * `alphas[x]` — match probability of segment `x` (must be exact or an
///   over-estimate; see [`crate::equivalent::AlphaMode`]);
/// * `regions[x]` — probe region of segment `x`'s windows, `None` when
///   the segment has no candidate window (`α_x = 0` surely);
/// * `probe` — the (possibly uncertain) probe string.
///
/// One-shot form of [`TailBounder`].
pub fn sound_at_least(
    alphas: &[Prob],
    regions: &[Option<Region>],
    probe: &UncertainString,
    need: usize,
) -> Prob {
    debug_assert_eq!(alphas.len(), regions.len());
    TailBounder::new(regions, probe).bound(alphas, need)
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_model::{Alphabet, Position};

    fn dna(text: &str) -> UncertainString {
        UncertainString::parse(text, &Alphabet::dna()).unwrap()
    }

    #[test]
    fn deterministic_probe_selects_everything() {
        let probe = dna("GGATCC");
        let regions = vec![Some((0, 1)), Some((1, 4)), Some((3, 5))];
        let selected = independent_family(&regions, &probe);
        assert_eq!(selected, vec![0, 1, 2]);
        // Bound equals the plain Poisson-binomial tail.
        let alphas = [1.0, 0.0, 0.2];
        let bound = sound_at_least(&alphas, &regions, &probe, 2);
        assert!((bound - 0.2).abs() < 1e-12);
    }

    #[test]
    fn conflicting_uncertain_regions_reduce_family() {
        // Uncertain position 1 shared by segments 1 and 2.
        let probe = dna("G{(A,0.5),(C,0.5)}ATCC");
        let regions = vec![Some((0, 0)), Some((0, 1)), Some((1, 2))];
        let selected = independent_family(&regions, &probe);
        // Segment 0's region [0,0] has no uncertain position → always in.
        assert!(selected.contains(&0));
        // Of segments 1 and 2 (both spanning position 1) only one stays.
        assert_eq!(selected.len(), 2);
    }

    #[test]
    fn counterexample_no_longer_prunes() {
        // The proptest-discovered Theorem 2 violation (DESIGN.md §3.3a):
        // probe 1{0:0.05,1:0.95}{0:0.78,1:0.22} against indexed "0010",
        // k = 2, q = 3 → exact Pr = 0.795 but the paper's bound is 0.759.
        let probe = UncertainString::new(vec![
            Position::certain(1),
            Position::uncertain(1, vec![(0, 0.047619047619047616), (1, 0.9523809523809523)])
                .unwrap(),
            Position::uncertain(2, vec![(0, 0.7846153846153846), (1, 0.2153846153846154)]).unwrap(),
        ]);
        let alphas = [0.0, 0.04761904761904767, 0.7472527472527472];
        let regions = vec![Some((0, 0)), Some((0, 1)), Some((1, 2))];
        let bound = sound_at_least(&alphas, &regions, &probe, 1);
        assert!(
            bound >= 0.7948 - 1e-9,
            "sound bound {bound} must cover exact 0.7949"
        );
    }

    #[test]
    fn impossible_segments_zero_the_tail() {
        let probe = dna("ACGT");
        let regions = vec![None, Some((0, 1)), None];
        assert_eq!(sound_at_least(&[0.0, 0.9, 0.0], &regions, &probe, 2), 0.0);
        assert!(sound_at_least(&[0.0, 0.9, 0.0], &regions, &probe, 1) > 0.0);
    }

    #[test]
    fn need_zero_is_one() {
        let probe = dna("AC");
        assert_eq!(sound_at_least(&[], &[], &probe, 0), 1.0);
    }

    /// Randomised soundness check: the bound dominates the exact joint
    /// probability computed by enumerating probe worlds and treating
    /// segments as independent given the probe (which is the true
    /// dependence structure).
    #[test]
    fn dominates_conditional_enumeration() {
        use crate::tail::at_least as pb;
        // Probe with two uncertain positions; three segments whose
        // regions overlap them in various ways.
        let probe = dna("{(A,0.6),(C,0.4)}G{(A,0.3),(T,0.7)}T");
        let regions = vec![Some((0, 1)), Some((1, 2)), Some((2, 3))];
        // α_x(r) models: segment x matches iff region characters equal
        // some target; pick synthetic per-world probabilities.
        let alpha_given = |world: &[u8], x: usize| -> f64 {
            match x {
                0 => {
                    if world[0] == 0 {
                        0.9
                    } else {
                        0.1
                    }
                }
                1 => {
                    if world[2] == 0 {
                        0.8
                    } else {
                        0.2
                    }
                }
                _ => {
                    if world[2] == 3 {
                        0.7
                    } else {
                        0.05
                    }
                }
            }
        };
        for need in 1..=3usize {
            // Exact tail: expectation over probe worlds of the
            // conditional (independent) tail.
            let mut exact = 0.0;
            let mut mean_alpha = [0.0f64; 3];
            for w in probe.worlds() {
                let a: Vec<f64> = (0..3).map(|x| alpha_given(&w.instance, x)).collect();
                exact += w.prob * pb(&a, need);
                for x in 0..3 {
                    mean_alpha[x] += w.prob * a[x];
                }
            }
            let bound = sound_at_least(&mean_alpha, &regions, &probe, need);
            assert!(
                bound >= exact - 1e-9,
                "need={need}: sound bound {bound} < exact {exact}"
            );
        }
    }
}
