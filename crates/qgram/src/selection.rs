//! Position-aware substring selection (paper §2.1, after Li et al.'s
//! Pass-Join).
//!
//! For a probe string of length `|r|` and an indexed string of length
//! `|s|` partitioned into segments, only probe windows whose start
//! positions fall in a small range around the segment's own start can
//! participate in an alignment within edit distance `k`. Two complete
//! policies are provided:
//!
//! * [`SelectionPolicy::PositionBased`] — starts in `[p−k, p+k]`
//!   (≤ `2k+1` windows). This is the range the paper's Table 1 and the
//!   §3.2 worked example use.
//! * [`SelectionPolicy::ShiftBased`] — starts in
//!   `[p − ⌊(k−Δ)/2⌋, p + ⌊(k+Δ)/2⌋]` with `Δ = |r| − |s|`
//!   (≤ `k+1` windows). This is the selection the paper's text describes
//!   ("the number of substrings in set q(r,x) is thus bounded by k+1").
//!
//! Both satisfy the *completeness* property: any pair within edit distance
//! `k` retains at least `m−k` matching segments (Lemma 1). The shift-based
//! argument: a segment surviving an alignment with `e ≤ k` edits matches at
//! a shift `δ` with `|δ| + |Δ−δ| ≤ e`, and the set of such `δ` is exactly
//! `[−⌊(k−Δ)/2⌋, ⌊(k+Δ)/2⌋]`.

use crate::partition::Segment;

/// Which window-start range to use for `q(r, x)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionPolicy {
    /// `[p−k, p+k]`: simpler, wider (≤ 2k+1 windows). Matches the paper's
    /// worked examples.
    PositionBased,
    /// `[p − ⌊(k−Δ)/2⌋, p + ⌊(k+Δ)/2⌋]`: tighter (≤ k+1 windows). Matches
    /// the paper's text and is the default for joins.
    #[default]
    ShiftBased,
}

/// Inclusive range `[lo, hi]` of window start positions in the probe for
/// `segment` of an indexed string of length `indexed_len`, or `None` when
/// no window can participate (range empty after clamping, or the length
/// difference already exceeds `k`).
///
/// Windows have exactly `segment.len` characters; the range is clamped to
/// `[0, probe_len − segment.len]`.
pub fn window_range(
    policy: SelectionPolicy,
    probe_len: usize,
    indexed_len: usize,
    k: usize,
    segment: &Segment,
) -> Option<(usize, usize)> {
    if probe_len.abs_diff(indexed_len) > k || segment.len > probe_len {
        return None;
    }
    let p = segment.start as i64;
    let ki = k as i64;
    let (lo, hi) = match policy {
        SelectionPolicy::PositionBased => (p - ki, p + ki),
        SelectionPolicy::ShiftBased => {
            let delta = probe_len as i64 - indexed_len as i64;
            // Floor division keeps the bound valid for negative Δ too.
            (
                p - (ki - delta).div_euclid(2),
                p + (ki + delta).div_euclid(2),
            )
        }
    };
    let max_start = (probe_len - segment.len) as i64;
    let lo = lo.max(0);
    let hi = hi.min(max_start);
    (lo <= hi).then_some((lo as usize, hi as usize))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition;

    #[test]
    fn table1_position_based_ranges() {
        // r = GGATCC (len 6), S len 6, q = 2, k = 1 → segments at 0, 2, 4.
        let segs = partition(6, 2, 1);
        let ranges: Vec<_> = segs
            .iter()
            .map(|s| window_range(SelectionPolicy::PositionBased, 6, 6, 1, s).unwrap())
            .collect();
        // q(r,1) = starts {0,1}; q(r,2) = {1,2,3}; q(r,3) = {3,4}.
        assert_eq!(ranges, vec![(0, 1), (1, 3), (3, 4)]);
    }

    #[test]
    fn shift_based_equal_lengths() {
        // Δ = 0, k = 1 → one window per segment at exactly p... except
        // ⌊(k−Δ)/2⌋ = 0 and ⌊(k+Δ)/2⌋ = 0.
        let segs = partition(6, 2, 1);
        for s in &segs {
            let (lo, hi) = window_range(SelectionPolicy::ShiftBased, 6, 6, 1, s).unwrap();
            assert_eq!((lo, hi), (s.start, s.start));
        }
    }

    #[test]
    fn shift_based_window_count_bound() {
        // |q(r,x)| ≤ k+1 for every configuration.
        for indexed_len in 4..20 {
            for probe_delta in 0..4i64 {
                let probe_len = (indexed_len as i64 + probe_delta) as usize;
                for k in 0..4 {
                    for q in 2..5 {
                        for seg in partition(indexed_len, q, k) {
                            if let Some((lo, hi)) = window_range(
                                SelectionPolicy::ShiftBased,
                                probe_len,
                                indexed_len,
                                k,
                                &seg,
                            ) {
                                assert!(hi - lo < k + 1, "len={indexed_len} k={k} seg={seg:?}");
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn position_based_window_count_bound() {
        for k in 0..5 {
            for seg in partition(12, 3, k) {
                if let Some((lo, hi)) =
                    window_range(SelectionPolicy::PositionBased, 12, 12, k, &seg)
                {
                    assert!(hi - lo < 2 * k + 1);
                }
            }
        }
    }

    #[test]
    fn length_gap_rejects() {
        let seg = Segment { start: 0, len: 3 };
        assert_eq!(
            window_range(SelectionPolicy::ShiftBased, 10, 6, 2, &seg),
            None
        );
        assert_eq!(
            window_range(SelectionPolicy::PositionBased, 3, 9, 2, &seg),
            None
        );
    }

    #[test]
    fn segment_longer_than_probe_rejects() {
        let seg = Segment { start: 0, len: 5 };
        assert_eq!(
            window_range(SelectionPolicy::ShiftBased, 4, 5, 2, &seg),
            None
        );
    }

    #[test]
    fn clamping_to_probe_bounds() {
        // Last segment of a length-6 string probed by a length-5 probe.
        let seg = Segment { start: 4, len: 2 };
        let (lo, hi) = window_range(SelectionPolicy::PositionBased, 5, 6, 1, &seg).unwrap();
        assert!(lo >= 3 && hi <= 3, "({lo},{hi})");
    }

    /// Completeness of both policies, verified by brute force: for every
    /// pair of short strings within edit distance k, at least m−k segments
    /// of s have a matching window of r within the selected range.
    #[test]
    fn completeness_brute_force() {
        fn all_strings(len: usize) -> Vec<Vec<u8>> {
            (0..3usize.pow(len as u32))
                .map(|mut x| {
                    (0..len)
                        .map(|_| {
                            let c = (x % 3) as u8;
                            x /= 3;
                            c
                        })
                        .collect()
                })
                .collect()
        }
        for policy in [SelectionPolicy::PositionBased, SelectionPolicy::ShiftBased] {
            for s_len in 4usize..=5 {
                for r_len in s_len.saturating_sub(1)..=s_len + 1 {
                    let k = 1;
                    let q = 2;
                    let segs = partition(s_len, q, k);
                    let m = segs.len();
                    for s in all_strings(s_len) {
                        for r in all_strings(r_len) {
                            if usj_editdist::edit_distance(&r, &s) > k {
                                continue;
                            }
                            let mut matched = 0;
                            for seg in &segs {
                                if let Some((lo, hi)) = window_range(policy, r_len, s_len, k, seg) {
                                    let target = &s[seg.start..seg.end()];
                                    if (lo..=hi).any(|st| &r[st..st + seg.len] == target) {
                                        matched += 1;
                                    }
                                }
                            }
                            assert!(
                                matched + k >= m,
                                "completeness violated: policy={policy:?} r={r:?} s={s:?} matched={matched} m={m}"
                            );
                        }
                    }
                }
            }
        }
    }
}
