//! Even-partition scheme (paper §2.1 and §4).
//!
//! A string of length `l` is split into `m` disjoint segments where
//! `m = max(k+1, ⌊l/q⌋)`, clamped to `[1, l]` so every segment is
//! non-empty. Following the paper's even-partition scheme, the *last*
//! `l mod m` segments are one character longer than the rest; with
//! `m = ⌊l/q⌋` this yields segments of length `q` or `q+1` exactly as in
//! §4.

/// One segment of a partitioned string: a half-open window
/// `[start, start+len)` in 0-based positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Segment {
    /// 0-based start position within the string.
    pub start: usize,
    /// Segment length in characters (always ≥ 1).
    pub len: usize,
}

impl Segment {
    /// One-past-the-end position.
    #[inline]
    pub fn end(&self) -> usize {
        self.start + self.len
    }
}

/// Number of segments used for a string of length `len` with q-gram length
/// `q` and edit threshold `k`: `max(k+1, ⌊len/q⌋)` clamped to `[1, len]`.
///
/// Returns 0 for the empty string (which has no segments).
pub fn num_segments(len: usize, q: usize, k: usize) -> usize {
    assert!(q >= 1, "q must be at least 1");
    if len == 0 {
        return 0;
    }
    (k + 1).max(len / q).min(len)
}

/// Partitions a string of length `len` into [`num_segments`] segments with
/// the even-partition scheme: base length `⌊len/m⌋`, with the last
/// `len mod m` segments one character longer.
///
/// ```
/// use usj_qgram::partition;
/// // |S| = 8, q = 3, k = 1 → m = max(2, 2) = 2 segments of length 4.
/// let segs = partition(8, 3, 1);
/// assert_eq!(segs.len(), 2);
/// assert_eq!((segs[0].start, segs[0].len), (0, 4));
/// assert_eq!((segs[1].start, segs[1].len), (4, 4));
/// ```
pub fn partition(len: usize, q: usize, k: usize) -> Vec<Segment> {
    let m = num_segments(len, q, k);
    partition_into(len, m)
}

/// Partitions a string of length `len` into exactly `m` segments (the last
/// `len mod m` get the extra character). `m` must satisfy `1 ≤ m ≤ len`;
/// `m = 0` is allowed only with `len = 0`.
pub fn partition_into(len: usize, m: usize) -> Vec<Segment> {
    if len == 0 && m == 0 {
        return Vec::new();
    }
    assert!(m >= 1 && m <= len, "need 1 <= m <= len (m={m}, len={len})");
    let base = len / m;
    let extra = len % m;
    let mut out = Vec::with_capacity(m);
    let mut start = 0;
    for x in 0..m {
        // The last `extra` segments are longer by one.
        let seg_len = base + usize::from(x >= m - extra);
        out.push(Segment {
            start,
            len: seg_len,
        });
        start += seg_len;
    }
    debug_assert_eq!(start, len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn covers(len: usize, segs: &[Segment]) {
        let mut pos = 0;
        for s in segs {
            assert_eq!(s.start, pos, "segments must be contiguous");
            assert!(s.len >= 1);
            pos = s.end();
        }
        assert_eq!(pos, len, "segments must cover the string");
    }

    #[test]
    fn paper_shapes() {
        // len 6, q 2, k 1 → m = max(2, 3) = 3, all length 2 (Table 1).
        let segs = partition(6, 2, 1);
        assert_eq!(segs.len(), 3);
        assert!(segs.iter().all(|s| s.len == 2));
        covers(6, &segs);

        // len 6, q 3, k 1 → m = max(2, 2) = 2 of length 3 (§3.2 example).
        let segs = partition(6, 3, 1);
        assert_eq!(segs.len(), 2);
        assert!(segs.iter().all(|s| s.len == 3));
    }

    #[test]
    fn uneven_lengths_go_to_tail() {
        // len 10, q 3 → m = 3, lengths 3,3,4 (last len%m = 1 segment longer).
        let segs = partition(10, 3, 1);
        assert_eq!(
            segs.iter().map(|s| s.len).collect::<Vec<_>>(),
            vec![3, 3, 4]
        );
        covers(10, &segs);

        // len 11, q 3 → m = 3, lengths 3,4,4.
        let segs = partition(11, 3, 1);
        assert_eq!(
            segs.iter().map(|s| s.len).collect::<Vec<_>>(),
            vec![3, 4, 4]
        );
        covers(11, &segs);
    }

    #[test]
    fn short_strings_clamp_m() {
        // len 3, q 3, k 4 → m = max(5, 1) = 5 clamped to len = 3.
        let segs = partition(3, 3, 4);
        assert_eq!(segs.len(), 3);
        assert!(segs.iter().all(|s| s.len == 1));
        covers(3, &segs);
    }

    #[test]
    fn k_plus_one_floor() {
        // len 12, q 4, k 4 → m = max(5, 3) = 5; lengths 2,2,2,3,3.
        let segs = partition(12, 4, 4);
        assert_eq!(segs.len(), 5);
        assert_eq!(
            segs.iter().map(|s| s.len).collect::<Vec<_>>(),
            vec![2, 2, 2, 3, 3]
        );
        covers(12, &segs);
    }

    #[test]
    fn empty_string_has_no_segments() {
        assert_eq!(num_segments(0, 3, 2), 0);
        assert!(partition(0, 3, 2).is_empty());
    }

    #[test]
    fn single_char() {
        let segs = partition(1, 3, 2);
        assert_eq!(segs, vec![Segment { start: 0, len: 1 }]);
    }

    #[test]
    fn exhaustive_coverage_invariant() {
        for len in 1..60 {
            for q in 1..6 {
                for k in 0..5 {
                    covers(len, &partition(len, q, k));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "q must be at least 1")]
    fn zero_q_panics() {
        num_segments(5, 0, 1);
    }
}
