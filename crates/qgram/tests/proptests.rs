//! Property tests for q-gram filtering.
//!
//! The central soundness property: the filter must never prune a pair
//! whose exact similarity probability exceeds τ (no false negatives).

use proptest::prelude::*;
use usj_model::{Position, UncertainString};
use usj_qgram::{AlphaMode, FilterVerdict, QGramFilter, SelectionPolicy};

fn arb_position(sigma: u8, max_alts: usize) -> impl Strategy<Value = Position> {
    prop::collection::vec((0..sigma, 1u32..=100), 1..=max_alts).prop_map(|raw| {
        let mut seen = std::collections::BTreeMap::new();
        for (s, w) in raw {
            *seen.entry(s).or_insert(0u32) += w;
        }
        let total: u32 = seen.values().sum();
        let alts: Vec<(u8, f64)> = seen
            .into_iter()
            .map(|(s, w)| (s, w as f64 / total as f64))
            .collect();
        Position::uncertain(0, alts).unwrap()
    })
}

fn arb_string(
    sigma: u8,
    len: std::ops::Range<usize>,
    max_alts: usize,
) -> impl Strategy<Value = UncertainString> {
    prop::collection::vec(arb_position(sigma, max_alts), len).prop_map(UncertainString::new)
}

/// Exact Pr(ed(R,S) ≤ k) by enumerating the joint possible worlds.
fn exact_similarity(r: &UncertainString, s: &UncertainString, k: usize) -> f64 {
    let mut total = 0.0;
    for rw in r.worlds() {
        for sw in s.worlds() {
            if usj_editdist::within_k(&rw.instance, &sw.instance, k) {
                total += rw.prob * sw.prob;
            }
        }
    }
    total
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// No false negatives: if the exact probability exceeds τ the filter
    /// must keep the pair — for every policy and every *sound* α mode
    /// (`Exact` is exact, `Naive` over-estimates; the paper's `Grouped`
    /// recurrence can under-estimate and is exercised separately without
    /// the strict assertion).
    #[test]
    fn filter_is_sound(
        r in arb_string(3, 4..9, 2),
        s in arb_string(3, 4..9, 2),
        k in 1usize..3,
        tau_pct in 1u32..60,
        q in 2usize..4,
    ) {
        let tau = tau_pct as f64 / 100.0;
        let exact = exact_similarity(&r, &s, k);
        for policy in [SelectionPolicy::PositionBased, SelectionPolicy::ShiftBased] {
            for mode in [AlphaMode::Exact, AlphaMode::Naive] {
                let filter = QGramFilter::new(k, tau, q)
                    .with_policy(policy)
                    .with_alpha_mode(mode);
                let out = filter.evaluate(&r, &s);
                if exact > tau + 1e-9 {
                    prop_assert_eq!(
                        out.verdict,
                        FilterVerdict::Candidate,
                        "false negative: policy={:?} mode={:?} exact={} tau={} out={:?} r={:?} s={:?}",
                        policy, mode, exact, tau, out, r, s
                    );
                }
            }
            // Paper-faithful mode: exercised for panics/shape only (its
            // Theorem 2 bound is known-unsound; see usj_qgram::soundness).
            let paper = QGramFilter::new(k, tau, q)
                .with_policy(policy)
                .with_alpha_mode(AlphaMode::Grouped)
                .with_paper_bound(true);
            let out = paper.evaluate(&r, &s);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&out.upper_bound));
        }
    }

    /// The Theorem 2 upper bound dominates the exact probability when the
    /// probe is deterministic (rigorous case; see DESIGN.md §3.3).
    #[test]
    fn deterministic_probe_bound_dominates(
        r_world in prop::collection::vec(0u8..3, 5..9),
        s in arb_string(3, 4..9, 2),
        k in 1usize..3,
        q in 2usize..4,
    ) {
        let r = UncertainString::from_symbols(&r_world);
        let exact = exact_similarity(&r, &s, k);
        for policy in [SelectionPolicy::PositionBased, SelectionPolicy::ShiftBased] {
            let filter = QGramFilter::new(k, 0.0, q).with_policy(policy);
            let out = filter.evaluate(&r, &s);
            prop_assert!(
                out.upper_bound >= exact - 1e-9,
                "policy={:?} bound={} exact={}",
                policy, out.upper_bound, exact
            );
        }
    }

    /// α values are probabilities and the bound is monotone in τ-free
    /// quantities: bound ∈ [0,1].
    #[test]
    fn alphas_and_bound_are_probabilities(
        r in arb_string(3, 4..9, 2),
        s in arb_string(3, 4..9, 2),
        k in 1usize..3,
    ) {
        let filter = QGramFilter::new(k, 0.2, 3);
        let out = filter.evaluate(&r, &s);
        for &a in &out.alphas {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&a), "alpha={a}");
        }
        prop_assert!((0.0..=1.0 + 1e-9).contains(&out.upper_bound));
    }

    /// Exact α mode never reports a smaller bound than Grouped (the β
    /// recurrence can only under-approximate occurrence unions).
    #[test]
    fn grouped_alpha_below_exact(
        r in arb_string(3, 5..9, 2),
        s in arb_string(3, 5..9, 2),
        k in 1usize..3,
    ) {
        let grouped = QGramFilter::new(k, 0.0, 2)
            .with_alpha_mode(AlphaMode::Grouped)
            .evaluate(&r, &s);
        let exact = QGramFilter::new(k, 0.0, 2)
            .with_alpha_mode(AlphaMode::Exact)
            .evaluate(&r, &s);
        for (g, e) in grouped.alphas.iter().zip(&exact.alphas) {
            prop_assert!(g <= &(e + 1e-9), "grouped α={g} exact α={e}");
        }
    }

    /// Identical strings always survive whenever τ < Pr(R = S alignment);
    /// in particular a deterministic string joined with itself survives
    /// for any τ < 1.
    #[test]
    fn self_pair_survives(r_world in prop::collection::vec(0u8..3, 4..10), k in 1usize..3) {
        let r = UncertainString::from_symbols(&r_world);
        let filter = QGramFilter::new(k, 0.99, 3);
        let out = filter.evaluate(&r, &r);
        prop_assert_eq!(out.verdict, FilterVerdict::Candidate);
    }
}
