//! Deterministic base-string generators.
//!
//! These play the role of the paper's real data sources. Only the
//! statistics that drive filter behaviour matter: alphabet size, length
//! distribution, and (roughly) per-letter frequencies.

use rand::distributions::Distribution;
use rand::Rng;

use usj_model::{Alphabet, Symbol};

/// English-letter frequencies (per mille, roughly) used to make dblp-like
/// names look name-ish rather than uniform noise.
const LETTER_WEIGHTS: [u32; 26] = [
    82, 15, 28, 43, 127, 22, 20, 61, 70, 2, 8, 40, 24, 67, 75, 19, 1, 60, 63, 91, 28, 10, 24, 2,
    20, 1,
];

/// Samples one dblp-like base string: lowercase letters plus spaces
/// separating 2–3 name parts, length approximately normal in `[10, 35]`
/// (the paper's reported distribution, mean ≈ 19).
pub fn dblp_like_base(rng: &mut impl Rng, alphabet: &Alphabet) -> Vec<Symbol> {
    debug_assert_eq!(alphabet.size(), 27, "use Alphabet::names()");
    // Approximate a normal via the sum of three uniforms (Irwin–Hall).
    let len = (10 + rng.gen_range(0..=9) + rng.gen_range(0..=8) + rng.gen_range(0..=8)).min(35);
    let space = alphabet.symbol(' ').expect("names alphabet has a space");
    let dist = rand::distributions::WeightedIndex::new(LETTER_WEIGHTS).unwrap();
    let mut out = Vec::with_capacity(len);
    // Place 1–2 spaces at plausible word boundaries.
    let first_space = rng.gen_range(3..8).min(len.saturating_sub(2));
    let second_space = if len > 18 {
        Some(rng.gen_range(10..16))
    } else {
        None
    };
    for i in 0..len {
        if i == first_space || Some(i) == second_space {
            out.push(space);
        } else {
            out.push(dist.sample(rng) as Symbol);
        }
    }
    out
}

/// Samples one protein-like base string: 22 amino-acid symbols with mild
/// non-uniformity, length uniform in `[20, 45]` (paper: mean ≈ 32).
pub fn protein_like_base(rng: &mut impl Rng, alphabet: &Alphabet) -> Vec<Symbol> {
    debug_assert_eq!(alphabet.size(), 22, "use Alphabet::protein()");
    let len = rng.gen_range(20..=45);
    (0..len)
        .map(|_| {
            // Slight bias towards the first few residues, like real
            // proteins favour L/A/G/S.
            let r: f64 = rng.gen();
            let idx = (r * r * alphabet.size() as f64) as usize;
            idx.min(alphabet.size() - 1) as Symbol
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dblp_lengths_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let names = Alphabet::names();
        let mut total = 0usize;
        for _ in 0..500 {
            let s = dblp_like_base(&mut rng, &names);
            assert!((10..=35).contains(&s.len()), "len {}", s.len());
            assert!(s.iter().all(|&c| (c as usize) < 27));
            total += s.len();
        }
        let avg = total as f64 / 500.0;
        assert!((15.0..26.0).contains(&avg), "avg {avg}");
    }

    #[test]
    fn protein_lengths_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let protein = Alphabet::protein();
        for _ in 0..200 {
            let s = protein_like_base(&mut rng, &protein);
            assert!((20..=45).contains(&s.len()));
            assert!(s.iter().all(|&c| (c as usize) < 22));
        }
    }

    #[test]
    fn seeded_generation_is_deterministic() {
        let names = Alphabet::names();
        let a: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..10).map(|_| dblp_like_base(&mut rng, &names)).collect()
        };
        let b: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..10).map(|_| dblp_like_base(&mut rng, &names)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn names_contain_spaces() {
        let mut rng = StdRng::seed_from_u64(3);
        let names = Alphabet::names();
        let space = names.symbol(' ').unwrap();
        let with_space = (0..100)
            .filter(|_| dblp_like_base(&mut rng, &names).contains(&space))
            .count();
        assert!(with_space > 90);
    }
}
