//! JSON (de)serialisation of datasets.
//!
//! `usj-model` stays serde-free; this module mirrors its types into plain
//! serde-friendly shapes so the experiment harness can cache generated
//! datasets and write machine-readable results.

use serde::{Deserialize, Serialize};

use usj_model::{Alphabet, Position, UncertainString};

use crate::dataset::Dataset;

/// Serialisable mirror of a dataset: alphabet characters + per-position
/// `(char, prob)` alternatives.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct DatasetJson {
    /// The alphabet as a string, in symbol order.
    pub alphabet: String,
    /// Each string as a list of positions, each a list of alternatives.
    pub strings: Vec<Vec<Vec<(char, f64)>>>,
}

impl From<&Dataset> for DatasetJson {
    fn from(ds: &Dataset) -> Self {
        let alphabet: String = (0..ds.alphabet.size())
            .map(|i| ds.alphabet.char_of(i as u8))
            .collect();
        let strings = ds
            .strings
            .iter()
            .map(|s| {
                s.positions()
                    .iter()
                    .map(|p| {
                        p.alternatives()
                            .map(|(sym, prob)| (ds.alphabet.char_of(sym), prob))
                            .collect()
                    })
                    .collect()
            })
            .collect();
        DatasetJson { alphabet, strings }
    }
}

impl DatasetJson {
    /// Reconstructs the dataset (validates every distribution).
    pub fn into_dataset(self) -> Result<Dataset, usj_model::ModelError> {
        let alphabet = Alphabet::new(self.alphabet.chars());
        let mut strings = Vec::with_capacity(self.strings.len());
        for raw in self.strings {
            let mut positions = Vec::with_capacity(raw.len());
            for (i, alts) in raw.into_iter().enumerate() {
                let mut mapped = Vec::with_capacity(alts.len());
                for (c, p) in alts {
                    mapped.push((alphabet.try_symbol(c)?, p));
                }
                positions.push(Position::uncertain(i, mapped)?);
            }
            strings.push(UncertainString::new(positions));
        }
        Ok(Dataset { alphabet, strings })
    }

    /// Serialises to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("dataset serialisation cannot fail")
    }

    /// Parses from a JSON string.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetKind, DatasetSpec};

    #[test]
    fn roundtrip() {
        let ds = DatasetSpec::new(DatasetKind::Dblp, 25, 3).generate();
        let json = DatasetJson::from(&ds).to_json();
        let back = DatasetJson::from_json(&json)
            .unwrap()
            .into_dataset()
            .unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn rejects_corrupted_distributions() {
        let ds = DatasetSpec::new(DatasetKind::Protein, 3, 3).generate();
        let mut mirror = DatasetJson::from(&ds);
        // Corrupt one probability.
        if let Some(alt) = mirror
            .strings
            .iter_mut()
            .flat_map(|s| s.iter_mut())
            .find(|p| p.len() > 1)
        {
            alt[0].1 = 5.0;
        }
        assert!(mirror.into_dataset().is_err());
    }
}
