//! Seeded synthetic dataset generators (paper §7 "Datasets").
//!
//! The paper derives its uncertain strings from two real sources — dblp
//! author names (`|Σ| = 27`) and a concatenated mouse+human protein
//! sequence (`|Σ| = 22`) — by the following recipe: for each base string
//! `s`, collect a set `A(s)` of strings within edit distance 4 of `s`, and
//! give each uncertain position a pdf built from the normalised letter
//! frequencies at that position across `A(s)`. The fraction of uncertain
//! positions is `θ` and the average number of alternatives per uncertain
//! position is `γ = 5`.
//!
//! We do not ship the proprietary sources, so [`base`] synthesises base
//! strings with the same length distributions and alphabets (dblp-like:
//! approximately normal lengths in `[10, 35]`; protein-like: uniform in
//! `[20, 45]`), and [`uncertain`] applies the paper's recipe with
//! substitution-only neighbours (which keep positions aligned — exactly
//! what the character-level model requires). See DESIGN.md §4 for the
//! substitution table.
//!
//! Everything is deterministic given a seed.

#![warn(missing_docs)]

pub mod base;
pub mod dataset;
pub mod serialize;
pub mod uncertain;

pub use base::{dblp_like_base, protein_like_base};
pub use dataset::{Dataset, DatasetKind, DatasetSpec};
pub use serialize::DatasetJson;
pub use uncertain::{make_uncertain, UncertaintySpec};
