//! Uncertainty injection (the paper's dataset recipe).
//!
//! For base string `s`: build `A(s) = {s} ∪ {substitution variants within
//! edit distance 4}`, choose `⌈θ·|s|⌉` positions to become uncertain, and
//! give each a pdf from the normalised letter frequencies at that position
//! across `A(s)`, padded/truncated to `γ` alternatives.

use rand::seq::SliceRandom;
use rand::Rng;

use usj_model::{Alphabet, Position, Symbol, UncertainString};

/// Parameters of the uncertainty recipe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UncertaintySpec {
    /// Fraction of positions made uncertain (the paper's `θ`).
    pub theta: f64,
    /// Alternatives per uncertain position (the paper's `γ`, default 5).
    pub gamma: usize,
    /// Neighbourhood size: how many substitution variants enter `A(s)`.
    pub variants: usize,
    /// Maximum substitutions per variant (the paper uses edit distance 4).
    pub max_edits: usize,
}

impl Default for UncertaintySpec {
    fn default() -> Self {
        UncertaintySpec {
            theta: 0.2,
            gamma: 5,
            variants: 12,
            max_edits: 4,
        }
    }
}

impl UncertaintySpec {
    /// Spec with a given `θ` and the paper's remaining defaults.
    pub fn with_theta(theta: f64) -> Self {
        assert!((0.0..=1.0).contains(&theta), "theta must lie in [0, 1]");
        UncertaintySpec {
            theta,
            ..Default::default()
        }
    }
}

/// Applies the recipe to one base string.
pub fn make_uncertain(
    rng: &mut impl Rng,
    base: &[Symbol],
    alphabet: &Alphabet,
    spec: &UncertaintySpec,
) -> UncertainString {
    let l = base.len();
    if l == 0 {
        return UncertainString::empty();
    }
    let num_uncertain = ((spec.theta * l as f64).ceil() as usize).min(l);
    // Choose the uncertain positions.
    let mut positions: Vec<usize> = (0..l).collect();
    positions.shuffle(rng);
    let mut uncertain_at = vec![false; l];
    for &p in positions.iter().take(num_uncertain) {
        uncertain_at[p] = true;
    }
    // Build A(s): the base string plus substitution variants.
    let mut neighbourhood: Vec<Vec<Symbol>> = Vec::with_capacity(spec.variants + 1);
    neighbourhood.push(base.to_vec());
    for _ in 0..spec.variants {
        let mut v = base.to_vec();
        let edits = rng.gen_range(1..=spec.max_edits.max(1));
        for _ in 0..edits {
            let pos = rng.gen_range(0..l);
            v[pos] = rng.gen_range(0..alphabet.size()) as Symbol;
        }
        neighbourhood.push(v);
    }
    // Per-position pdfs from neighbourhood letter frequencies.
    let out: Vec<Position> = (0..l)
        .map(|i| {
            if !uncertain_at[i] {
                return Position::certain(base[i]);
            }
            let mut counts = vec![0u32; alphabet.size()];
            for v in &neighbourhood {
                counts[v[i] as usize] += 1;
            }
            // Keep the top-γ letters by count; pad with random fresh
            // letters (count 1) when fewer than γ are present.
            let mut present: Vec<(Symbol, u32)> = counts
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(s, &c)| (s as Symbol, c))
                .collect();
            present.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            present.truncate(spec.gamma);
            let mut tries = 0;
            while present.len() < spec.gamma.min(alphabet.size()) && tries < 64 {
                tries += 1;
                let s = rng.gen_range(0..alphabet.size()) as Symbol;
                if !present.iter().any(|&(p, _)| p == s) {
                    present.push((s, 1));
                }
            }
            let total: u32 = present.iter().map(|&(_, c)| c).sum();
            let alts: Vec<(Symbol, f64)> = present
                .into_iter()
                .map(|(s, c)| (s, c as f64 / total as f64))
                .collect();
            Position::uncertain(i, alts).expect("generated distribution is valid")
        })
        .collect();
    UncertainString::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn base(rng: &mut StdRng, alphabet: &Alphabet, len: usize) -> Vec<Symbol> {
        (0..len)
            .map(|_| rng.gen_range(0..alphabet.size()) as Symbol)
            .collect()
    }

    #[test]
    fn theta_controls_uncertain_fraction() {
        let mut rng = StdRng::seed_from_u64(7);
        let names = Alphabet::names();
        for theta in [0.0, 0.1, 0.25, 0.5, 1.0] {
            let b = base(&mut rng, &names, 20);
            let u = make_uncertain(&mut rng, &b, &names, &UncertaintySpec::with_theta(theta));
            let expected = (theta * 20.0).ceil() as usize;
            // Positions whose pdf collapsed back to a single letter stay
            // certain, so the count may fall slightly short.
            assert!(u.num_uncertain() <= expected);
            if theta > 0.0 {
                assert!(
                    u.num_uncertain() >= expected.saturating_sub(2),
                    "theta={theta}"
                );
            }
            assert!(u.validate().is_ok());
        }
    }

    #[test]
    fn gamma_bounds_alternatives() {
        let mut rng = StdRng::seed_from_u64(8);
        let protein = Alphabet::protein();
        let spec = UncertaintySpec {
            gamma: 5,
            ..Default::default()
        };
        for _ in 0..50 {
            let b = base(&mut rng, &protein, 30);
            let u = make_uncertain(&mut rng, &b, &protein, &spec);
            for pos in u.positions() {
                assert!(pos.num_alternatives() <= 5);
            }
        }
    }

    #[test]
    fn base_letter_keeps_mass() {
        // The original letter is always in A(s), so it retains positive
        // probability at every uncertain position.
        let mut rng = StdRng::seed_from_u64(9);
        let names = Alphabet::names();
        let b = base(&mut rng, &names, 25);
        let u = make_uncertain(&mut rng, &b, &names, &UncertaintySpec::with_theta(0.4));
        for (i, pos) in u.positions().iter().enumerate() {
            assert!(pos.prob_of(b[i]) > 0.0, "position {i}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let names = Alphabet::names();
        let make = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let b = base(&mut rng, &names, 18);
            make_uncertain(&mut rng, &b, &names, &UncertaintySpec::default())
        };
        assert_eq!(make(5), make(5));
    }

    #[test]
    fn empty_base() {
        let mut rng = StdRng::seed_from_u64(1);
        let u = make_uncertain(&mut rng, &[], &Alphabet::dna(), &UncertaintySpec::default());
        assert!(u.is_empty());
    }

    #[test]
    #[should_panic(expected = "theta must lie in [0, 1]")]
    fn bad_theta_panics() {
        UncertaintySpec::with_theta(1.5);
    }
}
