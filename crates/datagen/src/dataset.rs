//! Dataset assembly: spec → seeded collection of uncertain strings.

use rand::rngs::StdRng;
use rand::SeedableRng;

use usj_model::{Alphabet, UncertainString};

use crate::base::{dblp_like_base, protein_like_base};
use crate::uncertain::{make_uncertain, UncertaintySpec};

/// Which synthetic source to imitate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum DatasetKind {
    /// dblp-like author names: `|Σ| = 27`, lengths ≈ normal on `[10, 35]`.
    Dblp,
    /// Protein-like sequences: `|Σ| = 22`, lengths uniform on `[20, 45]`.
    Protein,
}

impl DatasetKind {
    /// The alphabet this kind uses.
    pub fn alphabet(self) -> Alphabet {
        match self {
            DatasetKind::Dblp => Alphabet::names(),
            DatasetKind::Protein => Alphabet::protein(),
        }
    }

    /// The paper's default θ for this dataset (dblp 0.2, protein 0.1).
    pub fn default_theta(self) -> f64 {
        match self {
            DatasetKind::Dblp => 0.2,
            DatasetKind::Protein => 0.1,
        }
    }
}

/// Full dataset specification; equal specs generate identical datasets.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Source to imitate.
    pub kind: DatasetKind,
    /// Number of strings.
    pub n: usize,
    /// Uncertainty parameters (θ, γ, neighbourhood).
    pub uncertainty: UncertaintySpec,
    /// Fraction of strings generated as *near-duplicates* of an earlier
    /// string (1–4 random edits). Real dblp/protein data is full of such
    /// near-duplicates — they are what a similarity join finds — so the
    /// synthetic collections must contain them too. Default 0.3.
    pub duplicate_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// Spec with the paper's defaults for `kind`.
    pub fn new(kind: DatasetKind, n: usize, seed: u64) -> Self {
        DatasetSpec {
            kind,
            n,
            uncertainty: UncertaintySpec {
                theta: kind.default_theta(),
                ..Default::default()
            },
            duplicate_fraction: 0.3,
            seed,
        }
    }

    /// Overrides θ.
    pub fn with_theta(mut self, theta: f64) -> Self {
        self.uncertainty.theta = theta;
        self
    }

    /// Overrides the near-duplicate fraction.
    pub fn with_duplicate_fraction(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must lie in [0, 1]"
        );
        self.duplicate_fraction = fraction;
        self
    }

    /// Generates the dataset.
    pub fn generate(&self) -> Dataset {
        use rand::Rng;
        let alphabet = self.kind.alphabet();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut bases: Vec<Vec<usj_model::Symbol>> = Vec::with_capacity(self.n);
        for i in 0..self.n {
            let base = if i > 0 && rng.gen_bool(self.duplicate_fraction) {
                // Near-duplicate of an earlier base: 1–4 random edits
                // (substitution / insertion / deletion).
                let source = &bases[rng.gen_range(0..i)];
                mutate(&mut rng, source, alphabet.size())
            } else {
                match self.kind {
                    DatasetKind::Dblp => dblp_like_base(&mut rng, &alphabet),
                    DatasetKind::Protein => protein_like_base(&mut rng, &alphabet),
                }
            };
            bases.push(base);
        }
        let strings = bases
            .iter()
            .map(|base| make_uncertain(&mut rng, base, &alphabet, &self.uncertainty))
            .collect();
        Dataset { alphabet, strings }
    }
}

/// Applies 1–4 random edits (sub/ins/del) to `base`, keeping length ≥ 2.
fn mutate(rng: &mut StdRng, base: &[usj_model::Symbol], sigma: usize) -> Vec<usj_model::Symbol> {
    use rand::Rng;
    let mut out = base.to_vec();
    let edits = rng.gen_range(1..=4usize);
    for _ in 0..edits {
        match rng.gen_range(0..3) {
            0 => {
                // substitution
                let pos = rng.gen_range(0..out.len());
                out[pos] = rng.gen_range(0..sigma) as usj_model::Symbol;
            }
            1 => {
                // insertion
                let pos = rng.gen_range(0..=out.len());
                out.insert(pos, rng.gen_range(0..sigma) as usj_model::Symbol);
            }
            _ => {
                // deletion (keep a minimum length)
                if out.len() > 2 {
                    let pos = rng.gen_range(0..out.len());
                    out.remove(pos);
                }
            }
        }
    }
    out
}

/// A generated collection.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// The alphabet all strings share.
    pub alphabet: Alphabet,
    /// The uncertain strings.
    pub strings: Vec<UncertainString>,
}

impl Dataset {
    /// Average string length.
    pub fn avg_len(&self) -> f64 {
        if self.strings.is_empty() {
            return 0.0;
        }
        self.strings.iter().map(UncertainString::len).sum::<usize>() as f64
            / self.strings.len() as f64
    }

    /// Average fraction of uncertain positions.
    pub fn avg_theta(&self) -> f64 {
        if self.strings.is_empty() {
            return 0.0;
        }
        self.strings.iter().map(UncertainString::theta).sum::<f64>() / self.strings.len() as f64
    }

    /// The paper's Fig 9 transformation: append each string to itself
    /// `times` times, then cap the number of uncertain positions at
    /// `max_uncertain` (keeping the earliest ones; the paper caps at 8 so
    /// verification stays feasible).
    pub fn self_appended(&self, times: usize, max_uncertain: usize) -> Dataset {
        let strings = self
            .strings
            .iter()
            .map(|s| {
                let mut grown = s.clone();
                for _ in 0..times {
                    grown = grown.concat(s);
                }
                cap_uncertain(&grown, max_uncertain)
            })
            .collect();
        Dataset {
            alphabet: self.alphabet.clone(),
            strings,
        }
    }
}

/// Collapses all but the first `max_uncertain` uncertain positions to
/// their most probable symbol.
fn cap_uncertain(s: &UncertainString, max_uncertain: usize) -> UncertainString {
    let mut seen = 0usize;
    let positions = s
        .positions()
        .iter()
        .map(|p| {
            if p.is_certain() {
                p.clone()
            } else if seen < max_uncertain {
                seen += 1;
                p.clone()
            } else {
                usj_model::Position::certain(p.most_probable())
            }
        })
        .collect();
    UncertainString::new(positions)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dblp_dataset_statistics() {
        let ds = DatasetSpec::new(DatasetKind::Dblp, 300, 11).generate();
        assert_eq!(ds.strings.len(), 300);
        assert!(
            (15.0..26.0).contains(&ds.avg_len()),
            "avg len {}",
            ds.avg_len()
        );
        let theta = ds.avg_theta();
        assert!((0.12..0.28).contains(&theta), "avg theta {theta}");
        for s in &ds.strings {
            assert!(s.validate().is_ok());
        }
    }

    #[test]
    fn protein_dataset_statistics() {
        let ds = DatasetSpec::new(DatasetKind::Protein, 200, 12).generate();
        assert!(
            (28.0..37.0).contains(&ds.avg_len()),
            "avg len {}",
            ds.avg_len()
        );
        let theta = ds.avg_theta();
        assert!((0.05..0.15).contains(&theta), "avg theta {theta}");
    }

    #[test]
    fn reproducible() {
        let a = DatasetSpec::new(DatasetKind::Dblp, 50, 99).generate();
        let b = DatasetSpec::new(DatasetKind::Dblp, 50, 99).generate();
        assert_eq!(a, b);
        let c = DatasetSpec::new(DatasetKind::Dblp, 50, 100).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn self_append_grows_and_caps() {
        let ds = DatasetSpec::new(DatasetKind::Dblp, 20, 5).generate();
        let grown = ds.self_appended(1, 8);
        for (orig, big) in ds.strings.iter().zip(&grown.strings) {
            assert_eq!(big.len(), orig.len() * 2);
            assert!(big.num_uncertain() <= 8);
        }
        // times = 0 only applies the cap.
        let same = ds.self_appended(0, 1000);
        assert_eq!(same, ds);
    }
}
