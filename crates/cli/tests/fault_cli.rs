//! Process-level fault-injection tests for the `usj` binary.
//!
//! Each invocation is its own process, so plans armed through the
//! `USJ_FAULT_PLAN` environment variable cannot interfere across tests
//! (unlike in-process arming, which is global). The contract under test:
//! the CLI *never* prints a raw panic backtrace — every failure is a
//! structured `error:` report on stderr — and output files are written
//! atomically, so an injected crash can tear neither `--out` targets nor
//! checkpoints.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn usj(args: &[&str], plan: Option<&str>) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_usj"));
    cmd.args(args).env_remove("USJ_FAULT_PLAN");
    if let Some(p) = plan {
        cmd.env("USJ_FAULT_PLAN", p);
    }
    cmd.output().expect("spawn usj binary")
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("usj-fault-cli").join(tag);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn pairs(out: &Output) -> Vec<String> {
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .filter(|l| !l.starts_with('#'))
        .map(str::to_owned)
        .collect()
}

/// Shared stderr assertion: whatever went wrong, the report is the
/// structured one — not the default panic handler's output.
fn assert_no_backtrace(stderr: &str) {
    assert!(!stderr.contains("panicked at"), "raw panic leaked:\n{stderr}");
    assert!(
        !stderr.contains("stack backtrace"),
        "backtrace leaked:\n{stderr}"
    );
    assert!(
        !stderr.contains("RUST_BACKTRACE"),
        "backtrace hint leaked:\n{stderr}"
    );
}

fn generate(dir: &Path, n: &str, seed: &str) -> String {
    let data = dir.join("data.json").to_string_lossy().into_owned();
    let out = usj(
        &[
            "generate",
            "--kind",
            "dblp",
            "--n",
            n,
            "--seed",
            seed,
            "--out",
            data.as_str(),
        ],
        None,
    );
    assert!(out.status.success(), "generate failed: {}", stderr_of(&out));
    data
}

/// A fatal injected fault mid-join exits nonzero with the structured
/// report (kind, wave, checkpoint path, resume hint); `--resume` from the
/// surviving checkpoint then reproduces the uninterrupted output exactly.
#[test]
fn fatal_fault_reports_structured_error_and_resume_reproduces_output() {
    let dir = tmpdir("fatal-resume");
    let data = generate(&dir, "50", "21");
    let ckpt = dir.join("ckpt").to_string_lossy().into_owned();
    std::fs::create_dir_all(&ckpt).unwrap();
    let join_args = |extra: &[&str]| -> Vec<String> {
        let mut v: Vec<String> = [
            "join",
            "--input",
            data.as_str(),
            "--threads",
            "2",
            "--shard-band",
            "1",
            "--batch-min",
            "1",
            "--batch-max",
            "2",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        v.extend(extra.iter().map(|s| s.to_string()));
        v
    };
    let run = |extra: &[&str], plan: Option<&str>| -> Output {
        let owned = join_args(extra);
        let view: Vec<&str> = owned.iter().map(String::as_str).collect();
        usj(&view, plan)
    };

    let clean = run(&[], None);
    assert!(clean.status.success(), "{}", stderr_of(&clean));

    // Kill the second wave's shard eviction: wave 0 has committed a
    // checkpoint by then, so recovery has something to resume from.
    let killed = run(
        &["--checkpoint", ckpt.as_str()],
        Some("parallel.evict#1=panic"),
    );
    assert_eq!(killed.status.code(), Some(2), "{}", stderr_of(&killed));
    let stderr = stderr_of(&killed);
    assert_no_backtrace(&stderr);
    assert!(stderr.contains("error: join failed"), "{stderr}");
    assert!(stderr.contains("kind: fault"), "{stderr}");
    assert!(stderr.contains("wave: 1"), "{stderr}");
    assert!(stderr.contains("completed_waves: 1"), "{stderr}");
    assert!(stderr.contains("checkpoint: "), "{stderr}");
    assert!(stderr.contains("--resume"), "{stderr}");

    let resumed = run(&["--checkpoint", ckpt.as_str(), "--resume"], None);
    assert!(resumed.status.success(), "{}", stderr_of(&resumed));
    assert_eq!(
        pairs(&clean),
        pairs(&resumed),
        "resume diverged from clean run"
    );
    assert!(
        String::from_utf8_lossy(&resumed.stdout).contains("# fault-tolerance: waves_resumed="),
        "resume not reported"
    );
}

/// A batch-level panic is recovered in-process: exit 0, bit-identical
/// pairs, and the recovery surfaces only as a `#` comment.
#[test]
fn recovered_batch_fault_leaves_output_bit_identical() {
    let dir = tmpdir("recovered");
    let data = generate(&dir, "40", "22");
    let ckpt = dir.join("ckpt").to_string_lossy().into_owned();
    std::fs::create_dir_all(&ckpt).unwrap();
    let args = [
        "join",
        "--input",
        data.as_str(),
        "--threads",
        "2",
        "--shard-band",
        "1",
        "--batch-min",
        "1",
        "--batch-max",
        "2",
    ];
    let clean = usj(&args, None);
    assert!(clean.status.success(), "{}", stderr_of(&clean));
    // The checkpoint flag engages the fault-tolerant driver, whose
    // recovery counters surface in the `# fault-tolerance:` comment.
    let mut ft_args: Vec<&str> = args.to_vec();
    ft_args.extend(["--checkpoint", ckpt.as_str()]);
    let faulted = usj(&ft_args, Some("parallel.batch#0=panic"));
    assert!(faulted.status.success(), "{}", stderr_of(&faulted));
    assert_no_backtrace(&stderr_of(&faulted));
    assert_eq!(pairs(&clean), pairs(&faulted));
    assert!(
        String::from_utf8_lossy(&faulted.stdout).contains("batches_retried=1"),
        "retry not reported"
    );
}

/// A malformed plan is an operator error: exit 2 naming the variable.
#[test]
fn malformed_fault_plan_is_rejected() {
    let out = usj(&["stats", "--input", "/nonexistent"], Some("not a plan"));
    assert_eq!(out.status.code(), Some(2));
    let stderr = stderr_of(&out);
    assert!(stderr.contains("USJ_FAULT_PLAN"), "{stderr}");
    assert_no_backtrace(&stderr);
}

/// An injected write error must not tear the `--out` target: the file is
/// either absent or complete, and no `.tmp` residue survives.
#[test]
fn failed_output_write_leaves_no_torn_file() {
    let dir = tmpdir("torn");
    let data = generate(&dir, "30", "23");
    let target = dir.join("pairs.json");
    let target_s = target.to_string_lossy().into_owned();
    let out = usj(
        &["join", "--input", data.as_str(), "--out", target_s.as_str()],
        Some("cli.write#0=error:disk full"),
    );
    assert_eq!(out.status.code(), Some(2), "{}", stderr_of(&out));
    let stderr = stderr_of(&out);
    assert!(stderr.contains("cannot write"), "{stderr}");
    assert!(stderr.contains("disk full"), "{stderr}");
    assert_no_backtrace(&stderr);
    assert!(!target.exists(), "torn output file left behind");
    let residue: Vec<_> = dir
        .read_dir()
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
        .collect();
    assert!(residue.is_empty(), "tmp residue: {residue:?}");
}

/// A panic that escapes the library entirely (injected inside the writer)
/// still comes out as a structured report — exit 3, no backtrace.
#[test]
fn escaped_panic_is_reported_without_backtrace() {
    let dir = tmpdir("escaped");
    let data = generate(&dir, "30", "24");
    let target = dir.join("pairs.json").to_string_lossy().into_owned();
    let out = usj(
        &["join", "--input", data.as_str(), "--out", target.as_str()],
        Some("cli.write#0=panic"),
    );
    assert_eq!(out.status.code(), Some(3), "{}", stderr_of(&out));
    let stderr = stderr_of(&out);
    assert!(stderr.contains("error: internal panic"), "{stderr}");
    assert!(stderr.contains("injected fault at cli.write#0"), "{stderr}");
    assert!(stderr.contains("kind: panic"), "{stderr}");
    assert_no_backtrace(&stderr);
}
