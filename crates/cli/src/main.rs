//! Binary entry point for the `usj` command. All logic lives in the
//! library so it can be unit-tested.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match usj_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
