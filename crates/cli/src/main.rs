//! Binary entry point for the `usj` command. All logic lives in the
//! library so it can be unit-tested.
//!
//! The binary owns two process-wide concerns the library must not touch:
//! arming a deterministic fault-injection plan from `USJ_FAULT_PLAN`
//! (used by the integration suite), and the panic perimeter — the CLI's
//! contract is that every failure is a structured `error:` report on
//! stderr with a nonzero exit code, never a raw panic backtrace.

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Best-effort extraction of a panic payload's human-readable message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(fault) = payload.downcast_ref::<usj_fault::InjectedFault>() {
        fault.to_string()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

fn main() {
    // Deterministic fault injection: a plan in USJ_FAULT_PLAN stays armed
    // for the whole invocation (the guard disarms on exit). A malformed
    // plan is an operator error, reported like any other flag mistake.
    let _armed = match usj_fault::arm_from_env() {
        Ok(armed) => armed,
        Err(msg) => {
            eprintln!("error: invalid USJ_FAULT_PLAN: {msg}");
            std::process::exit(2);
        }
    };
    // Silence the default panic hook (it prints "thread panicked at ..."
    // plus a backtrace); the catch below converts any panic that escapes
    // the library — including injected ones — into the structured report.
    std::panic::set_hook(Box::new(|_| {}));
    let args: Vec<String> = std::env::args().skip(1).collect();
    match catch_unwind(AssertUnwindSafe(|| usj_cli::run(&args))) {
        Ok(Ok(output)) => print!("{output}"),
        Ok(Err(e)) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
        Err(payload) => {
            eprintln!("error: internal panic: {}", panic_message(&*payload));
            eprintln!("  kind: panic");
            std::process::exit(3);
        }
    }
}
