//! `usj` — command-line interface for uncertain-string similarity joins.
//!
//! Subcommands:
//!
//! * `usj generate` — write a seeded synthetic dataset as JSON;
//! * `usj join` — self-join a dataset file and print/emit similar pairs;
//! * `usj search` — probe a dataset with one uncertain string;
//! * `usj stats` — dataset summary statistics;
//! * `usj serve` — expose a dataset index as an overload-resilient TCP
//!   query service (bounded admission, degradation ladder, graceful drain);
//! * `usj shard` — serve one length band of a dataset's deterministic
//!   partition (the same server, answering collection-global ids);
//! * `usj snapshot` — write, verify, or fsck a durable on-disk index
//!   image; `usj serve --snapshot FILE` / `usj shard --snapshot FILE`
//!   boot from one through the recovery ladder for warm restarts;
//! * `usj coord` — front a fleet of `usj shard` processes behind the
//!   unchanged wire protocol: length-filter fan-out pruning, hedged
//!   probes, per-shard quarantine, and an explicit partial-result policy;
//! * `usj probe` — query a running `usj serve` instance, with backoff on
//!   `BUSY` and client-side deadline propagation (`--trace-out FILE`
//!   requests and saves the server-side Chrome trace);
//! * `usj metrics` — scrape a running `usj serve` instance's Prometheus
//!   text exposition (`METRICS` on the wire);
//! * `usj bench` — run the fixed-seed kernel benchmark suite and write a
//!   schema-stable `BENCH_<label>.json` report.
//!
//! The library surface exists so the commands are unit-testable; the
//! binary in `main.rs` is a thin wrapper.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Write as _;

use usj_core::obs::bench::{compare_reports, BenchReport, BenchSpec};
use usj_core::obs::{ChromeTraceRecorder, CollectingRecorder, TraceRecorder};
use usj_core::{FaultReport, FtOptions, JoinConfig, JoinError, Pipeline, SimilarityJoin};
use usj_datagen::{Dataset, DatasetJson, DatasetKind, DatasetSpec};
use usj_model::UncertainString;
use usj_serve::{
    Client, ClientConfig, CoordConfig, CoordinatorHandle, DegradeConfig, ProbeOutcome,
    ServeConfig, ServerHandle, ShardSpec,
};

/// CLI error type: every failure is a printable message with an exit code
/// of 2.
#[derive(Debug, PartialEq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(message: impl Into<String>) -> CliError {
    CliError(message.into())
}

/// Parsed `--flag value` arguments plus positional words.
#[derive(Debug, Default)]
pub struct Flags {
    values: BTreeMap<String, String>,
}

impl Flags {
    /// Parses flags from an argument list. Flags normally take a value
    /// (`--name value`); a flag followed by another `--flag` or by the end
    /// of the list is valueless and stored as `"true"`, so boolean
    /// switches can be written bare (`--trace` ≡ `--trace true`).
    pub fn parse(args: &[String]) -> Result<Flags, CliError> {
        let mut values = BTreeMap::new();
        let mut iter = args.iter().peekable();
        while let Some(flag) = iter.next() {
            let name = flag
                .strip_prefix("--")
                .ok_or_else(|| err(format!("unexpected argument {flag:?}")))?;
            let value = match iter.peek() {
                Some(next) if !next.starts_with("--") => iter.next().unwrap().clone(),
                _ => "true".to_string(),
            };
            values.insert(name.to_string(), value);
        }
        Ok(Flags { values })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    fn require(&self, name: &str) -> Result<&str, CliError> {
        self.get(name)
            .ok_or_else(|| err(format!("missing required flag --{name}")))
    }

    fn get_parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| err(format!("invalid value for --{name}: {v:?}"))),
        }
    }

    /// Rejects flags the command does not understand — a typo like
    /// `--treads 4` must error, not silently run with the default.
    fn assert_known(&self, allowed: &[&str]) -> Result<(), CliError> {
        for name in self.values.keys() {
            if !allowed.contains(&name.as_str()) {
                return Err(err(format!(
                    "unknown flag --{name} (expected one of: {})",
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        Ok(())
    }
}

/// Top-level usage text.
pub const USAGE: &str = "usj — similarity joins for uncertain strings

USAGE:
  usj generate --kind <dblp|protein> [--n N] [--theta F] [--seed S] --out FILE
  usj join     --input FILE [--k K] [--tau F] [--q Q] [--pipeline qfct|qct|qft|fct] [--exact true] [--threads N] [--shard-band B] [--batch-min N] [--batch-max N] [--deadline-secs S] [--checkpoint DIR] [--resume] [--out FILE] [--stats-json FILE] [--trace] [--chrome-trace FILE]
  usj search   --input FILE --probe STRING [--k K] [--tau F]
  usj stats    --input FILE
  usj serve    --input FILE [--snapshot FILE] [--k K] [--tau F] [--q Q] [--addr HOST:PORT] [--workers N] [--queue-cap N] [--queue-degrade N] [--queue-shed N] [--io-timeout-secs S] [--default-deadline-ms MS] [--retry-after-ms MS]
  usj shard    --input FILE --shards N --shard-index I [--snapshot FILE] [--k K] [--tau F] [--q Q] [--addr HOST:PORT] [serve flags]
  usj snapshot write|verify|fsck --snapshot FILE [--input FILE] [--k K] [--tau F] [--q Q] [--pipeline qfct|qct|qft|fct] [--exact true]
  usj coord    --input FILE --shard-addrs H:P,H:P,.. [--k K] [--tau F] [--addr HOST:PORT] [--workers N] [--queue-cap N] [--strict] [--hedge-after-ms MS] [--quarantine-after N] [--quarantine-cooldown-ms MS] [--io-timeout-secs S] [--default-deadline-ms MS] [--retry-after-ms MS]
  usj probe    --addr HOST:PORT --probe STRING [--k K] [--tau F] [--deadline-ms MS] [--retries N] [--trace-out FILE]
  usj metrics  --addr HOST:PORT
  usj bench    [--label L] [--n N] [--seed S] [--iters N] [--warmup N] [--out FILE] [--baseline FILE]
";

/// Runs a command line (without the program name); returns the text to
/// print on success.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some((command, rest)) = args.split_first() else {
        return Err(err(USAGE));
    };
    // `snapshot` takes a positional mode word (`write|verify|fsck`)
    // before its flags, so it parses its own argument tail.
    if command == "snapshot" {
        return cmd_snapshot(rest);
    }
    let flags = Flags::parse(rest)?;
    match command.as_str() {
        "generate" => cmd_generate(&flags),
        "join" => cmd_join(&flags),
        "search" => cmd_search(&flags),
        "stats" => cmd_stats(&flags),
        "serve" => cmd_serve(&flags),
        "shard" => cmd_shard(&flags),
        "coord" => cmd_coord(&flags),
        "probe" => cmd_probe(&flags),
        "metrics" => cmd_metrics(&flags),
        "bench" => cmd_bench(&flags),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(err(format!("unknown command {other:?}\n\n{USAGE}"))),
    }
}

fn load_dataset(flags: &Flags) -> Result<Dataset, CliError> {
    let path = flags.require("input")?;
    let text =
        std::fs::read_to_string(path).map_err(|e| err(format!("cannot read {path}: {e}")))?;
    DatasetJson::from_json(&text)
        .map_err(|e| err(format!("{path} is not a dataset JSON: {e}")))?
        .into_dataset()
        .map_err(|e| err(format!("{path} contains an invalid distribution: {e}")))
}

fn cmd_generate(flags: &Flags) -> Result<String, CliError> {
    flags.assert_known(&["kind", "n", "theta", "seed", "out"])?;
    let kind = match flags.require("kind")? {
        "dblp" => DatasetKind::Dblp,
        "protein" => DatasetKind::Protein,
        other => {
            return Err(err(format!(
                "unknown dataset kind {other:?} (dblp|protein)"
            )))
        }
    };
    let n: usize = flags.get_parse("n", 1000)?;
    let seed: u64 = flags.get_parse("seed", 42)?;
    let theta: f64 = flags.get_parse("theta", kind.default_theta())?;
    let out = flags.require("out")?;
    let ds = DatasetSpec::new(kind, n, seed).with_theta(theta).generate();
    let json = DatasetJson::from(&ds).to_json();
    usj_core::durable_atomic_write(std::path::Path::new(out), &json, "cli.write")
        .map_err(|e| err(format!("cannot write {out}: {e}")))?;
    Ok(format!(
        "wrote {n} {kind:?} strings (avg len {:.1}, avg theta {:.2}) to {out}\n",
        ds.avg_len(),
        ds.avg_theta()
    ))
}

fn join_config(flags: &Flags) -> Result<JoinConfig, CliError> {
    let k: usize = flags.get_parse("k", 2)?;
    let tau: f64 = flags.get_parse("tau", 0.1)?;
    if !(0.0..=1.0).contains(&tau) {
        return Err(err(format!("--tau must lie in [0, 1], got {tau}")));
    }
    let q: usize = flags.get_parse("q", 3)?;
    if q == 0 {
        return Err(err("--q must be at least 1"));
    }
    let pipeline = match flags.get("pipeline").unwrap_or("qfct") {
        "qfct" => Pipeline::Qfct,
        "qct" => Pipeline::Qct,
        "qft" => Pipeline::Qft,
        "fct" => Pipeline::Fct,
        other => {
            return Err(err(format!(
                "unknown pipeline {other:?} (qfct|qct|qft|fct)"
            )))
        }
    };
    let exact: bool = flags.get_parse("exact", false)?;
    Ok(JoinConfig::new(k, tau)
        .with_q(q)
        .with_pipeline(pipeline)
        .with_early_stop(!exact))
}

fn cmd_join(flags: &Flags) -> Result<String, CliError> {
    flags.assert_known(&[
        "input",
        "k",
        "tau",
        "q",
        "pipeline",
        "exact",
        "threads",
        "shard-band",
        "batch-min",
        "batch-max",
        "deadline-secs",
        "checkpoint",
        "resume",
        "out",
        "stats-json",
        "trace",
        "chrome-trace",
    ])?;
    let ds = load_dataset(flags)?;
    let mut config = join_config(flags)?;
    // Parallel-scheduler knobs: how many distinct lengths one wave spans
    // (0 = auto) and the work-stealing batch-size range.
    let shard_band: usize = flags.get_parse("shard-band", config.shard_band)?;
    let batch_min: usize = flags.get_parse("batch-min", config.batch_min)?;
    let batch_max: usize = flags.get_parse("batch-max", config.batch_max)?;
    if batch_min == 0 {
        return Err(err("--batch-min must be at least 1"));
    }
    if batch_max < batch_min {
        return Err(err(format!(
            "--batch-max ({batch_max}) must be at least --batch-min ({batch_min})"
        )));
    }
    config = config
        .with_shard_band(shard_band)
        .with_batch_range(batch_min, batch_max);
    let threads: usize = flags.get_parse("threads", 1)?;
    let trace: bool = flags.get_parse("trace", false)?;
    // Fault-tolerance knobs: a wall-clock deadline, a checkpoint directory
    // committed after every completed wave, and resumption from one.
    let deadline_secs: f64 = flags.get_parse("deadline-secs", 0.0)?;
    if !deadline_secs.is_finite() || deadline_secs < 0.0 {
        return Err(err(format!(
            "--deadline-secs must be a finite non-negative number, got {deadline_secs}"
        )));
    }
    if deadline_secs > 0.0 {
        config = config.with_deadline(Some(std::time::Duration::from_secs_f64(deadline_secs)));
    }
    let resume: bool = flags.get_parse("resume", false)?;
    let checkpoint_dir = flags.get("checkpoint").map(std::path::PathBuf::from);
    if resume && checkpoint_dir.is_none() {
        return Err(err("--resume requires --checkpoint DIR"));
    }
    let ft = FtOptions {
        checkpoint_dir,
        resume,
    };
    let ft_engaged = ft.checkpoint_dir.is_some() || ft.resume || config.deadline.is_some();
    let stats_json = flags.get("stats-json");
    let chrome_trace = flags.get("chrome-trace");
    let (result, report) = if stats_json.is_none() && !trace && chrome_trace.is_none() {
        if ft_engaged {
            let (result, report, _recorder) = usj_core::par_self_join_ft(
                config,
                ds.alphabet.size(),
                &ds.strings,
                threads,
                &ft,
                || usj_core::obs::NoopRecorder,
            )
            .map_err(report_join_error)?;
            (result, Some(report))
        } else if threads == 1 {
            (
                SimilarityJoin::new(config, ds.alphabet.size()).self_join(&ds.strings),
                None,
            )
        } else {
            (
                usj_core::par_self_join(config, ds.alphabet.size(), &ds.strings, threads),
                None,
            )
        }
    } else {
        // One statically-known recorder shape for every instrumented run:
        // the collector always gathers the JSON snapshot, the tracer
        // writes per-probe lines to stderr only under --trace, and the
        // Chrome recorder buffers trace-event spans only under
        // --chrome-trace (silent lanes cost a branch per event). In the
        // parallel join each worker gets its own tuple (lock-free hot
        // loop); they are merged after the join.
        let make = || {
            let tracer = if trace {
                TraceRecorder::stderr()
            } else {
                TraceRecorder::silent()
            };
            let chrome = if chrome_trace.is_some() {
                ChromeTraceRecorder::new()
            } else {
                ChromeTraceRecorder::silent()
            };
            (CollectingRecorder::new(), (tracer, chrome))
        };
        let (result, report, recorder) = if ft_engaged {
            let (result, report, recorder) = usj_core::par_self_join_ft(
                config,
                ds.alphabet.size(),
                &ds.strings,
                threads,
                &ft,
                make,
            )
            .map_err(report_join_error)?;
            (result, Some(report), recorder)
        } else if threads == 1 {
            let mut recorder = make();
            let result = SimilarityJoin::new(config, ds.alphabet.size())
                .self_join_recorded(&ds.strings, &mut recorder);
            (result, None, recorder)
        } else {
            let (result, recorder) = usj_core::par_self_join_recorded(
                config,
                ds.alphabet.size(),
                &ds.strings,
                threads,
                make,
            );
            (result, None, recorder)
        };
        let (collected, (_tracer, chrome)) = recorder;
        if let Some(path) = stats_json {
            usj_core::durable_atomic_write(std::path::Path::new(path), &collected.to_json(), "cli.write")
                .map_err(|e| err(format!("cannot write {path}: {e}")))?;
        }
        if let Some(path) = chrome_trace {
            // finish() is Some exactly when --chrome-trace enabled the lane.
            let json = chrome
                .finish()
                .unwrap_or_else(|| "{\"traceEvents\":[]}".to_string());
            usj_core::durable_atomic_write(std::path::Path::new(path), &json, "cli.write")
                .map_err(|e| err(format!("cannot write {path}: {e}")))?;
        }
        (result, report)
    };
    let mut out = String::new();
    for pair in &result.pairs {
        let _ = writeln!(
            out,
            "{}\t{}\t{:.6}\t{}\t{}",
            pair.left,
            pair.right,
            pair.prob,
            ds.strings[pair.left as usize].display(&ds.alphabet),
            ds.strings[pair.right as usize].display(&ds.alphabet),
        );
    }
    let _ = writeln!(out, "# {}", result.stats.summary());
    if let Some(report) = &report {
        append_fault_report(&mut out, report);
    }
    if let Some(path) = flags.get("out") {
        let records: Vec<serde_json::Value> = result
            .pairs
            .iter()
            .map(|p| serde_json::json!({"left": p.left, "right": p.right, "prob": p.prob}))
            .collect();
        let text = serde_json::to_string_pretty(&records).expect("pairs serialise");
        usj_core::durable_atomic_write(std::path::Path::new(path), &text, "cli.write")
            .map_err(|e| err(format!("cannot write {path}: {e}")))?;
    }
    Ok(out)
}

/// Renders the fault-tolerant driver's [`FaultReport`] as `#`-comment
/// lines after the summary, so recovered faults are visible without
/// disturbing the tab-separated pair records.
fn append_fault_report(out: &mut String, report: &FaultReport) {
    if !report.quarantined.is_empty() {
        let ids: Vec<String> = report.quarantined.iter().map(u32::to_string).collect();
        let _ = writeln!(
            out,
            "# WARNING: results incomplete; quarantined probes: {}",
            ids.join(", ")
        );
    }
    if report.waves_resumed > 0
        || report.batches_retried > 0
        || report.faults_injected > 0
        || !report.quarantined.is_empty()
    {
        let _ = writeln!(
            out,
            "# fault-tolerance: waves_resumed={} batches_retried={} probes_quarantined={} faults_injected={}",
            report.waves_resumed,
            report.batches_retried,
            report.quarantined.len(),
            report.faults_injected
        );
    }
}

/// Turns a [`JoinError`] into the structured multi-line report the CLI
/// prints on stderr (via `error: {message}`): the first line says what
/// happened, the indented lines carry machine-checkable fields, and a
/// resume hint is included whenever a checkpoint survived.
fn report_join_error(e: JoinError) -> CliError {
    let mut msg = format!("join failed: {e}\n");
    let (kind, wave, completed, checkpoint) = match &e {
        JoinError::Deadline {
            completed_waves,
            checkpoint,
            ..
        } => ("deadline", None, Some(*completed_waves), checkpoint.clone()),
        JoinError::Faulted {
            wave,
            completed_waves,
            checkpoint,
            ..
        } => ("fault", Some(*wave), Some(*completed_waves), checkpoint.clone()),
        JoinError::Checkpoint(_) => ("checkpoint", None, None, None),
    };
    let _ = writeln!(msg, "  kind: {kind}");
    if let Some(w) = wave {
        let _ = writeln!(msg, "  wave: {w}");
    }
    if let Some(c) = completed {
        let _ = writeln!(msg, "  completed_waves: {c}");
    }
    match &checkpoint {
        Some(path) => {
            let _ = writeln!(msg, "  checkpoint: {}", path.display());
            let _ = write!(
                msg,
                "  hint: re-run with --checkpoint {} --resume to continue",
                path.parent().unwrap_or(std::path::Path::new(".")).display()
            );
        }
        None => {
            let _ = write!(msg, "  checkpoint: none");
        }
    }
    CliError(msg)
}

fn cmd_search(flags: &Flags) -> Result<String, CliError> {
    flags.assert_known(&["input", "probe", "k", "tau", "q", "pipeline", "exact"])?;
    let ds = load_dataset(flags)?;
    let config = join_config(flags)?;
    let probe_text = flags.require("probe")?;
    let probe = UncertainString::parse(probe_text, &ds.alphabet)
        .map_err(|e| err(format!("invalid probe: {e}")))?;
    let collection =
        usj_core::IndexedCollection::build(config, ds.alphabet.size(), ds.strings.clone());
    let hits = collection.search(&probe);
    let mut out = String::new();
    for hit in &hits {
        let _ = writeln!(
            out,
            "{}\t{:.6}\t{}",
            hit.id,
            hit.prob,
            ds.strings[hit.id as usize].display(&ds.alphabet)
        );
    }
    let _ = writeln!(out, "# {} hits", hits.len());
    Ok(out)
}

fn cmd_stats(flags: &Flags) -> Result<String, CliError> {
    flags.assert_known(&["input"])?;
    let ds = load_dataset(flags)?;
    let mut worlds_exceeding = 0usize;
    let mut max_uncertain = 0usize;
    for s in &ds.strings {
        max_uncertain = max_uncertain.max(s.num_uncertain());
        if s.num_worlds_capped(1 << 20).is_none() {
            worlds_exceeding += 1;
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "strings:              {}", ds.strings.len());
    let _ = writeln!(out, "alphabet size:        {}", ds.alphabet.size());
    let _ = writeln!(out, "avg length:           {:.2}", ds.avg_len());
    let _ = writeln!(out, "avg theta:            {:.3}", ds.avg_theta());
    let _ = writeln!(out, "max uncertain pos:    {max_uncertain}");
    let _ = writeln!(out, "strings > 2^20 worlds: {worlds_exceeding}");
    Ok(out)
}

/// Flags shared by every serving topology (`usj serve` / `usj shard`).
const SERVE_FLAGS: &[&str] = &[
    "input",
    "snapshot",
    "k",
    "tau",
    "q",
    "pipeline",
    "exact",
    "addr",
    "workers",
    "queue-cap",
    "queue-degrade",
    "queue-shed",
    "io-timeout-secs",
    "default-deadline-ms",
    "retry-after-ms",
];

/// Parses the single-server tuning flags into a [`ServeConfig`].
fn serve_config_from_flags(flags: &Flags, default_addr: &str) -> Result<ServeConfig, CliError> {
    let mut cfg = ServeConfig {
        addr: flags.get("addr").unwrap_or(default_addr).to_string(),
        ..ServeConfig::default()
    };
    cfg.workers = flags.get_parse("workers", cfg.workers)?;
    if cfg.workers == 0 {
        return Err(err("--workers must be at least 1"));
    }
    cfg.queue_cap = flags.get_parse("queue-cap", cfg.queue_cap)?;
    if cfg.queue_cap == 0 {
        return Err(err("--queue-cap must be at least 1"));
    }
    let io_timeout_secs: f64 = flags.get_parse("io-timeout-secs", 5.0)?;
    if !io_timeout_secs.is_finite() || io_timeout_secs <= 0.0 {
        return Err(err(format!(
            "--io-timeout-secs must be a finite positive number, got {io_timeout_secs}"
        )));
    }
    cfg.io_timeout = std::time::Duration::from_secs_f64(io_timeout_secs);
    let default_deadline_ms: u64 = flags.get_parse("default-deadline-ms", 0)?;
    if default_deadline_ms > 0 {
        cfg.default_deadline = Some(std::time::Duration::from_millis(default_deadline_ms));
    }
    cfg.retry_after_ms = flags.get_parse("retry-after-ms", cfg.retry_after_ms)?;
    let degrade = DegradeConfig::default();
    let queue_degrade: usize = flags.get_parse("queue-degrade", degrade.queue_degrade)?;
    let queue_shed: usize = flags.get_parse("queue-shed", degrade.queue_shed)?;
    if queue_shed < queue_degrade {
        return Err(err(format!(
            "--queue-shed ({queue_shed}) must be at least --queue-degrade ({queue_degrade})"
        )));
    }
    cfg.degrade = DegradeConfig {
        queue_degrade,
        queue_shed,
        ..degrade
    };
    Ok(cfg)
}

/// Builds the index and starts the query service without blocking —
/// split from [`cmd_serve`] so tests can reach the bound address and
/// drive the drain themselves.
fn start_serve(flags: &Flags) -> Result<ServerHandle, CliError> {
    flags.assert_known(SERVE_FLAGS)?;
    let ds = load_dataset(flags)?;
    let config = join_config(flags)?;
    let cfg = serve_config_from_flags(flags, "127.0.0.1:7878")?;
    let k = config.k;
    let tau = config.tau;
    let n = ds.strings.len();
    let (handle, boot) = match flags.get("snapshot") {
        Some(snap) => {
            let (handle, report) = usj_serve::serve_from_snapshot(
                std::path::Path::new(snap),
                config,
                ds.strings,
                ds.alphabet,
                cfg,
            )
            .map_err(|e| err(format!("cannot serve snapshot {snap}: {e}")))?;
            (handle, describe_boot(&report))
        }
        None => {
            let collection =
                usj_core::IndexedCollection::build(config, ds.alphabet.size(), ds.strings);
            let handle = usj_serve::serve(collection, ds.alphabet, cfg)
                .map_err(|e| err(format!("cannot bind query service: {e}")))?;
            (handle, "cold build".to_string())
        }
    };
    // The banner goes to stderr: stdout is reserved for the final stats
    // snapshot flushed on drain.
    eprintln!(
        "usj-serve listening on {} (k={k} tau={tau}, {n} strings, {boot}); \
         send SHUTDOWN to drain",
        handle.addr(),
    );
    Ok(handle)
}

/// One-line boot summary for the serve/shard banners: warm/cold, the
/// recovery-ladder rung, the snapshot age, and any bands still pending
/// their background rebuild.
fn describe_boot(report: &usj_core::SnapshotReport) -> String {
    let mut s = format!(
        "{} start, rung {:?}",
        if report.warm { "warm" } else { "cold" },
        report.rung
    );
    if let Some(age) = report.age_seconds {
        let _ = write!(s, ", snapshot age {age}s");
    }
    if !report.degraded_bands.is_empty() {
        let _ = write!(
            s,
            ", {} band(s) degraded pending rebuild",
            report.degraded_bands.len()
        );
    }
    s
}

fn cmd_serve(flags: &Flags) -> Result<String, CliError> {
    let handle = start_serve(flags)?;
    // Blocks until a wire-level SHUTDOWN drains the server; the returned
    // snapshot is the flushed final stats.
    let stats = handle.wait();
    Ok(format!("{stats}\n"))
}

/// Starts one length-band shard of an `--shards`-way fleet. Every shard
/// process must be launched from the same dataset file with the same
/// `--shards` count so the fleet's partitions agree.
fn start_shard(flags: &Flags) -> Result<ServerHandle, CliError> {
    let mut known: Vec<&str> = SERVE_FLAGS.to_vec();
    known.extend(["shards", "shard-index"]);
    flags.assert_known(&known)?;
    let shards: usize = flags.get_parse("shards", 0)?;
    if shards == 0 {
        return Err(err("--shards must be at least 1"));
    }
    let shard_index: usize = flags.get_parse("shard-index", shards)?;
    if shard_index >= shards {
        return Err(err(format!(
            "--shard-index must lie in 0..{shards}, got {shard_index}"
        )));
    }
    let ds = load_dataset(flags)?;
    let config = join_config(flags)?;
    // Shards default to an ephemeral port: the operator pastes the bound
    // addresses into the coordinator's --shard-addrs.
    let cfg = serve_config_from_flags(flags, "127.0.0.1:0")?;
    let k = config.k;
    let tau = config.tau;
    let partition = usj_serve::shard_partition(&ds.strings, shards);
    let handle = match flags.get("snapshot") {
        // The flag names the fleet-wide base path; each shard derives
        // its own `<base>.shard<idx>` image.
        Some(base) => {
            let (handle, report) = usj_serve::serve_shard_from_snapshot(
                std::path::Path::new(base),
                config,
                ds.alphabet,
                &ds.strings,
                &partition,
                shard_index,
                cfg,
            )
            .map_err(|e| err(format!("cannot serve shard snapshot {base}: {e}")))?;
            eprintln!("usj-serve shard {shard_index}: {}", describe_boot(&report));
            handle
        }
        None => {
            usj_serve::serve_shard(config, ds.alphabet, &ds.strings, &partition, shard_index, cfg)
                .map_err(|e| err(format!("cannot bind shard: {e}")))?
        }
    };
    let slice = &partition.shards[shard_index];
    let band = if slice.ids.is_empty() {
        "empty band".to_string()
    } else {
        format!("lengths {}..={}", slice.min_len, slice.max_len)
    };
    eprintln!(
        "usj-serve shard {shard_index}/{shards} listening on {} (k={k} tau={tau}, {band}, {} strings); \
         send SHUTDOWN to drain",
        handle.addr(),
        slice.ids.len()
    );
    Ok(handle)
}

fn cmd_shard(flags: &Flags) -> Result<String, CliError> {
    let handle = start_shard(flags)?;
    let stats = handle.wait();
    Ok(format!("{stats}\n"))
}

/// Flags of the `usj snapshot` modes: the image path plus the dataset
/// and configuration needed to build (or fingerprint) the index.
const SNAPSHOT_FLAGS: &[&str] = &["snapshot", "input", "k", "tau", "q", "pipeline", "exact"];

/// `usj snapshot <write|verify|fsck>` — the durable index-image
/// toolbox. The mode is positional (before the flags) because the
/// three verbs take different flag subsets.
fn cmd_snapshot(args: &[String]) -> Result<String, CliError> {
    let Some((mode, rest)) = args.split_first() else {
        return Err(err(
            "usage: usj snapshot <write|verify|fsck> --snapshot FILE [--input FILE] [config flags]",
        ));
    };
    let flags = Flags::parse(rest)?;
    match mode.as_str() {
        "write" => snapshot_write(&flags),
        "verify" => snapshot_verify(&flags),
        "fsck" => snapshot_fsck(&flags),
        other => Err(err(format!(
            "unknown snapshot mode {other:?} (write|verify|fsck)"
        ))),
    }
}

/// Builds the index from the dataset and commits it durably (write a
/// temporary, fsync, atomic rename — see `usj_core::snapshot`).
fn snapshot_write(flags: &Flags) -> Result<String, CliError> {
    flags.assert_known(SNAPSHOT_FLAGS)?;
    let path = flags.require("snapshot")?;
    let ds = load_dataset(flags)?;
    let config = join_config(flags)?;
    let coll = usj_core::IndexedCollection::build(config, ds.alphabet.size(), ds.strings);
    let report = usj_core::snapshot::write(std::path::Path::new(path), &coll)
        .map_err(|e| err(format!("cannot write snapshot {path}: {e}")))?;
    Ok(format!(
        "wrote snapshot {path}: {} bytes, {} sections, fingerprint {:016x}\n",
        report.bytes, report.sections, report.fingerprint
    ))
}

/// Checksum walk only — header, footer, and every section, with a
/// per-section verdict. Any corruption is a hard error (exit code 2),
/// so scripts can gate restarts on `usj snapshot verify`.
fn snapshot_verify(flags: &Flags) -> Result<String, CliError> {
    flags.assert_known(&["snapshot"])?;
    let path = flags.require("snapshot")?;
    let report = usj_core::snapshot::verify(std::path::Path::new(path))
        .map_err(|e| err(format!("cannot verify snapshot {path}: {e}")))?;
    let mut out = format!("snapshot {path}: fingerprint {:016x}\n", report.fingerprint);
    for s in &report.sections {
        let _ = writeln!(
            out,
            "  {:<12} {:>8} bytes  {}",
            s.name,
            s.bytes,
            if s.ok { "ok" } else { "CORRUPT" }
        );
    }
    if report.ok {
        out.push_str("verify: ok\n");
        Ok(out)
    } else {
        Err(err(format!("{out}verify FAILED: {}", report.diagnosis)))
    }
}

/// Full repair check: walks the checksums, then drives the recovery
/// ladder against the dataset (strict salvage, rebuilding damaged
/// bands inline) and reports the rung the load landed on.
fn snapshot_fsck(flags: &Flags) -> Result<String, CliError> {
    flags.assert_known(SNAPSHOT_FLAGS)?;
    let path = flags.require("snapshot")?;
    let ds = load_dataset(flags)?;
    let config = join_config(flags)?;
    let checksums = usj_core::snapshot::verify(std::path::Path::new(path));
    let loaded = usj_core::snapshot::load(
        std::path::Path::new(path),
        &config,
        ds.alphabet.size(),
        ds.strings,
        usj_core::SalvageMode::Strict,
    )
    .map_err(|e| err(format!("fsck {path}: {e}")))?;
    let r = &loaded.report;
    let mut out = String::new();
    match checksums {
        Ok(v) if v.ok => {
            let _ = writeln!(out, "fsck {path}: checksums ok");
        }
        Ok(v) => {
            let _ = writeln!(out, "fsck {path}: {}", v.diagnosis);
        }
        Err(e) => {
            let _ = writeln!(out, "fsck {path}: unreadable: {e}");
        }
    }
    let _ = writeln!(
        out,
        "recovery: rung {:?}, {} bands ({} salvaged, {} rebuilt), {} corruption(s) detected",
        r.rung, r.bands_total, r.bands_salvaged, r.bands_rebuilt, r.corruptions_detected
    );
    let _ = writeln!(out, "diagnosis: {}", r.reason);
    Ok(out)
}

/// Flags accepted by the coordinator: the shared serving tuning knobs
/// minus the single-node degrade thresholds, plus the fleet topology and
/// hedging/quarantine policy.
const COORD_FLAGS: &[&str] = &[
    "input",
    "k",
    "tau",
    "q",
    "pipeline",
    "exact",
    "addr",
    "workers",
    "queue-cap",
    "io-timeout-secs",
    "default-deadline-ms",
    "retry-after-ms",
    "shard-addrs",
    "strict",
    "hedge-after-ms",
    "quarantine-after",
    "quarantine-cooldown-ms",
];

/// Starts the scatter-gather coordinator in front of an already-running
/// shard fleet. The dataset file is loaded only to recompute the length
/// bands — the coordinator holds no index of its own.
fn start_coord(flags: &Flags) -> Result<CoordinatorHandle, CliError> {
    flags.assert_known(COORD_FLAGS)?;
    let ds = load_dataset(flags)?;
    let config = join_config(flags)?;
    let addrs: Vec<String> = flags
        .require("shard-addrs")?
        .split(',')
        .map(|a| a.trim().to_string())
        .filter(|a| !a.is_empty())
        .collect();
    if addrs.is_empty() {
        return Err(err("--shard-addrs needs at least one HOST:PORT entry"));
    }
    let partition = usj_serve::shard_partition(&ds.strings, addrs.len());
    let specs = ShardSpec::from_partition(&partition, &addrs).map_err(err)?;
    let mut cfg = CoordConfig {
        addr: flags.get("addr").unwrap_or("127.0.0.1:7979").to_string(),
        k: config.k,
        tau: config.tau,
        strict: flags.get_parse("strict", false)?,
        ..CoordConfig::default()
    };
    cfg.workers = flags.get_parse("workers", cfg.workers)?;
    if cfg.workers == 0 {
        return Err(err("--workers must be at least 1"));
    }
    cfg.queue_cap = flags.get_parse("queue-cap", cfg.queue_cap)?;
    if cfg.queue_cap == 0 {
        return Err(err("--queue-cap must be at least 1"));
    }
    let io_timeout_secs: f64 = flags.get_parse("io-timeout-secs", 5.0)?;
    if !io_timeout_secs.is_finite() || io_timeout_secs <= 0.0 {
        return Err(err(format!(
            "--io-timeout-secs must be a finite positive number, got {io_timeout_secs}"
        )));
    }
    cfg.io_timeout = std::time::Duration::from_secs_f64(io_timeout_secs);
    let default_deadline_ms: u64 = flags.get_parse("default-deadline-ms", 0)?;
    if default_deadline_ms > 0 {
        cfg.default_deadline = Some(std::time::Duration::from_millis(default_deadline_ms));
    }
    cfg.retry_after_ms = flags.get_parse("retry-after-ms", cfg.retry_after_ms)?;
    let hedge_after_ms: u64 =
        flags.get_parse("hedge-after-ms", cfg.hedge_after.as_millis() as u64)?;
    cfg.hedge_after = std::time::Duration::from_millis(hedge_after_ms);
    cfg.quarantine_after = flags.get_parse("quarantine-after", cfg.quarantine_after)?;
    if cfg.quarantine_after == 0 {
        return Err(err("--quarantine-after must be at least 1"));
    }
    let cooldown_ms: u64 = flags.get_parse(
        "quarantine-cooldown-ms",
        cfg.quarantine_cooldown.as_millis() as u64,
    )?;
    cfg.quarantine_cooldown = std::time::Duration::from_millis(cooldown_ms);
    let k = cfg.k;
    let tau = cfg.tau;
    let strict = cfg.strict;
    let n = specs.len();
    let handle = usj_serve::coordinate(specs, ds.alphabet, cfg)
        .map_err(|e| err(format!("cannot bind coordinator: {e}")))?;
    eprintln!(
        "usj-coord listening on {} (k={k} tau={tau}, {n} shards, {} partial results); \
         send SHUTDOWN to drain",
        handle.addr(),
        if strict { "refusing" } else { "marking" }
    );
    Ok(handle)
}

fn cmd_coord(flags: &Flags) -> Result<String, CliError> {
    let handle = start_coord(flags)?;
    let stats = handle.wait();
    Ok(format!("{stats}\n"))
}

fn cmd_probe(flags: &Flags) -> Result<String, CliError> {
    flags.assert_known(&["addr", "probe", "k", "tau", "deadline-ms", "retries", "trace-out"])?;
    let addr = flags.require("addr")?;
    let probe = flags.require("probe")?;
    let k: usize = flags.get_parse("k", 2)?;
    let tau: f64 = flags.get_parse("tau", 0.1)?;
    let max_retries = flags.get_parse("retries", ClientConfig::default().max_retries)?;
    let deadline_ms: u64 = flags.get_parse("deadline-ms", 0)?;
    let cfg = ClientConfig {
        max_retries,
        deadline: (deadline_ms > 0).then(|| std::time::Duration::from_millis(deadline_ms)),
        ..ClientConfig::default()
    };
    let mut client = Client::new(addr, cfg);
    let trace_out = flags.get("trace-out");
    let mut trace_note = String::new();
    let outcome = if let Some(path) = trace_out {
        // Traced probe: mint a trace id, send it with the request, and
        // save the server-echoed Chrome trace-event JSON for Perfetto.
        let (outcome, probe_trace) = client
            .probe_traced(k, tau, probe)
            .map_err(|e| err(format!("probe failed: {e}")))?;
        match probe_trace {
            Some(t) => {
                usj_core::durable_atomic_write(std::path::Path::new(path), &t.json, "cli.write")
                    .map_err(|e| err(format!("cannot write {path}: {e}")))?;
                let _ = writeln!(trace_note, "# trace {:016x} written to {path}", t.trace_id);
            }
            None => {
                let _ = writeln!(trace_note, "# no trace returned (request answered pre-probe)");
            }
        }
        outcome
    } else {
        client
            .probe(k, tau, probe)
            .map_err(|e| err(format!("probe failed: {e}")))?
    };
    let mut out = String::new();
    match outcome {
        ProbeOutcome::Exact(hits) => {
            for (id, prob) in &hits {
                let _ = writeln!(out, "{id}\t{prob:.6}");
            }
            let _ = writeln!(out, "# {} hits (exact)", hits.len());
        }
        ProbeOutcome::Degraded { ids, shards } => {
            for id in &ids {
                let _ = writeln!(out, "{id}");
            }
            match shards {
                Some((ok, total)) => {
                    let _ = writeln!(
                        out,
                        "# {} candidates (DEGRADED: partial fleet, {ok}/{total} shards answered)",
                        ids.len()
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "# {} candidates (DEGRADED: filter-only superset, server under load)",
                        ids.len()
                    );
                }
            }
        }
    }
    out.push_str(&trace_note);
    Ok(out)
}

fn cmd_metrics(flags: &Flags) -> Result<String, CliError> {
    flags.assert_known(&["addr"])?;
    let addr = flags.require("addr")?;
    let mut client = Client::new(addr, ClientConfig::default());
    client
        .metrics()
        .map_err(|e| err(format!("metrics scrape failed: {e}")))
}

fn cmd_bench(flags: &Flags) -> Result<String, CliError> {
    flags.assert_known(&["label", "n", "seed", "iters", "warmup", "out", "baseline"])?;
    let label = flags.get("label").unwrap_or("local");
    if label.is_empty()
        || !label
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
    {
        return Err(err(format!(
            "--label must be non-empty [A-Za-z0-9_-], got {label:?}"
        )));
    }
    // Default n matches the experiment harness's DEFAULT_N scale.
    let n: usize = flags.get_parse("n", 2000)?;
    if n < 8 {
        return Err(err("--n must be at least 8"));
    }
    let seed: u64 = flags.get_parse("seed", 0x5347_4D4F_4421_0006)?;
    let iters: u32 = flags.get_parse("iters", 32)?;
    if iters == 0 {
        return Err(err("--iters must be at least 1"));
    }
    let warmup: u32 = flags.get_parse("warmup", 3)?;
    let report = usj_core::bench::kernel_suite(label, n, seed, BenchSpec { warmup, iters });
    let default_out = format!("BENCH_{label}.json");
    let out_path = flags.get("out").unwrap_or(default_out.as_str());
    usj_core::durable_atomic_write(std::path::Path::new(out_path), &report.to_json(), "cli.write")
        .map_err(|e| err(format!("cannot write {out_path}: {e}")))?;
    let mut out = String::new();
    for b in &report.benches {
        let _ = writeln!(
            out,
            "{}: median={}ns mean={}ns min={}ns max={}ns (iters={})",
            b.name, b.median_ns, b.mean_ns, b.min_ns, b.max_ns, b.iters
        );
    }
    let _ = writeln!(out, "# wrote {out_path} (n={n}, seed={seed:#018x})");
    if let Some(base_path) = flags.get("baseline") {
        let base_text = std::fs::read_to_string(base_path)
            .map_err(|e| err(format!("cannot read {base_path}: {e}")))?;
        let base = BenchReport::parse(&base_text)
            .map_err(|e| err(format!("{base_path} is not a bench report: {e}")))?;
        let mut regressed = false;
        for line in compare_reports(&base, &report, 0.15) {
            regressed |= line.regressed;
            let _ = writeln!(out, "{}", line.rendered);
        }
        if regressed {
            return Err(err(format!(
                "median regression beyond 15% vs {base_path}:\n{out}"
            )));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn tmpfile(name: &str) -> String {
        let dir = std::env::temp_dir().join("usj-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn generate_join_search_roundtrip() {
        let data = tmpfile("roundtrip.json");
        let out = run(&args(&[
            "generate", "--kind", "dblp", "--n", "60", "--seed", "5", "--out", &data,
        ]))
        .unwrap();
        assert!(out.contains("wrote 60"));

        let joined = run(&args(&[
            "join", "--input", &data, "--k", "2", "--tau", "0.1",
        ]))
        .unwrap();
        assert!(joined.contains("# n=60"), "{joined}");

        let stats = run(&args(&["stats", "--input", &data])).unwrap();
        assert!(stats.contains("strings:              60"));

        // Probe with an indexed string's most probable world: must hit.
        let ds_text = std::fs::read_to_string(&data).unwrap();
        let ds = DatasetJson::from_json(&ds_text)
            .unwrap()
            .into_dataset()
            .unwrap();
        let probe = ds
            .alphabet
            .decode(&ds.strings[0].most_probable_world().instance);
        let found = run(&args(&[
            "search", "--input", &data, "--probe", &probe, "--k", "2", "--tau", "0.05",
        ]))
        .unwrap();
        assert!(found.lines().any(|l| l.starts_with("0\t")), "{found}");
    }

    #[test]
    fn join_writes_pairs_json() {
        let data = tmpfile("pairs-in.json");
        let pairs = tmpfile("pairs-out.json");
        run(&args(&[
            "generate", "--kind", "dblp", "--n", "50", "--seed", "9", "--out", &data,
        ]))
        .unwrap();
        run(&args(&["join", "--input", &data, "--out", &pairs])).unwrap();
        let parsed: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&pairs).unwrap()).unwrap();
        assert!(parsed.is_array());
    }

    #[test]
    fn pipeline_flag_variants_agree() {
        let data = tmpfile("pipelines.json");
        run(&args(&[
            "generate", "--kind", "protein", "--n", "40", "--seed", "3", "--out", &data,
        ]))
        .unwrap();
        let mut outputs = Vec::new();
        for p in ["qfct", "qct", "qft", "fct"] {
            let out = run(&args(&[
                "join",
                "--input",
                &data,
                "--k",
                "4",
                "--tau",
                "0.01",
                "--pipeline",
                p,
            ]))
            .unwrap();
            let pairs: Vec<&str> = out.lines().filter(|l| !l.starts_with('#')).collect();
            outputs.push(pairs.join("\n"));
        }
        assert!(outputs.windows(2).all(|w| {
            // Pair ids identical (probabilities can differ under early stop).
            let ids = |s: &str| -> Vec<(String, String)> {
                s.lines()
                    .map(|l| {
                        let mut it = l.split('\t');
                        (it.next().unwrap().into(), it.next().unwrap().into())
                    })
                    .collect()
            };
            ids(&w[0]) == ids(&w[1])
        }));
    }

    #[test]
    fn parallel_join_flag_matches_sequential() {
        let data = tmpfile("parallel.json");
        run(&args(&[
            "generate", "--kind", "dblp", "--n", "60", "--seed", "2", "--out", &data,
        ]))
        .unwrap();
        let seq = run(&args(&["join", "--input", &data])).unwrap();
        let par = run(&args(&["join", "--input", &data, "--threads", "3"])).unwrap();
        let pairs = |s: &str| -> Vec<String> {
            s.lines()
                .filter(|l| !l.starts_with('#'))
                .map(|l| l.split('\t').take(2).collect::<Vec<_>>().join(","))
                .collect()
        };
        assert_eq!(pairs(&seq), pairs(&par));

        // The scheduler knobs change the wave plan and batching, never
        // the output.
        let banded = run(&args(&[
            "join",
            "--input",
            &data,
            "--threads",
            "3",
            "--shard-band",
            "1",
            "--batch-min",
            "1",
            "--batch-max",
            "4",
        ]))
        .unwrap();
        assert_eq!(pairs(&seq), pairs(&banded));
    }

    #[test]
    fn scheduler_knobs_are_validated() {
        let data = tmpfile("knobs.json");
        run(&args(&[
            "generate", "--kind", "dblp", "--n", "20", "--seed", "4", "--out", &data,
        ]))
        .unwrap();
        let e = run(&args(&["join", "--input", &data, "--batch-min", "0"])).unwrap_err();
        assert!(e.0.contains("--batch-min"), "{e:?}");
        let e = run(&args(&[
            "join",
            "--input",
            &data,
            "--batch-min",
            "8",
            "--batch-max",
            "2",
        ]))
        .unwrap_err();
        assert!(e.0.contains("--batch-max"), "{e:?}");
        let e = run(&args(&["join", "--input", &data, "--shard-band", "x"])).unwrap_err();
        assert!(e.0.contains("--shard-band"), "{e:?}");
    }

    /// `--stats-json` writes the observability snapshot; its schema is
    /// pinned here so downstream tooling can rely on the keys, and the
    /// snapshot must agree with the collection (probes == n).
    #[test]
    fn stats_json_snapshot_has_stable_schema() {
        let data = tmpfile("obs-in.json");
        run(&args(&[
            "generate", "--kind", "dblp", "--n", "60", "--seed", "7", "--out", &data,
        ]))
        .unwrap();
        for threads in ["1", "3"] {
            let snap = tmpfile(&format!("obs-{threads}.json"));
            let out = run(&args(&[
                "join",
                "--input",
                &data,
                "--threads",
                threads,
                "--stats-json",
                &snap,
            ]))
            .unwrap();
            let v: serde_json::Value =
                serde_json::from_str(&std::fs::read_to_string(&snap).unwrap()).unwrap();
            assert_eq!(v["schema_version"], 1, "threads={threads}");
            assert_eq!(v["probes"], 60, "threads={threads}");
            for key in [
                "pairs_in_scope",
                "qgram_survivors",
                "freq_survivors",
                "output_pairs",
            ] {
                assert!(v["counters"][key].is_u64(), "missing counter {key}");
            }
            for key in ["index_bytes", "peak_index_bytes", "num_strings"] {
                assert!(v["gauges"][key].is_u64(), "missing gauge {key}");
            }
            for phase in ["qgram", "freq", "cdf", "verify", "index", "total"] {
                for field in ["probes", "total_ns", "p50_ns", "p90_ns", "p99_ns", "max_ns"] {
                    assert!(v["phases"][phase][field].is_u64(), "phases.{phase}.{field}");
                }
            }
            assert!(v["per_probe"]["pairs_in_scope"]["sum"].is_u64());
            assert_eq!(v["gauges"]["num_strings"], 60, "threads={threads}");
            // The snapshot's pair count matches the printed pairs.
            let printed = out.lines().filter(|l| !l.starts_with('#')).count() as u64;
            assert_eq!(v["counters"]["output_pairs"].as_u64().unwrap(), printed);
        }
    }

    /// `--trace` is a bare switch: parses without a value and must not
    /// change the join output.
    #[test]
    fn trace_flag_is_valueless_and_output_preserving() {
        let data = tmpfile("trace-in.json");
        run(&args(&[
            "generate", "--kind", "dblp", "--n", "40", "--seed", "11", "--out", &data,
        ]))
        .unwrap();
        let plain = run(&args(&["join", "--input", &data])).unwrap();
        // Bare --trace followed by another flag: value defaults to "true".
        let traced = run(&args(&["join", "--trace", "--input", &data])).unwrap();
        // Compare pair lines only — the `#` summary line carries timings.
        let pairs = |s: &str| -> Vec<&str> { s.lines().filter(|l| !l.starts_with('#')).collect() };
        assert_eq!(pairs(&plain), pairs(&traced));
        // A non-boolean value for --trace is rejected like any bad parse.
        let e = run(&args(&["join", "--input", &data, "--trace", "maybe"])).unwrap_err();
        assert!(e.0.contains("--trace"), "{e:?}");
    }

    #[test]
    fn errors_are_reported() {
        assert!(run(&args(&["bogus"])).is_err());
        // Unknown flags must error, not be silently ignored.
        let e = run(&args(&["join", "--treads", "4", "--input", "x.json"])).unwrap_err();
        assert!(e.0.contains("unknown flag --treads"), "{e:?}");
        assert!(run(&args(&["join"])).is_err());
        assert!(run(&args(&["join", "--input", "/definitely/missing.json"])).is_err());
        assert!(run(&args(&[
            "generate",
            "--kind",
            "klingon",
            "--out",
            "/tmp/x.json"
        ]))
        .is_err());
        let e = run(&args(&["join", "--input", "x", "--tau", "7"])).unwrap_err();
        assert!(e.0.contains("cannot read") || e.0.contains("tau"));
    }

    /// Every malformed flag takes the error path with a message naming
    /// the offending flag or path — never a silent default.
    #[test]
    fn flag_error_paths_name_the_culprit() {
        let data = tmpfile("errpaths.json");
        run(&args(&[
            "generate", "--kind", "dblp", "--n", "20", "--seed", "6", "--out", &data,
        ]))
        .unwrap();

        // Non-numeric scheduler knobs are parse errors, not defaults.
        let e = run(&args(&["join", "--input", &data, "--batch-min", "two"])).unwrap_err();
        assert!(e.0.contains("invalid value for --batch-min"), "{e:?}");
        let e = run(&args(&["join", "--input", &data, "--batch-max", "2.5"])).unwrap_err();
        assert!(e.0.contains("invalid value for --batch-max"), "{e:?}");
        let e = run(&args(&["join", "--input", &data, "--shard-band", "-1"])).unwrap_err();
        assert!(e.0.contains("invalid value for --shard-band"), "{e:?}");
        let e = run(&args(&["join", "--input", &data, "--threads", "many"])).unwrap_err();
        assert!(e.0.contains("invalid value for --threads"), "{e:?}");

        // Threshold validation happens after parsing.
        let e = run(&args(&["join", "--input", &data, "--tau", "1.5"])).unwrap_err();
        assert!(e.0.contains("--tau must lie in [0, 1]"), "{e:?}");
        let e = run(&args(&["join", "--input", &data, "--q", "0"])).unwrap_err();
        assert!(e.0.contains("--q must be at least 1"), "{e:?}");

        // Positional junk is rejected by the flag parser itself.
        let e = run(&args(&["join", "extra", "--input", &data])).unwrap_err();
        assert!(e.0.contains("unexpected argument"), "{e:?}");

        // Missing required flags name themselves.
        let e = run(&args(&["generate", "--kind", "dblp"])).unwrap_err();
        assert!(e.0.contains("missing required flag --out"), "{e:?}");

        // An unparsable probe reports the probe, not a panic.
        let e = run(&args(&["search", "--input", &data, "--probe", "{bad"])).unwrap_err();
        assert!(e.0.contains("invalid probe"), "{e:?}");
    }

    /// Unwritable output targets (`--stats-json`, `--out`) fail with the
    /// path in the message instead of discarding the join results
    /// silently.
    #[test]
    fn malformed_output_targets_are_reported() {
        let data = tmpfile("badout.json");
        run(&args(&[
            "generate", "--kind", "dblp", "--n", "20", "--seed", "8", "--out", &data,
        ]))
        .unwrap();
        // `data` is a file, so treating it as a directory cannot work.
        let bad = format!("{data}/nope/target.json");
        let e = run(&args(&["join", "--input", &data, "--stats-json", &bad])).unwrap_err();
        assert!(e.0.contains("cannot write"), "{e:?}");
        let e = run(&args(&["join", "--input", &data, "--out", &bad])).unwrap_err();
        assert!(e.0.contains("cannot write"), "{e:?}");
        let e = run(&args(&[
            "generate", "--kind", "dblp", "--n", "5", "--out", &bad,
        ]))
        .unwrap_err();
        assert!(e.0.contains("cannot write"), "{e:?}");
    }

    /// `--checkpoint` commits per-wave state; `--resume` replays it. With
    /// no faults injected the resumed run of an already-complete
    /// checkpoint must reproduce the uninterrupted output bit-for-bit.
    #[test]
    fn checkpoint_and_resume_flags_roundtrip() {
        let data = tmpfile("ckpt-in.json");
        run(&args(&[
            "generate", "--kind", "dblp", "--n", "50", "--seed", "13", "--out", &data,
        ]))
        .unwrap();
        let dir = tmpfile("ckpt-dir");
        std::fs::create_dir_all(&dir).unwrap();
        let pairs = |s: &str| -> Vec<&str> { s.lines().filter(|l| !l.starts_with('#')).collect() };

        let plain = run(&args(&["join", "--input", &data, "--threads", "2"])).unwrap();
        let ckpt = run(&args(&[
            "join", "--input", &data, "--threads", "2", "--checkpoint", &dir,
        ]))
        .unwrap();
        assert_eq!(pairs(&plain), pairs(&ckpt));
        let file = std::path::Path::new(&dir).read_dir().unwrap().count();
        assert!(file >= 1, "checkpoint directory left empty");

        let resumed = run(&args(&[
            "join", "--input", &data, "--threads", "2", "--checkpoint", &dir, "--resume",
        ]))
        .unwrap();
        assert_eq!(pairs(&plain), pairs(&resumed));
        assert!(
            resumed.contains("# fault-tolerance: waves_resumed="),
            "{resumed}"
        );

        // Resuming under a different config must be rejected with the
        // structured report, not silently merged.
        let e = run(&args(&[
            "join", "--input", &data, "--threads", "2", "--tau", "0.2", "--checkpoint", &dir,
            "--resume",
        ]))
        .unwrap_err();
        assert!(e.0.contains("kind: checkpoint"), "{e:?}");
    }

    /// The fault-tolerance flags are validated before any work happens.
    #[test]
    fn fault_tolerance_flags_are_validated() {
        let data = tmpfile("ftflags.json");
        run(&args(&[
            "generate", "--kind", "dblp", "--n", "20", "--seed", "14", "--out", &data,
        ]))
        .unwrap();
        let e = run(&args(&["join", "--input", &data, "--resume"])).unwrap_err();
        assert!(e.0.contains("--resume requires --checkpoint"), "{e:?}");
        let e = run(&args(&["join", "--input", &data, "--deadline-secs", "-1"])).unwrap_err();
        assert!(e.0.contains("--deadline-secs"), "{e:?}");
        let e = run(&args(&["join", "--input", &data, "--deadline-secs", "soon"])).unwrap_err();
        assert!(e.0.contains("invalid value for --deadline-secs"), "{e:?}");
    }

    /// An unmeetable deadline produces the structured report with the
    /// `deadline` kind and a checkpoint pointer when one was committed.
    #[test]
    fn deadline_produces_structured_report() {
        let data = tmpfile("deadline.json");
        run(&args(&[
            "generate", "--kind", "dblp", "--n", "50", "--seed", "15", "--out", &data,
        ]))
        .unwrap();
        let e = run(&args(&[
            "join",
            "--input",
            &data,
            "--threads",
            "2",
            "--deadline-secs",
            "0.000000001",
        ]))
        .unwrap_err();
        assert!(e.0.contains("join failed: deadline exceeded"), "{e:?}");
        assert!(e.0.contains("kind: deadline"), "{e:?}");
        assert!(e.0.contains("completed_waves: 0"), "{e:?}");
        assert!(e.0.contains("checkpoint: none"), "{e:?}");
    }

    #[test]
    fn help_prints_usage() {
        assert!(run(&args(&["help"])).unwrap().contains("USAGE"));
        assert!(run(&[]).is_err());
    }

    /// `--chrome-trace` writes a Chrome trace-event file that is valid
    /// JSON with nested probe/phase spans, without changing the pairs.
    #[test]
    fn join_chrome_trace_writes_loadable_trace_events() {
        let data = tmpfile("chrome-in.json");
        run(&args(&[
            "generate", "--kind", "dblp", "--n", "40", "--seed", "17", "--out", &data,
        ]))
        .unwrap();
        let trace = tmpfile("chrome-out.json");
        let plain = run(&args(&["join", "--input", &data])).unwrap();
        let traced = run(&args(&[
            "join", "--input", &data, "--chrome-trace", &trace,
        ]))
        .unwrap();
        let pairs = |s: &str| -> Vec<&str> { s.lines().filter(|l| !l.starts_with('#')).collect() };
        assert_eq!(pairs(&plain), pairs(&traced));
        let text = std::fs::read_to_string(&trace).unwrap();
        let v: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        let events = v["traceEvents"].as_array().expect("traceEvents array");
        assert!(!events.is_empty(), "trace has spans");
        // Complete events with span/parent nesting and µs timestamps.
        for e in events {
            assert_eq!(e["ph"], "X", "{e}");
            assert!(e["ts"].is_u64() || e["ts"].is_i64(), "{e}");
            assert!(e["dur"].is_u64() || e["dur"].is_i64(), "{e}");
            assert!(e["args"]["span"].is_u64(), "{e}");
            assert!(e["args"]["parent"].is_u64(), "{e}");
        }
        assert!(events.iter().any(|e| e["cat"] == "probe"));
        assert!(events.iter().any(|e| e["cat"] == "phase"
            && e["args"]["parent"].as_u64().unwrap() != 0));
        // The parallel path merges per-worker Chrome lanes.
        let trace_par = tmpfile("chrome-out-par.json");
        run(&args(&[
            "join", "--input", &data, "--threads", "3", "--chrome-trace", &trace_par,
        ]))
        .unwrap();
        let v: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&trace_par).unwrap()).unwrap();
        assert!(!v["traceEvents"].as_array().unwrap().is_empty());
    }

    /// `usj metrics` scrapes the Prometheus exposition from a running
    /// server, and `usj probe --trace-out` round-trips the server-side
    /// Chrome trace.
    #[test]
    fn metrics_and_traced_probe_roundtrip_over_loopback() {
        let data = tmpfile("metrics.json");
        run(&args(&[
            "generate", "--kind", "dblp", "--n", "30", "--seed", "23", "--out", &data,
        ]))
        .unwrap();
        let flags = Flags::parse(&args(&[
            "--input", &data, "--addr", "127.0.0.1:0", "--workers", "2",
        ]))
        .unwrap();
        let handle = start_serve(&flags).unwrap();
        let addr = handle.addr().to_string();

        let ds_text = std::fs::read_to_string(&data).unwrap();
        let ds = DatasetJson::from_json(&ds_text)
            .unwrap()
            .into_dataset()
            .unwrap();
        let probe = ds
            .alphabet
            .decode(&ds.strings[0].most_probable_world().instance);

        let trace = tmpfile("probe-trace.json");
        let served = run(&args(&[
            "probe", "--addr", &addr, "--probe", &probe, "--trace-out", &trace,
        ]))
        .unwrap();
        assert!(served.contains("hits (exact)"), "{served}");
        assert!(served.contains("# trace "), "{served}");
        let v: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&trace).unwrap()).unwrap();
        let events = v["traceEvents"].as_array().unwrap();
        assert!(!events.is_empty());
        // Every span carries the client-minted trace id the server echoed.
        let id_hex = served
            .lines()
            .find(|l| l.starts_with("# trace "))
            .and_then(|l| l.split_whitespace().nth(2))
            .unwrap()
            .to_string();
        assert!(events.iter().all(|e| e["args"]["trace"] == id_hex.as_str()));

        let scraped = run(&args(&["metrics", "--addr", &addr])).unwrap();
        assert!(scraped.contains("# TYPE usj_probes_total counter"), "{scraped}");
        assert!(scraped.contains("usj_probes_total 1"), "{scraped}");
        assert!(
            scraped.contains("usj_funnel_candidates_total{band="),
            "{scraped}"
        );
        handle.shutdown();
    }

    /// `usj bench` writes the schema-stable report; `--baseline` gates on
    /// the 15% median regression threshold.
    #[test]
    fn bench_writes_report_and_gates_on_baseline() {
        let out_path = tmpfile("BENCH_test.json");
        let printed = run(&args(&[
            "bench", "--label", "test", "--n", "16", "--iters", "2", "--warmup", "0", "--out",
            &out_path,
        ]))
        .unwrap();
        assert!(printed.contains("join_end_to_end: median="), "{printed}");
        let text = std::fs::read_to_string(&out_path).unwrap();
        let report = BenchReport::parse(&text).expect("schema-stable report");
        assert_eq!(report.label, "test");
        assert_eq!(report.benches.len(), usj_core::bench::BENCH_NAMES.len());
        // serde_json agrees the document is valid JSON.
        let v: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(v["schema_version"], 1);

        // A generous baseline passes the gate...
        let mut base = report.clone();
        for b in &mut base.benches {
            b.median_ns = u64::MAX / 2;
        }
        let base_path = tmpfile("BENCH_base.json");
        std::fs::write(&base_path, base.to_json()).unwrap();
        run(&args(&[
            "bench", "--label", "test", "--n", "16", "--iters", "2", "--warmup", "0", "--out",
            &out_path, "--baseline", &base_path,
        ]))
        .unwrap();
        // ...an unmeetable one reports the regression and fails.
        for b in &mut base.benches {
            b.median_ns = 1;
        }
        std::fs::write(&base_path, base.to_json()).unwrap();
        let e = run(&args(&[
            "bench", "--label", "test", "--n", "16", "--iters", "2", "--warmup", "0", "--out",
            &out_path, "--baseline", &base_path,
        ]))
        .unwrap_err();
        assert!(e.0.contains("median regression"), "{e:?}");
        assert!(e.0.contains("REGRESSION"), "{e:?}");

        // Flag validation.
        let e = run(&args(&["bench", "--n", "2"])).unwrap_err();
        assert!(e.0.contains("--n must be at least 8"), "{e:?}");
        let e = run(&args(&["bench", "--label", "no/slash"])).unwrap_err();
        assert!(e.0.contains("--label"), "{e:?}");
    }

    /// End-to-end over loopback: `usj serve` (via the non-blocking
    /// half) answers a `usj probe` with the same hits as a local
    /// `usj search`, and drains cleanly.
    #[test]
    fn serve_and_probe_roundtrip() {
        let data = tmpfile("serve.json");
        run(&args(&[
            "generate", "--kind", "dblp", "--n", "30", "--seed", "21", "--out", &data,
        ]))
        .unwrap();
        let flags = Flags::parse(&args(&[
            "--input", &data, "--addr", "127.0.0.1:0", "--workers", "2",
        ]))
        .unwrap();
        let handle = start_serve(&flags).unwrap();
        let addr = handle.addr().to_string();

        let ds_text = std::fs::read_to_string(&data).unwrap();
        let ds = DatasetJson::from_json(&ds_text)
            .unwrap()
            .into_dataset()
            .unwrap();
        let probe = ds
            .alphabet
            .decode(&ds.strings[0].most_probable_world().instance);
        let local = run(&args(&["search", "--input", &data, "--probe", &probe])).unwrap();
        let served = run(&args(&["probe", "--addr", &addr, "--probe", &probe])).unwrap();
        assert!(served.contains("hits (exact)"), "{served}");
        let ids = |s: &str| -> Vec<String> {
            s.lines()
                .filter(|l| !l.starts_with('#'))
                .map(|l| l.split('\t').next().unwrap().to_string())
                .collect()
        };
        assert_eq!(ids(&local), ids(&served), "served hits diverge from local search");
        assert!(ids(&served).contains(&"0".to_string()), "{served}");

        // Mismatched parameters are refused, not silently wrong.
        let e = run(&args(&[
            "probe", "--addr", &addr, "--probe", &probe, "--k", "5",
        ]))
        .unwrap_err();
        assert!(e.0.contains("indexed for"), "{e:?}");

        let stats = handle.shutdown();
        assert!(stats.contains("\"serve_full\""), "{stats}");
    }

    #[test]
    fn serve_and_probe_flags_are_validated() {
        let data = tmpfile("serveflags.json");
        run(&args(&[
            "generate", "--kind", "dblp", "--n", "10", "--seed", "22", "--out", &data,
        ]))
        .unwrap();
        let e = run(&args(&["serve"])).unwrap_err();
        assert!(e.0.contains("missing required flag --input"), "{e:?}");
        let bad = |extra: &[&str]| {
            let mut a = vec!["serve", "--input", data.as_str()];
            a.extend_from_slice(extra);
            run(&args(&a)).unwrap_err()
        };
        let e = bad(&["--workers", "0"]);
        assert!(e.0.contains("--workers must be at least 1"), "{e:?}");
        let e = bad(&["--queue-cap", "0"]);
        assert!(e.0.contains("--queue-cap must be at least 1"), "{e:?}");
        let e = bad(&["--io-timeout-secs", "-2"]);
        assert!(e.0.contains("--io-timeout-secs"), "{e:?}");
        let e = bad(&["--queue-degrade", "8", "--queue-shed", "2"]);
        assert!(e.0.contains("--queue-shed"), "{e:?}");
        let e = bad(&["--listeners", "2"]);
        assert!(e.0.contains("unknown flag --listeners"), "{e:?}");

        let e = run(&args(&["probe", "--probe", "ABC"])).unwrap_err();
        assert!(e.0.contains("missing required flag --addr"), "{e:?}");
        let e = run(&args(&["probe", "--addr", "127.0.0.1:1"])).unwrap_err();
        assert!(e.0.contains("missing required flag --probe"), "{e:?}");
        // A dead endpoint is a reported transport failure, not a hang.
        let e = run(&args(&[
            "probe", "--addr", "127.0.0.1:1", "--probe", "ABC", "--retries", "0",
        ]))
        .unwrap_err();
        assert!(e.0.contains("probe failed:"), "{e:?}");
    }

    /// `usj snapshot write|verify|fsck` and a warm `usj serve
    /// --snapshot` boot agree with a cold build end to end, and a
    /// flipped byte turns `verify` into a hard failure.
    #[test]
    fn snapshot_write_verify_fsck_and_warm_serve_roundtrip() {
        let data = tmpfile("snaproll.json");
        run(&args(&[
            "generate", "--kind", "dblp", "--n", "20", "--seed", "27", "--out", &data,
        ]))
        .unwrap();
        let snap = tmpfile("snaproll.snap");
        let wrote = run(&args(&[
            "snapshot", "write", "--input", &data, "--snapshot", &snap,
        ]))
        .unwrap();
        assert!(wrote.contains("fingerprint"), "{wrote}");
        let verified = run(&args(&["snapshot", "verify", "--snapshot", &snap])).unwrap();
        assert!(verified.contains("verify: ok"), "{verified}");
        assert!(verified.contains("interner"), "{verified}");
        let fsck = run(&args(&[
            "snapshot", "fsck", "--input", &data, "--snapshot", &snap,
        ]))
        .unwrap();
        assert!(fsck.contains("rung Verified"), "{fsck}");

        // Warm boot from the image answers like a local search.
        let flags = Flags::parse(&args(&[
            "--input", &data, "--addr", "127.0.0.1:0", "--snapshot", &snap,
        ]))
        .unwrap();
        let handle = start_serve(&flags).unwrap();
        let addr = handle.addr().to_string();
        let ds_text = std::fs::read_to_string(&data).unwrap();
        let ds = DatasetJson::from_json(&ds_text)
            .unwrap()
            .into_dataset()
            .unwrap();
        let probe = ds
            .alphabet
            .decode(&ds.strings[0].most_probable_world().instance);
        let local = run(&args(&["search", "--input", &data, "--probe", &probe])).unwrap();
        let served = run(&args(&["probe", "--addr", &addr, "--probe", &probe])).unwrap();
        assert!(served.contains("hits (exact)"), "{served}");
        let ids = |s: &str| -> Vec<String> {
            s.lines()
                .filter(|l| !l.starts_with('#'))
                .map(|l| l.split('\t').next().unwrap().to_string())
                .collect()
        };
        assert_eq!(ids(&local), ids(&served), "warm hits diverge from local search");
        handle.shutdown();

        // A single flipped byte fails verification with a diagnosis.
        let mut bytes = std::fs::read(&snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&snap, &bytes).unwrap();
        let e = run(&args(&["snapshot", "verify", "--snapshot", &snap])).unwrap_err();
        assert!(e.0.contains("verify FAILED"), "{e:?}");
        // fsck still recovers it — strict salvage rebuilds the damage.
        let fsck = run(&args(&[
            "snapshot", "fsck", "--input", &data, "--snapshot", &snap,
        ]))
        .unwrap();
        assert!(!fsck.contains("rung Verified"), "{fsck}");
        assert!(fsck.contains("corruption"), "{fsck}");
    }

    #[test]
    fn snapshot_flags_are_validated() {
        let e = run(&args(&["snapshot"])).unwrap_err();
        assert!(e.0.contains("usage: usj snapshot"), "{e:?}");
        let e = run(&args(&["snapshot", "defrag"])).unwrap_err();
        assert!(e.0.contains("unknown snapshot mode"), "{e:?}");
        let e = run(&args(&["snapshot", "verify"])).unwrap_err();
        assert!(e.0.contains("missing required flag --snapshot"), "{e:?}");
        let e = run(&args(&["snapshot", "write", "--snapshot", "x.snap"])).unwrap_err();
        assert!(e.0.contains("missing required flag --input"), "{e:?}");
        let e = run(&args(&[
            "snapshot", "verify", "--snapshot", "/nonexistent/x.snap",
        ]))
        .unwrap_err();
        assert!(e.0.contains("cannot verify snapshot"), "{e:?}");
        let e = run(&args(&[
            "snapshot", "write", "--snapshot", "x", "--input", "x", "--workers", "2",
        ]))
        .unwrap_err();
        assert!(e.0.contains("unknown flag --workers"), "{e:?}");
    }

    #[test]
    fn shard_and_coord_fleet_matches_single_node_over_loopback() {
        let data = tmpfile("fleet.json");
        run(&args(&[
            "generate", "--kind", "dblp", "--n", "30", "--seed", "25", "--out", &data,
        ]))
        .unwrap();

        // Two shards on ephemeral ports, then a coordinator fronting
        // them. The shards boot through the snapshot path (a cold miss
        // on the first run: each rebuilds and re-writes its own
        // `<base>.shard<idx>` image for the next restart).
        let snap_base = tmpfile("fleet.snap");
        let shard_flags = |idx: &str| {
            Flags::parse(&args(&[
                "--input", &data, "--addr", "127.0.0.1:0", "--shards", "2",
                "--shard-index", idx, "--snapshot", &snap_base,
            ]))
            .unwrap()
        };
        let shard0 = start_shard(&shard_flags("0")).unwrap();
        let shard1 = start_shard(&shard_flags("1")).unwrap();
        let fleet = format!("{},{}", shard0.addr(), shard1.addr());
        let coord_flags = Flags::parse(&args(&[
            "--input", &data, "--addr", "127.0.0.1:0", "--shard-addrs", &fleet,
        ]))
        .unwrap();
        let coord = start_coord(&coord_flags).unwrap();
        let addr = coord.addr().to_string();

        let ds_text = std::fs::read_to_string(&data).unwrap();
        let ds = DatasetJson::from_json(&ds_text)
            .unwrap()
            .into_dataset()
            .unwrap();
        let probe = ds
            .alphabet
            .decode(&ds.strings[0].most_probable_world().instance);
        let local = run(&args(&["search", "--input", &data, "--probe", &probe])).unwrap();
        let served = run(&args(&["probe", "--addr", &addr, "--probe", &probe])).unwrap();
        assert!(served.contains("hits (exact)"), "{served}");
        let ids = |s: &str| -> Vec<String> {
            s.lines()
                .filter(|l| !l.starts_with('#'))
                .map(|l| l.split('\t').next().unwrap().to_string())
                .collect()
        };
        assert_eq!(ids(&local), ids(&served), "fleet hits diverge from local search");

        // Parameter mismatches are refused at the coordinator, before any
        // shard is bothered.
        let e = run(&args(&[
            "probe", "--addr", &addr, "--probe", &probe, "--k", "5",
        ]))
        .unwrap_err();
        assert!(e.0.contains("indexed for"), "{e:?}");

        coord.shutdown();
        shard0.shutdown();
        shard1.shutdown();
    }

    #[test]
    fn shard_and_coord_flags_are_validated() {
        let data = tmpfile("fleetflags.json");
        run(&args(&[
            "generate", "--kind", "dblp", "--n", "10", "--seed", "26", "--out", &data,
        ]))
        .unwrap();
        let e = run(&args(&["shard", "--input", &data])).unwrap_err();
        assert!(e.0.contains("--shards must be at least 1"), "{e:?}");
        let e = run(&args(&[
            "shard", "--input", &data, "--shards", "2", "--shard-index", "2",
        ]))
        .unwrap_err();
        assert!(e.0.contains("--shard-index must lie in 0..2"), "{e:?}");
        let e = run(&args(&["coord", "--input", &data])).unwrap_err();
        assert!(e.0.contains("missing required flag --shard-addrs"), "{e:?}");
        let e = run(&args(&[
            "coord", "--input", &data, "--shard-addrs", " , ",
        ]))
        .unwrap_err();
        assert!(e.0.contains("at least one HOST:PORT"), "{e:?}");
        let e = run(&args(&[
            "coord", "--input", &data, "--shard-addrs", "127.0.0.1:1",
            "--quarantine-after", "0",
        ]))
        .unwrap_err();
        assert!(e.0.contains("--quarantine-after must be at least 1"), "{e:?}");
        let e = run(&args(&[
            "coord", "--input", &data, "--shard-addrs", "127.0.0.1:1",
            "--queue-degrade", "2",
        ]))
        .unwrap_err();
        assert!(e.0.contains("unknown flag --queue-degrade"), "{e:?}");
    }
}
