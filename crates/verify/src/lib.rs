//! Exact verification of candidate pairs (paper §6.2).
//!
//! After filtering, a surviving pair `(R, S)` must be checked exactly:
//! is `Pr(ed(R, S) ≤ k) > τ`? The probability ranges over the joint
//! possible worlds of both strings, which is exponential in the number of
//! uncertain positions. This crate provides three verifiers:
//!
//! * [`oracle`] — plain joint-world enumeration; the reference that every
//!   other component is tested against;
//! * [`naive`] — the paper's baseline: enumerate world pairs but compute
//!   each edit distance with the banded, early-terminating DP
//!   (prefix-pruning), with optional early accept/reject on the
//!   accumulated probability mass;
//! * [`trie`] + [`trie_verify`] — the paper's contribution: build the
//!   trie `T_R` of all instances of `R` **once per probe**, then walk the
//!   *logical* trie of `S` depth-first, materialising a node's children
//!   only while its **active set** (trie nodes of `T_R` within edit
//!   distance `k` of the current `S`-prefix) is non-empty. Shared
//!   prefixes of instances share DP work, and pruned subtrees skip
//!   entire world families at once.

#![warn(missing_docs)]

pub mod active;
pub mod lazy;
pub mod naive;
pub mod oracle;
pub mod trie;
pub mod trie_verify;

pub use active::ActiveSet;
pub use lazy::{LazyActiveSet, LazyTrie, LazyTrieVerifier};
pub use naive::{naive_verify, NaiveOutcome};
pub use oracle::{exact_similarity_prob, exact_similarity_prob_capped};
pub use trie::InstanceTrie;
pub use trie_verify::{TrieVerifier, VerifyOutcome, VerifyStats};
