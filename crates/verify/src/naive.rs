//! Naive all-pairs verification (the paper's baseline in §7.7).
//!
//! Enumerates every instance pair of `R × S`, computes each edit distance
//! with the banded prefix-pruning DP, and accumulates the probability of
//! similar worlds. Optional early termination stops as soon as the
//! accumulated mass proves the pair similar (`> τ`) or the remaining mass
//! can no longer reach `τ`.

use usj_model::UncertainString;

/// Result of naive verification.
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveOutcome {
    /// `true` when `Pr(ed ≤ k) > τ`.
    pub similar: bool,
    /// Accumulated similar mass at the point of decision. Equal to the
    /// exact probability when early termination was disabled or never
    /// fired.
    pub prob: f64,
    /// Number of world pairs whose edit distance was evaluated.
    pub pairs_compared: u64,
}

/// Verifies `Pr(ed(R,S) ≤ k) > τ` by enumerating world pairs.
///
/// With `early_stop`, iteration ends as soon as the decision is forced;
/// `prob` is then only a lower bound on the exact probability.
pub fn naive_verify(
    r: &UncertainString,
    s: &UncertainString,
    k: usize,
    tau: f64,
    early_stop: bool,
) -> NaiveOutcome {
    if r.len().abs_diff(s.len()) > k {
        return NaiveOutcome {
            similar: false,
            prob: 0.0,
            pairs_compared: 0,
        };
    }
    let s_worlds: Vec<_> = s.worlds().collect();
    let mut acc = 0.0;
    let mut processed_r = 0.0;
    let mut pairs = 0u64;
    for rw in r.worlds() {
        let mut processed_s = 0.0;
        for sw in &s_worlds {
            pairs += 1;
            if usj_editdist::edit_distance_bounded(&rw.instance, &sw.instance, k).is_some() {
                acc += rw.prob * sw.prob;
                if early_stop && acc > tau {
                    return NaiveOutcome {
                        similar: true,
                        prob: acc,
                        pairs_compared: pairs,
                    };
                }
            }
            processed_s += sw.prob;
        }
        processed_r += rw.prob;
        if early_stop {
            // Mass that could still be added by the remaining R worlds.
            let remaining = (1.0 - processed_r).max(0.0) + rw.prob * (1.0 - processed_s).max(0.0);
            if acc + remaining <= tau {
                return NaiveOutcome {
                    similar: false,
                    prob: acc,
                    pairs_compared: pairs,
                };
            }
        }
    }
    NaiveOutcome {
        similar: acc > tau,
        prob: acc,
        pairs_compared: pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::exact_similarity_prob;
    use usj_model::Alphabet;

    fn dna(text: &str) -> UncertainString {
        UncertainString::parse(text, &Alphabet::dna()).unwrap()
    }

    #[test]
    fn exact_when_not_early_stopping() {
        let r = dna("A{(C,0.5),(G,0.5)}GT");
        let s = dna("ACG{(T,0.4),(A,0.6)}");
        for k in 0..3 {
            let out = naive_verify(&r, &s, k, 0.5, false);
            let exact = exact_similarity_prob(&r, &s, k);
            assert!((out.prob - exact).abs() < 1e-12, "k={k}");
            assert_eq!(out.similar, exact > 0.5);
        }
    }

    #[test]
    fn early_stop_decisions_agree() {
        let cases = [
            ("A{(C,0.5),(G,0.5)}GT", "ACG{(T,0.4),(A,0.6)}"),
            ("ACGT", "ACGT"),
            ("AAAA", "TTTT"),
            ("{(A,0.9),(T,0.1)}CGT", "ACG{(T,0.5),(G,0.5)}"),
        ];
        for (rt, st) in cases {
            let (r, s) = (dna(rt), dna(st));
            for k in 0..3 {
                for tau in [0.01, 0.3, 0.8] {
                    let fast = naive_verify(&r, &s, k, tau, true);
                    let slow = naive_verify(&r, &s, k, tau, false);
                    assert_eq!(fast.similar, slow.similar, "{rt} {st} k={k} tau={tau}");
                    assert!(fast.pairs_compared <= slow.pairs_compared);
                }
            }
        }
    }

    #[test]
    fn early_stop_skips_work() {
        // Identical strings with many worlds: accept should fire quickly.
        let r = dna("{(A,0.5),(C,0.5)}{(A,0.5),(C,0.5)}{(A,0.5),(C,0.5)}GT");
        let out = naive_verify(&r, &r, 2, 0.1, true);
        assert!(out.similar);
        let full = naive_verify(&r, &r, 2, 0.1, false);
        assert!(out.pairs_compared < full.pairs_compared);
    }

    #[test]
    fn length_gap_short_circuit() {
        let out = naive_verify(&dna("A"), &dna("ACGT"), 1, 0.5, true);
        assert!(!out.similar);
        assert_eq!(out.pairs_compared, 0);
    }
}
