//! Brute-force possible-world oracle.
//!
//! The slowest but simplest computation of `Pr(ed(R,S) ≤ k)`: enumerate
//! the Cartesian product of both strings' worlds. Used as the reference
//! in tests and as the honest baseline in the verification benchmarks.

use usj_model::UncertainString;

/// Exact `Pr(ed(R, S) ≤ k)` by joint possible-world enumeration.
///
/// Exponential in the number of uncertain positions — use only on small
/// strings or through [`exact_similarity_prob_capped`].
pub fn exact_similarity_prob(r: &UncertainString, s: &UncertainString, k: usize) -> f64 {
    if r.len().abs_diff(s.len()) > k {
        return 0.0;
    }
    let s_worlds: Vec<_> = s.worlds().collect();
    let mut total = 0.0;
    for rw in r.worlds() {
        for sw in &s_worlds {
            if usj_editdist::within_k_auto(&rw.instance, &sw.instance, k) {
                total += rw.prob * sw.prob;
            }
        }
    }
    total
}

/// Like [`exact_similarity_prob`] but refuses (returns `None`) when the
/// joint world count exceeds `max_worlds`.
pub fn exact_similarity_prob_capped(
    r: &UncertainString,
    s: &UncertainString,
    k: usize,
    max_worlds: u64,
) -> Option<f64> {
    let rn = r.num_worlds_capped(max_worlds)?;
    let sn = s.num_worlds_capped(max_worlds)?;
    if rn.checked_mul(sn)? > max_worlds {
        return None;
    }
    Some(exact_similarity_prob(r, s, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_model::Alphabet;

    fn dna(text: &str) -> UncertainString {
        UncertainString::parse(text, &Alphabet::dna()).unwrap()
    }

    #[test]
    fn deterministic_pairs() {
        assert_eq!(exact_similarity_prob(&dna("ACGT"), &dna("ACGT"), 0), 1.0);
        assert_eq!(exact_similarity_prob(&dna("ACGT"), &dna("AGGT"), 0), 0.0);
        assert_eq!(exact_similarity_prob(&dna("ACGT"), &dna("AGGT"), 1), 1.0);
    }

    #[test]
    fn single_uncertain_position() {
        // R = A{(C,0.7),(G,0.3)}T vs S = ACT with k = 0: only the C world
        // matches exactly.
        let p = exact_similarity_prob(&dna("A{(C,0.7),(G,0.3)}T"), &dna("ACT"), 0);
        assert!((p - 0.7).abs() < 1e-12);
    }

    #[test]
    fn length_gap_is_zero() {
        assert_eq!(exact_similarity_prob(&dna("A"), &dna("ACGT"), 2), 0.0);
    }

    #[test]
    fn cap_behaviour() {
        let r = dna("{(A,0.5),(C,0.5)}{(A,0.5),(C,0.5)}");
        let s = dna("{(A,0.5),(C,0.5)}{(A,0.5),(C,0.5)}");
        assert!(exact_similarity_prob_capped(&r, &s, 1, 15).is_none());
        assert!(exact_similarity_prob_capped(&r, &s, 1, 16).is_some());
    }
}
